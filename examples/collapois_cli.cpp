// Command-line experiment driver: every knob of ExperimentConfig exposed
// as a flag, results printed as tables or CSV. The fastest way to explore
// the attack/defense landscape without writing code.
//
//   collapois_cli --dataset femnist --algorithm fedavg --attack collapois \
//                 --defense dp --alpha 0.1 --fraction 0.05 --rounds 200
//
// Every numeric flag is validated at the parse site: probabilities must
// be finite and in [0, 1], rates/durations finite and non-negative,
// counts plain unsigned decimals (a "-1" is rejected rather than
// silently wrapped by std::stoul). A bad value prints the flag table and
// exits 2. The same table lives in README.md.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/report.h"
#include "sim/runner.h"

namespace {

using namespace collapois;

constexpr const char* kUsage = R"(usage: collapois_cli [flags]

experiment:
  --dataset femnist|sentiment        dataset substitute            [femnist]
  --algorithm fedavg|feddc|metafed   federated algorithm           [fedavg]
  --attack none|collapois|dpois|mrepl|dba                          [collapois]
  --defense none|dp|userdp|normbound|krum|multikrum|median|
            trimmedmean|rlr|signsgd|flare|crfl|ditto               [none]
  --alpha F          Dirichlet concentration, finite > 0           [1.0]
  --clients N        federation size                               [100]
  --samples N        samples per client                            [80]
  --fraction F       compromised fraction, in [0, 1]               [0.05]
  --rounds N         training rounds                               [200]
  --q F              client sampling probability, in (0, 1]        [0.05]
  --strike N         attack start round                            [20]
  --seed N           RNG seed                                      [42]
  --threads N        worker threads; 0 = auto, 1 = sequential      [0]
                     (results are bit-identical for any value)
  --kernels NAME     compute kernels: blocked | naive              [blocked]
                     (blocked = im2col + packed GEMM; naive =
                     reference loops — the two round differently)
  --defense-impl N   defense kernels: fast | naive                 [fast]
                     (fast = GEMM pairwise distances + SIMD
                     coordinate tiles; naive = reference loops)

  The blocked/fast hot paths pick a SIMD microkernel at runtime from
  cpuid (scalar | sse2 | avx2); the selected tier and detected CPU
  features appear in the run report's "kernels" block. Set
  COLLAPOIS_FORCE_ISA=scalar|sse2|avx2 to force a LOWER tier (forcing
  an unsupported tier fails at startup). Coordinate defense rules are
  bit-identical across tiers; GEMM results differ at rounding level
  between avx2 (FMA) and the other tiers.

fault injection and hardening (DESIGN.md paragraph 6):
  --dropout F        per-round client dropout probability [0, 1]   [0]
  --straggler F      straggler probability [0, 1]                  [0]
  --corrupt F        corrupted-update probability [0, 1]           [0]
  --norm-ceiling F   quarantine updates with L2 norm above F,
                     finite >= 0; 0 disables                       [0]

simulated transport (DESIGN.md paragraph 8; every --net-* flag
implies --net):
  --net                    enable the transport layer              [off]
  --net-loss F             per-attempt message loss prob [0, 1]    [0]
  --net-corrupt F          per-attempt corruption prob [0, 1]      [0]
  --net-duplicate F        duplicate-delivery prob [0, 1]          [0]
  --net-latency-min F      min delivery latency, virtual ms >= 0   [10]
  --net-latency-max F      max delivery latency, virtual ms >= 0   [50]
  --net-deadline F         round deadline, virtual ms >= 0;
                           0 disables the deadline                 [0]
  --net-retries N          re-send attempts per client per round   [3]
  --net-backoff-base F     first re-send backoff, virtual ms >= 0  [20]
  --net-backoff-cap F      backoff ceiling, virtual ms >= 0        [160]
  --net-oversample F       over-provisioning factor, in [0, 16]:
                           sample ceil((1+F)*k), aggregate first k [0]
  --net-seed N             transport decision seed

update codec (DESIGN.md paragraph 15; lossy codecs require --net —
without a wire there is nothing to compress):
  --codec NAME             identity | fp16 | int8 | topk        [identity]
                           (identity = raw fp32 bits, bit-exact;
                           fp16/int8 = per-tensor quantization;
                           topk = magnitude sparsification with
                           varint-delta indices + fp16 values)
  --codec-bits N           quantization width for int8; only 8
                           is supported (rejected loudly otherwise) [8]
  --codec-topk F           kept-coordinate fraction for topk,
                           in (0, 1]                                [0.1]

round engine (DESIGN.md paragraph 11; every --async-* flag implies
--round-engine buffered_async):
  --round-engine NAME      sync | buffered_async                   [sync]
                           (sync = barrier rounds, bit-exact with
                           the pre-engine loop; buffered_async =
                           event-driven cycles on the virtual clock)
  --async-k N              aggregate every N admitted updates;
                           0 disables the count trigger            [8]
  --async-t-ms F           ... or every F virtual ms since the
                           last aggregation, finite >= 0;
                           0 disables the time trigger             [0]
  --async-max-staleness N  discard updates more than N rounds
                           stale (compute lag + buffer lag)        [8]

cross-device scale-out (DESIGN.md paragraph 12):
  --shards N               shard aggregators per round; 1 = flat    [1]
                           (bit-identical to the flat path for
                           FedAvg and the coordinate-wise defenses;
                           Krum/Multi-Krum/FLARE need the whole
                           cohort and reject N > 1)
  --population N           registered federation size — alias of
                           --clients, named for the cross-device
                           regime                                   [100]
  --lazy-clients           materialize clients (and their data) on
                           first sample instead of at startup;
                           requires --eval-max-clients > 0          [off]
  --eval-every N           population eval cadence in rounds;
                           0 = final round only                     [0]
  --eval-max-clients N     bound every eval sweep to N uniformly
                           strided clients; 0 = all                 [0]

infrastructure fault plane (DESIGN.md paragraph 13; every --shard-*
flag requires --shards > 1 — there is no tree to fault otherwise):
  --shard-crash F          per-attempt shard crash prob [0, 1]      [0]
  --shard-timeout F        per-attempt shard timeout prob [0, 1]    [0]
  --shard-corrupt F        per-attempt corrupt-partial prob [0, 1]  [0]
                           (detected by the root's digest check and
                           discarded; failover is bit-exact, so a
                           degraded round matches flat exactly)
  --shard-retries N        retries per shard per round              [2]
  --shard-backoff-base F   first retry backoff, virtual ms >= 0     [10]
  --shard-backoff-cap F    backoff ceiling, virtual ms >= 0         [80]
  --shard-fault-seed N     shard-fault decision seed

checkpoint/resume (bit-exact; sim/checkpoint.h + checkpoint_store.h):
  --checkpoint PATH --checkpoint-round N   halt after N rounds, save
  --checkpoint-every N     durable rolling checkpoint every N rounds
                           (atomic temp+flush+rename write, digest-
                           verified on load; needs --checkpoint PATH;
                           the run continues to --rounds)            [0]
  --checkpoint-keep K      checkpoint generations kept/searched
                           (PATH, PATH.1, ... PATH.K-1)             [3]
  --resume PATH            restore the newest INTACT generation and
                           run to --rounds (damaged heads fall back
                           down the chain, reported on stderr)

chaos harness (DESIGN.md paragraph 13):
  --crash-at R[:PHASE]     die deterministically at round R (0-based;
                           exit code 42 marks the scheduled crash).
                           PHASE = post-train (before the round's
                           checkpoint; default) | mid-buffer (right
                           after it) | mid-save (tear the head file
                           mid-write); mid-* phases need
                           --checkpoint-every

output:
  --topk           also print top-1/25/50% infected-client metrics
  --clusters       print the risk-cluster table (Eq. 8 / Eq. 9)
  --csv            emit population metrics as CSV
  --json-rounds    emit per-round telemetry as JSON on stdout
                   (includes the per-round transport block when --net)
)";

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n" << kUsage;
  std::exit(2);
}

// std::stod accepts a numeric PREFIX ("0.5x" parses as 0.5); require the
// whole token to be consumed so typos fail loudly.
double parse_double(const std::string& flag, const std::string& raw) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing garbage");
    return v;
  } catch (const std::exception&) {
    usage(flag + ": '" + raw + "' is not a number");
  }
}

double parse_prob(const std::string& flag, const std::string& raw) {
  const double v = parse_double(flag, raw);
  if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
    usage(flag + " must be a probability in [0, 1], got '" + raw + "'");
  }
  return v;
}

double parse_nonneg(const std::string& flag, const std::string& raw) {
  const double v = parse_double(flag, raw);
  if (!std::isfinite(v) || v < 0.0) {
    usage(flag + " must be finite and non-negative, got '" + raw + "'");
  }
  return v;
}

double parse_pos(const std::string& flag, const std::string& raw) {
  const double v = parse_double(flag, raw);
  if (!std::isfinite(v) || v <= 0.0) {
    usage(flag + " must be finite and positive, got '" + raw + "'");
  }
  return v;
}

// std::stoul silently wraps "-1" to 18446744073709551615; only plain
// unsigned decimals pass.
std::uint64_t parse_count(const std::string& flag, const std::string& raw) {
  if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
    usage(flag + " must be a non-negative integer, got '" + raw + "'");
  }
  try {
    return std::stoull(raw);
  } catch (const std::exception&) {
    usage(flag + ": '" + raw + "' is out of range");
  }
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentConfig cfg;
  cfg.attack = sim::AttackKind::collapois;
  sim::RunOptions opts;
  bool shard_fault_flags = false;
  bool want_topk = false;
  bool want_clusters = false;
  bool want_csv = false;
  bool want_json_rounds = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + flag);
      return argv[++i];
    };
    try {
      if (flag == "--dataset") {
        cfg.dataset = sim::parse_dataset(value());
      } else if (flag == "--algorithm") {
        cfg.algorithm = sim::parse_algorithm(value());
      } else if (flag == "--attack") {
        cfg.attack = sim::parse_attack(value());
      } else if (flag == "--defense") {
        cfg.defense = defense::parse_defense(value());
      } else if (flag == "--alpha") {
        cfg.alpha = parse_pos(flag, value());
      } else if (flag == "--clients") {
        cfg.n_clients = parse_count(flag, value());
      } else if (flag == "--samples") {
        cfg.samples_per_client = parse_count(flag, value());
      } else if (flag == "--fraction") {
        cfg.compromised_fraction = parse_prob(flag, value());
      } else if (flag == "--rounds") {
        cfg.rounds = parse_count(flag, value());
      } else if (flag == "--q") {
        cfg.sample_prob = parse_prob(flag, value());
      } else if (flag == "--strike") {
        cfg.attack_start_round = parse_count(flag, value());
      } else if (flag == "--seed") {
        cfg.seed = parse_count(flag, value());
      } else if (flag == "--threads") {
        cfg.threads = parse_count(flag, value());
      } else if (flag == "--kernels") {
        cfg.kernels = kernels::parse_kernel_kind(value());
      } else if (flag == "--defense-impl") {
        cfg.defense_impl = defense::parse_defense_impl(value());
      } else if (flag == "--dropout") {
        cfg.faults.dropout_prob = parse_prob(flag, value());
      } else if (flag == "--straggler") {
        cfg.faults.straggler_prob = parse_prob(flag, value());
      } else if (flag == "--corrupt") {
        cfg.faults.corrupt_prob = parse_prob(flag, value());
      } else if (flag == "--norm-ceiling") {
        cfg.update_norm_ceiling = parse_nonneg(flag, value());
      } else if (flag == "--net") {
        cfg.net.enabled = true;
      } else if (flag == "--net-loss") {
        cfg.net.loss_prob = parse_prob(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-corrupt") {
        cfg.net.corrupt_prob = parse_prob(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-duplicate") {
        cfg.net.duplicate_prob = parse_prob(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-latency-min") {
        cfg.net.latency_min_ms = parse_nonneg(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-latency-max") {
        cfg.net.latency_max_ms = parse_nonneg(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-deadline") {
        cfg.net.deadline_ms = parse_nonneg(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-retries") {
        cfg.net.max_retries = parse_count(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-backoff-base") {
        cfg.net.backoff_base_ms = parse_nonneg(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-backoff-cap") {
        cfg.net.backoff_cap_ms = parse_nonneg(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--net-oversample") {
        const double v = parse_nonneg(flag, value());
        if (v > 16.0) usage(flag + " must be in [0, 16]");
        cfg.net.over_sample = v;
        cfg.net.enabled = true;
      } else if (flag == "--net-seed") {
        cfg.net.seed = parse_count(flag, value());
        cfg.net.enabled = true;
      } else if (flag == "--codec") {
        // parse_codec_kind throws invalid_argument naming the bad codec
        // and the valid set; the catch below turns it into usage().
        cfg.codec.kind = net::parse_codec_kind(value());
      } else if (flag == "--codec-bits") {
        const std::uint64_t bits = parse_count(flag, value());
        if (bits != 8) {
          usage(flag + ": only 8-bit quantization is supported, got '" +
                std::to_string(bits) + "'");
        }
        cfg.codec.bits = bits;
      } else if (flag == "--codec-topk") {
        const std::string raw = value();
        const double v = parse_double(flag, raw);
        if (!std::isfinite(v) || v <= 0.0 || v > 1.0) {
          usage(flag + " must be in (0, 1], got '" + raw + "'");
        }
        cfg.codec.topk_fraction = v;
      } else if (flag == "--shards") {
        cfg.shards = parse_count(flag, value());
      } else if (flag == "--population") {
        cfg.n_clients = parse_count(flag, value());
      } else if (flag == "--lazy-clients") {
        cfg.lazy_clients = true;
      } else if (flag == "--eval-every") {
        cfg.eval_every = parse_count(flag, value());
      } else if (flag == "--eval-max-clients") {
        cfg.eval_max_clients = parse_count(flag, value());
      } else if (flag == "--round-engine") {
        cfg.round_engine = fl::parse_round_engine(value());
      } else if (flag == "--async-k") {
        cfg.async.k = parse_count(flag, value());
        cfg.round_engine = fl::RoundEngineKind::buffered_async;
      } else if (flag == "--async-t-ms") {
        cfg.async.t_ms = parse_nonneg(flag, value());
        cfg.round_engine = fl::RoundEngineKind::buffered_async;
      } else if (flag == "--async-max-staleness") {
        cfg.async.max_staleness = parse_count(flag, value());
        cfg.round_engine = fl::RoundEngineKind::buffered_async;
      } else if (flag == "--shard-crash") {
        cfg.shard_faults.crash_prob = parse_prob(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--shard-timeout") {
        cfg.shard_faults.timeout_prob = parse_prob(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--shard-corrupt") {
        cfg.shard_faults.corrupt_prob = parse_prob(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--shard-retries") {
        cfg.shard_faults.max_retries = parse_count(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--shard-backoff-base") {
        cfg.shard_faults.backoff_base_ms = parse_nonneg(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--shard-backoff-cap") {
        cfg.shard_faults.backoff_cap_ms = parse_nonneg(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--shard-fault-seed") {
        cfg.shard_faults.seed = parse_count(flag, value());
        shard_fault_flags = true;
      } else if (flag == "--checkpoint") {
        opts.checkpoint_save_path = value();
      } else if (flag == "--checkpoint-round") {
        opts.checkpoint_round = parse_count(flag, value());
      } else if (flag == "--checkpoint-every") {
        opts.checkpoint_every = parse_count(flag, value());
      } else if (flag == "--checkpoint-keep") {
        opts.checkpoint_keep = parse_count(flag, value());
      } else if (flag == "--resume") {
        opts.checkpoint_load_path = value();
      } else if (flag == "--crash-at") {
        // R or R:PHASE — both halves validated like any other flag:
        // the round through the unsigned-decimal parser, the phase
        // against the closed name set.
        const std::string raw = value();
        const std::size_t colon = raw.find(':');
        opts.crash_round = parse_count(flag, raw.substr(0, colon));
        if (colon != std::string::npos) {
          opts.crash_phase = sim::parse_crash_phase(raw.substr(colon + 1));
        }
      } else if (flag == "--json-rounds") {
        want_json_rounds = true;
      } else if (flag == "--topk") {
        want_topk = true;
      } else if (flag == "--clusters") {
        want_clusters = true;
      } else if (flag == "--csv") {
        want_csv = true;
      } else if (flag == "--help" || flag == "-h") {
        std::cout << kUsage;
        return 0;
      } else {
        usage("unknown flag " + flag);
      }
    } catch (const std::exception& e) {
      usage(std::string(e.what()));
    }
  }

  if (cfg.n_clients == 0) {
    usage("--clients/--population must be at least 1");
  }
  if (cfg.rounds == 0) usage("--rounds must be at least 1");
  if (cfg.sample_prob <= 0.0) usage("--q must be in (0, 1]");
  if (net::codec_is_lossy(cfg.codec.kind) && !cfg.net.enabled) {
    usage("a lossy --codec requires the simulated transport (--net) — "
          "without a wire there is nothing to compress");
  }
  if (cfg.shards == 0) usage("--shards must be at least 1");
  if (cfg.shards > cfg.n_clients) {
    usage("--shards must not exceed the registered population "
          "(--clients/--population)");
  }
  {
    // A shard count beyond the expected round cohort means structurally
    // empty shards every round — reject it like any other nonsensical
    // topology instead of silently clamping.
    const double expected = std::ceil(
        cfg.sample_prob * static_cast<double>(cfg.n_clients));
    const std::size_t expected_cohort =
        expected < 1.0 ? 1 : static_cast<std::size_t>(expected);
    if (cfg.shards > expected_cohort) {
      usage("--shards exceeds the expected round cohort "
            "(ceil(--q * --clients) = " + std::to_string(expected_cohort) +
            ") — shards would sit empty every round");
    }
  }
  if ((cfg.shards > 1 || cfg.lazy_clients) &&
      cfg.algorithm == sim::AlgorithmKind::metafed) {
    usage("--shards/--lazy-clients scale the server's round loop and do "
          "not apply to --algorithm metafed");
  }
  if (cfg.lazy_clients && cfg.eval_max_clients == 0) {
    usage("--lazy-clients requires --eval-max-clients > 0 — evaluating "
          "every client would materialize the whole registered population");
  }
  if (cfg.net.enabled && cfg.net.latency_min_ms > cfg.net.latency_max_ms) {
    usage("--net-latency-min must not exceed --net-latency-max");
  }
  if (shard_fault_flags && cfg.shards <= 1) {
    usage("--shard-* flags inject faults into the aggregation tree and "
          "require --shards > 1");
  }
  if (!opts.checkpoint_save_path.empty() && opts.checkpoint_round == 0 &&
      opts.checkpoint_every == 0) {
    usage("--checkpoint also needs --checkpoint-round or --checkpoint-every");
  }
  if (opts.checkpoint_every > 0 && opts.checkpoint_save_path.empty()) {
    usage("--checkpoint-every needs --checkpoint PATH");
  }
  if (opts.checkpoint_keep == 0) {
    usage("--checkpoint-keep must be at least 1");
  }
  if (opts.crash_round != sim::kNoCrash) {
    if (opts.crash_round >= cfg.rounds) {
      usage("--crash-at round must be below --rounds — the crash would "
            "never fire");
    }
    if (opts.crash_phase != sim::CrashPhase::post_train &&
        opts.checkpoint_every == 0) {
      usage("--crash-at phases mid-buffer and mid-save interrupt the "
            "checkpoint write and need --checkpoint-every");
    }
  }
  std::cerr << "running " << sim::experiment_tag(cfg) << " ...\n";
  sim::ExperimentResult result;
  try {
    result = sim::run_experiment(cfg, opts);
  } catch (const sim::CrashInjected& e) {
    // The scheduled chaos crash, not a failure: a distinct exit code so
    // restart harnesses can tell "died as configured" from "usage error"
    // (2) and "clean finish" (0).
    std::cerr << e.what() << "\n";
    return 42;
  } catch (const std::exception& e) {
    usage(std::string("experiment failed: ") + e.what());
  }
  if (!result.recovered_from.empty()) {
    // Recovery provenance for restart harnesses (the chaos-smoke CI job
    // greps this line): which generation actually restored and how many
    // damaged ones were skipped on the way.
    std::cerr << "resumed from " << result.recovered_from << " ("
              << result.recovery_discarded << " damaged generation(s) "
              << "discarded)\n";
  }
  if (!opts.checkpoint_save_path.empty()) {
    std::cerr << "checkpoint saved to " << opts.checkpoint_save_path
              << " after " << result.rounds.size() << " rounds\n";
  }

  if (want_json_rounds) {
    // JSON owns stdout so the output stays machine-parseable; the summary
    // tables still go to stderr for the human running it.
    sim::write_rounds_json(std::cout, cfg, result.rounds);
  }
  std::ostream& out = want_json_rounds ? std::cerr : std::cout;

  std::vector<sim::SeriesRow> rows;
  rows.push_back({"all benign clients", result.population.benign_ac,
                  result.population.attack_sr});
  if (want_topk) {
    for (double k : {1.0, 25.0, 50.0}) {
      const auto m = metrics::average_top_k(result.final_evals, k);
      rows.push_back({"top-" + std::to_string(static_cast<int>(k)) +
                          "% infected",
                      m.benign_ac, m.attack_sr});
    }
  }
  if (want_csv) {
    sim::write_series_csv(out, rows);
  } else {
    sim::print_series(out, sim::experiment_tag(cfg), rows);
    if (want_clusters) {
      sim::print_clusters(out, "risk clusters", result.clusters);
    }
  }
  return 0;
}
