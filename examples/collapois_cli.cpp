// Command-line experiment driver: every knob of ExperimentConfig exposed
// as a flag, results printed as tables or CSV. The fastest way to explore
// the attack/defense landscape without writing code.
//
//   collapois_cli --dataset femnist --algorithm fedavg --attack collapois \
//                 --defense dp --alpha 0.1 --fraction 0.05 --rounds 200
//
// Flags (defaults in brackets):
//   --dataset femnist|sentiment        [femnist]
//   --algorithm fedavg|feddc|metafed   [fedavg]
//   --attack none|collapois|dpois|mrepl|dba [collapois]
//   --defense none|dp|userdp|normbound|krum|multikrum|median|trimmedmean|
//             rlr|signsgd|flare|crfl|ditto   [none]
//   --alpha F          Dirichlet concentration [1.0]
//   --clients N        federation size [100]
//   --samples N        samples per client [80]
//   --fraction F       compromised fraction [0.05]
//   --rounds N         training rounds [200]
//   --q F              client sampling probability [0.05]
//   --strike N         attack start round [20]
//   --seed N           RNG seed [42]
//   --threads N        runtime worker threads; 0 = auto (clamped
//                      hardware_concurrency), 1 = sequential [0].
//                      Results are bit-identical for any value.
//   --topk             also print top-1/25/50% infected-client metrics
//   --clusters         print the risk-cluster table (Eq. 8 / Eq. 9)
//   --csv              emit population metrics as CSV
//
// Fault injection and hardening (DESIGN.md §6):
//   --dropout F        per-round client dropout probability [0]
//   --straggler F      straggler probability (stale compute, damped) [0]
//   --corrupt F        corrupted-update probability (NaN/dim/blow-up) [0]
//   --norm-ceiling F   quarantine updates with L2 norm above F [0 = off]
//   --json-rounds      emit per-round telemetry (fault accounting) as JSON
//
// Checkpoint/resume (bit-exact; sim/checkpoint.h):
//   --checkpoint PATH --checkpoint-round N   halt after N rounds, save
//   --resume PATH                            restore and run to --rounds
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/report.h"
#include "sim/runner.h"

namespace {

using namespace collapois;

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "see the header of examples/collapois_cli.cpp for flags\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentConfig cfg;
  cfg.attack = sim::AttackKind::collapois;
  sim::RunOptions opts;
  bool want_topk = false;
  bool want_clusters = false;
  bool want_csv = false;
  bool want_json_rounds = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + flag);
      return argv[++i];
    };
    try {
      if (flag == "--dataset") {
        cfg.dataset = sim::parse_dataset(value());
      } else if (flag == "--algorithm") {
        cfg.algorithm = sim::parse_algorithm(value());
      } else if (flag == "--attack") {
        cfg.attack = sim::parse_attack(value());
      } else if (flag == "--defense") {
        cfg.defense = defense::parse_defense(value());
      } else if (flag == "--alpha") {
        cfg.alpha = std::stod(value());
      } else if (flag == "--clients") {
        cfg.n_clients = std::stoul(value());
      } else if (flag == "--samples") {
        cfg.samples_per_client = std::stoul(value());
      } else if (flag == "--fraction") {
        cfg.compromised_fraction = std::stod(value());
      } else if (flag == "--rounds") {
        cfg.rounds = std::stoul(value());
      } else if (flag == "--q") {
        cfg.sample_prob = std::stod(value());
      } else if (flag == "--strike") {
        cfg.attack_start_round = std::stoul(value());
      } else if (flag == "--seed") {
        cfg.seed = std::stoull(value());
      } else if (flag == "--threads") {
        cfg.threads = std::stoul(value());
      } else if (flag == "--dropout") {
        cfg.faults.dropout_prob = std::stod(value());
      } else if (flag == "--straggler") {
        cfg.faults.straggler_prob = std::stod(value());
      } else if (flag == "--corrupt") {
        cfg.faults.corrupt_prob = std::stod(value());
      } else if (flag == "--norm-ceiling") {
        cfg.update_norm_ceiling = std::stod(value());
      } else if (flag == "--checkpoint") {
        opts.checkpoint_save_path = value();
      } else if (flag == "--checkpoint-round") {
        opts.checkpoint_round = std::stoul(value());
      } else if (flag == "--resume") {
        opts.checkpoint_load_path = value();
      } else if (flag == "--json-rounds") {
        want_json_rounds = true;
      } else if (flag == "--topk") {
        want_topk = true;
      } else if (flag == "--clusters") {
        want_clusters = true;
      } else if (flag == "--csv") {
        want_csv = true;
      } else if (flag == "--help" || flag == "-h") {
        std::cout << "see the header of examples/collapois_cli.cpp\n";
        return 0;
      } else {
        usage("unknown flag " + flag);
      }
    } catch (const std::exception& e) {
      usage(std::string(e.what()));
    }
  }

  if (!opts.checkpoint_save_path.empty() && opts.checkpoint_round == 0) {
    usage("--checkpoint also needs --checkpoint-round");
  }
  std::cerr << "running " << sim::experiment_tag(cfg) << " ...\n";
  sim::ExperimentResult result;
  try {
    result = sim::run_experiment(cfg, opts);
  } catch (const std::exception& e) {
    usage(std::string("experiment failed: ") + e.what());
  }
  if (!opts.checkpoint_save_path.empty()) {
    std::cerr << "checkpoint saved to " << opts.checkpoint_save_path
              << " after " << result.rounds.size() << " rounds\n";
  }

  if (want_json_rounds) {
    // JSON owns stdout so the output stays machine-parseable; the summary
    // tables still go to stderr for the human running it.
    sim::write_rounds_json(std::cout, cfg, result.rounds);
  }
  std::ostream& out = want_json_rounds ? std::cerr : std::cout;

  std::vector<sim::SeriesRow> rows;
  rows.push_back({"all benign clients", result.population.benign_ac,
                  result.population.attack_sr});
  if (want_topk) {
    for (double k : {1.0, 25.0, 50.0}) {
      const auto m = metrics::average_top_k(result.final_evals, k);
      rows.push_back({"top-" + std::to_string(static_cast<int>(k)) +
                          "% infected",
                      m.benign_ac, m.attack_sr});
    }
  }
  if (want_csv) {
    sim::write_series_csv(out, rows);
  } else {
    sim::print_series(out, sim::experiment_tag(cfg), rows);
    if (want_clusters) {
      sim::print_clusters(out, "risk clusters", result.clusters);
    }
  }
  return 0;
}
