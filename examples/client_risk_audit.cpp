// Client-level risk audit (the paper's headline methodology, Figs. 11-12):
// which benign clients does a CollaPois campaign actually infect, at what
// Attack SR, and why?
//
// Runs CollaPois under a DP defense, then:
//  - prints the per-client (Benign AC, Attack SR) scatter,
//  - groups clients into disjoint top-1% / 25% / 50% / bottom risk
//    clusters (Eq. 8),
//  - relates each cluster's risk to the proximity of its label
//    distribution to the attacker's auxiliary data (Eq. 9).
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace collapois;

  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::femnist_like;
  cfg.algorithm = sim::AlgorithmKind::fedavg;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = defense::DefenseKind::dp;
  cfg.alpha = 0.1;
  cfg.seed = 11;

  std::cout << "Running: " << sim::experiment_tag(cfg) << "\n\n";
  const sim::ExperimentResult result = sim::run_experiment(cfg);

  // Per-client scatter (Fig. 11): sorted by score so the infected tail is
  // visible at the top.
  auto evals = result.final_evals;
  std::sort(evals.begin(), evals.end(),
            [](const auto& a, const auto& b) { return a.score() > b.score(); });
  std::cout << "== per-client metrics (sorted by Eq. 8 score) ==\n";
  std::cout << std::left << std::setw(8) << "client" << std::right
            << std::setw(6) << "role" << std::setw(12) << "benign_ac"
            << std::setw(12) << "attack_sr" << "\n";
  for (const auto& e : evals) {
    if (!e.has_test_data) continue;
    std::cout << std::left << std::setw(8) << e.client_index << std::right
              << std::setw(6) << (e.compromised ? "COMP" : "ok") << std::fixed
              << std::setprecision(4) << std::setw(12) << e.benign_ac
              << std::setw(12) << e.attack_sr << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n";

  sim::print_clusters(std::cout,
                      "risk clusters and label-distribution proximity (CS_k)",
                      result.clusters);

  std::cout << "\nReading: clusters with higher CS_k (label distributions "
               "closer to the attacker's auxiliary data) should show higher "
               "Attack SR — the paper's Fig. 12 relationship.\n";
  return 0;
}
