// Quickstart: run the CollaPois attack against FedAvg on the synthetic
// FEMNIST-like federation and print population + cluster metrics.
//
// This is the smallest end-to-end use of the library's public API:
//   1. describe the experiment in an ExperimentConfig;
//   2. run it;
//   3. read out Benign AC / Attack SR at the population and client level.
#include <iostream>

#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace collapois;

  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::femnist_like;
  cfg.algorithm = sim::AlgorithmKind::fedavg;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = defense::DefenseKind::none;
  cfg.alpha = 0.1;  // strongly non-IID
  cfg.seed = 7;

  std::cout << "Running: " << sim::experiment_tag(cfg) << "\n";
  const sim::ExperimentResult result = sim::run_experiment(cfg);

  std::vector<sim::SeriesRow> rows;
  rows.push_back({"population (benign clients)", result.population.benign_ac,
                  result.population.attack_sr});
  sim::print_series(std::cout, "CollaPois vs FedAvg (no defense)", rows);
  sim::print_clusters(std::cout, "client risk clusters", result.clusters);

  std::cout << "compromised clients: " << result.compromised_ids.size()
            << " of " << cfg.n_clients << "\n";
  std::cout << "final ||theta - X||: "
            << result.rounds.back().distance_to_x << "\n";
  return 0;
}
