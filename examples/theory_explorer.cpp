// Theory explorer: evaluate the paper's three theorems numerically,
// without running a full federation.
//
//  - Theorem 1: how the required fraction of compromised clients falls as
//    benign gradients scatter (the Fig. 5 surface, printed as a table);
//  - the Hoeffding error of the attacker's |C| estimate vs sample count;
//  - Theorem 2: the distance-to-X bound for different psi lower ends a;
//  - Theorem 3: estimation-error bounds for a synthetic round.
#include <iomanip>
#include <iostream>

#include "core/theory.h"
#include "stats/rng.h"

int main() {
  using namespace collapois;
  namespace theory = core::theory;

  std::cout << "== Theorem 1: required |C|/|N| over (mu, sigma), psi ~ "
               "U[0.9, 1.0] ==\n";
  std::cout << std::setw(8) << "mu\\sig";
  const double sigmas[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  for (double s : sigmas) std::cout << std::setw(10) << s;
  std::cout << "\n";
  for (double mu = 0.2; mu <= 1.41; mu += 0.2) {
    std::cout << std::fixed << std::setprecision(2) << std::setw(8) << mu;
    for (double s : sigmas) {
      std::cout << std::setprecision(4) << std::setw(10)
                << theory::theorem1_fraction(mu, s, 0.9, 1.0);
    }
    std::cout << "\n";
  }
  std::cout.unsetf(std::ios::fixed);

  std::cout << "\n== Attacker's Hoeffding half-width on E[beta^2] (95% "
               "confidence) ==\n";
  for (std::size_t n : {10UL, 50UL, 100UL, 500UL, 1000UL}) {
    std::cout << "  n=" << std::setw(5) << n << "  eps="
              << theory::theorem1_hoeffding_halfwidth(n, 0.05) << "\n";
  }

  std::cout << "\n== Theorem 2: ||theta - X|| bound, ||delta||=1, "
               "||zeta||=0.01 ==\n";
  for (double a : {0.5, 0.7, 0.9, 0.95, 0.99}) {
    std::cout << "  a=" << a
              << "  bound=" << theory::theorem2_distance_bound(a, 1.0, 0.01)
              << "\n";
  }

  std::cout << "\n== Theorem 3: estimation-error bounds (synthetic round) "
               "==\n";
  stats::Rng rng(3);
  const std::size_t dim = 64;
  tensor::FlatVec x(dim);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<tensor::FlatVec> detected;
  for (int c = 0; c < 3; ++c) {
    tensor::FlatVec u(dim);
    for (auto& v : u) v = static_cast<float>(rng.normal(0.0, 0.1));
    detected.push_back(u);
  }
  std::vector<tensor::FlatVec> models;
  for (int i = 0; i < 20; ++i) {
    tensor::FlatVec m = x;
    for (auto& v : m) v = static_cast<float>(v + rng.normal(0.0, 0.5));
    models.push_back(m);
  }
  const auto bounds =
      theory::theorem3_error_bounds(detected, 1.0, 3, 1.0, models, x);
  std::cout << "  lower=" << bounds.lower << "  upper=" << bounds.upper
            << "\n";
  std::cout << "  (lower <= upper: " << (bounds.lower <= bounds.upper)
            << ")\n";
  return 0;
}
