// Targeted "semi-ready" CollaPois (the Discussion section's escalation):
// the attacker picks a high-value cohort by label-distribution proximity,
// specializes the Trojaned model toward that cohort, and arms only after
// the federation's drift shows the cohort participating.
//
// This example builds the pieces by hand (no ExperimentRunner) to show
// the lower-level public API: federation building, trojan training,
// target selection, and a custom client population in a ServerAlgorithm.
#include <iostream>
#include <memory>

#include "core/targeted.h"
#include "core/trojan_trainer.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/server_algorithm.h"
#include "metrics/client_metrics.h"
#include "nn/zoo.h"
#include "trojan/warp_trigger.h"

int main() {
  using namespace collapois;
  stats::Rng rng(99);

  // Federation: strongly non-IID so cohorts are well separated.
  data::SyntheticImageGenerator gen({}, 5);
  const std::size_t n = 80;
  data::FederatedData fed = data::build_federation(gen, n, 80, 0.05, rng);

  nn::Model arch = nn::make_lenet_small({});
  arch.init(rng);
  const nn::SgdConfig sgd{.learning_rate = 0.05, .batch_size = 16,
                          .epochs = 1};

  // Attacker: 4 compromised clients pool their data into D_a.
  const auto comp_ids = rng.sample_without_replacement(n, 4);
  std::vector<const data::Dataset*> comp_data;
  for (std::size_t id : comp_ids) comp_data.push_back(&fed.clients[id].train);
  data::Dataset aux = core::pool_auxiliary_data(comp_data);

  // High-value cohort: the 15% of clients whose label mix is closest to
  // D_a (the attacker can estimate this only for distributions it can
  // approximate — exactly the Eq. 9 proximity of Fig. 12).
  const auto histograms = fed.client_label_histograms();
  const auto targets = core::select_high_value_targets(
      histograms, aux.label_histogram(), 0.15);
  std::cout << "high-value cohort: " << targets.size() << " clients\n";

  // Cohort-specialized auxiliary set and Trojaned model X.
  std::vector<double> cohort_hist(fed.num_classes, 0.0);
  for (std::size_t t : targets) {
    for (std::size_t c = 0; c < fed.num_classes; ++c) {
      cohort_hist[c] += histograms[t][c];
    }
  }
  data::Dataset specialized =
      core::reweight_to_distribution(aux, cohort_hist, aux.size() * 2, rng);
  trojan::WarpTrigger trigger({}, 7);
  nn::Model attacker_model = arch;
  core::TrojanTrainConfig tcfg;
  const auto trained = core::train_trojaned_model(
      std::move(attacker_model), specialized, trigger, tcfg, rng);

  // Target direction: the cohort-like pseudo-gradient at theta^1 (one
  // local pass on the specialized data).
  nn::Model probe = arch;
  stats::Rng prng = rng.fork();
  nn::train_sgd(probe, specialized, sgd, prng);
  const tensor::FlatVec target_dir =
      tensor::sub(arch.get_parameters(), probe.get_parameters());

  // Population: benign clients + semi-ready compromised clients.
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<bool> compromised(n, false);
  for (std::size_t id : comp_ids) compromised[id] = true;
  for (std::size_t i = 0; i < n; ++i) {
    stats::Rng crng = rng.fork();
    if (!compromised[i]) {
      clients.push_back(std::make_unique<fl::BenignClient>(
          i, &fed.clients[i].train, arch, sgd, 0.5, std::move(crng)));
      continue;
    }
    auto dormant = std::make_unique<fl::BenignClient>(
        i, &fed.clients[i].train, arch, sgd, 0.5, crng.fork());
    auto attack = std::make_unique<core::CollaPoisClient>(
        i, tensor::FlatVec{}, core::CollaPoisConfig{}, crng.fork(),
        std::move(dormant));
    clients.push_back(std::make_unique<core::SemiReadyClient>(
        std::move(attack), trained.x, target_dir, core::SemiReadyConfig{}));
  }

  fl::ServerAlgorithm algo("fedavg", arch.get_parameters(),
                           std::make_unique<fl::FedAvgAggregator>(),
                           fl::ServerConfig{1.0, 0.1}, std::move(clients),
                           rng.fork());
  for (int r = 0; r < 150; ++r) algo.run_round();

  // Cohort vs rest: the targeted attack should infect the cohort harder.
  metrics::EvalConfig ecfg;
  const auto evals = metrics::evaluate_clients(algo, fed, trigger, arch,
                                               compromised, ecfg);
  double cohort_sr = 0.0;
  double rest_sr = 0.0;
  int n_cohort = 0;
  int n_rest = 0;
  for (const auto& e : evals) {
    if (e.compromised || !e.has_test_data) continue;
    const bool in_cohort =
        std::find(targets.begin(), targets.end(), e.client_index) !=
        targets.end();
    if (in_cohort) {
      cohort_sr += e.attack_sr;
      ++n_cohort;
    } else {
      rest_sr += e.attack_sr;
      ++n_rest;
    }
  }
  std::cout << "cohort attack SR:  " << cohort_sr / std::max(n_cohort, 1)
            << " (" << n_cohort << " clients)\n";
  std::cout << "rest attack SR:    " << rest_sr / std::max(n_rest, 1) << " ("
            << n_rest << " clients)\n";
  std::cout << "(expected: cohort >= rest — the strike is aimed)\n";
  return 0;
}
