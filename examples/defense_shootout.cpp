// Defense shootout: CollaPois against every implemented robust-training
// defense on one federation (the Fig. 9/16 sweep at a single alpha).
// A useful defense must cut Attack SR without wrecking Benign AC; the
// paper's finding is that none of these manages both.
#include <iostream>

#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace collapois;

  const defense::DefenseKind defenses[] = {
      defense::DefenseKind::none,         defense::DefenseKind::dp,
      defense::DefenseKind::user_dp,      defense::DefenseKind::norm_bound,
      defense::DefenseKind::krum,         defense::DefenseKind::multi_krum,
      defense::DefenseKind::coord_median, defense::DefenseKind::trimmed_mean,
      defense::DefenseKind::rlr,          defense::DefenseKind::sign_sgd,
      defense::DefenseKind::flare,        defense::DefenseKind::crfl,
      defense::DefenseKind::ditto,
  };

  std::vector<sim::SeriesRow> rows;
  for (defense::DefenseKind d : defenses) {
    sim::ExperimentConfig cfg;
    cfg.dataset = sim::DatasetKind::femnist_like;
    cfg.algorithm = sim::AlgorithmKind::fedavg;
    cfg.attack = sim::AttackKind::collapois;
    cfg.defense = d;
    cfg.alpha = 0.1;
    cfg.seed = 23;

    const sim::ExperimentResult r = sim::run_experiment(cfg);
    rows.push_back({defense::defense_name(d), r.population.benign_ac,
                    r.population.attack_sr});
    std::cout << "finished " << defense::defense_name(d) << "\n";
  }
  std::cout << "\n";
  sim::print_series(std::cout,
                    "CollaPois vs defenses (femnist-like, fedavg, alpha=0.1)",
                    rows);
  return 0;
}
