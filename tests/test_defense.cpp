// Tests for the defense suite: each aggregation rule's defining behaviour,
// robustness properties under an injected outlier, permutation invariance
// across all aggregators (TEST_P), the registry, and the statistical
// detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "defense/detector.h"
#include "defense/krum.h"
#include "defense/median.h"
#include "defense/normbound.h"
#include "defense/registry.h"
#include "defense/rlr.h"
#include "stats/geometry.h"

namespace collapois::defense {
namespace {

std::vector<fl::ClientUpdate> cluster_plus_outlier() {
  // Five updates near (1, 1, ...), one wild outlier.
  std::vector<fl::ClientUpdate> updates;
  for (int i = 0; i < 5; ++i) {
    fl::ClientUpdate u;
    u.client_id = static_cast<std::size_t>(i);
    u.delta = tensor::FlatVec(8, 1.0f + 0.01f * static_cast<float>(i * i));
    updates.push_back(std::move(u));
  }
  fl::ClientUpdate outlier;
  outlier.client_id = 5;
  outlier.delta = tensor::FlatVec(8, -100.0f);
  updates.push_back(std::move(outlier));
  return updates;
}

TEST(Krum, SelectsCentralUpdateAndDropsOutlier) {
  KrumAggregator krum(KrumConfig{1, 1});
  const auto updates = cluster_plus_outlier();
  const auto out = krum.aggregate(updates, {});
  EXPECT_NEAR(out[0], 1.0f, 0.1f);
  ASSERT_EQ(krum.last_selected().size(), 1u);
  EXPECT_NE(krum.last_selected()[0], 5u);
}

TEST(Krum, MultiKrumAveragesTopM) {
  KrumAggregator krum(KrumConfig{1, 3});
  const auto updates = cluster_plus_outlier();
  const auto out = krum.aggregate(updates, {});
  EXPECT_EQ(krum.last_selected().size(), 3u);
  EXPECT_NEAR(out[0], 1.0f, 0.1f);
  EXPECT_EQ(krum.name(), "multi-krum");
}

TEST(Krum, SingleUpdatePassthrough) {
  KrumAggregator krum(KrumConfig{1, 1});
  std::vector<fl::ClientUpdate> one(1);
  one[0].delta = {3.0f, 4.0f};
  EXPECT_EQ(krum.aggregate(one, {}), (tensor::FlatVec{3.0f, 4.0f}));
  EXPECT_THROW(krum.aggregate({}, {}), std::invalid_argument);
  EXPECT_THROW(KrumAggregator(KrumConfig{1, 0}), std::invalid_argument);
}

TEST(CoordMedian, IgnoresOutlier) {
  CoordMedianAggregator median;
  const auto updates = cluster_plus_outlier();
  const auto out = median.aggregate(updates, {});
  for (float v : out) EXPECT_NEAR(v, 1.0f, 0.05f);
}

TEST(CoordMedian, OddAndEvenCounts) {
  CoordMedianAggregator median;
  std::vector<fl::ClientUpdate> updates(3);
  updates[0].delta = {1.0f};
  updates[1].delta = {2.0f};
  updates[2].delta = {9.0f};
  EXPECT_EQ(median.aggregate(updates, {})[0], 2.0f);
  updates.resize(4);
  updates[3].delta = {3.0f};
  EXPECT_NEAR(median.aggregate(updates, {})[0], 2.5f, 1e-6);
}

TEST(TrimmedMean, DropsExtremes) {
  TrimmedMeanAggregator tm(0.2);  // trims 1 of 6 from each side
  const auto updates = cluster_plus_outlier();
  const auto out = tm.aggregate(updates, {});
  for (float v : out) EXPECT_NEAR(v, 1.0f, 0.05f);
  EXPECT_THROW(TrimmedMeanAggregator(0.5), std::invalid_argument);
  EXPECT_THROW(TrimmedMeanAggregator(-0.1), std::invalid_argument);
}

TEST(NormBound, ClipsBeforeAveraging) {
  NormBoundAggregator nb(NormBoundConfig{1.0, 0.0},
                         std::make_unique<fl::FedAvgAggregator>(),
                         stats::Rng(1));
  std::vector<fl::ClientUpdate> updates(2);
  updates[0].delta = {10.0f, 0.0f};  // norm 10 -> clipped to 1
  updates[1].delta = {0.0f, 0.0f};
  const auto out = nb.aggregate(updates, {});
  EXPECT_NEAR(out[0], 0.5f, 1e-5);
  EXPECT_THROW(NormBoundAggregator(NormBoundConfig{0.0, 0.0},
                                   std::make_unique<fl::FedAvgAggregator>(),
                                   stats::Rng(1)),
               std::invalid_argument);
}

TEST(NormBound, NoiseIsInjected) {
  NormBoundAggregator nb(NormBoundConfig{1.0, 0.5},
                         std::make_unique<fl::FedAvgAggregator>(),
                         stats::Rng(2));
  std::vector<fl::ClientUpdate> updates(1);
  updates[0].delta = tensor::FlatVec(64, 0.0f);
  const auto out = nb.aggregate(updates, {});
  EXPECT_GT(stats::l2_norm(out), 0.0);
}

TEST(Dp, NoiseScalesWithUpdateCount) {
  // sigma = z * clip / n: more participants -> less noise.
  auto run = [](std::size_t n) {
    DpAggregator dp(DpConfig{1.0, 1.0},
                    std::make_unique<fl::FedAvgAggregator>(), stats::Rng(3));
    std::vector<fl::ClientUpdate> updates(n);
    for (auto& u : updates) u.delta = tensor::FlatVec(256, 0.0f);
    return stats::l2_norm(dp.aggregate(updates, {}));
  };
  EXPECT_GT(run(2), run(20) * 2.0);
}

TEST(Rlr, FlipsWeaklyAgreedCoordinates) {
  RlrAggregator rlr(RlrConfig{3.0});
  std::vector<fl::ClientUpdate> updates(3);
  // Coordinate 0: all agree (+); coordinate 1: split 2 vs 1.
  updates[0].delta = {1.0f, 1.0f};
  updates[1].delta = {1.0f, 1.0f};
  updates[2].delta = {1.0f, -4.0f};
  const auto out = rlr.aggregate(updates, {});
  EXPECT_NEAR(out[0], 1.0f, 1e-6);             // kept
  EXPECT_NEAR(out[1], -(-2.0f / 3.0f), 1e-5);  // flipped mean
}

TEST(SignSgd, MajorityVote) {
  SignSgdAggregator ss(SignSgdConfig{0.1});
  std::vector<fl::ClientUpdate> updates(3);
  updates[0].delta = {1.0f, -1.0f, 0.0f};
  updates[1].delta = {2.0f, -2.0f, 0.0f};
  updates[2].delta = {-1.0f, -5.0f, 0.0f};
  const auto out = ss.aggregate(updates, {});
  EXPECT_NEAR(out[0], 0.1f, 1e-6);
  EXPECT_NEAR(out[1], -0.1f, 1e-6);
  EXPECT_NEAR(out[2], 0.0f, 1e-6);
  EXPECT_THROW(SignSgdAggregator(SignSgdConfig{0.0}), std::invalid_argument);
}

// Permutation invariance: every aggregation rule must be independent of
// the order clients report in (a basic correctness property the server
// relies on).
class AggregatorPermutation : public ::testing::TestWithParam<DefenseKind> {};

TEST_P(AggregatorPermutation, OrderDoesNotMatter) {
  DefenseParams params;
  auto agg = make_defense(GetParam(), params, stats::Rng(4));
  // Noise-injecting defenses are only invariant in distribution; disable
  // noise for the check.
  if (GetParam() == DefenseKind::dp) {
    params.noise_multiplier = 0.0;
    agg = make_defense(GetParam(), params, stats::Rng(4));
  }
  if (GetParam() == DefenseKind::norm_bound) {
    params.noise_std = 0.0;
    agg = make_defense(GetParam(), params, stats::Rng(4));
  }
  auto updates = cluster_plus_outlier();
  const tensor::FlatVec global(8, 0.0f);
  const auto forward = agg->aggregate(updates, global);
  std::reverse(updates.begin(), updates.end());
  auto agg2 = make_defense(GetParam(), params, stats::Rng(4));
  const auto reversed = agg2->aggregate(updates, global);
  ASSERT_EQ(forward.size(), reversed.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_NEAR(forward[i], reversed[i], 1e-4) << "coord " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDefenses, AggregatorPermutation,
    ::testing::Values(DefenseKind::none, DefenseKind::dp,
                      DefenseKind::norm_bound, DefenseKind::krum,
                      DefenseKind::multi_krum, DefenseKind::coord_median,
                      DefenseKind::trimmed_mean, DefenseKind::rlr,
                      DefenseKind::sign_sgd));

TEST(Registry, NameRoundTrip) {
  for (DefenseKind k :
       {DefenseKind::none, DefenseKind::dp, DefenseKind::norm_bound,
        DefenseKind::krum, DefenseKind::multi_krum, DefenseKind::coord_median,
        DefenseKind::trimmed_mean, DefenseKind::rlr, DefenseKind::sign_sgd}) {
    EXPECT_EQ(parse_defense(defense_name(k)), k);
  }
  EXPECT_THROW(parse_defense("bogus"), std::invalid_argument);
}

TEST(Registry, TableHasExpectedShape) {
  const auto table = defense_registry();
  EXPECT_GE(table.size(), 7u);
  int metafed_applicable = 0;
  for (const auto& row : table) {
    EXPECT_FALSE(row.method.empty());
    EXPECT_FALSE(row.description.empty());
    if (row.applicable_to_metafed) ++metafed_applicable;
  }
  // Only the clip/noise defenses compose with MetaFed (paper: Krum and
  // RLR are not applicable).
  EXPECT_EQ(metafed_applicable, 2);
}

TEST(Detector, DistinguishesBlatantAttack) {
  // Benign cluster around +1; malicious cluster around -1 (opposite
  // direction, larger magnitude): the tests must reject.
  std::vector<fl::ClientUpdate> updates;
  std::vector<bool> flags;
  stats::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    fl::ClientUpdate u;
    u.delta = tensor::FlatVec(16);
    for (auto& v : u.delta) v = static_cast<float>(1.0 + rng.normal(0, 0.1));
    updates.push_back(std::move(u));
    flags.push_back(false);
  }
  for (int i = 0; i < 6; ++i) {
    fl::ClientUpdate u;
    u.delta = tensor::FlatVec(16);
    for (auto& v : u.delta) v = static_cast<float>(-3.0 + rng.normal(0, 0.1));
    updates.push_back(std::move(u));
    flags.push_back(true);
  }
  const DetectionReport r = analyze_round(updates, flags);
  EXPECT_TRUE(r.distinguishable());
  EXPECT_GT(r.three_sigma_rate, 0.9);
}

TEST(Detector, PassesMatchedPopulations) {
  std::vector<fl::ClientUpdate> updates;
  std::vector<bool> flags;
  stats::Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    fl::ClientUpdate u;
    u.delta = tensor::FlatVec(16);
    for (auto& v : u.delta) v = static_cast<float>(1.0 + rng.normal(0, 0.3));
    updates.push_back(std::move(u));
    flags.push_back(i < 8);  // the "malicious" group is drawn identically
  }
  const DetectionReport r = analyze_round(updates, flags);
  EXPECT_FALSE(r.distinguishable());
  EXPECT_LT(r.three_sigma_rate, 0.2);
}

TEST(Detector, NoPowerWithTinyGroups) {
  std::vector<fl::ClientUpdate> updates(3);
  for (auto& u : updates) u.delta = tensor::FlatVec(4, 1.0f);
  updates[2].delta = tensor::FlatVec(4, -9.0f);
  const std::vector<bool> flags = {false, false, true};
  const DetectionReport r = analyze_round(updates, flags);
  // One malicious sample: the two-sample tests cannot run; all-pass.
  EXPECT_FALSE(r.distinguishable());
  EXPECT_THROW(analyze_round(updates, std::vector<bool>{true}),
               std::invalid_argument);
}

TEST(Detector, FeatureExtraction) {
  std::vector<fl::ClientUpdate> updates(2);
  updates[0].delta = {1.0f, 0.0f};
  updates[1].delta = {0.0f, 1.0f};
  const auto f = extract_features(updates);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f[0].norm, 1.0, 1e-6);
  // Mean direction is the diagonal: both at 45 degrees.
  EXPECT_NEAR(f[0].angle_to_mean, M_PI / 4.0, 1e-5);
  EXPECT_THROW(extract_features({}), std::invalid_argument);
}

}  // namespace
}  // namespace collapois::defense
