// The update-codec layer (src/net/codec.h, DESIGN.md §15): config
// parsing/validation and the per-link negotiation, the binary16
// conversion contract, lossy round-trip tolerances on adversarial
// tensors (odd lengths, zeros, subnormals, large magnitudes),
// bit-identical encoded bytes across the scalar/sse2/avx2 dispatch
// tiers, the poison-marker path for non-finite deltas, Envelope
// integration (checksum-before-parse on encoded payloads, bytes-on-wire
// accounting), end-to-end identity exactness across both round engines
// and the sharded tree, and the codec checkpoint fingerprint (cross-
// codec resume must fail loudly).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "fl/state.h"
#include "kernels/cpu_dispatch.h"
#include "net/codec.h"
#include "net/codec_tiles.h"
#include "net/envelope.h"
#include "net/network_model.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"

namespace collapois {
namespace {

using net::CodecConfig;
using net::CodecKind;

CodecConfig make_codec(CodecKind kind, double topk = 0.1) {
  CodecConfig c;
  c.kind = kind;
  c.topk_fraction = topk;
  return c;
}

std::vector<std::uint8_t> encode_bytes(std::span<const float> delta,
                                       const CodecConfig& config) {
  fl::StateWriter w;
  net::encode_delta(w, delta, config);
  return w.take();
}

tensor::FlatVec decode_bytes(const std::vector<std::uint8_t>& bytes,
                             const CodecConfig& config) {
  fl::StateReader r(bytes);
  tensor::FlatVec out = net::decode_delta(r, config);
  EXPECT_TRUE(r.exhausted());
  return out;
}

// Adversarial tensor: a mix of zeros, subnormals (float and half range),
// normal values, and large magnitudes past the half range, deterministic
// per (n, seed).
tensor::FlatVec adversarial_delta(std::size_t n, std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
  tensor::FlatVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0: v[i] = 0.0f; break;
      case 1: v[i] = -0.0f; break;
      case 2: v[i] = std::numeric_limits<float>::denorm_min(); break;
      case 3: v[i] = unit(gen) * 1e-6f; break;  // half-subnormal range
      case 4: v[i] = unit(gen); break;
      case 5: v[i] = unit(gen) * 1e4f; break;
      default: v[i] = unit(gen) * 3e38f; break;  // past the half range
    }
  }
  return v;
}

const std::vector<std::size_t> kLengths = {0, 1, 3, 7, 8, 17, 64, 193, 1024};

// --- config / negotiation ----------------------------------------------

TEST(CodecConfigTest, NamesAndParseRoundTrip) {
  for (const auto kind : {CodecKind::identity, CodecKind::fp16,
                          CodecKind::int8, CodecKind::topk}) {
    EXPECT_EQ(net::parse_codec_kind(net::codec_kind_name(kind)), kind);
  }
  EXPECT_FALSE(net::codec_is_lossy(CodecKind::identity));
  EXPECT_TRUE(net::codec_is_lossy(CodecKind::fp16));
  EXPECT_TRUE(net::codec_is_lossy(CodecKind::int8));
  EXPECT_TRUE(net::codec_is_lossy(CodecKind::topk));
}

TEST(CodecConfigTest, ParseRejectsUnknownNamesLoudly) {
  for (const std::string bad : {"", "fp32", "identity ", "INT8", "top-k"}) {
    try {
      (void)net::parse_codec_kind(bad);
      FAIL() << "parse_codec_kind must reject '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("identity | fp16 | int8 | topk"),
                std::string::npos);
    }
  }
}

TEST(CodecConfigTest, ValidateRejectsBadKnobs) {
  CodecConfig int8 = make_codec(CodecKind::int8);
  for (const std::size_t bits : {std::size_t{0}, std::size_t{4},
                                 std::size_t{16}, std::size_t{32}}) {
    int8.bits = bits;
    EXPECT_THROW(net::validate_codec(int8), std::invalid_argument) << bits;
  }
  int8.bits = 8;
  EXPECT_NO_THROW(net::validate_codec(int8));

  CodecConfig topk = make_codec(CodecKind::topk);
  for (const double f : {0.0, -0.1, 1.5,
                         std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()}) {
    topk.topk_fraction = f;
    EXPECT_THROW(net::validate_codec(topk), std::invalid_argument) << f;
  }
  topk.topk_fraction = 1.0;  // keep-all is legal
  EXPECT_NO_THROW(net::validate_codec(topk));

  // identity and fp16 have no knobs — stale values are irrelevant.
  CodecConfig ident;
  ident.bits = 99;
  ident.topk_fraction = -3.0;
  EXPECT_NO_THROW(net::validate_codec(ident));
}

TEST(CodecConfigTest, NegotiationFallsBackToIdentity) {
  const CodecConfig offer = make_codec(CodecKind::topk, 0.25);
  const CodecConfig agreed =
      net::negotiate_codec(offer, net::codec_capability_all());
  EXPECT_EQ(agreed.kind, CodecKind::topk);
  EXPECT_EQ(agreed.topk_fraction, 0.25);

  // A client that lacks the offered codec falls back to identity.
  const std::uint32_t identity_only =
      1u << static_cast<std::uint32_t>(CodecKind::identity);
  const CodecConfig fallback = net::negotiate_codec(offer, identity_only);
  EXPECT_EQ(fallback.kind, CodecKind::identity);
}

// --- binary16 conversion ------------------------------------------------

TEST(CodecHalf, SpecialValuesConvertExactly) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(net::codec_float_to_half(0.0f), 0x0000);
  EXPECT_EQ(net::codec_float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(net::codec_float_to_half(1.0f), 0x3c00);
  EXPECT_EQ(net::codec_float_to_half(-2.0f), 0xc000);
  EXPECT_EQ(net::codec_float_to_half(65504.0f), 0x7bff);  // half max
  EXPECT_EQ(net::codec_float_to_half(65536.0f), 0x7c00);  // overflows to inf
  EXPECT_EQ(net::codec_float_to_half(inf), 0x7c00);
  EXPECT_EQ(net::codec_float_to_half(-inf), 0xfc00);
  const float nan_back = net::codec_half_to_float(net::codec_float_to_half(
      std::numeric_limits<float>::quiet_NaN()));
  EXPECT_TRUE(std::isnan(nan_back));
}

TEST(CodecHalf, EveryHalfBitPatternRoundTripsThroughFloat) {
  // half -> float -> half is the identity for every finite pattern and
  // for inf; NaN payloads may canonicalize but must stay NaN.
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = net::codec_half_to_float(h);
    const std::uint16_t back = net::codec_float_to_half(f);
    const bool is_nan = (h & 0x7fffu) > 0x7c00u;
    if (is_nan) {
      EXPECT_TRUE(std::isnan(f)) << std::hex << bits;
    } else {
      EXPECT_EQ(back, h) << std::hex << bits;
    }
  }
}

TEST(CodecHalf, NormalRangeRelativeErrorIsBounded) {
  std::mt19937 gen(7);
  std::uniform_real_distribution<float> mag(-5.0f, 5.0f);
  for (int i = 0; i < 20000; ++i) {
    const float x = std::ldexp(mag(gen), (i % 25) - 10);
    if (std::fabs(x) < 6.2e-5f || std::fabs(x) > 65000.0f) continue;
    const float back =
        net::codec_half_to_float(net::codec_float_to_half(x));
    EXPECT_LE(std::fabs(back - x), std::ldexp(std::fabs(x), -11))
        << "x=" << x;
  }
}

// --- round-trip tolerances ----------------------------------------------

TEST(CodecRoundTrip, IdentityIsBitExact) {
  for (const std::size_t n : kLengths) {
    const tensor::FlatVec delta = adversarial_delta(n, 11 + n);
    const auto bytes = encode_bytes(delta, make_codec(CodecKind::identity));
    const tensor::FlatVec back =
        decode_bytes(bytes, make_codec(CodecKind::identity));
    ASSERT_EQ(back.size(), n);
    if (n != 0) {
      EXPECT_EQ(std::memcmp(back.data(), delta.data(), 4 * n), 0) << n;
    }
  }
}

TEST(CodecRoundTrip, Fp16MatchesScalarReferencePerElement) {
  for (const std::size_t n : kLengths) {
    const tensor::FlatVec delta = adversarial_delta(n, 23 + n);
    const auto bytes = encode_bytes(delta, make_codec(CodecKind::fp16));
    const tensor::FlatVec back =
        decode_bytes(bytes, make_codec(CodecKind::fp16));
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const float ref = net::codec_half_to_float(
          net::codec_float_to_half(delta[i]));
      EXPECT_EQ(std::memcmp(&back[i], &ref, 4), 0) << "n=" << n << " i=" << i;
    }
  }
}

TEST(CodecRoundTrip, Int8ErrorIsWithinHalfAStep) {
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;
    const tensor::FlatVec delta = adversarial_delta(n, 31 + n);
    float max_abs = 0.0f;
    for (const float x : delta) max_abs = std::max(max_abs, std::fabs(x));
    const float scale = max_abs / 127.0f;
    const auto bytes = encode_bytes(delta, make_codec(CodecKind::int8));
    const tensor::FlatVec back =
        decode_bytes(bytes, make_codec(CodecKind::int8));
    ASSERT_EQ(back.size(), n);
    // Half a quantization step, plus an absolute epsilon for the case
    // where max|x| is subnormal and the scale itself underflows to zero.
    const float bound =
        scale * 0.5000001f + std::numeric_limits<float>::min();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::fabs(back[i] - delta[i]), bound)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(CodecRoundTrip, Int8AllZeroTensorDecodesToZeros) {
  const tensor::FlatVec delta(37, 0.0f);
  const auto back = decode_bytes(encode_bytes(delta, make_codec(CodecKind::int8)),
                                 make_codec(CodecKind::int8));
  ASSERT_EQ(back.size(), delta.size());
  for (const float x : back) EXPECT_EQ(x, 0.0f);
}

TEST(CodecRoundTrip, TopkKeepsTheLargestMagnitudesAndZeroesTheRest) {
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;
    for (const double fraction : {0.1, 0.5, 1.0}) {
      const tensor::FlatVec delta = adversarial_delta(n, 41 + n);
      const CodecConfig cfg = make_codec(CodecKind::topk, fraction);
      const std::size_t k = std::min<std::size_t>(
          n, std::max<std::size_t>(
                 1, static_cast<std::size_t>(
                        std::ceil(fraction * static_cast<double>(n)))));
      const auto back = decode_bytes(encode_bytes(delta, cfg), cfg);
      ASSERT_EQ(back.size(), n);
      // The kept set is exactly the k largest |x| (with the deterministic
      // tie-break); every kept value round-trips through fp16, every
      // dropped coordinate is exactly zero.
      std::vector<float> mags(n);
      for (std::size_t i = 0; i < n; ++i) mags[i] = std::fabs(delta[i]);
      std::vector<float> order = mags;
      std::nth_element(order.begin(), order.begin() + (n - k), order.end());
      const float threshold = order[n - k];
      std::size_t nonzero = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (back[i] != 0.0f) {
          ++nonzero;
          EXPECT_GE(mags[i], threshold) << "kept a below-threshold coord";
        }
        if (mags[i] > threshold) {
          const float ref = net::codec_half_to_float(
              net::codec_float_to_half(delta[i]));
          if (ref == 0.0f) {
            // A kept value whose fp16 underflows to (-)0 scatters into
            // the zero vector as +0 — sign-of-zero is not preserved.
            EXPECT_EQ(back[i], 0.0f) << "n=" << n << " i=" << i;
          } else {
            EXPECT_EQ(std::memcmp(&back[i], &ref, 4), 0)
                << "n=" << n << " i=" << i;
          }
        }
      }
      EXPECT_LE(nonzero, k);
    }
  }
}

// --- tier dispatch ------------------------------------------------------

std::vector<kernels::IsaTier> available_tiers() {
  std::vector<kernels::IsaTier> tiers{kernels::IsaTier::scalar};
  if (kernels::detected_tier() >= kernels::IsaTier::sse2) {
    tiers.push_back(kernels::IsaTier::sse2);
  }
  if (kernels::detected_tier() >= kernels::IsaTier::avx2 &&
      net::detail::avx2_codec_compiled()) {
    tiers.push_back(kernels::IsaTier::avx2);
  }
  return tiers;
}

struct TierGuard {
  kernels::IsaTier entry = kernels::active_tier();
  ~TierGuard() { kernels::set_active_tier(entry); }
};

// The wire-format contract: encoded payload bytes are BIT-IDENTICAL on
// every dispatch tier (stronger than the GEMM tolerance contract), so
// the Envelope checksum — and the decoded floats — never depend on the
// host CPU.
TEST(CodecTiers, EncodedBytesAreBitIdenticalAcrossTiers) {
  TierGuard guard;
  for (const auto kind : {CodecKind::identity, CodecKind::fp16,
                          CodecKind::int8, CodecKind::topk}) {
    for (const std::size_t n : kLengths) {
      const tensor::FlatVec delta = adversarial_delta(n, 53 + n);
      const CodecConfig cfg = make_codec(kind);
      kernels::set_active_tier(kernels::IsaTier::scalar);
      const auto ref_bytes = encode_bytes(delta, cfg);
      const auto ref_decoded = decode_bytes(ref_bytes, cfg);
      for (const auto tier : available_tiers()) {
        kernels::set_active_tier(tier);
        SCOPED_TRACE(testing::Message() << net::codec_kind_name(kind) << " n="
                                        << n << " tier="
                                        << kernels::isa_tier_name(tier));
        EXPECT_EQ(encode_bytes(delta, cfg), ref_bytes);
        const auto decoded = decode_bytes(ref_bytes, cfg);
        ASSERT_EQ(decoded.size(), ref_decoded.size());
        if (!decoded.empty()) {
          EXPECT_EQ(std::memcmp(decoded.data(), ref_decoded.data(),
                                4 * decoded.size()),
                    0);
        }
      }
    }
  }
}

// --- poison marker ------------------------------------------------------

TEST(CodecPoison, NonFiniteDeltasDecodeToAllNaN) {
  for (const auto kind :
       {CodecKind::fp16, CodecKind::int8, CodecKind::topk}) {
    for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity()}) {
      tensor::FlatVec delta = adversarial_delta(33, 61);
      delta[17] = bad;
      const CodecConfig cfg = make_codec(kind);
      const auto bytes = encode_bytes(delta, cfg);
      // The poison marker is tiny: no value payload crosses the wire.
      EXPECT_LT(bytes.size(), 40u);
      const auto back = decode_bytes(bytes, cfg);
      ASSERT_EQ(back.size(), delta.size());
      for (const float x : back) EXPECT_TRUE(std::isnan(x));
    }
  }
}

// --- malformed bodies ---------------------------------------------------

TEST(CodecMalformed, DecodersRejectStructurallyBrokenBodies) {
  // topk with k > n.
  {
    fl::StateWriter w;
    w.write_size(4);   // n
    w.write_bool(true);
    w.write_size(9);   // k > n
    fl::StateReader r(w.bytes());
    EXPECT_THROW((void)net::decode_delta(r, make_codec(CodecKind::topk)),
                 std::runtime_error);
  }
  // topk with an out-of-range index.
  {
    fl::StateWriter w;
    w.write_size(4);
    w.write_bool(true);
    w.write_size(1);
    const std::vector<std::uint8_t> idx = {7};  // index 7 >= n = 4
    w.write_bytes(idx);
    const std::vector<std::uint8_t> vals = {0, 0};
    w.write_bytes(vals);
    fl::StateReader r(w.bytes());
    EXPECT_THROW((void)net::decode_delta(r, make_codec(CodecKind::topk)),
                 std::runtime_error);
  }
  // fp16 blob whose length disagrees with n.
  {
    fl::StateWriter w;
    w.write_size(3);
    w.write_bool(true);
    const std::vector<std::uint8_t> blob = {1, 2};  // 2 bytes != 2 * 3
    w.write_bytes(blob);
    fl::StateReader r(w.bytes());
    EXPECT_THROW((void)net::decode_delta(r, make_codec(CodecKind::fp16)),
                 std::runtime_error);
  }
  // int8 with a negative scale.
  {
    fl::StateWriter w;
    w.write_size(2);
    w.write_bool(true);
    const float bad_scale = -1.0f;
    std::uint32_t bits = 0;
    std::memcpy(&bits, &bad_scale, sizeof(bits));
    w.write_u64(bits);
    const std::vector<std::uint8_t> blob = {1, 2};
    w.write_bytes(blob);
    fl::StateReader r(w.bytes());
    EXPECT_THROW((void)net::decode_delta(r, make_codec(CodecKind::int8)),
                 std::runtime_error);
  }
}

// --- envelope integration -----------------------------------------------

fl::ClientUpdate sample_update(std::size_t n) {
  fl::ClientUpdate u;
  u.client_id = 5;
  u.weight = 1.5;
  u.status = fl::UpdateStatus::ok;
  u.staleness = 0;
  u.delta = adversarial_delta(n, 71);
  return u;
}

TEST(CodecEnvelope, EveryCodecRoundTripsThroughTheEnvelope) {
  const fl::ClientUpdate u = sample_update(129);
  for (const auto kind : {CodecKind::identity, CodecKind::fp16,
                          CodecKind::int8, CodecKind::topk}) {
    const net::Envelope env = net::encode_update(u, 3, make_codec(kind));
    EXPECT_EQ(env.codec, kind);
    EXPECT_EQ(env.fp32_bytes, 5 * 8 + 4 * u.delta.size());
    if (net::codec_is_lossy(kind)) {
      EXPECT_LT(env.payload.size(), env.fp32_bytes)
          << net::codec_kind_name(kind);
    } else {
      EXPECT_EQ(env.payload.size(), env.fp32_bytes);
    }
    const auto decoded = net::decode_update(env);
    ASSERT_TRUE(decoded.has_value()) << net::codec_kind_name(kind);
    EXPECT_EQ(decoded->client_id, u.client_id);
    EXPECT_EQ(decoded->weight, u.weight);
    ASSERT_EQ(decoded->delta.size(), u.delta.size());
  }
}

TEST(CodecEnvelope, TwoArgOverloadIsTheIdentityWireFormat) {
  const fl::ClientUpdate u = sample_update(64);
  const net::Envelope legacy = net::encode_update(u, 9);
  const net::Envelope ident =
      net::encode_update(u, 9, make_codec(CodecKind::identity));
  EXPECT_EQ(legacy.payload, ident.payload);
  EXPECT_EQ(legacy.checksum, ident.checksum);
  EXPECT_EQ(legacy.codec, CodecKind::identity);
}

TEST(CodecEnvelope, CorruptedEncodedPayloadFailsTheChecksumBeforeParse) {
  const fl::ClientUpdate u = sample_update(200);
  for (const auto kind : {CodecKind::fp16, CodecKind::int8, CodecKind::topk}) {
    net::Envelope env = net::encode_update(u, 1, make_codec(kind));
    // Flip one byte anywhere in the ENCODED payload: the checksum covers
    // the bytes on the wire, so detection happens before any codec parse.
    for (const std::size_t at :
         {std::size_t{0}, env.payload.size() / 2, env.payload.size() - 1}) {
      net::Envelope damaged = env;
      damaged.payload[at] ^= 0x40;
      EXPECT_FALSE(net::decode_update(damaged).has_value())
          << net::codec_kind_name(kind) << " at=" << at;
    }
    // Truncation too.
    net::Envelope truncated = env;
    truncated.payload.resize(env.payload.size() / 2);
    EXPECT_FALSE(net::decode_update(truncated).has_value());
  }
}

TEST(CodecEnvelope, UnknownCodecHeaderIsRejected) {
  const fl::ClientUpdate u = sample_update(16);
  net::Envelope env = net::encode_update(u, 0);
  env.codec = static_cast<CodecKind>(200);  // forged/damaged header field
  EXPECT_FALSE(net::decode_update(env).has_value());
}

TEST(CodecEnvelope, TransmitAccountsEncodedBytesOnTheWire) {
  net::NetConfig ncfg;
  ncfg.enabled = true;
  const net::NetworkModel model(ncfg);
  const fl::ClientUpdate u = sample_update(500);
  for (const auto kind : {CodecKind::identity, CodecKind::int8}) {
    const net::Envelope env = net::encode_update(u, 2, make_codec(kind));
    net::TransportStats stats;
    const net::Delivery d = model.transmit(u.client_id, 2, env, &stats);
    ASSERT_EQ(d.status, net::DeliveryStatus::delivered);
    EXPECT_EQ(stats.fp32_bytes_sent, env.fp32_bytes);
    EXPECT_EQ(stats.wire_bytes_sent, env.payload.size());
    EXPECT_EQ(stats.wire_bytes_received, env.payload.size());
  }
  // accumulate() carries the byte counters.
  net::TransportStats a;
  a.fp32_bytes_sent = 10;
  a.wire_bytes_sent = 4;
  a.wire_bytes_received = 3;
  net::TransportStats b = a;
  b.accumulate(a);
  EXPECT_EQ(b.fp32_bytes_sent, 20u);
  EXPECT_EQ(b.wire_bytes_sent, 8u);
  EXPECT_EQ(b.wire_bytes_received, 6u);
}

// --- end-to-end: identity exactness and lossy compression ---------------

sim::ExperimentConfig zero_fault_config(fl::RoundEngineKind engine) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 12;
  cfg.samples_per_client = 40;
  cfg.rounds = 8;
  cfg.sample_prob = 0.5;
  cfg.compromised_fraction = 0.2;
  cfg.attack = sim::AttackKind::collapois;
  cfg.attack_start_round = 3;
  cfg.seed = 99;
  cfg.round_engine = engine;
  cfg.net.enabled = true;
  // Zero-fault, zero-latency: the wire is transparent, so the run must
  // be element-exact equal to the transport-disabled path — through the
  // codec layer's encode/decode, under both engines.
  cfg.net.latency_min_ms = 0.0;
  cfg.net.latency_max_ms = 0.0;
  return cfg;
}

TEST(CodecExperiment, IdentityIsExactAgainstCodecDisabledOnBothEngines) {
  for (const auto engine :
       {fl::RoundEngineKind::sync, fl::RoundEngineKind::buffered_async}) {
    sim::ExperimentConfig with_codec = zero_fault_config(engine);
    with_codec.codec = make_codec(CodecKind::identity);
    const sim::ExperimentResult a = sim::run_experiment(with_codec);

    sim::ExperimentConfig disabled = zero_fault_config(engine);
    disabled.net.enabled = false;
    const sim::ExperimentResult b = sim::run_experiment(disabled);

    ASSERT_EQ(a.final_global.size(), b.final_global.size());
    EXPECT_EQ(a.final_global, b.final_global)
        << "engine=" << fl::round_engine_name(engine);
  }
}

TEST(CodecExperiment, IdentityIsExactThroughTheShardedTree) {
  sim::ExperimentConfig with_codec = zero_fault_config(fl::RoundEngineKind::sync);
  with_codec.shards = 3;
  with_codec.codec = make_codec(CodecKind::identity);
  const sim::ExperimentResult a = sim::run_experiment(with_codec);

  sim::ExperimentConfig disabled = with_codec;
  disabled.net.enabled = false;
  const sim::ExperimentResult b = sim::run_experiment(disabled);

  EXPECT_EQ(a.final_global, b.final_global);
}

TEST(CodecExperiment, LossyCodecsCompressTheWireAndStillTrain) {
  for (const auto kind : {CodecKind::fp16, CodecKind::int8, CodecKind::topk}) {
    sim::ExperimentConfig cfg = zero_fault_config(fl::RoundEngineKind::sync);
    cfg.codec = make_codec(kind);
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    for (const float x : r.final_global) ASSERT_TRUE(std::isfinite(x));
    std::size_t fp32 = 0;
    std::size_t wire = 0;
    for (const auto& rec : r.rounds) {
      fp32 += rec.transport.fp32_bytes_sent;
      wire += rec.transport.wire_bytes_sent;
    }
    ASSERT_GT(wire, 0u);
    const double ratio =
        static_cast<double>(fp32) / static_cast<double>(wire);
    const double floor = kind == CodecKind::fp16  ? 1.8
                         : kind == CodecKind::int8 ? 3.3
                                                   : 6.0;
    EXPECT_GE(ratio, floor) << net::codec_kind_name(kind);
  }
}

TEST(CodecExperiment, LossyCodecWithoutTransportFailsLoudly) {
  sim::ExperimentConfig cfg = zero_fault_config(fl::RoundEngineKind::sync);
  cfg.net.enabled = false;
  cfg.codec = make_codec(CodecKind::int8);
  try {
    (void)sim::run_experiment(cfg);
    FAIL() << "a lossy codec without the transport must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("codec"), std::string::npos);
  }
}

// --- checkpoint fingerprint ---------------------------------------------

TEST(CodecCheckpoint, FingerprintCoversTheKindAndItsKnobsOnly) {
  const auto ident = sim::codec_fingerprint(make_codec(CodecKind::identity));
  CodecConfig stale = make_codec(CodecKind::identity);
  stale.topk_fraction = 0.7;  // inert under identity
  EXPECT_EQ(sim::codec_fingerprint(stale), ident);

  const auto fp16 = sim::codec_fingerprint(make_codec(CodecKind::fp16));
  const auto int8 = sim::codec_fingerprint(make_codec(CodecKind::int8));
  const auto topk = sim::codec_fingerprint(make_codec(CodecKind::topk));
  const std::set<std::uint64_t> distinct = {ident, fp16, int8, topk};
  EXPECT_EQ(distinct.size(), 4u);

  // The topk fraction is part of the identity of the run.
  EXPECT_NE(sim::codec_fingerprint(make_codec(CodecKind::topk, 0.2)), topk);
}

TEST(CodecCheckpoint, CrossCodecResumeFailsLoudlyAndSameCodecIsBitExact) {
  sim::ExperimentConfig cfg = zero_fault_config(fl::RoundEngineKind::sync);
  cfg.codec = make_codec(CodecKind::fp16);
  const sim::ExperimentResult straight = sim::run_experiment(cfg);

  const std::string path = ::testing::TempDir() + "codec_resume_ck.bin";
  sim::RunOptions save;
  save.checkpoint_save_path = path;
  save.checkpoint_round = cfg.rounds / 2;
  (void)sim::run_experiment(cfg, save);

  sim::RunOptions resume;
  resume.checkpoint_load_path = path;
  sim::ExperimentConfig changed = cfg;
  changed.codec = make_codec(CodecKind::int8);
  try {
    (void)sim::run_experiment(changed, resume);
    FAIL() << "cross-codec resume must throw";
  } catch (const std::invalid_argument& e) {
    // The error names the codec flags, not a generic config mismatch.
    EXPECT_NE(std::string(e.what()).find("--codec"), std::string::npos);
  }

  // Same codec resumes bit-exactly: lossy quantization is deterministic,
  // so the spliced trajectory equals the straight one.
  const sim::ExperimentResult resumed = sim::run_experiment(cfg, resume);
  std::remove(path.c_str());
  EXPECT_EQ(resumed.final_global, straight.final_global);
}

}  // namespace
}  // namespace collapois
