// The deterministic parallel runtime: thread-pool mechanics (task queue,
// exception propagation, ordered map) and the headline guarantee — a
// federated experiment produces ELEMENT-EXACT identical results for any
// thread count, faults and checkpoint/resume included (DESIGN.md §7).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>

#include "kernels/kernels.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "sim/runner.h"

namespace collapois {
namespace {

// --- pool mechanics ----------------------------------------------------

TEST(RuntimePool, RejectsZeroThreads) {
  EXPECT_THROW(runtime::ThreadPool(0), std::invalid_argument);
}

TEST(RuntimePool, ResolveThreadCount) {
  EXPECT_GE(runtime::default_thread_count(), 1u);
  EXPECT_LE(runtime::default_thread_count(), 16u);
  EXPECT_EQ(runtime::resolve_thread_count(0), runtime::default_thread_count());
  EXPECT_EQ(runtime::resolve_thread_count(3), 3u);
}

TEST(RuntimePool, ParallelForRunsEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(RuntimePool, ParallelForWithZeroTasksIsANoop) {
  runtime::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(RuntimePool, ExceptionPropagatesToSubmittingThread) {
  runtime::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i % 7 == 0) {
                            throw std::runtime_error("task failed");
                          }
                        }),
      std::runtime_error);
  // The pool survives a throwing batch and runs the next one.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(RuntimePool, ReusableAfterMidFanOutThrow) {
  // Regression for the round loop's failure mode: one client task throws
  // while the rest of the fan-out is still executing. The pool must drain
  // the batch without wedging its queue or poisoning worker state, so the
  // NEXT round's dispatch on the same pool completes normally.
  runtime::ThreadPool pool(4);
  std::atomic<std::size_t> started{0};
  EXPECT_THROW(
      pool.parallel_for(256,
                        [&](std::size_t i) {
                          ++started;
                          if (i == 13) {
                            throw std::runtime_error("mid-fan-out failure");
                          }
                          // Busy work keeps other workers in flight when
                          // the throw lands.
                          volatile int spin = 0;
                          while (spin < 2000) ++spin;
                        }),
      std::runtime_error);
  EXPECT_GT(started.load(), 0u);
  // Several follow-up "rounds" on the same pool, both dispatch flavors.
  for (int round = 0; round < 3; ++round) {
    const std::vector<std::size_t> out = runtime::parallel_map(
        &pool, 64, [](std::size_t i) { return i + 1; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(RuntimePool, ParallelMapPreservesIndexOrder) {
  runtime::ThreadPool pool(4);
  const std::vector<std::size_t> out =
      runtime::parallel_map(&pool, 200, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 200u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RuntimePool, NullPoolRunsInline) {
  // nullptr is the sequential baseline: same helper, calling thread.
  std::vector<int> order;
  runtime::parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_THROW(runtime::parallel_for(
                   nullptr, 3,
                   [](std::size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(RuntimePool, SingleWorkerPoolCompletesLargeBatch) {
  runtime::ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 499500u);
}

// --- determinism across thread counts ----------------------------------

sim::ExperimentConfig parallel_config() {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 12;
  cfg.samples_per_client = 40;
  cfg.rounds = 10;
  cfg.sample_prob = 0.5;  // cohorts big enough to exercise the pool
  cfg.compromised_fraction = 0.2;
  cfg.attack = sim::AttackKind::collapois;
  cfg.attack_start_round = 3;
  cfg.eval_every = 5;
  cfg.seed = 99;
  return cfg;
}

void expect_element_exact(const sim::ExperimentResult& a,
                          const sim::ExperimentResult& b) {
  ASSERT_EQ(a.final_global.size(), b.final_global.size());
  EXPECT_EQ(a.final_global, b.final_global);  // element-exact
  ASSERT_EQ(a.final_evals.size(), b.final_evals.size());
  for (std::size_t i = 0; i < a.final_evals.size(); ++i) {
    EXPECT_EQ(a.final_evals[i].benign_ac, b.final_evals[i].benign_ac);
    EXPECT_EQ(a.final_evals[i].attack_sr, b.final_evals[i].attack_sr);
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].n_accepted, b.rounds[i].n_accepted);
    EXPECT_EQ(a.rounds[i].n_dropped, b.rounds[i].n_dropped);
    EXPECT_EQ(a.rounds[i].n_rejected, b.rounds[i].n_rejected);
    EXPECT_EQ(a.rounds[i].cohort_size, b.rounds[i].cohort_size);
    EXPECT_EQ(a.rounds[i].distance_to_x, b.rounds[i].distance_to_x);
  }
}

TEST(RuntimeDeterminism, Threads1And4ProduceIdenticalResults) {
  sim::ExperimentConfig cfg = parallel_config();
  cfg.threads = 1;
  const sim::ExperimentResult sequential = sim::run_experiment(cfg);
  cfg.threads = 4;
  const sim::ExperimentResult parallel = sim::run_experiment(cfg);
  expect_element_exact(sequential, parallel);
}

TEST(RuntimeDeterminism, HoldsUnderFaultInjection) {
  sim::ExperimentConfig cfg = parallel_config();
  cfg.faults.dropout_prob = 0.15;
  cfg.faults.straggler_prob = 0.15;
  cfg.faults.corrupt_prob = 0.1;
  cfg.threads = 1;
  const sim::ExperimentResult sequential = sim::run_experiment(cfg);
  cfg.threads = 4;
  const sim::ExperimentResult parallel = sim::run_experiment(cfg);
  expect_element_exact(sequential, parallel);
}

TEST(RuntimeDeterminism, CheckpointCrossesThreadCounts) {
  // A threads=1 straight run vs a threads=4 run checkpointed mid-campaign
  // and resumed with threads=4, under fault injection: the checkpoint
  // carries no trace of the thread count, so all three agree bit-exactly.
  sim::ExperimentConfig cfg = parallel_config();
  cfg.faults.dropout_prob = 0.15;
  cfg.faults.straggler_prob = 0.15;

  cfg.threads = 1;
  const sim::ExperimentResult straight = sim::run_experiment(cfg);

  const std::string path = ::testing::TempDir() + "runtime_threads_ck.bin";
  cfg.threads = 4;
  sim::RunOptions save;
  save.checkpoint_save_path = path;
  save.checkpoint_round = cfg.rounds / 2;
  const sim::ExperimentResult partial = sim::run_experiment(cfg, save);
  EXPECT_EQ(partial.rounds.size(), cfg.rounds / 2);

  sim::RunOptions resume;
  resume.checkpoint_load_path = path;
  const sim::ExperimentResult resumed = sim::run_experiment(cfg, resume);
  std::remove(path.c_str());

  ASSERT_EQ(resumed.final_global.size(), straight.final_global.size());
  EXPECT_EQ(resumed.final_global, straight.final_global);
  ASSERT_EQ(resumed.final_evals.size(), straight.final_evals.size());
  for (std::size_t i = 0; i < straight.final_evals.size(); ++i) {
    EXPECT_EQ(resumed.final_evals[i].benign_ac,
              straight.final_evals[i].benign_ac);
    EXPECT_EQ(resumed.final_evals[i].attack_sr,
              straight.final_evals[i].attack_sr);
  }
}

TEST(RuntimeDeterminism, HoldsUnderBothKernelSets) {
  // The thread-count guarantee must hold for each compute-kernel set
  // independently (the sets themselves round differently, so runs are
  // only compared within a set).
  for (const auto kind :
       {kernels::KernelKind::naive, kernels::KernelKind::blocked}) {
    SCOPED_TRACE(kernels::kernel_kind_name(kind));
    sim::ExperimentConfig cfg = parallel_config();
    cfg.kernels = kind;
    cfg.threads = 1;
    const sim::ExperimentResult sequential = sim::run_experiment(cfg);
    cfg.threads = 4;
    const sim::ExperimentResult parallel = sim::run_experiment(cfg);
    expect_element_exact(sequential, parallel);
  }
}

TEST(RuntimeDeterminism, FullParticipationFedDcMatchesAcrossThreads) {
  // FedDC threads per-client drift state through the parallel dispatch —
  // the stateful-client case the audit in fl/client.h is about.
  sim::ExperimentConfig cfg = parallel_config();
  cfg.algorithm = sim::AlgorithmKind::feddc;
  cfg.attack = sim::AttackKind::dba;
  cfg.sample_prob = 1.0;
  cfg.rounds = 6;
  cfg.threads = 1;
  const sim::ExperimentResult sequential = sim::run_experiment(cfg);
  cfg.threads = 4;
  const sim::ExperimentResult parallel = sim::run_experiment(cfg);
  expect_element_exact(sequential, parallel);
}

}  // namespace
}  // namespace collapois
