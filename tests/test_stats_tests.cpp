// Tests for the hypothesis tests used by the paper's "Bypassing Defenses"
// analysis: they must reject when populations differ and pass when they
// do not — that asymmetry is the whole point of the stealth evaluation.
#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"
#include "stats/tests.h"

namespace collapois::stats {
namespace {

std::vector<double> gaussian_sample(Rng& rng, double mu, double sd, int n) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(mu, sd));
  return xs;
}

TEST(WelchT, DetectsMeanShift) {
  Rng rng(1);
  const auto a = gaussian_sample(rng, 0.0, 1.0, 200);
  const auto b = gaussian_sample(rng, 1.0, 1.0, 200);
  const auto r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_at_05());
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(WelchT, PassesIdenticalDistributions) {
  Rng rng(2);
  const auto a = gaussian_sample(rng, 5.0, 2.0, 300);
  const auto b = gaussian_sample(rng, 5.0, 2.0, 300);
  const auto r = welch_t_test(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(WelchT, HandlesUnequalVariances) {
  Rng rng(3);
  const auto a = gaussian_sample(rng, 0.0, 0.1, 100);
  const auto b = gaussian_sample(rng, 0.0, 10.0, 100);
  const auto r = welch_t_test(a, b);
  // Same mean: should not reject despite wildly different variances.
  EXPECT_GT(r.p_value, 0.01);
}

TEST(WelchT, ConstantGroups) {
  const std::vector<double> a = {2.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 2.0};
  EXPECT_NEAR(welch_t_test(a, b).p_value, 1.0, 1e-12);
  const std::vector<double> c = {3.0, 3.0};
  EXPECT_NEAR(welch_t_test(a, c).p_value, 0.0, 1e-12);
}

TEST(WelchT, RejectsTinySamples) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(welch_t_test(one, two), std::invalid_argument);
}

TEST(Levene, DetectsVarianceDifference) {
  Rng rng(4);
  const auto a = gaussian_sample(rng, 0.0, 1.0, 200);
  const auto b = gaussian_sample(rng, 0.0, 4.0, 200);
  const auto r = levene_test(a, b);
  EXPECT_TRUE(r.significant_at_05());
}

TEST(Levene, PassesEqualVariances) {
  Rng rng(5);
  const auto a = gaussian_sample(rng, 0.0, 1.5, 300);
  const auto b = gaussian_sample(rng, 3.0, 1.5, 300);  // mean shift only
  const auto r = levene_test(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Ks, DetectsDistributionChange) {
  Rng rng(6);
  const auto a = gaussian_sample(rng, 0.0, 1.0, 300);
  const auto b = gaussian_sample(rng, 0.8, 1.0, 300);
  const auto r = ks_test(a, b);
  EXPECT_TRUE(r.significant_at_05());
  EXPECT_GT(r.statistic, 0.2);
}

TEST(Ks, PassesSameDistribution) {
  Rng rng(7);
  const auto a = gaussian_sample(rng, 1.0, 2.0, 400);
  const auto b = gaussian_sample(rng, 1.0, 2.0, 400);
  const auto r = ks_test(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Ks, StatisticIsMaxCdfGap) {
  // Fully separated samples: D = 1.
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  const auto r = ks_test(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
}

TEST(ThreeSigma, FlagsOnlyTrueOutliers) {
  Rng rng(8);
  const auto background = gaussian_sample(rng, 0.0, 1.0, 2000);
  // Points drawn from the same distribution: expect roughly the nominal
  // ~0.3% outlier rate.
  const auto same = gaussian_sample(rng, 0.0, 1.0, 2000);
  EXPECT_LT(three_sigma_outlier_rate(background, same), 0.02);
  // Far points: all flagged.
  const std::vector<double> far = {10.0, -12.0, 15.0};
  EXPECT_DOUBLE_EQ(three_sigma_outlier_rate(background, far), 1.0);
}

TEST(ThreeSigma, DegenerateBackground) {
  const std::vector<double> constant = {5.0, 5.0, 5.0};
  const std::vector<double> pts = {5.0, 6.0};
  EXPECT_DOUBLE_EQ(three_sigma_outlier_rate(constant, pts), 0.5);
}

TEST(Hoeffding, TailDecreasesWithN) {
  double prev = 1.0;
  for (std::size_t n : {10u, 100u, 1000u, 10000u}) {
    const double t = hoeffding_tail(n, 0.1, 0.0, 1.0);
    EXPECT_LE(t, prev);
    prev = t;
  }
  EXPECT_LT(prev, 1e-8);
}

TEST(Hoeffding, EpsInvertsTail) {
  const std::size_t n = 500;
  const double delta = 0.05;
  const double eps = hoeffding_eps(n, delta, 0.0, 1.0);
  EXPECT_NEAR(hoeffding_tail(n, eps, 0.0, 1.0), delta, 1e-9);
}

TEST(Hoeffding, RangeScaling) {
  // Doubling the range doubles the half-width.
  const double e1 = hoeffding_eps(100, 0.05, 0.0, 1.0);
  const double e2 = hoeffding_eps(100, 0.05, 0.0, 2.0);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(Hoeffding, RejectsBadArguments) {
  EXPECT_THROW(hoeffding_eps(0, 0.05, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hoeffding_eps(10, 0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hoeffding_eps(10, 0.05, 1.0, 1.0), std::invalid_argument);
}

// The paper's bypass scenario as a property test: malicious features drawn
// from the *matched* distribution must pass all three tests at any seed.
class BypassSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BypassSweep, MatchedPopulationsPassAllTests) {
  Rng rng(GetParam());
  const auto benign = gaussian_sample(rng, 1.2, 0.3, 250);
  const auto blended = gaussian_sample(rng, 1.2, 0.3, 50);
  EXPECT_GT(welch_t_test(blended, benign).p_value, 0.001);
  EXPECT_GT(levene_test(blended, benign).p_value, 0.001);
  EXPECT_GT(ks_test(blended, benign).p_value, 0.001);
  EXPECT_LT(three_sigma_outlier_rate(benign, blended), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BypassSweep,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL));

}  // namespace
}  // namespace collapois::stats
