// Tests for the Table I completion defenses: FLARE (trust-weighted
// aggregation), CRFL (model clipping + noise + certified radius),
// Ditto (personalization defense), and user-level DP.
#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic_text.h"
#include "defense/crfl.h"
#include "defense/ditto.h"
#include "defense/flare.h"
#include "defense/normbound.h"
#include "defense/registry.h"
#include "fl/server_algorithm.h"
#include "nn/eval.h"
#include "nn/zoo.h"
#include "sim/runner.h"
#include "stats/geometry.h"
#include "stats/special.h"

namespace collapois::defense {
namespace {

std::vector<fl::ClientUpdate> crowd_with_outlier() {
  std::vector<fl::ClientUpdate> updates;
  stats::Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    fl::ClientUpdate u;
    u.client_id = static_cast<std::size_t>(i);
    u.delta = tensor::FlatVec(16);
    for (auto& v : u.delta) v = static_cast<float>(1.0 + rng.normal(0, 0.05));
    updates.push_back(std::move(u));
  }
  fl::ClientUpdate outlier;
  outlier.client_id = 8;
  outlier.delta = tensor::FlatVec(16, -50.0f);
  updates.push_back(std::move(outlier));
  return updates;
}

TEST(Flare, DownWeightsOutlier) {
  FlareAggregator flare(FlareConfig{1.0});
  const auto updates = crowd_with_outlier();
  const auto out = flare.aggregate(updates, {});
  // Aggregate close to the crowd, not dragged by the outlier.
  for (float v : out) EXPECT_NEAR(v, 1.0f, 0.2f);
  const auto& trust = flare.last_trust();
  ASSERT_EQ(trust.size(), updates.size());
  double max_crowd = 0.0;
  for (std::size_t i = 0; i < 8; ++i) max_crowd = std::max(max_crowd, trust[i]);
  EXPECT_LT(trust[8], max_crowd * 1e-3);
  double total = 0.0;
  for (double t : trust) total += t;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Flare, SingleUpdatePassthroughAndValidation) {
  FlareAggregator flare(FlareConfig{0.5});
  std::vector<fl::ClientUpdate> one(1);
  one[0].delta = {2.0f};
  EXPECT_EQ(flare.aggregate(one, {}), (tensor::FlatVec{2.0f}));
  EXPECT_THROW(flare.aggregate({}, {}), std::invalid_argument);
  EXPECT_THROW(FlareAggregator(FlareConfig{0.0}), std::invalid_argument);
}

TEST(Flare, TemperatureControlsSharpness) {
  const auto updates = crowd_with_outlier();
  FlareAggregator sharp(FlareConfig{0.1});
  FlareAggregator soft(FlareConfig{100.0});
  sharp.aggregate(updates, {});
  soft.aggregate(updates, {});
  EXPECT_LT(sharp.last_trust()[8], soft.last_trust()[8]);
}

TEST(Crfl, PostUpdateClipsAndPerturbs) {
  CrflAggregator crfl(CrflConfig{1.0, 0.0},
                      std::make_unique<fl::FedAvgAggregator>(),
                      stats::Rng(2));
  tensor::FlatVec params(64, 10.0f);  // norm 80 >> clip 1
  crfl.post_update(params);
  EXPECT_NEAR(stats::l2_norm(params), 1.0, 1e-5);

  CrflAggregator noisy(CrflConfig{100.0, 0.1},
                       std::make_unique<fl::FedAvgAggregator>(),
                       stats::Rng(3));
  tensor::FlatVec zero(64, 0.0f);
  noisy.post_update(zero);
  EXPECT_GT(stats::l2_norm(zero), 0.0);
}

TEST(Crfl, AggregationDelegatesToInner) {
  CrflAggregator crfl(CrflConfig{10.0, 0.0},
                      std::make_unique<fl::FedAvgAggregator>(),
                      stats::Rng(4));
  std::vector<fl::ClientUpdate> updates(2);
  updates[0].delta = {2.0f};
  updates[1].delta = {4.0f};
  EXPECT_EQ(crfl.aggregate(updates, {}), (tensor::FlatVec{3.0f}));
}

TEST(Crfl, CertifiedRadiusMatchesGaussianArgument) {
  CrflAggregator crfl(CrflConfig{10.0, 0.5},
                      std::make_unique<fl::FedAvgAggregator>(),
                      stats::Rng(5));
  EXPECT_NEAR(crfl.certified_radius(0.9),
              0.5 * stats::normal_quantile(0.9), 1e-9);
  EXPECT_THROW(crfl.certified_radius(0.5), std::invalid_argument);
  EXPECT_THROW(crfl.certified_radius(1.0), std::invalid_argument);
}

TEST(Crfl, ServerAppliesPostUpdateHook) {
  // A server with CRFL must keep the global parameter norm at the clip
  // bound even when clients push it far.
  stats::Rng rng(6);
  data::SyntheticTextGenerator gen({}, 7);
  data::FederatedData fed = data::build_federation(gen, 4, 40, 1.0, rng);
  nn::Model model = nn::make_mlp_head({.input_dim = 32, .hidden = 8,
                                       .num_classes = 2,
                                       .num_hidden_layers = 1});
  model.init(rng);
  const double clip = 0.8 * stats::l2_norm(model.get_parameters());
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::BenignClient>(
        i, &fed.clients[i].train, model,
        nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
        0.5, rng.fork()));
  }
  fl::ServerAlgorithm algo(
      "fedavg", model.get_parameters(),
      std::make_unique<CrflAggregator>(
          CrflConfig{clip, 0.0}, std::make_unique<fl::FedAvgAggregator>(),
          stats::Rng(8)),
      fl::ServerConfig{1.0, 1.0}, std::move(clients), stats::Rng(9));
  algo.run_round();
  EXPECT_LE(stats::l2_norm(algo.global_params()), clip + 1e-4);
}

TEST(UserDp, NoiseAtFullSensitivity) {
  // User-level: sigma = z * clip regardless of participant count.
  auto run = [](bool user_level, std::size_t n) {
    DpAggregator dp(DpConfig{1.0, 1.0, user_level},
                    std::make_unique<fl::FedAvgAggregator>(), stats::Rng(10));
    std::vector<fl::ClientUpdate> updates(n);
    for (auto& u : updates) u.delta = tensor::FlatVec(512, 0.0f);
    return stats::l2_norm(dp.aggregate(updates, {}));
  };
  // Central DP noise shrinks with n; user-level stays flat.
  EXPECT_GT(run(false, 2), run(false, 32) * 4.0);
  EXPECT_NEAR(run(true, 2) / run(true, 32), 1.0, 0.3);
}

TEST(Ditto, PersonalModelBeatsCorruptGlobalLocally) {
  stats::Rng rng(11);
  data::SyntheticTextGenerator gen({}, 12);
  data::FederatedData fed = data::build_federation(gen, 3, 80, 1.0, rng);
  nn::Model model = nn::make_mlp_head({.input_dim = 32, .hidden = 8,
                                       .num_classes = 2,
                                       .num_hidden_layers = 1});
  model.init(rng);
  DittoClient client(0, &fed.clients[0].train, model,
                     nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16,
                                   .epochs = 3},
                     DittoConfig{0.01, 3}, 0.5, rng.fork());
  // A "corrupt" global: random weights.
  const tensor::FlatVec corrupt = model.get_parameters();
  const tensor::FlatVec personal = client.eval_params(corrupt);
  nn::Model probe = model;
  probe.set_parameters(corrupt);
  const double global_acc = nn::accuracy(probe, fed.clients[0].test);
  probe.set_parameters(personal);
  const double personal_acc = nn::accuracy(probe, fed.clients[0].test);
  EXPECT_GT(personal_acc, global_acc);
}

TEST(RegistryExtended, NewKindsRoundTripAndConstruct) {
  for (DefenseKind k : {DefenseKind::user_dp, DefenseKind::flare,
                        DefenseKind::crfl, DefenseKind::ditto}) {
    EXPECT_EQ(parse_defense(defense_name(k)), k);
    auto agg = make_defense(k, {}, stats::Rng(13));
    ASSERT_NE(agg, nullptr);
  }
  // The Table I registry covers all four new rows.
  const auto table = defense_registry();
  EXPECT_GE(table.size(), 11u);
}

TEST(RegistryExtended, DittoRunsEndToEnd) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = DefenseKind::ditto;
  cfg.n_clients = 10;
  cfg.samples_per_client = 40;
  cfg.compromised_fraction = 0.2;
  cfg.sample_prob = 0.4;
  cfg.rounds = 10;
  cfg.attack_start_round = 3;
  cfg.seed = 5;
  const auto r = sim::run_experiment(cfg);
  EXPECT_EQ(r.final_evals.size(), 10u);
  // Ditto + non-FedAvg is rejected.
  cfg.algorithm = sim::AlgorithmKind::feddc;
  EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
}

TEST(RegistryExtended, FlareAndCrflRunEndToEnd) {
  for (DefenseKind k : {DefenseKind::flare, DefenseKind::crfl,
                        DefenseKind::user_dp}) {
    sim::ExperimentConfig cfg;
    cfg.dataset = sim::DatasetKind::sentiment_like;
    cfg.attack = sim::AttackKind::collapois;
    cfg.defense = k;
    cfg.n_clients = 10;
    cfg.samples_per_client = 40;
    cfg.compromised_fraction = 0.2;
    cfg.sample_prob = 0.4;
    cfg.rounds = 10;
    cfg.attack_start_round = 3;
    cfg.seed = 6;
    const auto r = sim::run_experiment(cfg);
    EXPECT_EQ(r.final_evals.size(), 10u) << defense_name(k);
  }
}

}  // namespace
}  // namespace collapois::defense
