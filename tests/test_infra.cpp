// The infrastructure fault plane (DESIGN.md §13): shard faults +
// failover, durable checkpoints, and chaos crash/recovery.
//
// The headline properties:
//  - failover equality: a round with injected shard failures, after
//    redistribution, is BIT-IDENTICAL to the flat path — for every
//    shardable defense, every shard count, every thread count, and
//    through full experiments on both round engines;
//  - loud durability: truncated or bit-flipped checkpoint files produce
//    std::runtime_error (never UB or an attacker-sized allocation), and
//    the rolling store recovers to the newest intact generation;
//  - chaos recovery: a run killed at a scheduled crash point and resumed
//    from its checkpoint chain finishes bit-identical to an
//    uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "agg/shard_faults.h"
#include "agg/sharded_aggregator.h"
#include "defense/registry.h"
#include "runtime/thread_pool.h"
#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/checkpoint_store.h"
#include "sim/runner.h"

namespace collapois {
namespace {

// Removes the whole rotation chain on destruction, not just the head.
class TempChain {
 public:
  explicit TempChain(std::string name)
      : path_(::testing::TempDir() + std::move(name)) {}
  ~TempChain() {
    for (std::size_t age = 0; age < 8; ++age) {
      std::remove(slot(age).c_str());
    }
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }
  std::string slot(std::size_t age) const {
    return age == 0 ? path_ : path_ + "." + std::to_string(age);
  }

 private:
  std::string path_;
};

void expect_bits_equal(const tensor::FlatVec& a, const tensor::FlatVec& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

std::vector<fl::ClientUpdate> synth_updates(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<fl::ClientUpdate> updates(n);
  for (std::size_t i = 0; i < n; ++i) {
    updates[i].client_id = i;
    updates[i].weight = 0.5 + rng.uniform();
    updates[i].delta.resize(d);
    for (float& v : updates[i].delta) {
      v = static_cast<float>(rng.normal());
    }
  }
  return updates;
}

// ------------------------------------------------------- ShardFaultModel

TEST(InfraShardFaultModel, ValidatesProbabilitiesAndBackoff) {
  agg::ShardFaultConfig bad;
  bad.crash_prob = -0.1;
  EXPECT_THROW(agg::ShardFaultModel{bad}, std::invalid_argument);
  bad.crash_prob = 1.5;
  EXPECT_THROW(agg::ShardFaultModel{bad}, std::invalid_argument);
  bad.crash_prob = 0.6;
  bad.timeout_prob = 0.6;  // sum > 1
  EXPECT_THROW(agg::ShardFaultModel{bad}, std::invalid_argument);
  agg::ShardFaultConfig nan_backoff;
  nan_backoff.backoff_base_ms = -1.0;
  EXPECT_THROW(agg::ShardFaultModel{nan_backoff}, std::invalid_argument);

  agg::ShardFaultConfig ok;
  ok.crash_prob = 0.3;
  ok.timeout_prob = 0.3;
  ok.corrupt_prob = 0.3;
  EXPECT_NO_THROW(agg::ShardFaultModel{ok});
  EXPECT_TRUE(ok.any());
  EXPECT_FALSE(agg::ShardFaultConfig{}.any());
}

TEST(InfraShardFaultModel, DecisionsAreDeterministicCounterBased) {
  agg::ShardFaultConfig cfg;
  cfg.crash_prob = 0.2;
  cfg.timeout_prob = 0.2;
  cfg.corrupt_prob = 0.2;
  const agg::ShardFaultModel a(cfg);
  const agg::ShardFaultModel b(cfg);
  std::size_t faulted = 0;
  for (std::size_t shard = 0; shard < 8; ++shard) {
    for (std::size_t round = 0; round < 64; ++round) {
      for (std::size_t attempt = 0; attempt < 3; ++attempt) {
        const auto kind = a.decide(shard, round, attempt);
        // Pure function of the cell: a second model and a repeat call
        // agree regardless of query order.
        EXPECT_EQ(kind, b.decide(shard, round, attempt));
        EXPECT_EQ(kind, a.decide(shard, round, attempt));
        if (kind != agg::ShardFaultKind::none) ++faulted;
      }
    }
  }
  // 60% fault mass over 1536 cells: the empirical rate must land near it
  // (loose 3-sigma band; deterministic, so this can never flake).
  EXPECT_GT(faulted, 1536 * 0.5);
  EXPECT_LT(faulted, 1536 * 0.7);
  // A different seed faults different cells.
  agg::ShardFaultConfig other = cfg;
  other.seed += 1;
  const agg::ShardFaultModel c(other);
  std::size_t diff = 0;
  for (std::size_t round = 0; round < 64; ++round) {
    if (a.decide(0, round, 0) != c.decide(0, round, 0)) ++diff;
  }
  EXPECT_GT(diff, 0u);
}

TEST(InfraShardFaultModel, PinnedShardOverridesEveryDraw) {
  agg::ShardFaultConfig cfg;
  cfg.pinned[2] = agg::ShardFaultKind::crash;
  const agg::ShardFaultModel m(cfg);
  for (std::size_t round = 0; round < 16; ++round) {
    for (std::size_t attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(m.decide(2, round, attempt), agg::ShardFaultKind::crash);
      EXPECT_EQ(m.decide(1, round, attempt), agg::ShardFaultKind::none);
    }
  }
}

TEST(InfraShardFaultModel, BackoffIsCappedExponential) {
  agg::ShardFaultConfig cfg;
  cfg.backoff_base_ms = 10.0;
  cfg.backoff_cap_ms = 35.0;
  const agg::ShardFaultModel m(cfg);
  EXPECT_DOUBLE_EQ(m.backoff_ms(1), 10.0);
  EXPECT_DOUBLE_EQ(m.backoff_ms(2), 20.0);
  EXPECT_DOUBLE_EQ(m.backoff_ms(3), 35.0);  // capped, not 40
  EXPECT_DOUBLE_EQ(m.backoff_ms(9), 35.0);
}

TEST(InfraShardFaultModel, KindNamesAreStable) {
  EXPECT_STREQ(agg::shard_fault_kind_name(agg::ShardFaultKind::none), "none");
  EXPECT_STREQ(agg::shard_fault_kind_name(agg::ShardFaultKind::crash),
               "crash");
  EXPECT_STREQ(agg::shard_fault_kind_name(agg::ShardFaultKind::timeout),
               "timeout");
  EXPECT_STREQ(agg::shard_fault_kind_name(agg::ShardFaultKind::corrupt),
               "corrupt");
}

// ---------------------------------------------------- failover equality

// The satellite property test: a round with an injected shard failure,
// after redistribution, is bit-identical to the flat path — for every
// shardable defense x S in {2, 4, 8} x thread counts. The pinned fault
// guarantees shard 0 exhausts its retries every round, so failover is
// exercised deterministically, not probabilistically.
TEST(InfraFailoverEquality, EveryShardableDefenseBitEqualUnderFailover) {
  using defense::DefenseKind;
  const DefenseKind kinds[] = {
      DefenseKind::none,        DefenseKind::dp,
      DefenseKind::user_dp,     DefenseKind::norm_bound,
      DefenseKind::crfl,        DefenseKind::coord_median,
      DefenseKind::trimmed_mean, DefenseKind::rlr,
      DefenseKind::sign_sgd,    DefenseKind::ditto,
  };
  runtime::ThreadPool pool(3);
  runtime::ThreadPool* pools[] = {nullptr, &pool};
  const defense::DefenseParams params;
  const auto round1 = synth_updates(13, 37, 21);
  const auto round2 = synth_updates(13, 37, 22);
  tensor::FlatVec global(37, 0.25f);

  agg::ShardFaultConfig fcfg;
  fcfg.pinned[0] = agg::ShardFaultKind::crash;

  for (DefenseKind kind : kinds) {
    SCOPED_TRACE(defense::defense_name(kind));
    auto flat = defense::make_defense(kind, params, stats::Rng(99));
    const auto flat1 = flat->aggregate(round1, global);
    const auto flat2 = flat->aggregate(round2, global);
    for (std::size_t shards : {2u, 4u, 8u}) {
      for (runtime::ThreadPool* p : pools) {
        SCOPED_TRACE(shards);
        agg::ShardedAggregator sharded(
            defense::make_defense(kind, params, stats::Rng(99)), shards,
            std::make_shared<agg::ShardFaultModel>(fcfg));
        sharded.begin_round(0);
        expect_bits_equal(flat1, sharded.aggregate(round1, global, p));
        const fl::InfraStats s1 = sharded.take_infra_stats();
        // Shard 0 is pinned to crash: it fails every attempt, exhausts
        // the retry budget, and fails over — every round, degraded.
        EXPECT_EQ(s1.shard_failovers, 1u);
        EXPECT_EQ(s1.shard_failures, fcfg.max_retries + 1);
        EXPECT_EQ(s1.shard_retries, fcfg.max_retries);
        EXPECT_GT(s1.backoff_virtual_ms, 0.0);
        EXPECT_TRUE(s1.degraded);
        sharded.begin_round(1);
        expect_bits_equal(flat2, sharded.aggregate(round2, global, p));
        EXPECT_TRUE(sharded.take_infra_stats().degraded);
      }
    }
  }
}

TEST(InfraFailoverEquality, AllShardsDeadStillBitEqualToFlat) {
  // Every shard pinned to a fault: streaming falls back to the root
  // absorbing the whole orphaned range, coordinate recomputes every tile
  // at the root — still bit-identical, still not a lost round.
  agg::ShardFaultConfig fcfg;
  for (std::size_t s = 0; s < 4; ++s) {
    fcfg.pinned[s] = s % 2 == 0 ? agg::ShardFaultKind::crash
                                : agg::ShardFaultKind::corrupt;
  }
  const auto updates = synth_updates(11, 29, 77);
  tensor::FlatVec global(29, 0.1f);
  const defense::DefenseParams params;
  for (defense::DefenseKind kind :
       {defense::DefenseKind::none, defense::DefenseKind::trimmed_mean}) {
    SCOPED_TRACE(defense::defense_name(kind));
    auto flat = defense::make_defense(kind, params, stats::Rng(5));
    agg::ShardedAggregator sharded(
        defense::make_defense(kind, params, stats::Rng(5)), 4,
        std::make_shared<agg::ShardFaultModel>(fcfg));
    sharded.begin_round(3);
    expect_bits_equal(flat->aggregate(updates, global),
                      sharded.aggregate(updates, global, nullptr));
    const fl::InfraStats s = sharded.take_infra_stats();
    EXPECT_EQ(s.shard_failovers, 4u);
    EXPECT_TRUE(s.degraded);
  }
}

TEST(InfraFailoverEquality, StochasticFaultsStayBitEqual) {
  agg::ShardFaultConfig fcfg;
  fcfg.crash_prob = 0.25;
  fcfg.timeout_prob = 0.25;
  fcfg.corrupt_prob = 0.25;
  const auto updates = synth_updates(16, 33, 9);
  tensor::FlatVec global(33, -0.2f);
  const defense::DefenseParams params;
  auto flat = defense::make_defense(defense::DefenseKind::coord_median, params,
                                    stats::Rng(2));
  agg::ShardedAggregator sharded(
      defense::make_defense(defense::DefenseKind::coord_median, params,
                            stats::Rng(2)),
      8, std::make_shared<agg::ShardFaultModel>(fcfg));
  std::size_t failures = 0;
  for (std::size_t round = 0; round < 12; ++round) {
    sharded.begin_round(round);
    expect_bits_equal(flat->aggregate(updates, global),
                      sharded.aggregate(updates, global, nullptr));
    failures += sharded.take_infra_stats().shard_failures;
  }
  // 75% per-attempt fault mass over 8 shards x 12 rounds: faults must
  // actually have fired for this test to mean anything.
  EXPECT_GT(failures, 0u);
}

TEST(InfraFailoverEquality, FaultsRequireATree) {
  EXPECT_THROW(
      agg::ShardedAggregator(
          defense::make_defense(defense::DefenseKind::none, {}, stats::Rng(1)),
          1, std::make_shared<agg::ShardFaultModel>(agg::ShardFaultConfig{})),
      std::invalid_argument);
}

// ----------------------------------------------------- full experiments

sim::ExperimentConfig infra_cfg() {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = defense::DefenseKind::trimmed_mean;
  cfg.n_clients = 40;
  cfg.samples_per_client = 30;
  cfg.sample_prob = 0.3;
  cfg.rounds = 4;
  cfg.attack_start_round = 1;
  cfg.eval_max_clients = 8;
  cfg.threads = 1;
  cfg.seed = 11;
  return cfg;
}

void expect_same_outcome(const sim::ExperimentResult& a,
                         const sim::ExperimentResult& b) {
  expect_bits_equal(a.final_global, b.final_global);
  ASSERT_EQ(a.final_evals.size(), b.final_evals.size());
  for (std::size_t i = 0; i < a.final_evals.size(); ++i) {
    EXPECT_EQ(a.final_evals[i].client_index, b.final_evals[i].client_index);
    EXPECT_EQ(a.final_evals[i].benign_ac, b.final_evals[i].benign_ac);
    EXPECT_EQ(a.final_evals[i].attack_sr, b.final_evals[i].attack_sr);
  }
}

// Full-system failover equality on BOTH round engines: a sharded run
// under pinned + stochastic shard faults matches the flat (shards = 1,
// no faults) run exactly, every round aggregates (zero rounds lost to
// failover), and the telemetry shows the degradation.
TEST(InfraFailoverEquality, FullExperimentBothEnginesMatchFlat) {
  for (fl::RoundEngineKind engine :
       {fl::RoundEngineKind::sync, fl::RoundEngineKind::buffered_async}) {
    SCOPED_TRACE(static_cast<int>(engine));
    auto flat = infra_cfg();
    flat.round_engine = engine;
    const auto reference = sim::run_experiment(flat);

    auto faulty = flat;
    faulty.shards = 4;
    faulty.threads = 4;
    faulty.shard_faults.crash_prob = 0.2;
    faulty.shard_faults.pinned[0] = agg::ShardFaultKind::timeout;
    const auto result = sim::run_experiment(faulty);

    expect_same_outcome(reference, result);
    ASSERT_EQ(result.rounds.size(), reference.rounds.size());
    std::size_t degraded = 0;
    for (std::size_t t = 0; t < result.rounds.size(); ++t) {
      EXPECT_EQ(result.rounds[t].distance_to_x,
                reference.rounds[t].distance_to_x);
      // Gate (c) of the chaos bench, unit-sized: degraded rounds still
      // aggregate — failover never skips a round.
      if (result.rounds[t].shard_failovers > 0) {
        ++degraded;
        EXPECT_TRUE(result.rounds[t].degraded);
        EXPECT_FALSE(result.rounds[t].aggregate_skipped);
      }
    }
    // The pinned shard guarantees at least one failover per aggregating
    // round, so degradation must show up in the telemetry.
    EXPECT_GT(degraded, 0u);
  }
}

TEST(InfraFailoverEquality, RunnerRejectsFaultsWithoutTree) {
  auto cfg = infra_cfg();
  cfg.shard_faults.crash_prob = 0.1;  // shards defaults to 1
  EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
}

// ----------------------------------------------- checkpoint durability

sim::Checkpoint sample_checkpoint() {
  sim::Checkpoint ck;
  ck.fingerprint = 0x1111;
  ck.net_fingerprint = 0x2222;
  ck.engine_fingerprint = 0x3333;
  ck.scale_fingerprint = 0x4444;
  ck.rounds_completed = 17;
  for (std::size_t i = 0; i < 4; ++i) {
    ck.run_rng.s[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
  }
  ck.run_rng.cached_normal = 0.25;
  ck.run_rng.has_cached_normal = true;
  ck.trojaned_model.assign(257, 1.5f);
  ck.fault_state.assign(41, 0xAB);
  ck.net_state.assign(13, 0xCD);
  ck.algo_state.assign(513, 0x5A);
  return ck;
}

void expect_checkpoints_equal(const sim::Checkpoint& a,
                              const sim::Checkpoint& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.run_rng.s[i], b.run_rng.s[i]);
  }
  EXPECT_EQ(a.trojaned_model, b.trojaned_model);
  EXPECT_EQ(a.fault_state, b.fault_state);
  EXPECT_EQ(a.net_state, b.net_state);
  EXPECT_EQ(a.algo_state, b.algo_state);
}

TEST(InfraCheckpointDurability, EncodeDecodeRoundTrips) {
  const sim::Checkpoint ck = sample_checkpoint();
  const auto image = sim::encode_checkpoint(ck);
  expect_checkpoints_equal(ck, sim::decode_checkpoint(image, "image"));
}

// Satellite: every truncated prefix must produce a loud runtime_error —
// never UB, never an attacker-sized allocation. The digest/size header
// is verified before any payload field is parsed.
TEST(InfraCheckpointDurability, TruncatedPrefixesFailLoudly) {
  const auto image = sim::encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < image.size(); len += 64) {
    SCOPED_TRACE(len);
    const std::span<const std::uint8_t> prefix(image.data(), len);
    EXPECT_THROW(sim::decode_checkpoint(prefix, "prefix"),
                 std::runtime_error);
  }
  // The off-by-one edge too: everything but the last byte.
  const std::span<const std::uint8_t> almost(image.data(), image.size() - 1);
  EXPECT_THROW(sim::decode_checkpoint(almost, "almost"), std::runtime_error);
}

// Satellite: single-bit flips at every 64th byte — header flips hit the
// magic/version/size/digest checks, payload flips hit the digest.
TEST(InfraCheckpointDurability, BitFlipsAtEvery64thByteFailLoudly) {
  const auto image = sim::encode_checkpoint(sample_checkpoint());
  for (std::size_t pos = 0; pos < image.size(); pos += 64) {
    for (std::uint8_t bit : {std::uint8_t{0}, std::uint8_t{7}}) {
      SCOPED_TRACE(pos);
      auto damaged = image;
      damaged[pos] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        sim::decode_checkpoint(damaged, "flipped");
        FAIL() << "bit flip at byte " << pos << " went undetected";
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("flipped"), std::string::npos);
      }
    }
  }
}

TEST(InfraCheckpointDurability, SaveIsAtomicAndLoadRoundTrips) {
  TempChain chain("infra_ck_atomic.bin");
  const sim::Checkpoint ck = sample_checkpoint();
  sim::save_checkpoint_file(chain.path(), ck);
  // The temp file must be gone: only the renamed final file remains.
  std::ifstream tmp(chain.path() + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  expect_checkpoints_equal(ck, sim::load_checkpoint_file(chain.path()));
}

// Satellite: the save path names the file and the errno text when the
// destination cannot be opened.
TEST(InfraCheckpointDurability, OpenFailureNamesPathAndErrno) {
  const std::string bad = "/nonexistent-dir-collapois/ck.bin";
  try {
    sim::save_checkpoint_file(bad, sample_checkpoint());
    FAIL() << "expected the open failure throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(bad), std::string::npos);
    EXPECT_NE(what.find("No such file"), std::string::npos);
  }
}

// ------------------------------------------------------ CheckpointStore

TEST(InfraCheckpointStore, ValidatesConstruction) {
  EXPECT_THROW(sim::CheckpointStore("", 3), std::invalid_argument);
  EXPECT_THROW(sim::CheckpointStore("x", 0), std::invalid_argument);
}

TEST(InfraCheckpointStore, RotationKeepsLastK) {
  TempChain chain("infra_store_rot.bin");
  sim::CheckpointStore store(chain.path(), 3);
  sim::Checkpoint ck = sample_checkpoint();
  for (std::size_t gen = 1; gen <= 4; ++gen) {
    ck.rounds_completed = gen;
    store.save(ck);
  }
  // Head = gen 4, .1 = gen 3, .2 = gen 2; gen 1 rotated off the end.
  EXPECT_EQ(sim::load_checkpoint_file(store.slot_path(0)).rounds_completed,
            4u);
  EXPECT_EQ(sim::load_checkpoint_file(store.slot_path(1)).rounds_completed,
            3u);
  EXPECT_EQ(sim::load_checkpoint_file(store.slot_path(2)).rounds_completed,
            2u);
  const auto r = store.load_newest();
  EXPECT_EQ(r.checkpoint.rounds_completed, 4u);
  EXPECT_EQ(r.path, chain.path());
  EXPECT_EQ(r.discarded, 0u);
}

TEST(InfraCheckpointStore, DamagedHeadFallsBackToLastGood) {
  TempChain chain("infra_store_fallback.bin");
  sim::CheckpointStore store(chain.path(), 3);
  sim::Checkpoint ck = sample_checkpoint();
  ck.rounds_completed = 1;
  store.save(ck);
  // A torn mid-save write damages the head; the previous generation is
  // intact behind it.
  ck.rounds_completed = 2;
  store.save_torn(ck, 0.5);
  const auto r = store.load_newest();
  EXPECT_EQ(r.checkpoint.rounds_completed, 1u);
  EXPECT_EQ(r.path, store.slot_path(1));
  EXPECT_EQ(r.discarded, 1u);
}

TEST(InfraCheckpointStore, AllDamagedThrowsNamingEveryFile) {
  TempChain chain("infra_store_alldead.bin");
  sim::CheckpointStore store(chain.path(), 2);
  sim::Checkpoint ck = sample_checkpoint();
  store.save(ck);
  store.save(ck);
  // Flip a payload byte in both generations.
  for (std::size_t age = 0; age < 2; ++age) {
    std::fstream f(store.slot_path(age),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    f.put(static_cast<char>(0x7F));
  }
  try {
    store.load_newest();
    FAIL() << "expected the all-damaged throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(store.slot_path(0)), std::string::npos);
    EXPECT_NE(what.find(store.slot_path(1)), std::string::npos);
  }
}

TEST(InfraCheckpointStore, MissingChainThrows) {
  TempChain chain("infra_store_missing.bin");
  sim::CheckpointStore store(chain.path(), 3);
  EXPECT_THROW(store.load_newest(), std::runtime_error);
}

// ------------------------------------------------------- chaos recovery

TEST(ChaosRecovery, PhaseNamesParseAndRoundTrip) {
  using sim::CrashPhase;
  for (CrashPhase p : {CrashPhase::post_train, CrashPhase::mid_buffer,
                       CrashPhase::mid_save}) {
    EXPECT_EQ(sim::parse_crash_phase(sim::crash_phase_name(p)), p);
  }
  EXPECT_THROW(sim::parse_crash_phase("mid-round"), std::invalid_argument);
  EXPECT_THROW(sim::parse_crash_phase(""), std::invalid_argument);
}

TEST(ChaosRecovery, RunnerValidatesChaosOptions) {
  {
    auto cfg = infra_cfg();
    sim::RunOptions opts;
    opts.crash_round = cfg.rounds;  // would never fire
    EXPECT_THROW(sim::run_experiment(cfg, opts), std::invalid_argument);
  }
  {
    auto cfg = infra_cfg();
    sim::RunOptions opts;
    opts.crash_round = 1;
    opts.crash_phase = sim::CrashPhase::mid_save;  // needs periodic saves
    EXPECT_THROW(sim::run_experiment(cfg, opts), std::invalid_argument);
  }
}

// The tentpole recovery property, in-process: kill at a scheduled crash
// point, resume from the chain, finish bit-identical to an uninterrupted
// run — under client + shard + transport faults.
sim::ExperimentConfig chaos_cfg() {
  auto cfg = infra_cfg();
  cfg.rounds = 6;
  cfg.shards = 2;
  cfg.shard_faults.crash_prob = 0.2;
  cfg.faults.dropout_prob = 0.1;
  cfg.faults.straggler_prob = 0.1;
  cfg.net.enabled = true;
  cfg.net.loss_prob = 0.05;
  return cfg;
}

TEST(ChaosRecovery, PostTrainCrashResumesBitExact) {
  const auto reference = sim::run_experiment(chaos_cfg());

  TempChain chain("chaos_post_train.bin");
  sim::RunOptions crash;
  crash.checkpoint_save_path = chain.path();
  crash.checkpoint_every = 2;
  crash.crash_round = 4;
  crash.crash_phase = sim::CrashPhase::post_train;
  EXPECT_THROW(sim::run_experiment(chaos_cfg(), crash), sim::CrashInjected);

  sim::RunOptions resume;
  resume.checkpoint_load_path = chain.path();
  const auto resumed = sim::run_experiment(chaos_cfg(), resume);
  // post_train fires before round 4's checkpoint: the newest intact
  // generation is round 4 (saved at the end of round index 3).
  EXPECT_EQ(resumed.recovered_from, chain.path());
  EXPECT_EQ(resumed.recovery_discarded, 0u);
  EXPECT_EQ(resumed.rounds.front().round, 4u);
  expect_same_outcome(reference, resumed);
  for (const auto& rec : resumed.rounds) {
    EXPECT_EQ(rec.distance_to_x, reference.rounds[rec.round].distance_to_x);
  }
}

TEST(ChaosRecovery, MidSaveCrashRecoversToLastGoodAndCountsIt) {
  const auto reference = sim::run_experiment(chaos_cfg());

  TempChain chain("chaos_mid_save.bin");
  sim::RunOptions crash;
  crash.checkpoint_save_path = chain.path();
  crash.checkpoint_every = 2;
  crash.crash_round = 3;
  crash.crash_phase = sim::CrashPhase::mid_save;
  EXPECT_THROW(sim::run_experiment(chaos_cfg(), crash), sim::CrashInjected);

  sim::RunOptions resume;
  resume.checkpoint_load_path = chain.path();
  const auto resumed = sim::run_experiment(chaos_cfg(), resume);
  // The head (round 4's torn save) is damaged: recovery falls back to
  // the round-2 generation and reports the discarded head.
  EXPECT_EQ(resumed.recovered_from, chain.path() + ".1");
  EXPECT_EQ(resumed.recovery_discarded, 1u);
  EXPECT_EQ(resumed.rounds.front().round, 2u);
  expect_same_outcome(reference, resumed);
}

TEST(ChaosRecovery, MidBufferCrashOnAsyncEngineResumesBitExact) {
  auto cfg = chaos_cfg();
  cfg.round_engine = fl::RoundEngineKind::buffered_async;
  const auto reference = sim::run_experiment(cfg);

  TempChain chain("chaos_mid_buffer.bin");
  sim::RunOptions crash;
  crash.checkpoint_save_path = chain.path();
  crash.checkpoint_every = 2;
  crash.crash_round = 3;
  crash.crash_phase = sim::CrashPhase::mid_buffer;
  EXPECT_THROW(sim::run_experiment(cfg, crash), sim::CrashInjected);

  sim::RunOptions resume;
  resume.checkpoint_load_path = chain.path();
  const auto resumed = sim::run_experiment(cfg, resume);
  // mid_buffer fires right after the forced save: the head checkpoint
  // carries cycle 4's in-flight buffer state and resumes from round 4.
  EXPECT_EQ(resumed.recovered_from, chain.path());
  EXPECT_EQ(resumed.rounds.front().round, 4u);
  expect_same_outcome(reference, resumed);
}

}  // namespace
}  // namespace collapois
