// Tests for the data substrate: synthetic generators, splits, label
// statistics, and the Dirichlet non-IID partitioner (the knob the whole
// paper turns).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "stats/summary.h"

namespace collapois::data {
namespace {

TEST(Dataset, AddSubsetHistogram) {
  Dataset d(3);
  for (int label : {0, 1, 1, 2, 2, 2}) {
    Example e;
    e.x = Tensor({1});
    e.label = label;
    d.add(std::move(e));
  }
  const auto hist = d.label_histogram();
  EXPECT_EQ(hist, (std::vector<double>{1, 2, 3}));
  const std::vector<std::size_t> idx = {0, 3};
  const Dataset sub = d.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[1].label, 2);
}

TEST(Dataset, CumulativeLabelDistribution) {
  Dataset d(4);
  for (int label : {0, 1, 1, 3}) {
    Example e;
    e.x = Tensor({1});
    e.label = label;
    d.add(std::move(e));
  }
  EXPECT_EQ(d.cumulative_label_distribution(),
            (std::vector<double>{1, 3, 3, 4}));
}

TEST(Dataset, AppendChecksClassCount) {
  Dataset a(2);
  Dataset b(3);
  EXPECT_THROW(a.append(b), std::invalid_argument);
  Dataset c(2);
  Example e;
  e.x = Tensor({1});
  c.add(e);
  a.append(c);
  EXPECT_EQ(a.size(), 1u);
}

TEST(Split, FractionsRespected) {
  stats::Rng rng(1);
  Dataset d(2);
  for (int i = 0; i < 100; ++i) {
    Example e;
    e.x = Tensor({1});
    e.label = i % 2;
    d.add(std::move(e));
  }
  const ClientSplit s = split_client_data(d, rng);
  EXPECT_EQ(s.train.size(), 70u);
  EXPECT_EQ(s.test.size(), 15u);
  EXPECT_EQ(s.validation.size(), 15u);
  EXPECT_EQ(s.train.size() + s.test.size() + s.validation.size(), d.size());
}

TEST(Split, TinyDatasetsKeepTrainNonEmpty) {
  stats::Rng rng(2);
  Dataset d(2);
  Example e;
  e.x = Tensor({1});
  d.add(e);
  const ClientSplit s = split_client_data(d, rng);
  EXPECT_EQ(s.train.size(), 1u);
  EXPECT_EQ(s.test.size() + s.validation.size(), 0u);
}

TEST(Split, RejectsBadFractions) {
  stats::Rng rng(3);
  Dataset d(2);
  EXPECT_THROW(split_client_data(d, rng, 0.8, 0.3), std::invalid_argument);
  EXPECT_THROW(split_client_data(d, rng, 0.0, 0.1), std::invalid_argument);
}

TEST(Batch, StacksExamples) {
  Dataset d(2);
  for (int i = 0; i < 3; ++i) {
    Example e;
    e.x = Tensor({2}, {static_cast<float>(i), static_cast<float>(-i)});
    e.label = i % 2;
    d.add(std::move(e));
  }
  const std::vector<std::size_t> idx = {2, 0};
  const Batch b = make_batch(d, idx);
  EXPECT_EQ(b.x.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(b.x[0], 2.0f);
  EXPECT_EQ(b.labels, (std::vector<int>{0, 0}));
  EXPECT_THROW(make_batch(d, std::vector<std::size_t>{}),
               std::invalid_argument);
}

TEST(ImageGenerator, ShapesAndRanges) {
  SyntheticImageConfig cfg;
  SyntheticImageGenerator gen(cfg, 99);
  stats::Rng rng(1);
  const Example e = gen.sample(3, rng);
  EXPECT_EQ(e.label, 3);
  EXPECT_EQ(e.x.shape(),
            (std::vector<std::size_t>{1, cfg.height, cfg.width}));
  for (float v : e.x.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  EXPECT_THROW(gen.sample(-1, rng), std::invalid_argument);
  EXPECT_THROW(gen.sample(10, rng), std::invalid_argument);
}

TEST(ImageGenerator, SameSeedSamePrototypes) {
  SyntheticImageGenerator a({}, 5);
  SyntheticImageGenerator b({}, 5);
  SyntheticImageGenerator c({}, 6);
  EXPECT_EQ(a.prototype(0).storage(), b.prototype(0).storage());
  EXPECT_NE(a.prototype(0).storage(), c.prototype(0).storage());
}

TEST(ImageGenerator, ClassesAreSeparable) {
  // Prototypes of different classes must differ substantially — otherwise
  // the task is unlearnable and every experiment downstream is noise.
  SyntheticImageGenerator gen({}, 7);
  double min_dist = 1e9;
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      double d = 0.0;
      const auto& pa = gen.prototype(a);
      const auto& pb = gen.prototype(b);
      for (std::size_t i = 0; i < pa.size(); ++i) {
        d += (pa[i] - pb[i]) * (pa[i] - pb[i]);
      }
      min_dist = std::min(min_dist, std::sqrt(d));
    }
  }
  EXPECT_GT(min_dist, 1.0);
}

TEST(ImageGenerator, GenerateCountsRespected) {
  SyntheticImageGenerator gen({}, 8);
  stats::Rng rng(2);
  std::vector<std::size_t> counts(10, 0);
  counts[2] = 5;
  counts[7] = 3;
  const Dataset d = gen.generate(counts, rng);
  EXPECT_EQ(d.size(), 8u);
  const auto hist = d.label_histogram();
  EXPECT_EQ(hist[2], 5.0);
  EXPECT_EQ(hist[7], 3.0);
}

TEST(TextGenerator, ShapesAndDeterminism) {
  SyntheticTextConfig cfg;
  SyntheticTextGenerator a(cfg, 11);
  SyntheticTextGenerator b(cfg, 11);
  EXPECT_EQ(a.class_mean(0).storage(), b.class_mean(0).storage());
  stats::Rng rng(1);
  const Example e = a.sample(1, rng);
  EXPECT_EQ(e.x.shape(), (std::vector<std::size_t>{cfg.embedding_dim}));
}

TEST(TextGenerator, ClassMeansOnSeparationSphere) {
  SyntheticTextConfig cfg;
  SyntheticTextGenerator gen(cfg, 12);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    double norm2 = 0.0;
    for (float v : gen.class_mean(c).data()) {
      norm2 += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(std::sqrt(norm2), cfg.class_separation, 1e-4);
  }
}

TEST(DirichletCounts, SumExactlyToTotal) {
  stats::Rng rng(3);
  for (double alpha : {0.01, 0.1, 1.0, 100.0}) {
    for (std::size_t total : {1u, 7u, 80u, 1000u}) {
      const auto counts = dirichlet_class_counts(rng, alpha, 10, total);
      EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), total)
          << "alpha=" << alpha << " total=" << total;
    }
  }
}

// The paper's central data property: small alpha concentrates each
// client's data on few classes; large alpha spreads it evenly.
class DirichletSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(DirichletSkewSweep, EffectiveClassesMatchAlphaRegime) {
  const double alpha = GetParam();
  stats::Rng rng(4);
  double mean_nonzero = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const auto counts = dirichlet_class_counts(rng, alpha, 10, 100);
    int nonzero = 0;
    for (std::size_t c : counts) nonzero += (c > 0) ? 1 : 0;
    mean_nonzero += nonzero;
  }
  mean_nonzero /= trials;
  if (alpha <= 0.05) {
    EXPECT_LT(mean_nonzero, 3.5);
  } else if (alpha >= 50.0) {
    EXPECT_GT(mean_nonzero, 9.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletSkewSweep,
                         ::testing::Values(0.01, 0.05, 1.0, 50.0, 100.0));

TEST(PartitionDirichlet, EveryExampleAssignedOnce) {
  stats::Rng rng(5);
  SyntheticTextGenerator gen({}, 13);
  std::vector<std::size_t> counts = {200, 200};
  const Dataset d = gen.generate(counts, rng);
  const auto parts = partition_dirichlet(d, 8, 0.5, rng);
  ASSERT_EQ(parts.size(), 8u);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, d.size());
}

TEST(PartitionDirichlet, LargeAlphaBalances) {
  stats::Rng rng(6);
  SyntheticTextGenerator gen({}, 14);
  std::vector<std::size_t> counts = {400, 400};
  const Dataset d = gen.generate(counts, rng);
  const auto parts = partition_dirichlet(d, 4, 1000.0, rng);
  for (const auto& p : parts) {
    // Each client close to 200 examples, each class close to balanced.
    EXPECT_NEAR(static_cast<double>(p.size()), 200.0, 40.0);
  }
}

TEST(Federation, BuildsSplitsAndHistograms) {
  stats::Rng rng(7);
  SyntheticTextGenerator gen({}, 15);
  const FederatedData fed = build_federation(gen, 12, 40, 0.5, rng);
  EXPECT_EQ(fed.num_clients(), 12u);
  EXPECT_EQ(fed.num_classes, 2u);
  const auto hists = fed.client_label_histograms();
  ASSERT_EQ(hists.size(), 12u);
  for (const auto& h : hists) {
    EXPECT_NEAR(std::accumulate(h.begin(), h.end(), 0.0), 40.0, 1e-9);
  }
  for (const auto& c : fed.clients) {
    EXPECT_FALSE(c.train.empty());
  }
}

TEST(Federation, AlphaControlsClientSkew) {
  stats::Rng rng(8);
  SyntheticImageGenerator gen({}, 16);
  const FederatedData skewed = build_federation(gen, 20, 60, 0.01, rng);
  const FederatedData even = build_federation(gen, 20, 60, 100.0, rng);
  auto mean_max_share = [](const FederatedData& fed) {
    double total = 0.0;
    for (const auto& h : fed.client_label_histograms()) {
      const double mx = *std::max_element(h.begin(), h.end());
      const double sum = std::accumulate(h.begin(), h.end(), 0.0);
      total += mx / sum;
    }
    return total / static_cast<double>(fed.num_clients());
  };
  EXPECT_GT(mean_max_share(skewed), 0.8);
  EXPECT_LT(mean_max_share(even), 0.3);
}

}  // namespace
}  // namespace collapois::data
