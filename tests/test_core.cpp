// Tests for the core contribution: the CollaPois client (Eq. 4), the
// Trojan model trainer (Eq. 1), the stealth tuner (Section IV-D), and the
// theory module (Theorems 1-3), including parameterized monotonicity
// properties of the Theorem 1 bound.
#include <gtest/gtest.h>

#include <cmath>

#include "core/collapois_client.h"
#include "core/stealth.h"
#include "core/theory.h"
#include "core/trojan_trainer.h"
#include "data/synthetic_text.h"
#include "nn/eval.h"
#include "nn/zoo.h"
#include "stats/geometry.h"
#include "trojan/embedding_trigger.h"
#include "trojan/poison.h"

namespace collapois::core {
namespace {

tensor::FlatVec constant_vec(std::size_t n, float v) {
  return tensor::FlatVec(n, v);
}

TEST(CollaPoisClient, UpdateIsPsiTimesDirection) {
  const tensor::FlatVec x = constant_vec(8, 1.0f);
  CollaPoisConfig cfg;  // psi ~ U[0.9, 1.0]
  CollaPoisClient client(0, x, cfg, stats::Rng(1));
  EXPECT_TRUE(client.is_compromised());
  EXPECT_TRUE(client.armed());

  const tensor::FlatVec global = constant_vec(8, 3.0f);
  fl::RoundContext ctx{0, global};
  for (int i = 0; i < 20; ++i) {
    const fl::ClientUpdate u = client.compute_update(ctx);
    const double psi = client.last_psi();
    EXPECT_GE(psi, 0.9);
    EXPECT_LT(psi, 1.0);
    // g = psi (theta - X) = psi * 2 in every coordinate.
    for (float v : u.delta) EXPECT_NEAR(v, 2.0 * psi, 1e-5);
  }
}

TEST(CollaPoisClient, AppliedUpdateMovesTowardX) {
  const tensor::FlatVec x = constant_vec(4, 5.0f);
  CollaPoisClient client(0, x, {}, stats::Rng(2));
  tensor::FlatVec global = constant_vec(4, 1.0f);
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  const double before = stats::l2_distance(global, x);
  tensor::axpy_inplace(global, -1.0, u.delta);
  EXPECT_LT(stats::l2_distance(global, x), before);
}

TEST(CollaPoisClient, ClipBoundsUpdateNorm) {
  const tensor::FlatVec x = constant_vec(16, 10.0f);
  CollaPoisConfig cfg;
  cfg.clip = 0.5;
  CollaPoisClient client(0, x, cfg, stats::Rng(3));
  const tensor::FlatVec global = constant_vec(16, 0.0f);
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  EXPECT_NEAR(stats::l2_norm(u.delta), 0.5, 1e-5);
}

TEST(CollaPoisClient, TauUpscalesTinyUpdates) {
  const tensor::FlatVec x = constant_vec(16, 0.001f);
  CollaPoisConfig cfg;
  cfg.tau = 2.0;
  CollaPoisClient client(0, x, cfg, stats::Rng(4));
  const tensor::FlatVec global = constant_vec(16, 0.0f);
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  EXPECT_NEAR(stats::l2_norm(u.delta), 2.0, 1e-4);
}

TEST(CollaPoisClient, ValidatesConfig) {
  const tensor::FlatVec x = constant_vec(4, 1.0f);
  CollaPoisConfig bad;
  bad.psi_a = 0.0;
  EXPECT_THROW(CollaPoisClient(0, x, bad, stats::Rng(5)),
               std::invalid_argument);
  bad = {};
  bad.psi_b = 1.5;
  EXPECT_THROW(CollaPoisClient(0, x, bad, stats::Rng(5)),
               std::invalid_argument);
  EXPECT_THROW(CollaPoisClient(0, {}, CollaPoisConfig{}, stats::Rng(5)),
               std::invalid_argument);
}

TEST(CollaPoisClient, DormantThenArmed) {
  stats::Rng rng(6);
  data::SyntheticTextGenerator gen({}, 7);
  const std::vector<std::size_t> counts = {20, 20};
  data::Dataset local = gen.generate(counts, rng);
  nn::Model model = nn::make_mlp_head({.input_dim = 32, .hidden = 8,
                                       .num_classes = 2,
                                       .num_hidden_layers = 1});
  model.init(rng);
  auto dormant = std::make_unique<fl::BenignClient>(
      0, &local, model,
      nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
      0.5, rng.fork());
  CollaPoisClient client(0, {}, {}, rng.fork(), std::move(dormant));
  EXPECT_FALSE(client.armed());
  const tensor::FlatVec global = model.get_parameters();
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  EXPECT_EQ(u.client_id, 0u);
  EXPECT_GT(stats::l2_norm(u.delta), 0.0);

  tensor::FlatVec x = global;
  x[0] += 1.0f;
  client.set_trojaned_model(x);
  EXPECT_TRUE(client.armed());
  const fl::ClientUpdate armed = client.compute_update(ctx);
  // Only coordinate 0 differs between theta and X.
  EXPECT_LT(armed.delta[0], 0.0f);
  EXPECT_EQ(armed.delta[1], 0.0f);
}

TEST(TrojanTrainer, ProducesWorkingBackdoor) {
  stats::Rng rng(8);
  data::SyntheticTextGenerator gen({}, 9);
  const std::vector<std::size_t> counts = {100, 100};
  const data::Dataset aux = gen.generate(counts, rng);
  trojan::EmbeddingTrigger trigger({}, 10);
  nn::Model model = nn::make_mlp_head({});
  model.init(rng);
  const auto res =
      train_trojaned_model(model, aux, trigger, TrojanTrainConfig{}, rng);
  ASSERT_EQ(res.x.size(), model.num_parameters());

  nn::Model x_model = nn::make_mlp_head({});
  x_model.set_parameters(res.x);
  const data::Dataset test = gen.generate(counts, rng);
  EXPECT_GT(nn::accuracy(x_model, test), 0.75);  // clean task learned
  const data::Dataset trojaned = trojan::apply_trigger_all(test, trigger, 0);
  EXPECT_GT(nn::accuracy(x_model, trojaned), 0.9);  // backdoor installed
}

TEST(TrojanTrainer, PoolsAuxiliaryData) {
  data::Dataset a(2);
  data::Dataset b(2);
  data::Example e;
  e.x = tensor::Tensor({1});
  a.add(e);
  b.add(e);
  b.add(e);
  const data::Dataset pooled = pool_auxiliary_data({&a, &b});
  EXPECT_EQ(pooled.size(), 3u);
  EXPECT_THROW(pool_auxiliary_data({}), std::invalid_argument);
  EXPECT_THROW(pool_auxiliary_data({nullptr}), std::invalid_argument);
}

// ----------------------------------------------------------- Theorem 1

TEST(Theorem1, MatchesClosedForm) {
  // mu = sigma = 0 (perfectly aligned benign gradients — hardest case):
  // |C|/|N| = 2 / (a + b + 2).
  EXPECT_NEAR(theory::theorem1_fraction(0.0, 0.0, 0.9, 1.0),
              2.0 / 3.9, 1e-12);
}

TEST(Theorem1, ZeroWhenGradientsFullyScattered) {
  // 2 - sigma^2 - mu^2 <= 0 -> no compromised clients needed in the bound.
  EXPECT_DOUBLE_EQ(theory::theorem1_fraction(1.5, 0.5, 0.9, 1.0), 0.0);
}

TEST(Theorem1, MinCompromisedCeiling) {
  const double frac = theory::theorem1_fraction(0.5, 0.3, 0.9, 1.0);
  const std::size_t c = theory::theorem1_min_compromised(0.5, 0.3, 0.9, 1.0,
                                                         1000);
  EXPECT_EQ(c, static_cast<std::size_t>(std::ceil(frac * 1000.0 - 1e-9)));
}

TEST(Theorem1, RejectsBadPsiRange) {
  EXPECT_THROW(theory::theorem1_fraction(0.5, 0.3, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(theory::theorem1_fraction(0.5, 0.3, 0.9, 0.8),
               std::invalid_argument);
}

// The paper's qualitative claim (Fig. 5): more scatter (larger mu or
// sigma) lowers the required fraction of compromised clients, for any
// valid psi range.
class Theorem1Monotonicity
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Theorem1Monotonicity, FractionDecreasesWithScatter) {
  const auto [a, b] = GetParam();
  double prev_mu = theory::theorem1_fraction(0.0, 0.2, a, b);
  for (double mu = 0.2; mu <= 1.4; mu += 0.2) {
    const double f = theory::theorem1_fraction(mu, 0.2, a, b);
    EXPECT_LE(f, prev_mu + 1e-12) << "mu=" << mu;
    prev_mu = f;
  }
  double prev_sigma = theory::theorem1_fraction(0.5, 0.0, a, b);
  for (double sigma = 0.1; sigma <= 1.2; sigma += 0.1) {
    const double f = theory::theorem1_fraction(0.5, sigma, a, b);
    EXPECT_LE(f, prev_sigma + 1e-12) << "sigma=" << sigma;
    prev_sigma = f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PsiRanges, Theorem1Monotonicity,
    ::testing::Values(std::make_pair(0.9, 1.0), std::make_pair(0.5, 0.9),
                      std::make_pair(0.95, 0.99), std::make_pair(0.1, 0.2)));

TEST(Theorem1, AngleStatsEstimator) {
  // Gradients at a known angle to the reference.
  std::vector<tensor::FlatVec> grads = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 1.0f}};
  const tensor::FlatVec ref = {1.0f, 0.0f};
  const auto s = theory::estimate_angle_stats(grads, ref);
  EXPECT_EQ(s.count, 3u);
  const double expected_mu = (0.0 + M_PI / 2.0 + M_PI / 4.0) / 3.0;
  EXPECT_NEAR(s.mu, expected_mu, 1e-6);
  EXPECT_GT(s.sigma, 0.0);
  EXPECT_THROW(theory::estimate_angle_stats({}, ref), std::invalid_argument);
}

TEST(Theorem1, RelativeErrorZeroWhenStatsMatch) {
  theory::AngleStats s{0.8, 0.3, 10};
  EXPECT_DOUBLE_EQ(theory::theorem1_relative_error(s, s, 0.9, 1.0, 100), 0.0);
  theory::AngleStats off{0.9, 0.3, 10};
  EXPECT_GT(theory::theorem1_relative_error(off, s, 0.9, 1.0, 100), 0.0);
}

TEST(Theorem1, HoeffdingHalfwidthShrinks) {
  const double e10 = theory::theorem1_hoeffding_halfwidth(10, 0.05);
  const double e1000 = theory::theorem1_hoeffding_halfwidth(1000, 0.05);
  EXPECT_LT(e1000, e10);
  EXPECT_NEAR(e1000 / e10, std::sqrt(10.0 / 1000.0), 1e-9);
}

// ----------------------------------------------------------- Theorem 2

TEST(Theorem2, BoundFormula) {
  EXPECT_NEAR(theory::theorem2_distance_bound(0.5, 2.0, 0.1),
              (1.0 / 0.5 - 1.0) * 2.0 + 0.1, 1e-12);
  // a = 1 (psi = 1 deterministic): bound collapses to the error term.
  EXPECT_NEAR(theory::theorem2_distance_bound(1.0, 5.0, 0.2), 0.2, 1e-12);
  EXPECT_THROW(theory::theorem2_distance_bound(0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(theory::theorem2_distance_bound(0.5, -1.0, 0.0),
               std::invalid_argument);
}

TEST(Theorem2, CheckAgainstConstructedRound) {
  // Build the exact relationship of the proof: theta^t = X + (1 - 1/psi)
  // * delta + zeta, with delta = psi (X - theta^{t'}).
  const double psi = 0.9;
  const tensor::FlatVec x = constant_vec(4, 2.0f);
  tensor::FlatVec theta_prev = constant_vec(4, 0.0f);
  tensor::FlatVec delta = tensor::sub(x, theta_prev);
  tensor::scale_inplace(delta, psi);
  tensor::FlatVec theta = x;
  tensor::axpy_inplace(theta, 1.0 - 1.0 / psi, delta);
  const auto check = theory::theorem2_check(
      theta, x, 0.9, stats::l2_norm(delta), 0.0);
  EXPECT_TRUE(check.holds());
  EXPECT_NEAR(check.distance, (1.0 / psi - 1.0) * stats::l2_norm(delta),
              1e-4);
}

// ----------------------------------------------------------- Theorem 3

TEST(Theorem3, LowerAtMostUpper) {
  stats::Rng rng(11);
  tensor::FlatVec x(32);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<tensor::FlatVec> detected;
  for (int i = 0; i < 3; ++i) {
    tensor::FlatVec u(32);
    for (auto& v : u) v = static_cast<float>(rng.normal(0.0, 0.2));
    detected.push_back(u);
  }
  std::vector<tensor::FlatVec> models;
  for (int i = 0; i < 12; ++i) {
    tensor::FlatVec m = x;
    for (auto& v : m) v = static_cast<float>(v + rng.normal(0.0, 1.0));
    models.push_back(m);
  }
  const auto b = theory::theorem3_error_bounds(detected, 1.0, 3, 1.0, models,
                                               x);
  EXPECT_GT(b.lower, 0.0);
  EXPECT_LE(b.lower, b.upper);
}

TEST(Theorem3, SmallerBRaisesLowerBound) {
  // Claim (2) after Theorem 3: a smaller upper bound b of psi increases
  // the estimation error's lower bound.
  std::vector<tensor::FlatVec> detected = {{1.0f, 0.0f}, {1.0f, 0.0f}};
  std::vector<tensor::FlatVec> models;
  const tensor::FlatVec x = {0.0f, 0.0f};
  const auto high_b =
      theory::theorem3_error_bounds(detected, 1.0, 2, 1.0, models, x);
  const auto low_b =
      theory::theorem3_error_bounds(detected, 1.0, 2, 0.5, models, x);
  EXPECT_GT(low_b.lower, high_b.lower);
}

TEST(Theorem3, LowerPrecisionRaisesLowerBound) {
  std::vector<tensor::FlatVec> detected = {{1.0f, 0.0f}};
  std::vector<tensor::FlatVec> models;
  const tensor::FlatVec x = {0.0f, 0.0f};
  const auto p_full =
      theory::theorem3_error_bounds(detected, 1.0, 2, 1.0, models, x);
  const auto p_half =
      theory::theorem3_error_bounds(detected, 0.5, 2, 1.0, models, x);
  EXPECT_GT(p_half.lower, p_full.lower);
}

TEST(Theorem3, EstimationError) {
  const std::vector<tensor::FlatVec> believed = {{2.0f, 0.0f}, {0.0f, 2.0f}};
  const tensor::FlatVec x = {1.0f, 1.0f};
  EXPECT_NEAR(theory::estimation_error(believed, x), 0.0, 1e-6);
  EXPECT_THROW(theory::estimation_error({}, x), std::invalid_argument);
}

// ----------------------------------------------------------- Stealth

TEST(Stealth, MeasureBlendSeparatesObviousOutliers) {
  stats::Rng rng(12);
  std::vector<tensor::FlatVec> background;
  for (int i = 0; i < 30; ++i) {
    tensor::FlatVec g(16, 1.0f);
    for (auto& v : g) v = static_cast<float>(v + rng.normal(0.0, 0.1));
    background.push_back(g);
  }
  // Malicious set pointing the opposite way: blend report must show a
  // much larger angle.
  std::vector<tensor::FlatVec> opposite;
  for (int i = 0; i < 5; ++i) {
    opposite.push_back(tensor::FlatVec(16, -1.0f));
  }
  const auto rep = measure_blend(background, opposite);
  EXPECT_GT(rep.malicious_angle_mean, rep.benign_angle_mean + 1.0);
}

TEST(Stealth, TunerMatchesBackgroundStats) {
  stats::Rng rng(13);
  // Background gradients scattered around a direction.
  std::vector<tensor::FlatVec> background;
  for (int i = 0; i < 40; ++i) {
    tensor::FlatVec g(16);
    for (std::size_t j = 0; j < g.size(); ++j) {
      g[j] = static_cast<float>(0.5 + rng.normal(0.0, 0.3));
    }
    background.push_back(g);
  }
  tensor::FlatVec global(16, 2.0f);
  tensor::FlatVec x(16, 0.0f);
  const std::vector<std::pair<double, double>> ranges = {
      {0.9, 1.0}, {0.95, 0.99}, {0.5, 0.6}};
  const auto choice = tune_stealth(background, global, x, ranges, 25, rng);
  EXPECT_GT(choice.config.clip, 0.0);
  EXPECT_GE(choice.config.psi_a, 0.5);
  // The tuned malicious magnitude must sit at the benign envelope.
  EXPECT_NEAR(choice.report.malicious_norm_mean, choice.config.clip, 0.2);
  EXPECT_THROW(tune_stealth(background, global, x, {}, 5, rng),
               std::invalid_argument);
}

TEST(Stealth, BackgroundGradientsComeFromCleanData) {
  stats::Rng rng(14);
  data::SyntheticTextGenerator gen({}, 15);
  const std::vector<std::size_t> counts = {20, 20};
  const data::Dataset d1 = gen.generate(counts, rng);
  const data::Dataset d2 = gen.generate(counts, rng);
  nn::Model model = nn::make_mlp_head({.input_dim = 32, .hidden = 8,
                                       .num_classes = 2,
                                       .num_hidden_layers = 1});
  model.init(rng);
  const tensor::FlatVec global = model.get_parameters();
  const auto grads = sample_background_gradients(
      {&d1, &d2}, model, global,
      nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
      rng);
  ASSERT_EQ(grads.size(), 2u);
  for (const auto& g : grads) {
    EXPECT_EQ(g.size(), global.size());
    EXPECT_GT(stats::l2_norm(g), 0.0);
  }
  EXPECT_THROW(sample_background_gradients({}, model, global, {}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace collapois::core
