// Training-level tests: losses, the SGD loops (plain, distillation,
// proximal), and end-to-end learnability on controlled tasks.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_text.h"
#include "nn/eval.h"
#include "nn/loss.h"
#include "nn/sgd.h"
#include "nn/zoo.h"
#include "stats/geometry.h"

namespace collapois::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3}, {1.0f, 2.0f, 3.0f, -5.0f, 0.0f, 5.0f});
  const Tensor p = softmax(logits);
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += p.at(b, c);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 999.0f});
  const Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[1]);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, {20.0f, -10.0f, -10.0f});
  const std::vector<int> label = {0};
  const auto res = softmax_cross_entropy(logits, label);
  EXPECT_LT(res.loss, 1e-6);
}

TEST(CrossEntropy, UniformPredictionLogC) {
  Tensor logits({1, 4}, {0.0f, 0.0f, 0.0f, 0.0f});
  const std::vector<int> label = {2};
  const auto res = softmax_cross_entropy(logits, label);
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, GradientSumsToZeroPerRow) {
  Tensor logits({2, 3}, {0.5f, -0.2f, 1.0f, 2.0f, 0.0f, -1.0f});
  const std::vector<int> labels = {1, 0};
  const auto res = softmax_cross_entropy(logits, labels);
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += res.grad_logits.at(b, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  const std::vector<int> bad = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, bad), std::invalid_argument);
}

TEST(SoftCrossEntropy, MatchesHardOnOneHot) {
  Tensor logits({1, 3}, {0.3f, 1.2f, -0.5f});
  const std::vector<int> label = {1};
  Tensor onehot({1, 3}, {0.0f, 1.0f, 0.0f});
  const auto hard = softmax_cross_entropy(logits, label);
  const auto soft = soft_cross_entropy(logits, onehot);
  EXPECT_NEAR(hard.loss, soft.loss, 1e-6);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(hard.grad_logits[i], soft.grad_logits[i], 1e-6);
  }
}

TEST(ArgmaxRows, PicksMaxPerRow) {
  Tensor logits({2, 3}, {1.0f, 5.0f, 2.0f, 9.0f, 0.0f, 3.0f});
  const auto preds = argmax_rows(logits);
  EXPECT_EQ(preds, (std::vector<int>{1, 0}));
}

class TrainingFixture : public ::testing::Test {
 protected:
  TrainingFixture() : rng_(42), gen_({}, 7) {
    const std::vector<std::size_t> counts = {60, 60};
    train_ = gen_.generate(counts, rng_);
    test_ = gen_.generate(counts, rng_);
  }

  Model fresh_model() {
    Model m = make_mlp_head({.input_dim = 32, .hidden = 16, .num_classes = 2,
                             .num_hidden_layers = 1});
    m.init(rng_);
    return m;
  }

  stats::Rng rng_;
  data::SyntheticTextGenerator gen_;
  data::Dataset train_;
  data::Dataset test_;
};

TEST_F(TrainingFixture, SgdLearnsSeparableTask) {
  Model m = fresh_model();
  const double before = accuracy(m, test_);
  SgdConfig cfg{.learning_rate = 0.05, .batch_size = 16, .epochs = 20};
  const double loss = train_sgd(m, train_, cfg, rng_);
  const double after = accuracy(m, test_);
  EXPECT_LT(loss, 0.5);
  EXPECT_GT(after, 0.85);
  EXPECT_GT(after, before);
}

TEST_F(TrainingFixture, LossDecreasesAcrossEpochs) {
  Model m = fresh_model();
  SgdConfig one{.learning_rate = 0.05, .batch_size = 16, .epochs = 1};
  const double first = train_sgd(m, train_, one, rng_);
  SgdConfig more{.learning_rate = 0.05, .batch_size = 16, .epochs = 10};
  const double later = train_sgd(m, train_, more, rng_);
  EXPECT_LT(later, first);
}

TEST_F(TrainingFixture, WeightDecayShrinksParameters) {
  Model a = fresh_model();
  Model b = a;
  SgdConfig no_decay{.learning_rate = 0.01, .batch_size = 16, .epochs = 5};
  SgdConfig decay = no_decay;
  decay.weight_decay = 0.1;
  stats::Rng ra(1);
  stats::Rng rb(1);
  train_sgd(a, train_, no_decay, ra);
  train_sgd(b, train_, decay, rb);
  EXPECT_LT(stats::l2_norm(b.get_parameters()),
            stats::l2_norm(a.get_parameters()));
}

TEST_F(TrainingFixture, GradClipBoundsStep) {
  Model a = fresh_model();
  const tensor::FlatVec before = a.get_parameters();
  SgdConfig clipped{.learning_rate = 1.0,
                    .batch_size = 128,
                    .epochs = 1,
                    .weight_decay = 0.0,
                    .grad_clip = 0.01};
  train_sgd(a, train_, clipped, rng_);
  // One batch (batch >= dataset size), lr 1, grad clipped to 0.01:
  // the parameter step is at most 0.01 per batch.
  const double moved =
      stats::l2_distance(a.get_parameters(), before);
  EXPECT_LE(moved, 0.011);
}

TEST_F(TrainingFixture, DistillationPullsTowardTeacher) {
  Model teacher = fresh_model();
  SgdConfig cfg{.learning_rate = 0.05, .batch_size = 16, .epochs = 15};
  train_sgd(teacher, train_, cfg, rng_);

  Model student = fresh_model();
  // Train the student with distillation only from an accurate teacher:
  // agreement with the teacher should rise.
  SgdConfig d{.learning_rate = 0.05, .batch_size = 16, .epochs = 15};
  train_sgd_distill(student, teacher, 2.0, train_, d, rng_);
  // Student should agree with the teacher on most test points.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < test_.size(); ++i) {
    std::vector<std::size_t> idx = {i};
    const auto batch = data::make_batch(test_, idx);
    const auto ps = argmax_rows(student.forward(batch.x));
    const auto pt = argmax_rows(teacher.forward(batch.x));
    if (ps[0] == pt[0]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / test_.size(), 0.9);
}

TEST_F(TrainingFixture, ProximalTermAnchorsParameters) {
  Model free = fresh_model();
  Model anchored = free;
  const tensor::FlatVec anchor = free.get_parameters();
  SgdConfig cfg{.learning_rate = 0.05, .batch_size = 16, .epochs = 10};
  stats::Rng ra(2);
  stats::Rng rb(2);
  train_sgd(free, train_, cfg, ra);
  train_sgd_proximal(anchored, anchor, 5.0, train_, cfg, rb);
  const double free_dist = stats::l2_distance(free.get_parameters(), anchor);
  const double anchored_dist =
      stats::l2_distance(anchored.get_parameters(), anchor);
  EXPECT_LT(anchored_dist, free_dist);
}

TEST_F(TrainingFixture, ProximalRejectsBadAnchor) {
  Model m = fresh_model();
  const tensor::FlatVec anchor(3, 0.0f);
  SgdConfig cfg;
  EXPECT_THROW(train_sgd_proximal(m, anchor, 1.0, train_, cfg, rng_),
               std::invalid_argument);
}

TEST_F(TrainingFixture, TrainRejectsDegenerateConfigs) {
  Model m = fresh_model();
  SgdConfig zero_batch{.learning_rate = 0.1, .batch_size = 0, .epochs = 1};
  EXPECT_THROW(train_sgd(m, train_, zero_batch, rng_), std::invalid_argument);
  data::Dataset empty(2);
  SgdConfig ok;
  EXPECT_THROW(train_sgd(m, empty, ok, rng_), std::invalid_argument);
}

TEST_F(TrainingFixture, EvalHelpers) {
  Model m = fresh_model();
  EXPECT_DOUBLE_EQ(accuracy(m, data::Dataset(2)), 0.0);
  EXPECT_DOUBLE_EQ(mean_loss(m, data::Dataset(2)), 0.0);
  const double l = mean_loss(m, test_);
  EXPECT_GT(l, 0.0);
  SgdConfig cfg{.learning_rate = 0.05, .batch_size = 16, .epochs = 20};
  train_sgd(m, train_, cfg, rng_);
  EXPECT_LT(mean_loss(m, test_), l);
}

TEST(BackwardParamsOnly, ParameterGradientsBitIdenticalToFullBackward) {
  // The SGD loops discard dL/d(input), so they run the first layer's
  // params-only backward. That shortcut must not move a single gradient
  // bit — otherwise training results would depend on which entry point
  // computed them. Covered for both first-layer kinds (Conv2d, Dense).
  stats::Rng init_rng(911);
  for (const bool conv_model : {true, false}) {
    SCOPED_TRACE(conv_model ? "lenet (Conv2d first)" : "mlp (Dense first)");
    Model full = conv_model ? make_lenet_small({}) : make_mlp_head({});
    stats::Rng r1(2024);
    full.init(r1);
    Model skip = full;  // deep copy via Layer::clone

    stats::Rng data_rng(33);
    const std::size_t batch = 5;
    const std::size_t in_dim = conv_model ? 16 * 16 : MlpConfig{}.input_dim;
    Tensor x(conv_model ? std::vector<std::size_t>{batch, 1, 16, 16}
                        : std::vector<std::size_t>{batch, in_dim});
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(data_rng.normal(0.0, 1.0));
    }
    std::vector<int> labels(batch);
    const std::size_t classes = conv_model ? 10 : MlpConfig{}.num_classes;
    for (auto& l : labels) {
      l = static_cast<int>(data_rng.uniform_int(classes));
    }

    full.zero_grad();
    auto full_res = softmax_cross_entropy(full.forward(x), labels);
    full.backward(full_res.grad_logits);

    skip.zero_grad();
    auto skip_res = softmax_cross_entropy(skip.forward(x), labels);
    skip.backward_params_only(skip_res.grad_logits);

    ASSERT_EQ(full.num_layers(), skip.num_layers());
    for (std::size_t l = 0; l < full.num_layers(); ++l) {
      const auto want = full.layer(l).gradients();
      const auto got = skip.layer(l).gradients();
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i], got[i]) << "layer " << l << " grad " << i;
      }
    }
  }
}

}  // namespace
}  // namespace collapois::nn
