// Unit tests for the deterministic RNG substrate: distribution sanity,
// reproducibility, and the structural properties the simulator relies on
// (Dirichlet normalization, sampling without replacement, stream forking).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/rng.h"

namespace collapois::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(0.9, 1.0);
    EXPECT_GE(u, 0.9);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(10))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleShift) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(11);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.1 * shape + 0.02) << "shape=" << shape;
  }
}

TEST(Rng, GammaRejectsNonPositiveShape) {
  Rng rng(12);
  EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(-1.0), std::invalid_argument);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(13);
  for (double alpha : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    const auto p = rng.dirichlet(alpha, 10);
    ASSERT_EQ(p.size(), 10u);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(Rng, DirichletSmallAlphaConcentrates) {
  // alpha << 1 puts nearly all mass on few categories; alpha >> 1 spreads
  // it evenly. Compare the expected max component.
  Rng rng(14);
  double max_small = 0.0;
  double max_large = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto small = rng.dirichlet(0.05, 10);
    const auto large = rng.dirichlet(50.0, 10);
    max_small += *std::max_element(small.begin(), small.end());
    max_large += *std::max_element(large.begin(), large.end());
  }
  max_small /= trials;
  max_large /= trials;
  EXPECT_GT(max_small, 0.7);
  EXPECT_LT(max_large, 0.25);
}

TEST(Rng, DirichletGeneralAlphaBiasesMass) {
  Rng rng(15);
  const std::vector<double> alpha = {10.0, 1.0, 1.0};
  double first = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    first += rng.dirichlet(alpha)[0];
  }
  // E[p_0] = 10 / 12.
  EXPECT_NEAR(first / trials, 10.0 / 12.0, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(16);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(17);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(18);
  for (int t = 0; t < 50; ++t) {
    const auto s = rng.sample_without_replacement(100, 20);
    ASSERT_EQ(s.size(), 20u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (std::size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(20);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(21);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(22);
  Rng child = parent.fork();
  // The two streams should differ from each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// Property sweep: every distribution stays within bounds across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BoundedOutputs) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.uniform(), 1.0);
    EXPECT_LT(rng.uniform_int(7), 7u);
    const auto d = rng.dirichlet(0.5, 4);
    double sum = 0.0;
    for (double x : d) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace collapois::stats
