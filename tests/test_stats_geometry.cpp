// Tests for flat-vector geometry: the angle machinery behind Theorem 1
// and Figs. 3/6.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/geometry.h"

namespace collapois::stats {
namespace {

TEST(Geometry, DotAndNorm) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(dot(std::span<const float>(a), b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(l2_norm(std::span<const float>(a)),
                   std::sqrt(1.0 + 4.0 + 9.0));
}

TEST(Geometry, DotRejectsSizeMismatch) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW(dot(std::span<const float>(a), b), std::invalid_argument);
}

TEST(Geometry, L2Distance) {
  const std::vector<float> a = {0.0f, 0.0f};
  const std::vector<float> b = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(l2_distance(std::span<const float>(a), b), 5.0);
}

TEST(Geometry, CosineOfParallelAndOrthogonal) {
  const std::vector<float> x = {1.0f, 0.0f};
  const std::vector<float> x2 = {2.0f, 0.0f};
  const std::vector<float> y = {0.0f, 3.0f};
  const std::vector<float> neg = {-1.0f, 0.0f};
  EXPECT_NEAR(cosine_similarity(std::span<const float>(x), x2), 1.0, 1e-9);
  EXPECT_NEAR(cosine_similarity(std::span<const float>(x), y), 0.0, 1e-9);
  EXPECT_NEAR(cosine_similarity(std::span<const float>(x), neg), -1.0, 1e-9);
}

TEST(Geometry, CosineOfZeroVectorIsZero) {
  const std::vector<float> z = {0.0f, 0.0f};
  const std::vector<float> x = {1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(std::span<const float>(z), x), 0.0);
}

TEST(Geometry, AngleValues) {
  const std::vector<float> x = {1.0f, 0.0f};
  const std::vector<float> d = {1.0f, 1.0f};
  const std::vector<float> y = {0.0f, 1.0f};
  const std::vector<float> neg = {-1.0f, 0.0f};
  EXPECT_NEAR(angle_between(std::span<const float>(x), d), M_PI / 4.0, 1e-6);
  EXPECT_NEAR(angle_between(std::span<const float>(x), y), M_PI / 2.0, 1e-6);
  EXPECT_NEAR(angle_between(std::span<const float>(x), neg), M_PI, 1e-6);
}

TEST(Geometry, DoubleOverloads) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {2.0, 4.0};
  EXPECT_NEAR(cosine_similarity(std::span<const double>(a), b), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(l2_norm(std::span<const double>(a)), std::sqrt(5.0));
}

TEST(Geometry, PairwiseAnglesCountAndValues) {
  const std::vector<std::vector<float>> vs = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 0.0f}};
  const auto angles = pairwise_angles(vs);
  ASSERT_EQ(angles.size(), 3u);  // C(3,2)
  EXPECT_NEAR(angles[0], M_PI / 2.0, 1e-6);  // v0 vs v1
  EXPECT_NEAR(angles[1], 0.0, 1e-6);         // v0 vs v2
  EXPECT_NEAR(angles[2], M_PI / 2.0, 1e-6);  // v1 vs v2
}

TEST(Geometry, PairwiseAnglesDegenerate) {
  EXPECT_TRUE(pairwise_angles({}).empty());
  EXPECT_TRUE(pairwise_angles({{1.0f}}).empty());
}

TEST(Geometry, AnglesToReference) {
  const std::vector<std::vector<float>> vs = {{1.0f, 0.0f}, {0.0f, 2.0f}};
  const std::vector<float> ref = {1.0f, 0.0f};
  const auto angles = angles_to_reference(vs, ref);
  ASSERT_EQ(angles.size(), 2u);
  EXPECT_NEAR(angles[0], 0.0, 1e-6);
  EXPECT_NEAR(angles[1], M_PI / 2.0, 1e-6);
}

}  // namespace
}  // namespace collapois::stats
