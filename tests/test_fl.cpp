// Tests for the federated engine: aggregation math, the server round
// loop, the sign convention (fl/update.h), FedDC personalization, and
// MetaFed's cyclic protocol.
#include <gtest/gtest.h>

#include <memory>

#include "data/partition.h"
#include "data/synthetic_text.h"
#include "fl/metafed.h"
#include "fl/server_algorithm.h"
#include "nn/eval.h"
#include "nn/zoo.h"
#include "stats/geometry.h"

namespace collapois::fl {
namespace {

nn::Model small_model(stats::Rng& rng) {
  nn::Model m = nn::make_mlp_head(
      {.input_dim = 32, .hidden = 8, .num_classes = 2,
       .num_hidden_layers = 1});
  m.init(rng);
  return m;
}

TEST(FedAvg, WeightedMeanOfUpdates) {
  FedAvgAggregator agg;
  std::vector<ClientUpdate> updates(2);
  updates[0].delta = {2.0f, 0.0f};
  updates[0].weight = 3.0;
  updates[1].delta = {0.0f, 4.0f};
  updates[1].weight = 1.0;
  const auto out = agg.aggregate(updates, {});
  EXPECT_NEAR(out[0], 1.5f, 1e-6);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
  EXPECT_THROW(agg.aggregate({}, {}), std::invalid_argument);
}

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture() : rng_(77), gen_({}, 3) {
    fed_ = data::build_federation(gen_, 6, 60, 10.0, rng_);
    model_ = small_model(rng_);
  }

  std::vector<std::unique_ptr<Client>> make_benign_clients() {
    std::vector<std::unique_ptr<Client>> clients;
    for (std::size_t i = 0; i < fed_.num_clients(); ++i) {
      clients.push_back(std::make_unique<BenignClient>(
          i, &fed_.clients[i].train, model_,
          nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
          0.5, rng_.fork()));
    }
    return clients;
  }

  stats::Rng rng_;
  data::SyntheticTextGenerator gen_;
  data::FederatedData fed_;
  nn::Model model_;
};

TEST_F(ServerFixture, BenignUpdateIsDescentDirection) {
  // Sign convention: applying theta - g with g = theta - theta_local lands
  // exactly on theta_local; the local model has lower local loss.
  BenignClient client(0, &fed_.clients[0].train, model_,
                      nn::SgdConfig{.learning_rate = 0.05,
                                    .batch_size = 16,
                                    .epochs = 3},
                      0.5, rng_.fork());
  const tensor::FlatVec global = model_.get_parameters();
  RoundContext ctx{0, global};
  const ClientUpdate u = client.compute_update(ctx);
  ASSERT_EQ(u.delta.size(), global.size());

  tensor::FlatVec landed = global;
  tensor::axpy_inplace(landed, -1.0, u.delta);
  nn::Model probe = model_;
  probe.set_parameters(global);
  const double loss_before = nn::mean_loss(probe, fed_.clients[0].train);
  probe.set_parameters(landed);
  const double loss_after = nn::mean_loss(probe, fed_.clients[0].train);
  EXPECT_LT(loss_after, loss_before);
}

TEST_F(ServerFixture, RoundUpdatesGlobalAndTelemetry) {
  auto clients = make_benign_clients();
  std::vector<Client*> raw;
  for (auto& c : clients) raw.push_back(c.get());

  Server server(model_.get_parameters(),
                std::make_unique<FedAvgAggregator>(),
                ServerConfig{1.0, 0.5}, stats::Rng(5));
  const tensor::FlatVec before = server.global_params();
  const RoundTelemetry t = server.run_round(raw);
  EXPECT_EQ(t.round, 0u);
  EXPECT_EQ(server.round(), 1u);
  EXPECT_FALSE(t.updates.empty());
  EXPECT_EQ(t.updates.size(), t.sampled_ids.size());
  EXPECT_EQ(t.updates.size(), t.compromised.size());
  EXPECT_EQ(t.aggregated.size(), before.size());
  EXPECT_GT(stats::l2_distance(server.global_params(), before), 0.0);
}

TEST_F(ServerFixture, AlwaysSamplesAtLeastOneClient) {
  auto clients = make_benign_clients();
  std::vector<Client*> raw;
  for (auto& c : clients) raw.push_back(c.get());
  Server server(model_.get_parameters(),
                std::make_unique<FedAvgAggregator>(),
                ServerConfig{1.0, 1e-9}, stats::Rng(6));
  for (int r = 0; r < 5; ++r) {
    const RoundTelemetry t = server.run_round(raw);
    EXPECT_GE(t.updates.size(), 1u);
  }
}

TEST_F(ServerFixture, RejectsBadConstruction) {
  EXPECT_THROW(Server({}, std::make_unique<FedAvgAggregator>(),
                      ServerConfig{1.0, 0.5}, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(Server({1.0f}, nullptr, ServerConfig{1.0, 0.5}, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(Server({1.0f}, std::make_unique<FedAvgAggregator>(),
                      ServerConfig{1.0, 0.0}, stats::Rng(1)),
               std::invalid_argument);
}

TEST_F(ServerFixture, FedAvgTrainingImprovesAccuracy) {
  auto clients = make_benign_clients();
  ServerAlgorithm algo("fedavg", model_.get_parameters(),
                       std::make_unique<FedAvgAggregator>(),
                       ServerConfig{1.0, 0.5}, std::move(clients),
                       stats::Rng(7));
  nn::Model probe = model_;
  probe.set_parameters(algo.global_params());
  const double before = nn::accuracy(probe, fed_.clients[0].test);
  for (int r = 0; r < 30; ++r) algo.run_round();
  probe.set_parameters(algo.global_params());
  const double after = nn::accuracy(probe, fed_.clients[0].test);
  EXPECT_GT(after, before + 0.1);
  EXPECT_GT(after, 0.75);
}

TEST_F(ServerFixture, FedDcPersonalizationBeatsGlobalOnSkewedData) {
  stats::Rng rng(8);
  // Strongly skewed federation so personalization matters.
  data::FederatedData skewed = data::build_federation(gen_, 6, 60, 0.05, rng);
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t i = 0; i < skewed.num_clients(); ++i) {
    clients.push_back(std::make_unique<FedDcClient>(
        i, &skewed.clients[i].train, model_,
        nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 2},
        0.1, 0.5, rng.fork()));
  }
  ServerAlgorithm algo("feddc", model_.get_parameters(),
                       std::make_unique<FedAvgAggregator>(),
                       ServerConfig{1.0, 0.6}, std::move(clients),
                       stats::Rng(9));
  for (int r = 0; r < 20; ++r) algo.run_round();

  nn::Model probe = model_;
  double personal_acc = 0.0;
  double global_acc = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < skewed.num_clients(); ++i) {
    if (skewed.clients[i].test.empty()) continue;
    probe.set_parameters(algo.client_eval_params(i));
    personal_acc += nn::accuracy(probe, skewed.clients[i].test);
    probe.set_parameters(algo.global_params());
    global_acc += nn::accuracy(probe, skewed.clients[i].test);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_GE(personal_acc, global_acc);
}

TEST_F(ServerFixture, MetaFedRunsAndLearns) {
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t i = 0; i < fed_.num_clients(); ++i) {
    clients.push_back(std::make_unique<BenignClient>(
        i, &fed_.clients[i].train, model_,
        nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
        0.3, rng_.fork()));
  }
  MetaFedAlgorithm algo(std::move(clients), model_,
                        MetaFedConfig{.sample_prob = 0.8}, stats::Rng(10));
  for (int r = 0; r < 20; ++r) {
    const RoundTelemetry t = algo.run_round();
    EXPECT_TRUE(t.updates.empty());  // no transmitted update vectors
    EXPECT_FALSE(t.sampled_ids.empty());
  }
  nn::Model probe = model_;
  double acc = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < fed_.num_clients(); ++i) {
    if (fed_.clients[i].test.empty()) continue;
    probe.set_parameters(algo.client_eval_params(i));
    acc += nn::accuracy(probe, fed_.clients[i].test);
    ++counted;
  }
  EXPECT_GT(acc / counted, 0.7);
}

TEST_F(ServerFixture, MetaFedClipAndNoiseBoundKnowledgeTransfer) {
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t i = 0; i < fed_.num_clients(); ++i) {
    clients.push_back(std::make_unique<BenignClient>(
        i, &fed_.clients[i].train, model_,
        nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
        0.3, rng_.fork()));
  }
  MetaFedConfig cfg;
  cfg.sample_prob = 1.0;
  cfg.clip = 1e-6;  // essentially freeze the models
  MetaFedAlgorithm algo(std::move(clients), model_, cfg, stats::Rng(11));
  const tensor::FlatVec before = algo.client_eval_params(0);
  algo.run_round();
  const tensor::FlatVec after = algo.client_eval_params(0);
  EXPECT_LT(stats::l2_distance(before, after), 1e-4);
}

TEST(FedAvgAlgorithm, RejectsEmptyPopulation) {
  EXPECT_THROW(ServerAlgorithm("x", {1.0f},
                               std::make_unique<FedAvgAggregator>(),
                               ServerConfig{1.0, 0.5},
                               std::vector<std::unique_ptr<Client>>{},
                               stats::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace collapois::fl
