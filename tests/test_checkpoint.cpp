// Checkpoint/resume determinism and server sampling edge cases.
//
// The headline property: a straight 2N-round experiment and an N-round
// run + checkpoint + N-round resume are BIT-IDENTICAL — final global
// params and every final client-level evaluation — across FedAvg,
// attacks, noise-adding defenses, FedDC drift state, and fault
// injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "data/partition.h"
#include "data/synthetic_text.h"
#include "defense/registry.h"
#include "fl/server_algorithm.h"
#include "fl/state.h"
#include "kernels/cpu_dispatch.h"
#include "kernels/kernels.h"
#include "nn/zoo.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"

namespace collapois {
namespace {

class TempFile {
 public:
  explicit TempFile(std::string name)
      : path_(::testing::TempDir() + std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(StateBuffer, RoundTripsEveryPrimitive) {
  stats::Rng rng(7);
  rng.normal();  // populate the Box-Muller cache
  fl::StateWriter w;
  w.write_u64(0xdeadbeefULL);
  w.write_double(-1.5e300);
  w.write_bool(true);
  w.write_floats(tensor::FlatVec{1.f, -2.5f, 3e-30f});
  w.write_bytes(std::vector<std::uint8_t>{9, 8, 7});
  w.write_rng(rng);

  fl::StateReader r(w.bytes());
  EXPECT_EQ(r.read_u64(), 0xdeadbeefULL);
  EXPECT_EQ(r.read_double(), -1.5e300);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_floats(), (tensor::FlatVec{1.f, -2.5f, 3e-30f}));
  EXPECT_EQ(r.read_bytes(), (std::vector<std::uint8_t>{9, 8, 7}));
  stats::Rng restored(0);
  r.read_rng(restored);
  EXPECT_TRUE(r.exhausted());
  // The restored stream continues identically, cached normal included.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rng.normal(), restored.normal());
    EXPECT_EQ(rng.next_u64(), restored.next_u64());
  }
}

TEST(StateBuffer, ThrowsOnTruncatedBlob) {
  fl::StateWriter w;
  w.write_floats(tensor::FlatVec(10, 1.f));
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  fl::StateReader r(bytes);
  EXPECT_THROW(r.read_floats(), std::runtime_error);
}

TEST(CheckpointFile, RoundTripsAndValidates) {
  sim::Checkpoint ck;
  ck.fingerprint = 0x1234;
  ck.rounds_completed = 17;
  ck.run_rng = stats::Rng(3).state();
  ck.trojaned_model = {1.f, 2.f};
  ck.algo_state = {5, 6};
  const TempFile file("ckpt_roundtrip.bin");
  sim::save_checkpoint_file(file.path(), ck);
  const sim::Checkpoint loaded = sim::load_checkpoint_file(file.path());
  EXPECT_EQ(loaded.fingerprint, ck.fingerprint);
  EXPECT_EQ(loaded.rounds_completed, 17u);
  EXPECT_EQ(loaded.trojaned_model, ck.trojaned_model);
  EXPECT_EQ(loaded.algo_state, ck.algo_state);
  EXPECT_EQ(stats::Rng(3).state().s[0], loaded.run_rng.s[0]);

  EXPECT_THROW(sim::load_checkpoint_file(file.path() + ".missing"),
               std::runtime_error);
}

TEST(ConfigFingerprint, SeparatesRunsButNotRoundBudgets) {
  sim::ExperimentConfig a;
  sim::ExperimentConfig b = a;
  EXPECT_EQ(sim::config_fingerprint(a), sim::config_fingerprint(b));
  b.rounds += 10;  // extending the budget is a supported resume
  EXPECT_EQ(sim::config_fingerprint(a), sim::config_fingerprint(b));
  b.seed += 1;
  EXPECT_NE(sim::config_fingerprint(a), sim::config_fingerprint(b));
  b = a;
  b.faults.dropout_prob = 0.2;
  EXPECT_NE(sim::config_fingerprint(a), sim::config_fingerprint(b));
}

TEST(ConfigFingerprint, SeparatesKernelSets) {
  // naive and blocked kernels round differently, so a checkpoint taken
  // under one set must not resume under the other (unlike threads, which
  // never changes numerics and is excluded from the fingerprint).
  sim::ExperimentConfig a;
  sim::ExperimentConfig b = a;
  b.kernels = kernels::KernelKind::naive;
  ASSERT_NE(a.kernels, b.kernels);
  EXPECT_NE(sim::config_fingerprint(a), sim::config_fingerprint(b));
}

TEST(ConfigFingerprint, IgnoresDispatchTier) {
  // The runtime ISA tier (kernels/cpu_dispatch.h) is deliberately NOT
  // part of the fingerprint: only the kernel KIND pins a trajectory, so
  // one binary can write a checkpoint on an AVX2 host and resume it on a
  // scalar-only host. Pin that by computing the fingerprint under every
  // available tier.
  sim::ExperimentConfig cfg;
  const kernels::IsaTier entry = kernels::active_tier();
  kernels::set_active_tier(kernels::IsaTier::scalar);
  const std::uint64_t scalar_fp = sim::config_fingerprint(cfg);
  kernels::set_active_tier(kernels::detected_tier());
  EXPECT_EQ(sim::config_fingerprint(cfg), scalar_fp);
  kernels::set_active_tier(entry);
}

// The cross-host regression the fingerprint exclusion promises: write a
// checkpoint under the host's best tier (AVX2 in CI), resume under the
// forced scalar tier, and demand bit identity with a straight scalar
// run. The config keeps every tier-dispatched float path on a bit-exact
// route: naive training kernels (not tier-dispatched) + a coordinate
// defense through the fast SIMD tiles (bit-exact across tiers by the
// DefenseKernelDispatch suites).
TEST(CheckpointResume, BitExactWhenTierChangesAcrossResume) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 8;
  cfg.samples_per_client = 30;
  cfg.rounds = 6;
  cfg.sample_prob = 0.5;
  cfg.attack = sim::AttackKind::none;
  cfg.seed = 99;
  cfg.kernels = kernels::KernelKind::naive;
  cfg.defense = defense::DefenseKind::coord_median;
  cfg.defense_impl = defense::DefenseImpl::fast;

  const kernels::IsaTier entry = kernels::active_tier();
  const kernels::IsaTier best = kernels::detected_tier();

  // Straight run entirely on the scalar tier.
  kernels::set_active_tier(kernels::IsaTier::scalar);
  const sim::ExperimentResult straight = sim::run_experiment(cfg);

  // Checkpoint half the run on the best tier the host has...
  kernels::set_active_tier(best);
  const TempFile file("ckpt_cross_tier.bin");
  sim::RunOptions save;
  save.checkpoint_save_path = file.path();
  save.checkpoint_round = cfg.rounds / 2;
  (void)sim::run_experiment(cfg, save);

  // ...and resume it on the scalar tier.
  kernels::set_active_tier(kernels::IsaTier::scalar);
  sim::RunOptions resume;
  resume.checkpoint_load_path = file.path();
  const sim::ExperimentResult resumed = sim::run_experiment(cfg, resume);
  kernels::set_active_tier(entry);

  ASSERT_EQ(resumed.final_global.size(), straight.final_global.size());
  EXPECT_EQ(resumed.final_global, straight.final_global);  // bit-exact
}

TEST(CheckpointFile, RejectsResumeUnderOtherKernelSet) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 8;
  cfg.samples_per_client = 30;
  cfg.rounds = 4;
  cfg.sample_prob = 0.5;
  cfg.attack = sim::AttackKind::none;
  cfg.kernels = kernels::KernelKind::blocked;

  const TempFile file("ckpt_kernel_mismatch.bin");
  sim::RunOptions save;
  save.checkpoint_save_path = file.path();
  save.checkpoint_round = 2;
  (void)sim::run_experiment(cfg, save);

  sim::RunOptions resume;
  resume.checkpoint_load_path = file.path();
  cfg.kernels = kernels::KernelKind::naive;
  EXPECT_THROW(sim::run_experiment(cfg, resume), std::invalid_argument);
  cfg.kernels = kernels::KernelKind::blocked;
  (void)sim::run_experiment(cfg, resume);  // same set resumes fine
}

// Run the experiment three ways and demand bit identity.
void expect_resume_bit_exact(sim::ExperimentConfig cfg,
                             const std::string& tag) {
  SCOPED_TRACE(tag);
  const TempFile file("ckpt_" + tag + ".bin");
  const std::size_t half = cfg.rounds / 2;

  const sim::ExperimentResult straight = sim::run_experiment(cfg);

  sim::RunOptions first;
  first.checkpoint_save_path = file.path();
  first.checkpoint_round = half;
  const sim::ExperimentResult partial = sim::run_experiment(cfg, first);
  EXPECT_EQ(partial.rounds.size(), half);

  sim::RunOptions second;
  second.checkpoint_load_path = file.path();
  const sim::ExperimentResult resumed = sim::run_experiment(cfg, second);

  ASSERT_EQ(resumed.final_global.size(), straight.final_global.size());
  EXPECT_EQ(resumed.final_global, straight.final_global);  // bit-exact
  ASSERT_EQ(resumed.final_evals.size(), straight.final_evals.size());
  for (std::size_t i = 0; i < straight.final_evals.size(); ++i) {
    EXPECT_EQ(resumed.final_evals[i].benign_ac,
              straight.final_evals[i].benign_ac);
    EXPECT_EQ(resumed.final_evals[i].attack_sr,
              straight.final_evals[i].attack_sr);
  }
  EXPECT_EQ(resumed.rounds.size(), cfg.rounds - half);
}

sim::ExperimentConfig small_config() {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 10;
  cfg.samples_per_client = 40;
  cfg.rounds = 16;
  cfg.sample_prob = 0.5;
  cfg.attack = sim::AttackKind::none;
  cfg.seed = 77;
  return cfg;
}

TEST(CheckpointResume, BitExactFedAvgBenign) {
  expect_resume_bit_exact(small_config(), "fedavg_benign");
}

TEST(CheckpointResume, BitExactCollaPoisAcrossArming) {
  sim::ExperimentConfig cfg = small_config();
  cfg.attack = sim::AttackKind::collapois;
  cfg.compromised_fraction = 0.2;
  // Checkpoint at rounds/2 = 8, after the round-6 arming: X must survive
  // the resume without retraining.
  cfg.attack_start_round = 6;
  expect_resume_bit_exact(cfg, "collapois_armed");
  // And before arming: the resumed run trains X itself.
  cfg.attack_start_round = 12;
  expect_resume_bit_exact(cfg, "collapois_unarmed");
}

TEST(CheckpointResume, BitExactFedDcDriftState) {
  sim::ExperimentConfig cfg = small_config();
  cfg.algorithm = sim::AlgorithmKind::feddc;
  expect_resume_bit_exact(cfg, "feddc");
}

TEST(CheckpointResume, BitExactUnderNoiseDefense) {
  sim::ExperimentConfig cfg = small_config();
  cfg.attack = sim::AttackKind::collapois;
  cfg.compromised_fraction = 0.2;
  cfg.attack_start_round = 4;
  cfg.defense = defense::DefenseKind::norm_bound;
  expect_resume_bit_exact(cfg, "normbound_noise");
}

TEST(CheckpointResume, BitExactUnderFaultInjection) {
  sim::ExperimentConfig cfg = small_config();
  cfg.faults.dropout_prob = 0.2;
  cfg.faults.straggler_prob = 0.2;
  cfg.faults.corrupt_prob = 0.1;
  expect_resume_bit_exact(cfg, "faults");
}

TEST(CheckpointResume, RejectsMismatchedConfig) {
  sim::ExperimentConfig cfg = small_config();
  const TempFile file("ckpt_mismatch.bin");
  sim::RunOptions save;
  save.checkpoint_save_path = file.path();
  save.checkpoint_round = 4;
  sim::run_experiment(cfg, save);

  sim::RunOptions load;
  load.checkpoint_load_path = file.path();
  sim::ExperimentConfig other = cfg;
  other.seed += 1;
  EXPECT_THROW(sim::run_experiment(other, load), std::invalid_argument);
}

// --- server sampling edge cases -----------------------------------------

namespace flns = collapois::fl;

class TinyClient : public flns::Client {
 public:
  explicit TinyClient(std::size_t id) : id_(id) {}
  std::size_t id() const override { return id_; }
  flns::ClientUpdate compute_update(const flns::RoundContext&) override {
    flns::ClientUpdate u;
    u.client_id = id_;
    u.delta = {0.1f};
    return u;
  }
  void distill_round(nn::Model&, nn::Model&) override {}

 private:
  std::size_t id_;
};

TEST(ServerSampling, FullParticipationAtProbabilityOne) {
  std::vector<std::unique_ptr<flns::Client>> owned;
  std::vector<flns::Client*> raw;
  for (std::size_t i = 0; i < 8; ++i) {
    owned.push_back(std::make_unique<TinyClient>(i));
    raw.push_back(owned.back().get());
  }
  flns::Server server({0.f}, std::make_unique<flns::FedAvgAggregator>(),
                      flns::ServerConfig{1.0, 1.0}, stats::Rng(1));
  for (int round = 0; round < 3; ++round) {
    const flns::RoundTelemetry t = server.run_round(raw);
    ASSERT_EQ(t.sampled_ids.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(t.sampled_ids[i], i);
  }
}

TEST(ServerSampling, EmptyCohortFallsBackToOneUniformClient) {
  std::vector<std::unique_ptr<flns::Client>> owned;
  std::vector<flns::Client*> raw;
  for (std::size_t i = 0; i < 8; ++i) {
    owned.push_back(std::make_unique<TinyClient>(i));
    raw.push_back(owned.back().get());
  }
  flns::Server server({0.f}, std::make_unique<flns::FedAvgAggregator>(),
                      flns::ServerConfig{1.0, 1e-12}, stats::Rng(2));
  for (int round = 0; round < 20; ++round) {
    const flns::RoundTelemetry t = server.run_round(raw);
    EXPECT_EQ(t.sampled_ids.size(), 1u);
    EXPECT_FALSE(t.aggregate_skipped);
  }
}

}  // namespace
}  // namespace collapois
