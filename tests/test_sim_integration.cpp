// Integration tests: the full experiment pipeline at miniature scale,
// across every (algorithm x attack x defense-representative) combination,
// checking structural invariants and the headline behaviours (backdoor
// takes hold without defense; reports are well-formed).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/report.h"
#include "sim/runner.h"

namespace collapois::sim {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.dataset = DatasetKind::sentiment_like;  // cheapest substrate
  cfg.n_clients = 12;
  cfg.samples_per_client = 40;
  cfg.alpha = 1.0;
  cfg.compromised_fraction = 0.2;  // 2-3 clients at this scale
  cfg.sample_prob = 0.4;
  cfg.rounds = 12;
  cfg.attack_start_round = 4;
  cfg.seed = 77;
  return cfg;
}

void check_invariants(const ExperimentConfig& cfg,
                      const ExperimentResult& r) {
  EXPECT_EQ(r.final_evals.size(), cfg.n_clients);
  EXPECT_EQ(r.rounds.size(), cfg.rounds);
  for (const auto& e : r.final_evals) {
    EXPECT_GE(e.benign_ac, 0.0);
    EXPECT_LE(e.benign_ac, 1.0);
    EXPECT_GE(e.attack_sr, 0.0);
    EXPECT_LE(e.attack_sr, 1.0);
  }
  if (cfg.attack != AttackKind::none) {
    EXPECT_FALSE(r.compromised_ids.empty());
    std::set<std::size_t> uniq(r.compromised_ids.begin(),
                               r.compromised_ids.end());
    EXPECT_EQ(uniq.size(), r.compromised_ids.size());
    EXPECT_FALSE(r.auxiliary_histogram.empty());
  } else {
    EXPECT_TRUE(r.compromised_ids.empty());
  }
  // Clusters partition the benign-with-data population.
  std::set<std::size_t> seen;
  for (const auto& c : r.clusters) {
    for (std::size_t idx : c.client_indices) {
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
}

class AttackSweep : public ::testing::TestWithParam<AttackKind> {};

TEST_P(AttackSweep, FedAvgPipelineInvariants) {
  ExperimentConfig cfg = tiny_config();
  cfg.attack = GetParam();
  const ExperimentResult r = run_experiment(cfg);
  check_invariants(cfg, r);
}

INSTANTIATE_TEST_SUITE_P(Attacks, AttackSweep,
                         ::testing::Values(AttackKind::none,
                                           AttackKind::collapois,
                                           AttackKind::dpois,
                                           AttackKind::mrepl,
                                           AttackKind::dba));

class AlgorithmSweep : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(AlgorithmSweep, CollaPoisRunsOnEveryAlgorithm) {
  ExperimentConfig cfg = tiny_config();
  cfg.algorithm = GetParam();
  cfg.attack = AttackKind::collapois;
  const ExperimentResult r = run_experiment(cfg);
  check_invariants(cfg, r);
  EXPECT_FALSE(r.trojaned_model.empty());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AlgorithmSweep,
                         ::testing::Values(AlgorithmKind::fedavg,
                                           AlgorithmKind::feddc,
                                           AlgorithmKind::metafed));

class DefenseSweep : public ::testing::TestWithParam<defense::DefenseKind> {};

TEST_P(DefenseSweep, CollaPoisUnderEveryDefense) {
  ExperimentConfig cfg = tiny_config();
  cfg.attack = AttackKind::collapois;
  cfg.defense = GetParam();
  const ExperimentResult r = run_experiment(cfg);
  check_invariants(cfg, r);
}

INSTANTIATE_TEST_SUITE_P(
    Defenses, DefenseSweep,
    ::testing::Values(defense::DefenseKind::none, defense::DefenseKind::dp,
                      defense::DefenseKind::norm_bound,
                      defense::DefenseKind::krum,
                      defense::DefenseKind::multi_krum,
                      defense::DefenseKind::coord_median,
                      defense::DefenseKind::trimmed_mean,
                      defense::DefenseKind::rlr,
                      defense::DefenseKind::sign_sgd));

TEST(SimIntegration, CollaPoisBeatsNoAttackBaseline) {
  ExperimentConfig cfg = tiny_config();
  cfg.attack = AttackKind::none;
  const double base_sr = run_experiment(cfg).population.attack_sr;
  cfg.attack = AttackKind::collapois;
  const ExperimentResult attacked = run_experiment(cfg);
  EXPECT_GT(attacked.population.attack_sr, base_sr);
  // Stealthiness: clean accuracy does not collapse.
  EXPECT_GT(attacked.population.benign_ac, 0.6);
}

TEST(SimIntegration, ImageSubstrateEndToEnd) {
  ExperimentConfig cfg = tiny_config();
  cfg.dataset = DatasetKind::femnist_like;
  cfg.attack = AttackKind::collapois;
  cfg.rounds = 10;
  const ExperimentResult r = run_experiment(cfg);
  check_invariants(cfg, r);
}

TEST(SimIntegration, DistanceToXShrinksAfterStrike) {
  ExperimentConfig cfg = tiny_config();
  cfg.attack = AttackKind::collapois;
  cfg.rounds = 25;
  const ExperimentResult r = run_experiment(cfg);
  double at_strike = 0.0;
  for (const auto& rec : r.rounds) {
    if (rec.distance_to_x > 0.0) {
      at_strike = rec.distance_to_x;
      break;
    }
  }
  ASSERT_GT(at_strike, 0.0);
  EXPECT_LT(r.rounds.back().distance_to_x, at_strike);
}

TEST(SimIntegration, PeriodicEvalPopulatesRecords) {
  ExperimentConfig cfg = tiny_config();
  cfg.eval_every = 4;
  cfg.eval_max_clients = 4;
  const ExperimentResult r = run_experiment(cfg);
  int populated = 0;
  for (const auto& rec : r.rounds) {
    if (rec.population.has_value()) ++populated;
  }
  EXPECT_EQ(populated, static_cast<int>(cfg.rounds / cfg.eval_every));
}

TEST(SimIntegration, TelemetryRetention) {
  ExperimentConfig cfg = tiny_config();
  RunOptions opt;
  opt.keep_telemetry = true;
  const ExperimentResult r = run_experiment(cfg, opt);
  EXPECT_EQ(r.telemetry.size(), cfg.rounds);
  const ExperimentResult r2 = run_experiment(cfg);
  EXPECT_TRUE(r2.telemetry.empty());
}

TEST(SimIntegration, DeterministicAcrossRuns) {
  ExperimentConfig cfg = tiny_config();
  cfg.attack = AttackKind::collapois;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.population.benign_ac, b.population.benign_ac);
  EXPECT_EQ(a.population.attack_sr, b.population.attack_sr);
  EXPECT_EQ(a.compromised_ids, b.compromised_ids);
}

TEST(SimIntegration, SeedChangesOutcome) {
  ExperimentConfig cfg = tiny_config();
  cfg.attack = AttackKind::collapois;
  const ExperimentResult a = run_experiment(cfg);
  cfg.seed = 78;
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_NE(a.population.benign_ac, b.population.benign_ac);
}

TEST(SimIntegration, MetaFedRejectsAggregationDefenses) {
  ExperimentConfig cfg = tiny_config();
  cfg.algorithm = AlgorithmKind::metafed;
  cfg.defense = defense::DefenseKind::krum;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg.defense = defense::DefenseKind::rlr;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  // DP and NormBound compose (via the knowledge-transfer analogue).
  cfg.defense = defense::DefenseKind::dp;
  EXPECT_NO_THROW(run_experiment(cfg));
}

TEST(SimIntegration, ConfigParsersRoundTrip) {
  EXPECT_EQ(parse_dataset(dataset_name(DatasetKind::femnist_like)),
            DatasetKind::femnist_like);
  EXPECT_EQ(parse_algorithm(algorithm_name(AlgorithmKind::metafed)),
            AlgorithmKind::metafed);
  EXPECT_EQ(parse_attack(attack_name(AttackKind::dba)), AttackKind::dba);
  EXPECT_THROW(parse_dataset("x"), std::invalid_argument);
  EXPECT_THROW(parse_algorithm("x"), std::invalid_argument);
  EXPECT_THROW(parse_attack("x"), std::invalid_argument);
  EXPECT_THROW(run_experiment([] {
    ExperimentConfig c = tiny_config();
    c.rounds = 0;
    return c;
  }()), std::invalid_argument);
}

TEST(SimIntegration, ReportRendering) {
  std::ostringstream os;
  print_series(os, "demo", {{"row-a", 0.91, 0.55}, {"row-b", 0.80, 0.10}});
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("row-a"), std::string::npos);
  EXPECT_NE(s.find("0.9100"), std::string::npos);

  std::ostringstream csv;
  write_series_csv(csv, {{"r", 0.5, 0.25}});
  EXPECT_EQ(csv.str(), "series,benign_ac,attack_sr\nr,0.5,0.25\n");

  ExperimentConfig cfg = tiny_config();
  const std::string tag = experiment_tag(cfg);
  EXPECT_NE(tag.find("sentiment"), std::string::npos);
  EXPECT_NE(tag.find("collapois"), std::string::npos);
}

}  // namespace
}  // namespace collapois::sim
