// Tests for the reporting layer and a few runner-level behavioural
// regressions that only need tiny federations.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"
#include "sim/runner.h"

namespace collapois::sim {
namespace {

TEST(Report, ClusterTableRendersAllColumns) {
  metrics::ClusterResult c;
  c.name = "top-1%";
  c.client_indices = {3, 7};
  c.mean_benign_ac = 0.875;
  c.mean_attack_sr = 0.5;
  c.label_cosine = 0.9;
  std::ostringstream os;
  print_clusters(os, "clusters", {c});
  const std::string s = os.str();
  EXPECT_NE(s.find("top-1%"), std::string::npos);
  EXPECT_NE(s.find("0.8750"), std::string::npos);
  EXPECT_NE(s.find("0.9000"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);  // client count
}

TEST(Report, RoundTableHandlesMissingPopulation) {
  RoundRecord with_pop;
  with_pop.round = 3;
  metrics::PopulationMetrics m;
  m.benign_ac = 0.5;
  m.attack_sr = 0.25;
  with_pop.population = m;
  with_pop.distance_to_x = 1.5;
  RoundRecord without_pop;
  without_pop.round = 4;

  std::ostringstream os;
  print_rounds(os, "rounds", {with_pop, without_pop});
  const std::string s = os.str();
  EXPECT_NE(s.find("0.5000"), std::string::npos);
  EXPECT_NE(s.find("1.5000"), std::string::npos);
  // The round without metrics renders placeholders, not garbage.
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(Report, CsvEscapesNothingButIsWellFormed) {
  std::ostringstream os;
  write_series_csv(os, {{"a", 1.0, 0.0}, {"b", 0.5, 0.25}});
  EXPECT_EQ(os.str(),
            "series,benign_ac,attack_sr\na,1,0\nb,0.5,0.25\n");
}

TEST(Report, ExperimentTagContainsEveryAxis) {
  ExperimentConfig cfg;
  cfg.dataset = DatasetKind::femnist_like;
  cfg.algorithm = AlgorithmKind::feddc;
  cfg.attack = AttackKind::mrepl;
  cfg.defense = defense::DefenseKind::krum;
  cfg.alpha = 0.25;
  const std::string tag = experiment_tag(cfg);
  EXPECT_NE(tag.find("femnist"), std::string::npos);
  EXPECT_NE(tag.find("feddc"), std::string::npos);
  EXPECT_NE(tag.find("mrepl"), std::string::npos);
  EXPECT_NE(tag.find("krum"), std::string::npos);
  EXPECT_NE(tag.find("0.25"), std::string::npos);
}

// --------------------------------------------------------- runner regressions

ExperimentConfig micro() {
  ExperimentConfig cfg;
  cfg.dataset = DatasetKind::sentiment_like;
  cfg.n_clients = 10;
  cfg.samples_per_client = 40;
  cfg.compromised_fraction = 0.2;
  cfg.sample_prob = 0.4;
  cfg.rounds = 10;
  cfg.attack_start_round = 3;
  cfg.seed = 21;
  return cfg;
}

TEST(Runner, StrikeAfterHorizonMeansNoPoisoning) {
  // Attack start beyond the round budget: compromised clients stay
  // dormant the whole campaign, so no Trojaned model exists and the
  // outcome matches the benign baseline.
  ExperimentConfig cfg = micro();
  cfg.attack = AttackKind::collapois;
  cfg.attack_start_round = 1000;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.trojaned_model.empty());

  ExperimentConfig clean = micro();
  clean.attack = AttackKind::none;
  const ExperimentResult base = run_experiment(clean);
  EXPECT_NEAR(r.population.benign_ac, base.population.benign_ac, 0.15);
}

TEST(Runner, StrikeAtRoundZeroWorks) {
  ExperimentConfig cfg = micro();
  cfg.attack = AttackKind::collapois;
  cfg.attack_start_round = 0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_FALSE(r.trojaned_model.empty());
  // The distance telemetry exists from the first round.
  EXPECT_GT(r.rounds.front().distance_to_x, 0.0);
}

TEST(Runner, AuxValidationOnlyModeRespected) {
  ExperimentConfig cfg = micro();
  cfg.attack = AttackKind::collapois;
  cfg.aux_validation_only = true;
  const ExperimentResult r = run_experiment(cfg);
  // Validation split is 15% of 40 = 6 samples per compromised client
  // (2 clients at this scale): the auxiliary histogram mass must match.
  double mass = 0.0;
  for (double v : r.auxiliary_histogram) mass += v;
  EXPECT_NEAR(mass, 6.0 * static_cast<double>(r.compromised_ids.size()),
              1e-9);

  ExperimentConfig full = micro();
  full.attack = AttackKind::collapois;
  full.aux_validation_only = false;
  const ExperimentResult rf = run_experiment(full);
  double full_mass = 0.0;
  for (double v : rf.auxiliary_histogram) full_mass += v;
  EXPECT_GT(full_mass, mass);
}

TEST(Runner, CompromisedCountRounding) {
  ExperimentConfig cfg = micro();
  cfg.attack = AttackKind::collapois;
  cfg.compromised_fraction = 0.001;  // rounds to 0 -> clamped to 1
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.compromised_ids.size(), 1u);
  cfg.compromised_fraction = 1.0;  // everyone compromised
  ExperimentConfig all = cfg;
  all.rounds = 4;
  const ExperimentResult ra = run_experiment(all);
  EXPECT_EQ(ra.compromised_ids.size(), all.n_clients);
}

}  // namespace
}  // namespace collapois::sim
