// Layer-level tests: shapes, clone semantics, and — most importantly —
// numerical gradient checks of every differentiable layer and of a full
// LeNet-style model (central finite differences against the analytic
// backward pass).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/zoo.h"
#include "stats/rng.h"

namespace collapois::nn {
namespace {

// Scalar loss for gradient checking: sum of squares of the output.
double half_sq(const Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    s += 0.5 * static_cast<double>(t[i]) * t[i];
  }
  return s;
}

Tensor half_sq_grad(const Tensor& t) { return t; }

// Verify dL/dparams and dL/dinput for a model against finite differences.
void check_gradients(Model& model, Tensor input, double tol = 2e-2) {
  model.zero_grad();
  const Tensor out = model.forward(input);
  model.backward(half_sq_grad(out));
  const tensor::FlatVec analytic_p = model.get_gradients();
  const tensor::FlatVec params = model.get_parameters();

  const double eps = 1e-3;
  // Parameter gradients (probe a strided subset for speed).
  const std::size_t stride = std::max<std::size_t>(1, params.size() / 50);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    tensor::FlatVec p = params;
    p[i] = static_cast<float>(p[i] + eps);
    model.set_parameters(p);
    const double up = half_sq(model.forward(input));
    p[i] = static_cast<float>(p[i] - 2 * eps);
    model.set_parameters(p);
    const double down = half_sq(model.forward(input));
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic_p[i], numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << "param index " << i;
  }
  model.set_parameters(params);
}

TEST(Dense, ForwardKnownValues) {
  Dense d(2, 2);
  // W = [[1, 2], [3, 4]], b = [0.5, -0.5].
  auto p = d.parameters();
  p[0] = 1; p[1] = 2; p[2] = 3; p[3] = 4; p[4] = 0.5f; p[5] = -0.5f;
  Tensor x({1, 2}, {1.0f, 1.0f});
  const Tensor y = d.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 2}));
  EXPECT_NEAR(y[0], 3.5f, 1e-6);  // 1+2+0.5
  EXPECT_NEAR(y[1], 6.5f, 1e-6);  // 3+4-0.5
}

TEST(Dense, RejectsWrongInput) {
  Dense d(3, 2);
  Tensor bad({1, 4});
  EXPECT_THROW(d.forward(bad), std::invalid_argument);
  EXPECT_THROW(Dense(0, 1), std::invalid_argument);
}

TEST(Dense, GradientCheck) {
  stats::Rng rng(1);
  Model m;
  m.add(std::make_unique<Dense>(4, 3));
  m.init(rng);
  Tensor x({2, 4});
  for (auto& v : x.storage()) v = static_cast<float>(rng.normal());
  check_gradients(m, x);
}

TEST(Relu, ForwardBackward) {
  Relu r;
  Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = r.forward(x);
  EXPECT_EQ(y.storage(), (std::vector<float>{0, 0, 2, 0}));
  Tensor g({1, 4}, {1, 1, 1, 1});
  const Tensor gi = r.backward(g);
  EXPECT_EQ(gi.storage(), (std::vector<float>{0, 0, 1, 0}));
}

TEST(Conv2d, OutputShape) {
  Conv2d c(1, 2, 3, 1);  // pad 1 keeps spatial dims
  Tensor x({2, 1, 8, 8});
  const Tensor y = c.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 2, 8, 8}));
  Conv2d valid(1, 1, 3, 0);
  EXPECT_EQ(valid.forward(x).shape(), (std::vector<std::size_t>{2, 1, 6, 6}));
}

TEST(Conv2d, KnownConvolution) {
  Conv2d c(1, 1, 2, 0);
  auto p = c.parameters();
  // Kernel = [[1, 0], [0, 1]] (trace), bias 0.
  p[0] = 1; p[1] = 0; p[2] = 0; p[3] = 1; p[4] = 0;
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = c.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_NEAR(y[0], 5.0f, 1e-6);  // 1 + 4
}

TEST(Conv2d, GradientCheck) {
  stats::Rng rng(2);
  Model m;
  m.add(std::make_unique<Conv2d>(1, 2, 3, 1));
  m.init(rng);
  Tensor x({1, 1, 6, 6});
  for (auto& v : x.storage()) v = static_cast<float>(rng.normal());
  check_gradients(m, x);
}

TEST(MaxPool2d, ForwardSelectsMaxAndRoutesGradient) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0], 5.0f);
  Tensor g({1, 1, 1, 1}, {2.0f});
  const Tensor gi = pool.backward(g);
  EXPECT_EQ(gi.storage(), (std::vector<float>{0, 2, 0, 0}));
}

TEST(MaxPool2d, RejectsOddDims) {
  MaxPool2d pool;
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x), std::invalid_argument);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Tensor x({2, 3, 4});
  const Tensor y = f.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 12}));
  const Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Model, ParameterRoundTrip) {
  stats::Rng rng(3);
  Model m = make_mlp_head({.input_dim = 8, .hidden = 6, .num_classes = 3,
                           .num_hidden_layers = 2});
  m.init(rng);
  const tensor::FlatVec p = m.get_parameters();
  EXPECT_EQ(p.size(), m.num_parameters());
  tensor::FlatVec changed = p;
  for (auto& v : changed) v += 1.0f;
  m.set_parameters(changed);
  EXPECT_EQ(m.get_parameters(), changed);
  EXPECT_THROW(m.set_parameters(std::vector<float>(3)),
               std::invalid_argument);
}

TEST(Model, CopyIsDeep) {
  stats::Rng rng(4);
  Model a = make_mlp_head({.input_dim = 4, .hidden = 4, .num_classes = 2,
                           .num_hidden_layers = 1});
  a.init(rng);
  Model b = a;
  tensor::FlatVec pb = b.get_parameters();
  pb[0] += 10.0f;
  b.set_parameters(pb);
  EXPECT_NE(a.get_parameters()[0], b.get_parameters()[0]);
}

TEST(Model, LeNetShapesAndGradients) {
  stats::Rng rng(5);
  Model m = make_lenet_small({.height = 8,
                              .width = 8,
                              .num_classes = 4,
                              .conv1_channels = 2,
                              .conv2_channels = 3,
                              .hidden = 8});
  m.init(rng);
  Tensor x({1, 1, 8, 8});
  for (auto& v : x.storage()) v = static_cast<float>(rng.uniform());
  const Tensor y = m.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 4}));
  check_gradients(m, x, 5e-2);
}

TEST(Model, SgdStepMovesAgainstGradient) {
  stats::Rng rng(6);
  Model m;
  m.add(std::make_unique<Dense>(2, 1));
  m.init(rng);
  Tensor x({1, 2}, {1.0f, 1.0f});
  m.zero_grad();
  const Tensor out = m.forward(x);
  m.backward(half_sq_grad(out));
  const double before = half_sq(m.forward(x));
  m.sgd_step(0.05);
  const double after = half_sq(m.forward(x));
  EXPECT_LT(after, before);
}

TEST(Model, ZooRejectsBadConfigs) {
  EXPECT_THROW(make_lenet_small({.height = 10, .width = 8}),
               std::invalid_argument);
  EXPECT_THROW(make_mlp_head({.num_hidden_layers = 0}), std::invalid_argument);
}

TEST(Zoo, LeNetDefaultMatchesImageSubstrate) {
  // The default LeNet must accept the default synthetic image shape.
  stats::Rng rng(7);
  Model m = make_lenet_small({});
  m.init(rng);
  Tensor x({1, 1, 16, 16});
  EXPECT_EQ(m.forward(x).shape(), (std::vector<std::size_t>{1, 10}));
}

}  // namespace
}  // namespace collapois::nn
