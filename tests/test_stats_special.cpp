// Tests for the special-function kernel underneath the statistical tests:
// values cross-checked against standard references (Abramowitz & Stegun,
// scipy).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/special.h"

namespace collapois::stats {
namespace {

TEST(LogGamma, IntegerFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGamma, HalfInteger) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(log_gamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), std::domain_error);
  EXPECT_THROW(log_gamma(-1.0), std::domain_error);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricHalf) {
  // I_{1/2}(a, a) = 1/2.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-9) << "a=" << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_{0.3}(2, 5) = 1 - (1-x)^5 (1 + 5x + 15x^2 ... ) — use scipy value.
  EXPECT_NEAR(incomplete_beta(2.0, 5.0, 0.3), 0.579825, 1e-5);
}

TEST(IncompleteBeta, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    const double v = incomplete_beta(3.0, 2.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalQuantile, RoundTripsWithCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-7);
}

TEST(NormalQuantile, RejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(StudentT, TwoSidedValues) {
  // scipy.stats.t.sf(2.0, 10) * 2 = 0.07338...
  EXPECT_NEAR(student_t_sf_two_sided(2.0, 10.0), 0.0733879, 1e-5);
  // t = 0 -> p = 1.
  EXPECT_NEAR(student_t_sf_two_sided(0.0, 5.0), 1.0, 1e-12);
  // Symmetric in t.
  EXPECT_NEAR(student_t_sf_two_sided(-2.0, 10.0),
              student_t_sf_two_sided(2.0, 10.0), 1e-12);
}

TEST(StudentT, LargeDfApproachesNormal) {
  const double p_t = student_t_sf_two_sided(1.96, 100000.0);
  const double p_n = 2.0 * (1.0 - normal_cdf(1.96));
  EXPECT_NEAR(p_t, p_n, 1e-4);
}

TEST(FSf, KnownValues) {
  // scipy.stats.f.sf(3.0, 2, 10) = 0.0947...
  EXPECT_NEAR(f_sf(3.0, 2.0, 10.0), std::pow(0.625, 5.0), 1e-9);
  EXPECT_NEAR(f_sf(0.0, 2.0, 10.0), 1.0, 1e-12);
}

TEST(FSf, MonotoneDecreasing) {
  double prev = 1.0;
  for (double f = 0.5; f < 10.0; f += 0.5) {
    const double v = f_sf(f, 3.0, 20.0);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(KolmogorovSf, KnownValues) {
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(kolmogorov_sf(1.36), 0.049, 0.002);
  EXPECT_NEAR(kolmogorov_sf(0.0), 1.0, 1e-12);
  EXPECT_LT(kolmogorov_sf(3.0), 1e-6);
}

TEST(KolmogorovSf, MonotoneDecreasingInLambda) {
  double prev = 1.0;
  for (double l = 0.1; l < 3.0; l += 0.1) {
    const double v = kolmogorov_sf(l);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

}  // namespace
}  // namespace collapois::stats
