// Tests for the inference-time Trojan detectors (STRIP, Fine-Pruning,
// Neural Cleanse) — built against a deliberately *detectable* patch
// backdoor, where each method must fire; evasion by the warp trigger is
// exercised in bench_inference_defense.
#include <gtest/gtest.h>

#include "core/trojan_trainer.h"
#include "data/synthetic_image.h"
#include "defense/inference_detect.h"
#include "nn/eval.h"
#include "nn/zoo.h"
#include "trojan/patch_trigger.h"
#include "trojan/poison.h"

namespace collapois::defense {
namespace {

// Shared expensive fixture: one patch-backdoored LeNet.
class InferenceDetectFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    stats::Rng& rng = state_->rng;
    data::SyntheticImageGenerator gen({}, 31);
    std::vector<std::size_t> counts(10, 30);
    state_->train = gen.generate(counts, rng);
    std::vector<std::size_t> eval_counts(10, 10);
    state_->clean_eval = gen.generate(eval_counts, rng);

    state_->trigger = std::make_unique<trojan::PatchTrigger>(
        trojan::PatchTrigger::global_dba(16, 16));
    nn::Model m = nn::make_lenet_small({});
    m.init(rng);
    core::TrojanTrainConfig cfg;
    cfg.sgd.epochs = 30;
    const auto trained = core::train_trojaned_model(
        std::move(m), state_->train, *state_->trigger, cfg, rng);
    state_->model = nn::make_lenet_small({});
    state_->model.set_parameters(trained.x);
    state_->trojan_eval =
        trojan::apply_trigger_all(state_->clean_eval, *state_->trigger, 0);
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    stats::Rng rng{17};
    data::Dataset train;
    data::Dataset clean_eval;
    data::Dataset trojan_eval;
    std::unique_ptr<trojan::PatchTrigger> trigger;
    nn::Model model;
  };
  static State* state_;
};

InferenceDetectFixture::State* InferenceDetectFixture::state_ = nullptr;

TEST_F(InferenceDetectFixture, BackdoorIsInstalled) {
  EXPECT_GT(nn::accuracy(state_->model, state_->clean_eval), 0.8);
  EXPECT_GT(nn::accuracy(state_->model, state_->trojan_eval), 0.9);
}

TEST_F(InferenceDetectFixture, StripSeparatesPatchTrojans) {
  StripConfig cfg;
  const StripReport r =
      strip_evaluate(state_->model, state_->clean_eval, state_->trojan_eval,
                     state_->train, cfg, state_->rng);
  // Trojaned probes keep confidently predicting the target class under
  // superposition: lower entropy than clean probes.
  EXPECT_LT(r.trojan_entropy_mean, r.clean_entropy_mean);
  EXPECT_GT(r.detection_rate, 0.3);
}

TEST_F(InferenceDetectFixture, StripValidation) {
  StripConfig cfg;
  EXPECT_THROW(strip_entropy(state_->model, state_->clean_eval[0].x,
                             data::Dataset(10), cfg, state_->rng),
               std::invalid_argument);
  EXPECT_THROW(strip_evaluate(state_->model, data::Dataset(10),
                              state_->trojan_eval, state_->train, cfg,
                              state_->rng),
               std::invalid_argument);
}

TEST_F(InferenceDetectFixture, FinePruningDegradesBackdoorFirst) {
  const auto sweep = fine_prune_sweep(state_->model, state_->clean_eval,
                                      state_->clean_eval,
                                      state_->trojan_eval, {0, 8, 16, 24});
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].pruned_units, 0u);
  // No pruning reproduces the raw model's metrics.
  EXPECT_GT(sweep[0].attack_sr, 0.9);
  // Heavy pruning must reduce the backdoor (paper: prune dormant units).
  EXPECT_LT(sweep.back().attack_sr, sweep.front().attack_sr);
}

TEST_F(InferenceDetectFixture, FinePruneZeroesUnits) {
  nn::Model pruned = fine_prune(state_->model, state_->clean_eval, 32);
  // Pruning everything in the hidden layer kills the model's confidence:
  // logits become input-independent (bias only).
  tensor::Tensor x({1, 1, 16, 16});
  const auto a = pruned.forward(x);
  tensor::Tensor y({1, 1, 16, 16});
  y.fill(1.0f);
  const auto b = pruned.forward(y);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5);
  }
  EXPECT_THROW(fine_prune(state_->model, data::Dataset(10), 4),
               std::invalid_argument);
}

TEST_F(InferenceDetectFixture, NeuralCleanseFlagsTargetClass) {
  CleanseConfig cfg;
  const CleanseReport r =
      neural_cleanse(state_->model, state_->clean_eval, cfg, state_->rng);
  ASSERT_EQ(r.mask_norms.size(), 10u);
  // The patch-backdoored class 0 admits the smallest reverse-engineered
  // mask and an anomalous index.
  EXPECT_EQ(r.flagged_class, 0);
  EXPECT_GT(r.anomaly_index, 2.0);
}

TEST(NeuralCleanse, Validation) {
  stats::Rng rng(1);
  nn::Model m = nn::make_lenet_small({});
  EXPECT_THROW(neural_cleanse(m, data::Dataset(10), {}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace collapois::defense
