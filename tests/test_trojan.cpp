// Tests for the trojan substrate: the WaNet-style warp trigger, the
// patch/DBA decomposition, the embedding trigger, and dataset poisoning.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "trojan/embedding_trigger.h"
#include "trojan/patch_trigger.h"
#include "trojan/poison.h"
#include "trojan/warp_trigger.h"

namespace collapois::trojan {
namespace {

TEST(WarpTrigger, PreservesShape) {
  WarpTrigger t({}, 42);
  Tensor img({16, 16});
  img.fill(0.5f);
  const Tensor warped = t.apply(img);
  EXPECT_EQ(warped.shape(), img.shape());
  Tensor chw({1, 16, 16});
  EXPECT_EQ(t.apply(chw).shape(), chw.shape());
}

TEST(WarpTrigger, DeterministicPerSeed) {
  WarpTrigger a({}, 1);
  WarpTrigger b({}, 1);
  WarpTrigger c({}, 2);
  Tensor img({16, 16});
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<float>(i % 7) / 7.0f;
  }
  EXPECT_EQ(a.apply(img).storage(), b.apply(img).storage());
  EXPECT_NE(a.apply(img).storage(), c.apply(img).storage());
}

TEST(WarpTrigger, DistortionIsBoundedButNonzero) {
  // The WaNet property (Fig. 14): visible-content change per pixel is
  // small yet the transformation is not the identity.
  stats::Rng rng(3);
  data::SyntheticImageGenerator gen({}, 4);
  WarpTrigger t({}, 5);
  double total_linf = 0.0;
  double total_l2 = 0.0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const auto e = gen.sample(i % 10, rng);
    const auto d = t.distortion(e.x);
    total_linf += d.linf;
    total_l2 += d.l2;
  }
  EXPECT_GT(total_l2 / n, 0.01);   // not the identity
  EXPECT_LT(total_linf / n, 0.98);  // bounded below a full flip
}

TEST(WarpTrigger, ConstantImageAlmostInvariant) {
  // Warping a constant image only changes border pixels (zero padding);
  // interior pixels are untouched — a structural property of backward
  // warping with a small field.
  WarpTrigger t({}, 6);
  Tensor img({16, 16});
  img.fill(0.7f);
  const Tensor w = t.apply(img);
  double interior_diff = 0.0;
  for (std::size_t y = 3; y < 13; ++y) {
    for (std::size_t x = 3; x < 13; ++x) {
      interior_diff += std::fabs(w.at(y, x) - 0.7f);
    }
  }
  EXPECT_LT(interior_diff, 1e-4);
}

TEST(WarpTrigger, RejectsWrongSizes) {
  WarpTrigger t({}, 7);
  Tensor small({8, 8});
  EXPECT_THROW(t.apply(small), std::invalid_argument);
  Tensor rank1({16});
  EXPECT_THROW(t.apply(rank1), std::invalid_argument);
}

TEST(WarpTrigger, FlowFieldMatchesStrength) {
  WarpConfig cfg;
  cfg.strength = 2.0;
  WarpTrigger t(cfg, 8);
  const Tensor& flow = t.flow();
  EXPECT_EQ(flow.shape(), (std::vector<std::size_t>{2, 16, 16}));
  double mean_abs = 0.0;
  for (float v : flow.data()) mean_abs += std::fabs(v);
  mean_abs /= static_cast<double>(flow.size());
  // The normalization targets a mean-|displacement| of about `strength`.
  EXPECT_NEAR(mean_abs, 2.0, 1.0);
}

TEST(PatchTrigger, StampsPatch) {
  PatchTrigger t({{1, 2, 2, 3, 0.9f}});
  Tensor img({8, 8});
  const Tensor s = t.apply(img);
  EXPECT_EQ(s.at(1, 2), 0.9f);
  EXPECT_EQ(s.at(2, 4), 0.9f);
  EXPECT_EQ(s.at(0, 0), 0.0f);
  EXPECT_EQ(s.at(3, 2), 0.0f);
}

TEST(PatchTrigger, OutOfBoundsThrows) {
  PatchTrigger t({{7, 7, 2, 2, 1.0f}});
  Tensor img({8, 8});
  EXPECT_THROW(t.apply(img), std::invalid_argument);
  EXPECT_THROW(PatchTrigger({}), std::invalid_argument);
}

TEST(PatchTrigger, DbaPartsAssembleToGlobal) {
  const auto global = PatchTrigger::global_dba(16, 16);
  const auto parts = PatchTrigger::dba_parts(16, 16);
  ASSERT_EQ(parts.size(), 4u);
  Tensor img({16, 16});
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = 0.1f * static_cast<float>(i % 5);
  }
  // Applying all parts sequentially equals applying the global trigger.
  Tensor assembled = img;
  for (const auto& p : parts) assembled = p.apply(assembled);
  EXPECT_EQ(assembled.storage(), global.apply(img).storage());
}

TEST(PatchTrigger, DbaRejectsTinyImages) {
  EXPECT_THROW(PatchTrigger::global_dba(4, 4), std::invalid_argument);
}

TEST(EmbeddingTrigger, AddsFixedDirection) {
  EmbeddingTriggerConfig cfg;
  EmbeddingTrigger t(cfg, 9);
  Tensor x({cfg.dim});
  const Tensor shifted = t.apply(x);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = shifted[i] - x[i];
    norm2 += d * d;
  }
  EXPECT_NEAR(std::sqrt(norm2), cfg.magnitude, 1e-4);
}

TEST(EmbeddingTrigger, PartsSumToWhole) {
  EmbeddingTriggerConfig cfg;
  EmbeddingTrigger whole(cfg, 10);
  Tensor x({cfg.dim});
  Tensor assembled = x;
  for (std::size_t k = 0; k < 4; ++k) {
    assembled = whole.part(k, 4).apply(assembled);
  }
  const Tensor direct = whole.apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(assembled[i], direct[i], 1e-5);
  }
  EXPECT_THROW(whole.part(4, 4), std::invalid_argument);
}

TEST(EmbeddingTrigger, RejectsWrongDim) {
  EmbeddingTrigger t({}, 11);
  Tensor wrong({16});
  EXPECT_THROW(t.apply(wrong), std::invalid_argument);
}

TEST(Poison, ApplyTriggerAllRelabels) {
  stats::Rng rng(12);
  data::SyntheticTextGenerator gen({}, 13);
  const std::vector<std::size_t> counts = {10, 10};
  const data::Dataset d = gen.generate(counts, rng);
  EmbeddingTrigger t({}, 14);
  const data::Dataset p = apply_trigger_all(d, t, 0);
  EXPECT_EQ(p.size(), d.size());
  for (const auto& e : p) EXPECT_EQ(e.label, 0);
  EXPECT_THROW(apply_trigger_all(d, t, 5), std::invalid_argument);
}

TEST(Poison, MixPoisonAddsFraction) {
  stats::Rng rng(15);
  data::SyntheticTextGenerator gen({}, 16);
  const std::vector<std::size_t> counts = {20, 20};
  const data::Dataset clean = gen.generate(counts, rng);
  EmbeddingTrigger t({}, 17);
  const data::Dataset mixed = mix_poison(clean, t, 0, 0.5, rng);
  EXPECT_EQ(mixed.size(), 60u);  // 40 clean + 20 poisoned
  // The clean prefix is intact.
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(mixed[i].label, clean[i].label);
  }
  // The appended examples all carry the target label.
  for (std::size_t i = clean.size(); i < mixed.size(); ++i) {
    EXPECT_EQ(mixed[i].label, 0);
  }
  EXPECT_THROW(mix_poison(clean, t, 0, 1.5, rng), std::invalid_argument);
}

TEST(Poison, ZeroFractionIsClean) {
  stats::Rng rng(18);
  data::SyntheticTextGenerator gen({}, 19);
  const std::vector<std::size_t> counts = {5, 5};
  const data::Dataset clean = gen.generate(counts, rng);
  EmbeddingTrigger t({}, 20);
  EXPECT_EQ(mix_poison(clean, t, 0, 0.0, rng).size(), clean.size());
}

TEST(Trigger, DistortionDetectsShapeChange) {
  // distortion() must reject triggers that change element counts.
  struct BadTrigger : Trigger {
    Tensor apply(const Tensor&) const override { return Tensor({2}); }
    std::unique_ptr<Trigger> clone() const override {
      return std::make_unique<BadTrigger>();
    }
  };
  BadTrigger bad;
  Tensor x({3});
  EXPECT_THROW(bad.distortion(x), std::logic_error);
}

}  // namespace
}  // namespace collapois::trojan
