// Tests for the client-level metrics: Benign AC / Attack SR evaluation,
// Eq. 8 score ranking, top-k aggregation, the disjoint risk clusters and
// Eq. 9's cumulative-label cosine, and the round telemetry summaries.
#include <gtest/gtest.h>

#include <cmath>

#include "data/partition.h"
#include "data/synthetic_text.h"
#include "fl/server_algorithm.h"
#include "metrics/client_metrics.h"
#include "metrics/clusters.h"
#include "metrics/telemetry.h"
#include "nn/sgd.h"
#include "nn/zoo.h"
#include "trojan/embedding_trigger.h"

namespace collapois::metrics {
namespace {

ClientEval make_eval(std::size_t idx, double ac, double sr,
                     bool compromised = false) {
  ClientEval e;
  e.client_index = idx;
  e.compromised = compromised;
  e.has_test_data = true;
  e.benign_ac = ac;
  e.attack_sr = sr;
  return e;
}

TEST(PopulationMetrics, AveragesBenignOnly) {
  std::vector<ClientEval> evals = {
      make_eval(0, 0.8, 0.2),
      make_eval(1, 0.6, 0.4),
      make_eval(2, 0.0, 1.0, /*compromised=*/true),
  };
  const auto m = average_benign(evals);
  EXPECT_EQ(m.clients, 2u);
  EXPECT_NEAR(m.benign_ac, 0.7, 1e-12);
  EXPECT_NEAR(m.attack_sr, 0.3, 1e-12);
}

TEST(PopulationMetrics, SkipsClientsWithoutTestData) {
  std::vector<ClientEval> evals = {make_eval(0, 0.9, 0.1)};
  ClientEval no_data;
  no_data.client_index = 1;
  evals.push_back(no_data);
  const auto m = average_benign(evals);
  EXPECT_EQ(m.clients, 1u);
}

TEST(TopK, SelectsHighestScores) {
  std::vector<ClientEval> evals;
  for (int i = 0; i < 10; ++i) {
    evals.push_back(make_eval(static_cast<std::size_t>(i), 0.5,
                              0.1 * static_cast<double>(i)));
  }
  const auto top20 = average_top_k(evals, 20.0);  // top 2 by score
  EXPECT_EQ(top20.clients, 2u);
  EXPECT_NEAR(top20.attack_sr, (0.9 + 0.8) / 2.0, 1e-12);
  const auto top_all = average_top_k(evals, 100.0);
  EXPECT_EQ(top_all.clients, 10u);
  EXPECT_THROW(average_top_k(evals, 0.0), std::invalid_argument);
  EXPECT_THROW(average_top_k(evals, 150.0), std::invalid_argument);
}

TEST(TopK, AlwaysAtLeastOneClient) {
  std::vector<ClientEval> evals = {make_eval(0, 0.5, 0.5),
                                   make_eval(1, 0.4, 0.1)};
  const auto m = average_top_k(evals, 1.0);
  EXPECT_EQ(m.clients, 1u);
  EXPECT_NEAR(m.attack_sr, 0.5, 1e-12);
}

TEST(FractionInfected, ThresholdCounting) {
  std::vector<ClientEval> evals = {
      make_eval(0, 0.9, 0.9), make_eval(1, 0.9, 0.5), make_eval(2, 0.9, 0.1),
      make_eval(3, 0.0, 1.0, true)};
  EXPECT_NEAR(fraction_infected(evals, 0.7), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(fraction_infected(evals, 0.05), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(fraction_infected({}, 0.5), 0.0);
}

TEST(CumulativeLabelCosine, IdenticalDistributionsAreOne) {
  const std::vector<double> h = {3.0, 1.0, 2.0};
  EXPECT_NEAR(cumulative_label_cosine(h, h), 1.0, 1e-12);
}

TEST(CumulativeLabelCosine, UsesCumulativeNotRaw) {
  // Raw histograms orthogonal, but cumulative distributions overlap —
  // the Eq. 9 design (prefix sums) must be reflected.
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  const double cs = cumulative_label_cosine(a, b);
  // Cumulative: a -> (1, 1), b -> (0, 1); cosine = 1/sqrt(2).
  EXPECT_NEAR(cs, 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_THROW(cumulative_label_cosine(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(RiskClusters, DisjointAndOrdered) {
  std::vector<ClientEval> evals;
  std::vector<std::vector<double>> hists;
  for (int i = 0; i < 100; ++i) {
    evals.push_back(make_eval(static_cast<std::size_t>(i), 0.5,
                              static_cast<double>(i) / 100.0));
    hists.push_back({1.0, 1.0});
  }
  const std::vector<double> aux = {1.0, 1.0};
  const auto clusters = risk_clusters(evals, {1, 25, 50}, hists, aux);
  ASSERT_EQ(clusters.size(), 4u);
  EXPECT_EQ(clusters[0].name, "top-1%");
  EXPECT_EQ(clusters[3].name, "bottom");
  // Disjoint cover of the population.
  std::size_t total = 0;
  std::set<std::size_t> seen;
  for (const auto& c : clusters) {
    total += c.client_indices.size();
    for (std::size_t idx : c.client_indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "client in two clusters";
    }
  }
  EXPECT_EQ(total, 100u);
  // Risk ordering: Attack SR non-increasing across clusters.
  for (std::size_t k = 1; k < clusters.size(); ++k) {
    EXPECT_GE(clusters[k - 1].mean_attack_sr, clusters[k].mean_attack_sr);
  }
  // Identical label hists -> CS == 1 everywhere.
  for (const auto& c : clusters) EXPECT_NEAR(c.label_cosine, 1.0, 1e-9);
}

TEST(RiskClusters, RejectsNonIncreasingKs) {
  std::vector<ClientEval> evals = {make_eval(0, 1, 1)};
  EXPECT_THROW(risk_clusters(evals, {25, 25}, {{1.0}}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Telemetry, SummarizesAngleSeparately) {
  fl::RoundTelemetry t;
  // Two aligned benign, two anti-aligned malicious.
  for (int i = 0; i < 2; ++i) {
    fl::ClientUpdate u;
    u.delta = {1.0f, 0.0f};
    t.updates.push_back(std::move(u));
    t.compromised.push_back(false);
  }
  fl::ClientUpdate m1;
  m1.delta = {0.0f, 1.0f};
  fl::ClientUpdate m2;
  m2.delta = {0.0f, -1.0f};
  t.updates.push_back(std::move(m1));
  t.compromised.push_back(true);
  t.updates.push_back(std::move(m2));
  t.compromised.push_back(true);

  const auto s = summarize_round_angles(t);
  EXPECT_EQ(s.n_benign, 2u);
  EXPECT_EQ(s.n_malicious, 2u);
  EXPECT_NEAR(s.benign_pairwise_mean, 0.0, 1e-6);
  EXPECT_NEAR(s.malicious_pairwise_mean, M_PI, 1e-6);
}

TEST(Telemetry, EmptyUpdatesAreFine) {
  fl::RoundTelemetry t;
  t.compromised = {true, false};  // MetaFed-style: flags but no updates
  const auto s = summarize_round_angles(t);
  EXPECT_EQ(s.n_benign, 0u);
  EXPECT_EQ(s.n_malicious, 0u);
}

TEST(Telemetry, AccumulatorAggregatesRounds) {
  AngleAccumulator acc;
  fl::RoundTelemetry t;
  for (int i = 0; i < 3; ++i) {
    fl::ClientUpdate u;
    u.delta = {1.0f, static_cast<float>(i)};
    t.updates.push_back(std::move(u));
    t.compromised.push_back(false);
  }
  acc.add(t);
  acc.add(t);
  EXPECT_EQ(acc.benign().count(), 6u);  // 2 rounds x C(3,2)
  EXPECT_EQ(acc.malicious().count(), 0u);
}

TEST(EvaluateClients, EndToEndOnTinyFederation) {
  stats::Rng rng(3);
  data::SyntheticTextGenerator gen({}, 4);
  data::FederatedData fed = data::build_federation(gen, 5, 40, 10.0, rng);

  nn::Model model = nn::make_mlp_head(
      {.input_dim = 32, .hidden = 8, .num_classes = 2,
       .num_hidden_layers = 1});
  model.init(rng);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::size_t i = 0; i < 5; ++i) {
    clients.push_back(std::make_unique<fl::BenignClient>(
        i, &fed.clients[i].train, model,
        nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
        0.5, rng.fork()));
  }
  fl::ServerAlgorithm algo("fedavg", model.get_parameters(),
                           std::make_unique<fl::FedAvgAggregator>(),
                           fl::ServerConfig{1.0, 0.6}, std::move(clients),
                           stats::Rng(5));
  for (int r = 0; r < 15; ++r) algo.run_round();

  trojan::EmbeddingTrigger trigger({}, 6);
  const std::vector<bool> compromised(5, false);
  EvalConfig cfg;
  const auto evals =
      evaluate_clients(algo, fed, trigger, model, compromised, cfg);
  ASSERT_EQ(evals.size(), 5u);
  for (const auto& e : evals) {
    EXPECT_GE(e.benign_ac, 0.0);
    EXPECT_LE(e.benign_ac, 1.0);
    EXPECT_GE(e.attack_sr, 0.0);
    EXPECT_LE(e.attack_sr, 1.0);
  }
  // A trained, un-attacked model classifies well.
  EXPECT_GT(average_benign(evals).benign_ac, 0.7);

  // Strided evaluation bounds the client count.
  EvalConfig limited;
  limited.max_clients = 2;
  const auto few =
      evaluate_clients(algo, fed, trigger, model, compromised, limited);
  EXPECT_EQ(few.size(), 2u);

  const std::vector<bool> wrong(3, false);
  EXPECT_THROW(evaluate_clients(algo, fed, trigger, model, wrong, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace collapois::metrics
