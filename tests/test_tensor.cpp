// Tests for the tensor substrate: shape bookkeeping, flat-vector ops, and
// the linear-algebra kernels the nn layers are built on.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/geometry.h"
#include "tensor/linalg.h"
#include "tensor/tensor.h"
#include "tensor/vecops.h"

namespace collapois::tensor {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, AdoptsData) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor({2, 2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, CheckedAccessors) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t.at(1, 2, 3), 7.0f);
  EXPECT_THROW(t.at(2, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 0), std::out_of_range);  // wrong rank
  EXPECT_THROW(t.dim(5), std::out_of_range);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, FillAndSameShape) {
  Tensor a({2, 2});
  Tensor b({2, 2});
  Tensor c({4});
  a.fill(3.5f);
  EXPECT_EQ(a[3], 3.5f);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(VecOps, AddSubScale) {
  const FlatVec a = {1.0f, 2.0f};
  const FlatVec b = {3.0f, 5.0f};
  EXPECT_EQ(add(a, b), (FlatVec{4.0f, 7.0f}));
  EXPECT_EQ(sub(b, a), (FlatVec{2.0f, 3.0f}));
  EXPECT_EQ(scale(a, 2.0), (FlatVec{2.0f, 4.0f}));
}

TEST(VecOps, SizeMismatchThrows) {
  const FlatVec a = {1.0f};
  const FlatVec b = {1.0f, 2.0f};
  EXPECT_THROW(add(a, b), std::invalid_argument);
  FlatVec c = {1.0f};
  EXPECT_THROW(axpy_inplace(c, 1.0, b), std::invalid_argument);
}

TEST(VecOps, AxpyInPlace) {
  FlatVec a = {1.0f, 1.0f};
  const FlatVec b = {2.0f, 4.0f};
  axpy_inplace(a, 0.5, b);
  EXPECT_EQ(a, (FlatVec{2.0f, 3.0f}));
}

TEST(VecOps, Means) {
  const std::vector<FlatVec> vs = {{2.0f, 0.0f}, {0.0f, 2.0f}};
  EXPECT_EQ(mean_of(vs), (FlatVec{1.0f, 1.0f}));
  const std::vector<double> w = {3.0, 1.0};
  EXPECT_EQ(weighted_mean_of(vs, w), (FlatVec{1.5f, 0.5f}));
  EXPECT_THROW(mean_of(std::vector<FlatVec>{}), std::invalid_argument);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(weighted_mean_of(vs, zero), std::invalid_argument);
}

TEST(VecOps, ClipL2) {
  FlatVec v = {3.0f, 4.0f};  // norm 5
  const double f = clip_l2_inplace(v, 2.5);
  EXPECT_NEAR(f, 0.5, 1e-6);
  EXPECT_NEAR(stats::l2_norm(v), 2.5, 1e-5);
  // Under the bound: untouched.
  FlatVec u = {0.3f, 0.4f};
  EXPECT_DOUBLE_EQ(clip_l2_inplace(u, 1.0), 1.0);
  EXPECT_EQ(u, (FlatVec{0.3f, 0.4f}));
  EXPECT_THROW(clip_l2_inplace(u, 0.0), std::invalid_argument);
}

TEST(VecOps, RescaleToNorm) {
  FlatVec v = {3.0f, 4.0f};
  rescale_to_norm_inplace(v, 10.0);
  EXPECT_NEAR(stats::l2_norm(v), 10.0, 1e-5);
  FlatVec z = {0.0f, 0.0f};
  rescale_to_norm_inplace(z, 5.0);  // no-op on zero
  EXPECT_EQ(z, (FlatVec{0.0f, 0.0f}));
}

TEST(Linalg, GemmSmallKnown) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a = {1, 2, 3, 4};
  const std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c(4);
  gemm(a, b, c, 2, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST(Linalg, GemmRejectsBadSizes) {
  std::vector<float> a(6), b(6), c(5);
  EXPECT_THROW(gemm(a, b, c, 2, 3, 2), std::invalid_argument);
}

TEST(Linalg, GemmAtBAccum) {
  // A [k=2 x m=2], B [k=2 x n=1]; C += A^T B.
  const std::vector<float> a = {1, 2, 3, 4};
  const std::vector<float> b = {5, 6};
  std::vector<float> c = {1, 1};
  gemm_at_b_accum(a, b, c, 2, 2, 1);
  // A^T B = [1*5+3*6, 2*5+4*6] = [23, 34]; plus initial 1.
  EXPECT_EQ(c, (std::vector<float>{24, 35}));
}

TEST(Linalg, GemmABtAccum) {
  // A [m=1 x k=2], B [n=2 x k=2]; C += A B^T.
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {3, 4, 5, 6};
  std::vector<float> c = {0, 0};
  gemm_a_bt_accum(a, b, c, 1, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{11, 17}));
}

TEST(Linalg, Gemv) {
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};  // 2x3
  const std::vector<float> x = {1, 0, -1};
  std::vector<float> y(2);
  gemv(a, x, y, 2, 3);
  EXPECT_EQ(y, (std::vector<float>{-2, -2}));
}

TEST(Linalg, BilinearSampleInterior) {
  Tensor img({2, 2}, {0.0f, 1.0f, 2.0f, 3.0f});
  EXPECT_NEAR(bilinear_sample(img, 0.0, 0.0), 0.0f, 1e-6);
  EXPECT_NEAR(bilinear_sample(img, 0.0, 1.0), 1.0f, 1e-6);
  EXPECT_NEAR(bilinear_sample(img, 0.5, 0.5), 1.5f, 1e-6);
  EXPECT_NEAR(bilinear_sample(img, 0.0, 0.5), 0.5f, 1e-6);
}

TEST(Linalg, BilinearSampleZeroPadsOutside) {
  Tensor img({2, 2}, {4.0f, 4.0f, 4.0f, 4.0f});
  EXPECT_NEAR(bilinear_sample(img, -5.0, 0.0), 0.0f, 1e-6);
  EXPECT_NEAR(bilinear_sample(img, 0.0, 5.0), 0.0f, 1e-6);
  // Half outside: interpolates with zero padding.
  EXPECT_NEAR(bilinear_sample(img, -0.5, 0.0), 2.0f, 1e-6);
}

TEST(Linalg, BilinearRequiresRank2) {
  Tensor t({2, 2, 2});
  EXPECT_THROW(bilinear_sample(t, 0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace collapois::tensor
