// Tests for the fault-injection layer (fl/faults.h) and the hardened
// server: deterministic fault decisions, dropout/straggler/corruption
// semantics, update quarantine, whole-cohort skip, and the acceptance
// scenario — a full experiment with heavy churn and pinned always-bad
// clients that completes without throwing.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/partition.h"
#include "data/synthetic_text.h"
#include "fl/faults.h"
#include "fl/server_algorithm.h"
#include "nn/zoo.h"
#include "sim/runner.h"
#include "stats/geometry.h"

namespace collapois::fl {
namespace {

// A deterministic scripted client: returns a constant update so fault
// transformations are observable exactly.
class ConstClient : public Client {
 public:
  ConstClient(std::size_t id, tensor::FlatVec delta)
      : id_(id), delta_(std::move(delta)) {}
  std::size_t id() const override { return id_; }
  ClientUpdate compute_update(const RoundContext& ctx) override {
    last_global_.assign(ctx.global.begin(), ctx.global.end());
    ++calls_;
    ClientUpdate u;
    u.client_id = id_;
    u.delta = delta_;
    return u;
  }
  void distill_round(nn::Model&, nn::Model&) override {}

  int calls() const { return calls_; }
  const tensor::FlatVec& last_global() const { return last_global_; }

 private:
  std::size_t id_;
  tensor::FlatVec delta_;
  tensor::FlatVec last_global_;
  int calls_ = 0;
};

TEST(FaultModel, DecisionsAreDeterministicAndOrderFree) {
  FaultConfig cfg;
  cfg.dropout_prob = 0.3;
  cfg.straggler_prob = 0.2;
  cfg.corrupt_prob = 0.1;
  const FaultModel a(cfg);
  const FaultModel b(cfg);
  for (std::size_t client = 0; client < 20; ++client) {
    for (std::size_t round = 0; round < 50; ++round) {
      EXPECT_EQ(a.decide(client, round), b.decide(client, round));
    }
  }
  // A different seed faults different cells.
  cfg.seed ^= 0x1234;
  const FaultModel c(cfg);
  int diffs = 0;
  for (std::size_t client = 0; client < 20; ++client) {
    for (std::size_t round = 0; round < 50; ++round) {
      diffs += a.decide(client, round) != c.decide(client, round);
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultModel, RatesMatchProbabilities) {
  FaultConfig cfg;
  cfg.dropout_prob = 0.3;
  const FaultModel m(cfg);
  int dropped = 0;
  const int cells = 20000;
  for (int i = 0; i < cells; ++i) {
    dropped += m.decide(static_cast<std::size_t>(i % 100),
                        static_cast<std::size_t>(i / 100)) ==
               FaultKind::dropout;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / cells, 0.3, 0.02);
}

TEST(FaultModel, PinnedFaultOverridesEveryRound) {
  FaultConfig cfg;
  cfg.pinned[7] = FaultKind::corrupt_nan;
  const FaultModel m(cfg);
  for (std::size_t round = 0; round < 30; ++round) {
    EXPECT_EQ(m.decide(7, round), FaultKind::corrupt_nan);
    EXPECT_EQ(m.decide(8, round), FaultKind::none);
  }
}

TEST(FaultModel, RejectsInvalidProbabilities) {
  FaultConfig bad;
  bad.dropout_prob = 0.8;
  bad.straggler_prob = 0.5;
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
  bad = FaultConfig{};
  bad.corrupt_prob = -0.1;
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
}

// --- watermark pruning of the stale-model history ------------------------
// The history is pruned by a virtual-clock watermark (newest observed
// round minus the retention window), not by entry count. Size-based
// pruning was wrong for overlapping cohorts: a late observe_global() from
// an older in-flight cohort either evicted history a deeper straggler
// still needed or was immediately evicted itself, silently shrinking the
// lookback below straggler_staleness.

FaultConfig watermark_config(std::size_t staleness) {
  FaultConfig cfg;
  cfg.straggler_prob = 1e-12;  // enable history recording
  cfg.straggler_staleness = staleness;
  return cfg;
}

TEST(FaultModelWatermark, ConsecutiveRoundsKeepExactlyTheLookbackWindow) {
  // The sync engine's monotone round sequence: the retained set matches
  // the old size bound (straggler_staleness + 1 newest rounds) exactly.
  FaultModel model(watermark_config(2));
  for (std::size_t t = 0; t < 6; ++t) {
    const tensor::FlatVec g{static_cast<float>(t)};
    model.observe_global(t, g);
  }
  std::size_t staleness = 0;
  const tensor::FlatVec& stale = model.stale_global(5, &staleness);
  EXPECT_EQ(staleness, 2u);
  EXPECT_EQ(stale[0], 3.f);
  // Rounds below the watermark (3 = 5 - window) are pruned: a lookback
  // that deep falls back to the newest entry at or before the wanted
  // round — here round 8 wants round 6, and the newest retained round
  // not past it is 5.
  const tensor::FlatVec& deepest = model.stale_global(8, &staleness);
  EXPECT_EQ(staleness, 3u);
  EXPECT_EQ(deepest[0], 5.f);
}

TEST(FaultModelWatermark, LateObservationFromOverlappingCohortIsRetained) {
  FaultModel model(watermark_config(1));
  model.set_extra_retention(2);  // async: window = 1 + 2 = 3 rounds
  model.observe_global(1, tensor::FlatVec{1.f});
  model.observe_global(2, tensor::FlatVec{2.f});
  // A delayed cohort's observation for round 0 arrives AFTER rounds 1 and
  // 2 were recorded. Size-based pruning (bound = staleness + 1 = 2
  // entries) would insert it and immediately evict it; the watermark
  // (2 - 3 < 0 -> keep everything) retains it.
  model.observe_global(0, tensor::FlatVec{0.f});
  std::size_t staleness = 0;
  const tensor::FlatVec& stale = model.stale_global(1, &staleness);
  EXPECT_EQ(staleness, 1u);
  EXPECT_EQ(stale[0], 0.f);
}

TEST(FaultModelWatermark, ObservationBelowTheWatermarkIsIgnored) {
  FaultModel model(watermark_config(1));
  model.observe_global(10, tensor::FlatVec{10.f});
  // window = 1, watermark = 9: a round-5 observation is unreachable by
  // any straggler and must not be recorded (the watermark never regresses).
  model.observe_global(5, tensor::FlatVec{5.f});
  std::size_t staleness = 0;
  const tensor::FlatVec& stale = model.stale_global(10, &staleness);
  EXPECT_EQ(staleness, 0u);
  EXPECT_EQ(stale[0], 10.f);
}

TEST(FaultModelWatermark, WatermarkSurvivesSaveLoad) {
  FaultModel model(watermark_config(1));
  model.observe_global(4, tensor::FlatVec{4.f});
  model.observe_global(5, tensor::FlatVec{5.f});
  StateWriter w;
  model.save_state(w);
  FaultModel restored(watermark_config(1));
  StateReader r(w.bytes());
  restored.load_state(r);
  // max_round_seen_ is re-derived from the restored history: a below-
  // watermark observation stays ignored after resume.
  restored.observe_global(2, tensor::FlatVec{2.f});
  std::size_t staleness = 0;
  const tensor::FlatVec& stale = restored.stale_global(5, &staleness);
  EXPECT_EQ(staleness, 1u);
  EXPECT_EQ(stale[0], 4.f);
}

TEST(FaultyClient, DropoutNeverInvokesInner) {
  FaultConfig cfg;
  cfg.pinned[1] = FaultKind::dropout;
  auto model = std::make_shared<FaultModel>(cfg);
  auto inner = std::make_unique<ConstClient>(1, tensor::FlatVec{1.f, 2.f});
  ConstClient* raw = inner.get();
  FaultyClient faulty(std::move(inner), model);

  const tensor::FlatVec global{0.f, 0.f};
  const ClientUpdate u = faulty.compute_update({0, global});
  EXPECT_EQ(u.status, UpdateStatus::dropped);
  EXPECT_TRUE(u.delta.empty());
  EXPECT_EQ(raw->calls(), 0);
}

TEST(FaultyClient, StragglerTrainsAgainstStaleGlobal) {
  FaultConfig cfg;
  cfg.straggler_prob = 1e-12;  // enable history recording
  cfg.straggler_staleness = 2;
  cfg.pinned[1] = FaultKind::straggler;
  cfg.pinned[2] = FaultKind::none;
  auto model = std::make_shared<FaultModel>(cfg);

  auto observer = std::make_unique<ConstClient>(2, tensor::FlatVec{0.f});
  FaultyClient recorder(std::move(observer), model);
  auto inner = std::make_unique<ConstClient>(1, tensor::FlatVec{1.f});
  ConstClient* raw = inner.get();
  FaultyClient straggler(std::move(inner), model);

  // Rounds 0..3 broadcast distinguishable globals via the recorder.
  for (std::size_t t = 0; t < 4; ++t) {
    const tensor::FlatVec global{static_cast<float>(t)};
    recorder.compute_update({t, global});
  }
  const tensor::FlatVec global{4.f};
  const ClientUpdate u = straggler.compute_update({4, global});
  EXPECT_EQ(u.status, UpdateStatus::straggler);
  EXPECT_EQ(u.staleness, 2u);
  ASSERT_EQ(raw->last_global().size(), 1u);
  // Round 4 minus staleness 2 = the round-2 broadcast.
  EXPECT_FLOAT_EQ(raw->last_global()[0], 2.f);
}

TEST(FaultyClient, CorruptionsProduceInvalidUpdates) {
  const tensor::FlatVec global(40, 0.f);
  auto make = [&](FaultKind kind) {
    FaultConfig cfg;
    cfg.pinned[1] = kind;
    auto model = std::make_shared<FaultModel>(cfg);
    auto inner =
        std::make_unique<ConstClient>(1, tensor::FlatVec(40, 0.5f));
    return std::make_unique<FaultyClient>(std::move(inner), model);
  };

  ClientUpdate u = make(FaultKind::corrupt_nan)->compute_update({0, global});
  EXPECT_TRUE(std::isnan(u.delta[0]));
  u = make(FaultKind::corrupt_inf)->compute_update({0, global});
  EXPECT_TRUE(std::isinf(u.delta[0]));
  u = make(FaultKind::corrupt_truncate)->compute_update({0, global});
  EXPECT_EQ(u.delta.size(), 20u);
  u = make(FaultKind::corrupt_blowup)->compute_update({0, global});
  EXPECT_GT(stats::l2_norm(u.delta), 1e5);
}

class HardenedServerFixture : public ::testing::Test {
 protected:
  static std::unique_ptr<Client> scripted(std::size_t id,
                                          tensor::FlatVec delta) {
    return std::make_unique<ConstClient>(id, std::move(delta));
  }

  // A server over scripted clients with sample_prob = 1 (deterministic
  // full-cohort rounds).
  static Server make_server(double norm_ceiling = 0.0) {
    return Server(tensor::FlatVec{0.f, 0.f},
                  std::make_unique<FedAvgAggregator>(),
                  ServerConfig{1.0, 1.0, norm_ceiling}, stats::Rng(3));
  }
};

TEST_F(HardenedServerFixture, QuarantinesMalformedUpdatesWithoutThrowing) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  auto good = scripted(0, {1.f, 1.f});
  auto nan_client = scripted(1, {nan, 1.f});
  auto short_client = scripted(2, {1.f});
  std::vector<Client*> raw{good.get(), nan_client.get(), short_client.get()};

  Server server = make_server();
  const tensor::FlatVec before = server.global_params();
  const RoundTelemetry t = server.run_round(raw);

  ASSERT_EQ(t.sampled_ids.size(), 1u);
  EXPECT_EQ(t.sampled_ids[0], 0u);
  ASSERT_EQ(t.rejected_ids.size(), 2u);
  EXPECT_EQ(t.rejected_ids[0], 1u);
  EXPECT_EQ(t.reject_reasons[0], RejectReason::non_finite);
  EXPECT_EQ(t.rejected_ids[1], 2u);
  EXPECT_EQ(t.reject_reasons[1], RejectReason::dim_mismatch);
  EXPECT_FALSE(t.aggregate_skipped);
  // The aggregate is the single good update.
  EXPECT_FLOAT_EQ(t.aggregated[0], 1.f);
  EXPECT_GT(stats::l2_distance(server.global_params(), before), 0.0);
}

TEST_F(HardenedServerFixture, NormCeilingQuarantinesBlowups) {
  auto good = scripted(0, {1.f, 0.f});
  auto blown = scripted(1, {1e7f, 0.f});
  std::vector<Client*> raw{good.get(), blown.get()};

  Server server = make_server(/*norm_ceiling=*/100.0);
  const RoundTelemetry t = server.run_round(raw);
  ASSERT_EQ(t.rejected_ids.size(), 1u);
  EXPECT_EQ(t.rejected_ids[0], 1u);
  EXPECT_EQ(t.reject_reasons[0], RejectReason::norm_exceeded);
  EXPECT_FLOAT_EQ(t.aggregated[0], 1.f);
}

TEST_F(HardenedServerFixture, SkipsRoundWhenWholeCohortFails) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  auto a = scripted(0, {nan, 0.f});
  auto b = scripted(1, {0.f});
  std::vector<Client*> raw{a.get(), b.get()};

  Server server = make_server();
  const tensor::FlatVec before = server.global_params();
  const RoundTelemetry t = server.run_round(raw);
  EXPECT_TRUE(t.aggregate_skipped);
  EXPECT_TRUE(t.sampled_ids.empty());
  EXPECT_EQ(t.rejected_ids.size(), 2u);
  EXPECT_EQ(server.round(), 1u);  // the round still advances
  EXPECT_EQ(server.global_params(), before);  // but the model is untouched
}

TEST_F(HardenedServerFixture, StragglerWeightIsDamped) {
  FaultConfig cfg;
  cfg.straggler_prob = 1e-12;
  cfg.straggler_staleness = 3;
  cfg.pinned[1] = FaultKind::straggler;
  auto model = std::make_shared<FaultModel>(cfg);
  auto faulty = std::make_unique<FaultyClient>(scripted(1, {2.f, 0.f}), model);
  auto fresh = scripted(0, {1.f, 0.f});
  std::vector<Client*> raw{fresh.get(), faulty.get()};

  Server server = make_server();
  // Round 0: no history yet, the straggler falls back to the current
  // global (staleness 0, no damping).
  RoundTelemetry t = server.run_round(raw);
  ASSERT_EQ(t.updates.size(), 2u);
  EXPECT_EQ(t.n_stragglers, 1u);
  EXPECT_DOUBLE_EQ(t.updates[1].weight, 1.0);

  // A few rounds later the history is deep enough for full staleness and
  // the damped weight 1 / (1 + 3).
  for (int i = 0; i < 4; ++i) t = server.run_round(raw);
  ASSERT_EQ(t.updates.size(), 2u);
  EXPECT_EQ(t.updates[1].staleness, 3u);
  EXPECT_DOUBLE_EQ(t.updates[1].weight, 0.25);
}

}  // namespace
}  // namespace collapois::fl

namespace collapois::sim {
namespace {

// Acceptance scenario: 50 rounds, 30% dropout, one always-NaN client and
// one dimension-truncating client — completes without throwing and the
// telemetry accounts for every fault.
TEST(FaultToleranceIntegration, ChurnAndPoisonRunCompletes) {
  ExperimentConfig cfg;
  cfg.dataset = DatasetKind::sentiment_like;
  cfg.attack = AttackKind::collapois;
  cfg.n_clients = 16;
  cfg.samples_per_client = 40;
  cfg.rounds = 50;
  cfg.sample_prob = 0.4;
  cfg.attack_start_round = 10;
  cfg.faults.dropout_prob = 0.3;
  cfg.faults.pinned[3] = fl::FaultKind::corrupt_nan;
  cfg.faults.pinned[5] = fl::FaultKind::corrupt_truncate;
  cfg.seed = 99;

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_EQ(result.rounds.size(), 50u);
  std::size_t dropped = 0;
  std::size_t rejected = 0;
  for (const auto& r : result.rounds) {
    dropped += r.n_dropped;
    rejected += r.n_rejected;
  }
  // 30% dropout over 50 rounds of ~6-7 sampled clients.
  EXPECT_GT(dropped, 20u);
  // The pinned clients are quarantined whenever sampled.
  EXPECT_GT(rejected, 5u);
  // Training still made progress.
  EXPECT_GT(result.population.benign_ac, 0.5);
}

TEST(FaultToleranceIntegration, MetaFedRejectsFaultInjection) {
  ExperimentConfig cfg;
  cfg.dataset = DatasetKind::sentiment_like;
  cfg.algorithm = AlgorithmKind::metafed;
  cfg.attack = AttackKind::none;
  cfg.n_clients = 6;
  cfg.rounds = 2;
  cfg.faults.dropout_prob = 0.1;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace collapois::sim
