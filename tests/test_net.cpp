// The simulated transport layer (src/net/): envelope codec + checksum
// detection, counter-based network decisions, retry/backoff/deadline
// semantics, the server's partial-aggregation path and its unified drop
// accounting, and the determinism guarantees — element-exact results
// across thread counts and bit-exact checkpoint/resume under transport
// faults (DESIGN.md §8).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <string>

#include "fl/aggregator.h"
#include "fl/server.h"
#include "net/envelope.h"
#include "net/network_model.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"

namespace collapois {
namespace {

using fl::ClientUpdate;
using fl::UpdateStatus;

// --- envelope codec -----------------------------------------------------

ClientUpdate sample_update() {
  ClientUpdate u;
  u.client_id = 17;
  u.weight = 2.25;
  u.status = UpdateStatus::straggler;
  u.staleness = 3;
  u.delta = {1.5f, -0.0f, std::numeric_limits<float>::denorm_min(),
             3.0e38f, -7.25f};
  return u;
}

// Bit-level equality: operator== is wrong for -0.0 and NaN, and the
// zero-fault element-exactness guarantee is about BITS.
void expect_bit_equal(const ClientUpdate& a, const ClientUpdate& b) {
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.staleness, b.staleness);
  EXPECT_EQ(std::memcmp(&a.weight, &b.weight, sizeof(a.weight)), 0);
  ASSERT_EQ(a.delta.size(), b.delta.size());
  if (!a.delta.empty()) {
    EXPECT_EQ(std::memcmp(a.delta.data(), b.delta.data(),
                          a.delta.size() * sizeof(float)),
              0);
  }
}

TEST(NetEnvelope, RoundTripIsBitExact) {
  ClientUpdate u = sample_update();
  // The codec is payload-agnostic: even a NaN crosses the wire bit-exact
  // (the server's validation layer, not the transport, rejects it).
  u.delta.push_back(std::numeric_limits<float>::quiet_NaN());
  const net::Envelope env = net::encode_update(u, 5);
  EXPECT_EQ(env.sender_id, u.client_id);
  EXPECT_EQ(env.round, 5u);
  const auto decoded = net::decode_update(env);
  ASSERT_TRUE(decoded.has_value());
  expect_bit_equal(u, *decoded);
}

TEST(NetEnvelope, EmptyDeltaRoundTrips) {
  ClientUpdate u;
  u.client_id = 2;
  const auto decoded = net::decode_update(net::encode_update(u, 0));
  ASSERT_TRUE(decoded.has_value());
  expect_bit_equal(u, *decoded);
}

TEST(NetEnvelope, ChecksumCatchesEverySingleByteFlip) {
  const net::Envelope env = net::encode_update(sample_update(), 1);
  for (std::size_t at = 0; at < env.payload.size(); ++at) {
    net::Envelope damaged = env;
    damaged.payload[at] ^= 0x01;
    EXPECT_FALSE(net::decode_update(damaged).has_value())
        << "flip at byte " << at << " went undetected";
  }
}

TEST(NetEnvelope, ChecksumCatchesTruncation) {
  const net::Envelope env = net::encode_update(sample_update(), 1);
  for (std::size_t len : {std::size_t{0}, env.payload.size() / 2,
                          env.payload.size() - 1}) {
    net::Envelope damaged = env;
    damaged.payload.resize(len);
    EXPECT_FALSE(net::decode_update(damaged).has_value())
        << "truncation to " << len << " bytes went undetected";
  }
}

// --- network model ------------------------------------------------------

net::NetConfig zero_fault_net() {
  net::NetConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(NetModel, RejectsInvalidConfig) {
  auto expect_rejected = [](auto mutate) {
    net::NetConfig cfg = zero_fault_net();
    mutate(cfg);
    EXPECT_THROW(net::NetworkModel{cfg}, std::invalid_argument);
  };
  expect_rejected([](net::NetConfig& c) { c.loss_prob = 1.5; });
  expect_rejected([](net::NetConfig& c) { c.loss_prob = -0.1; });
  expect_rejected([](net::NetConfig& c) {
    c.corrupt_prob = std::numeric_limits<double>::quiet_NaN();
  });
  expect_rejected([](net::NetConfig& c) { c.latency_min_ms = -1.0; });
  expect_rejected([](net::NetConfig& c) {
    c.latency_min_ms = 60.0;  // above latency_max_ms
  });
  expect_rejected([](net::NetConfig& c) {
    c.deadline_ms = std::numeric_limits<double>::infinity();
  });
  expect_rejected([](net::NetConfig& c) { c.over_sample = 17.0; });
}

TEST(NetModel, BackoffIsCappedExponential) {
  net::NetConfig cfg = zero_fault_net();
  cfg.backoff_base_ms = 20.0;
  cfg.backoff_cap_ms = 160.0;
  EXPECT_DOUBLE_EQ(net::NetworkModel::backoff_ms(cfg, 0), 20.0);
  EXPECT_DOUBLE_EQ(net::NetworkModel::backoff_ms(cfg, 1), 40.0);
  EXPECT_DOUBLE_EQ(net::NetworkModel::backoff_ms(cfg, 2), 80.0);
  EXPECT_DOUBLE_EQ(net::NetworkModel::backoff_ms(cfg, 3), 160.0);
  EXPECT_DOUBLE_EQ(net::NetworkModel::backoff_ms(cfg, 10), 160.0);
  // The shift saturates instead of overflowing.
  EXPECT_DOUBLE_EQ(net::NetworkModel::backoff_ms(cfg, 1000), 160.0);
}

TEST(NetModel, DecisionsAreDeterministicAndOrderFree) {
  net::NetConfig cfg = zero_fault_net();
  cfg.loss_prob = 0.3;
  cfg.corrupt_prob = 0.1;
  cfg.duplicate_prob = 0.1;
  const net::NetworkModel a(cfg);
  const net::NetworkModel b(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  // Walk the cells in opposite orders: transmit() is a pure function of
  // (config, client, round), so both models agree on every delivery.
  for (std::size_t client = 0; client < 12; ++client) {
    for (std::size_t round = 0; round < 12; ++round) {
      net::TransportStats sa, sb;
      const net::Delivery da = a.transmit(client, round, env, &sa);
      const net::Delivery db =
          b.transmit(11 - client, 11 - round, env, &sb);
      const net::Delivery db2 = b.transmit(client, round, env, &sb);
      EXPECT_EQ(da.status, db2.status);
      EXPECT_EQ(da.arrival_ms, db2.arrival_ms);
      EXPECT_EQ(da.attempts, db2.attempts);
      EXPECT_EQ(da.duplicated, db2.duplicated);
      (void)db;
    }
  }
}

TEST(NetModel, ZeroFaultDeliversFirstAttemptBitExact) {
  const net::NetworkModel model(zero_fault_net());
  const ClientUpdate u = sample_update();
  const net::Envelope env = net::encode_update(u, 4);
  net::TransportStats stats;
  const net::Delivery d = model.transmit(u.client_id, 4, env, &stats);
  EXPECT_EQ(d.status, net::DeliveryStatus::delivered);
  EXPECT_EQ(d.attempts, 1u);
  EXPECT_FALSE(d.duplicated);
  ASSERT_TRUE(d.update.has_value());
  expect_bit_equal(u, *d.update);
  EXPECT_EQ(stats.msgs_sent, 1u);
  EXPECT_EQ(stats.lost, 0u);
  EXPECT_EQ(stats.retried, 0u);
}

TEST(NetModel, TotalLossExhaustsRetryBudget) {
  net::NetConfig cfg = zero_fault_net();
  cfg.loss_prob = 1.0;
  cfg.max_retries = 3;
  const net::NetworkModel model(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  net::TransportStats stats;
  const net::Delivery d = model.transmit(7, 0, env, &stats);
  EXPECT_EQ(d.status, net::DeliveryStatus::lost);
  EXPECT_EQ(d.attempts, 4u);  // 1 first send + 3 retries
  EXPECT_EQ(stats.msgs_sent, 4u);
  EXPECT_EQ(stats.lost, 4u);
  EXPECT_EQ(stats.retried, 3u);
}

TEST(NetModel, LossRateMatchesProbability) {
  net::NetConfig cfg = zero_fault_net();
  cfg.loss_prob = 0.25;
  cfg.max_retries = 0;
  const net::NetworkModel model(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  net::TransportStats stats;
  const int cells = 20000;
  for (int i = 0; i < cells; ++i) {
    model.transmit(static_cast<std::size_t>(i % 100),
                   static_cast<std::size_t>(i / 100), env, &stats);
  }
  const double rate =
      static_cast<double>(stats.lost) / static_cast<double>(stats.msgs_sent);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(NetModel, CorruptionIsDetectedAndRetried) {
  net::NetConfig cfg = zero_fault_net();
  cfg.corrupt_prob = 1.0;
  cfg.max_retries = 2;
  const net::NetworkModel model(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  net::TransportStats stats;
  const net::Delivery d = model.transmit(3, 0, env, &stats);
  // Every attempt arrives damaged, the checksum rejects each one, and the
  // sender's budget runs out.
  EXPECT_EQ(d.status, net::DeliveryStatus::lost);
  EXPECT_EQ(stats.corrupted, 3u);
  EXPECT_EQ(stats.lost, 0u);
}

TEST(NetModel, DeadlineMakesSlowDeliveryLate) {
  net::NetConfig cfg = zero_fault_net();
  cfg.latency_min_ms = 50.0;
  cfg.latency_max_ms = 50.0;
  cfg.deadline_ms = 10.0;
  const net::NetworkModel model(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  net::TransportStats stats;
  const net::Delivery d = model.transmit(0, 0, env, &stats);
  EXPECT_EQ(d.status, net::DeliveryStatus::late);
  EXPECT_GT(d.arrival_ms, cfg.deadline_ms);
}

TEST(NetModel, BackoffSchedulePastDeadlineGivesUp) {
  net::NetConfig cfg = zero_fault_net();
  cfg.loss_prob = 1.0;
  cfg.max_retries = 100;
  cfg.deadline_ms = 30.0;
  cfg.backoff_base_ms = 20.0;
  const net::NetworkModel model(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  net::TransportStats stats;
  const net::Delivery d = model.transmit(0, 0, env, &stats);
  // send at 0 (lost), backoff 20; send at 20 (lost), backoff 40 -> 60 is
  // past the 30ms deadline: the client stops sending with budget left.
  EXPECT_EQ(d.status, net::DeliveryStatus::late);
  EXPECT_EQ(stats.msgs_sent, 2u);
}

TEST(NetModel, TotalsSaveLoadRoundTrips) {
  net::NetConfig cfg = zero_fault_net();
  cfg.loss_prob = 0.5;
  net::NetworkModel model(cfg);
  const net::Envelope env = net::encode_update(sample_update(), 0);
  net::TransportStats round;
  for (std::size_t c = 0; c < 32; ++c) model.transmit(c, 0, env, &round);
  model.accumulate_round(round);

  fl::StateWriter w;
  model.save_state(w);
  const auto bytes = w.take();
  net::NetworkModel restored(cfg);
  fl::StateReader r(bytes);
  restored.load_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.totals().msgs_sent, model.totals().msgs_sent);
  EXPECT_EQ(restored.totals().lost, model.totals().lost);
  EXPECT_EQ(restored.totals().retried, model.totals().retried);
  EXPECT_EQ(restored.totals().arrival_max_ms, model.totals().arrival_max_ms);
}

// --- server integration -------------------------------------------------

// A deterministic scripted client: returns a constant update so the
// transport's effect on the round is observable exactly.
class ConstClient : public fl::Client {
 public:
  ConstClient(std::size_t id, tensor::FlatVec delta,
              UpdateStatus status = UpdateStatus::ok)
      : id_(id), delta_(std::move(delta)), status_(status) {}
  std::size_t id() const override { return id_; }
  ClientUpdate compute_update(const fl::RoundContext&) override {
    ClientUpdate u;
    u.client_id = id_;
    u.delta = delta_;
    u.status = status_;
    return u;
  }
  void distill_round(nn::Model&, nn::Model&) override {}

 private:
  std::size_t id_;
  tensor::FlatVec delta_;
  UpdateStatus status_;
};

class NetServerFixture : public ::testing::Test {
 protected:
  // A population of scripted clients with per-client recognizable deltas.
  void build_clients(std::size_t n) {
    owned_.clear();
    raw_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      owned_.push_back(std::make_unique<ConstClient>(
          i, tensor::FlatVec{static_cast<float>(i + 1), 1.f}));
      raw_.push_back(owned_.back().get());
    }
  }

  fl::Server make_server(const net::NetConfig& ncfg, double q = 1.0,
                         std::uint64_t seed = 3) {
    // Servers hold a raw pointer to their NetworkModel, so every model
    // built here must outlive every server of the test — tests that build
    // two servers (disabled-vs-enabled comparisons) would otherwise leave
    // the first one dangling.
    nets_.push_back(std::make_unique<net::NetworkModel>(ncfg));
    fl::ServerConfig scfg;
    scfg.learning_rate = 1.0;
    scfg.sample_prob = q;
    scfg.net = nets_.back().get();
    return fl::Server(tensor::FlatVec{0.f, 0.f},
                      std::make_unique<fl::FedAvgAggregator>(), scfg,
                      stats::Rng(seed));
  }

  static void expect_invariant(const fl::RoundTelemetry& t) {
    EXPECT_EQ(t.cohort_size, t.sampled_ids.size() + t.dropped_ids.size() +
                                 t.rejected_ids.size());
    EXPECT_EQ(t.drop_reasons.size(), t.dropped_ids.size());
    EXPECT_EQ(t.reject_reasons.size(), t.rejected_ids.size());
    // Every sampled client lands in exactly one bucket — no id is counted
    // twice across accepted/dropped/rejected.
    std::set<std::size_t> ids;
    std::size_t total = 0;
    for (auto id : t.sampled_ids) ids.insert(id), ++total;
    for (auto id : t.dropped_ids) ids.insert(id), ++total;
    for (auto id : t.rejected_ids) ids.insert(id), ++total;
    EXPECT_EQ(ids.size(), total);
  }

  std::vector<std::unique_ptr<fl::Client>> owned_;
  std::vector<fl::Client*> raw_;
  std::vector<std::unique_ptr<net::NetworkModel>> nets_;
};

TEST_F(NetServerFixture, TotalLossDropsWholeCohortAndSkipsRound) {
  build_clients(4);
  net::NetConfig ncfg = zero_fault_net();
  ncfg.loss_prob = 1.0;
  fl::Server server = make_server(ncfg);
  const tensor::FlatVec before = server.global_params();
  const fl::RoundTelemetry t = server.run_round(raw_);
  expect_invariant(t);
  EXPECT_TRUE(t.aggregate_skipped);
  EXPECT_EQ(server.global_params(), before);
  ASSERT_EQ(t.dropped_ids.size(), 4u);
  for (fl::DropReason r : t.drop_reasons) {
    EXPECT_EQ(r, fl::DropReason::transport);
  }
  EXPECT_EQ(t.transport.transport_dropped, 4u);
  EXPECT_EQ(std::string(drop_reason_name(fl::DropReason::transport)),
            "transport");
}

TEST_F(NetServerFixture, DeadlineDropsCarryDeadlineReason) {
  build_clients(4);
  net::NetConfig ncfg = zero_fault_net();
  ncfg.latency_min_ms = 50.0;
  ncfg.latency_max_ms = 50.0;
  ncfg.deadline_ms = 10.0;
  fl::Server server = make_server(ncfg);
  const fl::RoundTelemetry t = server.run_round(raw_);
  expect_invariant(t);
  EXPECT_TRUE(t.aggregate_skipped);
  ASSERT_EQ(t.drop_reasons.size(), 4u);
  for (fl::DropReason r : t.drop_reasons) {
    EXPECT_EQ(r, fl::DropReason::deadline);
  }
  EXPECT_EQ(t.transport.deadline_dropped, 4u);
}

TEST_F(NetServerFixture, ComputeDropoutsNeverTouchTheNetwork) {
  // A FaultModel-style dropout (status == dropped) is charged to the
  // compute layer and sends nothing — counted exactly once.
  build_clients(3);
  owned_.push_back(std::make_unique<ConstClient>(
      3, tensor::FlatVec{1.f, 1.f}, UpdateStatus::dropped));
  raw_.push_back(owned_.back().get());
  fl::Server server = make_server(zero_fault_net());
  const fl::RoundTelemetry t = server.run_round(raw_);
  expect_invariant(t);
  ASSERT_EQ(t.dropped_ids.size(), 1u);
  EXPECT_EQ(t.dropped_ids[0], 3u);
  EXPECT_EQ(t.drop_reasons[0], fl::DropReason::compute);
  EXPECT_EQ(t.transport.msgs_sent, 3u);  // the dropout never sent
  EXPECT_EQ(t.sampled_ids.size(), 3u);
  EXPECT_FALSE(t.aggregate_skipped);
}

TEST_F(NetServerFixture, OverSamplingKeepsTargetAndDropsExcess) {
  build_clients(12);
  net::NetConfig ncfg = zero_fault_net();
  ncfg.over_sample = 1.0;  // sample 2k, keep k
  fl::Server server = make_server(ncfg, /*q=*/0.5);
  bool saw_excess = false;
  for (std::size_t round = 0; round < 5; ++round) {
    const fl::RoundTelemetry t = server.run_round(raw_);
    expect_invariant(t);
    EXPECT_FALSE(t.aggregate_skipped);
    // Zero faults: the only drops are the over-provisioned excess, so the
    // accepted set is exactly the pre-extras target cohort.
    EXPECT_EQ(t.cohort_size,
              t.sampled_ids.size() + t.transport.excess_dropped);
    for (fl::DropReason r : t.drop_reasons) {
      EXPECT_EQ(r, fl::DropReason::excess);
    }
    saw_excess = saw_excess || t.transport.excess_dropped > 0;
  }
  EXPECT_TRUE(saw_excess);
}

TEST_F(NetServerFixture, DuplicatesAreCountedButDoNotChangeTheAggregate) {
  build_clients(6);
  net::NetConfig base = zero_fault_net();
  net::NetConfig dup = base;
  dup.duplicate_prob = 1.0;
  fl::Server clean = make_server(base);
  const fl::RoundTelemetry tc = clean.run_round(raw_);
  fl::Server doubled = make_server(dup);
  const fl::RoundTelemetry td = doubled.run_round(raw_);
  EXPECT_EQ(td.transport.duplicated, 6u);
  EXPECT_EQ(tc.transport.duplicated, 0u);
  // The server de-duplicates by client id: the aggregate is unchanged.
  EXPECT_EQ(tc.aggregated, td.aggregated);
  EXPECT_EQ(clean.global_params(), doubled.global_params());
}

TEST_F(NetServerFixture, ZeroFaultTransportIsElementExactWithDisabled) {
  // The acceptance gate for "no behavior change by default": a transport
  // with every fault off routes each update through encode -> transmit ->
  // decode and must reproduce the disabled path bit-for-bit.
  build_clients(8);
  net::NetConfig off;
  off.enabled = false;
  net::NetConfig on = zero_fault_net();
  fl::Server disabled = make_server(off, /*q=*/0.5, /*seed=*/11);
  fl::Server enabled = make_server(on, /*q=*/0.5, /*seed=*/11);
  for (std::size_t round = 0; round < 6; ++round) {
    const fl::RoundTelemetry a = disabled.run_round(raw_);
    const fl::RoundTelemetry b = enabled.run_round(raw_);
    EXPECT_EQ(a.sampled_ids, b.sampled_ids);
    EXPECT_EQ(a.aggregated, b.aggregated);
  }
  EXPECT_EQ(disabled.global_params(), enabled.global_params());
}

// --- experiment-level determinism --------------------------------------

sim::ExperimentConfig transport_config() {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 12;
  cfg.samples_per_client = 40;
  cfg.rounds = 10;
  cfg.sample_prob = 0.5;
  cfg.compromised_fraction = 0.2;
  cfg.attack = sim::AttackKind::collapois;
  cfg.attack_start_round = 3;
  cfg.eval_every = 5;
  cfg.seed = 99;
  cfg.net.enabled = true;
  cfg.net.loss_prob = 0.2;
  cfg.net.corrupt_prob = 0.05;
  cfg.net.duplicate_prob = 0.1;
  cfg.net.deadline_ms = 55.0;
  cfg.net.over_sample = 0.5;
  return cfg;
}

void expect_rounds_identical(const sim::ExperimentResult& a,
                             const sim::ExperimentResult& b) {
  ASSERT_EQ(a.final_global.size(), b.final_global.size());
  EXPECT_EQ(a.final_global, b.final_global);  // element-exact
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].n_accepted, b.rounds[i].n_accepted);
    EXPECT_EQ(a.rounds[i].n_dropped, b.rounds[i].n_dropped);
    EXPECT_EQ(a.rounds[i].cohort_size, b.rounds[i].cohort_size);
    EXPECT_EQ(a.rounds[i].transport.msgs_sent, b.rounds[i].transport.msgs_sent);
    EXPECT_EQ(a.rounds[i].transport.lost, b.rounds[i].transport.lost);
    EXPECT_EQ(a.rounds[i].transport.retried, b.rounds[i].transport.retried);
    EXPECT_EQ(a.rounds[i].transport.deadline_dropped,
              b.rounds[i].transport.deadline_dropped);
    EXPECT_EQ(a.rounds[i].transport.excess_dropped,
              b.rounds[i].transport.excess_dropped);
    EXPECT_EQ(a.rounds[i].transport.arrival_p50_ms,
              b.rounds[i].transport.arrival_p50_ms);
    EXPECT_EQ(a.rounds[i].transport.arrival_max_ms,
              b.rounds[i].transport.arrival_max_ms);
  }
}

TEST(NetDeterminism, InvariantHoldsEveryRoundUnderCombinedFaults) {
  sim::ExperimentConfig cfg = transport_config();
  cfg.faults.dropout_prob = 0.15;  // compute-layer churn on top
  sim::RunOptions opts;
  opts.keep_telemetry = true;
  const sim::ExperimentResult result = sim::run_experiment(cfg, opts);
  ASSERT_EQ(result.telemetry.size(), cfg.rounds);
  bool saw_transport_drop = false;
  for (const auto& t : result.telemetry) {
    EXPECT_EQ(t.cohort_size, t.sampled_ids.size() + t.dropped_ids.size() +
                                 t.rejected_ids.size());
    EXPECT_EQ(t.drop_reasons.size(), t.dropped_ids.size());
    for (std::size_t i = 0; i < t.drop_reasons.size(); ++i) {
      saw_transport_drop = saw_transport_drop ||
                           t.drop_reasons[i] != fl::DropReason::compute;
    }
  }
  EXPECT_TRUE(saw_transport_drop) << "config never exercised the transport";
}

TEST(NetDeterminism, Threads1And4IdenticalUnderTransportFaults) {
  sim::ExperimentConfig cfg = transport_config();
  cfg.threads = 1;
  const sim::ExperimentResult sequential = sim::run_experiment(cfg);
  cfg.threads = 4;
  const sim::ExperimentResult parallel = sim::run_experiment(cfg);
  expect_rounds_identical(sequential, parallel);
}

TEST(NetDeterminism, CheckpointResumeIsBitExactUnderTransportFaults) {
  sim::ExperimentConfig cfg = transport_config();
  cfg.threads = 1;
  const sim::ExperimentResult straight = sim::run_experiment(cfg);

  const std::string path = ::testing::TempDir() + "net_resume_ck.bin";
  cfg.threads = 4;
  sim::RunOptions save;
  save.checkpoint_save_path = path;
  save.checkpoint_round = cfg.rounds / 2;
  const sim::ExperimentResult partial = sim::run_experiment(cfg, save);
  EXPECT_EQ(partial.rounds.size(), cfg.rounds / 2);

  sim::RunOptions resume;
  resume.checkpoint_load_path = path;
  const sim::ExperimentResult resumed = sim::run_experiment(cfg, resume);
  std::remove(path.c_str());

  ASSERT_EQ(resumed.final_global.size(), straight.final_global.size());
  EXPECT_EQ(resumed.final_global, straight.final_global);
  // The resumed transport totals continue from the checkpointed counters:
  // the second-half per-round records match the straight run's.
  ASSERT_EQ(resumed.rounds.size(), cfg.rounds - cfg.rounds / 2);
  for (std::size_t i = 0; i < resumed.rounds.size(); ++i) {
    const auto& sr = straight.rounds[cfg.rounds / 2 + i];
    const auto& rr = resumed.rounds[i];
    EXPECT_EQ(sr.transport.msgs_sent, rr.transport.msgs_sent);
    EXPECT_EQ(sr.transport.lost, rr.transport.lost);
    EXPECT_EQ(sr.n_accepted, rr.n_accepted);
  }
}

// --- checkpoint fingerprint guard ---------------------------------------

TEST(NetCheckpoint, FingerprintIgnoresStaleFieldsWhenDisabled) {
  net::NetConfig a;
  net::NetConfig b;
  b.loss_prob = 0.9;  // stale value in a switched-off transport
  EXPECT_EQ(sim::net_fingerprint(a), sim::net_fingerprint(b));
  a.enabled = true;
  b.enabled = true;
  EXPECT_NE(sim::net_fingerprint(a), sim::net_fingerprint(b));
  b.loss_prob = a.loss_prob;
  EXPECT_EQ(sim::net_fingerprint(a), sim::net_fingerprint(b));
  b.seed ^= 1;
  EXPECT_NE(sim::net_fingerprint(a), sim::net_fingerprint(b));
}

TEST(NetCheckpoint, ResumeUnderDifferentNetworkModelFailsLoudly) {
  sim::ExperimentConfig cfg = transport_config();
  const std::string path = ::testing::TempDir() + "net_mismatch_ck.bin";
  sim::RunOptions save;
  save.checkpoint_save_path = path;
  save.checkpoint_round = 3;
  (void)sim::run_experiment(cfg, save);

  sim::RunOptions resume;
  resume.checkpoint_load_path = path;
  sim::ExperimentConfig changed = cfg;
  changed.net.loss_prob = 0.35;
  try {
    (void)sim::run_experiment(changed, resume);
    FAIL() << "resume under a different network model must throw";
  } catch (const std::invalid_argument& e) {
    // The error names the transport, not a generic config mismatch.
    EXPECT_NE(std::string(e.what()).find("network model"), std::string::npos);
  }

  // Toggling the transport off entirely fails the same way.
  sim::ExperimentConfig off = cfg;
  off.net.enabled = false;
  EXPECT_THROW((void)sim::run_experiment(off, resume), std::invalid_argument);

  // The unchanged config still resumes.
  const sim::ExperimentResult ok = sim::run_experiment(cfg, resume);
  EXPECT_EQ(ok.rounds.size(), cfg.rounds - 3);
  std::remove(path.c_str());
}

TEST(NetCheckpoint, MetaFedRejectsTransport) {
  sim::ExperimentConfig cfg = transport_config();
  cfg.algorithm = sim::AlgorithmKind::metafed;
  cfg.attack = sim::AttackKind::none;
  EXPECT_THROW((void)sim::run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace collapois
