// The compute-kernel layer (src/kernels/): blocked vs naive agreement on
// randomized shapes (ragged block tails, padding edges, batch=1), fused
// epilogue correctness, run-to-run bit identity, workspace reuse safety,
// and the double-accumulate contract of the aggregation helpers.
//
// Suites are named Kernel* so the sanitizer CI lanes pick them up by
// regex alongside the Runtime* suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/cpu_dispatch.h"
#include "kernels/kernels.h"
#include "kernels/workspace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois {
namespace {

// Every ISA tier the build host can execute, scalar first. The property
// sweeps run once per entry; on a scalar-only host that is still a valid
// (if smaller) sweep — the CI dispatch matrix covers the rest.
std::vector<kernels::IsaTier> available_tiers() {
  std::vector<kernels::IsaTier> tiers{kernels::IsaTier::scalar};
  if (kernels::detected_tier() >= kernels::IsaTier::sse2) {
    tiers.push_back(kernels::IsaTier::sse2);
  }
  if (kernels::detected_tier() >= kernels::IsaTier::avx2) {
    tiers.push_back(kernels::IsaTier::avx2);
  }
  return tiers;
}

// Restores the entry tier on scope exit so a failing sweep cannot leak a
// forced tier into later tests.
struct TierGuard {
  kernels::IsaTier entry = kernels::active_tier();
  ~TierGuard() { kernels::set_active_tier(entry); }
};

std::vector<float> random_vec(stats::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Elementwise comparison with a relative-or-absolute tolerance: the two
// kernel sets sum in different orders, so exact equality is not expected,
// but every element must agree tightly.
void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, double rel_tol = 1e-4) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(static_cast<double>(want[i])));
    ASSERT_NEAR(got[i], want[i], rel_tol * scale) << "element " << i;
  }
}

// --- registry -----------------------------------------------------------

TEST(KernelRegistry, NamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(kernels::parse_kernel_kind("naive"), kernels::KernelKind::naive);
  EXPECT_EQ(kernels::parse_kernel_kind("blocked"),
            kernels::KernelKind::blocked);
  EXPECT_STREQ(kernels::kernel_kind_name(kernels::KernelKind::naive), "naive");
  EXPECT_STREQ(kernels::kernel_kind_name(kernels::KernelKind::blocked),
               "blocked");
  EXPECT_THROW(kernels::parse_kernel_kind("fast"), std::invalid_argument);
  EXPECT_STREQ(kernels::ops_for(kernels::KernelKind::naive).name, "naive");
  EXPECT_STREQ(kernels::ops_for(kernels::KernelKind::blocked).name, "blocked");
}

TEST(KernelRegistry, ActiveSetSwitches) {
  const kernels::KernelKind before = kernels::active_kernels();
  kernels::set_active_kernels(kernels::KernelKind::naive);
  EXPECT_STREQ(kernels::ops().name, "naive");
  kernels::set_active_kernels(kernels::KernelKind::blocked);
  EXPECT_STREQ(kernels::ops().name, "blocked");
  kernels::set_active_kernels(before);
}

// --- GEMM: blocked vs naive over randomized shapes ----------------------

// Shapes chosen to stress every ragged edge of the blocking scheme:
// dimensions below one register tile (MR=4, NR=8), just past a tile,
// past the MC=64 row block, and past the KC=256 reduction slice.
struct GemmShape {
  std::size_t m, k, n;
};

const GemmShape kGemmShapes[] = {
    {1, 1, 1},    {1, 7, 9},    {3, 5, 7},     {4, 8, 8},    {5, 9, 11},
    {16, 32, 10}, {17, 33, 13}, {65, 40, 19},  {70, 300, 9}, {12, 257, 70},
    {33, 64, 33},
    // Streaming-route shapes (blocked.cpp cutoffs): shallow-k over wide C
    // (wide_gemm / axpy_atb, with a non-multiple-of-8 n tail) and a long
    // dot-product reduction (dot_abt) — each tier's override must hold
    // the same contracts as its microkernel.
    {4, 9, 512},  {3, 12, 261}, {6, 600, 24},
};

TEST(KernelGemm, BlockedMatchesNaiveWithAndWithoutRowBias) {
  stats::Rng rng(1234);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    const auto a = random_vec(rng, s.m * s.k);
    const auto b = random_vec(rng, s.k * s.n);
    const auto bias = random_vec(rng, s.m);
    for (const float* row_bias : {static_cast<const float*>(nullptr),
                                  bias.data()}) {
      std::vector<float> want(s.m * s.n, -7.0f);  // overwritten, not read
      std::vector<float> got(s.m * s.n, 3.0f);
      naive.gemm(a.data(), b.data(), want.data(), s.m, s.k, s.n, row_bias);
      blocked.gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n, row_bias);
      expect_close(got, want);
    }
  }
}

TEST(KernelGemm, BlockedABtAccumMatchesNaiveWithEpilogues) {
  stats::Rng rng(99);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    const auto a = random_vec(rng, s.m * s.k);
    const auto b = random_vec(rng, s.n * s.k);  // stored [n x k]
    const auto col_bias = random_vec(rng, s.n);
    const auto c0 = random_vec(rng, s.m * s.n);  // accumulation seed

    std::vector<float> want = c0;
    std::vector<float> got = c0;
    std::vector<float> want_sums(s.m, 0.5f);  // += semantics: seed nonzero
    std::vector<float> got_sums(s.m, 0.5f);
    naive.gemm_a_bt_accum(a.data(), b.data(), want.data(), s.m, s.k, s.n,
                          col_bias.data(), want_sums.data());
    blocked.gemm_a_bt_accum(a.data(), b.data(), got.data(), s.m, s.k, s.n,
                            col_bias.data(), got_sums.data());
    expect_close(got, want);
    expect_close(got_sums, want_sums);
  }
}

TEST(KernelGemm, BlockedAtBAccumMatchesNaiveWithColSums) {
  stats::Rng rng(2718);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    // C[m x n] += A^T B with A stored [k x m], B stored [k x n].
    const auto a = random_vec(rng, s.k * s.m);
    const auto b = random_vec(rng, s.k * s.n);
    const auto c0 = random_vec(rng, s.m * s.n);

    std::vector<float> want = c0;
    std::vector<float> got = c0;
    std::vector<float> want_sums(s.m, -1.0f);
    std::vector<float> got_sums(s.m, -1.0f);
    naive.gemm_at_b_accum(a.data(), b.data(), want.data(), s.k, s.m, s.n,
                          want_sums.data());
    blocked.gemm_at_b_accum(a.data(), b.data(), got.data(), s.k, s.m, s.n,
                            got_sums.data());
    expect_close(got, want);
    expect_close(got_sums, want_sums);
  }
}

// --- Conv2d: blocked (im2col + GEMM) vs naive direct loops --------------

const kernels::Conv2dShape kConvShapes[] = {
    // batch, cin, h, w, cout, k, pad, oh, ow
    {1, 1, 3, 3, 1, 3, 0, 1, 1},     // minimal valid conv
    {1, 1, 5, 7, 2, 3, 1, 5, 7},     // batch=1, odd sizes, same-padding
    {2, 3, 8, 8, 4, 3, 1, 8, 8},     // LeNet-ish interior shape
    {3, 2, 9, 5, 5, 3, 2, 11, 7},    // pad wider than usual
    {2, 2, 6, 6, 3, 1, 0, 6, 6},     // 1x1 kernel (pure channel mix)
    {1, 4, 11, 11, 8, 5, 2, 11, 11}, // 5x5 kernel, same-padding
    {4, 1, 16, 16, 4, 3, 1, 16, 16}, // first LeNet layer shape
};

TEST(KernelConv, ForwardBlockedMatchesNaive) {
  stats::Rng rng(31);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kConvShapes) {
    SCOPED_TRACE(testing::Message() << "b=" << s.batch << " cin=" << s.cin
                                    << " h=" << s.h << " w=" << s.w
                                    << " cout=" << s.cout << " k=" << s.k
                                    << " pad=" << s.pad);
    const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
    const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
    const auto bias = random_vec(rng, s.cout);
    const std::size_t out_n = s.batch * s.cout * s.oh * s.ow;
    std::vector<float> want(out_n, 9.0f);
    std::vector<float> got(out_n, -9.0f);
    naive.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                         want.data());
    blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                           got.data());
    expect_close(got, want);
  }
}

TEST(KernelConv, BackwardBlockedMatchesNaive) {
  stats::Rng rng(47);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kConvShapes) {
    SCOPED_TRACE(testing::Message() << "b=" << s.batch << " cin=" << s.cin
                                    << " h=" << s.h << " w=" << s.w
                                    << " cout=" << s.cout << " k=" << s.k
                                    << " pad=" << s.pad);
    const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
    const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
    const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
    // Gradients accumulate (+=): seed them with a shared nonzero pattern.
    const auto gw0 = random_vec(rng, weights.size());
    const auto gb0 = random_vec(rng, s.cout);

    auto want_gw = gw0;
    auto want_gb = gb0;
    std::vector<float> want_gi(in.size(), 0.0f);
    naive.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          want_gw.data(), want_gb.data(), want_gi.data());
    auto got_gw = gw0;
    auto got_gb = gb0;
    std::vector<float> got_gi(in.size(), 0.0f);
    blocked.conv2d_backward(s, in.data(), weights.data(), go.data(),
                            got_gw.data(), got_gb.data(), got_gi.data());
    expect_close(got_gw, want_gw);
    expect_close(got_gb, want_gb);
    expect_close(got_gi, want_gi);
  }
}

// --- determinism: bit-identical run-to-run ------------------------------

TEST(KernelDeterminism, RepeatedCallsAreBitIdenticalForBothSets) {
  stats::Rng rng(1000);
  const kernels::Conv2dShape s{2, 3, 8, 8, 4, 3, 1, 8, 8};
  const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
  const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
  const auto bias = random_vec(rng, s.cout);
  const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
  for (const auto kind :
       {kernels::KernelKind::naive, kernels::KernelKind::blocked}) {
    SCOPED_TRACE(kernels::kernel_kind_name(kind));
    const auto& k = kernels::ops_for(kind);
    std::vector<float> out1(s.batch * s.cout * s.oh * s.ow);
    std::vector<float> out2 = out1;
    k.conv2d_forward(s, in.data(), weights.data(), bias.data(), out1.data());
    k.conv2d_forward(s, in.data(), weights.data(), bias.data(), out2.data());
    ASSERT_EQ(0, std::memcmp(out1.data(), out2.data(),
                             out1.size() * sizeof(float)));

    std::vector<float> gw1(weights.size(), 0.0f), gb1(s.cout, 0.0f),
        gi1(in.size(), 0.0f);
    std::vector<float> gw2 = gw1, gb2 = gb1, gi2 = gi1;
    k.conv2d_backward(s, in.data(), weights.data(), go.data(), gw1.data(),
                      gb1.data(), gi1.data());
    k.conv2d_backward(s, in.data(), weights.data(), go.data(), gw2.data(),
                      gb2.data(), gi2.data());
    ASSERT_EQ(0,
              std::memcmp(gw1.data(), gw2.data(), gw1.size() * sizeof(float)));
    ASSERT_EQ(0,
              std::memcmp(gb1.data(), gb2.data(), gb1.size() * sizeof(float)));
    ASSERT_EQ(0,
              std::memcmp(gi1.data(), gi2.data(), gi1.size() * sizeof(float)));
  }
}

TEST(KernelDeterminism, ResultUnaffectedByWorkspacePollution) {
  // A kernel call must fully overwrite the scratch it reads — a previous
  // call with a DIFFERENT shape must not leak into the result.
  stats::Rng rng(555);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  const kernels::Conv2dShape small{1, 1, 5, 5, 2, 3, 1, 5, 5};
  const kernels::Conv2dShape big{2, 4, 12, 12, 6, 5, 2, 12, 12};

  const auto in_s = random_vec(rng, small.batch * small.cin * small.h * small.w);
  const auto w_s = random_vec(rng, small.cout * small.cin * small.k * small.k);
  const auto b_s = random_vec(rng, small.cout);
  const auto in_b = random_vec(rng, big.batch * big.cin * big.h * big.w);
  const auto w_b = random_vec(rng, big.cout * big.cin * big.k * big.k);
  const auto b_b = random_vec(rng, big.cout);

  std::vector<float> clean(small.batch * small.cout * small.oh * small.ow);
  blocked.conv2d_forward(small, in_s.data(), w_s.data(), b_s.data(),
                         clean.data());
  // Pollute the thread's workspace with a larger problem, then redo.
  std::vector<float> scratch(big.batch * big.cout * big.oh * big.ow);
  blocked.conv2d_forward(big, in_b.data(), w_b.data(), b_b.data(),
                         scratch.data());
  std::vector<float> redo(clean.size());
  blocked.conv2d_forward(small, in_s.data(), w_s.data(), b_s.data(),
                         redo.data());
  ASSERT_EQ(0,
            std::memcmp(clean.data(), redo.data(),
                        clean.size() * sizeof(float)));
}

// --- workspace ----------------------------------------------------------

TEST(KernelWorkspace, GrowsMonotonicallyAndStopsAllocating) {
  kernels::Workspace ws;
  auto a = ws.floats(kernels::Workspace::kIm2col, 100);
  EXPECT_EQ(a.size(), 100u);
  const std::size_t after_first = ws.retained_bytes();
  EXPECT_GE(after_first, 100 * sizeof(float));
  // Smaller and equal requests must not grow the buffer.
  ws.floats(kernels::Workspace::kIm2col, 40);
  ws.floats(kernels::Workspace::kIm2col, 100);
  EXPECT_EQ(ws.retained_bytes(), after_first);
  // A different slot grows independently.
  ws.floats(kernels::Workspace::kPackedA, 64);
  EXPECT_GT(ws.retained_bytes(), after_first);
}

TEST(KernelWorkspace, SteadyStateConvAllocatesNothingNew) {
  stats::Rng rng(777);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  const kernels::Conv2dShape s{4, 4, 8, 8, 8, 3, 1, 8, 8};
  const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
  const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
  const auto bias = random_vec(rng, s.cout);
  const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
  std::vector<float> out(s.batch * s.cout * s.oh * s.ow);
  std::vector<float> gw(weights.size(), 0.0f), gb(s.cout, 0.0f),
      gi(in.size(), 0.0f);

  blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                         out.data());
  blocked.conv2d_backward(s, in.data(), weights.data(), go.data(), gw.data(),
                          gb.data(), gi.data());
  const std::size_t warm = kernels::Workspace::tls().retained_bytes();
  for (int i = 0; i < 5; ++i) {
    blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                           out.data());
    blocked.conv2d_backward(s, in.data(), weights.data(), go.data(), gw.data(),
                            gb.data(), gi.data());
  }
  EXPECT_EQ(kernels::Workspace::tls().retained_bytes(), warm);
}

// --- aggregation helpers: double-accumulate contract --------------------

TEST(KernelVecMean, DoubleAccumulationSurvivesMagnitudeSpread) {
  // Float-order accumulation of {1e8, 1, 1, ...} absorbs the small terms
  // (1e8f + 1.0f == 1e8f); the double accumulator must not.
  const std::size_t kSmall = 4096;
  std::vector<tensor::FlatVec> vs;
  vs.push_back(tensor::FlatVec{1e8f});
  for (std::size_t i = 0; i < kSmall; ++i) vs.push_back(tensor::FlatVec{1.0f});
  const tensor::FlatVec m = tensor::mean_of(vs);
  ASSERT_EQ(m.size(), 1u);
  const double exact = (1e8 + static_cast<double>(kSmall)) /
                       static_cast<double>(vs.size());
  EXPECT_EQ(m[0], static_cast<float>(exact));
}

TEST(KernelVecMean, IndependentOfSummationOrder) {
  // Integer-valued floats sum exactly in double, so ANY permutation of
  // the inputs must produce the bit-identical mean. Under the old float
  // accumulation this failed for adversarial orderings.
  stats::Rng rng(4242);
  const std::size_t kVecs = 64, kDim = 37;
  std::vector<tensor::FlatVec> vs(kVecs);
  for (auto& v : vs) {
    v.resize(kDim);
    for (auto& x : v) {
      x = static_cast<float>(static_cast<int>(rng.uniform_int(20001)) - 10000);
    }
  }
  const tensor::FlatVec forward_order = tensor::mean_of(vs);
  std::vector<tensor::FlatVec> reversed(vs.rbegin(), vs.rend());
  EXPECT_EQ(tensor::mean_of(reversed), forward_order);

  std::vector<double> weights(kVecs);
  for (auto& w : weights) w = static_cast<double>(1 + rng.uniform_int(7));
  const tensor::FlatVec weighted = tensor::weighted_mean_of(vs, weights);
  std::vector<double> rev_weights(weights.rbegin(), weights.rend());
  EXPECT_EQ(tensor::weighted_mean_of(reversed, rev_weights), weighted);
}

// --- first-layer backward: gi == nullptr skips only the input grad -----

TEST(KernelConv, NullInputGradLeavesParamGradsBitIdentical) {
  stats::Rng rng(77);
  for (const auto kind :
       {kernels::KernelKind::naive, kernels::KernelKind::blocked}) {
    const auto& ops = kernels::ops_for(kind);
    for (const auto& s : kConvShapes) {
      SCOPED_TRACE(testing::Message()
                   << kernels::kernel_kind_name(kind) << " b=" << s.batch
                   << " cin=" << s.cin << " cout=" << s.cout << " k=" << s.k
                   << " pad=" << s.pad);
      const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
      const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
      const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
      const auto gw0 = random_vec(rng, weights.size());
      const auto gb0 = random_vec(rng, s.cout);

      auto full_gw = gw0;
      auto full_gb = gb0;
      std::vector<float> gi(in.size(), 0.0f);
      ops.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          full_gw.data(), full_gb.data(), gi.data());
      auto skip_gw = gw0;
      auto skip_gb = gb0;
      ops.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          skip_gw.data(), skip_gb.data(), nullptr);
      EXPECT_EQ(0, std::memcmp(skip_gw.data(), full_gw.data(),
                               full_gw.size() * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(skip_gb.data(), full_gb.data(),
                               full_gb.size() * sizeof(float)));
    }
  }
}

// --- packed ReLU mask helpers -------------------------------------------

TEST(KernelReluMask, ForwardClampAndMaskMatchScalarReference) {
  stats::Rng rng(501);
  // Sizes straddling the SIMD main loop and the scalar tail, plus the
  // sub-word edge cases.
  for (const std::size_t n : {1ul, 3ul, 63ul, 64ul, 65ul, 100ul, 128ul,
                              1000ul, 16384ul}) {
    SCOPED_TRACE(testing::Message() << "n=" << n);
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
    if (n >= 3) {
      x[0] = 0.0f;   // exactly zero: inactive
      x[1] = -0.0f;  // negative zero: inactive, clamps to +0
      x[2] = 1e-30f; // tiny positive: active
    }
    auto want = x;
    std::vector<std::uint64_t> want_mask((n + 63) / 64, ~std::uint64_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const bool active = want[i] > 0.0f;
      if (!active) {
        want[i] = 0.0f;
        want_mask[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
      }
    }
    // Reference writes whole words; clear the padding bits beyond n.
    if (n % 64 != 0) want_mask.back() &= (std::uint64_t{1} << (n % 64)) - 1;

    auto got = x;
    std::vector<std::uint64_t> got_mask((n + 63) / 64, 0);
    kernels::relu_forward_mask(got.data(), n, got_mask.data());
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));
    EXPECT_EQ(got_mask, want_mask);
  }
}

TEST(KernelReluMask, BackwardZeroesExactlyTheInactiveLanes) {
  stats::Rng rng(502);
  for (const std::size_t n : {1ul, 63ul, 64ul, 65ul, 200ul, 4096ul}) {
    SCOPED_TRACE(testing::Message() << "n=" << n);
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<std::uint64_t> mask((n + 63) / 64, 0);
    kernels::relu_forward_mask(x.data(), n, mask.data());

    std::vector<float> g(n);
    for (auto& v : g) v = static_cast<float>(rng.normal(0.0, 1.0));
    auto want = g;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask[i >> 6] >> (i & 63) & 1) == 0) want[i] = 0.0f;
    }
    kernels::relu_backward_mask(g.data(), n, mask.data());
    EXPECT_EQ(0, std::memcmp(g.data(), want.data(), n * sizeof(float)));
  }
}

// --- runtime ISA dispatch (cpu_dispatch.h) ------------------------------

TEST(KernelDispatch, DetectionIsConsistent) {
  const kernels::CpuFeatures& f = kernels::cpu_features();
  // Feature implications cpuid guarantees: avx2 ⊃ avx ⊃ sse2.
  if (f.avx2) {
    EXPECT_TRUE(f.avx);
  }
  if (f.avx) {
    EXPECT_TRUE(f.sse2);
  }
  const kernels::IsaTier det = kernels::detected_tier();
  if (det == kernels::IsaTier::avx2) {
    EXPECT_TRUE(f.avx2);
    EXPECT_TRUE(f.fma);
  }
  if (det >= kernels::IsaTier::sse2) {
    EXPECT_TRUE(f.sse2);
  }
  // The active tier can never exceed what the CPU supports.
  EXPECT_LE(kernels::active_tier(), det);
  EXPECT_FALSE(kernels::cpu_feature_string().empty());
}

TEST(KernelDispatch, TierNamesRoundTripAndRejectUnknown) {
  for (const auto t : {kernels::IsaTier::scalar, kernels::IsaTier::sse2,
                       kernels::IsaTier::avx2}) {
    EXPECT_EQ(kernels::parse_isa_tier(kernels::isa_tier_name(t)), t);
  }
  EXPECT_THROW(kernels::parse_isa_tier("avx512"), std::invalid_argument);
  EXPECT_THROW(kernels::parse_isa_tier(""), std::invalid_argument);
}

TEST(KernelDispatch, DispatchInfoMatchesActiveTier) {
  TierGuard guard;
  for (const auto tier : available_tiers()) {
    kernels::set_active_tier(tier);
    const kernels::DispatchInfo d = kernels::dispatch_info();
    EXPECT_EQ(d.tier, tier);
    EXPECT_GT(d.mr, 0u);
    EXPECT_GT(d.nr, 0u);
    EXPECT_STRNE(d.microkernel, "");
  }
}

TEST(KernelDispatch, ForcingAnUnsupportedTierThrows) {
  if (kernels::detected_tier() == kernels::IsaTier::avx2) {
    GTEST_SKIP() << "every tier is supported on this host";
  }
  EXPECT_THROW(kernels::set_active_tier(kernels::IsaTier::avx2),
               std::runtime_error);
}

// Each tier's blocked set must satisfy the SAME cross-set contract the
// default tier satisfies: agreement with naive to elementwise tolerance
// on every ragged shape. The shape tables already stress odd tails
// (dimensions past MR/NR/MC/KC boundaries) and batch=1.
TEST(KernelDispatch, EveryTierGemmMatchesNaive) {
  TierGuard guard;
  stats::Rng rng(8080);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    const auto a = random_vec(rng, s.m * s.k);
    const auto b = random_vec(rng, s.k * s.n);
    const auto bias = random_vec(rng, s.m);
    const auto bt = random_vec(rng, s.n * s.k);
    const auto at = random_vec(rng, s.k * s.m);
    const auto c0 = random_vec(rng, s.m * s.n);

    std::vector<float> want(s.m * s.n);
    naive.gemm(a.data(), b.data(), want.data(), s.m, s.k, s.n, bias.data());
    std::vector<float> want_abt = c0;
    std::vector<float> want_abt_sums(s.m, 0.25f);
    naive.gemm_a_bt_accum(a.data(), bt.data(), want_abt.data(), s.m, s.k, s.n,
                          nullptr, want_abt_sums.data());
    std::vector<float> want_atb = c0;
    std::vector<float> want_atb_sums(s.m, -0.5f);
    naive.gemm_at_b_accum(at.data(), b.data(), want_atb.data(), s.k, s.m, s.n,
                          want_atb_sums.data());

    for (const auto tier : available_tiers()) {
      SCOPED_TRACE(testing::Message()
                   << kernels::isa_tier_name(tier) << " m=" << s.m
                   << " k=" << s.k << " n=" << s.n);
      kernels::set_active_tier(tier);
      std::vector<float> got(s.m * s.n, 42.0f);
      blocked.gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n, bias.data());
      expect_close(got, want);
      std::vector<float> got_abt = c0;
      std::vector<float> got_abt_sums(s.m, 0.25f);
      blocked.gemm_a_bt_accum(a.data(), bt.data(), got_abt.data(), s.m, s.k,
                              s.n, nullptr, got_abt_sums.data());
      expect_close(got_abt, want_abt);
      expect_close(got_abt_sums, want_abt_sums);
      std::vector<float> got_atb = c0;
      std::vector<float> got_atb_sums(s.m, -0.5f);
      blocked.gemm_at_b_accum(at.data(), b.data(), got_atb.data(), s.k, s.m,
                              s.n, got_atb_sums.data());
      expect_close(got_atb, want_atb);
      expect_close(got_atb_sums, want_atb_sums);
    }
  }
}

TEST(KernelDispatch, EveryTierConvMatchesNaive) {
  TierGuard guard;
  stats::Rng rng(8181);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kConvShapes) {
    const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
    const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
    const auto bias = random_vec(rng, s.cout);
    const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);

    std::vector<float> want(go.size());
    naive.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                         want.data());
    std::vector<float> want_gw(weights.size(), 0.0f), want_gb(s.cout, 0.0f),
        want_gi(in.size(), 0.0f);
    naive.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          want_gw.data(), want_gb.data(), want_gi.data());

    for (const auto tier : available_tiers()) {
      SCOPED_TRACE(testing::Message()
                   << kernels::isa_tier_name(tier) << " b=" << s.batch
                   << " cin=" << s.cin << " cout=" << s.cout << " k=" << s.k);
      kernels::set_active_tier(tier);
      std::vector<float> got(go.size(), -3.0f);
      blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                             got.data());
      expect_close(got, want);
      std::vector<float> gw(weights.size(), 0.0f), gb(s.cout, 0.0f),
          gi(in.size(), 0.0f);
      blocked.conv2d_backward(s, in.data(), weights.data(), go.data(),
                              gw.data(), gb.data(), gi.data());
      expect_close(gw, want_gw);
      expect_close(gb, want_gb);
      expect_close(gi, want_gi);
    }
  }
}

// scalar and sse2 share mul-then-add rounding and the same blocking, so
// they are bit-identical — a stronger contract than tolerance, and the
// one that makes cross-host checkpoint resume exact below the avx2 tier.
TEST(KernelDispatch, ScalarAndSse2TiersAreBitIdentical) {
  if (kernels::detected_tier() < kernels::IsaTier::sse2) {
    GTEST_SKIP() << "no sse2 tier on this host";
  }
  TierGuard guard;
  stats::Rng rng(8282);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    const auto a = random_vec(rng, s.m * s.k);
    const auto b = random_vec(rng, s.k * s.n);
    kernels::set_active_tier(kernels::IsaTier::scalar);
    std::vector<float> scalar_c(s.m * s.n);
    blocked.gemm(a.data(), b.data(), scalar_c.data(), s.m, s.k, s.n, nullptr);
    kernels::set_active_tier(kernels::IsaTier::sse2);
    std::vector<float> sse2_c(s.m * s.n);
    blocked.gemm(a.data(), b.data(), sse2_c.data(), s.m, s.k, s.n, nullptr);
    ASSERT_EQ(0, std::memcmp(scalar_c.data(), sse2_c.data(),
                             scalar_c.size() * sizeof(float)));
  }
}

// --- kernel pool: the conv batch fan-out ---------------------------------

TEST(KernelPool, ConvResultsBitIdenticalWithAndWithoutPool) {
  stats::Rng rng(8383);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  const kernels::Conv2dShape s{4, 3, 8, 8, 5, 3, 1, 8, 8};
  const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
  const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
  const auto bias = random_vec(rng, s.cout);
  const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);

  ASSERT_EQ(kernels::kernel_pool(), nullptr);
  std::vector<float> inline_out(go.size());
  std::vector<float> inline_gw(weights.size(), 0.0f), inline_gb(s.cout, 0.0f),
      inline_gi(in.size(), 0.0f);
  blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                         inline_out.data());
  blocked.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          inline_gw.data(), inline_gb.data(),
                          inline_gi.data());

  runtime::ThreadPool pool(3);
  {
    kernels::ScopedKernelPool lend(&pool);
    ASSERT_EQ(kernels::kernel_pool(), &pool);
    std::vector<float> out(go.size());
    std::vector<float> gw(weights.size(), 0.0f), gb(s.cout, 0.0f),
        gi(in.size(), 0.0f);
    blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                           out.data());
    blocked.conv2d_backward(s, in.data(), weights.data(), go.data(), gw.data(),
                            gb.data(), gi.data());
    EXPECT_EQ(0, std::memcmp(out.data(), inline_out.data(),
                             out.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(gw.data(), inline_gw.data(),
                             gw.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(gb.data(), inline_gb.data(),
                             gb.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(gi.data(), inline_gi.data(),
                             gi.size() * sizeof(float)));
  }
  // RAII restores the previous (null) pool.
  EXPECT_EQ(kernels::kernel_pool(), nullptr);
}

TEST(KernelPool, WorkerThreadsNeverInheritThePool) {
  runtime::ThreadPool pool(2);
  kernels::ScopedKernelPool lend(&pool);
  ASSERT_EQ(kernels::kernel_pool(), &pool);
  // The pointer is thread-local: tasks running ON the pool must see null,
  // which is what makes nested parallel_for impossible by construction.
  std::atomic<int> nonnull_seen{0};
  runtime::parallel_for(&pool, 8, [&](std::size_t) {
    if (kernels::kernel_pool() != nullptr) nonnull_seen.fetch_add(1);
  });
  EXPECT_EQ(nonnull_seen.load(), 0);
}

}  // namespace
}  // namespace collapois
