// The compute-kernel layer (src/kernels/): blocked vs naive agreement on
// randomized shapes (ragged block tails, padding edges, batch=1), fused
// epilogue correctness, run-to-run bit identity, workspace reuse safety,
// and the double-accumulate contract of the aggregation helpers.
//
// Suites are named Kernel* so the sanitizer CI lanes pick them up by
// regex alongside the Runtime* suites.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/kernels.h"
#include "kernels/workspace.h"
#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois {
namespace {

std::vector<float> random_vec(stats::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Elementwise comparison with a relative-or-absolute tolerance: the two
// kernel sets sum in different orders, so exact equality is not expected,
// but every element must agree tightly.
void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, double rel_tol = 1e-4) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(static_cast<double>(want[i])));
    ASSERT_NEAR(got[i], want[i], rel_tol * scale) << "element " << i;
  }
}

// --- registry -----------------------------------------------------------

TEST(KernelRegistry, NamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(kernels::parse_kernel_kind("naive"), kernels::KernelKind::naive);
  EXPECT_EQ(kernels::parse_kernel_kind("blocked"),
            kernels::KernelKind::blocked);
  EXPECT_STREQ(kernels::kernel_kind_name(kernels::KernelKind::naive), "naive");
  EXPECT_STREQ(kernels::kernel_kind_name(kernels::KernelKind::blocked),
               "blocked");
  EXPECT_THROW(kernels::parse_kernel_kind("fast"), std::invalid_argument);
  EXPECT_STREQ(kernels::ops_for(kernels::KernelKind::naive).name, "naive");
  EXPECT_STREQ(kernels::ops_for(kernels::KernelKind::blocked).name, "blocked");
}

TEST(KernelRegistry, ActiveSetSwitches) {
  const kernels::KernelKind before = kernels::active_kernels();
  kernels::set_active_kernels(kernels::KernelKind::naive);
  EXPECT_STREQ(kernels::ops().name, "naive");
  kernels::set_active_kernels(kernels::KernelKind::blocked);
  EXPECT_STREQ(kernels::ops().name, "blocked");
  kernels::set_active_kernels(before);
}

// --- GEMM: blocked vs naive over randomized shapes ----------------------

// Shapes chosen to stress every ragged edge of the blocking scheme:
// dimensions below one register tile (MR=4, NR=8), just past a tile,
// past the MC=64 row block, and past the KC=256 reduction slice.
struct GemmShape {
  std::size_t m, k, n;
};

const GemmShape kGemmShapes[] = {
    {1, 1, 1},    {1, 7, 9},    {3, 5, 7},     {4, 8, 8},    {5, 9, 11},
    {16, 32, 10}, {17, 33, 13}, {65, 40, 19},  {70, 300, 9}, {12, 257, 70},
    {33, 64, 33},
};

TEST(KernelGemm, BlockedMatchesNaiveWithAndWithoutRowBias) {
  stats::Rng rng(1234);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    const auto a = random_vec(rng, s.m * s.k);
    const auto b = random_vec(rng, s.k * s.n);
    const auto bias = random_vec(rng, s.m);
    for (const float* row_bias : {static_cast<const float*>(nullptr),
                                  bias.data()}) {
      std::vector<float> want(s.m * s.n, -7.0f);  // overwritten, not read
      std::vector<float> got(s.m * s.n, 3.0f);
      naive.gemm(a.data(), b.data(), want.data(), s.m, s.k, s.n, row_bias);
      blocked.gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n, row_bias);
      expect_close(got, want);
    }
  }
}

TEST(KernelGemm, BlockedABtAccumMatchesNaiveWithEpilogues) {
  stats::Rng rng(99);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    const auto a = random_vec(rng, s.m * s.k);
    const auto b = random_vec(rng, s.n * s.k);  // stored [n x k]
    const auto col_bias = random_vec(rng, s.n);
    const auto c0 = random_vec(rng, s.m * s.n);  // accumulation seed

    std::vector<float> want = c0;
    std::vector<float> got = c0;
    std::vector<float> want_sums(s.m, 0.5f);  // += semantics: seed nonzero
    std::vector<float> got_sums(s.m, 0.5f);
    naive.gemm_a_bt_accum(a.data(), b.data(), want.data(), s.m, s.k, s.n,
                          col_bias.data(), want_sums.data());
    blocked.gemm_a_bt_accum(a.data(), b.data(), got.data(), s.m, s.k, s.n,
                            col_bias.data(), got_sums.data());
    expect_close(got, want);
    expect_close(got_sums, want_sums);
  }
}

TEST(KernelGemm, BlockedAtBAccumMatchesNaiveWithColSums) {
  stats::Rng rng(2718);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kGemmShapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    // C[m x n] += A^T B with A stored [k x m], B stored [k x n].
    const auto a = random_vec(rng, s.k * s.m);
    const auto b = random_vec(rng, s.k * s.n);
    const auto c0 = random_vec(rng, s.m * s.n);

    std::vector<float> want = c0;
    std::vector<float> got = c0;
    std::vector<float> want_sums(s.m, -1.0f);
    std::vector<float> got_sums(s.m, -1.0f);
    naive.gemm_at_b_accum(a.data(), b.data(), want.data(), s.k, s.m, s.n,
                          want_sums.data());
    blocked.gemm_at_b_accum(a.data(), b.data(), got.data(), s.k, s.m, s.n,
                            got_sums.data());
    expect_close(got, want);
    expect_close(got_sums, want_sums);
  }
}

// --- Conv2d: blocked (im2col + GEMM) vs naive direct loops --------------

const kernels::Conv2dShape kConvShapes[] = {
    // batch, cin, h, w, cout, k, pad, oh, ow
    {1, 1, 3, 3, 1, 3, 0, 1, 1},     // minimal valid conv
    {1, 1, 5, 7, 2, 3, 1, 5, 7},     // batch=1, odd sizes, same-padding
    {2, 3, 8, 8, 4, 3, 1, 8, 8},     // LeNet-ish interior shape
    {3, 2, 9, 5, 5, 3, 2, 11, 7},    // pad wider than usual
    {2, 2, 6, 6, 3, 1, 0, 6, 6},     // 1x1 kernel (pure channel mix)
    {1, 4, 11, 11, 8, 5, 2, 11, 11}, // 5x5 kernel, same-padding
    {4, 1, 16, 16, 4, 3, 1, 16, 16}, // first LeNet layer shape
};

TEST(KernelConv, ForwardBlockedMatchesNaive) {
  stats::Rng rng(31);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kConvShapes) {
    SCOPED_TRACE(testing::Message() << "b=" << s.batch << " cin=" << s.cin
                                    << " h=" << s.h << " w=" << s.w
                                    << " cout=" << s.cout << " k=" << s.k
                                    << " pad=" << s.pad);
    const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
    const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
    const auto bias = random_vec(rng, s.cout);
    const std::size_t out_n = s.batch * s.cout * s.oh * s.ow;
    std::vector<float> want(out_n, 9.0f);
    std::vector<float> got(out_n, -9.0f);
    naive.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                         want.data());
    blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                           got.data());
    expect_close(got, want);
  }
}

TEST(KernelConv, BackwardBlockedMatchesNaive) {
  stats::Rng rng(47);
  const auto& naive = kernels::ops_for(kernels::KernelKind::naive);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  for (const auto& s : kConvShapes) {
    SCOPED_TRACE(testing::Message() << "b=" << s.batch << " cin=" << s.cin
                                    << " h=" << s.h << " w=" << s.w
                                    << " cout=" << s.cout << " k=" << s.k
                                    << " pad=" << s.pad);
    const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
    const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
    const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
    // Gradients accumulate (+=): seed them with a shared nonzero pattern.
    const auto gw0 = random_vec(rng, weights.size());
    const auto gb0 = random_vec(rng, s.cout);

    auto want_gw = gw0;
    auto want_gb = gb0;
    std::vector<float> want_gi(in.size(), 0.0f);
    naive.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          want_gw.data(), want_gb.data(), want_gi.data());
    auto got_gw = gw0;
    auto got_gb = gb0;
    std::vector<float> got_gi(in.size(), 0.0f);
    blocked.conv2d_backward(s, in.data(), weights.data(), go.data(),
                            got_gw.data(), got_gb.data(), got_gi.data());
    expect_close(got_gw, want_gw);
    expect_close(got_gb, want_gb);
    expect_close(got_gi, want_gi);
  }
}

// --- determinism: bit-identical run-to-run ------------------------------

TEST(KernelDeterminism, RepeatedCallsAreBitIdenticalForBothSets) {
  stats::Rng rng(1000);
  const kernels::Conv2dShape s{2, 3, 8, 8, 4, 3, 1, 8, 8};
  const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
  const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
  const auto bias = random_vec(rng, s.cout);
  const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
  for (const auto kind :
       {kernels::KernelKind::naive, kernels::KernelKind::blocked}) {
    SCOPED_TRACE(kernels::kernel_kind_name(kind));
    const auto& k = kernels::ops_for(kind);
    std::vector<float> out1(s.batch * s.cout * s.oh * s.ow);
    std::vector<float> out2 = out1;
    k.conv2d_forward(s, in.data(), weights.data(), bias.data(), out1.data());
    k.conv2d_forward(s, in.data(), weights.data(), bias.data(), out2.data());
    ASSERT_EQ(0, std::memcmp(out1.data(), out2.data(),
                             out1.size() * sizeof(float)));

    std::vector<float> gw1(weights.size(), 0.0f), gb1(s.cout, 0.0f),
        gi1(in.size(), 0.0f);
    std::vector<float> gw2 = gw1, gb2 = gb1, gi2 = gi1;
    k.conv2d_backward(s, in.data(), weights.data(), go.data(), gw1.data(),
                      gb1.data(), gi1.data());
    k.conv2d_backward(s, in.data(), weights.data(), go.data(), gw2.data(),
                      gb2.data(), gi2.data());
    ASSERT_EQ(0,
              std::memcmp(gw1.data(), gw2.data(), gw1.size() * sizeof(float)));
    ASSERT_EQ(0,
              std::memcmp(gb1.data(), gb2.data(), gb1.size() * sizeof(float)));
    ASSERT_EQ(0,
              std::memcmp(gi1.data(), gi2.data(), gi1.size() * sizeof(float)));
  }
}

TEST(KernelDeterminism, ResultUnaffectedByWorkspacePollution) {
  // A kernel call must fully overwrite the scratch it reads — a previous
  // call with a DIFFERENT shape must not leak into the result.
  stats::Rng rng(555);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  const kernels::Conv2dShape small{1, 1, 5, 5, 2, 3, 1, 5, 5};
  const kernels::Conv2dShape big{2, 4, 12, 12, 6, 5, 2, 12, 12};

  const auto in_s = random_vec(rng, small.batch * small.cin * small.h * small.w);
  const auto w_s = random_vec(rng, small.cout * small.cin * small.k * small.k);
  const auto b_s = random_vec(rng, small.cout);
  const auto in_b = random_vec(rng, big.batch * big.cin * big.h * big.w);
  const auto w_b = random_vec(rng, big.cout * big.cin * big.k * big.k);
  const auto b_b = random_vec(rng, big.cout);

  std::vector<float> clean(small.batch * small.cout * small.oh * small.ow);
  blocked.conv2d_forward(small, in_s.data(), w_s.data(), b_s.data(),
                         clean.data());
  // Pollute the thread's workspace with a larger problem, then redo.
  std::vector<float> scratch(big.batch * big.cout * big.oh * big.ow);
  blocked.conv2d_forward(big, in_b.data(), w_b.data(), b_b.data(),
                         scratch.data());
  std::vector<float> redo(clean.size());
  blocked.conv2d_forward(small, in_s.data(), w_s.data(), b_s.data(),
                         redo.data());
  ASSERT_EQ(0,
            std::memcmp(clean.data(), redo.data(),
                        clean.size() * sizeof(float)));
}

// --- workspace ----------------------------------------------------------

TEST(KernelWorkspace, GrowsMonotonicallyAndStopsAllocating) {
  kernels::Workspace ws;
  auto a = ws.floats(kernels::Workspace::kIm2col, 100);
  EXPECT_EQ(a.size(), 100u);
  const std::size_t after_first = ws.retained_bytes();
  EXPECT_GE(after_first, 100 * sizeof(float));
  // Smaller and equal requests must not grow the buffer.
  ws.floats(kernels::Workspace::kIm2col, 40);
  ws.floats(kernels::Workspace::kIm2col, 100);
  EXPECT_EQ(ws.retained_bytes(), after_first);
  // A different slot grows independently.
  ws.floats(kernels::Workspace::kPackedA, 64);
  EXPECT_GT(ws.retained_bytes(), after_first);
}

TEST(KernelWorkspace, SteadyStateConvAllocatesNothingNew) {
  stats::Rng rng(777);
  const auto& blocked = kernels::ops_for(kernels::KernelKind::blocked);
  const kernels::Conv2dShape s{4, 4, 8, 8, 8, 3, 1, 8, 8};
  const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
  const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
  const auto bias = random_vec(rng, s.cout);
  const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
  std::vector<float> out(s.batch * s.cout * s.oh * s.ow);
  std::vector<float> gw(weights.size(), 0.0f), gb(s.cout, 0.0f),
      gi(in.size(), 0.0f);

  blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                         out.data());
  blocked.conv2d_backward(s, in.data(), weights.data(), go.data(), gw.data(),
                          gb.data(), gi.data());
  const std::size_t warm = kernels::Workspace::tls().retained_bytes();
  for (int i = 0; i < 5; ++i) {
    blocked.conv2d_forward(s, in.data(), weights.data(), bias.data(),
                           out.data());
    blocked.conv2d_backward(s, in.data(), weights.data(), go.data(), gw.data(),
                            gb.data(), gi.data());
  }
  EXPECT_EQ(kernels::Workspace::tls().retained_bytes(), warm);
}

// --- aggregation helpers: double-accumulate contract --------------------

TEST(KernelVecMean, DoubleAccumulationSurvivesMagnitudeSpread) {
  // Float-order accumulation of {1e8, 1, 1, ...} absorbs the small terms
  // (1e8f + 1.0f == 1e8f); the double accumulator must not.
  const std::size_t kSmall = 4096;
  std::vector<tensor::FlatVec> vs;
  vs.push_back(tensor::FlatVec{1e8f});
  for (std::size_t i = 0; i < kSmall; ++i) vs.push_back(tensor::FlatVec{1.0f});
  const tensor::FlatVec m = tensor::mean_of(vs);
  ASSERT_EQ(m.size(), 1u);
  const double exact = (1e8 + static_cast<double>(kSmall)) /
                       static_cast<double>(vs.size());
  EXPECT_EQ(m[0], static_cast<float>(exact));
}

TEST(KernelVecMean, IndependentOfSummationOrder) {
  // Integer-valued floats sum exactly in double, so ANY permutation of
  // the inputs must produce the bit-identical mean. Under the old float
  // accumulation this failed for adversarial orderings.
  stats::Rng rng(4242);
  const std::size_t kVecs = 64, kDim = 37;
  std::vector<tensor::FlatVec> vs(kVecs);
  for (auto& v : vs) {
    v.resize(kDim);
    for (auto& x : v) {
      x = static_cast<float>(static_cast<int>(rng.uniform_int(20001)) - 10000);
    }
  }
  const tensor::FlatVec forward_order = tensor::mean_of(vs);
  std::vector<tensor::FlatVec> reversed(vs.rbegin(), vs.rend());
  EXPECT_EQ(tensor::mean_of(reversed), forward_order);

  std::vector<double> weights(kVecs);
  for (auto& w : weights) w = static_cast<double>(1 + rng.uniform_int(7));
  const tensor::FlatVec weighted = tensor::weighted_mean_of(vs, weights);
  std::vector<double> rev_weights(weights.rbegin(), weights.rend());
  EXPECT_EQ(tensor::weighted_mean_of(reversed, rev_weights), weighted);
}

// --- first-layer backward: gi == nullptr skips only the input grad -----

TEST(KernelConv, NullInputGradLeavesParamGradsBitIdentical) {
  stats::Rng rng(77);
  for (const auto kind :
       {kernels::KernelKind::naive, kernels::KernelKind::blocked}) {
    const auto& ops = kernels::ops_for(kind);
    for (const auto& s : kConvShapes) {
      SCOPED_TRACE(testing::Message()
                   << kernels::kernel_kind_name(kind) << " b=" << s.batch
                   << " cin=" << s.cin << " cout=" << s.cout << " k=" << s.k
                   << " pad=" << s.pad);
      const auto in = random_vec(rng, s.batch * s.cin * s.h * s.w);
      const auto weights = random_vec(rng, s.cout * s.cin * s.k * s.k);
      const auto go = random_vec(rng, s.batch * s.cout * s.oh * s.ow);
      const auto gw0 = random_vec(rng, weights.size());
      const auto gb0 = random_vec(rng, s.cout);

      auto full_gw = gw0;
      auto full_gb = gb0;
      std::vector<float> gi(in.size(), 0.0f);
      ops.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          full_gw.data(), full_gb.data(), gi.data());
      auto skip_gw = gw0;
      auto skip_gb = gb0;
      ops.conv2d_backward(s, in.data(), weights.data(), go.data(),
                          skip_gw.data(), skip_gb.data(), nullptr);
      EXPECT_EQ(0, std::memcmp(skip_gw.data(), full_gw.data(),
                               full_gw.size() * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(skip_gb.data(), full_gb.data(),
                               full_gb.size() * sizeof(float)));
    }
  }
}

// --- packed ReLU mask helpers -------------------------------------------

TEST(KernelReluMask, ForwardClampAndMaskMatchScalarReference) {
  stats::Rng rng(501);
  // Sizes straddling the SIMD main loop and the scalar tail, plus the
  // sub-word edge cases.
  for (const std::size_t n : {1ul, 3ul, 63ul, 64ul, 65ul, 100ul, 128ul,
                              1000ul, 16384ul}) {
    SCOPED_TRACE(testing::Message() << "n=" << n);
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
    if (n >= 3) {
      x[0] = 0.0f;   // exactly zero: inactive
      x[1] = -0.0f;  // negative zero: inactive, clamps to +0
      x[2] = 1e-30f; // tiny positive: active
    }
    auto want = x;
    std::vector<std::uint64_t> want_mask((n + 63) / 64, ~std::uint64_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const bool active = want[i] > 0.0f;
      if (!active) {
        want[i] = 0.0f;
        want_mask[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
      }
    }
    // Reference writes whole words; clear the padding bits beyond n.
    if (n % 64 != 0) want_mask.back() &= (std::uint64_t{1} << (n % 64)) - 1;

    auto got = x;
    std::vector<std::uint64_t> got_mask((n + 63) / 64, 0);
    kernels::relu_forward_mask(got.data(), n, got_mask.data());
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));
    EXPECT_EQ(got_mask, want_mask);
  }
}

TEST(KernelReluMask, BackwardZeroesExactlyTheInactiveLanes) {
  stats::Rng rng(502);
  for (const std::size_t n : {1ul, 63ul, 64ul, 65ul, 200ul, 4096ul}) {
    SCOPED_TRACE(testing::Message() << "n=" << n);
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<std::uint64_t> mask((n + 63) / 64, 0);
    kernels::relu_forward_mask(x.data(), n, mask.data());

    std::vector<float> g(n);
    for (auto& v : g) v = static_cast<float>(rng.normal(0.0, 1.0));
    auto want = g;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask[i >> 6] >> (i & 63) & 1) == 0) want[i] = 0.0f;
    }
    kernels::relu_backward_mask(g.data(), n, mask.data());
    EXPECT_EQ(0, std::memcmp(g.data(), want.data(), n * sizeof(float)));
  }
}

}  // namespace
}  // namespace collapois
