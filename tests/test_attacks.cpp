// Tests for the baseline attacks: DPois, MRepl (incl. dormant mode), DBA.
#include <gtest/gtest.h>

#include "attacks/dba.h"
#include "attacks/dpois.h"
#include "attacks/mrepl.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "fl/client.h"
#include "nn/zoo.h"
#include "stats/geometry.h"
#include "trojan/embedding_trigger.h"

namespace collapois::attacks {
namespace {

struct AttackFixture : ::testing::Test {
  AttackFixture() : rng(5), gen({}, 9) {
    const std::vector<std::size_t> counts = {30, 30};
    local = gen.generate(counts, rng);
    model = nn::make_mlp_head({.input_dim = 32, .hidden = 8, .num_classes = 2,
                               .num_hidden_layers = 1});
    model.init(rng);
    global = model.get_parameters();
  }

  stats::Rng rng;
  data::SyntheticTextGenerator gen;
  data::Dataset local;
  nn::Model model;
  tensor::FlatVec global;
  nn::SgdConfig sgd{.learning_rate = 0.05, .batch_size = 16, .epochs = 2};
};

TEST_F(AttackFixture, DPoisClientIsCompromisedAndProducesUpdate) {
  trojan::EmbeddingTrigger trigger({}, 1);
  auto client = make_dpois_client(3, local, trigger, DPoisConfig{0, 0.5},
                                  model, sgd, 0.5, rng.fork());
  EXPECT_EQ(client->id(), 3u);
  EXPECT_TRUE(client->is_compromised());
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client->compute_update(ctx);
  EXPECT_EQ(u.delta.size(), global.size());
  EXPECT_GT(stats::l2_norm(u.delta), 0.0);
}

TEST_F(AttackFixture, PoisonTrainingClientRejectsEmptyData) {
  EXPECT_THROW(PoisonTrainingClient(0, data::Dataset(2), model, sgd, 0.5,
                                    rng.fork()),
               std::invalid_argument);
}

TEST_F(AttackFixture, MReplUpdateIsBoostedPullTowardX) {
  tensor::FlatVec x = global;
  x[0] += 10.0f;  // X differs from the global model in one coordinate
  MReplClient client(1, x, MReplConfig{.boost = 5.0, .clip = 0.0});
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  // g = boost * (theta - X): only coordinate 0 is nonzero, = -50.
  EXPECT_NEAR(u.delta[0], -50.0f, 1e-4);
  for (std::size_t i = 1; i < u.delta.size(); ++i) {
    EXPECT_EQ(u.delta[i], 0.0f);
  }
  // Applying theta - g/1 with a single-client round lands past X by the
  // boost factor; the replacement direction is toward X.
}

TEST_F(AttackFixture, MReplClipBoundsUpdate) {
  tensor::FlatVec x = global;
  for (auto& v : x) v += 1.0f;
  MReplClient client(1, x, MReplConfig{.boost = 100.0, .clip = 2.0});
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  EXPECT_NEAR(stats::l2_norm(u.delta), 2.0, 1e-4);
}

TEST_F(AttackFixture, MReplDormantBehavesBenignly) {
  auto dormant = std::make_unique<fl::BenignClient>(
      2, &local, model, sgd, 0.5, rng.fork());
  MReplClient client(2, {}, MReplConfig{.boost = 5.0}, std::move(dormant));
  EXPECT_FALSE(client.armed());
  fl::RoundContext ctx{0, global};
  const fl::ClientUpdate u = client.compute_update(ctx);
  // Dormant update is a genuine training update, far smaller than a
  // boosted replacement would be.
  EXPECT_LT(stats::l2_norm(u.delta), 5.0);
  tensor::FlatVec x = global;
  x[0] += 1.0f;
  client.set_trojaned_model(x);
  EXPECT_TRUE(client.armed());
  const fl::ClientUpdate armed = client.compute_update(ctx);
  EXPECT_NEAR(armed.delta[0], -5.0f, 1e-5);
}

TEST_F(AttackFixture, MReplRejectsBadConstruction) {
  EXPECT_THROW(MReplClient(0, {}, MReplConfig{.boost = 5.0}),
               std::invalid_argument);
  EXPECT_THROW(MReplClient(0, global, MReplConfig{.boost = 0.0}),
               std::invalid_argument);
  MReplClient ok(0, global, MReplConfig{.boost = 1.0});
  EXPECT_THROW(ok.set_trojaned_model({}), std::invalid_argument);
  tensor::FlatVec short_global = {1.0f};
  fl::RoundContext ctx{0, short_global};
  EXPECT_THROW(ok.compute_update(ctx), std::invalid_argument);
}

TEST_F(AttackFixture, DbaClientUsesAssignedPart) {
  trojan::EmbeddingTrigger whole({}, 2);
  std::vector<trojan::PatchTrigger> parts =
      trojan::PatchTrigger::dba_parts(16, 16);
  // DBA over images is covered in the sim integration test; here check
  // the factory wiring with patch parts on an image federation.
  stats::Rng r2(6);
  data::SyntheticImageGenerator igen({}, 11);
  const std::vector<std::size_t> counts = {5, 5, 5, 5, 5, 5, 5, 5, 5, 5};
  const data::Dataset img_local = igen.generate(counts, r2);
  nn::Model lenet = nn::make_lenet_small({});
  lenet.init(r2);
  auto client = make_dba_client(4, img_local, parts, 2, DbaConfig{0, 0.5},
                                lenet, sgd, 0.5, r2.fork());
  EXPECT_TRUE(client->is_compromised());
  const tensor::FlatVec g = lenet.get_parameters();
  fl::RoundContext ctx{0, g};
  const fl::ClientUpdate u = client->compute_update(ctx);
  EXPECT_EQ(u.delta.size(), g.size());
}

TEST_F(AttackFixture, DbaRejectsEmptyParts) {
  std::vector<trojan::PatchTrigger> none;
  EXPECT_THROW(make_dba_client(0, local, none, 0, DbaConfig{}, model, sgd,
                               0.5, rng.fork()),
               std::invalid_argument);
}

}  // namespace
}  // namespace collapois::attacks
