// Property tests for the defense-kernel registry (defense/defense_kernels.h):
// the fast set must match the naive reference exactly for the
// coordinate-wise ops (median, trimmed mean, RLR, sign vote), match within
// a Gram-identity cancellation tolerance with stable selection ranks for
// the pairwise-distance consumers (Krum, FLARE), and be bit-identical
// across thread counts. A pair of small end-to-end simulations pins the
// fast-vs-naive contract at the experiment level.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#include "defense/defense_kernels.h"
#include "kernels/cpu_dispatch.h"
#include "defense/flare.h"
#include "defense/krum.h"
#include "defense/median.h"
#include "defense/rlr.h"
#include "fl/update_matrix.h"
#include "runtime/thread_pool.h"
#include "sim/runner.h"
#include "stats/rng.h"

namespace collapois::defense {
namespace {

std::vector<fl::ClientUpdate> random_updates(std::size_t n, std::size_t d,
                                             std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<fl::ClientUpdate> updates(n);
  for (std::size_t i = 0; i < n; ++i) {
    updates[i].client_id = i;
    updates[i].delta.resize(d);
    for (auto& v : updates[i].delta) {
      v = static_cast<float>(rng.normal(0.0, 1.0));
    }
  }
  return updates;
}

// Updates with heavy value duplication: every coordinate is drawn from
// {-1, 0, 1}, so columns are full of exact ties (the adversarial case for
// median / trimmed-mean selection and sign votes).
std::vector<fl::ClientUpdate> tied_updates(std::size_t n, std::size_t d,
                                           std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<fl::ClientUpdate> updates(n);
  for (std::size_t i = 0; i < n; ++i) {
    updates[i].client_id = i;
    updates[i].delta.resize(d);
    for (auto& v : updates[i].delta) {
      const double u = rng.uniform();
      v = (u < 1.0 / 3.0) ? -1.0f : (u < 2.0 / 3.0 ? 0.0f : 1.0f);
    }
  }
  return updates;
}

// (n, d) shapes covering the edge cases: a single update, a pair (even n),
// odd n, d below / straddling / above the 128-coordinate tile width, and a
// shape big enough that the gram path tiles in both directions.
// The two n > 128 shapes (one even, one odd) cross fast_median's
// sorting-network-to-selection cutoff, so both of its paths are swept.
const std::vector<std::pair<std::size_t, std::size_t>> kShapes = {
    {1, 7}, {2, 5},  {3, 64},  {4, 130},
    {5, 1}, {6, 257}, {9, 128}, {70, 333},
    {130, 40}, {151, 97},
};

void expect_pairwise_close(const fl::UpdateMatrix& m,
                           const std::vector<double>& naive,
                           const std::vector<double>& fast) {
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // The Gram identity cancels catastrophically for near-identical
      // rows, so the tolerance scales with the norms, not the distance.
      const double tol =
          1e-4 * (m.row_sqnorm(i) + m.row_sqnorm(j)) + 1e-9;
      EXPECT_NEAR(fast[i * n + j], naive[i * n + j], tol)
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(DefenseKernelRegistry, NamesParseAndRoundTrip) {
  EXPECT_EQ(parse_defense_impl("fast"), DefenseImpl::fast);
  EXPECT_EQ(parse_defense_impl("naive"), DefenseImpl::naive);
  EXPECT_THROW(parse_defense_impl("turbo"), std::invalid_argument);
  EXPECT_STREQ(defense_impl_name(DefenseImpl::fast), "fast");
  EXPECT_STREQ(defense_impl_name(DefenseImpl::naive), "naive");
  EXPECT_STREQ(defense_ops_for(DefenseImpl::fast).name, "fast");
  EXPECT_STREQ(defense_ops_for(DefenseImpl::naive).name, "naive");
}

TEST(DefenseKernelRegistry, ActiveImplSwitches) {
  const DefenseImpl before = active_defense_impl();
  set_active_defense_impl(DefenseImpl::naive);
  EXPECT_EQ(active_defense_impl(), DefenseImpl::naive);
  EXPECT_STREQ(defense_ops().name, "naive");
  set_active_defense_impl(DefenseImpl::fast);
  EXPECT_EQ(active_defense_impl(), DefenseImpl::fast);
  EXPECT_STREQ(defense_ops().name, "fast");
  set_active_defense_impl(before);
}

TEST(DefenseKernelProperty, PairwiseDistancesMatchNaiveWithinTolerance) {
  const auto& naive_ops = defense_ops_for(DefenseImpl::naive);
  const auto& fast_ops = defense_ops_for(DefenseImpl::fast);
  for (const auto& [n, d] : kShapes) {
    const fl::UpdateMatrix m(random_updates(n, d, 1000 + n * 13 + d));
    std::vector<double> ref(n * n);
    std::vector<double> got(n * n);
    naive_ops.pairwise_sq_dists(m, ref.data(), nullptr);
    fast_ops.pairwise_sq_dists(m, got.data(), nullptr);
    expect_pairwise_close(m, ref, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i * n + i], 0.0) << "diagonal " << i;
    }
  }
}

TEST(DefenseKernelProperty, PairwiseNearDuplicateRowsStayNonNegative) {
  // Rows that differ only in the last coordinate by 1e-3: worst-case
  // cancellation for the Gram identity (true distances sit far below the
  // float-GEMM rounding floor of ~1e-4 * ||a||^2, so ranks are NOT
  // promised here — only the zero clamp and the documented tolerance).
  std::vector<fl::ClientUpdate> updates(4);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    updates[i].delta.assign(200, 2.5f);
    updates[i].delta.back() = 2.5f + 1e-3f * static_cast<float>(i);
  }
  const fl::UpdateMatrix m(updates);
  const std::size_t n = m.rows();
  std::vector<double> ref(n * n);
  std::vector<double> got(n * n);
  defense_ops_for(DefenseImpl::naive).pairwise_sq_dists(m, ref.data(),
                                                        nullptr);
  defense_ops_for(DefenseImpl::fast).pairwise_sq_dists(m, got.data(), nullptr);
  for (double v : got) EXPECT_GE(v, 0.0);
  expect_pairwise_close(m, ref, got);
}

TEST(DefenseKernelProperty, PairwiseRanksSurviveWhenGapsExceedTolerance) {
  // Distance gaps well above the rounding tolerance: selection ranks must
  // match the reference (what Krum/FLARE actually rely on).
  std::vector<fl::ClientUpdate> updates(5);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    updates[i].delta.assign(300, 1.0f);
    updates[i].delta.back() = 1.0f + 2.0f * static_cast<float>(i);
  }
  const fl::UpdateMatrix m(updates);
  const std::size_t n = m.rows();
  std::vector<double> got(n * n);
  defense_ops_for(DefenseImpl::fast).pairwise_sq_dists(m, got.data(), nullptr);
  for (std::size_t j = 2; j < n; ++j) {
    EXPECT_LT(got[0 * n + (j - 1)], got[0 * n + j]) << "rank flip at " << j;
  }
}

TEST(DefenseKernelProperty, CoordinateOpsBitIdenticalToNaive) {
  const auto& naive_ops = defense_ops_for(DefenseImpl::naive);
  const auto& fast_ops = defense_ops_for(DefenseImpl::fast);
  for (const auto& [n, d] : kShapes) {
    for (const bool ties : {false, true}) {
      const auto updates = ties ? tied_updates(n, d, 7 + n + d)
                                : random_updates(n, d, 7 + n + d);
      const fl::UpdateMatrix m(updates);
      std::vector<float> ref(d);
      std::vector<float> got(d);

      naive_ops.coord_median(m, ref.data(), nullptr);
      fast_ops.coord_median(m, got.data(), nullptr);
      EXPECT_EQ(ref, got) << "median n=" << n << " d=" << d;

      for (const std::size_t trim : {std::size_t{0}, std::size_t{1},
                                     (n > std::size_t{1}) ? n / 2 : 0}) {
        naive_ops.trimmed_mean(m, trim, ref.data(), nullptr);
        fast_ops.trimmed_mean(m, trim, got.data(), nullptr);
        EXPECT_EQ(ref, got) << "trimmed n=" << n << " d=" << d
                            << " trim=" << trim;
      }

      naive_ops.rlr_vote(m, 2.0, ref.data(), nullptr);
      fast_ops.rlr_vote(m, 2.0, got.data(), nullptr);
      EXPECT_EQ(ref, got) << "rlr n=" << n << " d=" << d;

      naive_ops.sign_vote(m, 0.01, ref.data(), nullptr);
      fast_ops.sign_vote(m, 0.01, got.data(), nullptr);
      EXPECT_EQ(ref, got) << "sign n=" << n << " d=" << d;
    }
  }
}

// --- runtime ISA dispatch: every tier must honor the same contracts ----

std::vector<kernels::IsaTier> available_tiers() {
  std::vector<kernels::IsaTier> tiers{kernels::IsaTier::scalar};
  if (kernels::detected_tier() >= kernels::IsaTier::sse2) {
    tiers.push_back(kernels::IsaTier::sse2);
  }
  if (kernels::detected_tier() >= kernels::IsaTier::avx2) {
    tiers.push_back(kernels::IsaTier::avx2);
  }
  return tiers;
}

struct TierGuard {
  kernels::IsaTier entry = kernels::active_tier();
  ~TierGuard() { kernels::set_active_tier(entry); }
};

// The exact-equality contract holds on EVERY tier, not just the default:
// the SIMD column tiles keep per-lane op order identical to the naive
// per-column rules. kShapes stresses the ragged tail (d % 8 != 0 drops
// into the padded-gather path), n=1, even n, and the tied_updates
// generator drives the sorting networks and sign votes through exact
// duplicates.
TEST(DefenseKernelDispatch, CoordinateOpsMatchNaiveExactlyOnEveryTier) {
  TierGuard guard;
  const auto& naive_ops = defense_ops_for(DefenseImpl::naive);
  const auto& fast_ops = defense_ops_for(DefenseImpl::fast);
  for (const auto tier : available_tiers()) {
    kernels::set_active_tier(tier);
    for (const auto& [n, d] : kShapes) {
      for (const bool ties : {false, true}) {
        SCOPED_TRACE(testing::Message()
                     << kernels::isa_tier_name(tier) << " n=" << n
                     << " d=" << d << (ties ? " ties" : ""));
        const auto updates = ties ? tied_updates(n, d, 7 + n + d)
                                  : random_updates(n, d, 7 + n + d);
        const fl::UpdateMatrix m(updates);
        std::vector<float> ref(d);
        std::vector<float> got(d);

        naive_ops.coord_median(m, ref.data(), nullptr);
        fast_ops.coord_median(m, got.data(), nullptr);
        EXPECT_EQ(ref, got) << "median";

        for (const std::size_t trim : {std::size_t{0}, std::size_t{1},
                                       (n > std::size_t{1}) ? n / 2 : 0}) {
          naive_ops.trimmed_mean(m, trim, ref.data(), nullptr);
          fast_ops.trimmed_mean(m, trim, got.data(), nullptr);
          EXPECT_EQ(ref, got) << "trimmed trim=" << trim;
        }

        naive_ops.rlr_vote(m, 2.0, ref.data(), nullptr);
        fast_ops.rlr_vote(m, 2.0, got.data(), nullptr);
        EXPECT_EQ(ref, got) << "rlr";

        naive_ops.sign_vote(m, 0.01, ref.data(), nullptr);
        fast_ops.sign_vote(m, 0.01, got.data(), nullptr);
        EXPECT_EQ(ref, got) << "sign";
      }
    }
  }
}

// Across tiers the coordinate outputs are BIT-identical (memcmp, not just
// float ==): the scalar tile mirrors the SIMD min/max and mask semantics
// lane for lane. This is the property that lets a checkpointed coordinate
// trajectory resume on any host.
TEST(DefenseKernelDispatch, CoordinateOpsBitIdenticalAcrossTiers) {
  TierGuard guard;
  const auto& fast_ops = defense_ops_for(DefenseImpl::fast);
  for (const auto& [n, d] : kShapes) {
    const auto updates = tied_updates(n, d, 99 + n + d);
    const fl::UpdateMatrix m(updates);
    kernels::set_active_tier(kernels::IsaTier::scalar);
    std::vector<float> med0(d), trim0(d), rlr0(d), sign0(d);
    fast_ops.coord_median(m, med0.data(), nullptr);
    fast_ops.trimmed_mean(m, n > 2 ? 1 : 0, trim0.data(), nullptr);
    fast_ops.rlr_vote(m, 2.0, rlr0.data(), nullptr);
    fast_ops.sign_vote(m, 0.01, sign0.data(), nullptr);
    for (const auto tier : available_tiers()) {
      SCOPED_TRACE(testing::Message()
                   << kernels::isa_tier_name(tier) << " n=" << n << " d=" << d);
      kernels::set_active_tier(tier);
      std::vector<float> med(d), trim(d), rlr(d), sign(d);
      fast_ops.coord_median(m, med.data(), nullptr);
      fast_ops.trimmed_mean(m, n > 2 ? 1 : 0, trim.data(), nullptr);
      fast_ops.rlr_vote(m, 2.0, rlr.data(), nullptr);
      fast_ops.sign_vote(m, 0.01, sign.data(), nullptr);
      EXPECT_EQ(0, std::memcmp(med.data(), med0.data(), d * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(trim.data(), trim0.data(), d * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(rlr.data(), rlr0.data(), d * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(sign.data(), sign0.data(), d * sizeof(float)));
    }
  }
}

// Pairwise distances ride the tier-dispatched GEMM, so every tier must
// stay inside the Gram cancellation tolerance against the naive loops.
TEST(DefenseKernelDispatch, PairwiseDistancesWithinToleranceOnEveryTier) {
  TierGuard guard;
  const auto& naive_ops = defense_ops_for(DefenseImpl::naive);
  const auto& fast_ops = defense_ops_for(DefenseImpl::fast);
  for (const auto& [n, d] : kShapes) {
    const fl::UpdateMatrix m(random_updates(n, d, 4000 + n * 13 + d));
    std::vector<double> ref(n * n);
    naive_ops.pairwise_sq_dists(m, ref.data(), nullptr);
    for (const auto tier : available_tiers()) {
      SCOPED_TRACE(testing::Message()
                   << kernels::isa_tier_name(tier) << " n=" << n << " d=" << d);
      kernels::set_active_tier(tier);
      std::vector<double> got(n * n);
      fast_ops.pairwise_sq_dists(m, got.data(), nullptr);
      expect_pairwise_close(m, ref, got);
    }
  }
}

TEST(DefenseKernelThreads, FastOpsBitIdenticalAcrossThreadCounts) {
  const auto& ops = defense_ops_for(DefenseImpl::fast);
  const fl::UpdateMatrix m(random_updates(24, 700, 2024));
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();

  std::vector<double> dist_ref(n * n);
  std::vector<float> med_ref(d), trim_ref(d), rlr_ref(d), sign_ref(d);
  ops.pairwise_sq_dists(m, dist_ref.data(), nullptr);
  ops.coord_median(m, med_ref.data(), nullptr);
  ops.trimmed_mean(m, 3, trim_ref.data(), nullptr);
  ops.rlr_vote(m, 4.0, rlr_ref.data(), nullptr);
  ops.sign_vote(m, 0.5, sign_ref.data(), nullptr);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    runtime::ThreadPool pool(workers);
    std::vector<double> dist(n * n);
    std::vector<float> med(d), trim(d), rlr(d), sign(d);
    ops.pairwise_sq_dists(m, dist.data(), &pool);
    ops.coord_median(m, med.data(), &pool);
    ops.trimmed_mean(m, 3, trim.data(), &pool);
    ops.rlr_vote(m, 4.0, rlr.data(), &pool);
    ops.sign_vote(m, 0.5, sign.data(), &pool);
    EXPECT_EQ(dist, dist_ref) << "workers=" << workers;
    EXPECT_EQ(med, med_ref) << "workers=" << workers;
    EXPECT_EQ(trim, trim_ref) << "workers=" << workers;
    EXPECT_EQ(rlr, rlr_ref) << "workers=" << workers;
    EXPECT_EQ(sign, sign_ref) << "workers=" << workers;
  }
}

// RAII: pin the process-wide impl for a scope, restore on exit.
struct ImplGuard {
  explicit ImplGuard(DefenseImpl impl) : saved(active_defense_impl()) {
    set_active_defense_impl(impl);
  }
  ~ImplGuard() { set_active_defense_impl(saved); }
  DefenseImpl saved;
};

TEST(DefenseKernelAggregator, KrumSelectionsStableAcrossImpls) {
  for (const auto& [n, d] : kShapes) {
    if (n < 2) continue;
    const auto updates = random_updates(n, d, 31 * n + d);
    // f spanning the n <= f + 2 degenerate branch as well.
    for (const std::size_t f : {std::size_t{0}, std::size_t{1}, n}) {
      KrumAggregator naive_krum(KrumConfig{f, 2});
      KrumAggregator fast_krum(KrumConfig{f, 2});
      tensor::FlatVec naive_out, fast_out;
      {
        ImplGuard g(DefenseImpl::naive);
        naive_out = naive_krum.aggregate(updates, {});
      }
      {
        ImplGuard g(DefenseImpl::fast);
        fast_out = fast_krum.aggregate(updates, {});
      }
      EXPECT_EQ(naive_krum.last_selected(), fast_krum.last_selected())
          << "n=" << n << " d=" << d << " f=" << f;
      // Same selections => the mean is over the same rows => bit-equal.
      EXPECT_EQ(naive_out, fast_out);
    }
  }
}

TEST(DefenseKernelAggregator, FlareTrustAndAggregateCloseAcrossImpls) {
  for (const auto& [n, d] : kShapes) {
    const auto updates = random_updates(n, d, 77 * n + d);
    FlareAggregator naive_flare(FlareConfig{1.0});
    FlareAggregator fast_flare(FlareConfig{1.0});
    tensor::FlatVec naive_out, fast_out;
    {
      ImplGuard g(DefenseImpl::naive);
      naive_out = naive_flare.aggregate(updates, {});
    }
    {
      ImplGuard g(DefenseImpl::fast);
      fast_out = fast_flare.aggregate(updates, {});
    }
    ASSERT_EQ(naive_flare.last_trust().size(), fast_flare.last_trust().size());
    for (std::size_t i = 0; i < naive_flare.last_trust().size(); ++i) {
      EXPECT_NEAR(fast_flare.last_trust()[i], naive_flare.last_trust()[i],
                  1e-4)
          << "trust " << i << " n=" << n << " d=" << d;
    }
    ASSERT_EQ(naive_out.size(), fast_out.size());
    for (std::size_t j = 0; j < naive_out.size(); ++j) {
      EXPECT_NEAR(fast_out[j], naive_out[j], 1e-4) << "coord " << j;
    }
  }
}

TEST(DefenseKernelAggregator, CoordinateAggregatorsBitIdenticalWithPool) {
  // The NVI entry point with a pool must agree bit-exactly with the
  // pool-less call for the coordinate-wise aggregators.
  const auto updates = random_updates(11, 450, 555);
  runtime::ThreadPool pool(4);
  CoordMedianAggregator median;
  TrimmedMeanAggregator trimmed(0.2);
  RlrAggregator rlr(RlrConfig{2.0});
  SignSgdAggregator sign(SignSgdConfig{0.01});
  EXPECT_EQ(median.aggregate(updates, {}, &pool), median.aggregate(updates, {}));
  EXPECT_EQ(trimmed.aggregate(updates, {}, &pool),
            trimmed.aggregate(updates, {}));
  EXPECT_EQ(rlr.aggregate(updates, {}, &pool), rlr.aggregate(updates, {}));
  EXPECT_EQ(sign.aggregate(updates, {}, &pool), sign.aggregate(updates, {}));
}

sim::ExperimentConfig defense_sim_config(DefenseKind defense) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 10;
  cfg.samples_per_client = 30;
  cfg.rounds = 6;
  cfg.sample_prob = 0.6;
  cfg.compromised_fraction = 0.2;
  cfg.attack = sim::AttackKind::collapois;
  cfg.attack_start_round = 2;
  cfg.defense = defense;
  cfg.eval_every = 0;
  cfg.seed = 4242;
  return cfg;
}

TEST(DefenseKernelSim, CoordMedianExperimentBitIdenticalAcrossImpls) {
  sim::ExperimentConfig cfg = defense_sim_config(DefenseKind::coord_median);
  cfg.defense_impl = DefenseImpl::naive;
  const auto ref = sim::run_experiment(cfg);
  cfg.defense_impl = DefenseImpl::fast;
  const auto fast = sim::run_experiment(cfg);
  EXPECT_EQ(ref.final_global, fast.final_global);
}

TEST(DefenseKernelSim, KrumExperimentBitIdenticalAcrossImpls) {
  // Krum's distances only pick rows; as long as the selections survive the
  // gram-vs-naive rounding (they do — real updates are nowhere near tied),
  // the aggregates, and hence the whole trajectory, are bit-equal.
  sim::ExperimentConfig cfg = defense_sim_config(DefenseKind::krum);
  cfg.defense_impl = DefenseImpl::naive;
  const auto ref = sim::run_experiment(cfg);
  cfg.defense_impl = DefenseImpl::fast;
  const auto fast = sim::run_experiment(cfg);
  EXPECT_EQ(ref.final_global, fast.final_global);
}

}  // namespace
}  // namespace collapois::defense
