// The sharded aggregation tree and lazy population (src/agg/).
//
// The headline properties:
//  - shard invariance: for every defense that declares a sharding
//    capability, the sharded result is BIT-IDENTICAL to the flat path
//    for any shard count and any thread count — at the aggregator level
//    and through full experiments (sync and buffered-async engines);
//  - loud failure: the pairwise-distance rules (Krum, Multi-Krum, FLARE)
//    refuse to shard at construction time;
//  - lazy determinism: materialization order cannot matter, lazy runs
//    reproduce each other exactly, and checkpoint/resume under
//    sharding + laziness is bit-exact across thread counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "agg/lazy_federation.h"
#include "agg/lazy_population.h"
#include "agg/shard_plan.h"
#include "agg/sharded_aggregator.h"
#include "data/synthetic_text.h"
#include "defense/registry.h"
#include "fl/update_matrix.h"
#include "runtime/rss.h"
#include "runtime/thread_pool.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"

namespace collapois {
namespace {

class TempFile {
 public:
  explicit TempFile(std::string name)
      : path_(::testing::TempDir() + std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_bits_equal(const tensor::FlatVec& a, const tensor::FlatVec& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

std::vector<fl::ClientUpdate> synth_updates(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<fl::ClientUpdate> updates(n);
  for (std::size_t i = 0; i < n; ++i) {
    updates[i].client_id = i;
    updates[i].weight = 0.5 + rng.uniform();
    updates[i].delta.resize(d);
    for (float& v : updates[i].delta) {
      v = static_cast<float>(rng.normal());
    }
  }
  return updates;
}

// ---------------------------------------------------------------- ShardPlan

TEST(ShardPlan, BalancedContiguousAscending) {
  const auto plan = agg::plan_shards(13, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].begin, 0u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < plan.size(); ++s) {
    EXPECT_GT(plan[s].size(), 0u);
    if (s > 0) {
      EXPECT_EQ(plan[s].begin, plan[s - 1].end);
    }
    total += plan[s].size();
  }
  EXPECT_EQ(plan.back().end, 13u);
  EXPECT_EQ(total, 13u);
  // Sizes differ by at most one, larger ranges first: 4,3,3,3.
  EXPECT_EQ(plan[0].size(), 4u);
  EXPECT_EQ(plan[3].size(), 3u);
}

TEST(ShardPlan, ClampsAndEdgeCases) {
  EXPECT_EQ(agg::plan_shards(3, 8).size(), 3u);  // never an empty shard
  EXPECT_TRUE(agg::plan_shards(0, 4).empty());
  EXPECT_THROW(agg::plan_shards(5, 0), std::invalid_argument);
  const auto one = agg::plan_shards(7, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 7u);
}

// ------------------------------------------------------- aggregator level

// Every capability-declaring defense: sharded output must be bit-equal to
// the flat path for every shard count, over two consecutive rounds (the
// second round catches noise-RNG streams drifting out of sync).
TEST(ShardInvariance, EveryShardableDefenseBitEqualToFlat) {
  using defense::DefenseKind;
  const DefenseKind kinds[] = {
      DefenseKind::none,        DefenseKind::dp,
      DefenseKind::user_dp,     DefenseKind::norm_bound,
      DefenseKind::crfl,        DefenseKind::coord_median,
      DefenseKind::trimmed_mean, DefenseKind::rlr,
      DefenseKind::sign_sgd,    DefenseKind::ditto,
  };
  runtime::ThreadPool pool(3);
  const defense::DefenseParams params;
  const auto round1 = synth_updates(13, 37, 21);
  const auto round2 = synth_updates(13, 37, 22);
  tensor::FlatVec global(37, 0.25f);
  for (DefenseKind kind : kinds) {
    SCOPED_TRACE(defense::defense_name(kind));
    auto flat = defense::make_defense(kind, params, stats::Rng(99));
    const auto flat1 = flat->aggregate(round1, global);
    const auto flat2 = flat->aggregate(round2, global);
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(shards);
      agg::ShardedAggregator sharded(
          defense::make_defense(kind, params, stats::Rng(99)), shards);
      EXPECT_NE(sharded.shard_capability(), fl::ShardCapability::cohort_only);
      expect_bits_equal(flat1, sharded.aggregate(round1, global, &pool));
      expect_bits_equal(flat2, sharded.aggregate(round2, global, &pool));
    }
  }
}

TEST(ShardInvariance, ThreadCountDoesNotChangeShardedResult) {
  const auto updates = synth_updates(9, 41, 5);
  tensor::FlatVec global(41, -0.5f);
  const defense::DefenseParams params;
  agg::ShardedAggregator seq(
      defense::make_defense(defense::DefenseKind::trimmed_mean, params,
                            stats::Rng(4)),
      4);
  const auto sequential = seq.aggregate(updates, global, nullptr);
  runtime::ThreadPool pool(4);
  agg::ShardedAggregator par(
      defense::make_defense(defense::DefenseKind::trimmed_mean, params,
                            stats::Rng(4)),
      4);
  expect_bits_equal(sequential, par.aggregate(updates, global, &pool));
}

TEST(ShardedAggregator, CohortOnlyRulesFailLoudlyBeyondOneShard) {
  using defense::DefenseKind;
  const defense::DefenseParams params;
  for (DefenseKind kind :
       {DefenseKind::krum, DefenseKind::multi_krum, DefenseKind::flare}) {
    SCOPED_TRACE(defense::defense_name(kind));
    try {
      agg::ShardedAggregator bad(
          defense::make_defense(kind, params, stats::Rng(1)), 2);
      FAIL() << "expected the cohort_only constructor throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("cohort_only"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("--shards 1"), std::string::npos);
    }
    // One shard is the flat path and stays legal for every rule.
    agg::ShardedAggregator one(
        defense::make_defense(kind, params, stats::Rng(7)), 1);
    auto flat = defense::make_defense(kind, params, stats::Rng(7));
    const auto updates = synth_updates(6, 17, 3);
    expect_bits_equal(flat->aggregate(updates, {}),
                      one.aggregate(updates, {}));
  }
}

TEST(ShardedAggregator, ConstructionValidationAndTransparency) {
  EXPECT_THROW(agg::ShardedAggregator(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(
      agg::ShardedAggregator(
          defense::make_defense(defense::DefenseKind::none, {}, stats::Rng(1)),
          0),
      std::invalid_argument);
  agg::ShardedAggregator wrapped(
      defense::make_defense(defense::DefenseKind::coord_median, {},
                            stats::Rng(1)),
      4);
  EXPECT_EQ(wrapped.name(), "coord-median");  // transparent to telemetry
  EXPECT_EQ(wrapped.shards(), 4u);
}

// ------------------------------------------------------------ full system

sim::ExperimentConfig scale_cfg() {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.attack = sim::AttackKind::collapois;
  cfg.n_clients = 40;
  cfg.samples_per_client = 30;
  cfg.sample_prob = 0.3;
  cfg.rounds = 4;
  cfg.attack_start_round = 1;
  cfg.eval_max_clients = 8;
  cfg.threads = 1;
  cfg.seed = 11;
  return cfg;
}

void expect_same_outcome(const sim::ExperimentResult& a,
                         const sim::ExperimentResult& b) {
  expect_bits_equal(a.final_global, b.final_global);
  ASSERT_EQ(a.final_evals.size(), b.final_evals.size());
  for (std::size_t i = 0; i < a.final_evals.size(); ++i) {
    EXPECT_EQ(a.final_evals[i].client_index, b.final_evals[i].client_index);
    EXPECT_EQ(a.final_evals[i].benign_ac, b.final_evals[i].benign_ac);
    EXPECT_EQ(a.final_evals[i].attack_sr, b.final_evals[i].attack_sr);
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t t = 0; t < a.rounds.size(); ++t) {
    EXPECT_EQ(a.rounds[t].distance_to_x, b.rounds[t].distance_to_x);
  }
}

TEST(ShardInvariance, FullExperimentAcrossShardAndThreadCounts) {
  for (defense::DefenseKind kind :
       {defense::DefenseKind::trimmed_mean, defense::DefenseKind::dp}) {
    SCOPED_TRACE(defense::defense_name(kind));
    auto cfg = scale_cfg();
    cfg.defense = kind;
    const auto flat = sim::run_experiment(cfg);
    for (std::size_t shards : {2u, 4u}) {
      for (std::size_t threads : {1u, 4u}) {
        SCOPED_TRACE(shards);
        SCOPED_TRACE(threads);
        auto scfg = cfg;
        scfg.shards = shards;
        scfg.threads = threads;
        expect_same_outcome(flat, sim::run_experiment(scfg));
      }
    }
  }
}

TEST(ShardInvariance, BufferedAsyncEngineShardsBitEqual) {
  auto cfg = scale_cfg();
  cfg.defense = defense::DefenseKind::sign_sgd;
  cfg.round_engine = fl::RoundEngineKind::buffered_async;
  const auto flat = sim::run_experiment(cfg);
  auto scfg = cfg;
  scfg.shards = 4;
  scfg.threads = 4;
  expect_same_outcome(flat, sim::run_experiment(scfg));
}

TEST(ShardInvariance, KrumExperimentRejectsSharding) {
  auto cfg = scale_cfg();
  cfg.defense = defense::DefenseKind::krum;
  cfg.shards = 2;
  EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
}

TEST(Scale, RunnerValidatesTopology) {
  {
    auto cfg = scale_cfg();
    cfg.shards = 0;
    EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
  }
  {
    auto cfg = scale_cfg();
    cfg.shards = cfg.n_clients + 1;
    EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
  }
  {
    auto cfg = scale_cfg();
    cfg.algorithm = sim::AlgorithmKind::metafed;
    cfg.attack = sim::AttackKind::none;
    cfg.defense = defense::DefenseKind::none;
    cfg.shards = 2;
    EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
  }
  {
    auto cfg = scale_cfg();
    cfg.lazy_clients = true;
    cfg.eval_max_clients = 0;  // would materialize the whole population
    EXPECT_THROW(sim::run_experiment(cfg), std::invalid_argument);
  }
}

// ------------------------------------------------------------- lazy layer

TEST(LazySeeds, DerivedSeedsAreOrderFreeAndDistinct) {
  std::vector<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen.push_back(agg::derive_client_seed(42, i));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_NE(agg::derive_client_seed(1, 0), agg::derive_client_seed(2, 0));
  EXPECT_EQ(agg::derive_client_seed(42, 7), agg::derive_client_seed(42, 7));
}

TEST(LazyFederation, CachesSplitsAndIgnoresMaterializationOrder) {
  data::SyntheticTextConfig tcfg;
  auto factory = agg::make_dirichlet_split_factory(
      data::SyntheticTextGenerator(tcfg, 5), 5, 24, 1.0);
  agg::LazyFederation fed(10, tcfg.num_classes, factory);
  EXPECT_EQ(fed.materialized(), 0u);
  const auto& a = fed.client_data(3);
  EXPECT_EQ(&a, &fed.client_data(3));  // cached, stable reference
  EXPECT_EQ(fed.materialized(), 1u);
  EXPECT_GT(a.train.size(), 0u);
  EXPECT_THROW(fed.client_data(10), std::out_of_range);

  // A second federation materialized in a different order produces the
  // same client data: per-client derived seeds, not a shared stream.
  agg::LazyFederation fed2(10, tcfg.num_classes, factory);
  (void)fed2.client_data(7);
  EXPECT_EQ(fed.client_histogram(3), fed2.client_histogram(3));

  const auto hist = fed.client_histogram(3);
  const double total = std::accumulate(hist.begin(), hist.end(), 0.0);
  EXPECT_EQ(total, static_cast<double>(a.train.size() + a.test.size() +
                                       a.validation.size()));
}

class StubClient final : public fl::Client {
 public:
  explicit StubClient(std::size_t id) : id_(id) {}
  std::size_t id() const override { return id_; }
  fl::ClientUpdate compute_update(const fl::RoundContext&) override {
    return {};
  }
  void distill_round(nn::Model&, nn::Model&) override {}
  void save_state(fl::StateWriter& w) const override { w.write_u64(counter); }
  void load_state(fl::StateReader& r) override { counter = r.read_u64(); }

  std::uint64_t counter = 0;

 private:
  std::size_t id_;
};

TEST(LazyPopulation, MaterializesOnDemandAndRoundTripsState) {
  std::size_t built = 0;
  auto factory = [&built](std::size_t i) {
    ++built;
    return std::make_unique<StubClient>(i);
  };
  agg::LazyClientPopulation pop(100, factory);
  EXPECT_EQ(pop.size(), 100u);
  EXPECT_EQ(pop.materialized(), 0u);
  static_cast<StubClient&>(pop.client(7)).counter = 70;
  static_cast<StubClient&>(pop.client(3)).counter = 30;
  EXPECT_EQ(&pop.client(7), &pop.client(7));
  EXPECT_EQ(pop.materialized(), 2u);
  EXPECT_EQ(built, 2u);
  EXPECT_THROW(pop.client(100), std::out_of_range);

  // Checkpoint stores only the materialized subset; restore materializes
  // exactly those clients and their evolved state.
  fl::StateWriter w;
  pop.save_state(w);
  agg::LazyClientPopulation restored(100, factory);
  fl::StateReader r(w.bytes());
  restored.load_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.materialized(), 2u);
  EXPECT_EQ(static_cast<StubClient&>(restored.client(3)).counter, 30u);
  EXPECT_EQ(static_cast<StubClient&>(restored.client(7)).counter, 70u);
}

TEST(LazyPopulation, RejectsBadConstructionAndBlobs) {
  auto factory = [](std::size_t i) { return std::make_unique<StubClient>(i); };
  EXPECT_THROW(agg::LazyClientPopulation(0, factory), std::invalid_argument);
  EXPECT_THROW(agg::LazyClientPopulation(3, nullptr), std::invalid_argument);
  agg::LazyClientPopulation small(2, factory);
  fl::StateWriter w;
  w.write_size(1);
  w.write_size(5);  // out-of-range client index
  fl::StateReader r(w.bytes());
  EXPECT_THROW(small.load_state(r), std::runtime_error);
}

sim::ExperimentConfig lazy_cfg() {
  auto cfg = scale_cfg();
  cfg.n_clients = 400;
  cfg.sample_prob = 0.02;
  cfg.lazy_clients = true;
  cfg.eval_max_clients = 12;
  return cfg;
}

TEST(LazyPopulation, FullExperimentMaterializesOnlyParticipants) {
  auto cfg = lazy_cfg();
  cfg.defense = defense::DefenseKind::coord_median;
  const auto result = sim::run_experiment(cfg);
  ASSERT_FALSE(result.rounds.empty());
  const auto& last = result.rounds.back();
  EXPECT_GT(last.n_materialized, 0u);
  EXPECT_LT(last.n_materialized, cfg.n_clients);
  // Materialization only grows.
  for (std::size_t t = 1; t < result.rounds.size(); ++t) {
    EXPECT_GE(result.rounds[t].n_materialized,
              result.rounds[t - 1].n_materialized);
  }
}

TEST(LazyPopulation, RunsAreDeterministicAndShardInvariant) {
  auto cfg = lazy_cfg();
  cfg.defense = defense::DefenseKind::trimmed_mean;
  const auto once = sim::run_experiment(cfg);
  expect_same_outcome(once, sim::run_experiment(cfg));
  auto scfg = cfg;
  scfg.shards = 4;
  scfg.threads = 4;
  expect_same_outcome(once, sim::run_experiment(scfg));
}

TEST(LazyPopulation, ShardedCheckpointResumeBitExactAcrossThreads) {
  auto cfg = lazy_cfg();
  cfg.defense = defense::DefenseKind::rlr;
  cfg.shards = 2;
  cfg.rounds = 6;
  const auto straight = sim::run_experiment(cfg);

  TempFile ck("agg_lazy_resume.ckpt");
  sim::RunOptions save;
  save.checkpoint_save_path = ck.path();
  save.checkpoint_round = 3;
  (void)sim::run_experiment(cfg, save);

  sim::RunOptions load;
  load.checkpoint_load_path = ck.path();
  auto rcfg = cfg;
  rcfg.threads = 2;  // thread count is outside the determinism surface
  const auto resumed = sim::run_experiment(rcfg, load);
  // A resumed run only records the rounds it executed itself.
  EXPECT_EQ(resumed.rounds.size(), cfg.rounds - 3);
  expect_bits_equal(straight.final_global, resumed.final_global);
  ASSERT_EQ(straight.final_evals.size(), resumed.final_evals.size());
  for (std::size_t i = 0; i < straight.final_evals.size(); ++i) {
    EXPECT_EQ(straight.final_evals[i].benign_ac,
              resumed.final_evals[i].benign_ac);
    EXPECT_EQ(straight.final_evals[i].attack_sr,
              resumed.final_evals[i].attack_sr);
  }
}

TEST(Scale, ResumeRejectsChangedTopology) {
  auto cfg = scale_cfg();
  cfg.defense = defense::DefenseKind::coord_median;
  cfg.rounds = 4;
  TempFile ck("agg_scale_mismatch.ckpt");
  sim::RunOptions save;
  save.checkpoint_save_path = ck.path();
  save.checkpoint_round = 2;
  (void)sim::run_experiment(cfg, save);

  sim::RunOptions load;
  load.checkpoint_load_path = ck.path();
  {
    auto bad = cfg;
    bad.shards = 2;
    try {
      (void)sim::run_experiment(bad, load);
      FAIL() << "expected the scale-topology mismatch throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--shards"), std::string::npos);
    }
  }
  {
    auto bad = cfg;
    bad.lazy_clients = true;
    bad.eval_max_clients = 8;
    EXPECT_THROW(sim::run_experiment(bad, load), std::invalid_argument);
  }
  // The unchanged topology still resumes.
  (void)sim::run_experiment(cfg, load);
}

TEST(Scale, FingerprintSeparatesTopologiesOnly) {
  const auto base = scale_cfg();
  auto same = base;
  same.seed = 999;  // identity fields live in config_fingerprint, not here
  EXPECT_EQ(sim::scale_fingerprint(base), sim::scale_fingerprint(same));
  auto sharded = base;
  sharded.shards = 2;
  EXPECT_NE(sim::scale_fingerprint(base), sim::scale_fingerprint(sharded));
  auto lazy = base;
  lazy.lazy_clients = true;
  EXPECT_NE(sim::scale_fingerprint(base), sim::scale_fingerprint(lazy));
}

// --------------------------------------------------------- rss + matrix

TEST(Rss, ProbesReportPlausibleValues) {
  const std::size_t cur = runtime::current_rss_bytes();
  const std::size_t peak = runtime::peak_rss_bytes();
  if (peak == 0) GTEST_SKIP() << "/proc/self/status unavailable";
  EXPECT_GT(cur, 0u);
  EXPECT_LE(cur, peak);
  // Touching a fresh allocation can only raise the high-water mark.
  std::vector<char> ballast(8u << 20, 1);
  EXPECT_GE(runtime::peak_rss_bytes(), peak);
  EXPECT_NE(ballast[4 << 20], 0);
}

TEST(UpdateMatrix, PackReusesCapacityAcrossRounds) {
  auto first = synth_updates(5, 16, 31);
  fl::UpdateMatrix m;
  m.reserve(8, 16);
  m.pack(first);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 16u);
  const float* buffer = m.data();
  auto second = synth_updates(8, 16, 32);
  m.pack(second);  // fits the reserved capacity: no reallocation
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.data(), buffer);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(std::memcmp(m.row(i).data(), second[i].delta.data(),
                          16 * sizeof(float)),
              0);
  }
}

TEST(UpdateMatrix, PackColumnsSlicesExactly) {
  auto updates = synth_updates(4, 20, 33);
  fl::UpdateMatrix slice;
  slice.pack_columns(updates, 6, 15);
  EXPECT_EQ(slice.rows(), 4u);
  EXPECT_EQ(slice.cols(), 9u);
  for (std::size_t i = 0; i < 4; ++i) {
    double sq = 0.0;
    for (std::size_t j = 0; j < 9; ++j) {
      const float v = updates[i].delta[6 + j];
      EXPECT_EQ(slice.row(i)[j], v);
      sq += static_cast<double>(v) * static_cast<double>(v);
    }
    EXPECT_EQ(slice.row_sqnorm(i), sq);
  }
  EXPECT_THROW(slice.pack_columns({}, 0, 1), std::invalid_argument);
  EXPECT_THROW(slice.pack_columns(updates, 10, 6), std::invalid_argument);
  EXPECT_THROW(slice.pack_columns(updates, 0, 21), std::invalid_argument);
}

}  // namespace
}  // namespace collapois
