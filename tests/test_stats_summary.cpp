// Tests for descriptive statistics and the streaming Welford accumulator.
#include <gtest/gtest.h>

#include <vector>

#include "stats/summary.h"

namespace collapois::stats {
namespace {

TEST(Summary, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.0}), 7.0);
}

TEST(Summary, VarianceUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known: population variance 4, sample variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Summary, StddevIsSqrtVariance) {
  const std::vector<double> xs = {1.0, 3.0, 5.0};
  EXPECT_NEAR(stddev(xs) * stddev(xs), variance(xs), 1e-12);
}

TEST(Summary, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Summary, QuantileInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Summary, QuantileClampsQ) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(Summary, MinMax) {
  const std::vector<double> xs = {4.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 9.0);
}

TEST(Summary, SummarizeConsistency) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs = {1.5, -2.0, 0.25, 8.0, 3.0, 3.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(4.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 20.0, 30.0, 40.0};
  RunningStats ra;
  for (double x : a) ra.add(x);
  RunningStats rb;
  for (double x : b) rb.add(x);
  ra.merge(rb);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_EQ(ra.count(), all.size());
  EXPECT_NEAR(ra.mean(), mean(all), 1e-12);
  EXPECT_NEAR(ra.variance(), variance(all), 1e-12);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats ra;
  ra.add(1.0);
  ra.add(2.0);
  RunningStats empty;
  ra.merge(empty);
  EXPECT_EQ(ra.count(), 2u);
  RunningStats rb;
  rb.merge(ra);
  EXPECT_EQ(rb.count(), 2u);
  EXPECT_NEAR(rb.mean(), 1.5, 1e-12);
}

}  // namespace
}  // namespace collapois::stats
