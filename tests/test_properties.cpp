// Cross-cutting property sweeps (parameterized): invariants that must
// hold over whole regions of the configuration space rather than at
// hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/collapois_client.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "defense/registry.h"
#include "metrics/client_metrics.h"
#include "nn/zoo.h"
#include "stats/geometry.h"
#include "trojan/warp_trigger.h"

namespace collapois {
namespace {

// ---------------------------------------------------------------------
// WarpTrigger: for any (strength, seed), warping is deterministic, shape
// preserving, and its distortion grows with strength.
class WarpSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(WarpSweep, DeterministicShapePreservingMonotone) {
  const auto [strength, seed] = GetParam();
  trojan::WarpConfig cfg;
  cfg.strength = strength;
  trojan::WarpTrigger a(cfg, seed);
  trojan::WarpTrigger b(cfg, seed);

  stats::Rng rng(3);
  data::SyntheticImageGenerator gen({}, 4);
  const auto e = gen.sample(2, rng);
  const tensor::Tensor wa = a.apply(e.x);
  EXPECT_EQ(wa.shape(), e.x.shape());
  EXPECT_EQ(wa.storage(), b.apply(e.x).storage());

  // Distortion at double the strength is at least as large.
  trojan::WarpConfig stronger = cfg;
  stronger.strength = strength * 2.0;
  trojan::WarpTrigger s(stronger, seed);
  EXPECT_GE(s.distortion(e.x).l2 + 1e-9, a.distortion(e.x).l2 * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Warps, WarpSweep,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0, 2.0),
                       ::testing::Values(1ULL, 99ULL)));

// ---------------------------------------------------------------------
// LeNet factory: every config in the sweep produces the right logit shape
// and a consistent flat-parameter round trip.
struct LeNetCase {
  std::size_t hw;
  std::size_t classes;
  std::size_t c1;
  std::size_t c2;
};

class LeNetSweep : public ::testing::TestWithParam<LeNetCase> {};

TEST_P(LeNetSweep, ShapesAndRoundTrip) {
  const LeNetCase c = GetParam();
  stats::Rng rng(5);
  nn::Model m = nn::make_lenet_small({.height = c.hw,
                                      .width = c.hw,
                                      .num_classes = c.classes,
                                      .conv1_channels = c.c1,
                                      .conv2_channels = c.c2,
                                      .hidden = 8});
  m.init(rng);
  tensor::Tensor x({2, 1, c.hw, c.hw});
  for (auto& v : x.storage()) v = static_cast<float>(rng.uniform());
  const tensor::Tensor y = m.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, c.classes}));
  const tensor::FlatVec p = m.get_parameters();
  m.set_parameters(p);
  EXPECT_EQ(m.get_parameters(), p);
}

INSTANTIATE_TEST_SUITE_P(Configs, LeNetSweep,
                         ::testing::Values(LeNetCase{8, 4, 2, 3},
                                           LeNetCase{16, 10, 4, 8},
                                           LeNetCase{12, 3, 1, 1},
                                           LeNetCase{16, 2, 8, 4}));

// ---------------------------------------------------------------------
// CollaPois blending: mimic_benign_norm pins the transmitted norm to the
// clean-gradient norm for any blend fraction.
class BlendSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlendSweep, MimickedNormMatchesCleanGradient) {
  const double blend = GetParam();
  stats::Rng rng(6);
  data::SyntheticTextGenerator gen({}, 7);
  const std::vector<std::size_t> counts = {20, 20};
  data::Dataset local = gen.generate(counts, rng);
  nn::Model model = nn::make_mlp_head({.input_dim = 32, .hidden = 8,
                                       .num_classes = 2,
                                       .num_hidden_layers = 1});
  model.init(rng);
  const nn::SgdConfig sgd{.learning_rate = 0.05, .batch_size = 16,
                          .epochs = 1};
  const tensor::FlatVec global = model.get_parameters();
  tensor::FlatVec x = global;
  for (auto& v : x) v += 1.0f;  // X far away: raw pull would be huge

  // Reference clean-gradient norm from an identical benign client (same
  // RNG stream as the dormant behaviour below).
  stats::Rng seed_rng(42);
  fl::BenignClient ref(0, &local, model, sgd, 0.5, stats::Rng(777));
  fl::RoundContext ctx{0, global};
  const double clean_norm = stats::l2_norm(ref.compute_update(ctx).delta);

  core::CollaPoisConfig cfg;
  cfg.blend_fraction = blend;
  cfg.mimic_benign_norm = true;
  auto dormant = std::make_unique<fl::BenignClient>(0, &local, model, sgd,
                                                    0.5, stats::Rng(777));
  core::CollaPoisClient client(0, x, cfg, stats::Rng(8), std::move(dormant));
  const fl::ClientUpdate u = client.compute_update(ctx);
  EXPECT_NEAR(stats::l2_norm(u.delta), clean_norm, clean_norm * 0.05)
      << "blend=" << blend;
}

INSTANTIATE_TEST_SUITE_P(Blends, BlendSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.9));

TEST(Blend, RequiresDormantBehaviour) {
  core::CollaPoisConfig cfg;
  cfg.blend_fraction = 0.3;
  EXPECT_THROW(core::CollaPoisClient(0, tensor::FlatVec(4, 1.0f), cfg,
                                     stats::Rng(1)),
               std::invalid_argument);
  cfg.blend_fraction = 1.0;  // out of [0, 1)
  EXPECT_THROW(core::CollaPoisClient(0, tensor::FlatVec(4, 1.0f), cfg,
                                     stats::Rng(1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Aggregator fixed point: when every client submits the same update, any
// mean-like aggregation rule must return exactly that update.
class FixedPointSweep
    : public ::testing::TestWithParam<defense::DefenseKind> {};

TEST_P(FixedPointSweep, IdenticalUpdatesPassThrough) {
  defense::DefenseParams params;
  params.noise_multiplier = 0.0;
  params.noise_std = 0.0;
  params.clip = 100.0;  // above the update norm: clipping inactive
  auto agg = defense::make_defense(GetParam(), params, stats::Rng(9));
  std::vector<fl::ClientUpdate> updates(5);
  for (std::size_t i = 0; i < 5; ++i) {
    updates[i].client_id = i;
    updates[i].delta = {0.5f, -0.25f, 0.0f, 1.5f};
  }
  const tensor::FlatVec global(4, 0.0f);
  const auto out = agg->aggregate(updates, global);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out[j], updates[0].delta[j], 1e-5) << "coord " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeanLike, FixedPointSweep,
    ::testing::Values(defense::DefenseKind::none, defense::DefenseKind::dp,
                      defense::DefenseKind::norm_bound,
                      defense::DefenseKind::krum,
                      defense::DefenseKind::multi_krum,
                      defense::DefenseKind::coord_median,
                      defense::DefenseKind::trimmed_mean,
                      defense::DefenseKind::rlr, defense::DefenseKind::flare,
                      defense::DefenseKind::crfl));

// ---------------------------------------------------------------------
// Dirichlet partition conservation: for any alpha, partitioning preserves
// the total label histogram exactly.
class PartitionSweep : public ::testing::TestWithParam<double> {};

TEST_P(PartitionSweep, LabelMassConserved) {
  const double alpha = GetParam();
  stats::Rng rng(10);
  data::SyntheticImageGenerator gen({}, 11);
  std::vector<std::size_t> counts(10, 30);
  const data::Dataset d = gen.generate(counts, rng);
  const auto parts = data::partition_dirichlet(d, 7, alpha, rng);
  std::vector<double> total(10, 0.0);
  for (const auto& p : parts) {
    const auto h = p.label_histogram();
    for (std::size_t c = 0; c < 10; ++c) total[c] += h[c];
  }
  EXPECT_EQ(total, d.label_histogram());
}

INSTANTIATE_TEST_SUITE_P(Alphas, PartitionSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0));

// ---------------------------------------------------------------------
// Eq. 8 score is permutation-consistent: shuffling evaluation order never
// changes the top-k composition.
TEST(Metrics, ScoreOrderingStableUnderShuffle) {
  // (covered structurally in metrics tests; here: score() is pure.)
  metrics::ClientEval a;
  a.benign_ac = 0.7;
  a.attack_sr = 0.2;
  EXPECT_DOUBLE_EQ(a.score(), 0.9);
}

}  // namespace
}  // namespace collapois
