// Tests for the targeted "semi-ready" CollaPois extension (Discussion
// section): high-value target selection, auxiliary-data re-weighting,
// and the drift-triggered activation logic.
#include <gtest/gtest.h>

#include "core/targeted.h"
#include "data/synthetic_text.h"
#include "fl/client.h"
#include "nn/zoo.h"
#include "stats/geometry.h"

namespace collapois::core {
namespace {

TEST(TargetSelection, PicksClosestHistograms) {
  const std::vector<std::vector<double>> hists = {
      {10.0, 0.0},  // exactly the reference mix
      {0.0, 10.0},  // opposite
      {8.0, 2.0},   // close
      {5.0, 5.0},   // middling
  };
  const std::vector<double> reference = {10.0, 0.0};
  const auto top = select_high_value_targets(hists, reference, 0.5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 2u);
}

TEST(TargetSelection, FractionBoundsAndValidation) {
  const std::vector<std::vector<double>> hists = {{1.0}, {2.0}, {3.0}};
  const std::vector<double> ref = {1.0};
  EXPECT_EQ(select_high_value_targets(hists, ref, 0.01).size(), 1u);
  EXPECT_EQ(select_high_value_targets(hists, ref, 1.0).size(), 3u);
  EXPECT_THROW(select_high_value_targets(hists, ref, 0.0),
               std::invalid_argument);
  EXPECT_THROW(select_high_value_targets(hists, ref, 1.5),
               std::invalid_argument);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(select_high_value_targets(hists, wrong, 0.5),
               std::invalid_argument);
  EXPECT_TRUE(select_high_value_targets({}, ref, 0.5).empty());
}

TEST(Reweight, MatchesTargetDistribution) {
  stats::Rng rng(1);
  data::SyntheticTextGenerator gen({}, 2);
  const std::vector<std::size_t> counts = {50, 50};
  const data::Dataset aux = gen.generate(counts, rng);
  const std::vector<double> target = {9.0, 1.0};
  const data::Dataset re = reweight_to_distribution(aux, target, 1000, rng);
  EXPECT_EQ(re.size(), 1000u);
  const auto hist = re.label_histogram();
  EXPECT_NEAR(hist[0] / 1000.0, 0.9, 0.05);
  EXPECT_NEAR(hist[1] / 1000.0, 0.1, 0.05);
}

TEST(Reweight, SkipsClassesTheAttackerLacks) {
  stats::Rng rng(3);
  data::SyntheticTextGenerator gen({}, 4);
  const std::vector<std::size_t> counts = {30, 0};  // no class-1 samples
  const data::Dataset aux = gen.generate(counts, rng);
  const std::vector<double> target = {1.0, 9.0};
  const data::Dataset re = reweight_to_distribution(aux, target, 100, rng);
  const auto hist = re.label_histogram();
  EXPECT_EQ(hist[1], 0.0);  // cannot fabricate class 1
  EXPECT_EQ(hist[0], 100.0);
}

TEST(Reweight, Validation) {
  stats::Rng rng(5);
  data::SyntheticTextGenerator gen({}, 6);
  const std::vector<std::size_t> counts = {5, 5};
  const data::Dataset aux = gen.generate(counts, rng);
  const std::vector<double> two = {1.0, 1.0};
  const std::vector<double> one = {1.0};
  EXPECT_THROW(reweight_to_distribution(data::Dataset(2), two, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(reweight_to_distribution(aux, one, 10, rng),
               std::invalid_argument);
}

class SemiReadyFixture : public ::testing::Test {
 protected:
  SemiReadyFixture() : rng_(7), gen_({}, 8) {
    const std::vector<std::size_t> counts = {20, 20};
    local_ = gen_.generate(counts, rng_);
    model_ = nn::make_mlp_head({.input_dim = 32, .hidden = 8,
                                .num_classes = 2, .num_hidden_layers = 1});
    model_.init(rng_);
    global_ = model_.get_parameters();
    x_ = global_;
    x_[0] += 5.0f;
    direction_.assign(global_.size(), 0.0f);
    direction_[1] = 1.0f;
  }

  std::unique_ptr<SemiReadyClient> make_client(SemiReadyConfig cfg) {
    auto dormant = std::make_unique<fl::BenignClient>(
        0, &local_, model_,
        nn::SgdConfig{.learning_rate = 0.05, .batch_size = 16, .epochs = 1},
        0.5, rng_.fork());
    auto attack = std::make_unique<CollaPoisClient>(
        0, tensor::FlatVec{}, CollaPoisConfig{}, rng_.fork(),
        std::move(dormant));
    return std::make_unique<SemiReadyClient>(std::move(attack), x_,
                                             direction_, cfg);
  }

  stats::Rng rng_;
  data::SyntheticTextGenerator gen_;
  data::Dataset local_;
  nn::Model model_;
  tensor::FlatVec global_;
  tensor::FlatVec x_;
  tensor::FlatVec direction_;
};

TEST_F(SemiReadyFixture, StaysDormantWithoutSignal) {
  auto client = make_client({.activation_cosine = 0.5,
                             .required_signals = 2,
                             .window = 4});
  // Global drifts orthogonally to the target direction: no activation.
  tensor::FlatVec g = global_;
  for (int r = 0; r < 6; ++r) {
    g[5] += 0.1f;  // orthogonal drift
    fl::RoundContext ctx{static_cast<std::size_t>(r), g};
    client->compute_update(ctx);
  }
  EXPECT_FALSE(client->activated());
}

TEST_F(SemiReadyFixture, ActivatesOnTargetAlignedDrift) {
  auto client = make_client({.activation_cosine = 0.5,
                             .required_signals = 2,
                             .window = 4});
  tensor::FlatVec g = global_;
  for (int r = 0; r < 4; ++r) {
    // Drift along -target_direction = cohort participating.
    g[1] -= 0.1f;
    fl::RoundContext ctx{static_cast<std::size_t>(r), g};
    client->compute_update(ctx);
  }
  EXPECT_TRUE(client->activated());
  // Once armed, updates pull toward the specialized X.
  fl::RoundContext ctx{10, global_};
  const fl::ClientUpdate u = client->compute_update(ctx);
  EXPECT_LT(u.delta[0], 0.0f);  // pulls coordinate 0 toward X's +5 offset
}

TEST_F(SemiReadyFixture, Validation) {
  EXPECT_THROW(SemiReadyClient(nullptr, x_, direction_, {}),
               std::invalid_argument);
  auto attack = std::make_unique<CollaPoisClient>(
      0, x_, CollaPoisConfig{}, rng_.fork());
  EXPECT_THROW(SemiReadyClient(std::move(attack), {}, direction_, {}),
               std::invalid_argument);
  auto attack2 = std::make_unique<CollaPoisClient>(
      0, x_, CollaPoisConfig{}, rng_.fork());
  EXPECT_THROW(SemiReadyClient(std::move(attack2), x_, direction_,
                               {.activation_cosine = 0.1,
                                .required_signals = 0,
                                .window = 4}),
               std::invalid_argument);
}

}  // namespace
}  // namespace collapois::core
