// Round-engine suite (fl/round_engine.h): the event-queue total order,
// engine selection/validation, buffered-async determinism across thread
// counts, the per-cycle accounting invariant with stale discards,
// mid-buffer checkpoint/resume, and the engine checkpoint fingerprint.
//
// Suite names (RoundEngine* / AsyncEngine*) are matched by the CI TSan
// job's regex — keep them if you rename tests.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fl/round_engine.h"
#include "net/event_queue.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"

namespace collapois {
namespace {

// --- event queue ---------------------------------------------------------

TEST(RoundEngineQueue, PopsInTotalKeyOrder) {
  net::EventQueue<int> q;
  // Same arrival time, different (round, seq): the tie-breaks decide.
  q.push({5.0, 2, 0}, 20);
  q.push({5.0, 1, 1}, 11);
  q.push({3.0, 7, 9}, 3);
  q.push({5.0, 1, 0}, 10);
  q.push({9.0, 0, 0}, 90);
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop().payload);
  EXPECT_EQ(order, (std::vector<int>{3, 10, 11, 20, 90}));
}

TEST(RoundEngineQueue, ForEachSortedVisitsKeyOrderWithoutDraining) {
  net::EventQueue<int> q;
  q.push({2.0, 0, 1}, 1);
  q.push({1.0, 0, 0}, 0);
  q.push({2.0, 0, 0}, 2);
  std::vector<int> seen;
  q.for_each_sorted([&](const net::EventQueue<int>::Event& e) {
    seen.push_back(e.payload);
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 1}));
  EXPECT_EQ(q.size(), 3u);  // non-destructive
  EXPECT_EQ(q.top().payload, 0);
}

TEST(RoundEngineQueue, VirtualClockIsMonotone) {
  net::VirtualClock clock;
  clock.advance_to(10.0);
  clock.advance_to(4.0);  // going backwards is a no-op
  EXPECT_EQ(clock.now_ms, 10.0);
  clock.advance_to(11.5);
  EXPECT_EQ(clock.now_ms, 11.5);
}

// --- engine selection ----------------------------------------------------

TEST(RoundEngineConfig, NamesAndParseRoundTrip) {
  EXPECT_STREQ(fl::round_engine_name(fl::RoundEngineKind::sync), "sync");
  EXPECT_STREQ(fl::round_engine_name(fl::RoundEngineKind::buffered_async),
               "buffered_async");
  EXPECT_EQ(fl::parse_round_engine("sync"), fl::RoundEngineKind::sync);
  EXPECT_EQ(fl::parse_round_engine("buffered_async"),
            fl::RoundEngineKind::buffered_async);
  EXPECT_THROW(fl::parse_round_engine("async"), std::invalid_argument);
}

TEST(RoundEngineConfig, AsyncRequiresAnActiveTrigger) {
  fl::AsyncConfig no_trigger;
  no_trigger.k = 0;
  no_trigger.t_ms = 0.0;
  EXPECT_THROW(fl::BufferedAsyncRoundEngine{no_trigger},
               std::invalid_argument);
  fl::AsyncConfig bad_t;
  bad_t.t_ms = -1.0;
  EXPECT_THROW(fl::BufferedAsyncRoundEngine{bad_t}, std::invalid_argument);
  fl::AsyncConfig time_only;
  time_only.k = 0;
  time_only.t_ms = 50.0;
  EXPECT_NO_THROW(fl::BufferedAsyncRoundEngine{time_only});
}

TEST(RoundEngineConfig, StaleDiscardedHasAName) {
  EXPECT_STREQ(fl::drop_reason_name(fl::DropReason::stale_discarded),
               "stale-discarded");
}

// --- experiment-level behavior -------------------------------------------

// Buffered-async campaign under combined churn: lossy high-jitter
// transport plus compute-layer stragglers, with a K trigger small enough
// that the buffer stays occupied across cycles (overlapping cohorts) and
// a staleness cutoff tight enough that discards occur.
sim::ExperimentConfig async_config() {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.n_clients = 12;
  cfg.samples_per_client = 40;
  cfg.rounds = 12;
  cfg.sample_prob = 0.5;
  cfg.compromised_fraction = 0.2;
  cfg.attack = sim::AttackKind::collapois;
  cfg.attack_start_round = 3;
  cfg.eval_every = 6;
  cfg.seed = 99;
  cfg.net.enabled = true;
  cfg.net.loss_prob = 0.1;
  cfg.net.latency_min_ms = 10.0;
  cfg.net.latency_max_ms = 120.0;
  cfg.faults.straggler_prob = 0.2;
  cfg.faults.straggler_staleness = 2;
  cfg.round_engine = fl::RoundEngineKind::buffered_async;
  cfg.async.k = 4;
  cfg.async.t_ms = 0.0;
  cfg.async.max_staleness = 3;
  return cfg;
}

void expect_async_rounds_identical(const sim::ExperimentResult& a,
                                   const sim::ExperimentResult& b) {
  ASSERT_EQ(a.final_global.size(), b.final_global.size());
  EXPECT_EQ(a.final_global, b.final_global);  // element-exact
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].n_accepted, b.rounds[i].n_accepted);
    EXPECT_EQ(a.rounds[i].n_dropped, b.rounds[i].n_dropped);
    EXPECT_EQ(a.rounds[i].n_rejected, b.rounds[i].n_rejected);
    EXPECT_EQ(a.rounds[i].n_stale_discarded, b.rounds[i].n_stale_discarded);
    EXPECT_EQ(a.rounds[i].n_dispatched, b.rounds[i].n_dispatched);
    EXPECT_EQ(a.rounds[i].n_buffered, b.rounds[i].n_buffered);
    EXPECT_EQ(a.rounds[i].virtual_now_ms, b.rounds[i].virtual_now_ms);
    EXPECT_EQ(a.rounds[i].staleness_hist, b.rounds[i].staleness_hist);
    EXPECT_EQ(a.rounds[i].cohort_size, b.rounds[i].cohort_size);
    EXPECT_EQ(a.rounds[i].transport.msgs_sent, b.rounds[i].transport.msgs_sent);
    EXPECT_EQ(a.rounds[i].transport.lost, b.rounds[i].transport.lost);
  }
}

TEST(AsyncEngine, ZeroLatencyNoFaultCyclesMatchSyncExactly) {
  // With the transport and faults off and both triggers admitting the
  // whole buffer each cycle, the async schedule degenerates to the sync
  // one: same sampling draws, same training, same admission order — the
  // final model must be ELEMENT-EXACT with the sync engine's.
  sim::ExperimentConfig sync_cfg;
  sync_cfg.dataset = sim::DatasetKind::sentiment_like;
  sync_cfg.n_clients = 10;
  sync_cfg.samples_per_client = 40;
  sync_cfg.rounds = 8;
  sync_cfg.sample_prob = 0.4;
  sync_cfg.compromised_fraction = 0.2;
  sync_cfg.attack = sim::AttackKind::collapois;
  sync_cfg.attack_start_round = 2;
  sync_cfg.seed = 7;

  sim::ExperimentConfig async_cfg = sync_cfg;
  async_cfg.round_engine = fl::RoundEngineKind::buffered_async;
  async_cfg.async.k = 0;      // no count trigger:
  async_cfg.async.t_ms = 1.0;  // drain everything that arrived

  const sim::ExperimentResult s = sim::run_experiment(sync_cfg);
  const sim::ExperimentResult a = sim::run_experiment(async_cfg);
  ASSERT_EQ(s.final_global.size(), a.final_global.size());
  EXPECT_EQ(s.final_global, a.final_global);
  ASSERT_EQ(s.rounds.size(), a.rounds.size());
  for (std::size_t i = 0; i < s.rounds.size(); ++i) {
    EXPECT_EQ(s.rounds[i].n_accepted, a.rounds[i].n_accepted);
    EXPECT_EQ(a.rounds[i].n_buffered, 0u);
  }
}

TEST(AsyncEngine, DeterministicAcrossThreadCounts) {
  sim::ExperimentConfig cfg = async_config();
  cfg.threads = 1;
  const sim::ExperimentResult t1 = sim::run_experiment(cfg);
  for (std::size_t threads : {2u, 4u, 8u}) {
    cfg.threads = threads;
    const sim::ExperimentResult tn = sim::run_experiment(cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_async_rounds_identical(t1, tn);
  }
}

TEST(AsyncEngine, InvariantHoldsEveryCycleAndStaleDiscardsAppear) {
  sim::ExperimentConfig cfg = async_config();
  sim::RunOptions opts;
  opts.keep_telemetry = true;
  const sim::ExperimentResult result = sim::run_experiment(cfg, opts);
  ASSERT_EQ(result.telemetry.size(), cfg.rounds);
  bool saw_stale_discard = false;
  bool saw_overlap = false;
  for (const auto& t : result.telemetry) {
    // Per-cycle invariant: every fate resolved this cycle lands in
    // exactly one bucket.
    EXPECT_EQ(t.cohort_size, t.sampled_ids.size() + t.dropped_ids.size() +
                                 t.rejected_ids.size());
    EXPECT_EQ(t.drop_reasons.size(), t.dropped_ids.size());
    for (fl::DropReason r : t.drop_reasons) {
      // No round deadline and no over-provisioning in async mode.
      EXPECT_NE(r, fl::DropReason::deadline);
      EXPECT_NE(r, fl::DropReason::excess);
      saw_stale_discard =
          saw_stale_discard || r == fl::DropReason::stale_discarded;
    }
    // The staleness histogram covers exactly the admitted updates.
    std::size_t hist_total = 0;
    for (std::size_t c : t.staleness_hist) hist_total += c;
    EXPECT_EQ(hist_total, t.sampled_ids.size());
    saw_overlap = saw_overlap || t.n_buffered > 0;
  }
  EXPECT_TRUE(saw_overlap) << "config never left updates in flight";
  EXPECT_TRUE(saw_stale_discard) << "config never hit the staleness cutoff";
  // The virtual clock is monotone across cycles.
  for (std::size_t i = 1; i < result.rounds.size(); ++i) {
    EXPECT_GE(result.rounds[i].virtual_now_ms,
              result.rounds[i - 1].virtual_now_ms);
  }
}

TEST(AsyncEngine, MetaFedRejectsTheAsyncEngine) {
  sim::ExperimentConfig cfg = async_config();
  cfg.algorithm = sim::AlgorithmKind::metafed;
  cfg.attack = sim::AttackKind::none;
  cfg.net.enabled = false;
  cfg.faults = fl::FaultConfig{};
  try {
    (void)sim::run_experiment(cfg);
    FAIL() << "MetaFed has no server round loop; async must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("round engine"), std::string::npos);
  }
}

// --- checkpoint/resume ---------------------------------------------------

TEST(AsyncEngineCheckpoint, MidBufferResumeIsBitExact) {
  sim::ExperimentConfig cfg = async_config();
  cfg.threads = 1;
  const sim::ExperimentResult straight = sim::run_experiment(cfg);

  const std::string path = ::testing::TempDir() + "async_resume_ck.bin";
  cfg.threads = 4;  // checkpoint at one thread count, resume at another
  sim::RunOptions save;
  save.checkpoint_save_path = path;
  save.checkpoint_round = cfg.rounds / 2;
  const sim::ExperimentResult partial = sim::run_experiment(cfg, save);
  ASSERT_EQ(partial.rounds.size(), cfg.rounds / 2);
  // The scenario of interest: the checkpoint lands MID-BUFFER, with
  // updates still in flight that the resumed run must admit.
  EXPECT_GT(partial.rounds.back().n_buffered, 0u)
      << "checkpoint round left no updates in flight — the mid-buffer "
         "path was not exercised";

  cfg.threads = 2;
  sim::RunOptions resume;
  resume.checkpoint_load_path = path;
  const sim::ExperimentResult resumed = sim::run_experiment(cfg, resume);
  std::remove(path.c_str());

  ASSERT_EQ(resumed.final_global.size(), straight.final_global.size());
  EXPECT_EQ(resumed.final_global, straight.final_global);
  ASSERT_EQ(resumed.rounds.size(), cfg.rounds - cfg.rounds / 2);
  for (std::size_t i = 0; i < resumed.rounds.size(); ++i) {
    const auto& sr = straight.rounds[cfg.rounds / 2 + i];
    const auto& rr = resumed.rounds[i];
    EXPECT_EQ(sr.n_accepted, rr.n_accepted);
    EXPECT_EQ(sr.n_stale_discarded, rr.n_stale_discarded);
    EXPECT_EQ(sr.n_buffered, rr.n_buffered);
    EXPECT_EQ(sr.virtual_now_ms, rr.virtual_now_ms);
    EXPECT_EQ(sr.staleness_hist, rr.staleness_hist);
  }
}

TEST(AsyncEngineCheckpoint, EngineFingerprintPinsTheAsyncKnobs) {
  sim::ExperimentConfig a;
  sim::ExperimentConfig b;
  b.async.k = 99;  // stale knob under the sync engine: no effect
  EXPECT_EQ(sim::engine_fingerprint(a), sim::engine_fingerprint(b));
  a.round_engine = fl::RoundEngineKind::buffered_async;
  b.round_engine = fl::RoundEngineKind::buffered_async;
  EXPECT_NE(sim::engine_fingerprint(a), sim::engine_fingerprint(b));
  b.async.k = a.async.k;
  EXPECT_EQ(sim::engine_fingerprint(a), sim::engine_fingerprint(b));
  b.async.t_ms = 25.0;
  EXPECT_NE(sim::engine_fingerprint(a), sim::engine_fingerprint(b));
  b.async.t_ms = a.async.t_ms;
  b.async.max_staleness += 1;
  EXPECT_NE(sim::engine_fingerprint(a), sim::engine_fingerprint(b));
}

TEST(AsyncEngineCheckpoint, ResumeUnderDifferentEngineFailsLoudly) {
  sim::ExperimentConfig cfg = async_config();
  const std::string path = ::testing::TempDir() + "async_mismatch_ck.bin";
  sim::RunOptions save;
  save.checkpoint_save_path = path;
  save.checkpoint_round = 3;
  (void)sim::run_experiment(cfg, save);

  sim::RunOptions resume;
  resume.checkpoint_load_path = path;

  // Same experiment, sync engine: must fail naming the round engine.
  sim::ExperimentConfig sync_cfg = cfg;
  sync_cfg.round_engine = fl::RoundEngineKind::sync;
  try {
    (void)sim::run_experiment(sync_cfg, resume);
    FAIL() << "resume under a different round engine must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("round engine"), std::string::npos);
  }

  // Same engine, different aggregation trigger: same loud failure.
  sim::ExperimentConfig changed_k = cfg;
  changed_k.async.k += 1;
  EXPECT_THROW((void)sim::run_experiment(changed_k, resume),
               std::invalid_argument);
  sim::ExperimentConfig changed_cutoff = cfg;
  changed_cutoff.async.max_staleness += 1;
  EXPECT_THROW((void)sim::run_experiment(changed_cutoff, resume),
               std::invalid_argument);

  // The unchanged config still resumes.
  const sim::ExperimentResult ok = sim::run_experiment(cfg, resume);
  EXPECT_EQ(ok.rounds.size(), cfg.rounds - 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace collapois
