// Durable rolling checkpoint chain (DESIGN.md §13).
//
// CheckpointStore wraps the checkpoint codec with the two durability
// properties a production trainer needs and a single file cannot give:
//
//  - atomic saves: every slot is written via temp + flush + fsync +
//    rename (save_checkpoint_file), so an unclean shutdown leaves either
//    the previous generation or the new one, never a torn file;
//  - a rolling keep-last-K chain: the head lives at `head_path`, older
//    generations at `head_path.1` .. `head_path.(K-1)` (rotated by
//    rename before each save). Recovery walks the chain newest-first
//    and resumes from the first slot whose digest verifies, counting
//    the damaged generations it skipped — so even a corrupted head
//    (chaos harness: a crash mid-save through the non-atomic
//    save_torn side door) costs at most K-1 checkpoint intervals, not
//    the run.
//
// Failure is loud: when no slot is intact, load_newest throws one
// std::runtime_error naming every file tried and why each was rejected.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/checkpoint.h"

namespace collapois::sim {

class CheckpointStore {
 public:
  // `head_path` is the newest-generation file; `keep_last` (>= 1) is the
  // chain length K. Throws std::invalid_argument on an empty path or
  // keep_last == 0.
  CheckpointStore(std::string head_path, std::size_t keep_last = 3);

  const std::string& head_path() const { return head_path_; }
  std::size_t keep_last() const { return keep_last_; }

  // The on-disk path of generation `age` (0 = head, 1 = previous, ...).
  std::string slot_path(std::size_t age) const;

  // Rotate the chain (head -> .1 -> ... -> .(K-1), oldest discarded) and
  // atomically write `ck` as the new head.
  void save(const Checkpoint& ck);

  // Chaos side door: rotate like save(), then write only the leading
  // `fraction` of the encoded image NON-atomically over the head — the
  // torn file an unclean shutdown mid-write leaves behind when the
  // atomic path is bypassed. Exists so tests and the chaos harness can
  // manufacture exactly the failure save() is designed to prevent.
  void save_torn(const Checkpoint& ck, double fraction);

  struct Recovery {
    Checkpoint checkpoint;
    // The slot the run actually resumed from.
    std::string path;
    // Slots newer than `path` that existed but failed verification.
    std::size_t discarded = 0;
  };

  // Walk the chain newest-first and return the first slot that decodes
  // cleanly. Missing slots are skipped silently (a short chain is
  // normal); existing-but-damaged slots are counted in `discarded`.
  // Throws std::runtime_error listing every rejected file and its
  // reason when no slot survives.
  Recovery load_newest() const;

 private:
  void rotate();

  std::string head_path_;
  std::size_t keep_last_;
};

}  // namespace collapois::sim
