// Deterministic crash injection for the chaos harness (DESIGN.md §13).
//
// A chaos run declares, up front, the exact round and phase at which the
// process "dies": the runner throws CrashInjected at that point instead
// of continuing, the CLI maps it to a distinct exit code, and the test /
// CI harness restarts the run from its checkpoint chain. Because the
// crash point is part of the configuration (not a signal race), the
// recovery property is exactly testable: resumed trajectory ==
// uninterrupted trajectory, bit for bit.
//
// Phases — where inside the round the crash lands:
//  - post_train: after the round's training + aggregation completed but
//    BEFORE any checkpoint of it was written; the round is lost and must
//    be recomputed from the previous checkpoint.
//  - mid_buffer: immediately AFTER the round's checkpoint was written —
//    under the buffered-async engine the newest checkpoint now carries
//    in-flight buffer state, which the resume must restore exactly.
//  - mid_save: DURING the checkpoint write of the round, through the
//    non-atomic side door (CheckpointStore::save_torn) — the head file
//    is left torn and recovery must fall back to the previous
//    generation.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace collapois::sim {

enum class CrashPhase { post_train, mid_buffer, mid_save };

// Sentinel for "no crash scheduled".
inline constexpr std::size_t kNoCrash = static_cast<std::size_t>(-1);

const char* crash_phase_name(CrashPhase phase);
// Parses "post-train" / "mid-buffer" / "mid-save"; throws
// std::invalid_argument naming the valid phases otherwise.
CrashPhase parse_crash_phase(const std::string& name);

// The scheduled crash firing. Deliberately NOT derived from the
// simulator's error taxonomy: callers that translate experiment errors
// into diagnostics must be able to tell "the experiment failed" from
// "the chaos schedule fired as configured".
class CrashInjected : public std::runtime_error {
 public:
  CrashInjected(std::size_t round, CrashPhase phase)
      : std::runtime_error("chaos: injected crash at round " +
                           std::to_string(round) + " (" +
                           crash_phase_name(phase) + ")"),
        round_(round),
        phase_(phase) {}

  std::size_t round() const { return round_; }
  CrashPhase phase() const { return phase_; }

 private:
  std::size_t round_;
  CrashPhase phase_;
};

}  // namespace collapois::sim
