// Experiment configuration: one struct describing a complete federated
// poisoning experiment (dataset, federation, algorithm, attack, defense,
// evaluation cadence). Every bench and example builds one of these and
// hands it to run_experiment().
#pragma once

#include <cstdint>
#include <string>

#include "agg/shard_faults.h"
#include "attacks/dba.h"
#include "attacks/dpois.h"
#include "attacks/mrepl.h"
#include "core/collapois_client.h"
#include "core/trojan_trainer.h"
#include "defense/defense_kernels.h"
#include "defense/registry.h"
#include "fl/faults.h"
#include "fl/server.h"
#include "kernels/kernels.h"
#include "net/network_model.h"
#include "nn/sgd.h"

namespace collapois::sim {

enum class DatasetKind {
  femnist_like,    // synthetic image task (FEMNIST substitute)
  sentiment_like,  // synthetic embedding task (Sentiment140 substitute)
};

enum class AlgorithmKind { fedavg, feddc, metafed };

enum class AttackKind { none, collapois, dpois, mrepl, dba };

const char* dataset_name(DatasetKind kind);
const char* algorithm_name(AlgorithmKind kind);
const char* attack_name(AttackKind kind);
DatasetKind parse_dataset(const std::string& name);
AlgorithmKind parse_algorithm(const std::string& name);
AttackKind parse_attack(const std::string& name);

struct ExperimentConfig {
  DatasetKind dataset = DatasetKind::femnist_like;
  AlgorithmKind algorithm = AlgorithmKind::fedavg;
  AttackKind attack = AttackKind::collapois;
  defense::DefenseKind defense = defense::DefenseKind::none;
  defense::DefenseParams defense_params;

  // Federation (paper: 3,400-5,600 clients; simulator defaults are sized
  // for a 1-core box — COLLAPOIS_SCALE in the benches scales them up).
  std::size_t n_clients = 100;
  std::size_t samples_per_client = 80;
  double alpha = 1.0;              // Dirichlet concentration
  double compromised_fraction = 0.05;
  double sample_prob = 0.05;       // q
  std::size_t rounds = 200;
  double server_lr = 1.0;          // lambda

  // The attacker's auxiliary set D_a. The threat model (Section IV-A)
  // defines D_a as the union of the compromised clients' local datasets;
  // Section V's implementation pools only their validation splits. At
  // simulator scale the validation pool of a 1%-compromised federation is
  // a handful of samples, so the default follows the threat model and
  // pools the full local data (set true to match Section V literally).
  bool aux_validation_only = false;

  // Local training (Algorithm 1 lines 7-10).
  nn::SgdConfig local_sgd{.learning_rate = 0.05,
                          .batch_size = 16,
                          .epochs = 1,
                          .weight_decay = 0.0,
                          .grad_clip = 0.0};
  double feddc_penalty = 0.1;
  double metafed_distill_weight = 0.5;

  // Attack parameters.
  int target_label = 0;
  // Round at which the attacker strikes. The X-based attacks (CollaPois,
  // MRepl) wait through `attack_start_round` warmup rounds, then train the
  // Trojaned model X warm-started from the observed global model theta^t
  // (compromised clients receive it) — attacking near convergence keeps X
  // inside the model's low-loss valley, which is what lets the pull
  // succeed without wrecking clean accuracy (Theorem 2's regime, and the
  // standard strike timing for replacement attacks [9]). While dormant,
  // compromised clients behave benignly on their own data. Data-poisoning
  // attacks (DPois, DBA) ignore this and poison from round 0.
  std::size_t attack_start_round = 20;
  core::CollaPoisConfig collapois;  // psi ~ U[0.9, 1] by default
  attacks::DPoisConfig dpois;
  attacks::MReplConfig mrepl{.boost = 0.0, .clip = 0.0};  // boost 0 = auto q*N
  attacks::DbaConfig dba;
  core::TrojanTrainConfig trojan_train;

  // Client fault injection (fl/faults.h): dropout / stragglers /
  // corrupted updates under production conditions. Server-mediated
  // algorithms only (MetaFed has no update channel to fault).
  fl::FaultConfig faults;
  // Simulated client->server transport (src/net/): message loss and
  // corruption, retry/backoff, round deadlines, over-provisioned
  // sampling. Disabled by default — when disabled the round loop is the
  // exact pre-transport code path. Server-mediated algorithms only
  // (MetaFed has no update channel to simulate a network on).
  net::NetConfig net;
  // Update codec the server offers on each transport link (net/codec.h,
  // DESIGN.md §15): identity (the default, bit-exact), fp16, int8, or
  // topk. Lossy codecs require the transport to be enabled — without a
  // wire there is nothing to compress. The codec config is part of the
  // checkpoint fingerprint (codec_fingerprint): quantization noise
  // shapes the trajectory, so cross-codec resume fails loudly.
  net::CodecConfig codec;
  // Server-side quarantine ceiling on the L2 norm of incoming updates
  // (0 disables; malformed updates are always quarantined).
  double update_norm_ceiling = 0.0;
  // Round engine (fl/round_engine.h): `sync` is the barrier loop the
  // paper evaluates (the exact pre-engine code path); `buffered_async`
  // admits updates as they arrive on the virtual clock and aggregates
  // every async.k admissions or every async.t_ms virtual-ms with
  // staleness-damped weights. Server-mediated algorithms only (MetaFed
  // has no server round loop to schedule).
  fl::RoundEngineKind round_engine = fl::RoundEngineKind::sync;
  fl::AsyncConfig async;

  // Cross-device scale-out (src/agg/, DESIGN.md §12).
  //
  // Shard count for the aggregation tree: the server partitions each
  // round's cohort across this many shard aggregators and combines the
  // results at the root. 1 = the flat path, byte-for-byte. Results are
  // bit-identical to flat for every defense that declares a sharding
  // capability (FedAvg and the coordinate-wise rules); the pairwise-
  // distance rules (Krum, Multi-Krum, FLARE) need the whole cohort and
  // fail loudly for shards > 1. Server-mediated algorithms only.
  std::size_t shards = 1;
  // Infrastructure fault injection inside the aggregation tree
  // (agg/shard_faults.h): shard crash / timeout / corrupt-partial faults
  // with bounded retry and bit-exact failover (DESIGN.md §13). Requires
  // shards > 1 — there is no tree to fault otherwise.
  agg::ShardFaultConfig shard_faults;
  // Materialize clients (and their synthetic local data) on first
  // sample instead of at startup, so memory follows the number of
  // distinct participants rather than the registered population. Lazy
  // runs are their own deterministic universe (per-client derived data
  // seeds — see agg/lazy_federation.h) and require eval_max_clients > 0
  // (evaluating all of a 10^6-client population would re-materialize
  // it). Server-mediated algorithms only.
  bool lazy_clients = false;

  // Evaluation.
  std::size_t eval_every = 0;        // 0 = final round only
  std::size_t eval_max_clients = 0;  // 0 = all (final eval is always all)

  // Worker threads for the parallel runtime (round-loop client dispatch
  // and the evaluation sweep; src/runtime/). 0 = auto (clamped
  // hardware_concurrency), 1 = sequential. Results are bit-identical for
  // any value — the thread count is deliberately EXCLUDED from the
  // checkpoint fingerprint, so a run checkpointed at one thread count can
  // resume at another.
  std::size_t threads = 0;

  // Compute-kernel set for the tensor math (src/kernels/): `blocked`
  // (im2col + packed GEMM, the default) or `naive` (reference loops).
  // The two sets differ in float rounding, so — unlike `threads` — the
  // kernel kind IS part of the checkpoint fingerprint; a checkpoint
  // written under one set cannot resume under the other.
  kernels::KernelKind kernels = kernels::KernelKind::blocked;

  // Defense-kernel set for the robust-aggregation hot loops
  // (src/defense/defense_kernels.h): `fast` (GEMM-based pairwise
  // distances + tiled coordinate rules, the default) or `naive` (the
  // sequential reference loops). The coordinate-wise rules are
  // bit-identical across sets, but the distance-based ones (Krum, FLARE)
  // round differently, so the impl is part of the checkpoint fingerprint
  // like `kernels`.
  defense::DefenseImpl defense_impl = defense::DefenseImpl::fast;

  std::uint64_t seed = 42;
};

}  // namespace collapois::sim
