// Experiment runner: wires data -> trojan -> clients -> attack -> defense
// -> federated algorithm, runs the round loop, and returns everything the
// benches and examples report (per-round telemetry, per-client final
// metrics, risk clusters, the Trojaned model X).
#pragma once

#include <optional>
#include <vector>

#include "fl/server.h"
#include "metrics/client_metrics.h"
#include "metrics/clusters.h"
#include "metrics/telemetry.h"
#include "sim/chaos.h"
#include "sim/config.h"

namespace collapois::sim {

struct RoundRecord {
  std::size_t round = 0;
  metrics::RoundAngleSummary angles;
  // ||theta^t - X|| after the round's update (0 when no attack / no X).
  double distance_to_x = 0.0;
  // Population metrics when eval_every hits this round.
  std::optional<metrics::PopulationMetrics> population;

  // Fault accounting for the round (see fl::RoundTelemetry).
  std::size_t n_accepted = 0;
  std::size_t n_dropped = 0;
  std::size_t n_rejected = 0;
  std::size_t n_stragglers = 0;
  bool aggregate_skipped = false;

  // Transport accounting (see net::TransportStats; all zero when the
  // transport layer is disabled). cohort_size is the sampled cohort
  // including over-provisioned extras; the invariant
  // cohort_size == n_accepted + n_dropped + n_rejected holds every round.
  std::size_t cohort_size = 0;
  net::TransportStats transport;

  // Buffered-async accounting (see fl::RoundTelemetry; zero/empty under
  // the sync engine except n_dispatched = cohort_size). n_stale_discarded
  // counts the DropReason::stale_discarded slice of n_dropped.
  std::size_t n_stale_discarded = 0;
  std::size_t n_dispatched = 0;
  std::size_t n_buffered = 0;
  double virtual_now_ms = 0.0;
  std::vector<std::size_t> staleness_hist;

  // Runtime telemetry (see fl::RoundTelemetry): round wall-clock, the
  // client-training slice of it, and trained-clients-per-second
  // throughput. Observability only — never part of determinism
  // comparisons or checkpoints.
  double wall_ms = 0.0;
  double train_ms = 0.0;
  // The server-side aggregation slice of wall_ms (the defense hot path).
  double agg_ms = 0.0;
  double clients_per_sec = 0.0;

  // Scale telemetry (see fl::RoundTelemetry): process peak RSS after the
  // round (runtime::peak_rss_bytes; 0 where /proc is unavailable) and the
  // number of clients instantiated so far (== n_clients for eager
  // populations). Observability only, like the timing fields.
  std::size_t peak_rss_bytes = 0;
  std::size_t n_materialized = 0;

  // Infrastructure fault accounting (fl::InfraStats, DESIGN.md §13):
  // shard failures/retries/failovers inside the aggregation tree, the
  // virtual backoff they cost, and whether the round completed degraded
  // (failover redistributed a dead shard's work). All zero when no
  // shard faults are configured.
  std::size_t shard_failures = 0;
  std::size_t shard_retries = 0;
  std::size_t shard_failovers = 0;
  double shard_backoff_ms = 0.0;
  bool degraded = false;
};

struct ExperimentResult {
  // The global model after the last executed round (checkpoint-halted
  // runs included) — the bit-exactness witness for resume tests.
  tensor::FlatVec final_global;
  // Final client-level evaluation over the full population.
  std::vector<metrics::ClientEval> final_evals;
  metrics::PopulationMetrics population;       // benign-client averages
  std::vector<metrics::ClusterResult> clusters;  // top-1/25/50/bottom

  std::vector<RoundRecord> rounds;

  // The attack's shared Trojaned model X (empty when attack == none).
  tensor::FlatVec trojaned_model;
  std::vector<std::size_t> compromised_ids;

  // Raw telemetry of every round (updates are retained only when
  // keep_telemetry was requested; otherwise each record's updates are
  // cleared to save memory).
  std::vector<fl::RoundTelemetry> telemetry;

  // Label histogram of the attacker's auxiliary data D_a.
  std::vector<double> auxiliary_histogram;

  // Recovery provenance (empty / zero unless the run resumed from a
  // checkpoint chain): the slot the run actually restored, and how many
  // newer generations existed but failed verification and were skipped
  // (a torn head after a crash mid-save counts here).
  std::string recovered_from;
  std::size_t recovery_discarded = 0;
};

struct RunOptions {
  // Retain full per-round updates in the result (Figs. 3, 6, 7 and the
  // detector analyses need them).
  bool keep_telemetry = false;

  // Deterministic checkpoint/resume (sim/checkpoint.h). When
  // checkpoint_save_path is set and checkpoint_round is in
  // (0, config.rounds), the run halts after `checkpoint_round` rounds,
  // saves its full state, and returns the partial result. When
  // checkpoint_load_path is set, the run restores that state and
  // continues to config.rounds; the combined run is bit-identical to an
  // uninterrupted one.
  std::string checkpoint_save_path;
  std::size_t checkpoint_round = 0;
  std::string checkpoint_load_path;

  // Durable periodic checkpointing (sim/checkpoint_store.h). When
  // checkpoint_save_path is set and checkpoint_every > 0, the run writes
  // a checkpoint through a rolling keep-last-`checkpoint_keep` chain
  // after every `checkpoint_every`-th round (and keeps running to
  // config.rounds unless checkpoint_round also halts it). Resume reads
  // through the same chain: a damaged head falls back to the newest
  // intact generation, recorded in ExperimentResult::recovered_from /
  // recovery_discarded.
  std::size_t checkpoint_every = 0;
  std::size_t checkpoint_keep = 3;

  // Chaos harness (sim/chaos.h): throw CrashInjected at the end of round
  // `crash_round` (0-based; kNoCrash disables). post_train fires before
  // any checkpoint of the round, mid_buffer right after it, mid_save
  // tears the head checkpoint mid-write; the latter two therefore
  // require periodic checkpointing to be on.
  std::size_t crash_round = kNoCrash;
  CrashPhase crash_phase = CrashPhase::post_train;
};

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const RunOptions& options = {});

}  // namespace collapois::sim
