// Experiment runner: wires data -> trojan -> clients -> attack -> defense
// -> federated algorithm, runs the round loop, and returns everything the
// benches and examples report (per-round telemetry, per-client final
// metrics, risk clusters, the Trojaned model X).
#pragma once

#include <optional>
#include <vector>

#include "fl/server.h"
#include "metrics/client_metrics.h"
#include "metrics/clusters.h"
#include "metrics/telemetry.h"
#include "sim/config.h"

namespace collapois::sim {

struct RoundRecord {
  std::size_t round = 0;
  metrics::RoundAngleSummary angles;
  // ||theta^t - X|| after the round's update (0 when no attack / no X).
  double distance_to_x = 0.0;
  // Population metrics when eval_every hits this round.
  std::optional<metrics::PopulationMetrics> population;
};

struct ExperimentResult {
  // Final client-level evaluation over the full population.
  std::vector<metrics::ClientEval> final_evals;
  metrics::PopulationMetrics population;       // benign-client averages
  std::vector<metrics::ClusterResult> clusters;  // top-1/25/50/bottom

  std::vector<RoundRecord> rounds;

  // The attack's shared Trojaned model X (empty when attack == none).
  tensor::FlatVec trojaned_model;
  std::vector<std::size_t> compromised_ids;

  // Raw telemetry of every round (updates are retained only when
  // keep_telemetry was requested; otherwise each record's updates are
  // cleared to save memory).
  std::vector<fl::RoundTelemetry> telemetry;

  // Label histogram of the attacker's auxiliary data D_a.
  std::vector<double> auxiliary_histogram;
};

struct RunOptions {
  // Retain full per-round updates in the result (Figs. 3, 6, 7 and the
  // detector analyses need them).
  bool keep_telemetry = false;
};

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const RunOptions& options = {});

}  // namespace collapois::sim
