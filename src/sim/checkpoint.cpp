#include "sim/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "fl/state.h"

namespace collapois::sim {

namespace {

constexpr std::uint64_t kMagic = 0x434f4c4c41504b54ULL;  // "COLLAPKT"
// v2: net_fingerprint + net_state (the simulated transport layer).
// v3: engine_fingerprint (the round-engine selection; the engine's own
//     mutable state rides inside algo_state via Server::save_state).
// v4: scale_fingerprint (shard topology + population mode; a lazy
//     population's algo_state stores only the materialized subset).
constexpr std::uint64_t kVersion = 4;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

}  // namespace

std::uint64_t config_fingerprint(const ExperimentConfig& c) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = mix(h, c.seed);
  h = mix(h, static_cast<std::uint64_t>(c.dataset));
  h = mix(h, static_cast<std::uint64_t>(c.algorithm));
  h = mix(h, static_cast<std::uint64_t>(c.attack));
  h = mix(h, static_cast<std::uint64_t>(c.defense));
  h = mix(h, c.n_clients);
  h = mix(h, c.samples_per_client);
  h = mix(h, c.attack_start_round);
  h = mix_double(h, c.alpha);
  h = mix_double(h, c.compromised_fraction);
  h = mix_double(h, c.sample_prob);
  h = mix_double(h, c.server_lr);
  h = mix_double(h, c.update_norm_ceiling);
  h = mix(h, c.faults.seed);
  h = mix_double(h, c.faults.dropout_prob);
  h = mix_double(h, c.faults.straggler_prob);
  h = mix_double(h, c.faults.corrupt_prob);
  h = mix(h, c.faults.straggler_staleness);
  // The kernel set is INCLUDED: naive and blocked kernels produce
  // different float rounding, so resuming a checkpoint under the other
  // set would silently splice two numerically different trajectories.
  h = mix(h, static_cast<std::uint64_t>(c.kernels));
  // Same rationale for the defense-kernel set: Krum/FLARE distances round
  // differently under the gram-based fast path than under the naive
  // loops, so a checkpoint is pinned to the impl it was written under.
  h = mix(h, static_cast<std::uint64_t>(c.defense_impl));
  // cfg.rounds is deliberately excluded: resuming with a larger round
  // budget than the checkpointed run is a supported way to extend an
  // experiment. cfg.threads is excluded too: the parallel runtime is
  // bit-deterministic for any thread count (ordered reduction, see
  // DESIGN.md §7), so a checkpoint taken at one thread count may resume
  // at another. cfg.net is excluded as well — the transport config has
  // its own fingerprint (net_fingerprint below) so a mismatch there can
  // produce a transport-specific error.
  return h;
}

std::uint64_t net_fingerprint(const net::NetConfig& c) {
  std::uint64_t h = 0x452821e638d01377ULL;
  h = mix(h, c.enabled ? 1 : 0);
  if (!c.enabled) return h;  // stale fields of a switched-off transport
  h = mix(h, c.seed);
  h = mix_double(h, c.loss_prob);
  h = mix_double(h, c.corrupt_prob);
  h = mix_double(h, c.duplicate_prob);
  h = mix_double(h, c.latency_min_ms);
  h = mix_double(h, c.latency_max_ms);
  h = mix_double(h, c.deadline_ms);
  h = mix(h, c.max_retries);
  h = mix_double(h, c.backoff_base_ms);
  h = mix_double(h, c.backoff_cap_ms);
  h = mix_double(h, c.over_sample);
  return h;
}

std::uint64_t engine_fingerprint(const ExperimentConfig& c) {
  std::uint64_t h = 0x13198a2e03707344ULL;
  h = mix(h, static_cast<std::uint64_t>(c.round_engine));
  if (c.round_engine == fl::RoundEngineKind::sync) return h;
  h = mix(h, c.async.k);
  h = mix_double(h, c.async.t_ms);
  h = mix(h, c.async.max_staleness);
  return h;
}

std::uint64_t scale_fingerprint(const ExperimentConfig& c) {
  std::uint64_t h = 0xa4093822299f31d0ULL;
  h = mix(h, c.shards);
  h = mix(h, c.lazy_clients ? 1 : 0);
  return h;
}

void save_checkpoint_file(const std::string& path, const Checkpoint& ck) {
  fl::StateWriter w;
  w.write_u64(kMagic);
  w.write_u64(kVersion);
  w.write_u64(ck.fingerprint);
  w.write_u64(ck.net_fingerprint);
  w.write_u64(ck.engine_fingerprint);
  w.write_u64(ck.scale_fingerprint);
  w.write_size(ck.rounds_completed);
  for (std::uint64_t s : ck.run_rng.s) w.write_u64(s);
  w.write_double(ck.run_rng.cached_normal);
  w.write_bool(ck.run_rng.has_cached_normal);
  w.write_floats(ck.trojaned_model);
  w.write_bytes(ck.fault_state);
  w.write_bytes(ck.net_state);
  w.write_bytes(ck.algo_state);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_checkpoint_file: cannot open " + path);
  }
  const auto& bytes = w.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("save_checkpoint_file: write failed for " + path);
  }
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint_file: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  fl::StateReader r(bytes);
  if (r.read_u64() != kMagic) {
    throw std::runtime_error("load_checkpoint_file: bad magic in " + path);
  }
  if (r.read_u64() != kVersion) {
    throw std::runtime_error("load_checkpoint_file: unsupported version in " +
                             path);
  }
  Checkpoint ck;
  ck.fingerprint = r.read_u64();
  ck.net_fingerprint = r.read_u64();
  ck.engine_fingerprint = r.read_u64();
  ck.scale_fingerprint = r.read_u64();
  ck.rounds_completed = r.read_size();
  for (std::uint64_t& s : ck.run_rng.s) s = r.read_u64();
  ck.run_rng.cached_normal = r.read_double();
  ck.run_rng.has_cached_normal = r.read_bool();
  ck.trojaned_model = r.read_floats();
  ck.fault_state = r.read_bytes();
  ck.net_state = r.read_bytes();
  ck.algo_state = r.read_bytes();
  if (!r.exhausted()) {
    throw std::runtime_error("load_checkpoint_file: trailing bytes in " +
                             path);
  }
  return ck;
}

}  // namespace collapois::sim
