#include "sim/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "fl/state.h"
#include "net/envelope.h"

namespace collapois::sim {

namespace {

constexpr std::uint64_t kMagic = 0x434f4c4c41504b54ULL;  // "COLLAPKT"
// v2: net_fingerprint + net_state (the simulated transport layer).
// v3: engine_fingerprint (the round-engine selection; the engine's own
//     mutable state rides inside algo_state via Server::save_state).
// v4: scale_fingerprint (shard topology + population mode; a lazy
//     population's algo_state stores only the materialized subset).
// v5: durability header — the body moved behind a (payload_size, FNV-1a
//     digest) pair verified BEFORE parsing, so truncation and bit flips
//     fail loudly instead of feeding damaged bytes to the StateReader.
// v6: codec_fingerprint (the update-codec config; lossy quantization
//     noise shapes the trajectory, so cross-codec resume must fail) and
//     the NetworkModel state grew its bytes-on-wire totals.
constexpr std::uint64_t kVersion = 6;
// Header: magic, version, payload_size, digest — 4 u64 fields.
constexpr std::size_t kHeaderBytes = 32;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("save_checkpoint_file: " + what + " for " + path +
                           ": " + std::strerror(errno));
}

}  // namespace

std::uint64_t config_fingerprint(const ExperimentConfig& c) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = mix(h, c.seed);
  h = mix(h, static_cast<std::uint64_t>(c.dataset));
  h = mix(h, static_cast<std::uint64_t>(c.algorithm));
  h = mix(h, static_cast<std::uint64_t>(c.attack));
  h = mix(h, static_cast<std::uint64_t>(c.defense));
  h = mix(h, c.n_clients);
  h = mix(h, c.samples_per_client);
  h = mix(h, c.attack_start_round);
  h = mix_double(h, c.alpha);
  h = mix_double(h, c.compromised_fraction);
  h = mix_double(h, c.sample_prob);
  h = mix_double(h, c.server_lr);
  h = mix_double(h, c.update_norm_ceiling);
  h = mix(h, c.faults.seed);
  h = mix_double(h, c.faults.dropout_prob);
  h = mix_double(h, c.faults.straggler_prob);
  h = mix_double(h, c.faults.corrupt_prob);
  h = mix(h, c.faults.straggler_staleness);
  // The kernel set is INCLUDED: naive and blocked kernels produce
  // different float rounding, so resuming a checkpoint under the other
  // set would silently splice two numerically different trajectories.
  // Only the KIND is covered — the runtime ISA dispatch tier
  // (kernels/cpu_dispatch.h) is deliberately excluded: one binary must
  // write a checkpoint on an AVX2 host and resume it on a scalar-only
  // host. Coordinate defense paths are bit-exact across tiers (the
  // property suites enforce it), and GEMM tiers differ only at FMA
  // rounding level — the same order of difference the tolerance gates
  // already accept between hosts.
  h = mix(h, static_cast<std::uint64_t>(c.kernels));
  // Same rationale for the defense-kernel set: Krum/FLARE distances round
  // differently under the gram-based fast path than under the naive
  // loops, so a checkpoint is pinned to the impl it was written under.
  h = mix(h, static_cast<std::uint64_t>(c.defense_impl));
  // cfg.rounds is deliberately excluded: resuming with a larger round
  // budget than the checkpointed run is a supported way to extend an
  // experiment. cfg.threads is excluded too: the parallel runtime is
  // bit-deterministic for any thread count (ordered reduction, see
  // DESIGN.md §7), so a checkpoint taken at one thread count may resume
  // at another. cfg.net is excluded as well — the transport config has
  // its own fingerprint (net_fingerprint below) so a mismatch there can
  // produce a transport-specific error. cfg.shard_faults is excluded on
  // purpose: shard faults change WHO computes each partial, never WHAT
  // is computed (failover is bit-exact, DESIGN.md §13), so a checkpoint
  // may legally resume under a different shard-fault profile.
  return h;
}

std::uint64_t net_fingerprint(const net::NetConfig& c) {
  std::uint64_t h = 0x452821e638d01377ULL;
  h = mix(h, c.enabled ? 1 : 0);
  if (!c.enabled) return h;  // stale fields of a switched-off transport
  h = mix(h, c.seed);
  h = mix_double(h, c.loss_prob);
  h = mix_double(h, c.corrupt_prob);
  h = mix_double(h, c.duplicate_prob);
  h = mix_double(h, c.latency_min_ms);
  h = mix_double(h, c.latency_max_ms);
  h = mix_double(h, c.deadline_ms);
  h = mix(h, c.max_retries);
  h = mix_double(h, c.backoff_base_ms);
  h = mix_double(h, c.backoff_cap_ms);
  h = mix_double(h, c.over_sample);
  return h;
}

std::uint64_t engine_fingerprint(const ExperimentConfig& c) {
  std::uint64_t h = 0x13198a2e03707344ULL;
  h = mix(h, static_cast<std::uint64_t>(c.round_engine));
  if (c.round_engine == fl::RoundEngineKind::sync) return h;
  h = mix(h, c.async.k);
  h = mix_double(h, c.async.t_ms);
  h = mix(h, c.async.max_staleness);
  return h;
}

std::uint64_t scale_fingerprint(const ExperimentConfig& c) {
  std::uint64_t h = 0xa4093822299f31d0ULL;
  h = mix(h, c.shards);
  h = mix(h, c.lazy_clients ? 1 : 0);
  return h;
}

std::uint64_t codec_fingerprint(const net::CodecConfig& c) {
  std::uint64_t h = 0x082efa98ec4e6c89ULL;
  h = mix(h, static_cast<std::uint64_t>(c.kind));
  switch (c.kind) {
    case net::CodecKind::identity:
    case net::CodecKind::fp16:
      // No knobs: every identity config (and every fp16 config) maps to
      // one fingerprint regardless of stale bits/topk_fraction values.
      break;
    case net::CodecKind::int8:
      h = mix(h, c.bits);
      break;
    case net::CodecKind::topk:
      h = mix_double(h, c.topk_fraction);
      break;
  }
  // The dispatch TIER is deliberately excluded, mirroring the kernel-set
  // rationale above but stronger: the codec tiers are bit-identical, so
  // a checkpoint written on an AVX2 host resumes exactly anywhere.
  return h;
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ck) {
  fl::StateWriter payload;
  payload.write_u64(ck.fingerprint);
  payload.write_u64(ck.net_fingerprint);
  payload.write_u64(ck.engine_fingerprint);
  payload.write_u64(ck.scale_fingerprint);
  payload.write_u64(ck.codec_fingerprint);
  payload.write_size(ck.rounds_completed);
  for (std::uint64_t s : ck.run_rng.s) payload.write_u64(s);
  payload.write_double(ck.run_rng.cached_normal);
  payload.write_bool(ck.run_rng.has_cached_normal);
  payload.write_floats(ck.trojaned_model);
  payload.write_bytes(ck.fault_state);
  payload.write_bytes(ck.net_state);
  payload.write_bytes(ck.algo_state);

  fl::StateWriter image;
  image.write_u64(kMagic);
  image.write_u64(kVersion);
  image.write_size(payload.bytes().size());
  image.write_u64(net::payload_checksum(payload.bytes()));
  std::vector<std::uint8_t> out = image.take();
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
  return out;
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes,
                             const std::string& context) {
  // Header verification first; no payload field is parsed until the
  // digest proves the payload intact (net::Envelope discipline).
  if (bytes.size() < kHeaderBytes) {
    throw std::runtime_error("decode_checkpoint: truncated header in " +
                             context);
  }
  fl::StateReader header(bytes.subspan(0, kHeaderBytes));
  if (header.read_u64() != kMagic) {
    throw std::runtime_error("decode_checkpoint: bad magic in " + context);
  }
  if (header.read_u64() != kVersion) {
    throw std::runtime_error("decode_checkpoint: unsupported version in " +
                             context);
  }
  const std::size_t payload_size = header.read_size();
  const std::uint64_t digest = header.read_u64();
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderBytes);
  if (payload.size() < payload_size) {
    throw std::runtime_error(
        "decode_checkpoint: truncated payload in " + context + " (have " +
        std::to_string(payload.size()) + " of " +
        std::to_string(payload_size) + " bytes)");
  }
  if (payload.size() > payload_size) {
    throw std::runtime_error("decode_checkpoint: trailing bytes in " +
                             context);
  }
  if (net::payload_checksum(payload) != digest) {
    throw std::runtime_error("decode_checkpoint: payload digest mismatch in " +
                             context + " (file damaged)");
  }

  fl::StateReader r(payload);
  Checkpoint ck;
  ck.fingerprint = r.read_u64();
  ck.net_fingerprint = r.read_u64();
  ck.engine_fingerprint = r.read_u64();
  ck.scale_fingerprint = r.read_u64();
  ck.codec_fingerprint = r.read_u64();
  ck.rounds_completed = r.read_size();
  for (std::uint64_t& s : ck.run_rng.s) s = r.read_u64();
  ck.run_rng.cached_normal = r.read_double();
  ck.run_rng.has_cached_normal = r.read_bool();
  ck.trojaned_model = r.read_floats();
  ck.fault_state = r.read_bytes();
  ck.net_state = r.read_bytes();
  ck.algo_state = r.read_bytes();
  if (!r.exhausted()) {
    throw std::runtime_error("decode_checkpoint: trailing payload bytes in " +
                             context);
  }
  return ck;
}

void save_checkpoint_file(const std::string& path, const Checkpoint& ck) {
  const std::vector<std::uint8_t> image = encode_checkpoint(ck);

  // Durable atomic write (cstdio for fflush+fsync): a crash at any point
  // leaves either the old file or the new one, never a torn hybrid.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail_errno("cannot open temp file", tmp);
  if (std::fwrite(image.data(), 1, image.size(), f) != image.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    fail_errno("write failed", tmp);
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    fail_errno("flush failed", tmp);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    fail_errno("fsync failed", tmp);
  }
#endif
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    fail_errno("close failed", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail_errno("rename failed", tmp + " -> " + path);
  }
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint_file: cannot open " + path +
                             ": " + std::strerror(errno));
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return decode_checkpoint(bytes, path);
}

}  // namespace collapois::sim
