// Deterministic checkpoint/resume for run_experiment.
//
// A checkpoint freezes every piece of state the round loop mutates —
// global params, round counter, the experiment's top-level RNG, the
// attacker's Trojaned model X (once armed), the fault model's stale-model
// cache, and the algorithm blob (server + aggregator + per-client state,
// see fl/state.h) — so a run can be stopped mid-experiment and resumed
// BIT-EXACTLY: a straight 2N-round run and an N-round run + checkpoint +
// N-round resume produce identical final parameters and identical final
// client-level evaluations (tested in tests/test_checkpoint.cpp).
//
// Resume reconstructs the experiment from the same ExperimentConfig
// (construction is deterministic given cfg.seed) and then overwrites the
// mutable state from the checkpoint. A fingerprint of the
// identity-defining config fields guards against resuming under a
// different configuration.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/config.h"
#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois::sim {

struct Checkpoint {
  std::uint64_t fingerprint = 0;
  // Fingerprint of the transport configuration (net_fingerprint below).
  // Kept SEPARATE from `fingerprint` so a resume under a different
  // network model fails with a transport-specific error message instead
  // of a generic config mismatch.
  std::uint64_t net_fingerprint = 0;
  // Fingerprint of the round-engine selection and its knobs
  // (engine_fingerprint below). Separate for the same reason as
  // net_fingerprint: a sync checkpoint resumed under buffered_async (or
  // under different K/T/staleness knobs) would splice two different
  // schedules — the mismatch must fail loudly, naming the engine.
  std::uint64_t engine_fingerprint = 0;
  // Fingerprint of the scale-out topology (scale_fingerprint below).
  // Separate so a resume under a different shard count or population
  // mode fails naming --shards/--lazy-clients rather than with a generic
  // config mismatch. Lazy runs are a different deterministic universe
  // than eager ones (per-client derived data seeds), and the lazy
  // algorithm blob stores only the materialized subset — neither can be
  // spliced across modes.
  std::uint64_t scale_fingerprint = 0;
  // Fingerprint of the update-codec config (codec_fingerprint below).
  // Separate so a resume under a different codec fails naming
  // --codec/--codec-bits/--codec-topk: a lossy codec's quantization
  // noise is part of the trajectory, so splicing codecs would silently
  // change the experiment mid-run.
  std::uint64_t codec_fingerprint = 0;
  std::size_t rounds_completed = 0;
  stats::Rng::State run_rng;
  // The attacker's shared Trojaned model (empty while unarmed).
  tensor::FlatVec trojaned_model;
  // Serialized FaultModel history (empty when no faults configured).
  std::vector<std::uint8_t> fault_state;
  // Serialized NetworkModel state — cumulative transport totals and the
  // (structurally empty) in-flight queue marker; empty when the transport
  // is disabled.
  std::vector<std::uint8_t> net_state;
  // Serialized FlAlgorithm state (fl/algorithm.h save_state).
  std::vector<std::uint8_t> algo_state;
};

// Hash of the config fields that define the identity of a run; resuming
// with a config whose fingerprint differs is an error.
std::uint64_t config_fingerprint(const ExperimentConfig& config);

// Hash of the transport configuration. Every disabled config maps to the
// same fingerprint (stale field values in a switched-off transport are
// irrelevant); enabled configs hash every decision-relevant field,
// including the seed.
std::uint64_t net_fingerprint(const net::NetConfig& config);

// Hash of the round-engine selection. Every sync config maps to the same
// fingerprint (the async knobs are inert under sync); buffered_async
// configs hash the aggregation triggers and the staleness cutoff, since
// any of them changes the admission schedule.
std::uint64_t engine_fingerprint(const ExperimentConfig& config);

// Hash of the scale-out topology: shard count and population mode.
// Sharding is bit-transparent for capability-declared defenses, but the
// shard count is fingerprinted anyway — it is part of the run's declared
// topology, and pinning it keeps the invariance property testable rather
// than assumed. Every flat-eager config (shards == 1, lazy off) maps to
// the same fingerprint.
std::uint64_t scale_fingerprint(const ExperimentConfig& config);

// Hash of the update-codec config: the kind plus the knobs that matter
// for it (bits for int8, fraction for topk). Every identity config maps
// to the same fingerprint. The SIMD dispatch tier is excluded — codec
// tiers are bit-identical, so checkpoints are tier-portable.
std::uint64_t codec_fingerprint(const net::CodecConfig& config);

// Serializes the checkpoint into the on-disk image: a fixed header
// (magic, version, payload size, FNV-1a payload digest — the
// net::Envelope verify-before-parse discipline) followed by the payload
// (the field sequence of Checkpoint). decode_checkpoint verifies the
// header BEFORE parsing a single payload field, so truncation and bit
// flips anywhere in the file fail loudly with `context` (typically the
// file path) and the reason — never UB, never an attacker-sized
// allocation. encode/decode are exposed so CheckpointStore and the
// negative-path tests can work on in-memory images.
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ck);
Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes,
                             const std::string& context);

// Atomic durable write: encode into `path + ".tmp"`, flush to disk, then
// rename over `path` — a crash mid-save leaves the previous checkpoint
// intact (the chaos harness's mid-save phase exercises exactly this).
// Throws std::runtime_error naming the path and the errno text on any
// open/write/flush/rename failure.
void save_checkpoint_file(const std::string& path, const Checkpoint& ck);
Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace collapois::sim
