#include "sim/runner.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "agg/lazy_federation.h"
#include "agg/lazy_population.h"
#include "agg/sharded_aggregator.h"
#include "attacks/poison_training_client.h"
#include "data/partition.h"
#include "defense/ditto.h"
#include "fl/faults.h"
#include "runtime/thread_pool.h"
#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/checkpoint_store.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "fl/metafed.h"
#include "fl/server_algorithm.h"
#include "nn/zoo.h"
#include "stats/geometry.h"
#include "trojan/embedding_trigger.h"
#include "trojan/patch_trigger.h"
#include "trojan/poison.h"
#include "trojan/warp_trigger.h"

namespace collapois::sim {

namespace {

struct Workbench {
  data::FederatedData fed;  // eager mode; empty under lazy_clients
  // Lazy mode: per-client splits generated on first request from derived
  // seeds (agg/lazy_federation.h); null in eager mode.
  std::unique_ptr<agg::LazyFederation> lazy_fed;
  nn::Model architecture;                      // shared structure + theta^1
  std::unique_ptr<trojan::Trigger> eval_trigger;
  // Per-compromised-client training triggers (DBA parts; otherwise clones
  // of the evaluation trigger).
  std::vector<std::unique_ptr<trojan::Trigger>> train_triggers;
  std::size_t image_h = 0;
  std::size_t image_w = 0;

  // Mode-independent access to client i's local data. References stay
  // valid for the workbench's lifetime in both modes (vector built once;
  // map nodes are stable).
  const data::ClientSplit& client_data(std::size_t i) {
    return lazy_fed ? lazy_fed->client_data(i) : fed.clients[i];
  }
  std::size_t num_classes() const {
    return lazy_fed ? lazy_fed->num_classes() : fed.num_classes;
  }
};

Workbench build_workbench(const ExperimentConfig& cfg, stats::Rng& rng) {
  Workbench wb;
  if (cfg.dataset == DatasetKind::femnist_like) {
    data::SyntheticImageConfig icfg;
    const std::uint64_t data_seed = rng.next_u64();
    data::SyntheticImageGenerator gen(icfg, data_seed);
    if (cfg.lazy_clients) {
      wb.lazy_fed = std::make_unique<agg::LazyFederation>(
          cfg.n_clients, icfg.num_classes,
          agg::make_dirichlet_split_factory(gen, data_seed,
                                            cfg.samples_per_client,
                                            cfg.alpha));
    } else {
      wb.fed = data::build_federation(gen, cfg.n_clients,
                                      cfg.samples_per_client, cfg.alpha, rng);
    }
    nn::LeNetConfig mcfg;
    mcfg.height = icfg.height;
    mcfg.width = icfg.width;
    mcfg.num_classes = icfg.num_classes;
    wb.architecture = nn::make_lenet_small(mcfg);
    wb.image_h = icfg.height;
    wb.image_w = icfg.width;

    const std::uint64_t trigger_seed = rng.next_u64();
    if (cfg.attack == AttackKind::dba) {
      wb.eval_trigger = std::make_unique<trojan::PatchTrigger>(
          trojan::PatchTrigger::global_dba(icfg.height, icfg.width));
      for (const auto& part :
           trojan::PatchTrigger::dba_parts(icfg.height, icfg.width)) {
        wb.train_triggers.push_back(part.clone());
      }
    } else {
      trojan::WarpConfig wcfg;
      wcfg.height = icfg.height;
      wcfg.width = icfg.width;
      wb.eval_trigger =
          std::make_unique<trojan::WarpTrigger>(wcfg, trigger_seed);
      wb.train_triggers.push_back(wb.eval_trigger->clone());
    }
  } else {
    data::SyntheticTextConfig tcfg;
    const std::uint64_t data_seed = rng.next_u64();
    data::SyntheticTextGenerator gen(tcfg, data_seed);
    if (cfg.lazy_clients) {
      wb.lazy_fed = std::make_unique<agg::LazyFederation>(
          cfg.n_clients, tcfg.num_classes,
          agg::make_dirichlet_split_factory(gen, data_seed,
                                            cfg.samples_per_client,
                                            cfg.alpha));
    } else {
      wb.fed = data::build_federation(gen, cfg.n_clients,
                                      cfg.samples_per_client, cfg.alpha, rng);
    }
    nn::MlpConfig mcfg;
    mcfg.input_dim = tcfg.embedding_dim;
    mcfg.num_classes = tcfg.num_classes;
    wb.architecture = nn::make_mlp_head(mcfg);

    trojan::EmbeddingTriggerConfig ecfg;
    ecfg.dim = tcfg.embedding_dim;
    const trojan::EmbeddingTrigger whole(ecfg, rng.next_u64());
    wb.eval_trigger = whole.clone();
    if (cfg.attack == AttackKind::dba) {
      for (std::size_t k = 0; k < 4; ++k) {
        wb.train_triggers.push_back(whole.part(k, 4).clone());
      }
    } else {
      wb.train_triggers.push_back(whole.clone());
    }
  }
  wb.architecture.init(rng);
  return wb;
}

bool attack_needs_x(AttackKind kind) {
  return kind == AttackKind::collapois || kind == AttackKind::mrepl;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const RunOptions& options) {
  if (cfg.rounds == 0) throw std::invalid_argument("run_experiment: 0 rounds");

  // --- scale-out validation ----------------------------------------------
  if (cfg.shards == 0) {
    throw std::invalid_argument("run_experiment: --shards must be >= 1");
  }
  if (cfg.shards > cfg.n_clients) {
    throw std::invalid_argument(
        "run_experiment: --shards exceeds the registered population — a "
        "shard without any possible member is a configuration error");
  }
  if ((cfg.shards > 1 || cfg.lazy_clients) &&
      cfg.algorithm == AlgorithmKind::metafed) {
    throw std::invalid_argument(
        "run_experiment: the sharded aggregation tree and lazy populations "
        "scale the server's round loop and do not apply to MetaFed");
  }
  if (cfg.lazy_clients && cfg.eval_max_clients == 0) {
    throw std::invalid_argument(
        "run_experiment: --lazy-clients requires --eval-max-clients > 0 — "
        "evaluating every client would materialize the whole registered "
        "population and defeat lazy instantiation");
  }
  if (cfg.shard_faults.any() && cfg.shards <= 1) {
    throw std::invalid_argument(
        "run_experiment: shard faults need an aggregation tree to fault — "
        "--shard-* flags require --shards > 1");
  }

  // --- chaos / durability validation -------------------------------------
  const bool periodic_saves =
      !options.checkpoint_save_path.empty() && options.checkpoint_every > 0;
  if (options.crash_round != kNoCrash && options.crash_round >= cfg.rounds) {
    throw std::invalid_argument(
        "run_experiment: crash_round is past the round budget — the crash "
        "would never fire");
  }
  if (options.crash_round != kNoCrash &&
      options.crash_phase != CrashPhase::post_train && !periodic_saves) {
    throw std::invalid_argument(
        "run_experiment: crash phases mid-buffer and mid-save interrupt the "
        "checkpoint write and need periodic checkpointing "
        "(checkpoint_save_path + checkpoint_every) to be configured");
  }

  // Select the compute-kernel set before any client math runs (and before
  // the pool spawns — workers only ever read the registry).
  kernels::set_active_kernels(cfg.kernels);
  defense::set_active_defense_impl(cfg.defense_impl);

  // Parallel runtime: one pool for the whole experiment (round-loop
  // client dispatch + evaluation sweeps). Created before the algorithm so
  // it outlives every borrower; a resolved count of 1 means no pool at
  // all — the inline path is the sequential baseline.
  const std::size_t n_threads = runtime::resolve_thread_count(cfg.threads);
  std::unique_ptr<runtime::ThreadPool> pool;
  if (n_threads > 1) pool = std::make_unique<runtime::ThreadPool>(n_threads);

  stats::Rng rng(cfg.seed);
  Workbench wb = build_workbench(cfg, rng);
  const std::size_t n = cfg.n_clients;

  ExperimentResult result;

  // --- compromised set ------------------------------------------------
  std::vector<bool> compromised(n, false);
  if (cfg.attack != AttackKind::none) {
    std::size_t c = static_cast<std::size_t>(
        cfg.compromised_fraction * static_cast<double>(n) + 0.5);
    c = std::max<std::size_t>(c, 1);
    c = std::min(c, n);
    result.compromised_ids = rng.sample_without_replacement(n, c);
    for (std::size_t id : result.compromised_ids) compromised[id] = true;
  }

  // --- Trojaned model X (Eq. 1) ----------------------------------------
  data::Dataset auxiliary;
  if (cfg.attack != AttackKind::none) {
    // Under lazy_clients this materializes exactly the compromised
    // clients' splits — which their client objects need cached anyway.
    std::vector<const data::Dataset*> parts;
    for (std::size_t id : result.compromised_ids) {
      parts.push_back(&wb.client_data(id).validation);
      if (!cfg.aux_validation_only) {
        // Threat-model D_a = union of the compromised clients' local
        // datasets (see ExperimentConfig::aux_validation_only).
        parts.push_back(&wb.client_data(id).train);
      }
    }
    auxiliary = core::pool_auxiliary_data(parts);
    if (auxiliary.empty()) {
      // Degenerate split: fall back to the full local data.
      parts.clear();
      for (std::size_t id : result.compromised_ids) {
        parts.push_back(&wb.client_data(id).train);
      }
      auxiliary = core::pool_auxiliary_data(parts);
    }
    result.auxiliary_histogram = auxiliary.label_histogram();
  }
  // --- fault model -------------------------------------------------------
  // Created before the clients so both construction paths (the eager loop
  // below and the lazy factory) can wrap clients in the fault decorator.
  std::shared_ptr<fl::FaultModel> fault_model;
  if (cfg.faults.any()) {
    if (cfg.algorithm == AlgorithmKind::metafed) {
      throw std::invalid_argument(
          "run_experiment: fault injection targets the server's update "
          "channel and does not apply to MetaFed");
    }
    fault_model = std::make_shared<fl::FaultModel>(cfg.faults);
    if (cfg.round_engine == fl::RoundEngineKind::buffered_async) {
      // Overlapping cohorts observe out of round order and buffered
      // updates can legally be admitted up to max_staleness rounds after
      // launch: widen the stale-model retention window accordingly.
      fault_model->set_extra_retention(cfg.async.max_staleness + 1);
    }
  }

  // --- client population ------------------------------------------------
  // X-based attack clients start dormant (benign behaviour on their own
  // data); the attacker strikes at attack_start_round, training X from the
  // observed global model and arming them (see ExperimentConfig).
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<core::CollaPoisClient*> collapois_clients;
  std::vector<attacks::MReplClient*> mrepl_clients;
  clients.reserve(n);
  double mrepl_boost = cfg.mrepl.boost;
  if (mrepl_boost <= 0.0) {
    mrepl_boost =
        std::max(1.0, cfg.sample_prob * static_cast<double>(n)) /
        cfg.server_lr;
  }
  if (cfg.defense == defense::DefenseKind::ditto &&
      cfg.algorithm != AlgorithmKind::fedavg) {
    throw std::invalid_argument(
        "run_experiment: Ditto is a client-side personalization defense "
        "and composes only with FedAvg");
  }
  auto make_benign = [&](std::size_t i, stats::Rng crng)
      -> std::unique_ptr<fl::Client> {
    if (cfg.defense == defense::DefenseKind::ditto) {
      return std::make_unique<defense::DittoClient>(
          i, &wb.client_data(i).train, wb.architecture, cfg.local_sgd,
          defense::DittoConfig{cfg.defense_params.ditto_lambda, 1},
          cfg.metafed_distill_weight, std::move(crng));
    }
    if (cfg.algorithm == AlgorithmKind::feddc) {
      return std::make_unique<fl::FedDcClient>(
          i, &wb.client_data(i).train, wb.architecture, cfg.local_sgd,
          cfg.feddc_penalty, cfg.metafed_distill_weight, std::move(crng));
    }
    return std::make_unique<fl::BenignClient>(
        i, &wb.client_data(i).train, wb.architecture, cfg.local_sgd,
        cfg.metafed_distill_weight, std::move(crng));
  };
  // Builds client i with its per-client RNG already positioned — shared
  // between the eager loop (forked stream) and the lazy factory (derived
  // seeds). `dba_ordinal` is i's rank among the compromised ids, which
  // for the eager id-order loop reproduces the original running counter.
  auto make_client = [&](std::size_t i, stats::Rng crng,
                         std::size_t dba_ordinal)
      -> std::unique_ptr<fl::Client> {
    if (!compromised[i]) return make_benign(i, std::move(crng));
    switch (cfg.attack) {
      case AttackKind::collapois: {
        // Clients materialized after the strike are born armed:
        // result.trojaned_model is empty until arm_attackers() runs (and
        // is restored before any lazy materialization on resume).
        auto c = std::make_unique<core::CollaPoisClient>(
            i, result.trojaned_model, cfg.collapois, crng.fork(),
            make_benign(i, std::move(crng)));
        collapois_clients.push_back(c.get());
        return c;
      }
      case AttackKind::mrepl: {
        attacks::MReplConfig mc = cfg.mrepl;
        mc.boost = mrepl_boost;
        auto c = std::make_unique<attacks::MReplClient>(
            i, result.trojaned_model, mc, make_benign(i, std::move(crng)));
        mrepl_clients.push_back(c.get());
        return c;
      }
      case AttackKind::dpois:
        return attacks::make_dpois_client(
            i, wb.client_data(i).train, *wb.train_triggers[0], cfg.dpois,
            wb.architecture, cfg.local_sgd, cfg.metafed_distill_weight,
            std::move(crng));
      case AttackKind::dba: {
        const auto& part =
            *wb.train_triggers[dba_ordinal % wb.train_triggers.size()];
        data::Dataset poisoned = trojan::mix_poison(
            wb.client_data(i).train, part, cfg.dba.target_label,
            cfg.dba.poison_fraction, crng);
        return std::make_unique<attacks::PoisonTrainingClient>(
            i, std::move(poisoned), wb.architecture, cfg.local_sgd,
            cfg.metafed_distill_weight, std::move(crng));
      }
      case AttackKind::none:
        break;
    }
    throw std::logic_error("unreachable");
  };
  agg::LazyClientPopulation::Factory lazy_factory;
  if (cfg.lazy_clients) {
    // Lazy universe: per-client RNGs come from index-derived seeds (a
    // client materialized at round 50 is byte-identical to the same
    // client materialized at round 0), and the DBA part is the client's
    // rank among the compromised ids — both pure functions of i, so the
    // materialization order cannot matter.
    const std::uint64_t client_seed_base = rng.next_u64();
    std::vector<std::size_t> sorted_compromised = result.compromised_ids;
    std::sort(sorted_compromised.begin(), sorted_compromised.end());
    lazy_factory = [&, client_seed_base, fault_model,
                    sorted_compromised](std::size_t i)
        -> std::unique_ptr<fl::Client> {
      // Serialized by the population's materialization lock, so the
      // attack-client registries need no extra guard.
      stats::Rng crng(agg::derive_client_seed(client_seed_base, i));
      const std::size_t ordinal = static_cast<std::size_t>(
          std::lower_bound(sorted_compromised.begin(),
                           sorted_compromised.end(), i) -
          sorted_compromised.begin());
      auto c = make_client(i, std::move(crng), ordinal);
      if (fault_model) {
        c = std::make_unique<fl::FaultyClient>(std::move(c), fault_model);
      }
      return c;
    };
  } else {
    std::size_t dba_part = 0;
    for (std::size_t i = 0; i < n; ++i) {
      stats::Rng crng = rng.fork();
      clients.push_back(make_client(i, std::move(crng), dba_part));
      if (compromised[i]) ++dba_part;
    }
  }

  // --- fault injection ---------------------------------------------------
  // Wrap every client (benign and compromised alike — churn is
  // environmental) in the fault decorator. The raw attack-client pointers
  // captured above stay valid: the wrapper owns the inner client without
  // moving it. The lazy factory applies the same wrap per materialized
  // client.
  if (fault_model) {
    for (auto& c : clients) {
      c = std::make_unique<fl::FaultyClient>(std::move(c), fault_model);
    }
  }

  // --- simulated transport ------------------------------------------------
  std::unique_ptr<net::NetworkModel> net_model;
  if (cfg.net.enabled) {
    if (cfg.algorithm == AlgorithmKind::metafed) {
      throw std::invalid_argument(
          "run_experiment: the simulated transport models the server's "
          "update channel and does not apply to MetaFed");
    }
    net_model = std::make_unique<net::NetworkModel>(cfg.net);
  }
  net::validate_codec(cfg.codec);
  if (net::codec_is_lossy(cfg.codec.kind) && !cfg.net.enabled) {
    throw std::invalid_argument(
        "run_experiment: a lossy --codec requires the simulated transport "
        "(--net) — without a wire there is nothing to compress");
  }

  // --- federated algorithm ----------------------------------------------
  std::unique_ptr<fl::FlAlgorithm> algo;
  if (cfg.algorithm == AlgorithmKind::metafed) {
    if (cfg.round_engine != fl::RoundEngineKind::sync) {
      throw std::invalid_argument(
          "run_experiment: the round engine schedules the server's round "
          "loop and does not apply to MetaFed");
    }
    fl::MetaFedConfig mcfg;
    mcfg.sample_prob = cfg.sample_prob;
    switch (cfg.defense) {
      case defense::DefenseKind::none:
        break;
      case defense::DefenseKind::dp:
        mcfg.clip = cfg.defense_params.clip;
        mcfg.noise_std = cfg.defense_params.noise_multiplier *
                         cfg.defense_params.clip / 10.0;
        break;
      case defense::DefenseKind::norm_bound:
        mcfg.clip = cfg.defense_params.clip;
        mcfg.noise_std = cfg.defense_params.noise_std;
        break;
      default:
        throw std::invalid_argument(
            "run_experiment: aggregation defenses (Krum/RLR/median/...) are "
            "not applicable to MetaFed");
    }
    algo = std::make_unique<fl::MetaFedAlgorithm>(
        std::move(clients), wb.architecture, mcfg, rng.fork());
  } else {
    auto aggregator = defense::make_defense(cfg.defense, cfg.defense_params,
                                            rng.fork());
    if (cfg.shards > 1) {
      // The aggregation tree root (agg/sharded_aggregator.h). Throws here
      // — before any round runs — when the defense is cohort_only. The
      // shard fault model (if any) rides inside the tree: failover keeps
      // degraded rounds bit-identical, so nothing above this line knows
      // faults exist except the telemetry.
      std::shared_ptr<agg::ShardFaultModel> shard_fault_model;
      if (cfg.shard_faults.any()) {
        shard_fault_model =
            std::make_shared<agg::ShardFaultModel>(cfg.shard_faults);
      }
      aggregator = std::make_unique<agg::ShardedAggregator>(
          std::move(aggregator), cfg.shards, std::move(shard_fault_model));
    }
    fl::ServerConfig scfg;
    scfg.learning_rate = cfg.server_lr;
    scfg.sample_prob = cfg.sample_prob;
    scfg.update_norm_ceiling = cfg.update_norm_ceiling;
    scfg.pool = pool.get();
    scfg.net = net_model.get();
    scfg.codec = cfg.codec;
    scfg.engine = cfg.round_engine;
    scfg.async = cfg.async;
    if (cfg.lazy_clients) {
      algo = std::make_unique<fl::ServerAlgorithm>(
          std::string(algorithm_name(cfg.algorithm)),
          wb.architecture.get_parameters(), std::move(aggregator), scfg,
          std::make_unique<agg::LazyClientPopulation>(
              n, std::move(lazy_factory)),
          rng.fork());
    } else {
      algo = std::make_unique<fl::ServerAlgorithm>(
          std::string(algorithm_name(cfg.algorithm)),
          wb.architecture.get_parameters(), std::move(aggregator), scfg,
          std::move(clients), rng.fork());
    }
  }

  // --- round loop ---------------------------------------------------------
  metrics::EvalConfig periodic_eval;
  periodic_eval.target_label = cfg.target_label;
  periodic_eval.max_clients = cfg.eval_max_clients;
  periodic_eval.pool = pool.get();

  // Mode-independent evaluation sweep: eager mode indexes the built
  // federation; lazy mode goes through the split provider so only the
  // evaluated clients' data materializes.
  auto eval_clients = [&](const metrics::EvalConfig& ec) {
    if (cfg.lazy_clients) {
      return metrics::evaluate_clients(
          *algo, n,
          [&](std::size_t i) -> const data::ClientSplit& {
            return wb.client_data(i);
          },
          *wb.eval_trigger, wb.architecture, compromised, ec);
    }
    return metrics::evaluate_clients(*algo, wb.fed, *wb.eval_trigger,
                                     wb.architecture, compromised, ec);
  };

  auto arm_attackers = [&]() {
    if (!attack_needs_x(cfg.attack) || !result.trojaned_model.empty()) return;
    // The attacker warm-starts X from the current global model (received
    // by every compromised client) and fine-tunes on D_a union D_a^Troj.
    nn::Model attacker_model = wb.architecture;
    attacker_model.set_parameters(algo->global_params());
    stats::Rng attacker_rng = rng.fork();
    // Trojan training runs on the main thread while the pool idles, so
    // lend the pool to the conv kernels for the im2col batch fan-out
    // (disjoint per-image writes — bit-identical for any thread count).
    // Per-client training never gets this: kernel_pool() is thread-local
    // and worker threads keep it null, which is what makes nested
    // parallel_for impossible (see kernels/kernels.h).
    kernels::ScopedKernelPool lend(pool.get());
    auto trained = core::train_trojaned_model(std::move(attacker_model),
                                              auxiliary, *wb.train_triggers[0],
                                              cfg.trojan_train, attacker_rng);
    result.trojaned_model = std::move(trained.x);
    for (auto* c : collapois_clients) {
      c->set_trojaned_model(result.trojaned_model);
    }
    for (auto* c : mrepl_clients) c->set_trojaned_model(result.trojaned_model);
  };

  // --- resume ------------------------------------------------------------
  std::size_t start_round = 0;
  if (!options.checkpoint_load_path.empty()) {
    // Resume reads through the rolling chain (sim/checkpoint_store.h):
    // an intact head behaves exactly like the old single-file load; a
    // damaged head falls back to the newest intact generation and the
    // recovery is recorded in the result. keep_last bounds how far back
    // the walk goes.
    const CheckpointStore load_store(options.checkpoint_load_path,
                                     std::max<std::size_t>(
                                         options.checkpoint_keep, 1));
    CheckpointStore::Recovery recovery = load_store.load_newest();
    const Checkpoint ck = std::move(recovery.checkpoint);
    result.recovered_from = recovery.path;
    result.recovery_discarded = recovery.discarded;
    if (ck.fingerprint != config_fingerprint(cfg)) {
      throw std::invalid_argument(
          "run_experiment: checkpoint was saved under a different "
          "experiment configuration");
    }
    if (ck.net_fingerprint != net_fingerprint(cfg.net)) {
      throw std::invalid_argument(
          "run_experiment: checkpoint was saved under a different network "
          "model — the transport was toggled or a --net-* parameter "
          "(loss/corruption/duplication/latency/deadline/retry/backoff/"
          "over-sampling/seed) changed since the checkpoint; resume with "
          "the exact transport configuration the checkpoint was taken "
          "under");
    }
    if (ck.engine_fingerprint != engine_fingerprint(cfg)) {
      throw std::invalid_argument(
          "run_experiment: checkpoint was saved under a different round "
          "engine — the engine kind (--round-engine) or a buffered-async "
          "knob (--async-k/--async-t-ms/--async-max-staleness) changed "
          "since the checkpoint; resume with the exact round-engine "
          "configuration the checkpoint was taken under");
    }
    if (ck.scale_fingerprint != scale_fingerprint(cfg)) {
      throw std::invalid_argument(
          "run_experiment: checkpoint was saved under a different scale-out "
          "topology — the shard count (--shards) or the population mode "
          "(--lazy-clients) changed since the checkpoint; lazy and eager "
          "runs are different deterministic universes and the lazy state "
          "blob stores only the materialized subset, so resume with the "
          "exact scale configuration the checkpoint was taken under");
    }
    if (ck.codec_fingerprint != codec_fingerprint(cfg.codec)) {
      throw std::invalid_argument(
          "run_experiment: checkpoint was saved under a different update "
          "codec — the codec kind (--codec) or one of its knobs "
          "(--codec-bits/--codec-topk) changed since the checkpoint; a "
          "lossy codec's quantization noise is part of the trajectory, so "
          "resume with the exact codec configuration the checkpoint was "
          "taken under");
    }
    if (ck.rounds_completed > cfg.rounds) {
      throw std::invalid_argument(
          "run_experiment: checkpoint is past this config's round budget");
    }
    start_round = ck.rounds_completed;
    rng.set_state(ck.run_rng);
    if (!ck.trojaned_model.empty()) {
      // Re-arm from the saved X instead of retraining it; the fork the
      // original arming consumed is already reflected in the restored
      // RNG state.
      result.trojaned_model = ck.trojaned_model;
      for (auto* c : collapois_clients) {
        c->set_trojaned_model(result.trojaned_model);
      }
      for (auto* c : mrepl_clients) {
        c->set_trojaned_model(result.trojaned_model);
      }
    }
    if (fault_model) {
      fl::StateReader r(ck.fault_state);
      fault_model->load_state(r);
    }
    if (net_model) {
      fl::StateReader r(ck.net_state);
      net_model->load_state(r);
    }
    fl::StateReader r(ck.algo_state);
    algo->load_state(r);
  }

  const bool save_requested =
      !options.checkpoint_save_path.empty() && options.checkpoint_round > 0 &&
      options.checkpoint_round < cfg.rounds;
  const std::size_t stop_round =
      save_requested ? options.checkpoint_round : cfg.rounds;
  if (save_requested && options.checkpoint_round <= start_round) {
    throw std::invalid_argument(
        "run_experiment: checkpoint_round must be past the resume point");
  }

  // The durable rolling chain for periodic saves (and for the one-shot
  // halt save below, so both paths share rotation and atomicity).
  std::unique_ptr<CheckpointStore> store;
  if (!options.checkpoint_save_path.empty()) {
    store = std::make_unique<CheckpointStore>(
        options.checkpoint_save_path,
        std::max<std::size_t>(options.checkpoint_keep, 1));
  }
  // Every piece of mutable round-loop state, frozen as of
  // `rounds_completed`. Shared by the periodic saves, the chaos
  // mid-save tear, and the one-shot halt save.
  auto make_checkpoint = [&](std::size_t rounds_completed) {
    Checkpoint ck;
    ck.fingerprint = config_fingerprint(cfg);
    ck.net_fingerprint = net_fingerprint(cfg.net);
    ck.engine_fingerprint = engine_fingerprint(cfg);
    ck.scale_fingerprint = scale_fingerprint(cfg);
    ck.codec_fingerprint = codec_fingerprint(cfg.codec);
    ck.rounds_completed = rounds_completed;
    ck.run_rng = rng.state();
    ck.trojaned_model = result.trojaned_model;
    if (fault_model) {
      fl::StateWriter w;
      fault_model->save_state(w);
      ck.fault_state = w.take();
    }
    if (net_model) {
      fl::StateWriter w;
      net_model->save_state(w);
      ck.net_state = w.take();
    }
    fl::StateWriter w;
    algo->save_state(w);
    ck.algo_state = w.take();
    return ck;
  };

  for (std::size_t t = start_round; t < stop_round; ++t) {
    if (t >= cfg.attack_start_round) arm_attackers();
    fl::RoundTelemetry telemetry = algo->run_round();
    RoundRecord rec;
    rec.round = t;
    rec.angles = metrics::summarize_round_angles(telemetry);
    rec.n_accepted = telemetry.sampled_ids.size();
    rec.n_dropped = telemetry.dropped_ids.size();
    rec.n_rejected = telemetry.rejected_ids.size();
    rec.n_stragglers = telemetry.n_stragglers;
    rec.aggregate_skipped = telemetry.aggregate_skipped;
    rec.cohort_size = telemetry.cohort_size;
    rec.transport = telemetry.transport;
    for (fl::DropReason reason : telemetry.drop_reasons) {
      if (reason == fl::DropReason::stale_discarded) ++rec.n_stale_discarded;
    }
    rec.n_dispatched = telemetry.n_dispatched;
    rec.n_buffered = telemetry.n_buffered;
    rec.virtual_now_ms = telemetry.virtual_now_ms;
    rec.staleness_hist = telemetry.staleness_hist;
    rec.wall_ms = telemetry.wall_ms;
    rec.train_ms = telemetry.train_ms;
    rec.agg_ms = telemetry.agg_ms;
    rec.clients_per_sec = telemetry.clients_per_sec;
    rec.peak_rss_bytes = telemetry.peak_rss_bytes;
    rec.n_materialized = telemetry.n_materialized;
    rec.shard_failures = telemetry.infra.shard_failures;
    rec.shard_retries = telemetry.infra.shard_retries;
    rec.shard_failovers = telemetry.infra.shard_failovers;
    rec.shard_backoff_ms = telemetry.infra.backoff_virtual_ms;
    rec.degraded = telemetry.infra.degraded;
    if (!result.trojaned_model.empty() &&
        cfg.algorithm != AlgorithmKind::metafed) {
      rec.distance_to_x = stats::l2_distance(algo->global_params(),
                                             result.trojaned_model);
    }
    if (cfg.eval_every > 0 && (t + 1) % cfg.eval_every == 0) {
      const auto evals = eval_clients(periodic_eval);
      rec.population = metrics::average_benign(evals);
    }
    result.rounds.push_back(std::move(rec));
    if (options.keep_telemetry) {
      result.telemetry.push_back(std::move(telemetry));
    }

    // --- chaos + periodic durability (DESIGN.md §13) --------------------
    // Ordering is the contract: post_train fires BEFORE the round's
    // checkpoint exists (the round is lost), mid_save tears the write
    // itself, mid_buffer fires right AFTER the save (the newest
    // checkpoint carries the engine's in-flight buffer state).
    const bool crash_here = t == options.crash_round;
    if (crash_here && options.crash_phase == CrashPhase::post_train) {
      throw CrashInjected(t, CrashPhase::post_train);
    }
    const bool periodic_due =
        periodic_saves && (t + 1) % options.checkpoint_every == 0;
    if (periodic_due || crash_here) {
      const Checkpoint ck = make_checkpoint(t + 1);
      if (crash_here && options.crash_phase == CrashPhase::mid_save) {
        store->save_torn(ck, 0.5);
        throw CrashInjected(t, CrashPhase::mid_save);
      }
      store->save(ck);
      if (crash_here) throw CrashInjected(t, CrashPhase::mid_buffer);
    }
  }

  // --- checkpoint ---------------------------------------------------------
  // Saved BEFORE the final evaluation below: evaluation trains personal
  // models off client RNG streams, and those draws belong to the resumed
  // run, not the frozen state.
  if (save_requested) {
    store->save(make_checkpoint(stop_round));
  }

  // --- final client-level evaluation ---------------------------------------
  result.final_global = algo->global_params();
  metrics::EvalConfig final_eval;
  final_eval.target_label = cfg.target_label;
  // Lazy mode keeps the eval_max_clients bound even for the final sweep:
  // evaluating the full registered population would materialize it.
  final_eval.max_clients = cfg.lazy_clients ? cfg.eval_max_clients : 0;
  final_eval.pool = pool.get();
  result.final_evals = eval_clients(final_eval);
  result.population = metrics::average_benign(result.final_evals);

  // The proximity analysis only reads the evaluated clients' histograms,
  // so lazy mode fills exactly those slots (their splits are already
  // cached by the sweep above).
  std::vector<std::vector<double>> histograms;
  if (cfg.lazy_clients) {
    histograms.resize(n);
    for (const auto& e : result.final_evals) {
      histograms[e.client_index] = wb.lazy_fed->client_histogram(e.client_index);
    }
  } else {
    histograms = wb.fed.client_label_histograms();
  }
  std::vector<double> aux_hist = result.auxiliary_histogram;
  if (aux_hist.empty()) aux_hist.assign(wb.num_classes(), 1.0);
  result.clusters = metrics::risk_clusters(result.final_evals, {1, 25, 50},
                                           histograms, aux_hist);
  return result;
}

}  // namespace collapois::sim
