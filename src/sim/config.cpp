#include "sim/config.h"

#include <stdexcept>

namespace collapois::sim {

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::femnist_like: return "femnist";
    case DatasetKind::sentiment_like: return "sentiment";
  }
  return "unknown";
}

const char* algorithm_name(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::fedavg: return "fedavg";
    case AlgorithmKind::feddc: return "feddc";
    case AlgorithmKind::metafed: return "metafed";
  }
  return "unknown";
}

const char* attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::none: return "none";
    case AttackKind::collapois: return "collapois";
    case AttackKind::dpois: return "dpois";
    case AttackKind::mrepl: return "mrepl";
    case AttackKind::dba: return "dba";
  }
  return "unknown";
}

DatasetKind parse_dataset(const std::string& name) {
  if (name == "femnist") return DatasetKind::femnist_like;
  if (name == "sentiment") return DatasetKind::sentiment_like;
  throw std::invalid_argument("parse_dataset: unknown dataset '" + name + "'");
}

AlgorithmKind parse_algorithm(const std::string& name) {
  if (name == "fedavg") return AlgorithmKind::fedavg;
  if (name == "feddc") return AlgorithmKind::feddc;
  if (name == "metafed") return AlgorithmKind::metafed;
  throw std::invalid_argument("parse_algorithm: unknown algorithm '" + name +
                              "'");
}

AttackKind parse_attack(const std::string& name) {
  if (name == "none") return AttackKind::none;
  if (name == "collapois") return AttackKind::collapois;
  if (name == "dpois") return AttackKind::dpois;
  if (name == "mrepl") return AttackKind::mrepl;
  if (name == "dba") return AttackKind::dba;
  throw std::invalid_argument("parse_attack: unknown attack '" + name + "'");
}

}  // namespace collapois::sim
