#include "sim/checkpoint_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace collapois::sim {

namespace {

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

}  // namespace

CheckpointStore::CheckpointStore(std::string head_path, std::size_t keep_last)
    : head_path_(std::move(head_path)), keep_last_(keep_last) {
  if (head_path_.empty()) {
    throw std::invalid_argument("CheckpointStore: empty head path");
  }
  if (keep_last_ == 0) {
    throw std::invalid_argument("CheckpointStore: keep_last must be >= 1");
  }
}

std::string CheckpointStore::slot_path(std::size_t age) const {
  if (age == 0) return head_path_;
  return head_path_ + "." + std::to_string(age);
}

void CheckpointStore::rotate() {
  // Oldest-first renames: .K-2 -> .K-1, ..., head -> .1. A missing slot
  // simply fails its rename (the chain is shorter than K early in a
  // run); any other state is handled by the atomic head write after.
  for (std::size_t age = keep_last_ - 1; age > 0; --age) {
    std::rename(slot_path(age - 1).c_str(), slot_path(age).c_str());
  }
}

void CheckpointStore::save(const Checkpoint& ck) {
  rotate();
  save_checkpoint_file(head_path_, ck);
}

void CheckpointStore::save_torn(const Checkpoint& ck, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("CheckpointStore: torn fraction not in [0,1]");
  }
  rotate();
  const std::vector<std::uint8_t> image = encode_checkpoint(ck);
  const std::size_t n =
      static_cast<std::size_t>(fraction * static_cast<double>(image.size()));
  // Deliberately the UNSAFE write path: straight over the head, no temp
  // file, no flush discipline — the pre-§13 failure mode, preserved as a
  // test fixture.
  std::ofstream out(head_path_, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("CheckpointStore: cannot open " + head_path_ +
                             ": " + std::strerror(errno));
  }
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(n));
  if (!out) {
    throw std::runtime_error("CheckpointStore: torn write failed for " +
                             head_path_);
  }
}

CheckpointStore::Recovery CheckpointStore::load_newest() const {
  std::size_t discarded = 0;
  std::string errors;
  bool any_seen = false;
  for (std::size_t age = 0; age < keep_last_; ++age) {
    const std::string path = slot_path(age);
    if (!file_exists(path)) continue;  // short chain: normal, not an error
    any_seen = true;
    try {
      Recovery r;
      r.checkpoint = load_checkpoint_file(path);
      r.path = path;
      r.discarded = discarded;
      return r;
    } catch (const std::exception& e) {
      ++discarded;
      errors += std::string("\n  ") + path + ": " + e.what();
    }
  }
  if (!any_seen) {
    throw std::runtime_error("CheckpointStore: no checkpoint found at " +
                             head_path_ + " (or any rotated generation)");
  }
  throw std::runtime_error(
      "CheckpointStore: every checkpoint generation is damaged:" + errors);
}

}  // namespace collapois::sim
