#include "sim/chaos.h"

namespace collapois::sim {

const char* crash_phase_name(CrashPhase phase) {
  switch (phase) {
    case CrashPhase::post_train: return "post-train";
    case CrashPhase::mid_buffer: return "mid-buffer";
    case CrashPhase::mid_save: return "mid-save";
  }
  return "unknown";
}

CrashPhase parse_crash_phase(const std::string& name) {
  if (name == "post-train") return CrashPhase::post_train;
  if (name == "mid-buffer") return CrashPhase::mid_buffer;
  if (name == "mid-save") return CrashPhase::mid_save;
  throw std::invalid_argument(
      "unknown crash phase '" + name +
      "' (expected post-train, mid-buffer or mid-save)");
}

}  // namespace collapois::sim
