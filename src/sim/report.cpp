#include "sim/report.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "defense/defense_kernels.h"
#include "kernels/cpu_dispatch.h"

namespace collapois::sim {

void print_series(std::ostream& os, const std::string& title,
                  const std::vector<SeriesRow>& rows) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(48) << "series" << std::right << std::setw(12)
     << "benign_ac" << std::setw(12) << "attack_sr" << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(48) << r.label << std::right << std::fixed
       << std::setprecision(4) << std::setw(12) << r.benign_ac
       << std::setw(12) << r.attack_sr << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void print_clusters(std::ostream& os, const std::string& title,
                    const std::vector<metrics::ClusterResult>& clusters) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(14) << "cluster" << std::right << std::setw(10)
     << "clients" << std::setw(12) << "benign_ac" << std::setw(12)
     << "attack_sr" << std::setw(10) << "CS_k" << "\n";
  for (const auto& c : clusters) {
    os << std::left << std::setw(14) << c.name << std::right << std::setw(10)
       << c.client_indices.size() << std::fixed << std::setprecision(4)
       << std::setw(12) << c.mean_benign_ac << std::setw(12)
       << c.mean_attack_sr << std::setw(10) << c.label_cosine << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void print_rounds(std::ostream& os, const std::string& title,
                  const std::vector<RoundRecord>& rounds) {
  os << "== " << title << " ==\n";
  os << std::right << std::setw(7) << "round" << std::setw(12) << "benign_ac"
     << std::setw(12) << "attack_sr" << std::setw(12) << "dist_to_X"
     << std::setw(10) << "accepted" << std::setw(10) << "dropped"
     << std::setw(10) << "rejected" << std::setw(8) << "stale" << "\n";
  for (const auto& r : rounds) {
    os << std::right << std::setw(7) << r.round << std::fixed
       << std::setprecision(4);
    if (r.population.has_value()) {
      os << std::setw(12) << r.population->benign_ac << std::setw(12)
         << r.population->attack_sr;
    } else {
      os << std::setw(12) << "-" << std::setw(12) << "-";
    }
    os << std::setw(12) << r.distance_to_x;
    os.unsetf(std::ios::fixed);
    os << std::setw(10) << r.n_accepted << std::setw(10) << r.n_dropped
       << std::setw(10) << r.n_rejected << std::setw(8) << r.n_stragglers;
    if (r.aggregate_skipped) os << "  [round skipped]";
    os << "\n";
  }
}

void write_series_csv(std::ostream& os, const std::vector<SeriesRow>& rows) {
  os << "series,benign_ac,attack_sr\n";
  for (const auto& r : rows) {
    os << r.label << ',' << r.benign_ac << ',' << r.attack_sr << "\n";
  }
}

namespace {

// JSON has no NaN/Infinity literal; a diverged metric (e.g. dist_to_x
// after the trajectory blew up under a lossy codec) must serialize as
// null, not as the "-nan" that ostream would print — which breaks every
// downstream json.load.
struct JsonNum {
  double v;
};
std::ostream& operator<<(std::ostream& os, JsonNum n) {
  if (std::isfinite(n.v)) return os << n.v;
  return os << "null";
}

}  // namespace

void write_rounds_json(std::ostream& os, const ExperimentConfig& config,
                       const std::vector<RoundRecord>& rounds) {
  // The kernels block records which compute path produced this run:
  // kernel set, defense impl, and the runtime-dispatched ISA tier
  // (cpu_dispatch.h) with its microkernel geometry and the cpuid feature
  // flags. BENCH_*/report artifacts are not comparable across tiers
  // without it.
  const kernels::DispatchInfo di = kernels::dispatch_info();
  os << "{\"tag\": \"" << experiment_tag(config) << "\",\n \"kernels\": {"
     << "\"set\": \"" << kernels::kernel_kind_name(config.kernels) << "\""
     << ", \"defense_impl\": \""
     << defense::defense_impl_name(config.defense_impl) << "\""
     << ", \"isa_tier\": \"" << kernels::isa_tier_name(di.tier) << "\""
     << ", \"microkernel\": \"" << di.microkernel << "\""
     << ", \"mr\": " << di.mr << ", \"nr\": " << di.nr
     << ", \"forced\": " << (di.forced ? "true" : "false")
     << ", \"cpu_features\": \"" << kernels::cpu_feature_string() << "\"},\n"
     << " \"rounds\": [";
  bool first = true;
  for (const auto& r : rounds) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"round\": " << r.round << ", \"accepted\": " << r.n_accepted
       << ", \"dropped\": " << r.n_dropped
       << ", \"rejected\": " << r.n_rejected
       << ", \"stragglers\": " << r.n_stragglers
       << ", \"skipped\": " << (r.aggregate_skipped ? "true" : "false")
       << ", \"dist_to_x\": " << JsonNum{r.distance_to_x}
       << ", \"wall_ms\": " << r.wall_ms
       << ", \"agg_ms\": " << r.agg_ms
       << ", \"clients_per_sec\": " << r.clients_per_sec;
    if (config.net.enabled) {
      // Per-round transport block: message counters, bytes-on-wire under
      // the configured codec, and the virtual arrival-time quantiles
      // (see net::TransportStats). compression_ratio is the realized
      // fp32/wire ratio over the round's send attempts (1 when nothing
      // was sent, so the field is always well-formed JSON).
      const double ratio =
          r.transport.wire_bytes_sent > 0
              ? static_cast<double>(r.transport.fp32_bytes_sent) /
                    static_cast<double>(r.transport.wire_bytes_sent)
              : 1.0;
      os << ", \"net\": {\"cohort\": " << r.cohort_size
         << ", \"codec\": \"" << net::codec_kind_name(config.codec.kind)
         << "\""
         << ", \"sent\": " << r.transport.msgs_sent
         << ", \"lost\": " << r.transport.lost
         << ", \"corrupted\": " << r.transport.corrupted
         << ", \"retried\": " << r.transport.retried
         << ", \"duplicated\": " << r.transport.duplicated
         << ", \"transport_dropped\": " << r.transport.transport_dropped
         << ", \"deadline_dropped\": " << r.transport.deadline_dropped
         << ", \"excess_dropped\": " << r.transport.excess_dropped
         << ", \"fp32_bytes_sent\": " << r.transport.fp32_bytes_sent
         << ", \"wire_bytes_sent\": " << r.transport.wire_bytes_sent
         << ", \"wire_bytes_received\": " << r.transport.wire_bytes_received
         << ", \"compression_ratio\": " << ratio
         << ", \"arrival_p50_ms\": " << r.transport.arrival_p50_ms
         << ", \"arrival_p90_ms\": " << r.transport.arrival_p90_ms
         << ", \"arrival_max_ms\": " << r.transport.arrival_max_ms << "}";
    }
    if (config.round_engine == fl::RoundEngineKind::buffered_async) {
      // Per-cycle async block: launch/buffer occupancy, the virtual
      // clock, stale discards, and the per-aggregation staleness
      // histogram (staleness_hist[s] = admitted updates s rounds stale).
      os << ", \"async\": {\"dispatched\": " << r.n_dispatched
         << ", \"stale_discarded\": " << r.n_stale_discarded
         << ", \"buffered\": " << r.n_buffered
         << ", \"virtual_now_ms\": " << r.virtual_now_ms
         << ", \"staleness_hist\": [";
      for (std::size_t s = 0; s < r.staleness_hist.size(); ++s) {
        if (s != 0) os << ", ";
        os << r.staleness_hist[s];
      }
      os << "]}";
    }
    if (config.shards > 1 || config.lazy_clients) {
      // Per-round scale block: the memory story of the sharded/lazy
      // regime (peak RSS so far, distinct clients instantiated).
      os << ", \"scale\": {\"shards\": " << config.shards
         << ", \"lazy\": " << (config.lazy_clients ? "true" : "false")
         << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
         << ", \"materialized\": " << r.n_materialized << "}";
    }
    if (config.shard_faults.any()) {
      // Per-round infrastructure block (DESIGN.md §13): shard failures,
      // retries, failovers and the virtual backoff they cost; "degraded"
      // marks rounds that completed with fewer live shards (bit-exact
      // failover — the result is unchanged, only WHO computed it).
      os << ", \"infra\": {\"shard_failures\": " << r.shard_failures
         << ", \"shard_retries\": " << r.shard_retries
         << ", \"shard_failovers\": " << r.shard_failovers
         << ", \"backoff_virtual_ms\": " << r.shard_backoff_ms
         << ", \"degraded\": " << (r.degraded ? "true" : "false") << "}";
    }
    if (r.population.has_value()) {
      os << ", \"benign_ac\": " << JsonNum{r.population->benign_ac}
         << ", \"attack_sr\": " << JsonNum{r.population->attack_sr};
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::string experiment_tag(const ExperimentConfig& config) {
  std::ostringstream ss;
  ss << dataset_name(config.dataset) << '/' << algorithm_name(config.algorithm)
     << '/' << attack_name(config.attack) << '/'
     << defense::defense_name(config.defense) << " a=" << config.alpha
     << " c=" << config.compromised_fraction;
  return ss.str();
}

}  // namespace collapois::sim
