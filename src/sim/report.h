// Console reporting: fixed-width tables matching the rows/series the
// paper's figures plot, plus CSV emission for downstream plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace collapois::sim {

// One row of a figure-style series: a labelled (Benign AC, Attack SR)
// pair, e.g. ("alpha=0.01, collapois", 0.81, 0.88).
struct SeriesRow {
  std::string label;
  double benign_ac = 0.0;
  double attack_sr = 0.0;
};

// Render a titled table of rows ("label | benign_ac | attack_sr").
void print_series(std::ostream& os, const std::string& title,
                  const std::vector<SeriesRow>& rows);

// Cluster table (Fig. 12-style): name | clients | benign AC | attack SR |
// CS_k.
void print_clusters(std::ostream& os, const std::string& title,
                    const std::vector<metrics::ClusterResult>& clusters);

// Per-round table (Fig. 13-style): round | benign AC | attack SR |
// dist-to-X | accepted | dropped | rejected | stale.
void print_rounds(std::ostream& os, const std::string& title,
                  const std::vector<RoundRecord>& rounds);

// Comma-separated emission of a series for plotting.
void write_series_csv(std::ostream& os, const std::vector<SeriesRow>& rows);

// JSON report of a run's per-round records, fault counters and runtime
// telemetry included:
// {"tag": ..., "rounds": [{"round": 0, "accepted": ..., "dropped": ...,
// "rejected": ..., "stragglers": ..., "skipped": ..., "dist_to_x": ...,
// "wall_ms": ..., "agg_ms": ..., "clients_per_sec": ...,
// "benign_ac": ..., "attack_sr": ...}, ...]}. benign_ac/attack_sr appear
// only on rounds where the periodic evaluation ran.
void write_rounds_json(std::ostream& os, const ExperimentConfig& config,
                       const std::vector<RoundRecord>& rounds);

// Short "dataset/algorithm/attack/defense alpha=..." experiment tag used
// as a row label.
std::string experiment_tag(const ExperimentConfig& config);

}  // namespace collapois::sim
