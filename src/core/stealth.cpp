#include "core/stealth.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/geometry.h"
#include "stats/summary.h"

namespace collapois::core {

std::vector<tensor::FlatVec> sample_background_gradients(
    const std::vector<const data::Dataset*>& clean_datasets,
    const nn::Model& architecture, std::span<const float> global,
    const nn::SgdConfig& sgd, stats::Rng& rng) {
  if (clean_datasets.empty()) {
    throw std::invalid_argument("sample_background_gradients: no datasets");
  }
  std::vector<tensor::FlatVec> out;
  out.reserve(clean_datasets.size());
  nn::Model scratch = architecture;
  for (const data::Dataset* d : clean_datasets) {
    if (d == nullptr || d->empty()) continue;
    scratch.set_parameters(global);
    nn::train_sgd(scratch, *d, sgd, rng);
    out.push_back(tensor::sub(global, scratch.get_parameters()));
  }
  if (out.empty()) {
    throw std::invalid_argument(
        "sample_background_gradients: all datasets empty");
  }
  return out;
}

BlendReport measure_blend(const std::vector<tensor::FlatVec>& background,
                          const std::vector<tensor::FlatVec>& malicious) {
  if (background.empty() || malicious.empty()) {
    throw std::invalid_argument("measure_blend: empty input");
  }
  const tensor::FlatVec center = tensor::mean_of(background);

  const auto benign_angles = stats::angles_to_reference(background, center);
  const auto mal_angles = stats::angles_to_reference(malicious, center);

  BlendReport r;
  r.benign_angle_mean = stats::mean(benign_angles);
  r.benign_angle_var = stats::variance(benign_angles);
  r.malicious_angle_mean = stats::mean(mal_angles);
  r.malicious_angle_var = stats::variance(mal_angles);

  std::vector<double> bn;
  bn.reserve(background.size());
  for (const auto& g : background) bn.push_back(stats::l2_norm(g));
  std::vector<double> mn;
  mn.reserve(malicious.size());
  for (const auto& g : malicious) mn.push_back(stats::l2_norm(g));
  r.benign_norm_mean = stats::mean(bn);
  r.malicious_norm_mean = stats::mean(mn);
  return r;
}

StealthChoice tune_stealth(
    const std::vector<tensor::FlatVec>& background,
    std::span<const float> global, std::span<const float> x,
    const std::vector<std::pair<double, double>>& candidate_ranges,
    std::size_t samples_per_range, stats::Rng& rng) {
  if (candidate_ranges.empty() || samples_per_range == 0) {
    throw std::invalid_argument("tune_stealth: empty search space");
  }
  // Magnitude envelope of the background: clip bound A set at its mean
  // norm so malicious magnitudes sit inside the benign range.
  std::vector<double> norms;
  norms.reserve(background.size());
  for (const auto& g : background) norms.push_back(stats::l2_norm(g));
  const double clip = stats::mean(norms);

  const tensor::FlatVec direction = tensor::sub(global, x);

  StealthChoice best;
  best.objective = std::numeric_limits<double>::infinity();
  for (const auto& [a, b] : candidate_ranges) {
    if (!(a > 0.0 && a < b && b <= 1.0)) continue;
    std::vector<tensor::FlatVec> malicious;
    malicious.reserve(samples_per_range);
    for (std::size_t i = 0; i < samples_per_range; ++i) {
      tensor::FlatVec g = direction;
      tensor::scale_inplace(g, rng.uniform(a, b));
      if (clip > 0.0) tensor::clip_l2_inplace(g, clip);
      malicious.push_back(std::move(g));
    }
    const BlendReport rep = measure_blend(background, malicious);
    const double objective =
        std::fabs(rep.malicious_angle_mean - rep.benign_angle_mean) +
        std::fabs(rep.malicious_angle_var - rep.benign_angle_var);
    if (objective < best.objective) {
      best.objective = objective;
      best.report = rep;
      best.config.psi_a = a;
      best.config.psi_b = b;
      best.config.clip = clip;
    }
  }
  if (!std::isfinite(best.objective)) {
    throw std::invalid_argument("tune_stealth: no valid psi range");
  }
  return best;
}

}  // namespace collapois::core
