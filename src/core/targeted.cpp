#include "core/targeted.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::core {

namespace {

double cumulative_cosine(std::span<const double> a,
                         std::span<const double> b) {
  std::vector<double> ca(a.begin(), a.end());
  std::vector<double> cb(b.begin(), b.end());
  for (std::size_t j = 1; j < ca.size(); ++j) {
    ca[j] += ca[j - 1];
    cb[j] += cb[j - 1];
  }
  return stats::cosine_similarity(std::span<const double>(ca),
                                  std::span<const double>(cb));
}

}  // namespace

std::vector<std::size_t> select_high_value_targets(
    const std::vector<std::vector<double>>& client_histograms,
    std::span<const double> reference_histogram, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "select_high_value_targets: fraction must be in (0, 1]");
  }
  if (client_histograms.empty()) return {};
  std::vector<std::size_t> order(client_histograms.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> cs(client_histograms.size());
  for (std::size_t i = 0; i < client_histograms.size(); ++i) {
    if (client_histograms[i].size() != reference_histogram.size()) {
      throw std::invalid_argument(
          "select_high_value_targets: histogram size mismatch");
    }
    cs[i] = cumulative_cosine(client_histograms[i], reference_histogram);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return cs[a] > cs[b]; });
  std::size_t take = static_cast<std::size_t>(
      fraction * static_cast<double>(order.size()));
  take = std::max<std::size_t>(take, 1);
  order.resize(std::min(take, order.size()));
  return order;
}

data::Dataset reweight_to_distribution(
    const data::Dataset& auxiliary, std::span<const double> target_histogram,
    std::size_t output_size, stats::Rng& rng) {
  if (auxiliary.empty()) {
    throw std::invalid_argument("reweight_to_distribution: empty auxiliary");
  }
  if (target_histogram.size() != auxiliary.num_classes()) {
    throw std::invalid_argument(
        "reweight_to_distribution: histogram size mismatch");
  }
  // Index auxiliary examples by label.
  std::vector<std::vector<std::size_t>> by_label(auxiliary.num_classes());
  for (std::size_t i = 0; i < auxiliary.size(); ++i) {
    by_label[static_cast<std::size_t>(auxiliary[i].label)].push_back(i);
  }
  // Only classes the attacker actually holds can be sampled.
  std::vector<double> weights(target_histogram.begin(),
                              target_histogram.end());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    if (by_label[c].empty()) weights[c] = 0.0;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument(
        "reweight_to_distribution: no overlap between auxiliary labels and "
        "target distribution");
  }

  data::Dataset out(auxiliary.num_classes());
  out.reserve(output_size);
  for (std::size_t i = 0; i < output_size; ++i) {
    const std::size_t cls = rng.categorical(weights);
    const auto& pool = by_label[cls];
    out.add(auxiliary[pool[static_cast<std::size_t>(
        rng.uniform_int(pool.size()))]]);
  }
  return out;
}

SemiReadyClient::SemiReadyClient(std::unique_ptr<CollaPoisClient> attack,
                                 tensor::FlatVec specialized_x,
                                 tensor::FlatVec target_direction,
                                 SemiReadyConfig config)
    : attack_(std::move(attack)),
      x_(std::move(specialized_x)),
      target_direction_(std::move(target_direction)),
      config_(config) {
  if (!attack_) throw std::invalid_argument("SemiReadyClient: null attack");
  if (x_.empty() || target_direction_.empty()) {
    throw std::invalid_argument(
        "SemiReadyClient: need specialized X and target direction");
  }
  if (config_.window == 0 || config_.required_signals == 0) {
    throw std::invalid_argument("SemiReadyClient: degenerate config");
  }
}

void SemiReadyClient::observe(std::span<const float> global) {
  if (activated_) return;
  if (!last_global_.empty() && last_global_.size() == global.size()) {
    // Drift of the global model since the last observation. The cohort's
    // pseudo-gradient points where training on cohort data *came from*,
    // so cohort participation shows up as drift aligned with the negative
    // target direction.
    tensor::FlatVec drift =
        tensor::sub(global, last_global_);
    const double cos = stats::cosine_similarity(
        drift, tensor::scale(target_direction_, -1.0));
    const bool signal = cos > config_.activation_cosine;
    window_.push_back(signal);
    if (window_.size() > config_.window) window_.pop_front();
    signals_ = static_cast<std::size_t>(
        std::count(window_.begin(), window_.end(), true));
    if (signals_ >= config_.required_signals) {
      activated_ = true;
      attack_->set_trojaned_model(x_);
    }
  }
  last_global_.assign(global.begin(), global.end());
}

fl::ClientUpdate SemiReadyClient::compute_update(const fl::RoundContext& ctx) {
  observe(ctx.global);
  return attack_->compute_update(ctx);
}

void SemiReadyClient::distill_round(nn::Model& personal, nn::Model& teacher) {
  observe(personal.get_parameters());
  attack_->distill_round(personal, teacher);
}

}  // namespace collapois::core
