// The paper's theoretical results, as executable code:
//
//  - Theorem 1 (Eq. 5): lower bound on the number of compromised clients
//    |C| needed for a successful poisoning round, as a function of the
//    benign-gradient angle statistics (mu_alpha, sigma) and the psi range
//    [a, b]; plus the attacker-side estimator of those statistics and the
//    Hoeffding analysis of its approximation error (Fig. 4).
//  - Theorem 2 (Eq. 6): bound on ||theta^t - X||.
//  - Theorem 3 (Eq. 7): bounds on the server's estimation error of X.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/vecops.h"

namespace collapois::core::theory {

// ------------------------------------------------------------- Theorem 1

// Angle statistics of benign pseudo-gradients against the aggregated
// malicious direction: beta_i ~ N(mu, sigma^2) in the theorem's model.
struct AngleStats {
  double mu = 0.0;     // mean angle (radians)
  double sigma = 0.0;  // standard deviation (radians)
  std::size_t count = 0;
};

// Compute (mu, sigma) of the angles between each gradient and the
// reference direction.
AngleStats estimate_angle_stats(const std::vector<tensor::FlatVec>& gradients,
                                std::span<const float> reference);

// Eq. 5 as a fraction of the population:
//   |C|/|N| >= (2 - sigma^2 - mu^2) / (a + b + 2 - sigma^2 - mu^2).
// Clamped to [0, 1]; when 2 - sigma^2 - mu^2 <= 0 the benign gradients
// are already too scattered to resist and the bound is 0.
double theorem1_fraction(double mu, double sigma, double a, double b);

// The unclamped value of the same expression (may be negative when
// benign gradients are highly scattered, i.e. mu^2 + sigma^2 > 2).
// Useful for comparing an estimate against the exact statistic without
// the clamp collapsing both to 0 (Fig. 4's relative-error analysis at
// simulator scale).
double theorem1_fraction_raw(double mu, double sigma, double a, double b);

// The bound as a client count (ceiling), for a population of size n.
std::size_t theorem1_min_compromised(double mu, double sigma, double a,
                                     double b, std::size_t n);

// Relative approximation error |(\hat C - C)| / C between the bound
// computed from the attacker's estimated angle stats and from the true
// (all-benign-clients) stats — the quantity plotted in Fig. 4.
double theorem1_relative_error(const AngleStats& estimated,
                               const AngleStats& exact, double a, double b,
                               std::size_t n);

// Hoeffding half-width on the attacker's estimate of E[beta^2] from
// `n_samples` angle observations at confidence 1 - delta (angles live in
// [0, pi]).
double theorem1_hoeffding_halfwidth(std::size_t n_samples, double delta);

// ------------------------------------------------------------- Theorem 2

// Eq. 6: ||theta^t - X|| <= (1/a - 1) * ||delta_c^{t'}|| + ||zeta||.
double theorem2_distance_bound(double a, double delta_norm, double zeta_norm);

// Empirical check data: the actual distance vs the bound for a round.
struct Theorem2Check {
  double distance = 0.0;  // ||theta^t - X||
  double bound = 0.0;
  bool holds() const { return distance <= bound + 1e-6; }
};

Theorem2Check theorem2_check(std::span<const float> global,
                             std::span<const float> x, double a,
                             double delta_norm, double zeta_norm);

// ------------------------------------------------------------- Theorem 3

struct Theorem3Bounds {
  double lower = 0.0;
  double upper = 0.0;
};

// Eq. 7. `detected_updates` are the updates of the compromised clients the
// server correctly identified (the C-bar set, detection precision p);
// `client_models` are candidate local models theta_i the server could
// average; `x` is the true Trojaned model. The upper bound maximizes
// ||mean(theta_i, i in L) - X|| over subsets L of size |C|; we use the
// greedy surrogate of taking the |C| models farthest from X, which upper
// bounds the mean-distance of any size-|C| subset built the same way and
// matches the paper's qualitative use of the bound.
Theorem3Bounds theorem3_error_bounds(
    const std::vector<tensor::FlatVec>& detected_updates, double p,
    std::size_t c_total, double b,
    const std::vector<tensor::FlatVec>& client_models,
    std::span<const float> x);

// The server's actual estimation error ||X' - X|| where
// X' = mean of the models it believes are compromised.
double estimation_error(const std::vector<tensor::FlatVec>& believed_models,
                        std::span<const float> x);

}  // namespace collapois::core::theory
