// Centralized training of the shared Trojaned model X (Algorithm 1 line 3,
// Eq. 1):
//
//   X = argmin_theta L(theta, D_a union D_a^Troj)
//
// where D_a is the auxiliary data pooled from the compromised clients
// (the paper uses their combined validation sets) and D_a^Troj is its
// trigger-poisoned, target-relabeled copy. X learns both the legitimate
// task (stealthiness property 1 of Section IV-D) and the backdoor.
#pragma once

#include "data/dataset.h"
#include "nn/model.h"
#include "nn/sgd.h"
#include "stats/rng.h"
#include "tensor/vecops.h"
#include "trojan/trigger.h"

namespace collapois::core {

struct TrojanTrainConfig {
  int target_label = 0;
  // Fraction of the auxiliary data duplicated in trojaned form; Eq. 1
  // uses the full union.
  double poison_fraction = 1.0;
  // The attacker trains X to convergence centrally (it has no round
  // budget); 40 epochs reach ~95% clean accuracy and ~100% trigger
  // activation on auxiliary sets of >= 60 samples.
  nn::SgdConfig sgd{.learning_rate = 0.05, .batch_size = 16, .epochs = 40};
};

struct TrojanTrainResult {
  tensor::FlatVec x;          // the Trojaned model's parameters
  double final_loss = 0.0;    // training loss of the last epoch
};

// Trains `model` (architecture + initialization supplied by the caller,
// matching the global model's structure) on D_a union D_a^Troj.
TrojanTrainResult train_trojaned_model(nn::Model model,
                                       const data::Dataset& auxiliary,
                                       const trojan::Trigger& trigger,
                                       const TrojanTrainConfig& config,
                                       stats::Rng& rng);

// Pool the validation sets of the compromised clients into the auxiliary
// dataset D_a (Section V, data configuration).
data::Dataset pool_auxiliary_data(
    const std::vector<const data::Dataset*>& validation_sets);

}  // namespace collapois::core
