// Stealth tuning (Section IV-D, Fig. 6).
//
// The attacker wants each transmitted malicious gradient to blend into
// the background of benign gradients: similar mean angle to a set of
// sampled (background) gradients, similar variance, and a magnitude
// inside the benign envelope. The attacker can only use what the threat
// model grants: clean data held by compromised clients and the broadcast
// global model — the background gradients are derived from those.
#pragma once

#include <vector>

#include "core/collapois_client.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "nn/sgd.h"
#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois::core {

// Clean pseudo-gradients computed from the compromised clients' datasets
// at the current global model — the attacker's stand-in for benign
// gradients ("sampled gradients" in Fig. 6).
std::vector<tensor::FlatVec> sample_background_gradients(
    const std::vector<const data::Dataset*>& clean_datasets,
    const nn::Model& architecture, std::span<const float> global,
    const nn::SgdConfig& sgd, stats::Rng& rng);

struct BlendReport {
  // Angle of each gradient against the mean background direction.
  double benign_angle_mean = 0.0;
  double benign_angle_var = 0.0;
  double malicious_angle_mean = 0.0;
  double malicious_angle_var = 0.0;
  // Magnitudes.
  double benign_norm_mean = 0.0;
  double malicious_norm_mean = 0.0;
};

// Measure how well `malicious` blends into `background` (both
// pseudo-gradient sets).
BlendReport measure_blend(const std::vector<tensor::FlatVec>& background,
                          const std::vector<tensor::FlatVec>& malicious);

struct StealthChoice {
  CollaPoisConfig config;
  BlendReport report;
  // |mean angle gap| + |variance gap| the search minimized.
  double objective = 0.0;
};

// Grid-search psi ranges [a, b] and the shared clip bound A so that the
// malicious gradients psi (theta - X) match the background's angle mean,
// variance, and magnitude. `candidate_ranges` are (a, b) pairs.
StealthChoice tune_stealth(
    const std::vector<tensor::FlatVec>& background,
    std::span<const float> global, std::span<const float> x,
    const std::vector<std::pair<double, double>>& candidate_ranges,
    std::size_t samples_per_range, stats::Rng& rng);

}  // namespace collapois::core
