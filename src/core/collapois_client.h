// The CollaPois compromised client (Algorithm 1 lines 12-13, Eq. 4).
//
// Every compromised client shares the same pre-trained Trojaned model X
// and, whenever sampled, transmits
//
//     g_c = psi_c^t * (theta^t - X),    psi_c^t ~ U[a, b],
//
// i.e. a pull of the global model toward X (see fl/update.h for the sign
// convention). Because all compromised clients point at the same X their
// updates are tightly aligned (Fig. 3a) while benign updates scatter with
// non-IID data — the asymmetry Theorem 1 turns into a lower bound on |C|.
//
// Stealth controls (Section IV-D):
//  - the dynamic rate psi keeps the update direction private to the
//    client, blocking the server from solving for X;
//  - an optional shared clip bound A keeps magnitudes inside the benign
//    envelope;
//  - an optional tau-upscaling keeps ||g_c|| >= tau near convergence so
//    the server's estimation error of X stays bounded away from zero
//    (Theorem 3, Fig. 7).
#pragma once

#include "fl/client.h"

namespace collapois::core {

struct CollaPoisConfig {
  // Support of the dynamic learning rate psi ~ U[a, b], 0 < a < b <= 1.
  double psi_a = 0.9;
  double psi_b = 1.0;
  // Shared L2 clip bound A on the transmitted update (0 disables).
  double clip = 0.0;
  // Minimum L2 norm tau of the transmitted update (0 disables).
  double tau = 0.0;

  // Section IV-D blending controls. Both use the client's own clean-data
  // gradient (computed through the dormant behaviour, which every
  // compromised client has) as the "background sample":
  //  - blend_fraction gamma in [0, 1): transmit
  //        (1 - gamma) * psi (theta - X) + gamma * g_clean,
  //    folding the malicious pull into a benign-looking update so its
  //    *angle* statistics sit inside the benign population;
  //  - mimic_benign_norm: rescale the transmitted update to ||g_clean||,
  //    so its *magnitude* is drawn from the benign norm distribution.
  // Stealth trades off pull strength (see bench_ablation_design).
  double blend_fraction = 0.0;
  bool mimic_benign_norm = false;
};

class CollaPoisClient : public fl::Client {
 public:
  // Construct with the Trojaned model X, or with an empty vector for a
  // *dormant* client: until set_trojaned_model() is called the client
  // behaves exactly like `dormant_behavior` (a benign trainer on the
  // compromised client's own data), which is how the attacker waits
  // through warmup rounds while training X from the observed global model.
  CollaPoisClient(std::size_t id, tensor::FlatVec trojaned_model,
                  CollaPoisConfig config, stats::Rng rng,
                  std::unique_ptr<fl::Client> dormant_behavior = nullptr);

  std::size_t id() const override { return id_; }
  bool is_compromised() const override { return true; }
  fl::ClientUpdate compute_update(const fl::RoundContext& ctx) override;
  void distill_round(nn::Model& personal, nn::Model& teacher) override;
  // X itself is checkpointed once at the experiment level (it is shared
  // by every compromised client); per-client state is the psi stream and
  // the dormant behaviour's state.
  void save_state(fl::StateWriter& w) const override;
  void load_state(fl::StateReader& r) override;

  // Arm (or re-point) the attack at a Trojaned model.
  void set_trojaned_model(tensor::FlatVec x);
  bool armed() const { return !x_.empty(); }

  const tensor::FlatVec& trojaned_model() const { return x_; }
  const CollaPoisConfig& config() const { return config_; }

  // The psi drawn for the most recent update (telemetry/tests).
  double last_psi() const { return last_psi_; }

 private:
  std::size_t id_;
  tensor::FlatVec x_;
  CollaPoisConfig config_;
  stats::Rng rng_;
  std::unique_ptr<fl::Client> dormant_;
  double last_psi_ = 0.0;
};

}  // namespace collapois::core
