// Targeted, "semi-ready" CollaPois — the escalation sketched in the
// paper's Discussion ("Attack Perspective"): instead of poisoning the
// whole federation, the attacker
//
//   1. identifies high-value clients by the proximity of their label
//      distributions to the auxiliary data (the same Eq. 9 cosine that
//      explains infection risk in Fig. 12),
//   2. trains a Trojaned model X specialized toward the target cohort's
//      data mix (auxiliary data re-weighted to approximate the targets'
//      behaviour), and
//   3. keeps compromised clients dormant until the aggregated updates
//      over recent rounds show the target cohort's participation pattern
//      (the global drift aligns with the cohort's gradient direction),
//      activating only then — boosting both precision and stealth.
#pragma once

#include <deque>

#include "core/collapois_client.h"
#include "data/dataset.h"
#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois::core {

// Rank client indices by the Eq. 9 cumulative-label cosine between their
// histograms and the reference (auxiliary) histogram, descending; returns
// the top `fraction` of them — the attacker's high-value cohort.
std::vector<std::size_t> select_high_value_targets(
    const std::vector<std::vector<double>>& client_histograms,
    std::span<const double> reference_histogram, double fraction);

// Re-weight the auxiliary data toward a target label distribution:
// resamples D_a (with replacement) so its label histogram matches
// `target_histogram`, producing the training set for a cohort-specialized
// Trojaned model.
data::Dataset reweight_to_distribution(
    const data::Dataset& auxiliary, std::span<const double> target_histogram,
    std::size_t output_size, stats::Rng& rng);

struct SemiReadyConfig {
  // Cosine between the observed global drift and the target direction
  // above which a round counts as "target cohort active".
  double activation_cosine = 0.1;
  // Number of signal rounds (within the sliding window) required to arm.
  std::size_t required_signals = 2;
  std::size_t window = 8;
};

// A CollaPois client that activates itself: while observing broadcast
// models it accumulates the drift theta^t - theta^{t-1}; once the drift
// has aligned with `target_direction` often enough, it arms the wrapped
// attack (which must already hold the specialized X). Until then it
// behaves benignly via the wrapped client's dormant mode.
class SemiReadyClient : public fl::Client {
 public:
  // `attack` must be a dormant-capable CollaPoisClient; `specialized_x`
  // is installed at activation time. `target_direction` is the attacker's
  // estimate of the cohort's gradient direction (descent convention).
  SemiReadyClient(std::unique_ptr<CollaPoisClient> attack,
                  tensor::FlatVec specialized_x,
                  tensor::FlatVec target_direction, SemiReadyConfig config);

  std::size_t id() const override { return attack_->id(); }
  bool is_compromised() const override { return true; }
  fl::ClientUpdate compute_update(const fl::RoundContext& ctx) override;
  void distill_round(nn::Model& personal, nn::Model& teacher) override;

  bool activated() const { return activated_; }
  std::size_t signals_observed() const { return signals_; }

 private:
  void observe(std::span<const float> global);

  std::unique_ptr<CollaPoisClient> attack_;
  tensor::FlatVec x_;
  tensor::FlatVec target_direction_;
  SemiReadyConfig config_;
  tensor::FlatVec last_global_;
  std::deque<bool> window_;
  std::size_t signals_ = 0;
  bool activated_ = false;
};

}  // namespace collapois::core
