#include "core/collapois_client.h"

#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::core {

CollaPoisClient::CollaPoisClient(std::size_t id,
                                 tensor::FlatVec trojaned_model,
                                 CollaPoisConfig config, stats::Rng rng,
                                 std::unique_ptr<fl::Client> dormant_behavior)
    : id_(id),
      x_(std::move(trojaned_model)),
      config_(config),
      rng_(std::move(rng)),
      dormant_(std::move(dormant_behavior)) {
  if (x_.empty() && !dormant_) {
    throw std::invalid_argument(
        "CollaPoisClient: need a Trojaned model or a dormant behaviour");
  }
  if (!(config_.psi_a > 0.0 && config_.psi_a < config_.psi_b &&
        config_.psi_b <= 1.0)) {
    throw std::invalid_argument(
        "CollaPoisClient: psi range must satisfy 0 < a < b <= 1");
  }
  if (config_.clip < 0.0 || config_.tau < 0.0) {
    throw std::invalid_argument("CollaPoisClient: negative clip/tau");
  }
  if (config_.blend_fraction < 0.0 || config_.blend_fraction >= 1.0) {
    throw std::invalid_argument(
        "CollaPoisClient: blend_fraction must be in [0, 1)");
  }
  if ((config_.blend_fraction > 0.0 || config_.mimic_benign_norm) &&
      !dormant_) {
    throw std::invalid_argument(
        "CollaPoisClient: blending needs a dormant behaviour to sample the "
        "clean-gradient background");
  }
}

void CollaPoisClient::set_trojaned_model(tensor::FlatVec x) {
  if (x.empty()) {
    throw std::invalid_argument("set_trojaned_model: empty model");
  }
  x_ = std::move(x);
}

fl::ClientUpdate CollaPoisClient::compute_update(const fl::RoundContext& ctx) {
  if (!armed()) {
    fl::ClientUpdate u = dormant_->compute_update(ctx);
    u.client_id = id_;
    return u;
  }
  if (ctx.global.size() != x_.size()) {
    throw std::invalid_argument("CollaPoisClient: dimension mismatch");
  }
  last_psi_ = rng_.uniform(config_.psi_a, config_.psi_b);

  fl::ClientUpdate u;
  u.client_id = id_;
  // g_c = psi * (theta^t - X): Eq. 4 in the descent convention.
  u.delta = tensor::sub(ctx.global, x_);
  tensor::scale_inplace(u.delta, last_psi_);

  if (config_.blend_fraction > 0.0 || config_.mimic_benign_norm) {
    // Section IV-D: blend into the clean-gradient background.
    const fl::ClientUpdate clean = dormant_->compute_update(ctx);
    const double clean_norm = stats::l2_norm(clean.delta);
    if (config_.blend_fraction > 0.0) {
      // Mix at matched magnitude, so gamma really interpolates the
      // *direction* between the malicious pull and the clean gradient.
      tensor::rescale_to_norm_inplace(u.delta, clean_norm);
      tensor::scale_inplace(u.delta, 1.0 - config_.blend_fraction);
      tensor::axpy_inplace(u.delta, config_.blend_fraction, clean.delta);
    }
    if (config_.mimic_benign_norm) {
      tensor::rescale_to_norm_inplace(u.delta, clean_norm);
    }
  }
  if (config_.clip > 0.0) {
    tensor::clip_l2_inplace(u.delta, config_.clip);
  }
  if (config_.tau > 0.0 && stats::l2_norm(u.delta) < config_.tau) {
    tensor::rescale_to_norm_inplace(u.delta, config_.tau);
  }
  u.weight = 1.0;
  return u;
}

void CollaPoisClient::save_state(fl::StateWriter& w) const {
  w.write_rng(rng_);
  w.write_double(last_psi_);
  if (dormant_) dormant_->save_state(w);
}

void CollaPoisClient::load_state(fl::StateReader& r) {
  r.read_rng(rng_);
  last_psi_ = r.read_double();
  if (dormant_) dormant_->load_state(r);
}

void CollaPoisClient::distill_round(nn::Model& personal, nn::Model& teacher) {
  if (!armed()) {
    dormant_->distill_round(personal, teacher);
    return;
  }
  // Under MetaFed the compromised client serves X itself, so successors in
  // the ring distill from the Trojaned model.
  personal.set_parameters(x_);
}

}  // namespace collapois::core
