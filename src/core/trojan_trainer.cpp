#include "core/trojan_trainer.h"

#include <stdexcept>

#include "trojan/poison.h"

namespace collapois::core {

TrojanTrainResult train_trojaned_model(nn::Model model,
                                       const data::Dataset& auxiliary,
                                       const trojan::Trigger& trigger,
                                       const TrojanTrainConfig& config,
                                       stats::Rng& rng) {
  if (auxiliary.empty()) {
    throw std::invalid_argument("train_trojaned_model: empty auxiliary data");
  }
  data::Dataset mixed = trojan::mix_poison(
      auxiliary, trigger, config.target_label, config.poison_fraction, rng);
  TrojanTrainResult res;
  res.final_loss = nn::train_sgd(model, mixed, config.sgd, rng);
  res.x = model.get_parameters();
  return res;
}

data::Dataset pool_auxiliary_data(
    const std::vector<const data::Dataset*>& validation_sets) {
  if (validation_sets.empty()) {
    throw std::invalid_argument("pool_auxiliary_data: no sets");
  }
  data::Dataset pooled;
  for (const data::Dataset* d : validation_sets) {
    if (d == nullptr) {
      throw std::invalid_argument("pool_auxiliary_data: null set");
    }
    pooled.append(*d);
  }
  return pooled;
}

}  // namespace collapois::core
