#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/geometry.h"
#include "stats/summary.h"
#include "stats/tests.h"

namespace collapois::core::theory {

AngleStats estimate_angle_stats(const std::vector<tensor::FlatVec>& gradients,
                                std::span<const float> reference) {
  if (gradients.empty()) {
    throw std::invalid_argument("estimate_angle_stats: no gradients");
  }
  const auto angles = stats::angles_to_reference(gradients, reference);
  AngleStats s;
  s.mu = stats::mean(angles);
  s.sigma = stats::stddev(angles);
  s.count = angles.size();
  return s;
}

double theorem1_fraction(double mu, double sigma, double a, double b) {
  if (!(a > 0.0 && a < b && b <= 1.0)) {
    throw std::invalid_argument("theorem1_fraction: need 0 < a < b <= 1");
  }
  if (2.0 - sigma * sigma - mu * mu <= 0.0) return 0.0;
  return std::clamp(theorem1_fraction_raw(mu, sigma, a, b), 0.0, 1.0);
}

double theorem1_fraction_raw(double mu, double sigma, double a, double b) {
  if (!(a > 0.0 && a < b && b <= 1.0)) {
    throw std::invalid_argument("theorem1_fraction: need 0 < a < b <= 1");
  }
  const double numer = 2.0 - sigma * sigma - mu * mu;
  const double denom = a + b + numer;
  if (denom == 0.0) return numer >= 0.0 ? 1.0 : -1.0;
  return numer / denom;
}

std::size_t theorem1_min_compromised(double mu, double sigma, double a,
                                     double b, std::size_t n) {
  const double frac = theorem1_fraction(mu, sigma, a, b);
  return static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(n) - 1e-9));
}

double theorem1_relative_error(const AngleStats& estimated,
                               const AngleStats& exact, double a, double b,
                               std::size_t n) {
  const double c_hat = theorem1_fraction(estimated.mu, estimated.sigma, a, b) *
                       static_cast<double>(n);
  const double c = theorem1_fraction(exact.mu, exact.sigma, a, b) *
                   static_cast<double>(n);
  if (c <= 0.0) {
    // Both bounds degenerate: error is 0 iff the estimate also hit 0.
    return c_hat <= 0.0 ? 0.0 : 1.0;
  }
  return std::fabs(c_hat - c) / c;
}

double theorem1_hoeffding_halfwidth(std::size_t n_samples, double delta) {
  // beta^2 lives in [0, pi^2]; the sample-mean deviation bound follows
  // from Hoeffding on that range.
  return stats::hoeffding_eps(n_samples, delta, 0.0, M_PI * M_PI);
}

double theorem2_distance_bound(double a, double delta_norm,
                               double zeta_norm) {
  if (!(a > 0.0 && a <= 1.0)) {
    throw std::invalid_argument("theorem2_distance_bound: need 0 < a <= 1");
  }
  if (delta_norm < 0.0 || zeta_norm < 0.0) {
    throw std::invalid_argument("theorem2_distance_bound: negative norms");
  }
  return (1.0 / a - 1.0) * delta_norm + zeta_norm;
}

Theorem2Check theorem2_check(std::span<const float> global,
                             std::span<const float> x, double a,
                             double delta_norm, double zeta_norm) {
  Theorem2Check c;
  c.distance = stats::l2_distance(global, x);
  c.bound = theorem2_distance_bound(a, delta_norm, zeta_norm);
  return c;
}

Theorem3Bounds theorem3_error_bounds(
    const std::vector<tensor::FlatVec>& detected_updates, double p,
    std::size_t c_total, double b,
    const std::vector<tensor::FlatVec>& client_models,
    std::span<const float> x) {
  if (!(p > 0.0 && p <= 1.0) || !(b > 0.0 && b <= 1.0) || c_total == 0) {
    throw std::invalid_argument("theorem3_error_bounds: bad parameters");
  }
  Theorem3Bounds out;

  // Lower bound: || sum_{c in C-bar} delta_c / (p |C| b) ||.
  if (!detected_updates.empty()) {
    tensor::FlatVec acc = tensor::zeros(detected_updates[0].size());
    for (const auto& u : detected_updates) tensor::axpy_inplace(acc, 1.0, u);
    const double scale = 1.0 / (p * static_cast<double>(c_total) * b);
    out.lower = stats::l2_norm(acc) * scale;
  }

  // Upper bound: the greedy farthest-|C| surrogate of
  // max_{|L| = |C|} || mean_{i in L} theta_i - X ||.
  if (!client_models.empty()) {
    std::vector<std::size_t> order(client_models.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> dist(client_models.size());
    for (std::size_t i = 0; i < client_models.size(); ++i) {
      dist[i] = stats::l2_distance(client_models[i], x);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return dist[i] > dist[j]; });
    const std::size_t take = std::min(c_total, client_models.size());
    tensor::FlatVec mean = tensor::zeros(client_models[0].size());
    for (std::size_t k = 0; k < take; ++k) {
      tensor::axpy_inplace(mean, 1.0 / static_cast<double>(take),
                           client_models[order[k]]);
    }
    out.upper = stats::l2_distance(mean, x);
    // The farthest single model's distance dominates the subset-mean
    // distance; report the larger of the two so the interval is safe.
    if (take > 0) out.upper = std::max(out.upper, dist[order[0]]);
  }
  return out;
}

double estimation_error(const std::vector<tensor::FlatVec>& believed_models,
                        std::span<const float> x) {
  if (believed_models.empty()) {
    throw std::invalid_argument("estimation_error: empty set");
  }
  const tensor::FlatVec mean = tensor::mean_of(believed_models);
  return stats::l2_distance(mean, x);
}

}  // namespace collapois::core::theory
