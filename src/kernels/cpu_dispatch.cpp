#include "kernels/cpu_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "kernels/ops_internal.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace collapois::kernels {

namespace {

#if defined(__x86_64__) || defined(__i386__)

// xgetbv(0): does the OS save/restore the YMM halves on context switch?
// AVX instructions fault on CPUs that report AVX but run under an OS that
// never enabled XSAVE for them, so cpuid bit checks alone are not enough.
bool os_saves_ymm() {
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr std::uint32_t kOsxsave = 1u << 27;
  if ((ecx & kOsxsave) == 0) return false;
  // xgetbv(0) via inline asm: the gcc builtin needs -mxsave, which would
  // put non-baseline code in this baseline-ISA TU. The instruction is
  // safe here — OSXSAVE above guarantees it exists and is enabled.
  std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0u));
  const std::uint32_t xcr0 = xcr0_lo;
  constexpr std::uint32_t kXmmYmm = 0x6;  // XMM (bit 1) + YMM (bit 2) state
  return (xcr0 & kXmmYmm) == kXmmYmm;
}

CpuFeatures detect_features() {
  CpuFeatures f;
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.sse2 = (edx & (1u << 26)) != 0;
  f.sse4_2 = (ecx & (1u << 20)) != 0;
  f.fma = (ecx & (1u << 12)) != 0;
  const bool ymm = os_saves_ymm();
  f.avx = ymm && (ecx & (1u << 28)) != 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = f.avx && (ebx & (1u << 5)) != 0;
    f.avx512f = f.avx && (ebx & (1u << 16)) != 0;
  }
  return f;
}

#else

CpuFeatures detect_features() { return {}; }

#endif

// The active tier, initialized lazily under g_init_once so the
// COLLAPOIS_FORCE_ISA check runs exactly once per process. After init the
// value only changes through set_active_tier (single-threaded setup, like
// the kernel-kind registry).
std::once_flag g_init_once;
std::atomic<IsaTier> g_active{IsaTier::scalar};
std::atomic<bool> g_forced{false};

void init_active_tier() {
  IsaTier tier = detected_tier();
  bool forced = false;
  if (const char* forced_name = std::getenv("COLLAPOIS_FORCE_ISA")) {
    IsaTier want;
    try {
      want = parse_isa_tier(forced_name);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error(
          std::string("COLLAPOIS_FORCE_ISA: unknown tier '") + forced_name +
          "' (expected scalar | sse2 | avx2)");
    }
    if (want > tier) {
      throw std::runtime_error(
          std::string("COLLAPOIS_FORCE_ISA=") + forced_name +
          ": this CPU only supports the '" + isa_tier_name(tier) +
          "' tier — refusing to run illegal instructions");
    }
    tier = want;
    forced = true;
  }
  g_active.store(tier, std::memory_order_relaxed);
  g_forced.store(forced, std::memory_order_relaxed);
}

}  // namespace

const char* isa_tier_name(IsaTier tier) {
  switch (tier) {
    case IsaTier::scalar: return "scalar";
    case IsaTier::sse2: return "sse2";
    case IsaTier::avx2: return "avx2";
  }
  return "unknown";
}

IsaTier parse_isa_tier(const std::string& name) {
  if (name == "scalar") return IsaTier::scalar;
  if (name == "sse2") return IsaTier::sse2;
  if (name == "avx2") return IsaTier::avx2;
  throw std::invalid_argument("parse_isa_tier: unknown tier '" + name + "'");
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_features();
  return f;
}

IsaTier detected_tier() {
  const CpuFeatures& f = cpu_features();
  // The avx2 microkernels use FMA broadcast-and-accumulate, so AVX2
  // without FMA (no real silicon ships this way) still falls back. A
  // build whose toolchain could not compile the AVX2 TU caps here too.
  if (f.avx2 && f.fma && detail::avx2_tier_compiled()) return IsaTier::avx2;
  if (f.sse2) return IsaTier::sse2;
  return IsaTier::scalar;
}

IsaTier active_tier() {
  std::call_once(g_init_once, init_active_tier);
  return g_active.load(std::memory_order_relaxed);
}

void set_active_tier(IsaTier tier) {
  std::call_once(g_init_once, init_active_tier);
  if (tier > detected_tier()) {
    throw std::runtime_error(
        std::string("set_active_tier: tier '") + isa_tier_name(tier) +
        "' exceeds this CPU's detected tier '" +
        isa_tier_name(detected_tier()) + "'");
  }
  g_active.store(tier, std::memory_order_relaxed);
}

DispatchInfo dispatch_info() {
  DispatchInfo d;
  d.tier = active_tier();
  d.forced = g_forced.load(std::memory_order_relaxed);
  switch (d.tier) {
    case IsaTier::scalar:
      d.microkernel = "scalar-4x8";
      d.mr = 4;
      d.nr = 8;
      break;
    case IsaTier::sse2:
      d.microkernel = "sse2-4x8";
      d.mr = 4;
      d.nr = 8;
      break;
    case IsaTier::avx2:
      d.microkernel = "avx2-fma-8x8";
      d.mr = 8;
      d.nr = 8;
      break;
  }
  return d;
}

std::string cpu_feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  auto add = [&s](bool has, const char* name) {
    if (!has) return;
    if (!s.empty()) s += ',';
    s += name;
  };
  add(f.sse2, "sse2");
  add(f.sse4_2, "sse4.2");
  add(f.avx, "avx");
  add(f.fma, "fma");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  return s.empty() ? "none" : s;
}

}  // namespace collapois::kernels
