// The reference kernel set: the original triple-loop GEMM variants
// (tensor/linalg.cpp) and the 7-deep direct convolution (nn/layers.cpp
// before the kernel layer), preserved bit-for-bit. The blocked set is
// property-tested against these; they also remain selectable via
// --kernels naive for A/B runs and regression triage.
#include "kernels/ops_internal.h"

namespace collapois::kernels::detail {

void naive_gemm(const float* a, const float* b, float* c, std::size_t m,
                std::size_t k, std::size_t n, const float* row_bias) {
  for (std::size_t i = 0; i < m; ++i) {
    const float init = row_bias != nullptr ? row_bias[i] : 0.0f;
    for (std::size_t j = 0; j < n; ++j) c[i * n + j] = init;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* brow = &b[p * n];
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void naive_gemm_a_bt_accum(const float* a, const float* b, float* c,
                           std::size_t m, std::size_t k, std::size_t n,
                           const float* col_bias, float* a_row_sums) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = &a[i * k];
    float* crow = &c[i * n];
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = &b[j * k];
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] += static_cast<float>(s);
      if (col_bias != nullptr) crow[j] += col_bias[j];
    }
    if (a_row_sums != nullptr) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p];
      a_row_sums[i] += static_cast<float>(s);
    }
  }
}

void naive_gemm_at_b_accum(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t m, std::size_t n,
                           float* a_col_sums) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = &a[p * m];
    const float* brow = &b[p * n];
    for (std::size_t i = 0; i < m; ++i) {
      const float api = arow[i];
      if (a_col_sums != nullptr) a_col_sums[i] += api;
      if (api == 0.0f) continue;
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

void naive_conv2d_forward(const Conv2dShape& s, const float* in,
                          const float* wts, const float* bias, float* out) {
  for (std::size_t b = 0; b < s.batch; ++b) {
    for (std::size_t oc = 0; oc < s.cout; ++oc) {
      for (std::size_t oy = 0; oy < s.oh; ++oy) {
        for (std::size_t ox = 0; ox < s.ow; ++ox) {
          double acc = bias[oc];
          for (std::size_t ic = 0; ic < s.cin; ++ic) {
            for (std::size_t ky = 0; ky < s.k; ++ky) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                        static_cast<std::ptrdiff_t>(s.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.h)) continue;
              for (std::size_t kx = 0; kx < s.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox + kx) -
                    static_cast<std::ptrdiff_t>(s.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.w)) continue;
                const float v =
                    in[((b * s.cin + ic) * s.h + static_cast<std::size_t>(iy)) *
                           s.w +
                       static_cast<std::size_t>(ix)];
                const float wt =
                    wts[((oc * s.cin + ic) * s.k + ky) * s.k + kx];
                acc += static_cast<double>(v) * wt;
              }
            }
          }
          out[((b * s.cout + oc) * s.oh + oy) * s.ow + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
}

void naive_conv2d_backward(const Conv2dShape& s, const float* in,
                           const float* wts, const float* go, float* gw,
                           float* gb, float* gi) {
  for (std::size_t b = 0; b < s.batch; ++b) {
    for (std::size_t oc = 0; oc < s.cout; ++oc) {
      for (std::size_t oy = 0; oy < s.oh; ++oy) {
        for (std::size_t ox = 0; ox < s.ow; ++ox) {
          const float g = go[((b * s.cout + oc) * s.oh + oy) * s.ow + ox];
          if (g == 0.0f) continue;
          gb[oc] += g;
          for (std::size_t ic = 0; ic < s.cin; ++ic) {
            for (std::size_t ky = 0; ky < s.k; ++ky) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                        static_cast<std::ptrdiff_t>(s.pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.h)) continue;
              for (std::size_t kx = 0; kx < s.k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox + kx) -
                    static_cast<std::ptrdiff_t>(s.pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.w)) continue;
                const std::size_t in_idx =
                    ((b * s.cin + ic) * s.h + static_cast<std::size_t>(iy)) *
                        s.w +
                    static_cast<std::size_t>(ix);
                const std::size_t w_idx =
                    ((oc * s.cin + ic) * s.k + ky) * s.k + kx;
                gw[w_idx] += g * in[in_idx];
                if (gi != nullptr) gi[in_idx] += g * wts[w_idx];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace collapois::kernels::detail
