// Internal: the conv2d lowering helpers (im2col / col2im) shared by
// every ISA tier. The functions are defined inline so each tier's
// translation unit gets its OWN instantiation, auto-vectorized at
// whatever ISA that TU is built for (baseline SSE2 in blocked.cpp, AVX2
// in simd_avx2.cpp). They contain only copies, zero-fills and plain
// float adds — operations whose rounding is ISA-independent — so every
// instantiation produces bit-identical output and the lowering never
// weakens the cross-tier contracts.
//
// The span helpers exist because a lowered row is short (ow floats, a
// few dozen bytes): at that size the call overhead of libc memcpy /
// memset dominates the copy itself, and im2col issues thousands of them
// per batch. A plain word loop inlines to a handful of vector moves.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "kernels/kernels.h"

namespace collapois::kernels::detail::lower {

inline void copy_span(float* __restrict dst, const float* __restrict src,
                      std::size_t n) {
  if (n > 64) {
    std::memcpy(dst, src, n * sizeof(float));
    return;
  }
  for (std::size_t x = 0; x < n; ++x) dst[x] = src[x];
}

inline void zero_span(float* __restrict dst, std::size_t n) {
  if (n > 64) {
    std::memset(dst, 0, n * sizeof(float));
    return;
  }
  for (std::size_t x = 0; x < n; ++x) dst[x] = 0.0f;
}

// col[(ic*k + ky)*k + kx][oy*ow + ox] = image[ic][oy+ky-pad][ox+kx-pad]
// (zero outside the image). One row of `col` per filter tap; the valid
// ox span is copied contiguously, the padded edges are zero-filled.
// `ldcol` is the column matrix's leading dimension, so a whole batch can
// be lowered side by side (image b's columns at offset b*oh*ow).
inline void im2col(const Conv2dShape& s, const float* image, float* col,
                   std::size_t ldcol) {
  float* dst = col;
  for (std::size_t ic = 0; ic < s.cin; ++ic) {
    const float* plane = image + ic * s.h * s.w;
    for (std::size_t ky = 0; ky < s.k; ++ky) {
      // Rows of the output whose source row lands inside the image: the
      // bound depends only on ky, so hoist it out of the tap loop and
      // zero-fill the out-of-range top/bottom rows in one span each.
      const std::size_t oy_lo = ky < s.pad ? s.pad - ky : 0;
      const std::size_t oy_hi =
          std::min(s.oh, s.h + s.pad > ky ? s.h + s.pad - ky : 0);
      for (std::size_t kx = 0; kx < s.k; ++kx, dst += ldcol) {
        const std::size_t ox_lo = kx < s.pad ? s.pad - kx : 0;
        const std::size_t ox_hi =
            std::min(s.ow, s.w + s.pad > kx ? s.w + s.pad - kx : 0);
        if (oy_lo >= oy_hi || ox_lo >= ox_hi) {
          zero_span(dst, s.oh * s.ow);
          continue;
        }
        if (oy_lo > 0) zero_span(dst, oy_lo * s.ow);
        if (oy_hi < s.oh) {
          zero_span(dst + oy_hi * s.ow, (s.oh - oy_hi) * s.ow);
        }
        const float* src = plane +
                           (oy_lo + ky - s.pad) * s.w +  // first valid row
                           (ox_lo + kx - s.pad);         // first valid col
        float* row = dst + oy_lo * s.ow;
        if (s.ow == s.w) {
          // Stride-1 'same' padding keeps ow == w, so consecutive output
          // rows and consecutive image rows advance by the same stride:
          // the whole valid block is one contiguous copy (the dominant
          // case — per-row dispatch overhead otherwise swamps these
          // few-dozen-byte rows). The shifted copy drags a neighbouring
          // image value into each padded edge column; the edge fixup
          // loop below re-zeroes those (at most `pad` floats per side).
          copy_span(row + ox_lo,
                    src, (oy_hi - oy_lo - 1) * s.w + (ox_hi - ox_lo));
          for (std::size_t oy = oy_lo; oy < oy_hi; ++oy, row += s.ow) {
            if (ox_lo > 0) zero_span(row, ox_lo);
            if (ox_hi < s.ow) zero_span(row + ox_hi, s.ow - ox_hi);
          }
          continue;
        }
        for (std::size_t oy = oy_lo; oy < oy_hi;
             ++oy, row += s.ow, src += s.w) {
          if (ox_lo > 0) zero_span(row, ox_lo);
          copy_span(row + ox_lo, src, ox_hi - ox_lo);
          if (ox_hi < s.ow) zero_span(row + ox_hi, s.ow - ox_hi);
        }
      }
    }
  }
}

// Scatter-add of a column-matrix gradient back onto the image gradient:
// the exact adjoint of im2col (same ldcol convention).
inline void col2im_add(const Conv2dShape& s, const float* col,
                       std::size_t ldcol, float* grad_image) {
  const float* src = col;
  for (std::size_t ic = 0; ic < s.cin; ++ic) {
    float* plane = grad_image + ic * s.h * s.w;
    for (std::size_t ky = 0; ky < s.k; ++ky) {
      const std::size_t oy_lo = ky < s.pad ? s.pad - ky : 0;
      const std::size_t oy_hi =
          std::min(s.oh, s.h + s.pad > ky ? s.h + s.pad - ky : 0);
      for (std::size_t kx = 0; kx < s.k; ++kx, src += ldcol) {
        const std::size_t ox_lo = kx < s.pad ? s.pad - kx : 0;
        const std::size_t ox_hi =
            std::min(s.ow, s.w + s.pad > kx ? s.w + s.pad - kx : 0);
        if (ox_lo >= ox_hi || oy_lo >= oy_hi) continue;
        const float* __restrict row = src + oy_lo * s.ow + ox_lo;
        float* __restrict irow =
            plane + (oy_lo + ky - s.pad) * s.w + (ox_lo + kx - s.pad);
        if (s.ow == s.w && ox_lo == 0 && ox_hi == s.ow) {
          // Full-width tap with matching strides: the valid block is one
          // contiguous add. Each target element is touched once per tap
          // either way, so fusing the rows changes nothing numerically.
          const std::size_t len = (oy_hi - oy_lo) * s.ow;
          for (std::size_t x = 0; x < len; ++x) irow[x] += row[x];
          continue;
        }
        const std::size_t span = ox_hi - ox_lo;
        for (std::size_t oy = oy_lo; oy < oy_hi;
             ++oy, row += s.ow, irow += s.w) {
          for (std::size_t x = 0; x < span; ++x) irow[x] += row[x];
        }
      }
    }
  }
}

}  // namespace collapois::kernels::detail::lower
