#include "kernels/workspace.h"

namespace collapois::kernels {

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace collapois::kernels
