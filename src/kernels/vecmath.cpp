// Flat-vector aggregation math behind tensor/vecops.h. These are not
// kernel-set-dispatched — aggregation numerics are identical under both
// --kernels modes — but they live in this library so the hot loops
// compile under the kernels' optimization flags.
#include "kernels/kernels.h"

#include <algorithm>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace collapois::kernels {

void axpy_inplace(float* a, double s, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(a[i] + s * b[i]);
  }
}

void weighted_accumulate(double* acc, double w, const float* v,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += w * v[i];
}

void scaled_round(const double* acc, double inv_scale, float* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(acc[i] * inv_scale);
  }
}

void relu_forward_mask(float* x, std::size_t n, std::uint64_t* mask) {
  std::size_t i = 0;
  std::size_t w = 0;
#if defined(__SSE2__)
  // 16 compares fill one 64-bit mask word: cmpgt + movemask yields 4 bits
  // per vector, maxps clamps the same lanes (max(x, +0) == x > 0 ? x : +0
  // for every float including -0 and NaN, matching the scalar fallback).
  const __m128 zero = _mm_setzero_ps();
  for (; i + 64 <= n; i += 64, ++w) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < 64; j += 4) {
      const __m128 v = _mm_loadu_ps(x + i + j);
      bits |= static_cast<std::uint64_t>(
                  _mm_movemask_ps(_mm_cmpgt_ps(v, zero)))
              << j;
      _mm_storeu_ps(x + i + j, _mm_max_ps(v, zero));
    }
    mask[w] = bits;
  }
#endif
  for (; i < n; i += 64, ++w) {
    const std::size_t lanes = std::min<std::size_t>(64, n - i);
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < lanes; ++j) {
      const bool active = x[i + j] > 0.0f;
      bits |= std::uint64_t{active} << j;
      x[i + j] = active ? x[i + j] : 0.0f;
    }
    mask[w] = bits;
  }
}

void relu_backward_mask(float* g, std::size_t n, const std::uint64_t* mask) {
  std::size_t i = 0;
  std::size_t w = 0;
#if defined(__SSE2__)
  // Expand 4 mask bits at a time into lane masks via a tiny LUT and AND
  // the gradient lanes — no per-element branches.
  alignas(16) static const std::uint32_t kLaneLut[16][4] = {
      {0, 0, 0, 0},    {~0u, 0, 0, 0},    {0, ~0u, 0, 0},    {~0u, ~0u, 0, 0},
      {0, 0, ~0u, 0},  {~0u, 0, ~0u, 0},  {0, ~0u, ~0u, 0},  {~0u, ~0u, ~0u, 0},
      {0, 0, 0, ~0u},  {~0u, 0, 0, ~0u},  {0, ~0u, 0, ~0u},  {~0u, ~0u, 0, ~0u},
      {0, 0, ~0u, ~0u}, {~0u, 0, ~0u, ~0u}, {0, ~0u, ~0u, ~0u},
      {~0u, ~0u, ~0u, ~0u}};
  for (; i + 64 <= n; i += 64, ++w) {
    const std::uint64_t bits = mask[w];
    for (std::size_t j = 0; j < 64; j += 4) {
      const __m128 lanes = _mm_load_ps(
          reinterpret_cast<const float*>(kLaneLut[(bits >> j) & 0xF]));
      _mm_storeu_ps(g + i + j, _mm_and_ps(_mm_loadu_ps(g + i + j), lanes));
    }
  }
#endif
  for (; i < n; i += 64, ++w) {
    const std::size_t lanes = std::min<std::size_t>(64, n - i);
    const std::uint64_t bits = mask[w];
    for (std::size_t j = 0; j < lanes; ++j) {
      g[i + j] = (bits >> j & 1) != 0 ? g[i + j] : 0.0f;
    }
  }
}

}  // namespace collapois::kernels
