// Internal: the blocked GEMM's packing passes and 5-loop driver, templated
// on a microkernel policy so every ISA tier (kernels/cpu_dispatch.h)
// instantiates the SAME blocking structure around its own register tile.
//
// A policy provides:
//   static constexpr std::size_t MR, NR;   // register-tile rows / cols
//   static void micro(std::size_t kc, const float* ap, const float* bp,
//                     float* acc);         // acc: MR*NR accumulators
//
// Blocking scheme (BLIS-style, sized for the zoo's LeNet/MLP shapes and
// baseline-x86 register budgets):
//   - jc loop: NC-wide column blocks of C;
//   - pc loop: KC-deep slices of the reduction dimension; the B slice is
//     packed into NR-column panels;
//   - ic loop: MC-tall row blocks; the A slice is packed into MR-row
//     panels (epilogue sums are folded into this pass);
//   - jr/ir loops: an MR x NR register tile per microkernel call.
//
// Determinism: the loop nest and panel layout are pure functions of
// (m, k, n) and the policy's MR/NR; every accumulation happens in a fixed
// order, and nothing reads thread identity or workspace history — so
// results are bit-identical run-to-run. KC/MC/NC are shared by every
// tier, so each output element sees the same p-ascending reduction order
// under every policy; tiers differ at most in the rounding of the
// multiply-accumulate itself (scalar and sse2 are mul-then-add and
// bit-identical; avx2 fuses them, single rounding, within the cross-set
// tolerance). MR/NR only regroup rows/columns into panels — the padded
// lanes accumulate zeros that the bounded store discards.
#pragma once

#include <algorithm>
#include <cstddef>

#include "kernels/workspace.h"

namespace collapois::kernels::detail {

// Cache-block sizes, shared by every tier (see determinism note above).
inline constexpr std::size_t kBlockKC = 256;  // reduction block
inline constexpr std::size_t kBlockMC = 64;   // row block
inline constexpr std::size_t kBlockNC = 512;  // column block

inline std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

// Write one microtile into C. `overwrite` = first reduction block of a
// C-overwriting GEMM; row_bias/col_bias are fused bias epilogues (already
// offset to this tile), valid region is mr x nr.
template <std::size_t NR>
void store_tile(float* c, std::size_t ldc, const float* acc, std::size_t mr,
                std::size_t nr, bool overwrite, const float* row_bias,
                const float* col_bias) {
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * NR;
    if (overwrite) {
      const float bias = row_bias != nullptr ? row_bias[i] : 0.0f;
      for (std::size_t j = 0; j < nr; ++j) crow[j] = arow[j] + bias;
    } else if (col_bias != nullptr) {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] += arow[j] + col_bias[j];
      }
    } else {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += arow[j];
    }
  }
}

// Pack an mc x kc block of A (row-major, leading dimension lda) into
// MR-row panels, zero-padding the ragged last panel. When row_sums is
// given (fused bias-gradient epilogue), each A element is added to its
// row's sum — callers only pass it on the first jc block so every element
// is counted exactly once.
template <std::size_t MR>
void pack_a(const float* a, std::size_t lda, std::size_t mc, std::size_t kc,
            float* ap, float* row_sums) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    float* panel = ap + ir * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        panel[p * MR + i] = a[(ir + i) * lda + p];
      }
      for (std::size_t i = mr; i < MR; ++i) panel[p * MR + i] = 0.0f;
    }
    if (row_sums != nullptr) {
      for (std::size_t i = 0; i < mr; ++i) {
        float s = 0.0f;
        const float* arow = a + (ir + i) * lda;
        for (std::size_t p = 0; p < kc; ++p) s += arow[p];
        row_sums[ir + i] += s;
      }
    }
  }
}

// Pack a kc x mc block of a TRANSPOSED-layout A (stored [k x m], leading
// dimension lda = m) into MR-row panels of A^T. col_sums, when given,
// receives sum_p A[p, i] for the fused dense bias-gradient epilogue.
template <std::size_t MR>
void pack_a_trans(const float* a, std::size_t lda, std::size_t mc,
                  std::size_t kc, float* ap, float* col_sums) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    float* panel = ap + ir * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* arow = a + p * lda + ir;
      for (std::size_t i = 0; i < mr; ++i) panel[p * MR + i] = arow[i];
      for (std::size_t i = mr; i < MR; ++i) panel[p * MR + i] = 0.0f;
    }
    if (col_sums != nullptr) {
      for (std::size_t i = 0; i < mr; ++i) {
        float s = 0.0f;
        for (std::size_t p = 0; p < kc; ++p) s += a[p * lda + ir + i];
        col_sums[ir + i] += s;
      }
    }
  }
}

// Pack a kc x nc block of B (row-major [k x n]) into NR-column panels.
template <std::size_t NR>
void pack_b(const float* b, std::size_t ldb, std::size_t kc, std::size_t nc,
            float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    float* panel = bp + jr * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* brow = b + p * ldb + jr;
      for (std::size_t j = 0; j < nr; ++j) panel[p * NR + j] = brow[j];
      for (std::size_t j = nr; j < NR; ++j) panel[p * NR + j] = 0.0f;
    }
  }
}

// Pack a kc x nc block of a TRANSPOSED-layout B (stored [n x k], leading
// dimension ldb = k) into NR-column panels of B^T.
template <std::size_t NR>
void pack_b_trans(const float* b, std::size_t ldb, std::size_t kc,
                  std::size_t nc, float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    float* panel = bp + jr * kc;
    for (std::size_t j = 0; j < nr; ++j) {
      const float* bcol = b + (jr + j) * ldb;
      for (std::size_t p = 0; p < kc; ++p) panel[p * NR + j] = bcol[p];
    }
    for (std::size_t j = nr; j < NR; ++j) {
      for (std::size_t p = 0; p < kc; ++p) panel[p * NR + j] = 0.0f;
    }
  }
}

enum class PackA { plain, trans };
enum class PackB { plain, trans };

// Shared 5-loop driver. `overwrite` gives C = A*B semantics (first
// reduction block overwrites, carrying row_bias); otherwise C += A*B with
// col_bias fused into the final reduction block's store. sums (row sums
// for plain A, column sums for transposed A) accumulate during the first
// jc block's packing pass.
template <typename MK>
void gemm_driver(const float* a, std::size_t lda, PackA a_mode,
                 const float* b, std::size_t ldb, PackB b_mode, float* c,
                 std::size_t m, std::size_t k, std::size_t n, bool overwrite,
                 const float* row_bias, const float* col_bias, float* sums) {
  constexpr std::size_t MR = MK::MR;
  constexpr std::size_t NR = MK::NR;
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (overwrite) {
      for (std::size_t i = 0; i < m; ++i) {
        const float bias = row_bias != nullptr ? row_bias[i] : 0.0f;
        for (std::size_t j = 0; j < n; ++j) c[i * n + j] = bias;
      }
    } else if (col_bias != nullptr) {
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) c[i * n + j] += col_bias[j];
      }
    }
    return;
  }

  Workspace& ws = Workspace::tls();
  const std::size_t kc_max = std::min(kBlockKC, k);
  float* ap = ws.floats(Workspace::kPackedA,
                        round_up(std::min(kBlockMC, m), MR) * kc_max)
                  .data();
  float* bp = ws.floats(Workspace::kPackedB,
                        round_up(std::min(kBlockNC, n), NR) * kc_max)
                  .data();

  for (std::size_t jc = 0; jc < n; jc += kBlockNC) {
    const std::size_t nc = std::min(kBlockNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kBlockKC) {
      const std::size_t kc = std::min(kBlockKC, k - pc);
      const bool first_k = pc == 0;
      const bool last_k = pc + kc == k;
      if (b_mode == PackB::plain) {
        pack_b<NR>(b + pc * ldb + jc, ldb, kc, nc, bp);
      } else {
        pack_b_trans<NR>(b + jc * ldb + pc, ldb, kc, nc, bp);
      }
      for (std::size_t ic = 0; ic < m; ic += kBlockMC) {
        const std::size_t mc = std::min(kBlockMC, m - ic);
        // Epilogue sums accumulate exactly once per A element: only the
        // first jc block's packing pass carries the sums pointer.
        float* pack_sums = (jc == 0 && sums != nullptr) ? sums + ic : nullptr;
        if (a_mode == PackA::plain) {
          pack_a<MR>(a + ic * lda + pc, lda, mc, kc, ap, pack_sums);
        } else {
          pack_a_trans<MR>(a + pc * lda + ic, lda, mc, kc, ap, pack_sums);
        }
        for (std::size_t jr = 0; jr < nc; jr += NR) {
          const std::size_t nr = std::min(NR, nc - jr);
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            const std::size_t mr = std::min(MR, mc - ir);
            float acc[MR * NR];
            MK::micro(kc, ap + ir * kc, bp + jr * kc, acc);
            store_tile<NR>(c + (ic + ir) * n + jc + jr, n, acc, mr, nr,
                           overwrite && first_k,
                           row_bias != nullptr ? row_bias + ic + ir : nullptr,
                           (last_k && col_bias != nullptr) ? col_bias + jc + jr
                                                           : nullptr);
          }
        }
      }
    }
  }
}

// The three GEMM entry points a tier exports, expressed over the driver.
// The small-problem and shape-special-case routing stays in blocked.cpp —
// those paths never reach a microkernel and are identical for every tier.
template <typename MK>
struct TierGemm {
  static void gemm(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const float* row_bias) {
    gemm_driver<MK>(a, k, PackA::plain, b, n, PackB::plain, c, m, k, n,
                    /*overwrite=*/true, row_bias, nullptr, nullptr);
  }
  static void gemm_a_bt_accum(const float* a, const float* b, float* c,
                              std::size_t m, std::size_t k, std::size_t n,
                              const float* col_bias, float* a_row_sums) {
    gemm_driver<MK>(a, k, PackA::plain, b, k, PackB::trans, c, m, k, n,
                    /*overwrite=*/false, nullptr, col_bias, a_row_sums);
  }
  static void gemm_at_b_accum(const float* a, const float* b, float* c,
                              std::size_t k, std::size_t m, std::size_t n,
                              float* a_col_sums) {
    gemm_driver<MK>(a, m, PackA::trans, b, n, PackB::plain, c, m, k, n,
                    /*overwrite=*/false, nullptr, nullptr, a_col_sums);
  }
};

}  // namespace collapois::kernels::detail
