// The blocked kernel set: cache-blocked, panel-packed SGEMM behind the
// runtime ISA dispatch (cpu_dispatch.h), plus Conv2d lowered onto it via
// im2col/col2im.
//
// The blocking structure lives in gemm_driver.h, templated on the
// microkernel policy; this TU instantiates the portable tiers:
//   - scalar 4x8: the original C++ register tile, auto-vectorized at -O3.
//     Always available; the reference the SIMD tiers are tested against.
//   - sse2 4x8: explicit 128-bit intrinsics, mul-then-add per lane in the
//     same order as the scalar tile — bit-identical results, but the
//     hand-scheduled loads/broadcasts beat what -O3 extracts from the
//     scalar loop on some compilers.
// The avx2 8x8 FMA tier lives in simd_avx2.cpp (built with -mavx2 -mfma,
// selected only when cpuid reports the CPU can run it).
//
// Shape-special-case routing decides the ALGORITHM (packed microkernel
// vs streaming loops) before the ISA tier decides the instructions: tiny
// problems always run the shared naive loops (bit-identical across
// tiers), while the shallow/wide and long-dot streaming paths dispatch
// per tier like the microkernel does — the conv GEMMs live almost
// entirely on those paths, so they must vectorize too.
//
// Determinism: per tier, results are bit-identical run-to-run and across
// thread counts (the im2col/col2im batch fan-out writes disjoint ranges).
// Across tiers, scalar == sse2 bitwise; avx2 GEMM differs only by the FMA
// rounding and stays inside the cross-set tolerance. The reduction order
// differs from the naive set's (float tiles vs double dot products),
// which is why the two SETS agree only to elementwise tolerance and the
// kernel KIND — never the dispatch tier — is checkpoint-fingerprinted.
#include <algorithm>
#include <cstring>

#include "kernels/conv_lower.h"
#include "kernels/cpu_dispatch.h"
#include "kernels/gemm_driver.h"
#include "kernels/ops_internal.h"
#include "kernels/workspace.h"
#include "runtime/parallel.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace collapois::kernels::detail {

namespace {

// --- microkernel policies ----------------------------------------------

// C_tile accumulators for one MR x NR tile over a packed KC slice.
// ap: MR-row panel (ap[p * MR + i]), bp: NR-column panel (bp[p * NR + j]).
struct ScalarMicro4x8 {
  static constexpr std::size_t MR = 4;
  static constexpr std::size_t NR = 8;
  static void micro(std::size_t kc, const float* ap, const float* bp,
                    float* acc) {
    for (std::size_t x = 0; x < MR * NR; ++x) acc[x] = 0.0f;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* b = bp + p * NR;
      const float* a = ap + p * MR;
      for (std::size_t i = 0; i < MR; ++i) {
        const float av = a[i];
        float* row = acc + i * NR;
        for (std::size_t j = 0; j < NR; ++j) row[j] += av * b[j];
      }
    }
  }
};

#if defined(__SSE2__)
// Same tile, same per-lane mul-then-add order, 128-bit registers: two
// xmm accumulators per row (cols 0..3 and 4..7), broadcast of a[i] via
// set1. Bit-identical to ScalarMicro4x8 — mulps/addps round exactly like
// the scalar multiply and add.
struct Sse2Micro4x8 {
  static constexpr std::size_t MR = 4;
  static constexpr std::size_t NR = 8;
  static void micro(std::size_t kc, const float* ap, const float* bp,
                    float* acc) {
    __m128 c[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
      c[i][0] = _mm_setzero_ps();
      c[i][1] = _mm_setzero_ps();
    }
    for (std::size_t p = 0; p < kc; ++p) {
      const __m128 b0 = _mm_loadu_ps(bp + p * NR);
      const __m128 b1 = _mm_loadu_ps(bp + p * NR + 4);
      const float* a = ap + p * MR;
      for (std::size_t i = 0; i < MR; ++i) {
        const __m128 av = _mm_set1_ps(a[i]);
        c[i][0] = _mm_add_ps(c[i][0], _mm_mul_ps(av, b0));
        c[i][1] = _mm_add_ps(c[i][1], _mm_mul_ps(av, b1));
      }
    }
    for (std::size_t i = 0; i < MR; ++i) {
      _mm_storeu_ps(acc + i * NR, c[i][0]);
      _mm_storeu_ps(acc + i * NR + 4, c[i][1]);
    }
  }
};
#endif

// --- streaming paths (scalar/sse2 tiers) --------------------------------
//
// These are forward declarations; definitions follow the routing cutoffs
// below. scalar and sse2 share them (the compiler's SSE2 auto-
// vectorization of these plain streams is already as good as hand-held
// 128-bit intrinsics), which keeps the two tiers bit-identical. The avx2
// tier overrides them with FMA versions in simd_avx2.cpp.
void dot_abt_accum(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const float* col_bias,
                   float* a_row_sums);
void axpy_atb_accum(const float* a, const float* b, float* c, std::size_t k,
                    std::size_t m, std::size_t n, float* a_col_sums,
                    bool overwrite);

// Baseline-ISA instantiations of the shared conv lowering.
void base_im2col(const Conv2dShape& s, const float* image, float* col,
                 std::size_t ldcol) {
  lower::im2col(s, image, col, ldcol);
}
void base_col2im_add(const Conv2dShape& s, const float* col, std::size_t ldcol,
                     float* grad_image) {
  lower::col2im_add(s, col, ldcol, grad_image);
}

// --- tier dispatch ------------------------------------------------------

constexpr TierOps kScalarTier{TierGemm<ScalarMicro4x8>::gemm,
                              TierGemm<ScalarMicro4x8>::gemm_a_bt_accum,
                              TierGemm<ScalarMicro4x8>::gemm_at_b_accum,
                              naive_gemm,
                              dot_abt_accum,
                              axpy_atb_accum,
                              base_im2col,
                              base_col2im_add};

#if defined(__SSE2__)
constexpr TierOps kSse2Tier{TierGemm<Sse2Micro4x8>::gemm,
                            TierGemm<Sse2Micro4x8>::gemm_a_bt_accum,
                            TierGemm<Sse2Micro4x8>::gemm_at_b_accum,
                            naive_gemm,
                            dot_abt_accum,
                            axpy_atb_accum,
                            base_im2col,
                            base_col2im_add};
#endif

const TierOps& tier_ops() {
  switch (active_tier()) {
#if defined(__SSE2__)
    case IsaTier::sse2:
      return kSse2Tier;
#endif
    case IsaTier::avx2:
      if (avx2_tier_compiled()) return avx2_tier_ops();
      break;  // built without the AVX2 TU: cpu_dispatch caps the tier,
              // but fall back rather than crash if it didn't
    default:
      break;
  }
  return kScalarTier;
}

// Below this many multiply-adds, panel packing costs more than it saves
// (a [16 x 32] x [32 x 2] head GEMM wastes 3/4 of every NR-wide tile on
// zero padding) and the reference loops win. The cutoff is a pure
// function of (m, k, n), so dispatch stays deterministic; problems under
// it run the shared naive loops on EVERY tier, bit-identical to the
// naive set, which only tightens the cross-set tolerance.
constexpr std::size_t kSmallMacCutoff = 4096;

inline bool small_problem(std::size_t m, std::size_t k, std::size_t n) {
  return m * k * n <= kSmallMacCutoff;
}

// C[m x n] += A * B^T with both operands row-major [.. x k]. For a
// handful of outputs over a long reduction (conv weight gradients:
// m = cout, n = cin*k*k, k = batch*oh*ow) panel packing moves more data
// than the microkernel reads back; eight independent float lanes per dot
// product vectorize directly off the contiguous source rows instead. The
// lane split and reduction tree are fixed, so results stay deterministic.
// The avx2 tier's override (simd_avx2.cpp) keeps the same lane split and
// the same final reduction tree, so it differs from this one only at FMA
// rounding inside a lane — inside the cross-set tolerance like the
// microkernel.
void dot_abt_accum(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const float* col_bias,
                   float* a_row_sums) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float lanes[8] = {};
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        for (std::size_t l = 0; l < 8; ++l) {
          lanes[l] += arow[p + l] * brow[p + l];
        }
      }
      for (std::size_t l = 0; p + l < k; ++l) {
        lanes[l] += arow[p + l] * brow[p + l];
      }
      const float s = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
                      ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
      c[i * n + j] += s + (col_bias != nullptr ? col_bias[j] : 0.0f);
    }
    if (a_row_sums != nullptr) {
      float lanes[8] = {};
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        for (std::size_t l = 0; l < 8; ++l) lanes[l] += arow[p + l];
      }
      for (std::size_t l = 0; p + l < k; ++l) lanes[l] += arow[p + l];
      a_row_sums[i] += ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
                       ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    }
  }
}

// C[m x n] += A^T * B with A stored [k x m], for tiny reduction depths
// over long rows (conv input gradients: k = cout, n = batch*oh*ow). Each
// output row is a fixed-order sum of k scaled contiguous rows of B — pure
// axpy streams, nothing to pack, nothing wasted on padding.
void axpy_atb_accum(const float* a, const float* b, float* c, std::size_t k,
                    std::size_t m, std::size_t n, float* a_col_sums,
                    bool overwrite) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    std::size_t p0 = 0;
    if (overwrite) {
      // The p = 0 term assigns instead of accumulating, which replaces a
      // caller-side memset + read-modify-write with a single write pass.
      if (k == 0) {
        for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
        continue;
      }
      const float ai = a[i];
      for (std::size_t j = 0; j < n; ++j) crow[j] = ai * b[j];
      p0 = 1;
    }
    for (std::size_t p = p0; p < k; ++p) {
      const float api = a[p * m + i];
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
  if (a_col_sums != nullptr) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t i = 0; i < m; ++i) a_col_sums[i] += a[p * m + i];
    }
  }
}

}  // namespace

void blocked_gemm(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const float* row_bias) {
  if (small_problem(m, k, n)) {
    naive_gemm(a, b, c, m, k, n, row_bias);
    return;
  }
  if (k <= 16 && n >= 256) {
    // Shallow reductions over wide C (conv1's 9-tap forward GEMM) are
    // axpy-bound: nothing to pack, so the tier streams them directly.
    tier_ops().wide_gemm(a, b, c, m, k, n, row_bias);
    return;
  }
  tier_ops().gemm(a, b, c, m, k, n, row_bias);
}

void blocked_gemm_a_bt_accum(const float* a, const float* b, float* c,
                             std::size_t m, std::size_t k, std::size_t n,
                             const float* col_bias, float* a_row_sums) {
  if (small_problem(m, k, n)) {
    naive_gemm_a_bt_accum(a, b, c, m, k, n, col_bias, a_row_sums);
    return;
  }
  if (m * n <= 512 && k >= 512) {
    tier_ops().dot_abt(a, b, c, m, k, n, col_bias, a_row_sums);
    return;
  }
  tier_ops().gemm_a_bt_accum(a, b, c, m, k, n, col_bias, a_row_sums);
}

void blocked_gemm_at_b_accum(const float* a, const float* b, float* c,
                             std::size_t k, std::size_t m, std::size_t n,
                             float* a_col_sums) {
  if (small_problem(m, k, n)) {
    naive_gemm_at_b_accum(a, b, c, k, m, n, a_col_sums);
    return;
  }
  if (k <= 16 && n >= 256) {
    tier_ops().axpy_atb(a, b, c, k, m, n, a_col_sums, /*overwrite=*/false);
    return;
  }
  tier_ops().gemm_at_b_accum(a, b, c, k, m, n, a_col_sums);
}

namespace {

// C = A^T * B into a buffer whose prior contents are dead (the conv
// backward's column-gradient workspace). On the axpy route the tier
// overwrites directly; off it, fall back to zero-then-accumulate so the
// routing cutoffs stay the single source of truth.
void gemm_at_b_overwrite(const float* a, const float* b, float* c,
                         std::size_t k, std::size_t m, std::size_t n,
                         float* a_col_sums) {
  if (!small_problem(m, k, n) && k <= 16 && n >= 256) {
    tier_ops().axpy_atb(a, b, c, k, m, n, a_col_sums, /*overwrite=*/true);
    return;
  }
  std::memset(c, 0, m * n * sizeof(float));
  blocked_gemm_at_b_accum(a, b, c, k, m, n, a_col_sums);
}

}  // namespace

// The whole batch is lowered into ONE column matrix col[K x batch*oh*ow]
// (image b's columns at offset b*oh*ow) so each conv op is a single
// well-shaped GEMM instead of `batch` packing-dominated slivers. The GEMM
// runs in [cout x batch*oh*ow] layout; a row-segment memcpy pass converts
// to/from the tensor's [batch][cout][oh*ow] layout. The lowering order is
// a pure function of the shape, and each batch image packs a disjoint
// column range, so the kernel_pool() fan-out (nullptr = inline) leaves
// results bit-identical for any thread count.
void blocked_conv2d_forward(const Conv2dShape& s, const float* in,
                            const float* weights, const float* bias,
                            float* out) {
  const std::size_t kdim = s.cin * s.k * s.k;
  const std::size_t ohow = s.oh * s.ow;
  const std::size_t n_all = s.batch * ohow;
  Workspace& ws = Workspace::tls();
  float* col = ws.floats(Workspace::kIm2col, kdim * n_all).data();
  float* out_all = ws.floats(Workspace::kConvIo, s.cout * n_all).data();
  const TierOps& ops = tier_ops();
  runtime::parallel_for(kernel_pool(), s.batch, [&](std::size_t b) {
    ops.im2col(s, in + b * s.cin * s.h * s.w, col + b * ohow, n_all);
  });
  // out_all[cout x batch*oh*ow] = W[cout x K] * col + bias (fused per-row).
  blocked_gemm(weights, col, out_all, s.cout, kdim, n_all, bias);
  runtime::parallel_for(kernel_pool(), s.batch, [&](std::size_t b) {
    for (std::size_t c = 0; c < s.cout; ++c) {
      std::memcpy(out + (b * s.cout + c) * ohow, out_all + c * n_all + b * ohow,
                  ohow * sizeof(float));
    }
  });
}

void blocked_conv2d_backward(const Conv2dShape& s, const float* in,
                             const float* weights, const float* go, float* gw,
                             float* gb, float* gi) {
  const std::size_t kdim = s.cin * s.k * s.k;
  const std::size_t ohow = s.oh * s.ow;
  const std::size_t n_all = s.batch * ohow;
  Workspace& ws = Workspace::tls();
  float* col = ws.floats(Workspace::kIm2col, kdim * n_all).data();
  float* go_all = ws.floats(Workspace::kConvIo, s.cout * n_all).data();
  const TierOps& ops = tier_ops();
  runtime::parallel_for(kernel_pool(), s.batch, [&](std::size_t b) {
    ops.im2col(s, in + b * s.cin * s.h * s.w, col + b * ohow, n_all);
    for (std::size_t c = 0; c < s.cout; ++c) {
      std::memcpy(go_all + c * n_all + b * ohow, go + (b * s.cout + c) * ohow,
                  ohow * sizeof(float));
    }
  });
  // gw[cout x K] += go_all * col^T; the bias gradient rides the packing
  // pass as go_all's row sums.
  blocked_gemm_a_bt_accum(go_all, col, gw, s.cout, n_all, kdim, nullptr, gb);
  if (gi == nullptr) return;  // first-layer backward: input grad unused
  // colgrad[K x batch*oh*ow] = W^T * go_all, then scatter-add onto gi.
  float* colgrad = ws.floats(Workspace::kColGrad, kdim * n_all).data();
  gemm_at_b_overwrite(weights, go_all, colgrad, s.cout, kdim, n_all, nullptr);
  // Each image's column gradient scatters onto a disjoint gi plane.
  runtime::parallel_for(kernel_pool(), s.batch, [&](std::size_t b) {
    ops.col2im_add(s, colgrad + b * ohow, n_all, gi + b * s.cin * s.h * s.w);
  });
}

}  // namespace collapois::kernels::detail
