// The blocked kernel set: cache-blocked, panel-packed SGEMM with a
// register-tiled microkernel, plus Conv2d lowered onto it via
// im2col/col2im.
//
// Blocking scheme (BLIS-style, sized for the zoo's LeNet/MLP shapes and
// baseline-x86 register budgets):
//   - jc loop: NC-wide column blocks of C;
//   - pc loop: KC-deep slices of the reduction dimension; the B slice is
//     packed into NR-column panels;
//   - ic loop: MC-tall row blocks; the A slice is packed into MR-row
//     panels (epilogue sums are folded into this pass);
//   - jr/ir loops: an MR x NR register tile per microkernel call.
// The microkernel keeps MR*NR float accumulators live and walks the
// packed panels contiguously; the inner two loops have constant trip
// counts so -O3 auto-vectorizes them without intrinsics.
//
// Determinism: the loop nest and panel layout are pure functions of
// (m, k, n), every accumulation happens in a fixed order, and nothing
// reads thread identity or workspace history — so results are
// bit-identical run-to-run and across thread counts. The reduction order
// differs from the naive set's (float tiles vs double dot products),
// which is why the two sets agree only to elementwise tolerance and the
// kernel choice is checkpoint-fingerprinted.
#include <algorithm>
#include <cstring>

#include "kernels/ops_internal.h"
#include "kernels/workspace.h"

namespace collapois::kernels::detail {

namespace {

constexpr std::size_t MR = 4;    // microkernel rows
constexpr std::size_t NR = 8;    // microkernel cols
constexpr std::size_t KC = 256;  // reduction block
constexpr std::size_t MC = 64;   // row block
constexpr std::size_t NC = 512;  // column block

inline std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

// C_tile accumulators for one MR x NR tile over a packed KC slice.
// ap: MR-row panel (ap[p * MR + i]), bp: NR-column panel (bp[p * NR + j]).
void micro_kernel(std::size_t kc, const float* ap, const float* bp,
                  float* acc) {
  for (std::size_t x = 0; x < MR * NR; ++x) acc[x] = 0.0f;
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b = bp + p * NR;
    const float* a = ap + p * MR;
    for (std::size_t i = 0; i < MR; ++i) {
      const float av = a[i];
      float* row = acc + i * NR;
      for (std::size_t j = 0; j < NR; ++j) row[j] += av * b[j];
    }
  }
}

// Write one microtile into C. `overwrite` = first reduction block of a
// C-overwriting GEMM; row_bias/col_bias are fused bias epilogues (already
// offset to this tile), valid region is mr x nr.
void store_tile(float* c, std::size_t ldc, const float* acc, std::size_t mr,
                std::size_t nr, bool overwrite, const float* row_bias,
                const float* col_bias) {
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * NR;
    if (overwrite) {
      const float bias = row_bias != nullptr ? row_bias[i] : 0.0f;
      for (std::size_t j = 0; j < nr; ++j) crow[j] = arow[j] + bias;
    } else if (col_bias != nullptr) {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] += arow[j] + col_bias[j];
      }
    } else {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += arow[j];
    }
  }
}

// Pack an mc x kc block of A (row-major, leading dimension lda) into
// MR-row panels, zero-padding the ragged last panel. When row_sums is
// given (fused bias-gradient epilogue), each A element is added to its
// row's sum — callers only pass it on the first jc block so every element
// is counted exactly once.
void pack_a(const float* a, std::size_t lda, std::size_t mc, std::size_t kc,
            float* ap, float* row_sums) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    float* panel = ap + ir * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        panel[p * MR + i] = a[(ir + i) * lda + p];
      }
      for (std::size_t i = mr; i < MR; ++i) panel[p * MR + i] = 0.0f;
    }
    if (row_sums != nullptr) {
      for (std::size_t i = 0; i < mr; ++i) {
        float s = 0.0f;
        const float* arow = a + (ir + i) * lda;
        for (std::size_t p = 0; p < kc; ++p) s += arow[p];
        row_sums[ir + i] += s;
      }
    }
  }
}

// Pack a kc x mc block of a TRANSPOSED-layout A (stored [k x m], leading
// dimension lda = m) into MR-row panels of A^T. col_sums, when given,
// receives sum_p A[p, i] for the fused dense bias-gradient epilogue.
void pack_a_trans(const float* a, std::size_t lda, std::size_t mc,
                  std::size_t kc, float* ap, float* col_sums) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    float* panel = ap + ir * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* arow = a + p * lda + ir;
      for (std::size_t i = 0; i < mr; ++i) panel[p * MR + i] = arow[i];
      for (std::size_t i = mr; i < MR; ++i) panel[p * MR + i] = 0.0f;
    }
    if (col_sums != nullptr) {
      for (std::size_t i = 0; i < mr; ++i) {
        float s = 0.0f;
        for (std::size_t p = 0; p < kc; ++p) s += a[p * lda + ir + i];
        col_sums[ir + i] += s;
      }
    }
  }
}

// Pack a kc x nc block of B (row-major [k x n]) into NR-column panels.
void pack_b(const float* b, std::size_t ldb, std::size_t kc, std::size_t nc,
            float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    float* panel = bp + jr * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* brow = b + p * ldb + jr;
      for (std::size_t j = 0; j < nr; ++j) panel[p * NR + j] = brow[j];
      for (std::size_t j = nr; j < NR; ++j) panel[p * NR + j] = 0.0f;
    }
  }
}

// Pack a kc x nc block of a TRANSPOSED-layout B (stored [n x k], leading
// dimension ldb = k) into NR-column panels of B^T.
void pack_b_trans(const float* b, std::size_t ldb, std::size_t kc,
                  std::size_t nc, float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    float* panel = bp + jr * kc;
    for (std::size_t j = 0; j < nr; ++j) {
      const float* bcol = b + (jr + j) * ldb;
      for (std::size_t p = 0; p < kc; ++p) panel[p * NR + j] = bcol[p];
    }
    for (std::size_t j = nr; j < NR; ++j) {
      for (std::size_t p = 0; p < kc; ++p) panel[p * NR + j] = 0.0f;
    }
  }
}

enum class PackA { plain, trans };
enum class PackB { plain, trans };

// Shared 5-loop driver. `overwrite` gives C = A*B semantics (first
// reduction block overwrites, carrying row_bias); otherwise C += A*B with
// col_bias fused into the final reduction block's store. sums (row sums
// for plain A, column sums for transposed A) accumulate during the first
// jc block's packing pass.
void gemm_driver(const float* a, std::size_t lda, PackA a_mode,
                 const float* b, std::size_t ldb, PackB b_mode, float* c,
                 std::size_t m, std::size_t k, std::size_t n, bool overwrite,
                 const float* row_bias, const float* col_bias, float* sums) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (overwrite) {
      for (std::size_t i = 0; i < m; ++i) {
        const float bias = row_bias != nullptr ? row_bias[i] : 0.0f;
        for (std::size_t j = 0; j < n; ++j) c[i * n + j] = bias;
      }
    } else if (col_bias != nullptr) {
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) c[i * n + j] += col_bias[j];
      }
    }
    return;
  }

  Workspace& ws = Workspace::tls();
  const std::size_t kc_max = std::min(KC, k);
  float* ap =
      ws.floats(Workspace::kPackedA, round_up(std::min(MC, m), MR) * kc_max)
          .data();
  float* bp =
      ws.floats(Workspace::kPackedB, round_up(std::min(NC, n), NR) * kc_max)
          .data();

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const bool first_k = pc == 0;
      const bool last_k = pc + kc == k;
      if (b_mode == PackB::plain) {
        pack_b(b + pc * ldb + jc, ldb, kc, nc, bp);
      } else {
        pack_b_trans(b + jc * ldb + pc, ldb, kc, nc, bp);
      }
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        // Epilogue sums accumulate exactly once per A element: only the
        // first jc block's packing pass carries the sums pointer.
        float* pack_sums = (jc == 0 && sums != nullptr) ? sums + ic : nullptr;
        if (a_mode == PackA::plain) {
          pack_a(a + ic * lda + pc, lda, mc, kc, ap, pack_sums);
        } else {
          pack_a_trans(a + pc * lda + ic, lda, mc, kc, ap, pack_sums);
        }
        for (std::size_t jr = 0; jr < nc; jr += NR) {
          const std::size_t nr = std::min(NR, nc - jr);
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            const std::size_t mr = std::min(MR, mc - ir);
            float acc[MR * NR];
            micro_kernel(kc, ap + ir * kc, bp + jr * kc, acc);
            store_tile(c + (ic + ir) * n + jc + jr, n, acc, mr, nr,
                       overwrite && first_k,
                       row_bias != nullptr ? row_bias + ic + ir : nullptr,
                       (last_k && col_bias != nullptr) ? col_bias + jc + jr
                                                       : nullptr);
          }
        }
      }
    }
  }
}

// --- im2col / col2im ----------------------------------------------------

// col[(ic*k + ky)*k + kx][oy*ow + ox] = image[ic][oy+ky-pad][ox+kx-pad]
// (zero outside the image). One row of `col` per filter tap; the valid
// ox span is copied contiguously, the padded edges are zero-filled.
// `ldcol` is the column matrix's leading dimension, so a whole batch can
// be lowered side by side (image b's columns at offset b*oh*ow).
void im2col(const Conv2dShape& s, const float* image, float* col,
            std::size_t ldcol) {
  float* dst = col;
  for (std::size_t ic = 0; ic < s.cin; ++ic) {
    const float* plane = image + ic * s.h * s.w;
    for (std::size_t ky = 0; ky < s.k; ++ky) {
      for (std::size_t kx = 0; kx < s.k; ++kx, dst += ldcol) {
        const std::size_t ox_lo = kx < s.pad ? s.pad - kx : 0;
        const std::size_t ox_hi =
            std::min(s.ow, s.w + s.pad > kx ? s.w + s.pad - kx : 0);
        for (std::size_t oy = 0; oy < s.oh; ++oy) {
          float* row = dst + oy * s.ow;
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                    static_cast<std::ptrdiff_t>(s.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.h) ||
              ox_lo >= ox_hi) {
            std::memset(row, 0, s.ow * sizeof(float));
            continue;
          }
          if (ox_lo > 0) std::memset(row, 0, ox_lo * sizeof(float));
          std::memcpy(row + ox_lo,
                      plane + static_cast<std::size_t>(iy) * s.w + ox_lo + kx -
                          s.pad,
                      (ox_hi - ox_lo) * sizeof(float));
          if (ox_hi < s.ow) {
            std::memset(row + ox_hi, 0, (s.ow - ox_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

// Scatter-add of a column-matrix gradient back onto the image gradient:
// the exact adjoint of im2col (same ldcol convention).
void col2im_add(const Conv2dShape& s, const float* col, std::size_t ldcol,
                float* grad_image) {
  const float* src = col;
  for (std::size_t ic = 0; ic < s.cin; ++ic) {
    float* plane = grad_image + ic * s.h * s.w;
    for (std::size_t ky = 0; ky < s.k; ++ky) {
      for (std::size_t kx = 0; kx < s.k; ++kx, src += ldcol) {
        const std::size_t ox_lo = kx < s.pad ? s.pad - kx : 0;
        const std::size_t ox_hi =
            std::min(s.ow, s.w + s.pad > kx ? s.w + s.pad - kx : 0);
        if (ox_lo >= ox_hi) continue;
        for (std::size_t oy = 0; oy < s.oh; ++oy) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                    static_cast<std::ptrdiff_t>(s.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.h)) continue;
          const float* row = src + oy * s.ow;
          float* irow =
              plane + static_cast<std::size_t>(iy) * s.w + ox_lo + kx - s.pad;
          for (std::size_t ox = ox_lo; ox < ox_hi; ++ox) {
            irow[ox - ox_lo] += row[ox];
          }
        }
      }
    }
  }
}

// Below this many multiply-adds, panel packing costs more than it saves
// (a [16 x 32] x [32 x 2] head GEMM wastes 3/4 of every NR-wide tile on
// zero padding) and the reference loops win. The cutoff is a pure
// function of (m, k, n), so dispatch stays deterministic; the routed
// calls are bit-identical to the naive set on those shapes, which only
// tightens the cross-set tolerance.
constexpr std::size_t kSmallMacCutoff = 4096;

inline bool small_problem(std::size_t m, std::size_t k, std::size_t n) {
  return m * k * n <= kSmallMacCutoff;
}

// C[m x n] += A * B^T with both operands row-major [.. x k]. For a
// handful of outputs over a long reduction (conv weight gradients:
// m = cout, n = cin*k*k, k = batch*oh*ow) panel packing moves more data
// than the microkernel reads back; eight independent float lanes per dot
// product vectorize directly off the contiguous source rows instead. The
// lane split and reduction tree are fixed, so results stay deterministic.
void dot_abt_accum(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const float* col_bias,
                   float* a_row_sums) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float lanes[8] = {};
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        for (std::size_t l = 0; l < 8; ++l) {
          lanes[l] += arow[p + l] * brow[p + l];
        }
      }
      for (std::size_t l = 0; p + l < k; ++l) {
        lanes[l] += arow[p + l] * brow[p + l];
      }
      const float s = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
                      ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
      c[i * n + j] += s + (col_bias != nullptr ? col_bias[j] : 0.0f);
    }
    if (a_row_sums != nullptr) {
      float lanes[8] = {};
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        for (std::size_t l = 0; l < 8; ++l) lanes[l] += arow[p + l];
      }
      for (std::size_t l = 0; p + l < k; ++l) lanes[l] += arow[p + l];
      a_row_sums[i] += ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
                       ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    }
  }
}

// C[m x n] += A^T * B with A stored [k x m], for tiny reduction depths
// over long rows (conv input gradients: k = cout, n = batch*oh*ow). Each
// output row is a fixed-order sum of k scaled contiguous rows of B — pure
// axpy streams, nothing to pack, nothing wasted on padding.
void axpy_atb_accum(const float* a, const float* b, float* c, std::size_t k,
                    std::size_t m, std::size_t n, float* a_col_sums) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float api = a[p * m + i];
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
  if (a_col_sums != nullptr) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t i = 0; i < m; ++i) a_col_sums[i] += a[p * m + i];
    }
  }
}

}  // namespace

void blocked_gemm(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const float* row_bias) {
  if (small_problem(m, k, n) || (k <= 16 && n >= 256)) {
    // Shallow reductions over wide C (conv1's 9-tap forward GEMM) are
    // axpy-bound; the reference loops already stream them vectorized.
    naive_gemm(a, b, c, m, k, n, row_bias);
    return;
  }
  gemm_driver(a, k, PackA::plain, b, n, PackB::plain, c, m, k, n,
              /*overwrite=*/true, row_bias, nullptr, nullptr);
}

void blocked_gemm_a_bt_accum(const float* a, const float* b, float* c,
                             std::size_t m, std::size_t k, std::size_t n,
                             const float* col_bias, float* a_row_sums) {
  if (small_problem(m, k, n)) {
    naive_gemm_a_bt_accum(a, b, c, m, k, n, col_bias, a_row_sums);
    return;
  }
  if (m * n <= 512 && k >= 512) {
    dot_abt_accum(a, b, c, m, k, n, col_bias, a_row_sums);
    return;
  }
  gemm_driver(a, k, PackA::plain, b, k, PackB::trans, c, m, k, n,
              /*overwrite=*/false, nullptr, col_bias, a_row_sums);
}

void blocked_gemm_at_b_accum(const float* a, const float* b, float* c,
                             std::size_t k, std::size_t m, std::size_t n,
                             float* a_col_sums) {
  if (small_problem(m, k, n)) {
    naive_gemm_at_b_accum(a, b, c, k, m, n, a_col_sums);
    return;
  }
  if (k <= 16 && n >= 256) {
    axpy_atb_accum(a, b, c, k, m, n, a_col_sums);
    return;
  }
  gemm_driver(a, m, PackA::trans, b, n, PackB::plain, c, m, k, n,
              /*overwrite=*/false, nullptr, nullptr, a_col_sums);
}

// The whole batch is lowered into ONE column matrix col[K x batch*oh*ow]
// (image b's columns at offset b*oh*ow) so each conv op is a single
// well-shaped GEMM instead of `batch` packing-dominated slivers. The GEMM
// runs in [cout x batch*oh*ow] layout; a row-segment memcpy pass converts
// to/from the tensor's [batch][cout][oh*ow] layout. The lowering order is
// a pure function of the shape, so determinism is unaffected.
void blocked_conv2d_forward(const Conv2dShape& s, const float* in,
                            const float* weights, const float* bias,
                            float* out) {
  const std::size_t kdim = s.cin * s.k * s.k;
  const std::size_t ohow = s.oh * s.ow;
  const std::size_t n_all = s.batch * ohow;
  Workspace& ws = Workspace::tls();
  float* col = ws.floats(Workspace::kIm2col, kdim * n_all).data();
  float* out_all = ws.floats(Workspace::kConvIo, s.cout * n_all).data();
  for (std::size_t b = 0; b < s.batch; ++b) {
    im2col(s, in + b * s.cin * s.h * s.w, col + b * ohow, n_all);
  }
  // out_all[cout x batch*oh*ow] = W[cout x K] * col + bias (fused per-row).
  blocked_gemm(weights, col, out_all, s.cout, kdim, n_all, bias);
  for (std::size_t b = 0; b < s.batch; ++b) {
    for (std::size_t c = 0; c < s.cout; ++c) {
      std::memcpy(out + (b * s.cout + c) * ohow, out_all + c * n_all + b * ohow,
                  ohow * sizeof(float));
    }
  }
}

void blocked_conv2d_backward(const Conv2dShape& s, const float* in,
                             const float* weights, const float* go, float* gw,
                             float* gb, float* gi) {
  const std::size_t kdim = s.cin * s.k * s.k;
  const std::size_t ohow = s.oh * s.ow;
  const std::size_t n_all = s.batch * ohow;
  Workspace& ws = Workspace::tls();
  float* col = ws.floats(Workspace::kIm2col, kdim * n_all).data();
  float* go_all = ws.floats(Workspace::kConvIo, s.cout * n_all).data();
  for (std::size_t b = 0; b < s.batch; ++b) {
    im2col(s, in + b * s.cin * s.h * s.w, col + b * ohow, n_all);
    for (std::size_t c = 0; c < s.cout; ++c) {
      std::memcpy(go_all + c * n_all + b * ohow, go + (b * s.cout + c) * ohow,
                  ohow * sizeof(float));
    }
  }
  // gw[cout x K] += go_all * col^T; the bias gradient rides the packing
  // pass as go_all's row sums.
  blocked_gemm_a_bt_accum(go_all, col, gw, s.cout, n_all, kdim, nullptr, gb);
  if (gi == nullptr) return;  // first-layer backward: input grad unused
  // colgrad[K x batch*oh*ow] = W^T * go_all, then scatter-add onto gi.
  float* colgrad = ws.floats(Workspace::kColGrad, kdim * n_all).data();
  std::memset(colgrad, 0, kdim * n_all * sizeof(float));
  blocked_gemm_at_b_accum(weights, go_all, colgrad, s.cout, kdim, n_all,
                          nullptr);
  for (std::size_t b = 0; b < s.batch; ++b) {
    col2im_add(s, colgrad + b * ohow, n_all, gi + b * s.cin * s.h * s.w);
  }
}

}  // namespace collapois::kernels::detail
