// Per-thread reusable kernel scratch. Each worker thread (or the main
// thread in sequential runs) owns one Workspace holding the im2col
// buffer, packed GEMM panels, and the conv column-gradient buffer. Slots
// grow monotonically and are never shrunk, so after the first batch of a
// training run every kernel call is allocation-free.
//
// Buffer contents are scratch: kernels fully overwrite the region they
// use before reading it, so reuse across layers, batches, and clients
// cannot leak state between computations (property-tested).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace collapois::kernels {

class Workspace {
 public:
  // Fixed slot ids; each is an independent monotonically-growing buffer.
  enum Slot : std::size_t {
    kIm2col = 0,    // [cin*k*k x batch*oh*ow] column matrix of the batch
    kColGrad,       // same shape, gradient w.r.t. the column matrix
    kPackedA,       // MR-row panels of the GEMM's left operand
    kPackedB,       // NR-column panels of the GEMM's right operand
    kConvIo,        // [cout x batch*oh*ow] conv GEMM-layout output/grad
    kSlotCount,
  };

  // Scratch span of `n` floats for `slot`, growing the backing buffer if
  // needed. Contents are unspecified — callers must write before reading.
  std::span<float> floats(Slot slot, std::size_t n) {
    auto& buf = buffers_[slot];
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  // Bytes currently retained across all slots (observability/tests).
  std::size_t retained_bytes() const {
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b.capacity() * sizeof(float);
    return total;
  }

  // The calling thread's workspace.
  static Workspace& tls();

 private:
  std::array<std::vector<float>, kSlotCount> buffers_;
};

}  // namespace collapois::kernels
