// Compute-kernel layer: the NN substrate's hot loops (GEMM variants, Conv2d
// lowering, flat-vector aggregation math) behind a process-wide registry.
//
// Two kernel sets are registered:
//   - naive:   the original triple-loop GEMM and 7-deep direct convolution,
//              kept verbatim as the reference implementation;
//   - blocked: cache-blocked, panel-packed GEMM with a register-tiled
//              microkernel (compiler-auto-vectorized), Conv2d lowered to
//              im2col/col2im over it, and fused bias / bias-gradient
//              epilogues. The default.
//
// Determinism contract: every kernel is single-threaded per call with a
// FIXED reduction order that depends only on the problem shape — never on
// thread count, workspace contents, or run history. Within one kernel set
// results are bit-identical run-to-run; across sets they agree to tight
// elementwise tolerance (property-tested in tests/test_kernels.cpp). The
// two sets are NOT bit-identical to each other, which is why the kernel
// choice is part of the checkpoint fingerprint (sim/checkpoint.cpp).
//
// Scratch memory comes from a per-thread Workspace (workspace.h): im2col
// buffers and packed panels are reused across batches, so steady-state
// training performs zero per-batch allocations inside the kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace collapois::runtime {
class ThreadPool;
}

namespace collapois::kernels {

enum class KernelKind { naive, blocked };

const char* kernel_kind_name(KernelKind kind);
KernelKind parse_kernel_kind(const std::string& name);

// Problem geometry for the Conv2d kernels: stride-1 convolution of a
// [batch, cin, h, w] input with a [cout, cin, k, k] filter bank and
// symmetric zero padding `pad`, producing [batch, cout, oh, ow].
struct Conv2dShape {
  std::size_t batch = 0;
  std::size_t cin = 0;
  std::size_t h = 0;
  std::size_t w = 0;
  std::size_t cout = 0;
  std::size_t k = 0;
  std::size_t pad = 0;
  std::size_t oh = 0;
  std::size_t ow = 0;
};

// One kernel set. All GEMM epilogue pointers are optional (nullptr = no
// epilogue); epilogues are fused into the packing/store passes of the
// blocked set rather than run as separate sweeps.
struct KernelOps {
  const char* name;

  // C[m x n] = A[m x k] * B[k x n] (C overwritten). If row_bias is given,
  // row_bias[i] is added to every element of C row i (conv-forward bias).
  void (*gemm)(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, const float* row_bias);

  // C[m x n] += A[m x k] * B^T where B is stored [n x k]. If col_bias is
  // given, col_bias[j] is added once to every element of C column j
  // (dense-forward bias; C is expected to start zeroed). If a_row_sums is
  // given, a_row_sums[i] += sum_k A[i, k] (conv bias-gradient epilogue).
  void (*gemm_a_bt_accum)(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t k, std::size_t n,
                          const float* col_bias, float* a_row_sums);

  // C[m x n] += A^T * B[k x n] where A is stored [k x m]. If a_col_sums is
  // given, a_col_sums[i] += sum_p A[p, i] (dense bias-gradient epilogue).
  void (*gemm_at_b_accum)(const float* a, const float* b, float* c,
                          std::size_t k, std::size_t m, std::size_t n,
                          float* a_col_sums);

  // out[batch, cout, oh, ow] = conv(in, weights) + bias per out-channel.
  void (*conv2d_forward)(const Conv2dShape& s, const float* in,
                         const float* weights, const float* bias, float* out);

  // Given grad_output `go` [batch, cout, oh, ow]: accumulate the weight
  // gradient into gw [cout, cin, k, k] and the bias gradient into
  // gb [cout], and write the input gradient into gi (zero-initialized by
  // the caller, same shape as `in`). gi may be nullptr (first layer of a
  // network) — the input-gradient work is skipped and gw/gb are
  // bit-identical to the gi != nullptr call.
  void (*conv2d_backward)(const Conv2dShape& s, const float* in,
                          const float* weights, const float* go, float* gw,
                          float* gb, float* gi);
};

// Process-wide active kernel set. run_experiment() sets it from
// ExperimentConfig::kernels before any worker thread spawns; the default
// (blocked) covers code that trains models outside an experiment.
void set_active_kernels(KernelKind kind);
KernelKind active_kernels();

const KernelOps& ops();                    // the active set
const KernelOps& ops_for(KernelKind kind); // a specific set

// --- kernel-internal parallelism ----------------------------------------
// The conv lowering fans its per-image im2col/col2im passes out over this
// thread-local pool (nullptr = run inline; see runtime/parallel.h). Each
// image packs a disjoint range, so results are bit-identical for any
// thread count — the pool trades wall time only.
//
// The pool is installed with ScopedKernelPool from code that is NOT
// running inside a ThreadPool task (parallel_for must never nest, see
// runtime/thread_pool.h). Worker threads never inherit it: the pointer is
// thread-local, so kernels called from per-client training tasks always
// see nullptr and stay sequential. Install it on the main thread around
// single-model hot paths (trojan-model training, benches).
runtime::ThreadPool* kernel_pool();

class ScopedKernelPool {
 public:
  explicit ScopedKernelPool(runtime::ThreadPool* pool);
  ~ScopedKernelPool();
  ScopedKernelPool(const ScopedKernelPool&) = delete;
  ScopedKernelPool& operator=(const ScopedKernelPool&) = delete;

 private:
  runtime::ThreadPool* prev_;
};

// --- flat-vector aggregation math ---------------------------------------
// Hot helpers behind tensor/vecops.h, compiled in this library's optimized
// translation units. Not kernel-set-dispatched: both sets share one
// definition, so aggregation numerics never depend on the --kernels flag.

// a[i] = float(a[i] + s * b[i]).
void axpy_inplace(float* a, double s, const float* b, std::size_t n);

// acc[i] += w * v[i], accumulated in double (the drift-free path under
// mean_of / weighted_mean_of: hundreds of client updates are summed at
// double precision and rounded to float exactly once).
void weighted_accumulate(double* acc, double w, const float* v,
                         std::size_t n);

// out[i] = float(acc[i] * inv_scale).
void scaled_round(const double* acc, double inv_scale, float* out,
                  std::size_t n);

// ReLU forward: clamp x to max(x, 0) in place and record bit i of `mask`
// as x[i] > 0 (packed, 64 activations per word; every touched word is
// fully written). SIMD compare+movemask on x86, scalar elsewhere —
// elementwise either way, so numerics are identical.
void relu_forward_mask(float* x, std::size_t n, std::uint64_t* mask);

// ReLU backward: zero g[i] wherever mask bit i is clear.
void relu_backward_mask(float* g, std::size_t n, const std::uint64_t* mask);

}  // namespace collapois::kernels
