// The avx2 dispatch tier: an 8x8 FMA broadcast-and-accumulate GEMM
// microkernel instantiated into the shared blocked driver
// (gemm_driver.h), plus FMA overrides of the streaming shape-routes
// (wide_gemm / dot_abt / axpy_atb) that carry most conv-GEMM FLOPs.
// This is the only translation unit in the tree built
// with -mavx2 -mfma (see src/kernels/CMakeLists.txt) — everything else
// stays baseline-ISA, and the cpuid dispatcher (cpu_dispatch.h)
// guarantees these functions are only ever CALLED on CPUs that can
// execute them. Keep AVX2 code out of headers this TU shares with the
// rest of the tree.
//
// Microkernel shape: MR=8 rows x NR=8 columns = 8 ymm accumulators, one
// per row, fed by one ymm load of the B panel row and eight broadcasts
// from the A panel per reduction step — 16 FMAs per 2 loads at the
// unroll-by-2 steady state, comfortably inside the 16-register budget.
//
// Numerics: vfmadd rounds the multiply-add once where the scalar/sse2
// tiers round twice, so GEMM results differ from those tiers at the
// last-ulp level (inside the cross-set tolerance the property suites
// enforce). The reduction ORDER is identical — same KC/MC/NC blocking,
// same p-ascending accumulation — so the difference never compounds
// beyond rounding. Results are still bit-identical run-to-run on this
// tier.
//
// On non-x86 targets (or builds where the compiler cannot target AVX2)
// this TU compiles to a stub: avx2_tier_compiled() returns false and the
// dispatcher caps the active tier below avx2.
#include "kernels/ops_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

#include "kernels/conv_lower.h"
#include "kernels/gemm_driver.h"

namespace collapois::kernels::detail {

namespace {

struct Avx2Micro8x8 {
  static constexpr std::size_t MR = 8;
  static constexpr std::size_t NR = 8;
  static void micro(std::size_t kc, const float* ap, const float* bp,
                    float* acc) {
    __m256 c0 = _mm256_setzero_ps();
    __m256 c1 = _mm256_setzero_ps();
    __m256 c2 = _mm256_setzero_ps();
    __m256 c3 = _mm256_setzero_ps();
    __m256 c4 = _mm256_setzero_ps();
    __m256 c5 = _mm256_setzero_ps();
    __m256 c6 = _mm256_setzero_ps();
    __m256 c7 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < kc; ++p) {
      const __m256 b = _mm256_loadu_ps(bp + p * NR);
      const float* a = ap + p * MR;
      c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0), b, c0);
      c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1), b, c1);
      c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2), b, c2);
      c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3), b, c3);
      c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4), b, c4);
      c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5), b, c5);
      c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6), b, c6);
      c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7), b, c7);
    }
    _mm256_storeu_ps(acc + 0 * NR, c0);
    _mm256_storeu_ps(acc + 1 * NR, c1);
    _mm256_storeu_ps(acc + 2 * NR, c2);
    _mm256_storeu_ps(acc + 3 * NR, c3);
    _mm256_storeu_ps(acc + 4 * NR, c4);
    _mm256_storeu_ps(acc + 5 * NR, c5);
    _mm256_storeu_ps(acc + 6 * NR, c6);
    _mm256_storeu_ps(acc + 7 * NR, c7);
  }
};

// --- streaming paths ----------------------------------------------------
//
// The conv GEMMs mostly route AROUND the microkernel (shallow k, long
// dots — see the cutoffs in blocked.cpp), so the avx2 tier must also
// override the streaming loops or conv throughput would not move at all.
// Each keeps the scalar version's loop structure; only the instruction
// width and the fused multiply-add rounding differ.

// All three streams are L2-bandwidth-bound if B is re-read per output
// row (the flop:byte ratio of a k<=16 GEMM is too low for a row-at-a-
// time loop to beat auto-vectorized SSE2 — measured flat). The overrides
// therefore block over STRIPS of kStrip C rows: one pass over B updates
// the whole strip from registers, cutting B traffic by kStrip x and
// giving kStrip independent FMA chains. Per element the reduction is
// still p-ascending, so only the FMA rounding differs from the scalar
// route.
constexpr std::size_t kStrip = 4;

// The ROWS template parameter makes every strip loop trip count a
// compile-time constant so the accumulators live in ymm registers — with
// a runtime row count the compiler indexes an __m256 array through the
// stack and every fmadd round-trips through memory.
template <std::size_t ROWS>
void wide_gemm_strip(const float* a, const float* b, float* c, std::size_t i0,
                     std::size_t k, std::size_t n, const float* row_bias) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[ROWS];
    for (std::size_t s = 0; s < ROWS; ++s) {
      acc[s] = _mm256_set1_ps(row_bias != nullptr ? row_bias[i0 + s] : 0.0f);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const __m256 bv = _mm256_loadu_ps(b + p * n + j);
      for (std::size_t s = 0; s < ROWS; ++s) {
        acc[s] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + (i0 + s) * k + p), bv,
                                 acc[s]);
      }
    }
    for (std::size_t s = 0; s < ROWS; ++s) {
      _mm256_storeu_ps(c + (i0 + s) * n + j, acc[s]);
    }
  }
  for (; j < n; ++j) {
    for (std::size_t s = 0; s < ROWS; ++s) {
      const std::size_t i = i0 + s;
      float v = row_bias != nullptr ? row_bias[i] : 0.0f;
      for (std::size_t p = 0; p < k; ++p) v += a[i * k + p] * b[p * n + j];
      c[i * n + j] = v;
    }
  }
}

// C = A * B + bias for k <= 16, n >= 256.
void avx2_wide_gemm(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n, const float* row_bias) {
  std::size_t i0 = 0;
  for (; i0 + kStrip <= m; i0 += kStrip) {
    wide_gemm_strip<kStrip>(a, b, c, i0, k, n, row_bias);
  }
  switch (m - i0) {
    case 1: wide_gemm_strip<1>(a, b, c, i0, k, n, row_bias); break;
    case 2: wide_gemm_strip<2>(a, b, c, i0, k, n, row_bias); break;
    case 3: wide_gemm_strip<3>(a, b, c, i0, k, n, row_bias); break;
    default: break;
  }
}

// C += A * B^T for m*n <= 512, k >= 512. Same eight-lane split and same
// final reduction tree as the scalar dot_abt_accum; the strip gives
// kStrip independent fmadd chains sharing each B-row load, which both
// hides the FMA latency and keeps B traffic down.
inline float lane_tree(const float* l) {
  return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
}

// One strip of ROWS A-rows against all n B-rows. k can be long (the
// route fires at k >= 512), so the strip's A working set may exceed L1;
// the reduction therefore walks k in L1-sized chunks with the lane
// accumulators PERSISTED across chunks (acc[j*ROWS+s] carries between
// passes), which keeps the per-element fmadd order identical to an
// unchunked loop while each A chunk is read from L2 once and then served
// from L1 for all n columns. ROWS*n <= m*n <= 512 by the route cutoff,
// so the accumulator array is bounded.
template <std::size_t ROWS>
void dot_abt_strip(const float* a, const float* b, float* c, std::size_t i0,
                   std::size_t k, std::size_t n, const float* col_bias) {
  constexpr std::size_t kChunkK = 2048;  // 8 KiB per row, 32 KiB per strip
  __m256 acc[512];
  for (std::size_t x = 0; x < ROWS * n; ++x) acc[x] = _mm256_setzero_ps();
  const std::size_t kvec = k & ~std::size_t{7};
  for (std::size_t p0 = 0; p0 < kvec; p0 += kChunkK) {
    const std::size_t pend = std::min(kvec, p0 + kChunkK);
    // Columns go two at a time: each A load feeds both columns' fmadds,
    // which doubles the independent accumulator chains (2*ROWS) — with
    // only ROWS chains the loop is FMA-latency-bound, not throughput-
    // bound. Each (row, column) still has its own single 8-lane chain,
    // so the per-element reduction order is untouched.
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const float* brow0 = b + j * k;
      const float* brow1 = brow0 + k;
      __m256 l0[ROWS], l1[ROWS];
      for (std::size_t s = 0; s < ROWS; ++s) {
        l0[s] = acc[j * ROWS + s];
        l1[s] = acc[(j + 1) * ROWS + s];
      }
      for (std::size_t p = p0; p < pend; p += 8) {
        const __m256 bv0 = _mm256_loadu_ps(brow0 + p);
        const __m256 bv1 = _mm256_loadu_ps(brow1 + p);
        for (std::size_t s = 0; s < ROWS; ++s) {
          const __m256 av = _mm256_loadu_ps(a + (i0 + s) * k + p);
          l0[s] = _mm256_fmadd_ps(av, bv0, l0[s]);
          l1[s] = _mm256_fmadd_ps(av, bv1, l1[s]);
        }
      }
      for (std::size_t s = 0; s < ROWS; ++s) {
        acc[j * ROWS + s] = l0[s];
        acc[(j + 1) * ROWS + s] = l1[s];
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 l[ROWS];
      for (std::size_t s = 0; s < ROWS; ++s) l[s] = acc[j * ROWS + s];
      for (std::size_t p = p0; p < pend; p += 8) {
        const __m256 bv = _mm256_loadu_ps(brow + p);
        for (std::size_t s = 0; s < ROWS; ++s) {
          l[s] = _mm256_fmadd_ps(_mm256_loadu_ps(a + (i0 + s) * k + p), bv,
                                 l[s]);
        }
      }
      for (std::size_t s = 0; s < ROWS; ++s) acc[j * ROWS + s] = l[s];
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (std::size_t s = 0; s < ROWS; ++s) {
      alignas(32) float lanes[8];
      _mm256_store_ps(lanes, acc[j * ROWS + s]);
      const float* arow = a + (i0 + s) * k;
      for (std::size_t l = 0; kvec + l < k; ++l) {
        lanes[l] += arow[kvec + l] * brow[kvec + l];
      }
      c[(i0 + s) * n + j] +=
          lane_tree(lanes) + (col_bias != nullptr ? col_bias[j] : 0.0f);
    }
  }
}

void avx2_dot_abt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const float* col_bias,
                  float* a_row_sums) {
  std::size_t i0 = 0;
  for (; i0 + kStrip <= m; i0 += kStrip) {
    dot_abt_strip<kStrip>(a, b, c, i0, k, n, col_bias);
  }
  switch (m - i0) {
    case 1: dot_abt_strip<1>(a, b, c, i0, k, n, col_bias); break;
    case 2: dot_abt_strip<2>(a, b, c, i0, k, n, col_bias); break;
    case 3: dot_abt_strip<3>(a, b, c, i0, k, n, col_bias); break;
    default: break;
  }
  if (a_row_sums != nullptr) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      __m256 acc = _mm256_setzero_ps();
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(arow + p));
      }
      alignas(32) float lanes[8];
      _mm256_store_ps(lanes, acc);
      for (std::size_t l = 0; p + l < k; ++l) lanes[l] += arow[p + l];
      a_row_sums[i] += lane_tree(lanes);
    }
  }
}

// C += A^T * B for k <= 16, n >= 256: axpy stacks over long rows of B,
// strip-blocked like wide_gemm. Accumulate mode loads C into the
// register accumulators; overwrite mode starts them at zero, saving the
// read of C (and the caller's memset) when C's prior contents are dead.
template <std::size_t ROWS>
void axpy_atb_strip(const float* a, const float* b, float* c, std::size_t i0,
                    std::size_t k, std::size_t m, std::size_t n,
                    bool overwrite) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[ROWS];
    for (std::size_t s = 0; s < ROWS; ++s) {
      acc[s] = overwrite ? _mm256_setzero_ps()
                         : _mm256_loadu_ps(c + (i0 + s) * n + j);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const __m256 bv = _mm256_loadu_ps(b + p * n + j);
      const float* ap = a + p * m + i0;
      for (std::size_t s = 0; s < ROWS; ++s) {
        acc[s] = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + s), bv, acc[s]);
      }
    }
    for (std::size_t s = 0; s < ROWS; ++s) {
      _mm256_storeu_ps(c + (i0 + s) * n + j, acc[s]);
    }
  }
  for (; j < n; ++j) {
    for (std::size_t s = 0; s < ROWS; ++s) {
      const std::size_t i = i0 + s;
      float v = overwrite ? 0.0f : c[i * n + j];
      for (std::size_t p = 0; p < k; ++p) v += a[p * m + i] * b[p * n + j];
      c[i * n + j] = v;
    }
  }
}

void avx2_axpy_atb(const float* a, const float* b, float* c, std::size_t k,
                   std::size_t m, std::size_t n, float* a_col_sums,
                   bool overwrite) {
  std::size_t i0 = 0;
  for (; i0 + kStrip <= m; i0 += kStrip) {
    axpy_atb_strip<kStrip>(a, b, c, i0, k, m, n, overwrite);
  }
  switch (m - i0) {
    case 1: axpy_atb_strip<1>(a, b, c, i0, k, m, n, overwrite); break;
    case 2: axpy_atb_strip<2>(a, b, c, i0, k, m, n, overwrite); break;
    case 3: axpy_atb_strip<3>(a, b, c, i0, k, m, n, overwrite); break;
    default: break;
  }
  if (a_col_sums != nullptr) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t i = 0; i < m; ++i) a_col_sums[i] += a[p * m + i];
    }
  }
}

// This TU's instantiation of the shared conv lowering auto-vectorizes
// its span loops at AVX2 width; output is bit-identical to the baseline
// instantiation (copies and pure adds only — see conv_lower.h).
void avx2_im2col(const Conv2dShape& s, const float* image, float* col,
                 std::size_t ldcol) {
  lower::im2col(s, image, col, ldcol);
}
void avx2_col2im_add(const Conv2dShape& s, const float* col, std::size_t ldcol,
                     float* grad_image) {
  lower::col2im_add(s, col, ldcol, grad_image);
}

constexpr TierOps kAvx2Tier{TierGemm<Avx2Micro8x8>::gemm,
                            TierGemm<Avx2Micro8x8>::gemm_a_bt_accum,
                            TierGemm<Avx2Micro8x8>::gemm_at_b_accum,
                            avx2_wide_gemm,
                            avx2_dot_abt,
                            avx2_axpy_atb,
                            avx2_im2col,
                            avx2_col2im_add};

}  // namespace

bool avx2_tier_compiled() { return true; }

const TierOps& avx2_tier_ops() { return kAvx2Tier; }

}  // namespace collapois::kernels::detail

#else  // stub: target cannot compile AVX2 — the dispatcher never selects it

#include <cstdlib>

namespace collapois::kernels::detail {

bool avx2_tier_compiled() { return false; }

const TierOps& avx2_tier_ops() {
  // Unreachable by contract: blocked.cpp checks avx2_tier_compiled()
  // before calling, and cpu_dispatch caps the tier on non-x86.
  std::abort();
}

}  // namespace collapois::kernels::detail

#endif
