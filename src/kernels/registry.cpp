#include <atomic>
#include <stdexcept>

#include "kernels/ops_internal.h"

namespace collapois::kernels {

namespace {

constexpr KernelOps kNaiveOps{
    "naive",
    detail::naive_gemm,
    detail::naive_gemm_a_bt_accum,
    detail::naive_gemm_at_b_accum,
    detail::naive_conv2d_forward,
    detail::naive_conv2d_backward,
};

constexpr KernelOps kBlockedOps{
    "blocked",
    detail::blocked_gemm,
    detail::blocked_gemm_a_bt_accum,
    detail::blocked_gemm_at_b_accum,
    detail::blocked_conv2d_forward,
    detail::blocked_conv2d_backward,
};

// Relaxed atomic: run_experiment() stores the configured kind before the
// thread pool spawns; workers only ever load it. The value selects
// between two immutable op tables, so there is no data to order.
std::atomic<KernelKind> g_active{KernelKind::blocked};

}  // namespace

const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::naive: return "naive";
    case KernelKind::blocked: return "blocked";
  }
  return "unknown";
}

KernelKind parse_kernel_kind(const std::string& name) {
  if (name == "naive") return KernelKind::naive;
  if (name == "blocked") return KernelKind::blocked;
  throw std::invalid_argument("parse_kernel_kind: unknown kernel set '" +
                              name + "'");
}

void set_active_kernels(KernelKind kind) {
  g_active.store(kind, std::memory_order_relaxed);
}

KernelKind active_kernels() {
  return g_active.load(std::memory_order_relaxed);
}

const KernelOps& ops_for(KernelKind kind) {
  return kind == KernelKind::naive ? kNaiveOps : kBlockedOps;
}

const KernelOps& ops() { return ops_for(active_kernels()); }

namespace {

// Thread-local by design: worker threads never install a kernel pool, so
// kernels called from inside a ThreadPool task always see nullptr and
// stay sequential — nested parallel_for (a deadlock, see
// runtime/thread_pool.h) is impossible by construction.
thread_local runtime::ThreadPool* t_kernel_pool = nullptr;

}  // namespace

runtime::ThreadPool* kernel_pool() { return t_kernel_pool; }

ScopedKernelPool::ScopedKernelPool(runtime::ThreadPool* pool)
    : prev_(t_kernel_pool) {
  t_kernel_pool = pool;
}

ScopedKernelPool::~ScopedKernelPool() { t_kernel_pool = prev_; }

}  // namespace collapois::kernels
