// Internal: the concrete op functions behind the two registered kernel
// sets. Only registry.cpp and the implementation TUs include this.
#pragma once

#include "kernels/kernels.h"

namespace collapois::kernels::detail {

// naive.cpp — the original reference loops.
void naive_gemm(const float* a, const float* b, float* c, std::size_t m,
                std::size_t k, std::size_t n, const float* row_bias);
void naive_gemm_a_bt_accum(const float* a, const float* b, float* c,
                           std::size_t m, std::size_t k, std::size_t n,
                           const float* col_bias, float* a_row_sums);
void naive_gemm_at_b_accum(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t m, std::size_t n,
                           float* a_col_sums);
void naive_conv2d_forward(const Conv2dShape& s, const float* in,
                          const float* weights, const float* bias, float* out);
void naive_conv2d_backward(const Conv2dShape& s, const float* in,
                           const float* weights, const float* go, float* gw,
                           float* gb, float* gi);

// blocked.cpp — packed/blocked GEMM and the im2col convolution.
void blocked_gemm(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const float* row_bias);
void blocked_gemm_a_bt_accum(const float* a, const float* b, float* c,
                             std::size_t m, std::size_t k, std::size_t n,
                             const float* col_bias, float* a_row_sums);
void blocked_gemm_at_b_accum(const float* a, const float* b, float* c,
                             std::size_t k, std::size_t m, std::size_t n,
                             float* a_col_sums);
void blocked_conv2d_forward(const Conv2dShape& s, const float* in,
                            const float* weights, const float* bias,
                            float* out);
void blocked_conv2d_backward(const Conv2dShape& s, const float* in,
                             const float* weights, const float* go, float* gw,
                             float* gb, float* gi);

}  // namespace collapois::kernels::detail
