// Internal: the concrete op functions behind the two registered kernel
// sets. Only registry.cpp and the implementation TUs include this.
#pragma once

#include "kernels/kernels.h"

namespace collapois::kernels::detail {

// naive.cpp — the original reference loops.
void naive_gemm(const float* a, const float* b, float* c, std::size_t m,
                std::size_t k, std::size_t n, const float* row_bias);
void naive_gemm_a_bt_accum(const float* a, const float* b, float* c,
                           std::size_t m, std::size_t k, std::size_t n,
                           const float* col_bias, float* a_row_sums);
void naive_gemm_at_b_accum(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t m, std::size_t n,
                           float* a_col_sums);
void naive_conv2d_forward(const Conv2dShape& s, const float* in,
                          const float* weights, const float* bias, float* out);
void naive_conv2d_backward(const Conv2dShape& s, const float* in,
                           const float* weights, const float* go, float* gw,
                           float* gb, float* gi);

// blocked.cpp — packed/blocked GEMM and the im2col convolution.
void blocked_gemm(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const float* row_bias);
void blocked_gemm_a_bt_accum(const float* a, const float* b, float* c,
                             std::size_t m, std::size_t k, std::size_t n,
                             const float* col_bias, float* a_row_sums);
void blocked_gemm_at_b_accum(const float* a, const float* b, float* c,
                             std::size_t k, std::size_t m, std::size_t n,
                             float* a_col_sums);
void blocked_conv2d_forward(const Conv2dShape& s, const float* in,
                            const float* weights, const float* bias,
                            float* out);
void blocked_conv2d_backward(const Conv2dShape& s, const float* in,
                             const float* weights, const float* go, float* gw,
                             float* gb, float* gi);

// One ISA tier's GEMM entry points behind the blocked set's runtime
// dispatch (cpu_dispatch.h). Only the GEMMs are tier-specific — the conv
// ops lower onto them through the dispatching blocked_* wrappers. The
// first three are the packed/blocked drivers; the last three are the
// shape-routed streaming paths (shallow reductions over wide C, long dot
// products, short axpy stacks) that skip panel packing entirely. The conv
// GEMMs are dominated by the streaming shapes, so a tier that only
// accelerated the microkernel would leave conv throughput untouched.
struct TierOps {
  void (*gemm)(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, const float* row_bias);
  void (*gemm_a_bt_accum)(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t k, std::size_t n,
                          const float* col_bias, float* a_row_sums);
  void (*gemm_at_b_accum)(const float* a, const float* b, float* c,
                          std::size_t k, std::size_t m, std::size_t n,
                          float* a_col_sums);
  // C = A * B + bias for k <= 16, n >= 256: per-row axpy streams.
  void (*wide_gemm)(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n, const float* row_bias);
  // C += A * B^T for m*n <= 512, k >= 512: long contiguous dot products.
  void (*dot_abt)(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const float* col_bias,
                  float* a_row_sums);
  // C += A^T * B for k <= 16, n >= 256: axpy over long rows of B. With
  // `overwrite` set, C's prior contents are ignored (C = A^T * B): the
  // conv backward's column-gradient GEMM always writes a fresh workspace
  // matrix, and overwriting saves both the caller's memset and the
  // accumulator's read of C.
  void (*axpy_atb)(const float* a, const float* b, float* c, std::size_t k,
                   std::size_t m, std::size_t n, float* a_col_sums,
                   bool overwrite);
  // conv lowering (conv_lower.h): per-tier instantiations of the SAME
  // inline source — copies and pure adds only, so every tier's output is
  // bit-identical; the tier merely picks the vector width they run at.
  void (*im2col)(const Conv2dShape& s, const float* image, float* col,
                 std::size_t ldcol);
  void (*col2im_add)(const Conv2dShape& s, const float* col, std::size_t ldcol,
                     float* grad_image);
};

// simd_avx2.cpp — the 8x8 AVX2/FMA microkernel tier, built as its own
// translation unit with -mavx2 -mfma (the rest of the tree stays
// baseline-ISA; cpuid dispatch guarantees these functions only run on
// CPUs that support them). On targets where the TU compiles to a stub,
// avx2_tier_compiled() is false and avx2_tier_ops() must not be called.
bool avx2_tier_compiled();
const TierOps& avx2_tier_ops();

}  // namespace collapois::kernels::detail
