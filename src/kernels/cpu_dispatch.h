// Runtime CPU dispatch for the SIMD microkernels (DESIGN.md §14).
//
// One binary runs correctly everywhere: the instruction-set tier used by
// the blocked GEMM microkernel and the vectorized defense column tiles is
// selected at runtime from cpuid-reported features, never by compile-time
// flags alone. Three tiers exist:
//
//   scalar — the portable C++ microkernels (auto-vectorized at -O3);
//            always available, and the reference the other tiers are
//            property-tested against.
//   sse2   — explicit 128-bit intrinsics. Bit-identical to the scalar
//            tier for every op: the per-lane operation order and
//            mul-then-add rounding are the same, only the register width
//            differs.
//   avx2   — 256-bit intrinsics with FMA. The defense column tiles stay
//            exactly equal to scalar (per-lane identical operation
//            order); the GEMM microkernel uses fused multiply-add (one
//            rounding instead of two), so GEMM results agree with the
//            other tiers only to the cross-set elementwise tolerance.
//
// Selection happens once, on first use: the best tier the CPU supports,
// unless the COLLAPOIS_FORCE_ISA environment variable names a LOWER tier
// ("scalar" | "sse2" | "avx2") — the CI dispatch matrix runs the property
// suites under each forced tier. Forcing a tier the CPU cannot execute is
// a loud error, not a crash-later: dispatch initialization throws.
//
// The dispatch tier is deliberately NOT part of the checkpoint
// fingerprint (sim/checkpoint.cpp): only the kernel KIND (naive/blocked)
// pins a trajectory. Coordinate-wise defense aggregation is bit-exact
// across tiers, and a checkpoint written on an AVX2 host must remain
// resumable on a host that only has the scalar tier.
#pragma once

#include <cstddef>
#include <string>

namespace collapois::kernels {

enum class IsaTier { scalar = 0, sse2 = 1, avx2 = 2 };

const char* isa_tier_name(IsaTier tier);
// Throws std::invalid_argument on an unknown name.
IsaTier parse_isa_tier(const std::string& name);

// cpuid-reported features of the executing CPU (all false on non-x86).
// Detection runs once; the result is cached for the process lifetime.
struct CpuFeatures {
  bool sse2 = false;
  bool sse4_2 = false;
  bool avx = false;     // includes the OS XSAVE/YMM-state check
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;  // detected and reported, not yet targeted
};
const CpuFeatures& cpu_features();

// The best tier cpu_features() supports (avx2 requires AVX2 *and* FMA
// *and* OS YMM state; sse2 requires SSE2; otherwise scalar).
IsaTier detected_tier();

// The tier the kernels actually run. Initialized on first call: the
// COLLAPOIS_FORCE_ISA override when set (throws std::runtime_error if it
// names a tier above detected_tier() or an unknown name), else
// detected_tier().
IsaTier active_tier();

// Re-pin the active tier at runtime — the property suites sweep every
// available tier this way. Throws std::runtime_error when `tier` exceeds
// detected_tier(). NOT thread-safe against concurrent kernel calls: call
// it only from single-threaded setup code, like set_active_kernels().
void set_active_tier(IsaTier tier);

// What the dispatcher selected, for run reports and bench artifacts.
struct DispatchInfo {
  IsaTier tier = IsaTier::scalar;
  const char* microkernel = "";  // e.g. "avx2-fma"
  std::size_t mr = 0;            // microkernel register-tile rows
  std::size_t nr = 0;            // microkernel register-tile cols
  bool forced = false;           // COLLAPOIS_FORCE_ISA was honored
};
DispatchInfo dispatch_info();

// "sse2,sse4.2,avx,fma,avx2" — the detected feature flags, for reports.
std::string cpu_feature_string();

}  // namespace collapois::kernels
