// Mini-batch SGD training loops over a Dataset: the local-training step
// every benign client runs (Algorithm 1, lines 7-10), the centralized
// training the attacker uses to fit the Trojaned model X (Eq. 1), and the
// distillation-regularized variant MetaFed needs.
#pragma once

#include <cstddef>
#include <functional>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "stats/rng.h"

namespace collapois::nn {

struct SgdConfig {
  double learning_rate = 0.01;
  std::size_t batch_size = 16;
  std::size_t epochs = 1;
  double weight_decay = 0.0;
  // Optional per-sample gradient-norm clip applied to the whole model's
  // flat gradient after each batch backward (0 disables).
  double grad_clip = 0.0;
};

// Train `model` in place on `d`; returns the mean training loss of the
// final epoch. Batches are sampled by shuffling each epoch.
double train_sgd(Model& model, const data::Dataset& d, const SgdConfig& config,
                 stats::Rng& rng);

// One SGD pass where the loss is
//   CE(model(x), y) + distill_weight * CE_soft(model(x), teacher(x)).
// Used by MetaFed's cyclic knowledge distillation.
double train_sgd_distill(Model& model, Model& teacher, double distill_weight,
                         const data::Dataset& d, const SgdConfig& config,
                         stats::Rng& rng);

// One SGD pass with a proximal/drift-correction pull toward `anchor`
// (flat parameter vector): loss + (penalty/2)*||theta - anchor||^2.
// Used by FedDC's corrected local objective.
double train_sgd_proximal(Model& model, std::span<const float> anchor,
                          double penalty, const data::Dataset& d,
                          const SgdConfig& config, stats::Rng& rng);

}  // namespace collapois::nn
