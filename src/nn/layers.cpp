#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/linalg.h"

namespace collapois::nn {

void Layer::zero_grad() {
  auto g = gradients();
  std::fill(g.begin(), g.end(), 0.0f);
}

// ---------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      params_(in_features * out_features + out_features, 0.0f),
      grads_(params_.size(), 0.0f) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

void Dense::init(stats::Rng& rng) {
  // He initialization for the ReLU nets used throughout.
  const double s = std::sqrt(2.0 / static_cast<double>(in_));
  for (std::size_t i = 0; i < in_ * out_; ++i) {
    params_[i] = static_cast<float>(rng.normal(0.0, s));
  }
  for (std::size_t i = in_ * out_; i < params_.size(); ++i) params_[i] = 0.0f;
}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [B, in]");
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor out({batch, out_});
  // y[b, o] = sum_i x[b, i] * W[o, i] + b[o]
  tensor::gemm_a_bt_accum(input.data(), std::span<const float>(params_.data(), in_ * out_),
                          out.data(), batch, in_, out_);
  const float* bias = params_.data() + in_ * out_;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) out.data()[b * out_ + o] += bias[o];
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: expected [B, out]");
  }
  const std::size_t batch = grad_output.dim(0);
  // dW[o, i] += sum_b g[b, o] * x[b, i]  (A^T B with A = g, B = x)
  tensor::gemm_at_b_accum(grad_output.data(), cached_input_.data(),
                          std::span<float>(grads_.data(), in_ * out_), batch,
                          out_, in_);
  float* gbias = grads_.data() + in_ * out_;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) {
      gbias[o] += grad_output.data()[b * out_ + o];
    }
  }
  // dX[b, i] = sum_o g[b, o] * W[o, i]
  Tensor grad_in({batch, in_});
  tensor::gemm(grad_output.data(),
               std::span<const float>(params_.data(), in_ * out_),
               grad_in.data(), batch, out_, in_);
  return grad_in;
}

std::unique_ptr<Layer> Dense::clone() const {
  auto c = std::make_unique<Dense>(in_, out_);
  c->params_ = params_;
  return c;
}

// ----------------------------------------------------------------- Relu

Tensor Relu::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& x : out.storage()) x = std::max(x, 0.0f);
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  if (grad_output.size() != cached_input_.size()) {
    throw std::invalid_argument("Relu::backward: size mismatch");
  }
  Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_in[i] = 0.0f;
  }
  return grad_in;
}

std::unique_ptr<Layer> Relu::clone() const { return std::make_unique<Relu>(); }

// --------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      pad_(padding),
      params_(out_channels * in_channels * kernel * kernel + out_channels,
              0.0f),
      grads_(params_.size(), 0.0f) {
  if (cin_ == 0 || cout_ == 0 || k_ == 0) {
    throw std::invalid_argument("Conv2d: zero-sized layer");
  }
}

void Conv2d::init(stats::Rng& rng) {
  const double fan_in = static_cast<double>(cin_ * k_ * k_);
  const double s = std::sqrt(2.0 / fan_in);
  const std::size_t nw = cout_ * cin_ * k_ * k_;
  for (std::size_t i = 0; i < nw; ++i) {
    params_[i] = static_cast<float>(rng.normal(0.0, s));
  }
  for (std::size_t i = nw; i < params_.size(); ++i) params_[i] = 0.0f;
}

Tensor Conv2d::forward(const Tensor& input) {
  const auto& s = input.shape();
  if (s.size() != 4 || s[1] != cin_) {
    throw std::invalid_argument("Conv2d::forward: expected [B, Cin, H, W]");
  }
  cached_input_ = input;
  const std::size_t batch = s[0];
  const std::size_t h = s[2];
  const std::size_t w = s[3];
  if (h + 2 * pad_ < k_ || w + 2 * pad_ < k_) {
    throw std::invalid_argument("Conv2d::forward: kernel larger than input");
  }
  const std::size_t oh = h + 2 * pad_ - k_ + 1;
  const std::size_t ow = w + 2 * pad_ - k_ + 1;
  Tensor out({batch, cout_, oh, ow});

  const float* wts = params_.data();
  const float* bias = params_.data() + cout_ * cin_ * k_ * k_;
  const float* in = input.data().data();
  float* o = out.data().data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          double acc = bias[oc];
          for (std::size_t ic = 0; ic < cin_; ++ic) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const float v =
                    in[((b * cin_ + ic) * h + static_cast<std::size_t>(iy)) *
                           w +
                       static_cast<std::size_t>(ix)];
                const float wt =
                    wts[((oc * cin_ + ic) * k_ + ky) * k_ + kx];
                acc += static_cast<double>(v) * wt;
              }
            }
          }
          o[((b * cout_ + oc) * oh + oy) * ow + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const auto& gs = grad_output.shape();
  const auto& is = cached_input_.shape();
  if (gs.size() != 4 || gs[1] != cout_) {
    throw std::invalid_argument("Conv2d::backward: expected [B, Cout, OH, OW]");
  }
  const std::size_t batch = is[0];
  const std::size_t h = is[2];
  const std::size_t w = is[3];
  const std::size_t oh = gs[2];
  const std::size_t ow = gs[3];

  Tensor grad_in(is);
  const float* wts = params_.data();
  float* gw = grads_.data();
  float* gb = grads_.data() + cout_ * cin_ * k_ * k_;
  const float* in = cached_input_.data().data();
  const float* go = grad_output.data().data();
  float* gi = grad_in.data().data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = go[((b * cout_ + oc) * oh + oy) * ow + ox];
          if (g == 0.0f) continue;
          gb[oc] += g;
          for (std::size_t ic = 0; ic < cin_; ++ic) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t in_idx =
                    ((b * cin_ + ic) * h + static_cast<std::size_t>(iy)) * w +
                    static_cast<std::size_t>(ix);
                const std::size_t w_idx =
                    ((oc * cin_ + ic) * k_ + ky) * k_ + kx;
                gw[w_idx] += g * in[in_idx];
                gi[in_idx] += g * wts[w_idx];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto c = std::make_unique<Conv2d>(cin_, cout_, k_, pad_);
  c->params_ = params_;
  return c;
}

// ------------------------------------------------------------ MaxPool2d

Tensor MaxPool2d::forward(const Tensor& input) {
  const auto& s = input.shape();
  if (s.size() != 4 || s[2] % 2 != 0 || s[3] % 2 != 0) {
    throw std::invalid_argument(
        "MaxPool2d::forward: expected [B, C, H, W] with even H, W");
  }
  in_shape_ = s;
  const std::size_t batch = s[0];
  const std::size_t c = s[1];
  const std::size_t h = s[2];
  const std::size_t w = s[3];
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  Tensor out({batch, c, oh, ow});
  argmax_.assign(out.size(), 0);
  const float* in = input.data().data();
  float* o = out.data().data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t idx =
                  ((b * c + ch) * h + (2 * oy + dy)) * w + (2 * ox + dx);
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = ((b * c + ch) * oh + oy) * ow + ox;
          o[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: size mismatch");
  }
  Tensor grad_in(in_shape_);
  float* gi = grad_in.data().data();
  const float* go = grad_output.data().data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gi[argmax_[i]] += go[i];
  return grad_in;
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>();
}

// -------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank >= 2 required");
  }
  in_shape_ = input.shape();
  const std::size_t batch = in_shape_[0];
  Tensor out = input;
  out.reshape({batch, input.size() / batch});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad_in = grad_output;
  grad_in.reshape(in_shape_);
  return grad_in;
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>();
}

}  // namespace collapois::nn
