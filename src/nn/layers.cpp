#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "kernels/kernels.h"

namespace collapois::nn {

void Layer::zero_grad() {
  auto g = gradients();
  std::fill(g.begin(), g.end(), 0.0f);
}

// ---------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      params_(in_features * out_features + out_features, 0.0f),
      grads_(params_.size(), 0.0f) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

void Dense::init(stats::Rng& rng) {
  // He initialization for the ReLU nets used throughout.
  const double s = std::sqrt(2.0 / static_cast<double>(in_));
  for (std::size_t i = 0; i < in_ * out_; ++i) {
    params_[i] = static_cast<float>(rng.normal(0.0, s));
  }
  for (std::size_t i = in_ * out_; i < params_.size(); ++i) params_[i] = 0.0f;
}

Tensor Dense::forward(Tensor input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [B, in]");
  }
  cached_input_ = std::move(input);
  const std::size_t batch = cached_input_.dim(0);
  Tensor out({batch, out_});
  // y[b, o] = sum_i x[b, i] * W[o, i] + b[o]; bias rides the GEMM's store
  // epilogue (out starts zeroed, so += is =).
  kernels::ops().gemm_a_bt_accum(cached_input_.data().data(), params_.data(),
                                 out.data().data(), batch, in_, out_,
                                 params_.data() + in_ * out_, nullptr);
  return out;
}

Tensor Dense::backward(Tensor grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: expected [B, out]");
  }
  const std::size_t batch = grad_output.dim(0);
  // dW[o, i] += sum_b g[b, o] * x[b, i] (A^T B with A = g, B = x); the
  // bias gradient (column sums of g) is fused into the same pass.
  kernels::ops().gemm_at_b_accum(grad_output.data().data(),
                                 cached_input_.data().data(), grads_.data(),
                                 batch, out_, in_,
                                 grads_.data() + in_ * out_);
  // dX[b, i] = sum_o g[b, o] * W[o, i]
  Tensor grad_in({batch, in_});
  kernels::ops().gemm(grad_output.data().data(), params_.data(),
                      grad_in.data().data(), batch, out_, in_, nullptr);
  return grad_in;
}

Tensor Dense::backward_params_only(Tensor grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: expected [B, out]");
  }
  const std::size_t batch = grad_output.dim(0);
  kernels::ops().gemm_at_b_accum(grad_output.data().data(),
                                 cached_input_.data().data(), grads_.data(),
                                 batch, out_, in_,
                                 grads_.data() + in_ * out_);
  return {};
}

std::unique_ptr<Layer> Dense::clone() const {
  auto c = std::make_unique<Dense>(in_, out_);
  c->params_ = params_;
  return c;
}

// ----------------------------------------------------------------- Relu

Tensor Relu::forward(Tensor input) {
  const std::size_t n = input.size();
  mask_size_ = n;
  active_mask_.resize((n + 63) / 64);
  // Clamp in place and pack the activity bits in one SIMD pass; every
  // mask word is fully written, so no pre-zeroing of the mask either.
  kernels::relu_forward_mask(input.data().data(), n, active_mask_.data());
  return input;
}

Tensor Relu::backward(Tensor grad_output) {
  if (grad_output.size() != mask_size_) {
    throw std::invalid_argument("Relu::backward: size mismatch");
  }
  kernels::relu_backward_mask(grad_output.data().data(), mask_size_,
                              active_mask_.data());
  return grad_output;
}

std::unique_ptr<Layer> Relu::clone() const { return std::make_unique<Relu>(); }

// --------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      pad_(padding),
      params_(out_channels * in_channels * kernel * kernel + out_channels,
              0.0f),
      grads_(params_.size(), 0.0f) {
  if (cin_ == 0 || cout_ == 0 || k_ == 0) {
    throw std::invalid_argument("Conv2d: zero-sized layer");
  }
}

void Conv2d::init(stats::Rng& rng) {
  const double fan_in = static_cast<double>(cin_ * k_ * k_);
  const double s = std::sqrt(2.0 / fan_in);
  const std::size_t nw = cout_ * cin_ * k_ * k_;
  for (std::size_t i = 0; i < nw; ++i) {
    params_[i] = static_cast<float>(rng.normal(0.0, s));
  }
  for (std::size_t i = nw; i < params_.size(); ++i) params_[i] = 0.0f;
}

Tensor Conv2d::forward(Tensor input) {
  const auto& s = input.shape();
  if (s.size() != 4 || s[1] != cin_) {
    throw std::invalid_argument("Conv2d::forward: expected [B, Cin, H, W]");
  }
  const std::size_t h = s[2];
  const std::size_t w = s[3];
  if (h + 2 * pad_ < k_ || w + 2 * pad_ < k_) {
    throw std::invalid_argument("Conv2d::forward: kernel larger than input");
  }
  cached_input_ = std::move(input);
  kernels::Conv2dShape shape{cached_input_.dim(0), cin_, h,
                             w,                    cout_, k_,
                             pad_,                 h + 2 * pad_ - k_ + 1,
                             w + 2 * pad_ - k_ + 1};
  Tensor out({shape.batch, cout_, shape.oh, shape.ow});
  kernels::ops().conv2d_forward(shape, cached_input_.data().data(),
                                params_.data(),
                                params_.data() + cout_ * cin_ * k_ * k_,
                                out.data().data());
  return out;
}

Tensor Conv2d::backward(Tensor grad_output) {
  return backward_impl(std::move(grad_output), /*need_input_grad=*/true);
}

Tensor Conv2d::backward_params_only(Tensor grad_output) {
  return backward_impl(std::move(grad_output), /*need_input_grad=*/false);
}

Tensor Conv2d::backward_impl(Tensor grad_output, bool need_input_grad) {
  const auto& gs = grad_output.shape();
  const auto& is = cached_input_.shape();
  if (gs.size() != 4 || gs[1] != cout_) {
    throw std::invalid_argument("Conv2d::backward: expected [B, Cout, OH, OW]");
  }
  kernels::Conv2dShape shape{is[0], cin_, is[2], is[3], cout_,
                             k_,    pad_, gs[2], gs[3]};
  if (!need_input_grad) {
    kernels::ops().conv2d_backward(shape, cached_input_.data().data(),
                                   params_.data(), grad_output.data().data(),
                                   grads_.data(),
                                   grads_.data() + cout_ * cin_ * k_ * k_,
                                   nullptr);
    return {};
  }
  Tensor grad_in(is);
  kernels::ops().conv2d_backward(
      shape, cached_input_.data().data(), params_.data(),
      grad_output.data().data(), grads_.data(),
      grads_.data() + cout_ * cin_ * k_ * k_, grad_in.data().data());
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto c = std::make_unique<Conv2d>(cin_, cout_, k_, pad_);
  c->params_ = params_;
  return c;
}

// ------------------------------------------------------------ MaxPool2d

Tensor MaxPool2d::forward(Tensor input) {
  const auto& s = input.shape();
  if (s.size() != 4 || s[2] % 2 != 0 || s[3] % 2 != 0) {
    throw std::invalid_argument(
        "MaxPool2d::forward: expected [B, C, H, W] with even H, W");
  }
  in_shape_ = s;
  const std::size_t batch = s[0];
  const std::size_t c = s[1];
  const std::size_t h = s[2];
  const std::size_t w = s[3];
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  Tensor out({batch, c, oh, ow});
  argmax_.resize(out.size());
  const float* in = input.data().data();
  float* o = out.data().data();
  // Per channel plane, walk two input rows at a time; ties keep the
  // first candidate in (0,0) (0,1) (1,0) (1,1) order.
  for (std::size_t plane = 0; plane < batch * c; ++plane) {
    const std::size_t pbase = plane * h * w;
    const float* pin = in + pbase;
    float* pout = o + plane * oh * ow;
    std::size_t* parg = argmax_.data() + plane * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const float* r0 = pin + 2 * oy * w;
      const float* r1 = r0 + w;
      const std::size_t rbase = pbase + 2 * oy * w;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t x = 2 * ox;
        // Branchless tournament; strict > keeps the first candidate on
        // ties, matching the scan order above.
        const float m0 = r0[x + 1] > r0[x] ? r0[x + 1] : r0[x];
        const std::size_t i0 = r0[x + 1] > r0[x] ? x + 1 : x;
        const float m1 = r1[x + 1] > r1[x] ? r1[x + 1] : r1[x];
        const std::size_t i1 = w + (r1[x + 1] > r1[x] ? x + 1 : x);
        pout[ox] = m1 > m0 ? m1 : m0;
        parg[ox] = rbase + (m1 > m0 ? i1 : i0);
      }
      pout += ow;
      parg += ow;
    }
  }
  return out;
}

Tensor MaxPool2d::backward(Tensor grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: size mismatch");
  }
  Tensor grad_in(in_shape_);
  float* gi = grad_in.data().data();
  const float* go = grad_output.data().data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gi[argmax_[i]] += go[i];
  return grad_in;
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>();
}

// -------------------------------------------------------------- Flatten

Tensor Flatten::forward(Tensor input) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank >= 2 required");
  }
  in_shape_ = input.shape();
  const std::size_t batch = in_shape_[0];
  const std::size_t features = input.size() / batch;
  return std::move(input).reshaped({batch, features});
}

Tensor Flatten::backward(Tensor grad_output) {
  return std::move(grad_output).reshaped(in_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>();
}

}  // namespace collapois::nn
