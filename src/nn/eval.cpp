#include "nn/eval.h"

#include <algorithm>

#include "nn/loss.h"

namespace collapois::nn {

double accuracy(Model& model, const data::Dataset& d, std::size_t batch_size) {
  if (d.empty()) return 0.0;
  std::size_t correct = 0;
  std::vector<std::size_t> idx(batch_size);
  for (std::size_t start = 0; start < d.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, d.size() - start);
    idx.resize(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
    const auto batch = data::make_batch(d, idx);
    const Tensor logits = model.forward(batch.x);
    const auto preds = argmax_rows(logits);
    for (std::size_t i = 0; i < count; ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

double mean_loss(Model& model, const data::Dataset& d,
                 std::size_t batch_size) {
  if (d.empty()) return 0.0;
  double total = 0.0;
  std::vector<std::size_t> idx(batch_size);
  for (std::size_t start = 0; start < d.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, d.size() - start);
    idx.resize(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
    const auto batch = data::make_batch(d, idx);
    const Tensor logits = model.forward(batch.x);
    const auto res = softmax_cross_entropy(logits, batch.labels);
    total += res.loss * static_cast<double>(count);
  }
  return total / static_cast<double>(d.size());
}

}  // namespace collapois::nn
