// Model evaluation helpers: plain accuracy (Benign AC's per-client inner
// term) and accuracy on a trigger-transformed dataset (Attack SR's inner
// term, Section V's evaluation approach).
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace collapois::nn {

// Fraction of examples whose argmax prediction equals the label; 0 for an
// empty dataset. Runs in mini-batches of `batch_size`.
double accuracy(Model& model, const data::Dataset& d,
                std::size_t batch_size = 64);

// Mean cross-entropy loss over the dataset.
double mean_loss(Model& model, const data::Dataset& d,
                 std::size_t batch_size = 64);

}  // namespace collapois::nn
