#include "nn/zoo.h"

#include <stdexcept>

namespace collapois::nn {

Model make_lenet_small(const LeNetConfig& config) {
  if (config.height % 4 != 0 || config.width % 4 != 0) {
    throw std::invalid_argument(
        "make_lenet_small: height and width must be divisible by 4");
  }
  Model m;
  m.add(std::make_unique<Conv2d>(1, config.conv1_channels, 3, 1));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Conv2d>(config.conv1_channels, config.conv2_channels,
                                 3, 1));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Flatten>());
  const std::size_t flat =
      config.conv2_channels * (config.height / 4) * (config.width / 4);
  m.add(std::make_unique<Dense>(flat, config.hidden));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(config.hidden, config.num_classes));
  return m;
}

Model make_mlp_head(const MlpConfig& config) {
  if (config.num_hidden_layers == 0) {
    throw std::invalid_argument("make_mlp_head: need >= 1 hidden layer");
  }
  Model m;
  std::size_t in = config.input_dim;
  for (std::size_t i = 0; i < config.num_hidden_layers; ++i) {
    m.add(std::make_unique<Dense>(in, config.hidden));
    m.add(std::make_unique<Relu>());
    in = config.hidden;
  }
  m.add(std::make_unique<Dense>(in, config.num_classes));
  return m;
}

}  // namespace collapois::nn
