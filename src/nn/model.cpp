#include "nn/model.h"

#include <stdexcept>

namespace collapois::nn {

Model::Model(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {}

Model::Model(const Model& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

void Model::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Model::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Model::forward(Tensor input) {
  for (auto& l : layers_) input = l->forward(std::move(input));
  return input;
}

Tensor Model::backward(Tensor grad_output) {
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad_output = (*it)->backward(std::move(grad_output));
  }
  return grad_output;
}

void Model::backward_params_only(Tensor grad_output) {
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if (std::next(it) == layers_.rend()) {
      (*it)->backward_params_only(std::move(grad_output));
      return;
    }
    grad_output = (*it)->backward(std::move(grad_output));
  }
}

void Model::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

void Model::init(stats::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

std::size_t Model::num_parameters() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    n += const_cast<Layer&>(*l).parameters().size();
  }
  return n;
}

tensor::FlatVec Model::get_parameters() const {
  tensor::FlatVec flat;
  flat.reserve(num_parameters());
  for (const auto& l : layers_) {
    auto p = const_cast<Layer&>(*l).parameters();
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return flat;
}

void Model::set_parameters(std::span<const float> flat) {
  if (flat.size() != num_parameters()) {
    throw std::invalid_argument("Model::set_parameters: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& l : layers_) {
    auto p = l->parameters();
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = flat[offset + i];
    offset += p.size();
  }
}

tensor::FlatVec Model::get_gradients() const {
  tensor::FlatVec flat;
  flat.reserve(num_parameters());
  for (const auto& l : layers_) {
    auto g = const_cast<Layer&>(*l).gradients();
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

void Model::sgd_step(double lr, double weight_decay) {
  for (auto& l : layers_) {
    auto p = l->parameters();
    auto g = l->gradients();
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double step = g[i] + weight_decay * p[i];
      p[i] = static_cast<float>(p[i] - lr * step);
    }
  }
}

}  // namespace collapois::nn
