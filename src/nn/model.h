// Sequential model container. The federated layer of the library treats a
// model as a flat parameter vector in R^m (get_parameters /
// set_parameters); the training layer treats it as a differentiable
// function (forward / backward / SGD step).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois::nn {

class Model {
 public:
  Model() = default;

  // Takes ownership of the layers in order.
  explicit Model(std::vector<std::unique_ptr<Layer>> layers);

  Model(const Model& other);
  Model& operator=(const Model& other);
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  void add(std::unique_ptr<Layer> layer);

  // Forward through all layers. Takes the batch by value and moves it
  // through the stack — callers holding an lvalue pay exactly one copy at
  // the call site; rvalue callers pay none.
  Tensor forward(Tensor input);

  // Backward through all layers (after a forward); accumulates parameter
  // gradients and returns dL/d(input) — input gradients drive trigger
  // reverse-engineering (Neural Cleanse) and adversarial probing.
  Tensor backward(Tensor grad_output);

  // Backward that discards dL/d(input): the first layer runs its
  // params-only pass (the input-gradient GEMM / col2im is skipped).
  // Parameter gradients are bit-identical to backward() — this is what
  // the SGD training loops use.
  void backward_params_only(Tensor grad_output);

  void zero_grad();

  // He/Glorot init of every layer from the given stream.
  void init(stats::Rng& rng);

  std::size_t num_parameters() const;

  // Copy all parameters into / out of a single flat vector. This is the
  // representation exchanged between server and clients.
  tensor::FlatVec get_parameters() const;
  void set_parameters(std::span<const float> flat);

  // Flat gradient vector (concatenation in layer order).
  tensor::FlatVec get_gradients() const;

  // p -= lr * g for every parameter, with optional L2 weight decay.
  void sgd_step(double lr, double weight_decay = 0.0);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace collapois::nn
