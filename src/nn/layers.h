// Neural-network layers with explicit forward/backward passes.
//
// Batches are rank-2 tensors [B, features] for dense paths and rank-4
// (stored with an explicit shape vector) [B, C, H, W] for the convolutional
// path of the LeNet-style local model the paper uses for FEMNIST.
//
// Each layer owns its parameters and gradients and caches whatever it needs
// from the forward pass; Model sequences layers and exposes the flat
// parameter vector that federated aggregation operates on.
//
// Activations move: forward/backward take their tensor BY VALUE so a layer
// can steal the buffer instead of copying it (Flatten and Relu are
// zero-copy pass-throughs, Dense/Conv2d adopt the input as their cached
// activation). Model::forward threads one tensor through the stack with
// std::move; callers holding an lvalue pay exactly one copy at the call
// site.
//
// The heavy math (GEMM, convolution) dispatches through the compute-kernel
// registry (src/kernels/): `blocked` im2col + packed GEMM by default,
// `naive` reference loops via --kernels naive.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "stats/rng.h"
#include "tensor/tensor.h"

namespace collapois::nn {

using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  // Forward pass; caches activations needed by backward. Takes the input
  // by value — pass an rvalue to let the layer recycle the buffer.
  virtual Tensor forward(Tensor input) = 0;

  // Backward pass: consumes dL/d(output), accumulates parameter gradients,
  // returns dL/d(input).
  virtual Tensor backward(Tensor grad_output) = 0;

  // Backward for a layer whose input gradient nobody will read (the first
  // layer of a model during plain training). Parameter gradients are
  // accumulated bit-identically to backward(); the returned tensor is
  // unspecified. Layers with an expensive input-gradient computation
  // (Dense, Conv2d) override this to skip it.
  virtual Tensor backward_params_only(Tensor grad_output) {
    return backward(std::move(grad_output));
  }

  // Flat views over parameters and their gradients (empty for stateless
  // layers).
  virtual std::span<float> parameters() { return {}; }
  virtual std::span<float> gradients() { return {}; }

  virtual void zero_grad();

  // Deep copy (used to replicate architecture across simulator roles).
  virtual std::unique_ptr<Layer> clone() const = 0;

  // Initialize parameters (He/Glorot-style); default no-op.
  virtual void init(stats::Rng& /*rng*/) {}

  std::size_t num_parameters() { return parameters().size(); }
};

// Fully connected layer: y = x W^T + b, x: [B, in], y: [B, out].
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(Tensor input) override;
  Tensor backward(Tensor grad_output) override;
  Tensor backward_params_only(Tensor grad_output) override;
  std::span<float> parameters() override { return params_; }
  std::span<float> gradients() override { return grads_; }
  std::unique_ptr<Layer> clone() const override;
  void init(stats::Rng& rng) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  // params_ layout: [W (out*in) | b (out)].
  std::vector<float> params_;
  std::vector<float> grads_;
  Tensor cached_input_;
};

// Element-wise ReLU. The backward mask is a packed bitmask (1 bit per
// activation instead of a full float copy of the input), and the forward
// pass clamps the moved-in tensor in place — one buffer, no copies.
class Relu : public Layer {
 public:
  Tensor forward(Tensor input) override;
  Tensor backward(Tensor grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::vector<std::uint64_t> active_mask_;  // bit i: input[i] > 0
  std::size_t mask_size_ = 0;               // activations covered by the mask
};

// 2-D convolution, stride 1, 'valid' padding by default (pad = 0).
// Input [B, C_in, H, W] -> output [B, C_out, H-k+1+2p, W-k+1+2p].
// Forward/backward lower onto the active compute-kernel set (im2col +
// blocked GEMM with fused bias epilogues, or the naive direct loops).
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding = 0);

  Tensor forward(Tensor input) override;
  Tensor backward(Tensor grad_output) override;
  Tensor backward_params_only(Tensor grad_output) override;
  std::span<float> parameters() override { return params_; }
  std::span<float> gradients() override { return grads_; }
  std::unique_ptr<Layer> clone() const override;
  void init(stats::Rng& rng) override;

 private:
  Tensor backward_impl(Tensor grad_output, bool need_input_grad);

  std::size_t cin_;
  std::size_t cout_;
  std::size_t k_;
  std::size_t pad_;
  // params_ layout: [W (cout*cin*k*k) | b (cout)].
  std::vector<float> params_;
  std::vector<float> grads_;
  Tensor cached_input_;
};

// 2x2 max pooling with stride 2 on [B, C, H, W] (H, W even required).
class MaxPool2d : public Layer {
 public:
  Tensor forward(Tensor input) override;
  Tensor backward(Tensor grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

// Collapses [B, ...] to [B, F]. Pure metadata rewrite on the moved-in
// tensor — no buffer traffic in either direction.
class Flatten : public Layer {
 public:
  Tensor forward(Tensor input) override;
  Tensor backward(Tensor grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace collapois::nn
