#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace collapois::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected [B, C]");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor probs({batch, classes});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data().data() + b * classes;
    float* out = probs.data().data() + b * classes;
    const float mx = *std::max_element(row, row + classes);
    double sum = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      out[c] = std::exp(row[c] - mx);
      sum += out[c];
    }
    for (std::size_t c = 0; c < classes; ++c) {
      out[c] = static_cast<float>(out[c] / sum);
    }
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: shape mismatch");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  LossResult res;
  res.grad_logits = softmax(logits);
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const int y = labels[b];
    if (y < 0 || static_cast<std::size_t>(y) >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    float* row = res.grad_logits.data().data() + b * classes;
    total -= std::log(std::max(row[static_cast<std::size_t>(y)], 1e-12f));
    row[static_cast<std::size_t>(y)] -= 1.0f;
  }
  const double inv_b = 1.0 / static_cast<double>(batch);
  for (auto& g : res.grad_logits.storage()) {
    g = static_cast<float>(g * inv_b);
  }
  res.loss = total * inv_b;
  return res;
}

LossResult soft_cross_entropy(const Tensor& logits, const Tensor& targets) {
  if (!logits.same_shape(targets)) {
    throw std::invalid_argument("soft_cross_entropy: shape mismatch");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  LossResult res;
  res.grad_logits = softmax(logits);
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    float* p = res.grad_logits.data().data() + b * classes;
    const float* t = targets.data().data() + b * classes;
    for (std::size_t c = 0; c < classes; ++c) {
      total -= t[c] * std::log(std::max(p[c], 1e-12f));
      p[c] -= t[c];
    }
  }
  const double inv_b = 1.0 / static_cast<double>(batch);
  for (auto& g : res.grad_logits.storage()) {
    g = static_cast<float>(g * inv_b);
  }
  res.loss = total * inv_b;
  return res;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("argmax_rows: expected [B, C]");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::vector<int> out(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data().data() + b * classes;
    out[b] = static_cast<int>(std::max_element(row, row + classes) - row);
  }
  return out;
}

}  // namespace collapois::nn
