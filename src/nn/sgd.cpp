#include "nn/sgd.h"

#include <algorithm>
#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::nn {

namespace {

std::vector<std::size_t> shuffled_indices(std::size_t n, stats::Rng& rng) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  return idx;
}

void clip_model_gradients(Model& model, double bound) {
  if (bound <= 0.0) return;
  auto g = model.get_gradients();
  const double n = stats::l2_norm(g);
  if (n <= bound) return;
  const double f = bound / n;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    auto grads = model.layer(l).gradients();
    for (auto& v : grads) v = static_cast<float>(v * f);
  }
}

template <typename BatchLoss>
double run_epochs(Model& model, const data::Dataset& d,
                  const SgdConfig& config, stats::Rng& rng,
                  BatchLoss&& batch_loss) {
  if (d.empty()) throw std::invalid_argument("train_sgd: empty dataset");
  if (config.batch_size == 0 || config.epochs == 0) {
    throw std::invalid_argument("train_sgd: zero batch size or epochs");
  }
  double final_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto idx = shuffled_indices(d.size(), rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < idx.size();
         start += config.batch_size) {
      const std::size_t count =
          std::min(config.batch_size, idx.size() - start);
      const auto batch = data::make_batch(
          d, std::span<const std::size_t>(idx.data() + start, count));
      model.zero_grad();
      epoch_loss += batch_loss(batch);
      clip_model_gradients(model, config.grad_clip);
      model.sgd_step(config.learning_rate, config.weight_decay);
      ++batches;
    }
    final_epoch_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(batches, 1));
  }
  return final_epoch_loss;
}

}  // namespace

double train_sgd(Model& model, const data::Dataset& d, const SgdConfig& config,
                 stats::Rng& rng) {
  return run_epochs(model, d, config, rng, [&](const data::Batch& batch) {
    const Tensor logits = model.forward(batch.x);
    auto res = softmax_cross_entropy(logits, batch.labels);
    model.backward_params_only(res.grad_logits);
    return res.loss;
  });
}

double train_sgd_distill(Model& model, Model& teacher, double distill_weight,
                         const data::Dataset& d, const SgdConfig& config,
                         stats::Rng& rng) {
  return run_epochs(model, d, config, rng, [&](const data::Batch& batch) {
    const Tensor logits = model.forward(batch.x);
    auto hard = softmax_cross_entropy(logits, batch.labels);
    const Tensor teacher_probs = softmax(teacher.forward(batch.x));
    auto soft = soft_cross_entropy(logits, teacher_probs);
    // Combine gradients: hard + w * soft.
    Tensor grad = hard.grad_logits;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad[i] = static_cast<float>(grad[i] +
                                   distill_weight * soft.grad_logits[i]);
    }
    model.backward_params_only(grad);
    return hard.loss + distill_weight * soft.loss;
  });
}

double train_sgd_proximal(Model& model, std::span<const float> anchor,
                          double penalty, const data::Dataset& d,
                          const SgdConfig& config, stats::Rng& rng) {
  if (anchor.size() != model.num_parameters()) {
    throw std::invalid_argument("train_sgd_proximal: anchor size mismatch");
  }
  return run_epochs(model, d, config, rng, [&](const data::Batch& batch) {
    const Tensor logits = model.forward(batch.x);
    auto res = softmax_cross_entropy(logits, batch.labels);
    model.backward_params_only(res.grad_logits);
    // Add the proximal term's gradient: penalty * (theta - anchor).
    std::size_t offset = 0;
    double prox_loss = 0.0;
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      auto params = model.layer(l).parameters();
      auto grads = model.layer(l).gradients();
      for (std::size_t i = 0; i < params.size(); ++i) {
        const double diff = params[i] - anchor[offset + i];
        grads[i] = static_cast<float>(grads[i] + penalty * diff);
        prox_loss += 0.5 * penalty * diff * diff;
      }
      offset += params.size();
    }
    return res.loss + prox_loss;
  });
}

}  // namespace collapois::nn
