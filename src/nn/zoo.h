// Model factories matching the paper's configurations (Appendix E):
// a LeNet-based network (two conv + two fully connected layers) for the
// image dataset, and a small fully connected task head for the text
// dataset (which, in the paper, sits on a frozen BERT tokenizer — our
// synthetic-text substrate generates the embeddings directly).
#pragma once

#include <cstddef>

#include "nn/model.h"

namespace collapois::nn {

struct LeNetConfig {
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t num_classes = 10;
  std::size_t conv1_channels = 4;
  std::size_t conv2_channels = 8;
  std::size_t hidden = 32;
};

// LeNet-small: Conv(1->c1, 3x3, pad 1) - ReLU - MaxPool2 -
//              Conv(c1->c2, 3x3, pad 1) - ReLU - MaxPool2 -
//              Flatten - Dense(hidden) - ReLU - Dense(classes).
// Requires height and width divisible by 4.
Model make_lenet_small(const LeNetConfig& config);

struct MlpConfig {
  std::size_t input_dim = 32;
  std::size_t hidden = 32;
  std::size_t num_classes = 2;
  std::size_t num_hidden_layers = 2;
};

// Fully connected head: Dense(hidden) - ReLU, repeated, then
// Dense(classes).
Model make_mlp_head(const MlpConfig& config);

}  // namespace collapois::nn
