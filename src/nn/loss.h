// Classification losses: softmax cross-entropy against hard labels (local
// training, trojan training) and against soft targets (MetaFed's knowledge
// distillation).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace collapois::nn {

using tensor::Tensor;

// Row-wise softmax of logits [B, C].
Tensor softmax(const Tensor& logits);

struct LossResult {
  double loss = 0.0;       // mean over the batch
  Tensor grad_logits;      // dL/dlogits, already divided by batch size
};

// Mean softmax cross-entropy of logits [B, C] against integer labels.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

// Mean cross-entropy against a full soft-target distribution [B, C]
// (teacher probabilities). Gradient is (p_student - p_teacher)/B.
LossResult soft_cross_entropy(const Tensor& logits, const Tensor& targets);

// Argmax prediction per row.
std::vector<int> argmax_rows(const Tensor& logits);

}  // namespace collapois::nn
