#include "defense/median.h"

#include <stdexcept>

#include "defense/defense_kernels.h"

namespace collapois::defense {

tensor::FlatVec CoordMedianAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("CoordMedianAggregator: no updates");
  }
  matrix_.pack(updates);
  tensor::FlatVec out(matrix_.cols());
  defense_ops().coord_median(matrix_, out.data(), pool);
  return out;
}

void CoordMedianAggregator::aggregate_columns(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, std::size_t col_begin,
    std::size_t col_end, float* out, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("CoordMedianAggregator: no updates");
  }
  // Column shards run concurrently, so the slice matrix is per-call
  // rather than the reused member.
  fl::UpdateMatrix slice;
  slice.pack_columns(updates, col_begin, col_end);
  defense_ops().coord_median(slice, out, pool);
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double trim_fraction)
    : trim_fraction_(trim_fraction) {
  if (trim_fraction_ < 0.0 || trim_fraction_ >= 0.5) {
    throw std::invalid_argument(
        "TrimmedMeanAggregator: trim_fraction must be in [0, 0.5)");
  }
}

tensor::FlatVec TrimmedMeanAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("TrimmedMeanAggregator: no updates");
  }
  matrix_.pack(updates);
  const std::size_t trim = static_cast<std::size_t>(
      trim_fraction_ * static_cast<double>(matrix_.rows()));
  tensor::FlatVec out(matrix_.cols());
  defense_ops().trimmed_mean(matrix_, trim, out.data(), pool);
  return out;
}

void TrimmedMeanAggregator::aggregate_columns(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, std::size_t col_begin,
    std::size_t col_end, float* out, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("TrimmedMeanAggregator: no updates");
  }
  fl::UpdateMatrix slice;
  slice.pack_columns(updates, col_begin, col_end);
  // The trim count depends only on the row count, which a column slice
  // preserves — shard results match the flat path exactly.
  const std::size_t trim = static_cast<std::size_t>(
      trim_fraction_ * static_cast<double>(slice.rows()));
  defense_ops().trimmed_mean(slice, trim, out, pool);
}

}  // namespace collapois::defense
