#include "defense/median.h"

#include <stdexcept>

#include "defense/defense_kernels.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

tensor::FlatVec CoordMedianAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("CoordMedianAggregator: no updates");
  }
  fl::UpdateMatrix matrix(updates);
  tensor::FlatVec out(matrix.cols());
  defense_ops().coord_median(matrix, out.data(), pool);
  return out;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double trim_fraction)
    : trim_fraction_(trim_fraction) {
  if (trim_fraction_ < 0.0 || trim_fraction_ >= 0.5) {
    throw std::invalid_argument(
        "TrimmedMeanAggregator: trim_fraction must be in [0, 0.5)");
  }
}

tensor::FlatVec TrimmedMeanAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("TrimmedMeanAggregator: no updates");
  }
  fl::UpdateMatrix matrix(updates);
  const std::size_t trim = static_cast<std::size_t>(
      trim_fraction_ * static_cast<double>(matrix.rows()));
  tensor::FlatVec out(matrix.cols());
  defense_ops().trimmed_mean(matrix, trim, out.data(), pool);
  return out;
}

}  // namespace collapois::defense
