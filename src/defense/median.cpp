#include "defense/median.h"

#include <algorithm>
#include <stdexcept>

namespace collapois::defense {

tensor::FlatVec CoordMedianAggregator::aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("CoordMedianAggregator: no updates");
  }
  const std::size_t m = updates[0].delta.size();
  const std::size_t n = updates.size();
  tensor::FlatVec out(m);
  std::vector<float> column(n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = updates[i].delta[j];
    auto mid = column.begin() + static_cast<std::ptrdiff_t>(n / 2);
    std::nth_element(column.begin(), mid, column.end());
    if (n % 2 == 1) {
      out[j] = *mid;
    } else {
      const float upper = *mid;
      const float lower =
          *std::max_element(column.begin(), mid);
      out[j] = (lower + upper) / 2.0f;
    }
  }
  return out;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double trim_fraction)
    : trim_fraction_(trim_fraction) {
  if (trim_fraction_ < 0.0 || trim_fraction_ >= 0.5) {
    throw std::invalid_argument(
        "TrimmedMeanAggregator: trim_fraction must be in [0, 0.5)");
  }
}

tensor::FlatVec TrimmedMeanAggregator::aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("TrimmedMeanAggregator: no updates");
  }
  const std::size_t m = updates[0].delta.size();
  const std::size_t n = updates.size();
  const std::size_t trim = static_cast<std::size_t>(
      trim_fraction_ * static_cast<double>(n));
  tensor::FlatVec out(m);
  std::vector<float> column(n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = updates[i].delta[j];
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = trim; i + trim < n; ++i) {
      sum += column[i];
      ++count;
    }
    out[j] = (count > 0)
                 ? static_cast<float>(sum / static_cast<double>(count))
                 : column[n / 2];
  }
  return out;
}

}  // namespace collapois::defense
