// Magnitude-based defenses:
//  - NormBound [10]: clip every client update to a fixed L2 bound, then
//    average and optionally add Gaussian noise;
//  - DP-optimizer [33]: the same clip-then-noise pipeline with the noise
//    calibrated as sigma * clip / n (the Gaussian-mechanism scaling used
//    for differentially private FL).
// Both decorate an inner aggregator (FedAvg by default) so they compose
// with the rest of Table I.
#pragma once

#include <memory>

#include "fl/aggregator.h"
#include "stats/rng.h"

namespace collapois::defense {

struct NormBoundConfig {
  // L2 clip applied to every incoming update.
  double clip = 1.0;
  // Std-dev of Gaussian noise added to each coordinate of the aggregate
  // (absolute scale); 0 disables.
  double noise_std = 0.0;
};

class NormBoundAggregator : public fl::Aggregator {
 public:
  NormBoundAggregator(NormBoundConfig config,
                      std::unique_ptr<fl::Aggregator> inner, stats::Rng rng);

  std::string name() const override { return "norm-bound"; }

  // Clip-then-average is a per-update map followed by the inner fold, so
  // it streams whenever the inner rule does (noise is a finish epilogue).
  fl::ShardCapability shard_capability() const override;
  std::unique_ptr<fl::ShardStream> stream_begin(std::size_t dim) override;
  void stream_absorb(fl::ShardStream& stream,
                     const std::vector<fl::ClientUpdate>& updates,
                     std::size_t row_begin, std::size_t row_end,
                     std::span<const float> global,
                     runtime::ThreadPool* pool) override;
  tensor::FlatVec stream_finish(fl::ShardStream& stream,
                                std::span<const float> global) override;

  void save_state(fl::StateWriter& w) const override {
    w.write_rng(rng_);
    inner_->save_state(w);
  }
  void load_state(fl::StateReader& r) override {
    r.read_rng(rng_);
    inner_->load_state(r);
  }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  NormBoundConfig config_;
  std::unique_ptr<fl::Aggregator> inner_;
  stats::Rng rng_;
};

struct DpConfig {
  double clip = 1.0;
  // Noise multiplier z: per-coordinate noise std is z * clip / n_updates.
  double noise_multiplier = 1.0;
  // User-level DP [48]: calibrate the noise to the full per-user
  // sensitivity (sigma = z * clip, not divided by the participant count).
  bool user_level = false;
};

class DpAggregator : public fl::Aggregator {
 public:
  DpAggregator(DpConfig config, std::unique_ptr<fl::Aggregator> inner,
               stats::Rng rng);

  std::string name() const override { return "dp"; }

  // Streams like NormBound; the noise scale needs the total participant
  // count, which the stream accumulates across absorbed row ranges.
  fl::ShardCapability shard_capability() const override;
  std::unique_ptr<fl::ShardStream> stream_begin(std::size_t dim) override;
  void stream_absorb(fl::ShardStream& stream,
                     const std::vector<fl::ClientUpdate>& updates,
                     std::size_t row_begin, std::size_t row_end,
                     std::span<const float> global,
                     runtime::ThreadPool* pool) override;
  tensor::FlatVec stream_finish(fl::ShardStream& stream,
                                std::span<const float> global) override;

  void save_state(fl::StateWriter& w) const override {
    w.write_rng(rng_);
    inner_->save_state(w);
  }
  void load_state(fl::StateReader& r) override {
    r.read_rng(rng_);
    inner_->load_state(r);
  }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  DpConfig config_;
  std::unique_ptr<fl::Aggregator> inner_;
  stats::Rng rng_;
};

}  // namespace collapois::defense
