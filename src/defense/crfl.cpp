#include "defense/crfl.h"

#include <stdexcept>

#include "stats/special.h"

namespace collapois::defense {

CrflAggregator::CrflAggregator(CrflConfig config,
                               std::unique_ptr<fl::Aggregator> inner,
                               stats::Rng rng)
    : config_(config), inner_(std::move(inner)), rng_(std::move(rng)) {
  if (!inner_) throw std::invalid_argument("CrflAggregator: null inner");
  if (config_.param_clip <= 0.0 || config_.noise_std < 0.0) {
    throw std::invalid_argument("CrflAggregator: bad config");
  }
}

tensor::FlatVec CrflAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  return inner_->aggregate(updates, global, pool);
}

void CrflAggregator::post_update(tensor::FlatVec& params) {
  tensor::clip_l2_inplace(params, config_.param_clip);
  if (config_.noise_std > 0.0) {
    for (auto& v : params) {
      v = static_cast<float>(v + rng_.normal(0.0, config_.noise_std));
    }
  }
}

double CrflAggregator::certified_radius(double vote_margin) const {
  if (vote_margin <= 0.5 || vote_margin >= 1.0) {
    throw std::invalid_argument(
        "certified_radius: vote margin must be in (0.5, 1)");
  }
  return config_.noise_std * stats::normal_quantile(vote_margin);
}

}  // namespace collapois::defense
