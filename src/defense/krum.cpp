#include "defense/krum.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::defense {

KrumAggregator::KrumAggregator(KrumConfig config) : config_(config) {
  if (config_.multi_k == 0) {
    throw std::invalid_argument("KrumAggregator: multi_k must be >= 1");
  }
}

tensor::FlatVec KrumAggregator::aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("KrumAggregator: no updates");
  }
  const std::size_t n = updates.size();
  if (n == 1) {
    selected_ = {0};
    return updates[0].delta;
  }

  // Pairwise squared distances.
  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = stats::l2_distance(updates[i].delta, updates[j].delta);
      d2[i][j] = d2[j][i] = d * d;
    }
  }

  // Krum score: sum over the closest n - f - 2 neighbours.
  const std::size_t f = config_.assumed_byzantine;
  const std::size_t neighbours =
      (n > f + 2) ? (n - f - 2) : 1;
  std::vector<double> score(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(d2[i][j]);
    }
    std::sort(row.begin(), row.end());
    const std::size_t take = std::min(neighbours, row.size());
    score[i] = std::accumulate(row.begin(),
                               row.begin() + static_cast<std::ptrdiff_t>(take),
                               0.0);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return score[i] < score[j]; });

  const std::size_t take = std::min(config_.multi_k, n);
  selected_.assign(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(take));

  std::vector<tensor::FlatVec> chosen;
  chosen.reserve(take);
  for (std::size_t idx : selected_) chosen.push_back(updates[idx].delta);
  return tensor::mean_of(chosen);
}

std::string KrumAggregator::name() const {
  return config_.multi_k == 1 ? "krum" : "multi-krum";
}

}  // namespace collapois::defense
