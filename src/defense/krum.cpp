#include "defense/krum.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "defense/defense_kernels.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

KrumAggregator::KrumAggregator(KrumConfig config) : config_(config) {
  if (config_.multi_k == 0) {
    throw std::invalid_argument("KrumAggregator: multi_k must be >= 1");
  }
}

tensor::FlatVec KrumAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("KrumAggregator: no updates");
  }
  const std::size_t n = updates.size();
  if (n == 1) {
    selected_ = {0};
    return updates[0].delta;
  }

  // Pairwise squared distances via the active defense-kernel set (the
  // O(n^2 d) hot loop; everything below is O(n^2 log n) on scalars).
  matrix_.pack(updates);
  std::vector<double> d2(n * n);
  defense_ops().pairwise_sq_dists(matrix_, d2.data(), pool);

  // Krum score: sum over the closest n - f - 2 neighbours.
  const std::size_t f = config_.assumed_byzantine;
  const std::size_t neighbours =
      (n > f + 2) ? (n - f - 2) : 1;
  std::vector<double> score(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(d2[i * n + j]);
    }
    std::sort(row.begin(), row.end());
    const std::size_t take = std::min(neighbours, row.size());
    score[i] = std::accumulate(row.begin(),
                               row.begin() + static_cast<std::ptrdiff_t>(take),
                               0.0);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return score[i] < score[j]; });

  const std::size_t take = std::min(config_.multi_k, n);
  selected_.assign(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(take));

  std::vector<std::span<const float>> chosen;
  chosen.reserve(take);
  for (std::size_t idx : selected_) chosen.emplace_back(updates[idx].delta);
  return tensor::mean_of(
      std::span<const std::span<const float>>(chosen));
}

std::string KrumAggregator::name() const {
  return config_.multi_k == 1 ? "krum" : "multi-krum";
}

}  // namespace collapois::defense
