// Ditto (Li et al., ICML'21): fair and robust FL through personalization
// — each client serves a personal model v_i trained on its private data
// with a proximal pull toward the (potentially corrupt) global model:
//
//   min_v L_i(v) + (lambda/2) ||v - theta_g||^2
//
// As a backdoor defense, the hope is that local fine-tuning walks the
// served model away from the trojaned region. DittoClient is a benign
// participant whose eval_params() solves the objective above from the
// current global model (Table I, "fine-tune the potentially corrupt
// global model on each client's private data").
#pragma once

#include "fl/client.h"

namespace collapois::defense {

struct DittoConfig {
  // Proximal coefficient lambda; smaller = more aggressive fine-tuning
  // away from the global model.
  double lambda = 0.1;
  // Local passes used for the personal solve at evaluation time.
  std::size_t personal_epochs = 1;
};

class DittoClient : public fl::BenignClient {
 public:
  DittoClient(std::size_t id, const data::Dataset* train, nn::Model model,
              nn::SgdConfig sgd, DittoConfig ditto, double distill_weight,
              stats::Rng rng);

  tensor::FlatVec eval_params(std::span<const float> global) override;

 private:
  DittoConfig ditto_;
};

}  // namespace collapois::defense
