#include "defense/defense_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.h"
#include "stats/geometry.h"

namespace collapois::defense {

namespace {

// ---------------------------------------------------------------------------
// Shared per-column rules. Both sets funnel through these so the
// coordinate-wise results are exactly equal across impls: a column's
// values determine the output regardless of gather order (median /
// trimmed mean select by value; RLR / sign votes are accumulated in
// i-ascending order by both layouts).

float median_of_column(float* column, std::size_t n) {
  float* mid = column + n / 2;
  std::nth_element(column, mid, column + n);
  if (n % 2 == 1) return *mid;
  const float upper = *mid;
  const float lower = *std::max_element(column, mid);
  return (lower + upper) / 2.0f;
}

float trimmed_mean_of_column(float* column, std::size_t n, std::size_t trim) {
  std::sort(column, column + n);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = trim; i + trim < n; ++i) {
    sum += column[i];
    ++count;
  }
  return (count > 0) ? static_cast<float>(sum / static_cast<double>(count))
                     : column[n / 2];
}

// sum and signed vote over a column, i-ascending. The stride lets the
// fast set walk a row-major column in place; the accumulation order is
// the same either way, so gathered and strided walks are bit-identical.
struct ColumnVote {
  double sum = 0.0;
  double sign_sum = 0.0;
};

ColumnVote vote_of_column(const float* column, std::size_t n,
                          std::size_t stride = 1) {
  ColumnVote v;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = column[i * stride];
    v.sum += x;
    if (x > 0.0f) {
      v.sign_sum += 1.0;
    } else if (x < 0.0f) {
      v.sign_sum -= 1.0;
    }
  }
  return v;
}

float rlr_coordinate(const ColumnVote& v, std::size_t n, double threshold) {
  const double mean = v.sum / static_cast<double>(n);
  // Flip the coordinate's learning rate when sign agreement is weak.
  return static_cast<float>(std::fabs(v.sign_sum) >= threshold ? mean : -mean);
}

float sign_coordinate(const ColumnVote& v, double step) {
  return static_cast<float>(
      step * (v.sign_sum > 0.0 ? 1.0 : (v.sign_sum < 0.0 ? -1.0 : 0.0)));
}

// ---------------------------------------------------------------------------
// Naive set: sequential strided gathers, one column at a time — the
// original aggregator loops lifted verbatim. Reference for the property
// suite; the pool is ignored.

void naive_pairwise(const fl::UpdateMatrix& m, double* out,
                    runtime::ThreadPool* /*pool*/) {
  stats::pairwise_sq_distances_naive(m.data(), m.rows(), m.cols(), out);
}

void naive_median(const fl::UpdateMatrix& m, float* out,
                  runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = median_of_column(column.data(), n);
  }
}

void naive_trimmed_mean(const fl::UpdateMatrix& m, std::size_t trim,
                        float* out, runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = trimmed_mean_of_column(column.data(), n, trim);
  }
}

void naive_rlr(const fl::UpdateMatrix& m, double threshold, float* out,
               runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = rlr_coordinate(vote_of_column(column.data(), n), n, threshold);
  }
}

void naive_sign(const fl::UpdateMatrix& m, double step, float* out,
                runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = sign_coordinate(vote_of_column(column.data(), n), step);
  }
}

// ---------------------------------------------------------------------------
// Fast set: coordinate tiles. The d coordinates are split into
// fixed-width column blocks dispatched over the pool. Within a tile,
// each column is gathered into a per-task scratch buffer — one column
// at a time, since consecutive columns of a tile share row cache lines
// the strided gather stays L1-resident and a full-tile transpose would
// only add a second memory pass — and the per-column rule then runs on
// unit-stride L1 data. (Skipping the gather and walking the column
// strided measured SLOWER for the vote rules at n=256: their sign
// branches mispredict on random update data and every flush restalls
// the strided loads, whereas the branch-free gather loop keeps them
// pipelined; the selection rules need the mutable copy regardless.)
// The tile width is a compile-time constant — never the pool size —
// and each tile writes a disjoint out[j0, j1) range, so results are
// identical for any thread count. Per-column rules are shared with the
// naive set above, hence bit-identical outputs.

constexpr std::size_t kCoordTile = 128;
// Cohorts this small sort in a stack buffer instead of a heap scratch.
constexpr std::size_t kStackRows = 256;

template <typename PerColumn>
void for_each_column_tiled(const fl::UpdateMatrix& m,
                           runtime::ThreadPool* pool, PerColumn per_column) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  const std::size_t tiles = (d + kCoordTile - 1) / kCoordTile;
  runtime::parallel_for(pool, tiles, [&](std::size_t t) {
    const std::size_t j0 = t * kCoordTile;
    const std::size_t j1 = std::min(j0 + kCoordTile, d);
    const float* data = m.data();
    float stack_buf[kStackRows];
    std::vector<float> heap_buf;
    float* column = stack_buf;
    if (n > kStackRows) {
      heap_buf.resize(n);
      column = heap_buf.data();
    }
    for (std::size_t j = j0; j < j1; ++j) {
      for (std::size_t i = 0; i < n; ++i) column[i] = data[i * d + j];
      per_column(j, column);
    }
  });
}

void fast_pairwise(const fl::UpdateMatrix& m, double* out,
                   runtime::ThreadPool* pool) {
  stats::pairwise_sq_distances_gram(m.data(), m.rows(), m.cols(),
                                    m.row_sqnorms().data(), out, pool);
}

void fast_median(const fl::UpdateMatrix& m, float* out,
                 runtime::ThreadPool* pool) {
  const std::size_t n = m.rows();
  for_each_column_tiled(m, pool, [&](std::size_t j, float* col) {
    out[j] = median_of_column(col, n);
  });
}

void fast_trimmed_mean(const fl::UpdateMatrix& m, std::size_t trim, float* out,
                       runtime::ThreadPool* pool) {
  const std::size_t n = m.rows();
  for_each_column_tiled(m, pool, [&](std::size_t j, float* col) {
    out[j] = trimmed_mean_of_column(col, n, trim);
  });
}

void fast_rlr(const fl::UpdateMatrix& m, double threshold, float* out,
              runtime::ThreadPool* pool) {
  const std::size_t n = m.rows();
  for_each_column_tiled(m, pool, [&](std::size_t j, float* col) {
    out[j] = rlr_coordinate(vote_of_column(col, n), n, threshold);
  });
}

void fast_sign(const fl::UpdateMatrix& m, double step, float* out,
               runtime::ThreadPool* pool) {
  const std::size_t n = m.rows();
  for_each_column_tiled(m, pool, [&](std::size_t j, float* col) {
    out[j] = sign_coordinate(vote_of_column(col, n), step);
  });
}

constexpr DefenseKernelOps kNaiveOps = {
    "naive",          naive_pairwise, naive_median,
    naive_trimmed_mean, naive_rlr,    naive_sign,
};

constexpr DefenseKernelOps kFastOps = {
    "fast",           fast_pairwise, fast_median,
    fast_trimmed_mean, fast_rlr,     fast_sign,
};

std::atomic<DefenseImpl> g_active{DefenseImpl::fast};

}  // namespace

const char* defense_impl_name(DefenseImpl impl) {
  switch (impl) {
    case DefenseImpl::naive:
      return "naive";
    case DefenseImpl::fast:
      return "fast";
  }
  return "unknown";
}

DefenseImpl parse_defense_impl(const std::string& name) {
  if (name == "naive") return DefenseImpl::naive;
  if (name == "fast") return DefenseImpl::fast;
  throw std::invalid_argument("unknown defense impl: " + name);
}

void set_active_defense_impl(DefenseImpl impl) {
  g_active.store(impl, std::memory_order_relaxed);
}

DefenseImpl active_defense_impl() {
  return g_active.load(std::memory_order_relaxed);
}

const DefenseKernelOps& defense_ops_for(DefenseImpl impl) {
  return impl == DefenseImpl::naive ? kNaiveOps : kFastOps;
}

const DefenseKernelOps& defense_ops() {
  return defense_ops_for(active_defense_impl());
}

}  // namespace collapois::defense
