#include "defense/defense_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "defense/defense_tiles.h"
#include "runtime/parallel.h"
#include "stats/geometry.h"

namespace collapois::defense {

namespace {

// ---------------------------------------------------------------------------
// Shared per-column rules. Both sets funnel through these so the
// coordinate-wise results are exactly equal across impls: a column's
// values determine the output regardless of gather order (median /
// trimmed mean select by value; RLR / sign votes are accumulated in
// i-ascending order by both layouts).

float median_of_column(float* column, std::size_t n) {
  float* mid = column + n / 2;
  std::nth_element(column, mid, column + n);
  if (n % 2 == 1) return *mid;
  const float upper = *mid;
  const float lower = *std::max_element(column, mid);
  return (lower + upper) / 2.0f;
}

float trimmed_mean_of_column(float* column, std::size_t n, std::size_t trim) {
  std::sort(column, column + n);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = trim; i + trim < n; ++i) {
    sum += column[i];
    ++count;
  }
  return (count > 0) ? static_cast<float>(sum / static_cast<double>(count))
                     : column[n / 2];
}

// sum and signed vote over a column, i-ascending. The stride lets the
// fast set walk a row-major column in place; the accumulation order is
// the same either way, so gathered and strided walks are bit-identical.
struct ColumnVote {
  double sum = 0.0;
  double sign_sum = 0.0;
};

ColumnVote vote_of_column(const float* column, std::size_t n,
                          std::size_t stride = 1) {
  ColumnVote v;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = column[i * stride];
    v.sum += x;
    if (x > 0.0f) {
      v.sign_sum += 1.0;
    } else if (x < 0.0f) {
      v.sign_sum -= 1.0;
    }
  }
  return v;
}

float rlr_coordinate(const ColumnVote& v, std::size_t n, double threshold) {
  const double mean = v.sum / static_cast<double>(n);
  // Flip the coordinate's learning rate when sign agreement is weak.
  return static_cast<float>(std::fabs(v.sign_sum) >= threshold ? mean : -mean);
}

float sign_coordinate(const ColumnVote& v, double step) {
  return static_cast<float>(
      step * (v.sign_sum > 0.0 ? 1.0 : (v.sign_sum < 0.0 ? -1.0 : 0.0)));
}

// ---------------------------------------------------------------------------
// Naive set: sequential strided gathers, one column at a time — the
// original aggregator loops lifted verbatim. Reference for the property
// suite; the pool is ignored.

void naive_pairwise(const fl::UpdateMatrix& m, double* out,
                    runtime::ThreadPool* /*pool*/) {
  stats::pairwise_sq_distances_naive(m.data(), m.rows(), m.cols(), out);
}

void naive_median(const fl::UpdateMatrix& m, float* out,
                  runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = median_of_column(column.data(), n);
  }
}

void naive_trimmed_mean(const fl::UpdateMatrix& m, std::size_t trim,
                        float* out, runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = trimmed_mean_of_column(column.data(), n, trim);
  }
}

void naive_rlr(const fl::UpdateMatrix& m, double threshold, float* out,
               runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = rlr_coordinate(vote_of_column(column.data(), n), n, threshold);
  }
}

void naive_sign(const fl::UpdateMatrix& m, double step, float* out,
                runtime::ThreadPool* /*pool*/) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = m.data()[i * d + j];
    out[j] = sign_coordinate(vote_of_column(column.data(), n), step);
  }
}

// ---------------------------------------------------------------------------
// Fast set: SIMD column tiles (defense_tiles.h), dispatched on the same
// runtime ISA tier as the GEMM microkernels. The d coordinates are split
// into kCoordTile blocks dispatched over the pool; within a block,
// kTileLanes = 8 ADJACENT columns are processed per step, lanes being
// columns of the row-major update matrix:
//
//   - vote rules (RLR, sign) read the 8-column group strided straight
//     out of the matrix — row-major rows make the walk sequential in
//     memory — accumulating each lane's double sum in i-ascending order
//     and its sign count via branch-free compare masks. Bit-identical
//     to vote_of_column: same per-lane op sequence, and the integer
//     sign count converts to double exactly.
//   - selection rules (median, trimmed mean) gather the group into an
//     [n x 8] scratch (a 32-byte memcpy per row), sort all 8 lanes at
//     once with a Batcher compare-exchange network, and finish each
//     lane with the same arithmetic as the naive per-column rule on the
//     sorted values. The sorted multiset per lane is value-identical to
//     std::sort; min/max on numerically-equal values can swap or
//     duplicate ±0.0, which no finisher can observe (zeros contribute
//     nothing to a trimmed sum that starts at +0.0, and -0.0 == +0.0).
//
// The lane-group geometry is a compile-time constant — never the pool
// size or the dispatch tier — and each tile writes a disjoint
// out[j0, j1) range, so results are identical for any thread count and
// (property-tested) any ISA tier. A ragged tail group (d % 8 != 0) is
// gathered into the zero-padded scratch instead of read strided, so no
// lane ever loads past the end of the matrix.

constexpr std::size_t kCoordTile = 128;
static_assert(kCoordTile % detail::kTileLanes == 0,
              "lane groups must not straddle parallel tiles");
// Cohorts this small sort in a stack buffer instead of a heap scratch.
constexpr std::size_t kStackRows = 256;
// fast_median uses the lane sorting network only up to this row count.
// The network fully sorts (n log^2 n compare-exchanges per lane group)
// but a median needs only a selection, and std::nth_element's O(n) per
// column overtakes the vectorized sort between 128 and 256 rows on the
// bench cohorts — past the cutoff the fast set gathers each column and
// runs the same median_of_column as the naive set.
constexpr std::size_t kMedianNetworkMaxRows = 128;

// Gather columns [j0, j0 + w) into the [n x kTileLanes] lane buffer,
// zero-padding lanes [w, kTileLanes).
void gather_lane_group(const float* data, std::size_t n, std::size_t d,
                       std::size_t j0, std::size_t w, float* buf) {
  constexpr std::size_t W = detail::kTileLanes;
  if (w == W) {
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(buf + i * W, data + i * d + j0, W * sizeof(float));
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = data + i * d + j0;
    float* dst = buf + i * W;
    for (std::size_t l = 0; l < w; ++l) dst[l] = row[l];
    for (std::size_t l = w; l < W; ++l) dst[l] = 0.0f;
  }
}

// Sorts every column and calls finish(j, lane) with the column's values
// ascending at lane[0], lane[W], lane[2W], ...
template <typename Finish>
void sorted_columns_tiled(const fl::UpdateMatrix& m, runtime::ThreadPool* pool,
                          Finish finish) {
  constexpr std::size_t W = detail::kTileLanes;
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  const detail::DefenseTileOps& tops = detail::defense_tile_ops();
  const std::size_t tiles = (d + kCoordTile - 1) / kCoordTile;
  runtime::parallel_for(pool, tiles, [&](std::size_t t) {
    const float* data = m.data();
    float stack_buf[kStackRows * W];
    std::vector<float> heap_buf;
    float* buf = stack_buf;
    if (n > kStackRows) {
      heap_buf.resize(n * W);
      buf = heap_buf.data();
    }
    const std::size_t j0t = t * kCoordTile;
    const std::size_t j1 = std::min(j0t + kCoordTile, d);
    for (std::size_t j0 = j0t; j0 < j1; j0 += W) {
      const std::size_t w = std::min(W, j1 - j0);
      gather_lane_group(data, n, d, j0, w, buf);
      tops.sort_lanes(buf, n);
      for (std::size_t l = 0; l < w; ++l) finish(j0 + l, buf + l);
    }
  });
}

// Computes every column's vote (i-ascending double sum + integer sign
// count) and calls finish(j, vote).
template <typename Finish>
void voted_columns_tiled(const fl::UpdateMatrix& m, runtime::ThreadPool* pool,
                         Finish finish) {
  constexpr std::size_t W = detail::kTileLanes;
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  const detail::DefenseTileOps& tops = detail::defense_tile_ops();
  const std::size_t tiles = (d + kCoordTile - 1) / kCoordTile;
  runtime::parallel_for(pool, tiles, [&](std::size_t t) {
    const float* data = m.data();
    float stack_buf[kStackRows * W];
    std::vector<float> heap_buf;
    double sums[W];
    std::int32_t counts[W];
    const std::size_t j0t = t * kCoordTile;
    const std::size_t j1 = std::min(j0t + kCoordTile, d);
    for (std::size_t j0 = j0t; j0 < j1; j0 += W) {
      const std::size_t w = std::min(W, j1 - j0);
      if (w == W) {
        tops.vote_lanes(data + j0, n, d, sums, counts);
      } else {
        // Ragged tail: route through the zero-padded gather (padding
        // contributes +0.0 sums and zero counts) so the strided walk
        // never reads past the last row.
        float* buf = stack_buf;
        if (n > kStackRows) {
          heap_buf.resize(n * W);
          buf = heap_buf.data();
        }
        gather_lane_group(data, n, d, j0, w, buf);
        tops.vote_lanes(buf, n, W, sums, counts);
      }
      for (std::size_t l = 0; l < w; ++l) {
        finish(j0 + l,
               ColumnVote{sums[l], static_cast<double>(counts[l])});
      }
    }
  });
}

void fast_pairwise(const fl::UpdateMatrix& m, double* out,
                   runtime::ThreadPool* pool) {
  stats::pairwise_sq_distances_gram(m.data(), m.rows(), m.cols(),
                                    m.row_sqnorms().data(), out, pool);
}

void fast_median(const fl::UpdateMatrix& m, float* out,
                 runtime::ThreadPool* pool) {
  constexpr std::size_t W = detail::kTileLanes;
  const std::size_t n = m.rows();
  if (n > kMedianNetworkMaxRows) {
    // Selection beats the full sort at this size (see the constant's
    // comment); values are identical either way — both reduce to the
    // naive rule's arithmetic on the same column multiset.
    const std::size_t d = m.cols();
    const std::size_t tiles = (d + kCoordTile - 1) / kCoordTile;
    runtime::parallel_for(pool, tiles, [&](std::size_t t) {
      const float* data = m.data();
      std::vector<float> column(n);
      const std::size_t j0 = t * kCoordTile;
      const std::size_t j1 = std::min(j0 + kCoordTile, d);
      for (std::size_t j = j0; j < j1; ++j) {
        for (std::size_t i = 0; i < n; ++i) column[i] = data[i * d + j];
        out[j] = median_of_column(column.data(), n);
      }
    });
    return;
  }
  sorted_columns_tiled(m, pool, [&](std::size_t j, const float* lane) {
    // Same arithmetic as median_of_column on the sorted lane: the upper
    // middle, or the float mean of the two middles for even n.
    if (n % 2 == 1) {
      out[j] = lane[(n / 2) * W];
    } else {
      out[j] = (lane[(n / 2 - 1) * W] + lane[(n / 2) * W]) / 2.0f;
    }
  });
}

void fast_trimmed_mean(const fl::UpdateMatrix& m, std::size_t trim, float* out,
                       runtime::ThreadPool* pool) {
  constexpr std::size_t W = detail::kTileLanes;
  const std::size_t n = m.rows();
  sorted_columns_tiled(m, pool, [&](std::size_t j, const float* lane) {
    // Same arithmetic as trimmed_mean_of_column on the sorted lane.
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = trim; i + trim < n; ++i) {
      sum += lane[i * W];
      ++count;
    }
    out[j] = (count > 0) ? static_cast<float>(sum / static_cast<double>(count))
                         : lane[(n / 2) * W];
  });
}

void fast_rlr(const fl::UpdateMatrix& m, double threshold, float* out,
              runtime::ThreadPool* pool) {
  const std::size_t n = m.rows();
  voted_columns_tiled(m, pool, [&](std::size_t j, const ColumnVote& v) {
    out[j] = rlr_coordinate(v, n, threshold);
  });
}

void fast_sign(const fl::UpdateMatrix& m, double step, float* out,
               runtime::ThreadPool* pool) {
  voted_columns_tiled(m, pool, [&](std::size_t j, const ColumnVote& v) {
    out[j] = sign_coordinate(v, step);
  });
}

constexpr DefenseKernelOps kNaiveOps = {
    "naive",          naive_pairwise, naive_median,
    naive_trimmed_mean, naive_rlr,    naive_sign,
};

constexpr DefenseKernelOps kFastOps = {
    "fast",           fast_pairwise, fast_median,
    fast_trimmed_mean, fast_rlr,     fast_sign,
};

std::atomic<DefenseImpl> g_active{DefenseImpl::fast};

}  // namespace

const char* defense_impl_name(DefenseImpl impl) {
  switch (impl) {
    case DefenseImpl::naive:
      return "naive";
    case DefenseImpl::fast:
      return "fast";
  }
  return "unknown";
}

DefenseImpl parse_defense_impl(const std::string& name) {
  if (name == "naive") return DefenseImpl::naive;
  if (name == "fast") return DefenseImpl::fast;
  throw std::invalid_argument("unknown defense impl: " + name);
}

void set_active_defense_impl(DefenseImpl impl) {
  g_active.store(impl, std::memory_order_relaxed);
}

DefenseImpl active_defense_impl() {
  return g_active.load(std::memory_order_relaxed);
}

const DefenseKernelOps& defense_ops_for(DefenseImpl impl) {
  return impl == DefenseImpl::naive ? kNaiveOps : kFastOps;
}

const DefenseKernelOps& defense_ops() {
  return defense_ops_for(active_defense_impl());
}

}  // namespace collapois::defense
