// Krum and Multi-Krum (Blanchard et al., NeurIPS'17): score each update by
// the sum of squared distances to its n - f - 2 nearest neighbours and
// keep the best-scoring one (Krum) or average the best m (Multi-Krum).
#pragma once

#include "fl/aggregator.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

struct KrumConfig {
  // Assumed number of Byzantine clients f. The neighbour count per score
  // is max(1, n - f - 2).
  std::size_t assumed_byzantine = 1;
  // Number of top-scoring updates averaged; 1 = classic Krum.
  std::size_t multi_k = 1;
};

class KrumAggregator : public fl::Aggregator {
 public:
  explicit KrumAggregator(KrumConfig config);

  std::string name() const override;

  // Indices (into the last round's update list) Krum selected, for
  // detection-precision analyses.
  const std::vector<std::size_t>& last_selected() const { return selected_; }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  KrumConfig config_;
  std::vector<std::size_t> selected_;
  fl::UpdateMatrix matrix_;  // pack buffer, reused across rounds
};
// Krum keeps the default cohort_only shard capability: its score needs
// every pairwise distance in the cohort, so sharding it would change the
// rule. The shard tree refuses S > 1 loudly (DESIGN.md §12).

}  // namespace collapois::defense
