#include "defense/normbound.h"

#include <stdexcept>

namespace collapois::defense {

namespace {

std::vector<fl::ClientUpdate> clip_updates(
    const std::vector<fl::ClientUpdate>& updates, double clip) {
  std::vector<fl::ClientUpdate> out = updates;
  for (auto& u : out) tensor::clip_l2_inplace(u.delta, clip);
  return out;
}

// Stream state shared by the clip-then-noise decorators: the inner
// rule's stream plus the running participant count (DP's noise scale
// divides by it).
struct ClipStream final : fl::ShardStream {
  explicit ClipStream(std::unique_ptr<fl::ShardStream> inner)
      : inner_stream(std::move(inner)) {}
  std::unique_ptr<fl::ShardStream> inner_stream;
  std::size_t n_updates = 0;
};

// Clips a copy of rows [row_begin, row_end) and absorbs them into the
// inner stream as rows [0, count) of the clipped slice — per-update
// clipping is independent, so the values the inner fold sees match the
// flat clip-everything-first path exactly.
void clip_and_absorb(fl::Aggregator& inner, ClipStream& s, double clip,
                     const std::vector<fl::ClientUpdate>& updates,
                     std::size_t row_begin, std::size_t row_end,
                     std::span<const float> global, runtime::ThreadPool* pool) {
  std::vector<fl::ClientUpdate> clipped(updates.begin() + row_begin,
                                        updates.begin() + row_end);
  for (auto& u : clipped) tensor::clip_l2_inplace(u.delta, clip);
  inner.stream_absorb(*s.inner_stream, clipped, 0, clipped.size(), global,
                      pool);
  s.n_updates += clipped.size();
}

}  // namespace

NormBoundAggregator::NormBoundAggregator(NormBoundConfig config,
                                         std::unique_ptr<fl::Aggregator> inner,
                                         stats::Rng rng)
    : config_(config), inner_(std::move(inner)), rng_(std::move(rng)) {
  if (!inner_) throw std::invalid_argument("NormBoundAggregator: null inner");
  if (config_.clip <= 0.0) {
    throw std::invalid_argument("NormBoundAggregator: clip must be > 0");
  }
}

fl::ShardCapability NormBoundAggregator::shard_capability() const {
  return inner_->shard_capability() == fl::ShardCapability::streaming
             ? fl::ShardCapability::streaming
             : fl::ShardCapability::cohort_only;
}

std::unique_ptr<fl::ShardStream> NormBoundAggregator::stream_begin(
    std::size_t dim) {
  return std::make_unique<ClipStream>(inner_->stream_begin(dim));
}

void NormBoundAggregator::stream_absorb(
    fl::ShardStream& stream, const std::vector<fl::ClientUpdate>& updates,
    std::size_t row_begin, std::size_t row_end, std::span<const float> global,
    runtime::ThreadPool* pool) {
  clip_and_absorb(*inner_, static_cast<ClipStream&>(stream), config_.clip,
                  updates, row_begin, row_end, global, pool);
}

tensor::FlatVec NormBoundAggregator::stream_finish(
    fl::ShardStream& stream, std::span<const float> global) {
  auto& s = static_cast<ClipStream&>(stream);
  tensor::FlatVec agg = inner_->stream_finish(*s.inner_stream, global);
  if (config_.noise_std > 0.0) {
    for (auto& v : agg) {
      v = static_cast<float>(v + rng_.normal(0.0, config_.noise_std));
    }
  }
  return agg;
}

tensor::FlatVec NormBoundAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  const auto clipped = clip_updates(updates, config_.clip);
  tensor::FlatVec agg = inner_->aggregate(clipped, global, pool);
  if (config_.noise_std > 0.0) {
    for (auto& v : agg) {
      v = static_cast<float>(v + rng_.normal(0.0, config_.noise_std));
    }
  }
  return agg;
}

DpAggregator::DpAggregator(DpConfig config,
                           std::unique_ptr<fl::Aggregator> inner,
                           stats::Rng rng)
    : config_(config), inner_(std::move(inner)), rng_(std::move(rng)) {
  if (!inner_) throw std::invalid_argument("DpAggregator: null inner");
  if (config_.clip <= 0.0 || config_.noise_multiplier < 0.0) {
    throw std::invalid_argument("DpAggregator: bad config");
  }
}

fl::ShardCapability DpAggregator::shard_capability() const {
  return inner_->shard_capability() == fl::ShardCapability::streaming
             ? fl::ShardCapability::streaming
             : fl::ShardCapability::cohort_only;
}

std::unique_ptr<fl::ShardStream> DpAggregator::stream_begin(std::size_t dim) {
  return std::make_unique<ClipStream>(inner_->stream_begin(dim));
}

void DpAggregator::stream_absorb(fl::ShardStream& stream,
                                 const std::vector<fl::ClientUpdate>& updates,
                                 std::size_t row_begin, std::size_t row_end,
                                 std::span<const float> global,
                                 runtime::ThreadPool* pool) {
  clip_and_absorb(*inner_, static_cast<ClipStream&>(stream), config_.clip,
                  updates, row_begin, row_end, global, pool);
}

tensor::FlatVec DpAggregator::stream_finish(fl::ShardStream& stream,
                                            std::span<const float> global) {
  auto& s = static_cast<ClipStream&>(stream);
  tensor::FlatVec agg = inner_->stream_finish(*s.inner_stream, global);
  const double sigma = config_.user_level
                           ? config_.noise_multiplier * config_.clip
                           : config_.noise_multiplier * config_.clip /
                                 static_cast<double>(s.n_updates);
  if (sigma > 0.0) {
    for (auto& v : agg) {
      v = static_cast<float>(v + rng_.normal(0.0, sigma));
    }
  }
  return agg;
}

tensor::FlatVec DpAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  const auto clipped = clip_updates(updates, config_.clip);
  tensor::FlatVec agg = inner_->aggregate(clipped, global, pool);
  const double sigma =
      config_.user_level
          ? config_.noise_multiplier * config_.clip
          : config_.noise_multiplier * config_.clip /
                static_cast<double>(updates.size());
  if (sigma > 0.0) {
    for (auto& v : agg) {
      v = static_cast<float>(v + rng_.normal(0.0, sigma));
    }
  }
  return agg;
}

}  // namespace collapois::defense
