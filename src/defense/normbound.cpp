#include "defense/normbound.h"

#include <stdexcept>

namespace collapois::defense {

namespace {

std::vector<fl::ClientUpdate> clip_updates(
    const std::vector<fl::ClientUpdate>& updates, double clip) {
  std::vector<fl::ClientUpdate> out = updates;
  for (auto& u : out) tensor::clip_l2_inplace(u.delta, clip);
  return out;
}

}  // namespace

NormBoundAggregator::NormBoundAggregator(NormBoundConfig config,
                                         std::unique_ptr<fl::Aggregator> inner,
                                         stats::Rng rng)
    : config_(config), inner_(std::move(inner)), rng_(std::move(rng)) {
  if (!inner_) throw std::invalid_argument("NormBoundAggregator: null inner");
  if (config_.clip <= 0.0) {
    throw std::invalid_argument("NormBoundAggregator: clip must be > 0");
  }
}

tensor::FlatVec NormBoundAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  const auto clipped = clip_updates(updates, config_.clip);
  tensor::FlatVec agg = inner_->aggregate(clipped, global, pool);
  if (config_.noise_std > 0.0) {
    for (auto& v : agg) {
      v = static_cast<float>(v + rng_.normal(0.0, config_.noise_std));
    }
  }
  return agg;
}

DpAggregator::DpAggregator(DpConfig config,
                           std::unique_ptr<fl::Aggregator> inner,
                           stats::Rng rng)
    : config_(config), inner_(std::move(inner)), rng_(std::move(rng)) {
  if (!inner_) throw std::invalid_argument("DpAggregator: null inner");
  if (config_.clip <= 0.0 || config_.noise_multiplier < 0.0) {
    throw std::invalid_argument("DpAggregator: bad config");
  }
}

tensor::FlatVec DpAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  const auto clipped = clip_updates(updates, config_.clip);
  tensor::FlatVec agg = inner_->aggregate(clipped, global, pool);
  const double sigma =
      config_.user_level
          ? config_.noise_multiplier * config_.clip
          : config_.noise_multiplier * config_.clip /
                static_cast<double>(updates.size());
  if (sigma > 0.0) {
    for (auto& v : agg) {
      v = static_cast<float>(v + rng_.normal(0.0, sigma));
    }
  }
  return agg;
}

}  // namespace collapois::defense
