// Coordinate-wise robust statistics (Yin et al., ICML'18): the
// element-wise median and the alpha-trimmed mean of the round's updates.
//
// Both rules are independent per coordinate, so they declare the
// `coordinate` shard capability: the shard tree slices the cohort by
// column ranges and each shard runs the same kernel over its slice —
// per-column results are bit-identical to the flat path (DESIGN.md §12).
#pragma once

#include "fl/aggregator.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

// theta_j = median_i(delta_i[j]) for every coordinate j.
class CoordMedianAggregator : public fl::Aggregator {
 public:
  std::string name() const override { return "coord-median"; }

  fl::ShardCapability shard_capability() const override {
    return fl::ShardCapability::coordinate;
  }
  void aggregate_columns(const std::vector<fl::ClientUpdate>& updates,
                         std::span<const float> global, std::size_t col_begin,
                         std::size_t col_end, float* out,
                         runtime::ThreadPool* pool) override;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  fl::UpdateMatrix matrix_;  // flat-path pack buffer, reused across rounds
};

// Per coordinate, drop the largest and smallest `trim_fraction` of values
// and average the rest.
class TrimmedMeanAggregator : public fl::Aggregator {
 public:
  explicit TrimmedMeanAggregator(double trim_fraction);

  std::string name() const override { return "trimmed-mean"; }

  fl::ShardCapability shard_capability() const override {
    return fl::ShardCapability::coordinate;
  }
  void aggregate_columns(const std::vector<fl::ClientUpdate>& updates,
                         std::span<const float> global, std::size_t col_begin,
                         std::size_t col_end, float* out,
                         runtime::ThreadPool* pool) override;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  double trim_fraction_;
  fl::UpdateMatrix matrix_;  // flat-path pack buffer, reused across rounds
};

}  // namespace collapois::defense
