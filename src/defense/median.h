// Coordinate-wise robust statistics (Yin et al., ICML'18): the
// element-wise median and the alpha-trimmed mean of the round's updates.
#pragma once

#include "fl/aggregator.h"

namespace collapois::defense {

// theta_j = median_i(delta_i[j]) for every coordinate j.
class CoordMedianAggregator : public fl::Aggregator {
 public:
  std::string name() const override { return "coord-median"; }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;
};

// Per coordinate, drop the largest and smallest `trim_fraction` of values
// and average the rest.
class TrimmedMeanAggregator : public fl::Aggregator {
 public:
  explicit TrimmedMeanAggregator(double trim_fraction);

  std::string name() const override { return "trimmed-mean"; }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  double trim_fraction_;
};

}  // namespace collapois::defense
