// Inference-time Trojan detection — the Section II-C category (1)
// defenses the paper says WaNet-style warping evades (Neural Cleanse
// [26], Fine-Pruning [27], STRIP [28]). Implemented so the claim is
// checkable: the companion bench shows a patch (BadNets) backdoor being
// caught by all three while the warp backdoor slips through.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "stats/rng.h"

namespace collapois::defense {

// ------------------------------------------------------------------ STRIP

// STRIP's observation: superimposing a trojaned input with clean images
// leaves the trigger (hence the target prediction) intact, so the
// prediction entropy across perturbations stays abnormally LOW; a clean
// input's blends are ambiguous and high-entropy.
struct StripConfig {
  // Number of clean overlays per probe.
  std::size_t n_overlays = 16;
  // Blend weight of the overlay image.
  double overlay_weight = 0.5;
};

// Mean prediction entropy of `x` blended with random samples from
// `overlay_pool` (nats).
double strip_entropy(nn::Model& model, const tensor::Tensor& x,
                     const data::Dataset& overlay_pool,
                     const StripConfig& config, stats::Rng& rng);

struct StripReport {
  double clean_entropy_mean = 0.0;
  double trojan_entropy_mean = 0.0;
  // Fraction of trojaned probes below the clean population's 1st
  // percentile (the STRIP detection rule with a 1% FPR budget).
  double detection_rate = 0.0;
};

// Evaluate STRIP separation between clean probes and trojaned probes.
StripReport strip_evaluate(nn::Model& model, const data::Dataset& clean,
                           const data::Dataset& trojaned,
                           const data::Dataset& overlay_pool,
                           const StripConfig& config, stats::Rng& rng);

// ----------------------------------------------------------- Fine-Pruning

// Fine-Pruning: neurons dormant on clean data are suspected trigger
// carriers; zero them (here: units of the penultimate Dense layer) in
// ascending clean-activation order.
struct PruneResult {
  std::size_t pruned_units = 0;
  double clean_accuracy = 0.0;
  double attack_sr = 0.0;
};

// Prune the `n_prune` least-activated hidden units of the LAST hidden
// Dense layer (measured on `clean`), returning the pruned model.
nn::Model fine_prune(const nn::Model& model, const data::Dataset& clean,
                     std::size_t n_prune);

// Sweep pruning levels and report accuracy / backdoor survival at each.
std::vector<PruneResult> fine_prune_sweep(
    const nn::Model& model, const data::Dataset& clean,
    const data::Dataset& clean_eval, const data::Dataset& trojan_eval,
    const std::vector<std::size_t>& prune_levels);

// --------------------------------------------------------- Neural Cleanse

// Neural Cleanse: for every candidate target class, optimize a minimal
// input perturbation (mask m, pattern p) that flips clean inputs to that
// class: x' = (1 - m) * x + m * p, minimizing CE + lambda * ||m||_1.
// A patch-backdoored class admits an abnormally small mask; the anomaly
// index is the MAD-normalized deviation of the smallest mask norm.
struct CleanseConfig {
  std::size_t steps = 200;
  double lr = 2.0;
  double mask_l1_weight = 0.05;
  std::size_t batch = 24;
};

struct CleanseReport {
  // Optimized L1 mask norm per class.
  std::vector<double> mask_norms;
  // MAD anomaly index of the smallest mask (Neural Cleanse flags > 2).
  double anomaly_index = 0.0;
  int flagged_class = -1;  // argmin mask norm
};

CleanseReport neural_cleanse(nn::Model model, const data::Dataset& clean,
                             const CleanseConfig& config, stats::Rng& rng);

}  // namespace collapois::defense
