// Sign-based defenses:
//  - Robust Learning Rate (Ozdayi et al., AAAI'21): per coordinate, count
//    how many updates agree in sign; where the |sum of signs| falls below
//    a threshold, flip the learning rate (negate the aggregate) for that
//    coordinate.
//  - SignSGD with majority vote (Bernstein et al.): the aggregate is the
//    per-coordinate sign of the summed updates, scaled by a step size.
//
// Both votes are independent per coordinate, so both declare the
// `coordinate` shard capability (column-range sharding, DESIGN.md §12).
#pragma once

#include "fl/aggregator.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

struct RlrConfig {
  // Minimum |sum of update signs| for a coordinate to keep a positive
  // learning rate. The RLR paper's theta; typically around the expected
  // number of malicious updates + 1.
  double threshold = 2.0;
};

class RlrAggregator : public fl::Aggregator {
 public:
  explicit RlrAggregator(RlrConfig config);

  std::string name() const override { return "rlr"; }

  fl::ShardCapability shard_capability() const override {
    return fl::ShardCapability::coordinate;
  }
  void aggregate_columns(const std::vector<fl::ClientUpdate>& updates,
                         std::span<const float> global, std::size_t col_begin,
                         std::size_t col_end, float* out,
                         runtime::ThreadPool* pool) override;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  RlrConfig config_;
  fl::UpdateMatrix matrix_;  // flat-path pack buffer, reused across rounds
};

struct SignSgdConfig {
  // Step magnitude per coordinate.
  double step = 0.01;
};

class SignSgdAggregator : public fl::Aggregator {
 public:
  explicit SignSgdAggregator(SignSgdConfig config);

  std::string name() const override { return "signsgd"; }

  fl::ShardCapability shard_capability() const override {
    return fl::ShardCapability::coordinate;
  }
  void aggregate_columns(const std::vector<fl::ClientUpdate>& updates,
                         std::span<const float> global, std::size_t col_begin,
                         std::size_t col_end, float* out,
                         runtime::ThreadPool* pool) override;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  SignSgdConfig config_;
  fl::UpdateMatrix matrix_;  // flat-path pack buffer, reused across rounds
};

}  // namespace collapois::defense
