#include "defense/detector.h"

#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::defense {

std::vector<UpdateFeatures> extract_features(
    const std::vector<fl::ClientUpdate>& updates) {
  if (updates.empty()) {
    throw std::invalid_argument("extract_features: no updates");
  }
  // Borrowed views into the deltas — no per-update deep copies just to
  // compute the round mean.
  std::vector<std::span<const float>> deltas;
  deltas.reserve(updates.size());
  for (const auto& u : updates) deltas.emplace_back(u.delta);
  const tensor::FlatVec mean =
      tensor::mean_of(std::span<const std::span<const float>>(deltas));

  std::vector<UpdateFeatures> out;
  out.reserve(updates.size());
  for (const auto& u : updates) {
    UpdateFeatures f;
    f.angle_to_mean = stats::angle_between(u.delta, mean);
    f.norm = stats::l2_norm(u.delta);
    out.push_back(f);
  }
  return out;
}

bool DetectionReport::distinguishable() const {
  return angle_t.significant_at_05() || angle_levene.significant_at_05() ||
         angle_ks.significant_at_05() || norm_t.significant_at_05() ||
         norm_levene.significant_at_05() || norm_ks.significant_at_05();
}

DetectionReport analyze_round(const std::vector<fl::ClientUpdate>& updates,
                              const std::vector<bool>& compromised) {
  if (updates.size() != compromised.size()) {
    throw std::invalid_argument("analyze_round: flag size mismatch");
  }
  const auto features = extract_features(updates);

  std::vector<double> benign_angle;
  std::vector<double> malicious_angle;
  std::vector<double> benign_norm;
  std::vector<double> malicious_norm;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (compromised[i]) {
      malicious_angle.push_back(features[i].angle_to_mean);
      malicious_norm.push_back(features[i].norm);
    } else {
      benign_angle.push_back(features[i].angle_to_mean);
      benign_norm.push_back(features[i].norm);
    }
  }

  DetectionReport r;
  if (benign_angle.size() >= 2 && malicious_angle.size() >= 2) {
    r.angle_t = stats::welch_t_test(malicious_angle, benign_angle);
    r.angle_levene = stats::levene_test(malicious_angle, benign_angle);
    r.angle_ks = stats::ks_test(malicious_angle, benign_angle);
    r.norm_t = stats::welch_t_test(malicious_norm, benign_norm);
    r.norm_levene = stats::levene_test(malicious_norm, benign_norm);
    r.norm_ks = stats::ks_test(malicious_norm, benign_norm);
  }
  if (!benign_angle.empty() && !malicious_angle.empty()) {
    r.three_sigma_rate =
        stats::three_sigma_outlier_rate(benign_angle, malicious_angle);
  }
  return r;
}

}  // namespace collapois::defense
