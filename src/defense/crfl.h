// CRFL (Xie et al., ICML'21): certifiably robust FL via model smoothness
// — after every aggregation the *global model parameters* are clipped to
// an L2 ball and perturbed with Gaussian noise, yielding a certified
// robustness radius against bounded model perturbations.
//
// In this library CRFL is an Aggregator with a post_update hook (the
// Server applies it to the parameters after each round); the certified
// radius for a given perturbation budget follows the Gaussian-smoothing
// argument radius = sigma * Phi^{-1}(p) for a vote margin p.
#pragma once

#include "fl/aggregator.h"
#include "stats/rng.h"

namespace collapois::defense {

struct CrflConfig {
  // L2 bound on the global parameter vector.
  double param_clip = 10.0;
  // Std of the Gaussian noise added to every parameter after clipping.
  double noise_std = 0.005;
};

class CrflAggregator : public fl::Aggregator {
 public:
  CrflAggregator(CrflConfig config, std::unique_ptr<fl::Aggregator> inner,
                 stats::Rng rng);

  void post_update(tensor::FlatVec& params) override;
  std::string name() const override { return "crfl"; }

  // CRFL's aggregation is pure delegation (its own work happens in
  // post_update, on the root's parameters), so the shard protocol
  // forwards to the inner rule wholesale.
  fl::ShardCapability shard_capability() const override {
    return inner_->shard_capability();
  }
  std::unique_ptr<fl::ShardStream> stream_begin(std::size_t dim) override {
    return inner_->stream_begin(dim);
  }
  void stream_absorb(fl::ShardStream& stream,
                     const std::vector<fl::ClientUpdate>& updates,
                     std::size_t row_begin, std::size_t row_end,
                     std::span<const float> global,
                     runtime::ThreadPool* pool) override {
    inner_->stream_absorb(stream, updates, row_begin, row_end, global, pool);
  }
  tensor::FlatVec stream_finish(fl::ShardStream& stream,
                                std::span<const float> global) override {
    return inner_->stream_finish(stream, global);
  }
  void aggregate_columns(const std::vector<fl::ClientUpdate>& updates,
                         std::span<const float> global, std::size_t col_begin,
                         std::size_t col_end, float* out,
                         runtime::ThreadPool* pool) override {
    inner_->aggregate_columns(updates, global, col_begin, col_end, out, pool);
  }
  void save_state(fl::StateWriter& w) const override {
    w.write_rng(rng_);
    inner_->save_state(w);
  }
  void load_state(fl::StateReader& r) override {
    r.read_rng(rng_);
    inner_->load_state(r);
  }

  // Certified L2 radius around the smoothed model for a majority-vote
  // margin p in (0.5, 1): radius = noise_std * Phi^{-1}(p).
  double certified_radius(double vote_margin) const;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  CrflConfig config_;
  std::unique_ptr<fl::Aggregator> inner_;
  stats::Rng rng_;
};

}  // namespace collapois::defense
