// CRFL (Xie et al., ICML'21): certifiably robust FL via model smoothness
// — after every aggregation the *global model parameters* are clipped to
// an L2 ball and perturbed with Gaussian noise, yielding a certified
// robustness radius against bounded model perturbations.
//
// In this library CRFL is an Aggregator with a post_update hook (the
// Server applies it to the parameters after each round); the certified
// radius for a given perturbation budget follows the Gaussian-smoothing
// argument radius = sigma * Phi^{-1}(p) for a vote margin p.
#pragma once

#include "fl/aggregator.h"
#include "stats/rng.h"

namespace collapois::defense {

struct CrflConfig {
  // L2 bound on the global parameter vector.
  double param_clip = 10.0;
  // Std of the Gaussian noise added to every parameter after clipping.
  double noise_std = 0.005;
};

class CrflAggregator : public fl::Aggregator {
 public:
  CrflAggregator(CrflConfig config, std::unique_ptr<fl::Aggregator> inner,
                 stats::Rng rng);

  void post_update(tensor::FlatVec& params) override;
  std::string name() const override { return "crfl"; }
  void save_state(fl::StateWriter& w) const override {
    w.write_rng(rng_);
    inner_->save_state(w);
  }
  void load_state(fl::StateReader& r) override {
    r.read_rng(rng_);
    inner_->load_state(r);
  }

  // Certified L2 radius around the smoothed model for a majority-vote
  // margin p in (0.5, 1): radius = noise_std * Phi^{-1}(p).
  double certified_radius(double vote_margin) const;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  CrflConfig config_;
  std::unique_ptr<fl::Aggregator> inner_;
  stats::Rng rng_;
};

}  // namespace collapois::defense
