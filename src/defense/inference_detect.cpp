#include "defense/inference_detect.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/eval.h"
#include "nn/loss.h"
#include "stats/summary.h"

namespace collapois::defense {

namespace {

double prediction_entropy(std::span<const float> probs) {
  double h = 0.0;
  for (float p : probs) {
    if (p > 1e-12f) h -= static_cast<double>(p) * std::log(p);
  }
  return h;
}

}  // namespace

// ------------------------------------------------------------------ STRIP

double strip_entropy(nn::Model& model, const tensor::Tensor& x,
                     const data::Dataset& overlay_pool,
                     const StripConfig& config, stats::Rng& rng) {
  if (overlay_pool.empty()) {
    throw std::invalid_argument("strip_entropy: empty overlay pool");
  }
  double total = 0.0;
  for (std::size_t k = 0; k < config.n_overlays; ++k) {
    const auto& overlay =
        overlay_pool[static_cast<std::size_t>(
            rng.uniform_int(overlay_pool.size()))].x;
    if (overlay.size() != x.size()) {
      throw std::invalid_argument("strip_entropy: shape mismatch");
    }
    // Blend and wrap as a batch of one.
    std::vector<std::size_t> shape;
    shape.push_back(1);
    for (std::size_t d : x.shape()) shape.push_back(d);
    tensor::Tensor blended(shape);
    for (std::size_t i = 0; i < x.size(); ++i) {
      blended[i] = static_cast<float>((1.0 - config.overlay_weight) * x[i] +
                                      config.overlay_weight * overlay[i]);
    }
    const tensor::Tensor probs = nn::softmax(model.forward(blended));
    total += prediction_entropy(probs.data());
  }
  return total / static_cast<double>(config.n_overlays);
}

StripReport strip_evaluate(nn::Model& model, const data::Dataset& clean,
                           const data::Dataset& trojaned,
                           const data::Dataset& overlay_pool,
                           const StripConfig& config, stats::Rng& rng) {
  if (clean.empty() || trojaned.empty()) {
    throw std::invalid_argument("strip_evaluate: empty probe set");
  }
  std::vector<double> clean_h;
  clean_h.reserve(clean.size());
  for (const auto& e : clean) {
    clean_h.push_back(strip_entropy(model, e.x, overlay_pool, config, rng));
  }
  std::vector<double> trojan_h;
  trojan_h.reserve(trojaned.size());
  for (const auto& e : trojaned) {
    trojan_h.push_back(strip_entropy(model, e.x, overlay_pool, config, rng));
  }
  StripReport r;
  r.clean_entropy_mean = stats::mean(clean_h);
  r.trojan_entropy_mean = stats::mean(trojan_h);
  const double threshold = stats::quantile(clean_h, 0.01);
  std::size_t detected = 0;
  for (double h : trojan_h) {
    if (h < threshold) ++detected;
  }
  r.detection_rate =
      static_cast<double>(detected) / static_cast<double>(trojan_h.size());
  return r;
}

// ----------------------------------------------------------- Fine-Pruning

namespace {

// Index of the last hidden Dense layer (the Dense feeding the classifier
// head) and the classifier Dense itself.
std::size_t find_penultimate_dense(nn::Model& model) {
  std::ptrdiff_t last = -1;
  std::ptrdiff_t penultimate = -1;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    if (dynamic_cast<nn::Dense*>(&model.layer(i)) != nullptr) {
      penultimate = last;
      last = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (penultimate < 0) {
    throw std::invalid_argument(
        "fine_prune: model needs at least two Dense layers");
  }
  return static_cast<std::size_t>(penultimate);
}

// Mean |activation| of each unit of layer `upto` (inclusive of the ReLU
// that follows it, if any) over the clean set.
std::vector<double> unit_activations(nn::Model& model,
                                     const data::Dataset& clean,
                                     std::size_t upto) {
  auto* dense = dynamic_cast<nn::Dense*>(&model.layer(upto));
  std::vector<double> act(dense->out_features(), 0.0);
  std::size_t count = 0;
  std::vector<std::size_t> idx(1);
  for (std::size_t s = 0; s < clean.size(); ++s) {
    idx[0] = s;
    const auto batch = data::make_batch(clean, idx);
    tensor::Tensor h = batch.x;
    for (std::size_t l = 0; l <= upto; ++l) {
      h = model.layer(l).forward(std::move(h));
    }
    // Apply the following ReLU if present (post-activation units).
    if (upto + 1 < model.num_layers() &&
        dynamic_cast<nn::Relu*>(&model.layer(upto + 1)) != nullptr) {
      h = model.layer(upto + 1).forward(std::move(h));
    }
    for (std::size_t u = 0; u < act.size(); ++u) {
      act[u] += std::fabs(h[u]);
    }
    ++count;
  }
  for (auto& a : act) a /= static_cast<double>(std::max<std::size_t>(count, 1));
  return act;
}

}  // namespace

nn::Model fine_prune(const nn::Model& model, const data::Dataset& clean,
                     std::size_t n_prune) {
  if (clean.empty()) throw std::invalid_argument("fine_prune: empty clean set");
  nn::Model pruned = model;
  const std::size_t target = find_penultimate_dense(pruned);
  auto* dense = dynamic_cast<nn::Dense*>(&pruned.layer(target));
  const auto act = unit_activations(pruned, clean, target);

  std::vector<std::size_t> order(act.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return act[a] < act[b]; });

  auto params = dense->parameters();
  const std::size_t in = dense->in_features();
  const std::size_t out = dense->out_features();
  const std::size_t n = std::min(n_prune, out);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t u = order[k];
    for (std::size_t j = 0; j < in; ++j) params[u * in + j] = 0.0f;
    params[out * in + u] = 0.0f;  // bias
  }
  return pruned;
}

std::vector<PruneResult> fine_prune_sweep(
    const nn::Model& model, const data::Dataset& clean,
    const data::Dataset& clean_eval, const data::Dataset& trojan_eval,
    const std::vector<std::size_t>& prune_levels) {
  std::vector<PruneResult> out;
  out.reserve(prune_levels.size());
  for (std::size_t level : prune_levels) {
    nn::Model pruned = fine_prune(model, clean, level);
    PruneResult r;
    r.pruned_units = level;
    r.clean_accuracy = nn::accuracy(pruned, clean_eval);
    r.attack_sr = nn::accuracy(pruned, trojan_eval);
    out.push_back(r);
  }
  return out;
}

// --------------------------------------------------------- Neural Cleanse

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

CleanseReport neural_cleanse(nn::Model model, const data::Dataset& clean,
                             const CleanseConfig& config, stats::Rng& rng) {
  if (clean.empty()) {
    throw std::invalid_argument("neural_cleanse: empty clean set");
  }
  const std::size_t dim = clean[0].x.size();
  const std::size_t classes = clean.num_classes();

  CleanseReport report;
  report.mask_norms.resize(classes, 0.0);

  for (std::size_t target = 0; target < classes; ++target) {
    // Raw (pre-sigmoid) mask and pattern parameters.
    std::vector<double> raw_m(dim, -3.0);  // sigmoid(-3) ~ 0.047: start small
    std::vector<double> raw_p(dim, 0.0);

    for (std::size_t step = 0; step < config.steps; ++step) {
      // Mini-batch of clean inputs.
      const std::size_t bsz = std::min(config.batch, clean.size());
      std::vector<std::size_t> idx(bsz);
      for (auto& i : idx) {
        i = static_cast<std::size_t>(rng.uniform_int(clean.size()));
      }
      const auto batch = data::make_batch(clean, idx);

      // Apply x' = (1 - m) x + m p.
      tensor::Tensor perturbed = batch.x;
      std::vector<double> m(dim);
      std::vector<double> p(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        m[i] = sigmoid(raw_m[i]);
        p[i] = sigmoid(raw_p[i]);
      }
      for (std::size_t b = 0; b < bsz; ++b) {
        for (std::size_t i = 0; i < dim; ++i) {
          const std::size_t k = b * dim + i;
          perturbed[k] = static_cast<float>((1.0 - m[i]) * perturbed[k] +
                                            m[i] * p[i]);
        }
      }

      const std::vector<int> labels(bsz, static_cast<int>(target));
      model.zero_grad();
      const tensor::Tensor logits = model.forward(perturbed);
      const auto loss = nn::softmax_cross_entropy(logits, labels);
      const tensor::Tensor grad_in = model.backward(loss.grad_logits);

      // Chain to mask/pattern: dL/dm_i = sum_b g_bi (p_i - x_bi),
      // dL/dp_i = sum_b g_bi m_i; plus the L1 mask penalty.
      for (std::size_t i = 0; i < dim; ++i) {
        double gm = config.mask_l1_weight;  // d||m||_1/dm = 1 (m >= 0)
        double gp = 0.0;
        for (std::size_t b = 0; b < bsz; ++b) {
          const std::size_t k = b * dim + i;
          const double g = grad_in[k];
          gm += g * (p[i] - batch.x[k]);
          gp += g * m[i];
        }
        raw_m[i] -= config.lr * gm * m[i] * (1.0 - m[i]);
        raw_p[i] -= config.lr * gp * p[i] * (1.0 - p[i]);
      }
    }

    double l1 = 0.0;
    for (double v : raw_m) l1 += sigmoid(v);
    report.mask_norms[target] = l1;
  }

  // MAD anomaly index of the smallest mask.
  std::vector<double> norms = report.mask_norms;
  const double med = stats::median(norms);
  std::vector<double> dev(norms.size());
  for (std::size_t i = 0; i < norms.size(); ++i) {
    dev[i] = std::fabs(norms[i] - med);
  }
  const double mad = std::max(stats::median(dev), 1e-9);
  const auto min_it = std::min_element(norms.begin(), norms.end());
  report.flagged_class = static_cast<int>(min_it - norms.begin());
  report.anomaly_index = (med - *min_it) / (1.4826 * mad);
  return report;
}

}  // namespace collapois::defense
