#include "defense/rlr.h"

#include <cmath>
#include <stdexcept>

namespace collapois::defense {

RlrAggregator::RlrAggregator(RlrConfig config) : config_(config) {
  if (config_.threshold < 0.0) {
    throw std::invalid_argument("RlrAggregator: negative threshold");
  }
}

tensor::FlatVec RlrAggregator::aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("RlrAggregator: no updates");
  }
  const std::size_t m = updates[0].delta.size();
  const std::size_t n = updates.size();
  tensor::FlatVec out(m, 0.0f);
  for (std::size_t j = 0; j < m; ++j) {
    double sum = 0.0;
    double sign_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float v = updates[i].delta[j];
      sum += v;
      if (v > 0.0f) {
        sign_sum += 1.0;
      } else if (v < 0.0f) {
        sign_sum -= 1.0;
      }
    }
    const double mean = sum / static_cast<double>(n);
    // Flip the coordinate's learning rate when sign agreement is weak.
    out[j] = static_cast<float>(
        std::fabs(sign_sum) >= config_.threshold ? mean : -mean);
  }
  return out;
}

SignSgdAggregator::SignSgdAggregator(SignSgdConfig config) : config_(config) {
  if (config_.step <= 0.0) {
    throw std::invalid_argument("SignSgdAggregator: step must be > 0");
  }
}

tensor::FlatVec SignSgdAggregator::aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("SignSgdAggregator: no updates");
  }
  const std::size_t m = updates[0].delta.size();
  tensor::FlatVec out(m, 0.0f);
  for (std::size_t j = 0; j < m; ++j) {
    double sign_sum = 0.0;
    for (const auto& u : updates) {
      if (u.delta[j] > 0.0f) {
        sign_sum += 1.0;
      } else if (u.delta[j] < 0.0f) {
        sign_sum -= 1.0;
      }
    }
    out[j] = static_cast<float>(
        config_.step * (sign_sum > 0.0 ? 1.0 : (sign_sum < 0.0 ? -1.0 : 0.0)));
  }
  return out;
}

}  // namespace collapois::defense
