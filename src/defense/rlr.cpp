#include "defense/rlr.h"

#include <stdexcept>

#include "defense/defense_kernels.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

RlrAggregator::RlrAggregator(RlrConfig config) : config_(config) {
  if (config_.threshold < 0.0) {
    throw std::invalid_argument("RlrAggregator: negative threshold");
  }
}

tensor::FlatVec RlrAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("RlrAggregator: no updates");
  }
  fl::UpdateMatrix matrix(updates);
  tensor::FlatVec out(matrix.cols());
  defense_ops().rlr_vote(matrix, config_.threshold, out.data(), pool);
  return out;
}

SignSgdAggregator::SignSgdAggregator(SignSgdConfig config) : config_(config) {
  if (config_.step <= 0.0) {
    throw std::invalid_argument("SignSgdAggregator: step must be > 0");
  }
}

tensor::FlatVec SignSgdAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("SignSgdAggregator: no updates");
  }
  fl::UpdateMatrix matrix(updates);
  tensor::FlatVec out(matrix.cols());
  defense_ops().sign_vote(matrix, config_.step, out.data(), pool);
  return out;
}

}  // namespace collapois::defense
