#include "defense/rlr.h"

#include <stdexcept>

#include "defense/defense_kernels.h"

namespace collapois::defense {

RlrAggregator::RlrAggregator(RlrConfig config) : config_(config) {
  if (config_.threshold < 0.0) {
    throw std::invalid_argument("RlrAggregator: negative threshold");
  }
}

tensor::FlatVec RlrAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("RlrAggregator: no updates");
  }
  matrix_.pack(updates);
  tensor::FlatVec out(matrix_.cols());
  defense_ops().rlr_vote(matrix_, config_.threshold, out.data(), pool);
  return out;
}

void RlrAggregator::aggregate_columns(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, std::size_t col_begin,
    std::size_t col_end, float* out, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("RlrAggregator: no updates");
  }
  fl::UpdateMatrix slice;
  slice.pack_columns(updates, col_begin, col_end);
  defense_ops().rlr_vote(slice, config_.threshold, out, pool);
}

SignSgdAggregator::SignSgdAggregator(SignSgdConfig config) : config_(config) {
  if (config_.step <= 0.0) {
    throw std::invalid_argument("SignSgdAggregator: step must be > 0");
  }
}

tensor::FlatVec SignSgdAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("SignSgdAggregator: no updates");
  }
  matrix_.pack(updates);
  tensor::FlatVec out(matrix_.cols());
  defense_ops().sign_vote(matrix_, config_.step, out.data(), pool);
  return out;
}

void SignSgdAggregator::aggregate_columns(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, std::size_t col_begin,
    std::size_t col_end, float* out, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("SignSgdAggregator: no updates");
  }
  fl::UpdateMatrix slice;
  slice.pack_columns(updates, col_begin, col_end);
  defense_ops().sign_vote(slice, config_.step, out, pool);
}

}  // namespace collapois::defense
