#include "defense/flare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "defense/defense_kernels.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

FlareAggregator::FlareAggregator(FlareConfig config) : config_(config) {
  if (config_.temperature <= 0.0) {
    throw std::invalid_argument("FlareAggregator: temperature must be > 0");
  }
}

tensor::FlatVec FlareAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/, runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("FlareAggregator: no updates");
  }
  const std::size_t n = updates.size();
  if (n == 1) {
    trust_.assign(1, 1.0);
    return updates[0].delta;
  }

  // Mean pairwise distance of each update to the others, off the shared
  // squared-distance kernel. Accumulating row i over j ascending matches
  // the original upper-triangle loop's order exactly.
  matrix_.pack(updates);
  std::vector<double> d2(n * n);
  defense_ops().pairwise_sq_dists(matrix_, d2.data(), pool);
  std::vector<double> mean_dist(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) mean_dist[i] += std::sqrt(d2[i * n + j]);
    }
  }
  for (auto& d : mean_dist) d /= static_cast<double>(n - 1);

  // Softmax(-dist / T) trust scores, shifted for stability.
  double min_dist = mean_dist[0];
  for (double d : mean_dist) min_dist = std::min(min_dist, d);
  trust_.assign(n, 0.0);
  double z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trust_[i] = std::exp(-(mean_dist[i] - min_dist) / config_.temperature);
    z += trust_[i];
  }
  for (auto& t : trust_) t /= z;

  std::vector<std::span<const float>> deltas;
  deltas.reserve(n);
  for (const auto& u : updates) deltas.emplace_back(u.delta);
  return tensor::weighted_mean_of(
      std::span<const std::span<const float>>(deltas), trust_);
}

}  // namespace collapois::defense
