#include "defense/flare.h"

#include <cmath>
#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::defense {

FlareAggregator::FlareAggregator(FlareConfig config) : config_(config) {
  if (config_.temperature <= 0.0) {
    throw std::invalid_argument("FlareAggregator: temperature must be > 0");
  }
}

tensor::FlatVec FlareAggregator::aggregate(
    const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("FlareAggregator: no updates");
  }
  const std::size_t n = updates.size();
  if (n == 1) {
    trust_.assign(1, 1.0);
    return updates[0].delta;
  }

  // Mean pairwise distance of each update to the others.
  std::vector<double> mean_dist(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d =
          stats::l2_distance(updates[i].delta, updates[j].delta);
      mean_dist[i] += d;
      mean_dist[j] += d;
    }
  }
  for (auto& d : mean_dist) d /= static_cast<double>(n - 1);

  // Softmax(-dist / T) trust scores, shifted for stability.
  double min_dist = mean_dist[0];
  for (double d : mean_dist) min_dist = std::min(min_dist, d);
  trust_.assign(n, 0.0);
  double z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trust_[i] = std::exp(-(mean_dist[i] - min_dist) / config_.temperature);
    z += trust_[i];
  }
  for (auto& t : trust_) t /= z;

  std::vector<tensor::FlatVec> deltas;
  deltas.reserve(n);
  for (const auto& u : updates) deltas.push_back(u.delta);
  return tensor::weighted_mean_of(deltas, trust_);
}

}  // namespace collapois::defense
