// Defense-kernel layer: the robust-aggregation hot loops behind a
// process-wide registry, mirroring the compute-kernel registry
// (kernels/kernels.h).
//
// Two sets are registered:
//   - naive: the original per-pair scalar distance loops and
//            per-coordinate gathers, kept as the reference
//            implementation (sequential; the pool argument is ignored);
//   - fast:  pairwise squared distances via the Gram-matrix identity on
//            the blocked GEMM (stats::pairwise_sq_distances_gram), and
//            the coordinate-wise rules restructured into contiguous
//            column tiles dispatched over runtime::parallel_for. The
//            default.
//
// Determinism contract: every op writes results addressed purely by
// output index with a fixed work decomposition (block / tile edges are
// compile-time constants, never derived from the pool size), so results
// are bit-identical for any thread count — including no pool at all.
// Across the two sets, the coordinate-wise ops (median / trimmed mean /
// RLR / sign vote) are EXACTLY equal: both sets select and accumulate
// each column's values in the same order, only the memory layout
// differs. The pairwise-distance op is not bit-equal across sets (float
// GEMM accumulation vs scalar double loops); Krum/FLARE results agree to
// tolerance with rank-stable selections (property-tested in
// tests/test_defense_kernels.cpp), which is why the defense impl — like
// the kernel kind — is part of the checkpoint fingerprint.
#pragma once

#include <cstddef>
#include <string>

#include "fl/update_matrix.h"

namespace collapois::runtime {
class ThreadPool;
}

namespace collapois::defense {

enum class DefenseImpl { naive, fast };

const char* defense_impl_name(DefenseImpl impl);
DefenseImpl parse_defense_impl(const std::string& name);

// One defense-kernel set. Every op takes the round's UpdateMatrix and an
// optional pool (nullptr = inline on the calling thread).
struct DefenseKernelOps {
  const char* name;

  // Full symmetric [n x n] matrix of squared L2 distances between rows
  // (row-major, zero diagonal) into `out`.
  void (*pairwise_sq_dists)(const fl::UpdateMatrix& m, double* out,
                            runtime::ThreadPool* pool);

  // out[j] = median_i m(i, j) (even n: mean of the two middle values,
  // matching the reference implementation's lower/upper selection).
  void (*coord_median)(const fl::UpdateMatrix& m, float* out,
                       runtime::ThreadPool* pool);

  // out[j] = mean of column j with the `trim` smallest and `trim`
  // largest values dropped (ascending double accumulation; falls back to
  // the column median when nothing survives the trim).
  void (*trimmed_mean)(const fl::UpdateMatrix& m, std::size_t trim,
                       float* out, runtime::ThreadPool* pool);

  // Robust Learning Rate: out[j] = column mean, negated where the
  // |sum of signs| falls below `threshold`.
  void (*rlr_vote)(const fl::UpdateMatrix& m, double threshold, float* out,
                   runtime::ThreadPool* pool);

  // SignSGD majority vote: out[j] = step * sign(sum_i sign(m(i, j))).
  void (*sign_vote)(const fl::UpdateMatrix& m, double step, float* out,
                    runtime::ThreadPool* pool);
};

// Process-wide active set. run_experiment() stores the configured impl
// before the pool spawns; workers only ever load it.
void set_active_defense_impl(DefenseImpl impl);
DefenseImpl active_defense_impl();

const DefenseKernelOps& defense_ops();                      // the active set
const DefenseKernelOps& defense_ops_for(DefenseImpl impl);  // a specific set

}  // namespace collapois::defense
