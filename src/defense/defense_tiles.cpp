// Scalar and sse2 defense column tiles, plus the tier dispatch. The avx2
// tiles live in defense_simd_avx2.cpp (the only defense TU built with
// -mavx2 -mfma).
//
// The scalar variants are written to mirror the SIMD instruction
// semantics lane-for-lane — (a < b) ? a : b for min (minps returns the
// second operand on equality), mask-style sign counting — so all tiers
// produce bit-identical buffers and the property suite can demand exact
// equality instead of tolerances.
#include "defense/defense_tiles.h"

#include "kernels/cpu_dispatch.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace collapois::defense::detail {

namespace {

constexpr std::size_t W = kTileLanes;

void scalar_sort_lanes(float* buf, std::size_t n) {
  for_each_sort_pair(n, [buf](std::size_t a, std::size_t b) {
    float* ra = buf + a * W;
    float* rb = buf + b * W;
    for (std::size_t l = 0; l < W; ++l) {
      const float x = ra[l];
      const float y = rb[l];
      ra[l] = x < y ? x : y;  // minps: second operand on equality
      rb[l] = x > y ? x : y;  // maxps: second operand on equality
    }
  });
}

void scalar_vote_lanes(const float* base, std::size_t n, std::size_t stride,
                       double* sums, std::int32_t* counts) {
  for (std::size_t l = 0; l < W; ++l) {
    sums[l] = 0.0;
    counts[l] = 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = base + i * stride;
    for (std::size_t l = 0; l < W; ++l) {
      const float x = row[l];
      sums[l] += static_cast<double>(x);
      counts[l] += (x > 0.0f ? 1 : 0) - (x < 0.0f ? 1 : 0);
    }
  }
}

#if defined(__SSE2__)

void sse2_sort_lanes(float* buf, std::size_t n) {
  for_each_sort_pair(n, [buf](std::size_t a, std::size_t b) {
    float* ra = buf + a * W;
    float* rb = buf + b * W;
    const __m128 x0 = _mm_loadu_ps(ra);
    const __m128 x1 = _mm_loadu_ps(ra + 4);
    const __m128 y0 = _mm_loadu_ps(rb);
    const __m128 y1 = _mm_loadu_ps(rb + 4);
    _mm_storeu_ps(ra, _mm_min_ps(x0, y0));
    _mm_storeu_ps(ra + 4, _mm_min_ps(x1, y1));
    _mm_storeu_ps(rb, _mm_max_ps(x0, y0));
    _mm_storeu_ps(rb + 4, _mm_max_ps(x1, y1));
  });
}

void sse2_vote_lanes(const float* base, std::size_t n, std::size_t stride,
                     double* sums, std::int32_t* counts) {
  const __m128 zero = _mm_setzero_ps();
  __m128d s0 = _mm_setzero_pd();  // lanes 0-1
  __m128d s1 = _mm_setzero_pd();  // lanes 2-3
  __m128d s2 = _mm_setzero_pd();  // lanes 4-5
  __m128d s3 = _mm_setzero_pd();  // lanes 6-7
  __m128i c0 = _mm_setzero_si128();  // lanes 0-3
  __m128i c1 = _mm_setzero_si128();  // lanes 4-7
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = base + i * stride;
    const __m128 x0 = _mm_loadu_ps(row);
    const __m128 x1 = _mm_loadu_ps(row + 4);
    // One float->double convert + add per lane, i-ascending: the exact
    // op sequence of the scalar accumulation, eight lanes at a time.
    s0 = _mm_add_pd(s0, _mm_cvtps_pd(x0));
    s1 = _mm_add_pd(s1, _mm_cvtps_pd(_mm_movehl_ps(x0, x0)));
    s2 = _mm_add_pd(s2, _mm_cvtps_pd(x1));
    s3 = _mm_add_pd(s3, _mm_cvtps_pd(_mm_movehl_ps(x1, x1)));
    // Sign count via compare masks: subtracting an all-ones (-1) mask
    // increments, adding it decrements — branch-free x>0 minus x<0.
    c0 = _mm_sub_epi32(c0, _mm_castps_si128(_mm_cmpgt_ps(x0, zero)));
    c0 = _mm_add_epi32(c0, _mm_castps_si128(_mm_cmplt_ps(x0, zero)));
    c1 = _mm_sub_epi32(c1, _mm_castps_si128(_mm_cmpgt_ps(x1, zero)));
    c1 = _mm_add_epi32(c1, _mm_castps_si128(_mm_cmplt_ps(x1, zero)));
  }
  _mm_storeu_pd(sums + 0, s0);
  _mm_storeu_pd(sums + 2, s1);
  _mm_storeu_pd(sums + 4, s2);
  _mm_storeu_pd(sums + 6, s3);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(counts + 0), c0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(counts + 4), c1);
}

#endif  // __SSE2__

}  // namespace

const DefenseTileOps kScalarTiles{scalar_sort_lanes, scalar_vote_lanes};

#if defined(__SSE2__)
const DefenseTileOps kSse2Tiles{sse2_sort_lanes, sse2_vote_lanes};
#endif

const DefenseTileOps& defense_tile_ops() {
  switch (kernels::active_tier()) {
#if defined(__SSE2__)
    case kernels::IsaTier::sse2:
      return kSse2Tiles;
#endif
    case kernels::IsaTier::avx2:
      if (avx2_tiles_compiled()) return avx2_tiles();
      break;
    default:
      break;
  }
  return kScalarTiles;
}

}  // namespace collapois::defense::detail
