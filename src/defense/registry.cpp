#include "defense/registry.h"

#include <stdexcept>

#include "defense/crfl.h"
#include "defense/flare.h"
#include "defense/krum.h"
#include "defense/median.h"
#include "defense/normbound.h"
#include "defense/rlr.h"

namespace collapois::defense {

std::unique_ptr<fl::Aggregator> make_defense(DefenseKind kind,
                                             const DefenseParams& params,
                                             stats::Rng rng) {
  switch (kind) {
    case DefenseKind::none:
      return std::make_unique<fl::FedAvgAggregator>();
    case DefenseKind::dp:
      return std::make_unique<DpAggregator>(
          DpConfig{params.clip, params.noise_multiplier, false},
          std::make_unique<fl::FedAvgAggregator>(), std::move(rng));
    case DefenseKind::user_dp:
      return std::make_unique<DpAggregator>(
          DpConfig{params.clip, params.noise_multiplier, true},
          std::make_unique<fl::FedAvgAggregator>(), std::move(rng));
    case DefenseKind::norm_bound:
      return std::make_unique<NormBoundAggregator>(
          NormBoundConfig{params.clip, params.noise_std},
          std::make_unique<fl::FedAvgAggregator>(), std::move(rng));
    case DefenseKind::krum:
      return std::make_unique<KrumAggregator>(
          KrumConfig{params.assumed_byzantine, 1});
    case DefenseKind::multi_krum:
      return std::make_unique<KrumAggregator>(
          KrumConfig{params.assumed_byzantine, params.multi_k});
    case DefenseKind::coord_median:
      return std::make_unique<CoordMedianAggregator>();
    case DefenseKind::trimmed_mean:
      return std::make_unique<TrimmedMeanAggregator>(params.trim_fraction);
    case DefenseKind::rlr:
      return std::make_unique<RlrAggregator>(RlrConfig{params.rlr_threshold});
    case DefenseKind::sign_sgd:
      return std::make_unique<SignSgdAggregator>(
          SignSgdConfig{params.sign_step});
    case DefenseKind::flare:
      return std::make_unique<FlareAggregator>(
          FlareConfig{params.flare_temperature});
    case DefenseKind::crfl:
      return std::make_unique<CrflAggregator>(
          CrflConfig{params.crfl_param_clip, params.crfl_noise_std},
          std::make_unique<fl::FedAvgAggregator>(), std::move(rng));
    case DefenseKind::ditto:
      // Ditto is a client-side personalization defense: the aggregate is
      // plain FedAvg and the runner swaps benign clients for DittoClient.
      return std::make_unique<fl::FedAvgAggregator>();
  }
  throw std::invalid_argument("make_defense: unknown kind");
}

const char* defense_name(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::none: return "none";
    case DefenseKind::dp: return "dp";
    case DefenseKind::user_dp: return "userdp";
    case DefenseKind::norm_bound: return "normbound";
    case DefenseKind::krum: return "krum";
    case DefenseKind::multi_krum: return "multikrum";
    case DefenseKind::coord_median: return "median";
    case DefenseKind::trimmed_mean: return "trimmedmean";
    case DefenseKind::rlr: return "rlr";
    case DefenseKind::sign_sgd: return "signsgd";
    case DefenseKind::flare: return "flare";
    case DefenseKind::crfl: return "crfl";
    case DefenseKind::ditto: return "ditto";
  }
  return "unknown";
}

DefenseKind parse_defense(const std::string& name) {
  if (name == "none") return DefenseKind::none;
  if (name == "dp") return DefenseKind::dp;
  if (name == "normbound") return DefenseKind::norm_bound;
  if (name == "krum") return DefenseKind::krum;
  if (name == "multikrum") return DefenseKind::multi_krum;
  if (name == "median") return DefenseKind::coord_median;
  if (name == "trimmedmean") return DefenseKind::trimmed_mean;
  if (name == "rlr") return DefenseKind::rlr;
  if (name == "signsgd") return DefenseKind::sign_sgd;
  if (name == "userdp") return DefenseKind::user_dp;
  if (name == "flare") return DefenseKind::flare;
  if (name == "crfl") return DefenseKind::crfl;
  if (name == "ditto") return DefenseKind::ditto;
  throw std::invalid_argument("parse_defense: unknown defense '" + name + "'");
}

std::vector<DefenseInfo> defense_registry() {
  return {
      {DefenseKind::krum, "Robust Aggregation", "Krum / Multi-Krum [42]",
       "Score each update by closeness to its neighbours; keep the best "
       "(or average the top m)",
       false},
      {DefenseKind::coord_median, "Robust Aggregation", "Median GD [32]",
       "Element-wise median as the aggregated update", false},
      {DefenseKind::trimmed_mean, "Robust Aggregation", "Trim Mean GD [32]",
       "Drop the top/bottom beta fraction per coordinate; average the rest",
       false},
      {DefenseKind::sign_sgd, "Robust Aggregation", "SignSGD [43]",
       "Per-coordinate majority vote on update signs", false},
      {DefenseKind::rlr, "Robust Aggregation", "Robust Learning Rate [44]",
       "Count sign agreement per coordinate; flip the learning rate where "
       "agreement is below threshold",
       false},
      {DefenseKind::ditto, "Robust Aggregation", "Ditto [45]",
       "Fine-tune the potentially corrupt global model on each client's "
       "private data",
       false},
      {DefenseKind::norm_bound, "Model Smoothness", "Norm Bound [10]",
       "Clip update magnitudes; add Gaussian noise", true},
      {DefenseKind::crfl, "Model Smoothness", "CRFL [46]",
       "Clip model parameters after every round; add noise; certified "
       "robustness radius",
       false},
      {DefenseKind::flare, "Model Smoothness", "FLARE [47]",
       "Trust score per update from all pairwise differences; trust-"
       "weighted aggregation",
       false},
      {DefenseKind::dp, "Differential Privacy", "DP-optimizer [33]",
       "Clip client updates; add calibrated Gaussian noise", true},
      {DefenseKind::user_dp, "Differential Privacy", "User-level DP [48]",
       "Add Gaussian noise at full per-user sensitivity to model updates",
       false},
  };
}

}  // namespace collapois::defense
