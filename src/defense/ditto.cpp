#include "defense/ditto.h"

namespace collapois::defense {

DittoClient::DittoClient(std::size_t id, const data::Dataset* train,
                         nn::Model model, nn::SgdConfig sgd,
                         DittoConfig ditto, double distill_weight,
                         stats::Rng rng)
    : BenignClient(id, train, std::move(model), sgd, distill_weight,
                   std::move(rng)),
      ditto_(ditto) {}

tensor::FlatVec DittoClient::eval_params(std::span<const float> global) {
  auto& model = scratch_model();
  model.set_parameters(global);
  nn::SgdConfig cfg = sgd_config();
  cfg.epochs = ditto_.personal_epochs;
  const tensor::FlatVec anchor(global.begin(), global.end());
  nn::train_sgd_proximal(model, anchor, ditto_.lambda, train_data(), cfg,
                         rng());
  return model.get_parameters();
}

}  // namespace collapois::defense
