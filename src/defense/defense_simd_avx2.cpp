// The avx2 defense column tiles — the only defense TU built with
// -mavx2 -mfma (see src/defense/CMakeLists.txt). The cpuid dispatcher
// keeps these functions off CPUs that cannot execute them; on non-x86
// targets this TU compiles to a stub and the tier caps below avx2.
//
// Same lane semantics as the scalar/sse2 tiles (defense_tiles.cpp):
// vminps/vmaxps compare-exchanges for the sort network, one
// float->double convert + add per lane in i-ascending order for the
// vote sums, compare-mask subtraction for the sign counts — so outputs
// are bit-identical across tiers. No FMA appears here: the defense
// rules' float semantics must not change with the tier.
#include "defense/defense_tiles.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace collapois::defense::detail {

namespace {

constexpr std::size_t W = kTileLanes;

void avx2_sort_lanes(float* buf, std::size_t n) {
  for_each_sort_pair(n, [buf](std::size_t a, std::size_t b) {
    float* ra = buf + a * W;
    float* rb = buf + b * W;
    const __m256 x = _mm256_loadu_ps(ra);
    const __m256 y = _mm256_loadu_ps(rb);
    _mm256_storeu_ps(ra, _mm256_min_ps(x, y));
    _mm256_storeu_ps(rb, _mm256_max_ps(x, y));
  });
}

void avx2_vote_lanes(const float* base, std::size_t n, std::size_t stride,
                     double* sums, std::int32_t* counts) {
  const __m256 zero = _mm256_setzero_ps();
  __m256d s0 = _mm256_setzero_pd();  // lanes 0-3
  __m256d s1 = _mm256_setzero_pd();  // lanes 4-7
  __m256i cnt = _mm256_setzero_si256();
  for (std::size_t i = 0; i < n; ++i) {
    const __m256 x = _mm256_loadu_ps(base + i * stride);
    s0 = _mm256_add_pd(s0, _mm256_cvtps_pd(_mm256_castps256_ps128(x)));
    s1 = _mm256_add_pd(s1, _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1)));
    cnt = _mm256_sub_epi32(
        cnt, _mm256_castps_si256(_mm256_cmp_ps(x, zero, _CMP_GT_OQ)));
    cnt = _mm256_add_epi32(
        cnt, _mm256_castps_si256(_mm256_cmp_ps(x, zero, _CMP_LT_OQ)));
  }
  _mm256_storeu_pd(sums, s0);
  _mm256_storeu_pd(sums + 4, s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts), cnt);
}

const DefenseTileOps kAvx2Tiles{avx2_sort_lanes, avx2_vote_lanes};

}  // namespace

bool avx2_tiles_compiled() { return true; }

const DefenseTileOps& avx2_tiles() { return kAvx2Tiles; }

}  // namespace collapois::defense::detail

#else  // stub: target cannot compile AVX2 — the dispatcher never selects it

#include <cstdlib>

namespace collapois::defense::detail {

bool avx2_tiles_compiled() { return false; }

const DefenseTileOps& avx2_tiles() { std::abort(); }

}  // namespace collapois::defense::detail

#endif
