// Defense registry: one switchboard from a DefenseKind to a configured
// aggregator, plus the Table I taxonomy metadata. Experiments select
// defenses by kind; the bench for Table I prints the registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/aggregator.h"
#include "stats/rng.h"

namespace collapois::defense {

enum class DefenseKind {
  none,          // plain FedAvg
  dp,            // DP-optimizer (clip + calibrated noise)
  user_dp,       // user-level DP (noise at full per-user sensitivity)
  norm_bound,    // clip + fixed noise
  krum,
  multi_krum,
  coord_median,
  trimmed_mean,
  rlr,
  sign_sgd,
  flare,         // trust-score weighted aggregation
  crfl,          // model clipping + noise after every round
  ditto,         // personalization defense (client-side; FedAvg aggregate)
};

// Tuning knobs shared across kinds; fields irrelevant to a kind are
// ignored.
struct DefenseParams {
  double clip = 1.0;
  double noise_std = 0.005;
  double noise_multiplier = 0.01;
  std::size_t assumed_byzantine = 1;
  std::size_t multi_k = 3;
  double trim_fraction = 0.2;
  double rlr_threshold = 2.0;
  double sign_step = 0.01;
  double flare_temperature = 1.0;
  double crfl_param_clip = 10.0;
  double crfl_noise_std = 0.002;
  double ditto_lambda = 0.1;
};

std::unique_ptr<fl::Aggregator> make_defense(DefenseKind kind,
                                             const DefenseParams& params,
                                             stats::Rng rng);

const char* defense_name(DefenseKind kind);

// Parse the names used by configs/benches ("none", "dp", "normbound",
// "krum", "multikrum", "median", "trimmedmean", "rlr", "signsgd").
DefenseKind parse_defense(const std::string& name);

// Table I row.
struct DefenseInfo {
  DefenseKind kind;
  std::string approach;     // robust aggregation / model smoothness / DP
  std::string method;
  std::string description;
  bool applicable_to_metafed;
};

// The implemented subset of Table I, in presentation order.
std::vector<DefenseInfo> defense_registry();

}  // namespace collapois::defense
