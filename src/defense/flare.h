// FLARE (Wang et al., ASIACCS'22): estimate a trust score for each model
// update from the differences between all pairs of updates, then
// aggregate updates weighted by trust. The original work compares latent
// -space representations; the simulator applies the same trust mechanism
// in update space (see DESIGN.md substitutions): updates far from the
// crowd earn exponentially less weight.
#pragma once

#include "fl/aggregator.h"
#include "fl/update_matrix.h"

namespace collapois::defense {

struct FlareConfig {
  // Temperature of the softmax over negative mean pairwise distances;
  // smaller = sharper down-weighting of outliers.
  double temperature = 1.0;
};

class FlareAggregator : public fl::Aggregator {
 public:
  explicit FlareAggregator(FlareConfig config);

  std::string name() const override { return "flare"; }

  // Trust scores of the last round (parallel to its update list).
  const std::vector<double>& last_trust() const { return trust_; }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  FlareConfig config_;
  std::vector<double> trust_;
  fl::UpdateMatrix matrix_;  // pack buffer, reused across rounds
};
// FLARE keeps the default cohort_only shard capability: trust scores are
// a softmax over all-pairs distances, so any partition changes the rule.

}  // namespace collapois::defense
