// Statistical update-anomaly detection (the MESAS-style [22] analysis the
// paper's "Bypassing Defenses" paragraph evaluates against): per-update
// angle and magnitude features, compared between suspected-malicious and
// benign populations with Welch's t-test, Levene's variance test, the
// two-sample Kolmogorov-Smirnov test, and the 3-sigma outlier rule.
#pragma once

#include <vector>

#include "fl/update.h"
#include "stats/tests.h"

namespace collapois::defense {

// Scalar features of one update relative to the round's population.
struct UpdateFeatures {
  double angle_to_mean = 0.0;  // radians vs the mean update direction
  double norm = 0.0;           // L2 magnitude
};

std::vector<UpdateFeatures> extract_features(
    const std::vector<fl::ClientUpdate>& updates);

struct DetectionReport {
  // Tests on the angle feature (malicious vs benign groups).
  stats::TestResult angle_t;
  stats::TestResult angle_levene;
  stats::TestResult angle_ks;
  // Tests on the magnitude feature.
  stats::TestResult norm_t;
  stats::TestResult norm_levene;
  stats::TestResult norm_ks;
  // Fraction of malicious updates outside the benign 3-sigma envelope
  // (angle feature) — the paper reports ~3.5% for CollaPois.
  double three_sigma_rate = 0.0;

  // True when any test rejects at the 5% level (the defender would flag
  // the malicious population).
  bool distinguishable() const;
};

// Compare the two populations' features. Both groups need >= 2 members
// for the tests; with fewer the report comes back all-pass (the defender
// has no statistical power), mirroring the tiny-|C| regime.
DetectionReport analyze_round(const std::vector<fl::ClientUpdate>& updates,
                              const std::vector<bool>& compromised);

}  // namespace collapois::defense
