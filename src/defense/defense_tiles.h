// Internal: the defense-kernel layer's SIMD column tiles, dispatched on
// the same runtime ISA tier as the GEMM microkernels
// (kernels/cpu_dispatch.h). Only defense_kernels.cpp and the tier TUs
// include this.
//
// The fast coordinate rules process kTileLanes = 8 ADJACENT columns of
// the row-major [n x d] update matrix per step — lanes are columns, so
// every vector op applies the same operation at the same position of 8
// independent per-column computations. That is what makes the tiers
// bit-exact with the naive per-column rules:
//
//   vote_lanes   — per-lane i-ascending float->double accumulation (the
//                  exact op sequence of the naive loop) plus an integer
//                  sign count, x > 0 minus x < 0, via compare masks
//                  (equivalent to movemask+popcount, kept as mask
//                  subtraction so the count stays in-register). The
//                  count converts to double exactly, so RLR and sign
//                  votes match the naive double ±1.0 accumulation
//                  bitwise.
//   sort_lanes   — Batcher odd-even mergesort as a compare-exchange
//                  network on [n x 8] lane buffers: each min/max pair
//                  sorts all 8 columns one exchange at a time, no
//                  branches, no data-dependent control flow. The sorted
//                  multiset per lane is value-identical to std::sort
//                  (the min/max pair on numerically-equal values can
//                  swap or duplicate ±0.0 — every downstream rule is
//                  insensitive to zero sign, see defense_kernels.cpp).
//
// Scalar / sse2 / avx2 variants exist for both; the scalar variant
// mirrors the SIMD min/max and mask semantics exactly ((a < b) ? a : b,
// not std::min), so all three tiers produce identical buffers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace collapois::defense::detail {

// Lane width of the column tiles. Fixed at 8 for every tier (avx2 = one
// 256-bit vector, sse2 = two 128-bit vectors, scalar = an 8-array) so the
// lane-group geometry — and thus the column->group assignment — never
// depends on the dispatch tier.
inline constexpr std::size_t kTileLanes = 8;

struct DefenseTileOps {
  // Sort each lane (column) of an [n x kTileLanes] row-major buffer
  // ascending, via the Batcher network.
  void (*sort_lanes)(float* buf, std::size_t n);
  // Per lane l: sums[l] = sum over i ascending of (double)base[i*stride+l],
  // counts[l] = #(x > 0) - #(x < 0). Overwrites both outputs.
  void (*vote_lanes)(const float* base, std::size_t n, std::size_t stride,
                     double* sums, std::int32_t* counts);
};

// The tile set for kernels::active_tier().
const DefenseTileOps& defense_tile_ops();

// Tier tables (defense_tiles.cpp; avx2 in defense_simd_avx2.cpp, built
// with -mavx2 -mfma — stubbed to compiled()==false on other targets).
extern const DefenseTileOps kScalarTiles;
#if defined(__SSE2__)
extern const DefenseTileOps kSse2Tiles;
#endif
bool avx2_tiles_compiled();
const DefenseTileOps& avx2_tiles();

// Batcher odd-even mergesort comparator sequence for n elements: the
// network for the next power of two with out-of-range comparators
// dropped (virtual elements behave as +inf padding that every kept
// comparator leaves in place, so dropping is exact). Every comparator
// has a < b; cmpex(a, b) must write min to a and max to b. The sequence
// is a pure function of n — identical for every tier.
template <typename CmpEx>
void for_each_sort_pair(std::size_t n, CmpEx cmpex) {
  if (n < 2) return;
  std::size_t n2 = 1;
  while (n2 < n) n2 <<= 1;
  for (std::size_t p = 1; p < n2; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      for (std::size_t j = k % p; j + k < n2; j += 2 * k) {
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t a = i + j;
          const std::size_t b = i + j + k;
          if (b >= n) break;
          if (a / (2 * p) == b / (2 * p)) cmpex(a, b);
        }
      }
    }
  }
}

}  // namespace collapois::defense::detail
