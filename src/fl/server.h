// The federated server: client sampling with probability q, one round of
// collect-aggregate-apply, and per-round telemetry for the angle/distance
// analyses (Figs. 3, 6, 7).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fl/aggregator.h"
#include "fl/client.h"
#include "net/network_model.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace collapois::fl {

struct ServerConfig {
  // Server learning rate lambda applied to the aggregated pseudo-gradient.
  double learning_rate = 1.0;
  // Independent per-client sampling probability q (Algorithm 1 line 5).
  double sample_prob = 0.01;
  // Quarantine any update whose L2 norm exceeds this ceiling (0 disables;
  // non-finite and wrong-dimension updates are always quarantined).
  double update_norm_ceiling = 0.0;
  // Worker pool for the client-training dispatch (not owned; nullptr runs
  // the cohort sequentially on the calling thread). Results are
  // bit-identical for any pool size: sampling draws stay sequential and
  // updates are reduced in sampling (= client-id) order — see DESIGN.md
  // §7 for the determinism argument.
  runtime::ThreadPool* pool = nullptr;
  // Simulated transport between clients and server (not owned; nullptr or
  // a disabled config bypasses it entirely — the pre-transport code path,
  // element-exact). When enabled, computed updates cross a faulty network
  // with retries, deadlines and over-provisioned sampling; see DESIGN.md
  // §8 and net/network_model.h.
  net::NetworkModel* net = nullptr;
};

// Why an update was quarantined instead of aggregated.
enum class RejectReason { non_finite, dim_mismatch, norm_exceeded };

const char* reject_reason_name(RejectReason reason);

// Why a sampled client contributed nothing to the round. Every dropped
// client is counted exactly ONCE under exactly one reason, whichever
// layer dropped it:
//  - compute:   the FaultModel dropped it before any update existed
//               (fl/faults.h dropout — the client never reports);
//  - transport: every send attempt was lost/corrupted in flight
//               (retry budget exhausted);
//  - deadline:  the update existed but reached the server after the
//               round deadline (or its backoff schedule passed it);
//  - excess:    it arrived intact and on time, but after the target
//               cohort had already filled (over-provisioned sampling).
enum class DropReason { compute, transport, deadline, excess };

const char* drop_reason_name(DropReason reason);

struct RoundTelemetry {
  std::size_t round = 0;
  // Ids of the clients whose updates were ACCEPTED into the aggregate.
  // Clients that were sampled but dropped out or were quarantined appear
  // in dropped_ids / rejected_ids instead, so the three vectors below
  // stay parallel and every retained update is well-formed.
  std::vector<std::size_t> sampled_ids;
  // The accepted updates of the round (pseudo-gradients), in sampling
  // order; straggler weights already damped.
  std::vector<ClientUpdate> updates;
  // Flags parallel to `updates`.
  std::vector<bool> compromised;
  // The aggregated pseudo-gradient actually applied (zeros when the round
  // was skipped).
  tensor::FlatVec aggregated;

  // Fault accounting (fl/faults.h + the transport layer). The invariant
  // cohort_size == sampled_ids.size() + dropped_ids.size() +
  // rejected_ids.size() holds every round: each sampled client lands in
  // exactly one bucket.
  std::vector<std::size_t> dropped_ids;
  // Parallel to dropped_ids: which layer dropped the client.
  std::vector<DropReason> drop_reasons;
  std::vector<std::size_t> rejected_ids;
  // Parallel to rejected_ids.
  std::vector<RejectReason> reject_reasons;
  // Size of the sampled cohort, over-provisioned extras included.
  std::size_t cohort_size = 0;
  // Message-level transport counters and arrival-time quantiles for the
  // round (all zero when the transport layer is disabled).
  net::TransportStats transport;
  // Count of accepted updates that arrived stale (weight-damped).
  std::size_t n_stragglers = 0;
  // True when the whole cohort failed and the global model was left
  // untouched this round.
  bool aggregate_skipped = false;

  // Wall-clock of the whole round and of the client-training dispatch
  // alone (the part the thread pool parallelizes), in milliseconds.
  // Timing is observability, not state: it is not checkpointed and never
  // feeds back into the protocol.
  double wall_ms = 0.0;
  double train_ms = 0.0;
  // Wall-clock of the server-side aggregation call alone (the defense hot
  // path bench_defense_throughput measures); 0 when the round was skipped
  // before aggregating.
  double agg_ms = 0.0;
  // Clients that computed an update this round (accepted + quarantined;
  // dropouts never compute) divided by train_ms — the throughput number
  // bench_runtime_scaling sweeps.
  double clients_per_sec = 0.0;
};

class Server {
 public:
  Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
         ServerConfig config, stats::Rng rng);

  // Run one round over the client population. Samples each client
  // independently with probability q (at least one client is always
  // sampled). The sampled cohort's local training is dispatched on
  // config.pool (embarrassingly parallel: clients own their RNG streams
  // and scratch models) and the updates are collected in sampling order,
  // so the aggregate — and every checkpoint derived from it — is
  // bit-identical for any thread count. Every incoming update is
  // validated (dimension, finiteness, optional norm ceiling); failures
  // are quarantined into the telemetry, never thrown — one bad client
  // cannot kill a multi-hour run. When the entire cohort fails the round
  // is skipped with telemetry. Returns the round's telemetry.
  //
  // With config.net enabled, computed updates additionally cross the
  // simulated transport: the cohort is over-provisioned by
  // ceil((1 + over_sample) * k), each update is enveloped and sent with
  // retry/backoff against the virtual-clock deadline, and the server
  // keeps the first k intact in-deadline arrivals (arrival order decides
  // WHO makes the cohort; accepted updates are then reduced in sampling
  // order as before, so determinism across thread counts is untouched).
  // Clients whose update never makes it are dropped with a transport /
  // deadline / excess reason next to the compute dropouts.
  RoundTelemetry run_round(const std::vector<Client*>& clients);

  const tensor::FlatVec& global_params() const { return params_; }
  void set_global_params(tensor::FlatVec p) { params_ = std::move(p); }
  std::size_t round() const { return round_; }
  const Aggregator& aggregator() const { return *agg_; }

  // Checkpoint support: global params, round counter, sampling RNG, and
  // the aggregator's state (noise RNGs), in that order.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  tensor::FlatVec params_;
  std::unique_ptr<Aggregator> agg_;
  ServerConfig config_;
  stats::Rng rng_;
  std::size_t round_ = 0;
};

}  // namespace collapois::fl
