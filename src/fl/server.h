// The federated server: client sampling with probability q, one round of
// collect-aggregate-apply, and per-round telemetry for the angle/distance
// analyses (Figs. 3, 6, 7).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fl/aggregator.h"
#include "fl/client.h"
#include "stats/rng.h"

namespace collapois::fl {

struct ServerConfig {
  // Server learning rate lambda applied to the aggregated pseudo-gradient.
  double learning_rate = 1.0;
  // Independent per-client sampling probability q (Algorithm 1 line 5).
  double sample_prob = 0.01;
};

struct RoundTelemetry {
  std::size_t round = 0;
  std::vector<std::size_t> sampled_ids;
  // The raw updates of the round (pseudo-gradients), in sampling order.
  std::vector<ClientUpdate> updates;
  // Flags parallel to `updates`.
  std::vector<bool> compromised;
  // The aggregated pseudo-gradient actually applied.
  tensor::FlatVec aggregated;
};

class Server {
 public:
  Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
         ServerConfig config, stats::Rng rng);

  // Run one round over the client population. Samples each client
  // independently with probability q (at least one client is always
  // sampled). Returns the round's telemetry.
  RoundTelemetry run_round(const std::vector<Client*>& clients);

  const tensor::FlatVec& global_params() const { return params_; }
  void set_global_params(tensor::FlatVec p) { params_ = std::move(p); }
  std::size_t round() const { return round_; }
  const Aggregator& aggregator() const { return *agg_; }

 private:
  tensor::FlatVec params_;
  std::unique_ptr<Aggregator> agg_;
  ServerConfig config_;
  stats::Rng rng_;
  std::size_t round_ = 0;
};

}  // namespace collapois::fl
