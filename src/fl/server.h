// The federated server: client sampling with probability q, one round of
// collect-aggregate-apply, and per-round telemetry for the angle/distance
// analyses (Figs. 3, 6, 7).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fl/aggregator.h"
#include "fl/client.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace collapois::fl {

struct ServerConfig {
  // Server learning rate lambda applied to the aggregated pseudo-gradient.
  double learning_rate = 1.0;
  // Independent per-client sampling probability q (Algorithm 1 line 5).
  double sample_prob = 0.01;
  // Quarantine any update whose L2 norm exceeds this ceiling (0 disables;
  // non-finite and wrong-dimension updates are always quarantined).
  double update_norm_ceiling = 0.0;
  // Worker pool for the client-training dispatch (not owned; nullptr runs
  // the cohort sequentially on the calling thread). Results are
  // bit-identical for any pool size: sampling draws stay sequential and
  // updates are reduced in sampling (= client-id) order — see DESIGN.md
  // §7 for the determinism argument.
  runtime::ThreadPool* pool = nullptr;
};

// Why an update was quarantined instead of aggregated.
enum class RejectReason { non_finite, dim_mismatch, norm_exceeded };

const char* reject_reason_name(RejectReason reason);

struct RoundTelemetry {
  std::size_t round = 0;
  // Ids of the clients whose updates were ACCEPTED into the aggregate.
  // Clients that were sampled but dropped out or were quarantined appear
  // in dropped_ids / rejected_ids instead, so the three vectors below
  // stay parallel and every retained update is well-formed.
  std::vector<std::size_t> sampled_ids;
  // The accepted updates of the round (pseudo-gradients), in sampling
  // order; straggler weights already damped.
  std::vector<ClientUpdate> updates;
  // Flags parallel to `updates`.
  std::vector<bool> compromised;
  // The aggregated pseudo-gradient actually applied (zeros when the round
  // was skipped).
  tensor::FlatVec aggregated;

  // Fault accounting (fl/faults.h). Sampled cohort size is
  // sampled_ids.size() + dropped_ids.size() + rejected_ids.size().
  std::vector<std::size_t> dropped_ids;
  std::vector<std::size_t> rejected_ids;
  // Parallel to rejected_ids.
  std::vector<RejectReason> reject_reasons;
  // Count of accepted updates that arrived stale (weight-damped).
  std::size_t n_stragglers = 0;
  // True when the whole cohort failed and the global model was left
  // untouched this round.
  bool aggregate_skipped = false;

  // Wall-clock of the whole round and of the client-training dispatch
  // alone (the part the thread pool parallelizes), in milliseconds.
  // Timing is observability, not state: it is not checkpointed and never
  // feeds back into the protocol.
  double wall_ms = 0.0;
  double train_ms = 0.0;
  // Clients that computed an update this round (accepted + quarantined;
  // dropouts never compute) divided by train_ms — the throughput number
  // bench_runtime_scaling sweeps.
  double clients_per_sec = 0.0;
};

class Server {
 public:
  Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
         ServerConfig config, stats::Rng rng);

  // Run one round over the client population. Samples each client
  // independently with probability q (at least one client is always
  // sampled). The sampled cohort's local training is dispatched on
  // config.pool (embarrassingly parallel: clients own their RNG streams
  // and scratch models) and the updates are collected in sampling order,
  // so the aggregate — and every checkpoint derived from it — is
  // bit-identical for any thread count. Every incoming update is
  // validated (dimension, finiteness, optional norm ceiling); failures
  // are quarantined into the telemetry, never thrown — one bad client
  // cannot kill a multi-hour run. When the entire cohort fails the round
  // is skipped with telemetry. Returns the round's telemetry.
  RoundTelemetry run_round(const std::vector<Client*>& clients);

  const tensor::FlatVec& global_params() const { return params_; }
  void set_global_params(tensor::FlatVec p) { params_ = std::move(p); }
  std::size_t round() const { return round_; }
  const Aggregator& aggregator() const { return *agg_; }

  // Checkpoint support: global params, round counter, sampling RNG, and
  // the aggregator's state (noise RNGs), in that order.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  tensor::FlatVec params_;
  std::unique_ptr<Aggregator> agg_;
  ServerConfig config_;
  stats::Rng rng_;
  std::size_t round_ = 0;
};

}  // namespace collapois::fl
