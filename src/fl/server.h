// The federated server: client sampling with probability q, round
// execution delegated to a pluggable round engine (fl/round_engine.h) —
// the synchronous barrier loop the paper evaluates, or the buffered
// asynchronous engine production FL serves traffic with — plus per-round
// telemetry for the angle/distance analyses (Figs. 3, 6, 7).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fl/aggregator.h"
#include "fl/client.h"
#include "fl/population.h"
#include "net/network_model.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace collapois::fl {

class RoundEngine;

// Which round engine drives the server (see fl/round_engine.h):
//  - sync:           one barrier round per run_round call — sample, train,
//                    collect, aggregate. Bit-exact with the pre-engine
//                    code path.
//  - buffered_async: event-driven cycles on the virtual clock — the
//                    server admits updates as they arrive, aggregates
//                    every K arrivals or every T virtual-ms with
//                    staleness-damped weights, and keeps multiple cohorts
//                    in flight. No barrier: stragglers and dropouts
//                    degrade throughput smoothly instead of stalling or
//                    skipping rounds.
enum class RoundEngineKind { sync, buffered_async };

const char* round_engine_name(RoundEngineKind kind);
RoundEngineKind parse_round_engine(const std::string& name);

// Knobs of the buffered-async engine (ignored by sync).
struct AsyncConfig {
  // Aggregate once K updates have been admitted into the buffer
  // (0 disables the K trigger). At least one of k / t_ms must be active.
  std::size_t k = 8;
  // ... or once T virtual milliseconds have passed since the previous
  // aggregation, whichever comes first (0 disables the T trigger).
  double t_ms = 0.0;
  // Discard updates more than this many rounds stale (total staleness:
  // compute-layer straggler lag + rounds spent in the buffer). Discards
  // are accounted as DropReason::stale_discarded.
  std::size_t max_staleness = 8;
};

struct ServerConfig {
  // Server learning rate lambda applied to the aggregated pseudo-gradient.
  double learning_rate = 1.0;
  // Independent per-client sampling probability q (Algorithm 1 line 5).
  double sample_prob = 0.01;
  // Quarantine any update whose L2 norm exceeds this ceiling (0 disables;
  // non-finite and wrong-dimension updates are always quarantined).
  double update_norm_ceiling = 0.0;
  // Worker pool for the client-training dispatch (not owned; nullptr runs
  // the cohort sequentially on the calling thread). Results are
  // bit-identical for any pool size: sampling draws stay sequential and
  // updates are reduced in sampling (= client-id) order — see DESIGN.md
  // §7 for the determinism argument.
  runtime::ThreadPool* pool = nullptr;
  // Simulated transport between clients and server (not owned; nullptr or
  // a disabled config bypasses it entirely — the pre-transport code path,
  // element-exact). When enabled, computed updates cross a faulty network
  // with retries, deadlines and over-provisioned sampling; see DESIGN.md
  // §8 and net/network_model.h.
  net::NetworkModel* net = nullptr;
  // Update codec the server OFFERS on each link when the transport is
  // enabled (DESIGN.md §15); each client masks the offer against its
  // codec_capabilities() and the negotiated codec encodes that link's
  // payload. Identity (the default) keeps the wire format byte-identical
  // to the pre-codec layer. Ignored while the transport is disabled —
  // updates never cross the wire there.
  net::CodecConfig codec;
  // Round engine selection (DESIGN.md §11). `sync` reproduces the
  // pre-engine behavior bit-exactly; `buffered_async` runs the
  // event-driven scheduler with the knobs in `async`.
  RoundEngineKind engine = RoundEngineKind::sync;
  AsyncConfig async;
};

// Why an update was quarantined instead of aggregated.
enum class RejectReason { non_finite, dim_mismatch, norm_exceeded };

const char* reject_reason_name(RejectReason reason);

// Why a sampled client contributed nothing to the round. Every dropped
// client is counted exactly ONCE under exactly one reason, whichever
// layer dropped it:
//  - compute:   the FaultModel dropped it before any update existed
//               (fl/faults.h dropout — the client never reports);
//  - transport: every send attempt was lost/corrupted in flight
//               (retry budget exhausted);
//  - deadline:  the update existed but reached the server after the
//               round deadline (or its backoff schedule passed it) —
//               sync engine only; buffered_async has no round deadline;
//  - excess:    it arrived intact and on time, but after the target
//               cohort had already filled (over-provisioned sampling) —
//               sync engine only;
//  - stale_discarded: it arrived, but older than the async engine's
//               staleness cutoff (AsyncConfig::max_staleness) —
//               buffered_async only.
enum class DropReason { compute, transport, deadline, excess, stale_discarded };

const char* drop_reason_name(DropReason reason);

struct RoundTelemetry {
  std::size_t round = 0;
  // Ids of the clients whose updates were ACCEPTED into the aggregate.
  // Clients that were sampled but dropped out or were quarantined appear
  // in dropped_ids / rejected_ids instead, so the three vectors below
  // stay parallel and every retained update is well-formed.
  std::vector<std::size_t> sampled_ids;
  // The accepted updates of the round (pseudo-gradients), in admission
  // order (sync: sampling order; async: virtual arrival order); staleness
  // weights already damped.
  std::vector<ClientUpdate> updates;
  // Flags parallel to `updates`.
  std::vector<bool> compromised;
  // The aggregated pseudo-gradient actually applied (zeros when the round
  // was skipped).
  tensor::FlatVec aggregated;

  // Fault accounting (fl/faults.h + the transport layer). The invariant
  // cohort_size == sampled_ids.size() + dropped_ids.size() +
  // rejected_ids.size() holds every round: each client lands in exactly
  // one bucket. Under the sync engine, cohort_size is the sampled cohort
  // (over-provisioned extras included) and every fate resolves within the
  // round. Under buffered_async a sampled client's fate may resolve in a
  // LATER cycle (its update is still in flight); cohort_size counts the
  // fates RESOLVED this cycle, so the invariant holds per cycle and
  // n_dispatched below carries the launch count.
  std::vector<std::size_t> dropped_ids;
  // Parallel to dropped_ids: which layer dropped the client.
  std::vector<DropReason> drop_reasons;
  std::vector<std::size_t> rejected_ids;
  // Parallel to rejected_ids.
  std::vector<RejectReason> reject_reasons;
  // Sync: size of the sampled cohort, over-provisioned extras included.
  // Async: number of client fates resolved this cycle (see above).
  std::size_t cohort_size = 0;
  // Message-level transport counters and arrival-time quantiles for the
  // round (all zero when the transport layer is disabled).
  net::TransportStats transport;
  // Count of accepted updates that arrived stale (weight-damped).
  std::size_t n_stragglers = 0;
  // True when no update was aggregated and the global model was left
  // untouched this round/cycle.
  bool aggregate_skipped = false;

  // Buffered-async accounting (zero / empty under the sync engine except
  // n_dispatched, which sync sets to the sampled cohort size):
  // clients sampled and launched this cycle.
  std::size_t n_dispatched = 0;
  // Updates still in flight in the buffer after this cycle's aggregation.
  std::size_t n_buffered = 0;
  // The engine's virtual clock after the cycle, in virtual ms.
  double virtual_now_ms = 0.0;
  // Per-aggregation staleness histogram: staleness_hist[s] counts the
  // admitted updates that were exactly s rounds stale (compute lag +
  // buffer lag). Sync rounds leave it empty.
  std::vector<std::size_t> staleness_hist;

  // Wall-clock of the whole round and of the client-training dispatch
  // alone (the part the thread pool parallelizes), in milliseconds.
  // Timing is observability, not state: it is not checkpointed and never
  // feeds back into the protocol.
  double wall_ms = 0.0;
  double train_ms = 0.0;
  // Wall-clock of the server-side aggregation call alone (the defense hot
  // path bench_defense_throughput measures); 0 when the round was skipped
  // before aggregating.
  double agg_ms = 0.0;
  // Clients that computed an update this round (accepted + quarantined;
  // dropouts never compute) divided by train_ms — the throughput number
  // bench_runtime_scaling sweeps.
  double clients_per_sec = 0.0;

  // Scale-out observability (DESIGN.md §12): the process's peak resident
  // set in bytes (runtime::peak_rss_bytes; 0 where /proc is unavailable)
  // and the number of clients instantiated in the population after this
  // round — equal to the population size for eager populations, the
  // distinct-participant count for lazy ones. Like the timing fields,
  // these are observability, not state: never checkpointed.
  std::size_t peak_rss_bytes = 0;
  std::size_t n_materialized = 0;

  // Infrastructure fault accounting (DESIGN.md §13): shard failures,
  // retries and failovers inside the aggregation tree, drained from the
  // aggregator right after the round's aggregate() call. All-zero when
  // no shard faults are configured.
  InfraStats infra;
};

class Server {
 public:
  Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
         ServerConfig config, stats::Rng rng);
  ~Server();

  // Execute one round (sync) or one buffered-async cycle by delegating to
  // the configured round engine — see fl/round_engine.h for the exact
  // semantics of each mode. Common guarantees, either mode:
  //  - sampling draws stay sequential in client order, so the sampling
  //    stream is part of the checkpointable state and independent of the
  //    thread pool;
  //  - the sampled cohort's local training is dispatched on config.pool
  //    (embarrassingly parallel: clients own their RNG streams and
  //    scratch models) and results are collected by sampling index, so
  //    the aggregate — and every checkpoint derived from it — is
  //    bit-identical for any thread count;
  //  - every incoming update is validated (dimension, finiteness,
  //    optional norm ceiling); failures are quarantined into the
  //    telemetry, never thrown — one bad client cannot kill a multi-hour
  //    run. When nothing is aggregated the round is skipped with
  //    telemetry.
  RoundTelemetry run_round(const std::vector<Client*>& clients);

  // Same round semantics against any client population — lazy ones
  // materialize exactly the clients the round samples. The pointer-vector
  // overload above is a thin adapter over this one.
  RoundTelemetry run_round(ClientPopulation& population);

  const tensor::FlatVec& global_params() const { return params_; }
  void set_global_params(tensor::FlatVec p) { params_ = std::move(p); }
  std::size_t round() const { return round_; }
  const Aggregator& aggregator() const { return *agg_; }
  const ServerConfig& config() const { return config_; }

  // Checkpoint support: global params, round counter, sampling RNG, the
  // aggregator's state (noise RNGs), then the engine's private state, in
  // that order. The sync engine serializes nothing, so sync-mode blobs
  // are byte-identical with the pre-engine format; buffered_async
  // serializes its virtual clock and the in-flight buffer, so a
  // checkpoint can land MID-BUFFER and resume bit-exactly.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  friend class RoundEngine;  // engines reach server state via the base class

  tensor::FlatVec params_;
  std::unique_ptr<Aggregator> agg_;
  ServerConfig config_;
  stats::Rng rng_;
  std::size_t round_ = 0;
  std::unique_ptr<RoundEngine> engine_;
};

}  // namespace collapois::fl
