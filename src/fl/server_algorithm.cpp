#include "fl/server_algorithm.h"

#include <stdexcept>

namespace collapois::fl {

ServerAlgorithm::ServerAlgorithm(std::string name,
                                 tensor::FlatVec initial_params,
                                 std::unique_ptr<Aggregator> agg,
                                 ServerConfig config,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 stats::Rng rng)
    : ServerAlgorithm(
          std::move(name), std::move(initial_params), std::move(agg), config,
          std::make_unique<OwningClientPopulation>(std::move(clients)),
          std::move(rng)) {}

ServerAlgorithm::ServerAlgorithm(std::string name,
                                 tensor::FlatVec initial_params,
                                 std::unique_ptr<Aggregator> agg,
                                 ServerConfig config,
                                 std::unique_ptr<ClientPopulation> population,
                                 stats::Rng rng)
    : name_(std::move(name)),
      population_(std::move(population)),
      server_(std::move(initial_params), std::move(agg), config,
              std::move(rng)) {
  if (!population_) {
    throw std::invalid_argument("ServerAlgorithm: null population");
  }
  if (population_->size() == 0) {
    throw std::invalid_argument("ServerAlgorithm: no clients");
  }
}

RoundTelemetry ServerAlgorithm::run_round() {
  return server_.run_round(*population_);
}

tensor::FlatVec ServerAlgorithm::global_params() const {
  return server_.global_params();
}

tensor::FlatVec ServerAlgorithm::client_eval_params(
    std::size_t client_index) {
  return population_->client(client_index)
      .eval_params(server_.global_params());
}

void ServerAlgorithm::save_state(StateWriter& w) const {
  server_.save_state(w);
  population_->save_state(w);
}

void ServerAlgorithm::load_state(StateReader& r) {
  server_.load_state(r);
  population_->load_state(r);
}

}  // namespace collapois::fl
