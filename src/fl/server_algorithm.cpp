#include "fl/server_algorithm.h"

#include <stdexcept>

namespace collapois::fl {

ServerAlgorithm::ServerAlgorithm(std::string name,
                                 tensor::FlatVec initial_params,
                                 std::unique_ptr<Aggregator> agg,
                                 ServerConfig config,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 stats::Rng rng)
    : name_(std::move(name)),
      clients_(std::move(clients)),
      server_(std::move(initial_params), std::move(agg), config,
              std::move(rng)) {
  if (clients_.empty()) {
    throw std::invalid_argument("ServerAlgorithm: no clients");
  }
  raw_clients_.reserve(clients_.size());
  for (auto& c : clients_) {
    if (!c) throw std::invalid_argument("ServerAlgorithm: null client");
    raw_clients_.push_back(c.get());
  }
}

RoundTelemetry ServerAlgorithm::run_round() {
  return server_.run_round(raw_clients_);
}

tensor::FlatVec ServerAlgorithm::global_params() const {
  return server_.global_params();
}

tensor::FlatVec ServerAlgorithm::client_eval_params(
    std::size_t client_index) {
  return clients_.at(client_index)->eval_params(server_.global_params());
}

void ServerAlgorithm::save_state(StateWriter& w) const {
  server_.save_state(w);
  w.write_size(clients_.size());
  for (const auto& c : clients_) c->save_state(w);
}

void ServerAlgorithm::load_state(StateReader& r) {
  server_.load_state(r);
  const std::size_t n = r.read_size();
  if (n != clients_.size()) {
    throw std::runtime_error(
        "ServerAlgorithm::load_state: client count mismatch");
  }
  for (auto& c : clients_) c->load_state(r);
}

}  // namespace collapois::fl
