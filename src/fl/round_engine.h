// Round engines: the event-driven schedulers that drive Server::run_round.
//
// The synchronous round loop the paper evaluates is one instantiation of
// a more general scheduler; production cross-device FL ("Back to the
// Drawing Board", Bonawitz et al.) runs the OTHER one — a buffered
// asynchronous server that admits updates continuously and aggregates
// whatever arrived, degrading gracefully instead of stalling on
// stragglers. Both are implemented here against the same server state:
//
//  - SyncRoundEngine: the barrier loop, moved verbatim from the old
//    Server::run_round. Sample -> train -> (transport) -> validate ->
//    aggregate, one cohort per round, every fate resolved before the
//    round ends. Bit-exact with the pre-engine code path, serializes no
//    private state.
//
//  - BufferedAsyncRoundEngine: one CYCLE per run_round call on the
//    virtual clock (net/event_queue.h).
//      1. sample a cohort (same sequential Bernoulli draws as sync) and
//         train it in parallel against the CURRENT global model;
//      2. push each computed update through the transport; deliveries
//         are enqueued as future events at (dispatch time + delivery
//         latency) — dropouts and exhausted retries resolve immediately;
//      3. drain the buffer in (virtual arrival time, launch round,
//         sampling index) order, admitting updates until K have been
//         admitted or the aggregation deadline (previous aggregation +
//         T virtual-ms) passes — whichever trigger fires first
//         (AsyncConfig); updates left in the buffer stay in flight into
//         later cycles, so cohorts overlap;
//      4. weight each admitted update by the staleness-damping rule
//         generalized from the quarantine machinery (fl/faults.h):
//         weight /= 1 + total_staleness, where total staleness = compute
//         straggler lag + rounds spent in the buffer. Updates staler
//         than AsyncConfig::max_staleness are discarded
//         (DropReason::stale_discarded);
//      5. aggregate and apply; an empty admission set skips the model
//         update but still advances the clock — churn degrades
//         throughput smoothly, it never wedges the experiment.
//    The engine has no round deadline (a late update is damped or
//    discarded by staleness, not raced against a barrier), so the
//    transport's deadline_ms is neutralized; over-provisioned sampling
//    is likewise a barrier-world concept and is not applied.
//
// Determinism: sampling draws are sequential; training results are
// collected by sampling index; arrivals are ordered by the total key
// (virtual time, launch round, sampling index). Every admission sequence
// is therefore a pure function of the experiment config — bit-identical
// across thread counts — and the buffer serializes in key order, so a
// checkpoint can land mid-buffer and resume exactly (DESIGN.md §11).
#pragma once

#include <memory>
#include <vector>

#include "fl/server.h"
#include "net/event_queue.h"

namespace collapois::fl {

class RoundEngine {
 public:
  virtual ~RoundEngine() = default;

  // Execute one round (sync) / one cycle (buffered_async) against the
  // server's state and population. Engines only touch clients the round
  // actually samples, so lazy populations stay lazy.
  virtual RoundTelemetry run_round(Server& server, ClientPopulation& pop) = 0;

  virtual const char* name() const = 0;

  // Engine-private mutable state (the async buffer and virtual clock);
  // the sync engine writes nothing, keeping sync checkpoints
  // byte-identical with the pre-engine format.
  virtual void save_state(StateWriter& w) const = 0;
  virtual void load_state(StateReader& r) = 0;

 protected:
  // Engines are the only callers allowed inside the server; access is
  // funneled through these so Server befriends exactly one type.
  static tensor::FlatVec& params(Server& s) { return s.params_; }
  static Aggregator& aggregator(Server& s) { return *s.agg_; }
  static const ServerConfig& config(const Server& s) { return s.config_; }
  static stats::Rng& rng(Server& s) { return s.rng_; }
  static std::size_t& round(Server& s) { return s.round_; }
};

// The barrier loop (pre-engine behavior, bit-exact).
class SyncRoundEngine final : public RoundEngine {
 public:
  RoundTelemetry run_round(Server& server, ClientPopulation& pop) override;
  const char* name() const override { return "sync"; }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;
};

// The buffered asynchronous scheduler described above.
class BufferedAsyncRoundEngine final : public RoundEngine {
 public:
  // Validates the knobs: at least one of k / t_ms must be an active
  // trigger, t_ms finite and non-negative.
  explicit BufferedAsyncRoundEngine(AsyncConfig async);

  RoundTelemetry run_round(Server& server, ClientPopulation& pop) override;
  const char* name() const override { return "buffered_async"; }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  // Observability for tests: pending in-flight updates and the clock.
  std::size_t buffered() const { return buffer_.size(); }
  double virtual_now_ms() const { return clock_.now_ms; }

 private:
  // One in-flight update: the population index locates the client (for
  // the compromised flag at admission), the launch round dates the model
  // it was computed against, and the update is the decoded wire copy.
  struct Pending {
    std::size_t client_index = 0;
    ClientUpdate update;
  };

  // Deadline-free twin of the server's network model, built lazily from
  // its config: transmit() is a pure function of (config, client, round,
  // attempt), so decisions — loss, corruption, latency — are IDENTICAL to
  // the sync engine's; only the round-deadline cut is neutralized (the
  // async engine has no round to close; staleness governs instead).
  const net::NetworkModel* relaxed_net(const Server& s);

  AsyncConfig async_;
  net::VirtualClock clock_;
  double last_agg_ms_ = 0.0;
  net::EventQueue<Pending> buffer_;
  std::unique_ptr<net::NetworkModel> relaxed_net_;
};

// Factory used by the Server constructor.
std::unique_ptr<RoundEngine> make_round_engine(RoundEngineKind kind,
                                               const AsyncConfig& async);

}  // namespace collapois::fl
