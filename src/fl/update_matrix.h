// The round's accepted client updates as one dense row-major [n x d]
// matrix, assembled once per aggregation from the ClientUpdate list.
//
// Every server-side defense is linear algebra over this matrix: the
// distance-based rules (Krum, FLARE) need A * A^T for the Gram-identity
// pairwise distances, and the coordinate-wise rules (median, trimmed
// mean, RLR, SignSGD) need contiguous column tiles. Packing the updates
// into one contiguous buffer costs a single O(n d) copy and buys both:
// GEMM-able storage plus cache-friendly tile transposes, instead of the
// per-pair scalar loops and per-coordinate strided gathers across n
// separate heap vectors the defenses used to do (see DESIGN.md §10).
//
// Row squared norms are precomputed with double accumulation — they feed
// the Gram identity ||a_i - a_j||^2 = ||a_i||^2 + ||a_j||^2 - 2 G_ij.
//
// The matrix is reusable across rounds: pack() keeps the backing buffers
// (vector::resize never shrinks capacity), and reserve() pre-sizes them
// from a row-capacity hint so steady-state aggregation does zero heap
// allocations. pack_columns() packs only a [col_begin, col_end) column
// slice — the shard tree (DESIGN.md §12) uses it to run coordinate-wise
// defenses over column ranges without materializing the full n x d
// buffer per shard.
#pragma once

#include <span>
#include <vector>

#include "fl/update.h"

namespace collapois::fl {

class UpdateMatrix {
 public:
  UpdateMatrix() = default;

  // Packs updates[i].delta into row i. Throws if the list is empty or the
  // deltas disagree in dimension (the server validates upstream; direct
  // users get the same loud failure).
  explicit UpdateMatrix(const std::vector<ClientUpdate>& updates);

  // Pre-sizes the backing buffers for `rows` updates of dimension `cols`
  // so later pack() calls at or under that shape allocate nothing.
  void reserve(std::size_t rows, std::size_t cols);

  // Re-packs the matrix in place, reusing the existing capacity. Same
  // validation and resulting state as the packing constructor.
  void pack(const std::vector<ClientUpdate>& updates);

  // Packs only columns [col_begin, col_end) of each update: the result is
  // an [n x (col_end - col_begin)] matrix whose column j holds original
  // coordinate col_begin + j. Row sqnorms are over the slice. Throws on
  // an empty list, a dimension mismatch, or an invalid column range.
  void pack_columns(const std::vector<ClientUpdate>& updates,
                    std::size_t col_begin, std::size_t col_end);

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return d_; }

  // Contiguous row-major [rows x cols] storage.
  const float* data() const { return data_.data(); }
  std::span<const float> row(std::size_t i) const {
    return {data_.data() + i * d_, d_};
  }

  // Double-accumulated ||row i||^2.
  double row_sqnorm(std::size_t i) const { return sqnorm_[i]; }
  const std::vector<double>& row_sqnorms() const { return sqnorm_; }

 private:
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::vector<float> data_;
  std::vector<double> sqnorm_;
};

}  // namespace collapois::fl
