// Uniform facade over the three federated training algorithms evaluated
// in the paper (FedAvg, FedDC, MetaFed) so experiments, metrics, and
// benches can run any of them interchangeably.
#pragma once

#include <string>

#include "fl/server.h"

namespace collapois::fl {

class FlAlgorithm {
 public:
  virtual ~FlAlgorithm() = default;

  // Execute one training round and return its telemetry. For protocols
  // without a central aggregate (MetaFed) `updates` is empty.
  virtual RoundTelemetry run_round() = 0;

  // Current global model (for MetaFed: the mean of personal models, used
  // only for reporting).
  virtual tensor::FlatVec global_params() const = 0;

  // The parameters client `client_index` serves predictions with.
  // Concurrency contract: calls for DISTINCT indices may run in parallel
  // (the evaluation sweep in metrics/client_metrics.cpp does exactly
  // that); implementations may mutate only the addressed client's own
  // state and must read shared state (the global model) without writing
  // it. PFL personalization trains off the addressed client's private
  // RNG stream, so per-client results are unaffected by scheduling.
  virtual tensor::FlatVec client_eval_params(std::size_t client_index) = 0;

  virtual std::size_t num_clients() const = 0;
  virtual std::string name() const = 0;

  // Checkpoint support: serialize every piece of state the round loop
  // mutates (server params/round/RNG, aggregator noise RNGs, per-client
  // RNGs and drift variables; MetaFed's personal models). load_state
  // assumes the algorithm was reconstructed identically (same config,
  // same construction-time seeds) and only restores the mutable state.
  virtual void save_state(StateWriter& w) const = 0;
  virtual void load_state(StateReader& r) = 0;
};

}  // namespace collapois::fl
