#include "fl/update_matrix.h"

#include <cstring>
#include <stdexcept>

namespace collapois::fl {

UpdateMatrix::UpdateMatrix(const std::vector<ClientUpdate>& updates) {
  pack(updates);
}

void UpdateMatrix::reserve(std::size_t rows, std::size_t cols) {
  data_.reserve(rows * cols);
  sqnorm_.reserve(rows);
}

void UpdateMatrix::pack(const std::vector<ClientUpdate>& updates) {
  if (updates.empty()) {
    throw std::invalid_argument("UpdateMatrix: no updates");
  }
  pack_columns(updates, 0, updates.front().delta.size());
}

void UpdateMatrix::pack_columns(const std::vector<ClientUpdate>& updates,
                                std::size_t col_begin, std::size_t col_end) {
  if (updates.empty()) {
    throw std::invalid_argument("UpdateMatrix: no updates");
  }
  const std::size_t full_d = updates.front().delta.size();
  if (col_begin > col_end || col_end > full_d) {
    throw std::invalid_argument("UpdateMatrix: invalid column range");
  }
  n_ = updates.size();
  d_ = col_end - col_begin;
  data_.resize(n_ * d_);
  sqnorm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto& delta = updates[i].delta;
    if (delta.size() != full_d) {
      throw std::invalid_argument("UpdateMatrix: dimension mismatch");
    }
    if (d_ > 0) {
      std::memcpy(data_.data() + i * d_, delta.data() + col_begin,
                  d_ * sizeof(float));
    }
    double s = 0.0;
    for (std::size_t j = col_begin; j < col_end; ++j) {
      const double x = delta[j];
      s += x * x;
    }
    sqnorm_[i] = s;
  }
}

}  // namespace collapois::fl
