#include "fl/update_matrix.h"

#include <cstring>
#include <stdexcept>

namespace collapois::fl {

UpdateMatrix::UpdateMatrix(const std::vector<ClientUpdate>& updates) {
  if (updates.empty()) {
    throw std::invalid_argument("UpdateMatrix: no updates");
  }
  n_ = updates.size();
  d_ = updates.front().delta.size();
  data_.resize(n_ * d_);
  sqnorm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto& delta = updates[i].delta;
    if (delta.size() != d_) {
      throw std::invalid_argument("UpdateMatrix: dimension mismatch");
    }
    if (d_ > 0) {
      std::memcpy(data_.data() + i * d_, delta.data(), d_ * sizeof(float));
    }
    double s = 0.0;
    for (float x : delta) s += static_cast<double>(x) * static_cast<double>(x);
    sqnorm_[i] = s;
  }
}

}  // namespace collapois::fl
