#include "fl/client.h"

#include <stdexcept>

namespace collapois::fl {

BenignClient::BenignClient(std::size_t id, const data::Dataset* train,
                           nn::Model model, nn::SgdConfig sgd,
                           double distill_weight, stats::Rng rng)
    : id_(id),
      train_(train),
      model_(std::move(model)),
      sgd_(sgd),
      distill_weight_(distill_weight),
      rng_(rng) {
  if (train_ == nullptr || train_->empty()) {
    throw std::invalid_argument("BenignClient: empty training data");
  }
}

ClientUpdate BenignClient::compute_update(const RoundContext& ctx) {
  model_.set_parameters(ctx.global);
  nn::train_sgd(model_, *train_, sgd_, rng_);
  ClientUpdate u;
  u.client_id = id_;
  u.delta = tensor::sub(ctx.global, model_.get_parameters());
  u.weight = 1.0;
  return u;
}

void BenignClient::save_state(StateWriter& w) const { w.write_rng(rng_); }

void BenignClient::load_state(StateReader& r) { r.read_rng(rng_); }

void BenignClient::distill_round(nn::Model& personal, nn::Model& teacher) {
  // MetaFed's cyclic knowledge transfer: the common knowledge arrives
  // through the teacher's *parameters* (the student warm-starts from
  // them), and personalization is preserved by distilling toward the
  // client's previous personal model while fine-tuning on local data.
  nn::Model previous = personal;
  personal.set_parameters(teacher.get_parameters());
  nn::train_sgd_distill(personal, previous, distill_weight_, *train_, sgd_,
                        rng_);
}

FedDcClient::FedDcClient(std::size_t id, const data::Dataset* train,
                         nn::Model model, nn::SgdConfig sgd,
                         double drift_penalty, double distill_weight,
                         stats::Rng rng)
    : BenignClient(id, train, std::move(model), sgd, distill_weight,
                   std::move(rng)),
      drift_penalty_(drift_penalty) {}

ClientUpdate FedDcClient::compute_update(const RoundContext& ctx) {
  auto& model = scratch_model();
  if (drift_.empty()) drift_ = tensor::zeros(ctx.global.size());
  if (drift_.size() != ctx.global.size()) {
    throw std::invalid_argument("FedDcClient: model size changed");
  }

  // Local drift-corrected objective: pull theta_i toward theta^t - h_i.
  tensor::FlatVec anchor(ctx.global.begin(), ctx.global.end());
  tensor::axpy_inplace(anchor, -1.0, drift_);

  model.set_parameters(ctx.global);
  nn::train_sgd_proximal(model, anchor, drift_penalty_, train_data(),
                         sgd_config(), rng());
  const tensor::FlatVec personal = model.get_parameters();

  // Drift correction with damping: h_i <- (1-m) h_i + m (theta_i -
  // theta^t). Plain accumulation makes h_i grow without bound when the
  // proximal penalty is mild (local optima stay offset from the global
  // model every round); the exponential average keeps h_i at the scale of
  // the true local drift, which is FedDC's intent.
  constexpr double kDriftMomentum = 0.5;
  tensor::FlatVec local_shift = tensor::sub(personal, ctx.global);
  tensor::scale_inplace(drift_, 1.0 - kDriftMomentum);
  tensor::axpy_inplace(drift_, kDriftMomentum, local_shift);

  // Transmit the drift-corrected update so the server tracks
  // mean(theta_i + h_i): g = theta^t - (theta_i + h_i).
  ClientUpdate u;
  u.client_id = id();
  tensor::FlatVec corrected = personal;
  tensor::axpy_inplace(corrected, 1.0, drift_);
  u.delta = tensor::sub(ctx.global, corrected);
  u.weight = 1.0;
  return u;
}

void FedDcClient::save_state(StateWriter& w) const {
  BenignClient::save_state(w);
  w.write_floats(drift_);
}

void FedDcClient::load_state(StateReader& r) {
  BenignClient::load_state(r);
  drift_ = r.read_floats();
}

tensor::FlatVec FedDcClient::eval_params(std::span<const float> global) {
  auto& model = scratch_model();
  model.set_parameters(global);
  if (drift_.empty()) drift_ = tensor::zeros(global.size());
  tensor::FlatVec anchor(global.begin(), global.end());
  tensor::axpy_inplace(anchor, -1.0, drift_);
  nn::train_sgd_proximal(model, anchor, drift_penalty_, train_data(),
                         sgd_config(), rng());
  return model.get_parameters();
}

}  // namespace collapois::fl
