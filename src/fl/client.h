// Client roles in the federated protocol.
//
// A Client serves two protocols:
//  - server-mediated rounds (FedAvg, FedDC): compute_update() maps the
//    broadcast global model to a pseudo-gradient;
//  - cyclic knowledge distillation (MetaFed): distill_round() refreshes the
//    client's personal model given the predecessor's (teacher) model.
//
// Attack clients (attacks/, core/) override these to inject malicious
// behaviour; is_compromised() lets the telemetry and metrics layers
// separate the populations — the simulator's server never reads it.
//
// Concurrency contract (runtime/thread_pool.h): the round loop calls
// compute_update() on DISTINCT clients concurrently, and the evaluation
// sweep does the same with eval_params(). Implementations may therefore
// mutate only state owned by this client instance (its scratch model,
// its RNG stream, its drift variables); anything shared across clients —
// the broadcast ctx.global span, the training Dataset, a trigger, the
// shared Trojaned model X — must be treated as read-only for the duration
// of the call. State shared intentionally (the FaultModel's stale-model
// cache) synchronizes internally. No client is ever called concurrently
// with itself.
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "fl/state.h"
#include "net/codec.h"
#include "fl/update.h"
#include "nn/model.h"
#include "nn/sgd.h"
#include "stats/rng.h"

namespace collapois::fl {

class Client {
 public:
  virtual ~Client() = default;

  virtual std::size_t id() const = 0;
  virtual bool is_compromised() const { return false; }

  // Update-codec capability bitmask (net/codec.h) for the per-link
  // handshake: the server offers its configured codec and this client
  // masks it against what it speaks; identity is always in the mask (it
  // is the raw wire format). Override to model constrained devices.
  virtual std::uint32_t codec_capabilities() const {
    return net::codec_capability_all();
  }

  // Server-mediated round: produce the pseudo-gradient for theta^t.
  virtual ClientUpdate compute_update(const RoundContext& ctx) = 0;

  // Parameters of the model this client actually serves predictions with
  // (the personalized model theta_i for PFL algorithms; the global model
  // otherwise). PFL clients personalize from the *current* global model,
  // so this may train — hence non-const.
  virtual tensor::FlatVec eval_params(std::span<const float> global) {
    return tensor::FlatVec(global.begin(), global.end());
  }

  // MetaFed-style round: update `personal` using `teacher` as the source
  // of common knowledge.
  virtual void distill_round(nn::Model& personal, nn::Model& teacher) = 0;

  // Checkpoint support: serialize exactly the state that evolves across
  // rounds (local RNG streams, drift variables). Scratch models reset
  // from the broadcast globals each round are NOT state. Writer and
  // reader must mirror each other field-for-field.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}
};

// A legitimate participant: K local epochs of mini-batch SGD from the
// broadcast model (Algorithm 1, lines 7-10).
class BenignClient : public Client {
 public:
  BenignClient(std::size_t id, const data::Dataset* train, nn::Model model,
               nn::SgdConfig sgd, double distill_weight, stats::Rng rng);

  std::size_t id() const override { return id_; }
  ClientUpdate compute_update(const RoundContext& ctx) override;
  void distill_round(nn::Model& personal, nn::Model& teacher) override;
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 protected:
  // Per-instance mutable state (scratch model, RNG stream) is safe to
  // touch from compute_update()/eval_params() under the concurrency
  // contract above; the dataset is shared and stays const.
  const data::Dataset& train_data() const { return *train_; }
  nn::Model& scratch_model() { return model_; }
  const nn::SgdConfig& sgd_config() const { return sgd_; }
  stats::Rng& rng() { return rng_; }

 private:
  std::size_t id_;
  const data::Dataset* train_;
  nn::Model model_;
  nn::SgdConfig sgd_;
  double distill_weight_;
  stats::Rng rng_;
};

// FedDC participant: local drift decoupling and correction (Gao et al.,
// CVPR'22). The client keeps a drift variable h_i and a personal model
// theta_i; local training pulls theta_i toward (theta^t - h_i) and the
// update transmitted to the server is corrected by the accumulated drift,
// so the aggregate tracks mean(theta_i + h_i).
class FedDcClient : public BenignClient {
 public:
  FedDcClient(std::size_t id, const data::Dataset* train, nn::Model model,
              nn::SgdConfig sgd, double drift_penalty, double distill_weight,
              stats::Rng rng);

  ClientUpdate compute_update(const RoundContext& ctx) override;

  // Personalize from the current global model: one drift-corrected local
  // pass (the standard PFL evaluation protocol — a client's serving model
  // is derived from the latest global, not a stale snapshot).
  tensor::FlatVec eval_params(std::span<const float> global) override;

  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  double drift_penalty_;
  tensor::FlatVec drift_;  // h_i
};

}  // namespace collapois::fl
