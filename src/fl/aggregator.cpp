#include "fl/aggregator.h"

#include <stdexcept>

namespace collapois::fl {

namespace {

// The FedAvg fold state: running weighted sum + running weight total.
struct FedAvgStream final : ShardStream {
  explicit FedAvgStream(std::size_t dim) : acc(tensor::zeros(dim)) {}
  tensor::FlatVec acc;
  double weight_sum = 0.0;
};

}  // namespace

std::unique_ptr<ShardStream> FedAvgAggregator::stream_begin(std::size_t dim) {
  return std::make_unique<FedAvgStream>(dim);
}

void FedAvgAggregator::stream_absorb(ShardStream& stream,
                                     const std::vector<ClientUpdate>& updates,
                                     std::size_t row_begin, std::size_t row_end,
                                     std::span<const float> /*global*/,
                                     runtime::ThreadPool* /*pool*/) {
  auto& s = static_cast<FedAvgStream&>(stream);
  const std::size_t dim = s.acc.size();
  // Accumulate directly over the updates — no per-update deep copies.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const auto& u = updates[i];
    if (u.delta.size() != dim) {
      throw std::invalid_argument("FedAvgAggregator: dimension mismatch");
    }
    tensor::axpy_inplace(s.acc, u.weight, u.delta);
    s.weight_sum += u.weight;
  }
}

tensor::FlatVec FedAvgAggregator::stream_finish(
    ShardStream& stream, std::span<const float> /*global*/) {
  auto& s = static_cast<FedAvgStream&>(stream);
  if (s.weight_sum <= 0.0) {
    throw std::invalid_argument("FedAvgAggregator: non-positive weight sum");
  }
  tensor::scale_inplace(s.acc, 1.0 / s.weight_sum);
  return std::move(s.acc);
}

tensor::FlatVec FedAvgAggregator::do_aggregate(
    const std::vector<ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  if (updates.empty()) {
    throw std::invalid_argument("FedAvgAggregator: no updates");
  }
  // Flat path == one-shard streaming path by construction: the same fold
  // over the same admission order.
  auto stream = stream_begin(updates.front().delta.size());
  stream_absorb(*stream, updates, 0, updates.size(), global, pool);
  return stream_finish(*stream, global);
}

}  // namespace collapois::fl
