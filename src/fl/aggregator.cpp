#include "fl/aggregator.h"

#include <stdexcept>

namespace collapois::fl {

tensor::FlatVec FedAvgAggregator::do_aggregate(
    const std::vector<ClientUpdate>& updates, std::span<const float> /*global*/,
    runtime::ThreadPool* /*pool*/) {
  if (updates.empty()) {
    throw std::invalid_argument("FedAvgAggregator: no updates");
  }
  // Accumulate directly over the updates — no per-update deep copies.
  const std::size_t dim = updates.front().delta.size();
  tensor::FlatVec acc = tensor::zeros(dim);
  double weight_sum = 0.0;
  for (const auto& u : updates) {
    if (u.delta.size() != dim) {
      throw std::invalid_argument("FedAvgAggregator: dimension mismatch");
    }
    tensor::axpy_inplace(acc, u.weight, u.delta);
    weight_sum += u.weight;
  }
  if (weight_sum <= 0.0) {
    throw std::invalid_argument("FedAvgAggregator: non-positive weight sum");
  }
  tensor::scale_inplace(acc, 1.0 / weight_sum);
  return acc;
}

}  // namespace collapois::fl
