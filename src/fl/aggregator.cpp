#include "fl/aggregator.h"

#include <stdexcept>

namespace collapois::fl {

tensor::FlatVec FedAvgAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    std::span<const float> /*global*/) {
  if (updates.empty()) {
    throw std::invalid_argument("FedAvgAggregator: no updates");
  }
  std::vector<tensor::FlatVec> deltas;
  std::vector<double> weights;
  deltas.reserve(updates.size());
  weights.reserve(updates.size());
  for (const auto& u : updates) {
    deltas.push_back(u.delta);
    weights.push_back(u.weight);
  }
  return tensor::weighted_mean_of(deltas, weights);
}

}  // namespace collapois::fl
