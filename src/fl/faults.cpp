#include "fl/faults.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace collapois::fl {

namespace {

std::uint64_t splitmix64_once(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Counter-based uniform in [0, 1) for the (seed, client, round, lane)
// cell; `lane` separates the fault draw from the corruption-kind draw.
double cell_uniform(std::uint64_t seed, std::size_t client_id,
                    std::size_t round, std::uint64_t lane) {
  std::uint64_t h = splitmix64_once(seed ^ (0x9e3779b97f4a7c15ULL * lane));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(client_id));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(round));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::none: return "none";
    case FaultKind::dropout: return "dropout";
    case FaultKind::straggler: return "straggler";
    case FaultKind::corrupt_nan: return "corrupt-nan";
    case FaultKind::corrupt_inf: return "corrupt-inf";
    case FaultKind::corrupt_truncate: return "corrupt-truncate";
    case FaultKind::corrupt_blowup: return "corrupt-blowup";
  }
  return "unknown";
}

bool FaultConfig::any() const {
  return dropout_prob > 0.0 || straggler_prob > 0.0 || corrupt_prob > 0.0 ||
         !pinned.empty();
}

FaultModel::FaultModel(FaultConfig config) : config_(std::move(config)) {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
      throw std::invalid_argument(std::string("FaultModel: ") + name +
                                  " must be in [0, 1]");
    }
  };
  check_prob(config_.dropout_prob, "dropout_prob");
  check_prob(config_.straggler_prob, "straggler_prob");
  check_prob(config_.corrupt_prob, "corrupt_prob");
  if (config_.dropout_prob + config_.straggler_prob + config_.corrupt_prob >
      1.0) {
    throw std::invalid_argument(
        "FaultModel: fault probabilities must sum to at most 1");
  }
}

FaultKind FaultModel::decide(std::size_t client_id, std::size_t round) const {
  const auto pinned = config_.pinned.find(client_id);
  if (pinned != config_.pinned.end()) return pinned->second;

  const double u = cell_uniform(config_.seed, client_id, round, 1);
  double edge = config_.dropout_prob;
  if (u < edge) return FaultKind::dropout;
  edge += config_.straggler_prob;
  if (u < edge) return FaultKind::straggler;
  edge += config_.corrupt_prob;
  if (u < edge) {
    const double v = cell_uniform(config_.seed, client_id, round, 2);
    if (v < 0.25) return FaultKind::corrupt_nan;
    if (v < 0.50) return FaultKind::corrupt_inf;
    if (v < 0.75) return FaultKind::corrupt_truncate;
    return FaultKind::corrupt_blowup;
  }
  return FaultKind::none;
}

void FaultModel::observe_global(std::size_t round,
                                std::span<const float> global) {
  if (config_.straggler_prob <= 0.0 &&
      config_.pinned.empty()) {
    return;  // nothing will ever read the history
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (round > max_round_seen_) max_round_seen_ = round;
  // Watermark pruning (see faults.h): drop everything strictly older than
  // the deepest lookback any straggler — or any buffered in-flight update
  // — can still reach from the newest round seen. A late observation for
  // a round below the watermark is NOT recorded: it is already
  // unreachable, and inserting it would only recreate the stale entry the
  // watermark just removed.
  const std::size_t window = config_.straggler_staleness + extra_retention_;
  const std::size_t watermark =
      max_round_seen_ > window ? max_round_seen_ - window : 0;
  if (round < watermark) return;
  if (history_.count(round) == 0) {
    history_.emplace(round, tensor::FlatVec(global.begin(), global.end()));
  }
  history_.erase(history_.begin(), history_.lower_bound(watermark));
}

void FaultModel::set_extra_retention(std::size_t rounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  extra_retention_ = rounds;
}

const tensor::FlatVec& FaultModel::stale_global(
    std::size_t round, std::size_t* actual_staleness) const {
  // The returned reference outlives the lock; that is safe because the
  // entry cannot be pruned until the next round's first observe_global(),
  // which the round barrier orders after this reader (see faults.h).
  const std::lock_guard<std::mutex> lock(mu_);
  if (history_.empty()) {
    throw std::logic_error(
        "FaultModel::stale_global: no observed history (observe_global must "
        "run before the straggler path)");
  }
  const std::size_t want =
      round >= config_.straggler_staleness ? round - config_.straggler_staleness
                                           : 0;
  // The newest recorded round <= want; when the history starts later than
  // `want` (early rounds, or a cohort gap), fall back to the oldest entry.
  auto it = history_.upper_bound(want);
  if (it != history_.begin()) --it;
  if (actual_staleness != nullptr) {
    *actual_staleness = round - it->first;
  }
  return it->second;
}

void FaultModel::save_state(StateWriter& w) const {
  const std::lock_guard<std::mutex> lock(mu_);
  w.write_size(history_.size());
  for (const auto& [round, global] : history_) {
    w.write_size(round);
    w.write_floats(global);
  }
}

void FaultModel::load_state(StateReader& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  history_.clear();
  const std::size_t n = r.read_size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t round = r.read_size();
    history_.emplace(round, r.read_floats());
  }
  // The watermark is derived state: re-anchor it to the restored history
  // instead of serializing it, keeping the blob format unchanged.
  max_round_seen_ = history_.empty() ? 0 : history_.rbegin()->first;
}

FaultyClient::FaultyClient(std::unique_ptr<Client> inner,
                           std::shared_ptr<FaultModel> faults)
    : inner_(std::move(inner)), faults_(std::move(faults)) {
  if (!inner_) throw std::invalid_argument("FaultyClient: null inner client");
  if (!faults_) throw std::invalid_argument("FaultyClient: null fault model");
}

ClientUpdate FaultyClient::compute_update(const RoundContext& ctx) {
  faults_->observe_global(ctx.round, ctx.global);
  const FaultKind fault = faults_->decide(inner_->id(), ctx.round);
  switch (fault) {
    case FaultKind::none:
      return inner_->compute_update(ctx);
    case FaultKind::dropout: {
      // Sampled but never reports: no local compute, no RNG consumption.
      ClientUpdate u;
      u.client_id = inner_->id();
      u.weight = 0.0;
      u.status = UpdateStatus::dropped;
      return u;
    }
    case FaultKind::straggler: {
      std::size_t staleness = 0;
      const tensor::FlatVec& stale = faults_->stale_global(ctx.round,
                                                           &staleness);
      RoundContext stale_ctx{ctx.round, stale};
      ClientUpdate u = inner_->compute_update(stale_ctx);
      u.status = UpdateStatus::straggler;
      u.staleness = staleness;
      return u;
    }
    case FaultKind::corrupt_nan:
    case FaultKind::corrupt_inf: {
      ClientUpdate u = inner_->compute_update(ctx);
      const float bad = fault == FaultKind::corrupt_nan
                            ? std::numeric_limits<float>::quiet_NaN()
                            : std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < u.delta.size(); i += 17) u.delta[i] = bad;
      if (!u.delta.empty()) u.delta[0] = bad;
      return u;
    }
    case FaultKind::corrupt_truncate: {
      ClientUpdate u = inner_->compute_update(ctx);
      u.delta.resize(u.delta.size() / 2);
      return u;
    }
    case FaultKind::corrupt_blowup: {
      ClientUpdate u = inner_->compute_update(ctx);
      tensor::scale_inplace(u.delta, 1e6);
      return u;
    }
  }
  throw std::logic_error("FaultyClient: unhandled fault kind");
}

}  // namespace collapois::fl
