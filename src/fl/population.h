// Client populations: the round engines' view of "who can be sampled".
//
// The engines only ever need three things — the registered population
// size, a client reference for an index that was actually sampled, and
// checkpoint plumbing. Hiding the storage behind this interface is what
// makes the cross-device regime affordable: a lazy population
// (agg/lazy_population.h) materializes clients on first sample instead
// of at startup, so memory follows the number of distinct participants
// (10²–10³ per round) rather than the registered population (10⁵–10⁶).
//
// The eager implementations here preserve the pre-population behavior
// bit-for-bit: OwningClientPopulation serializes exactly the old
// ServerAlgorithm client-blob layout, and BorrowedClientPopulation
// throws the same "run_round: null client" the engines used to.
#pragma once

#include <memory>
#include <vector>

#include "fl/client.h"
#include "fl/state.h"

namespace collapois::fl {

class ClientPopulation {
 public:
  virtual ~ClientPopulation() = default;

  // Number of registered clients (NOT the number instantiated).
  virtual std::size_t size() const = 0;

  // The client at index i, materializing it on demand. Never returns a
  // dangling reference: implementations own or borrow storage that
  // outlives the population. Throws on a null/out-of-range entry.
  // Thread-safety: concurrent calls with DISTINCT indices are safe (the
  // eval sweep relies on it); lazy implementations guard materialization
  // internally.
  virtual Client& client(std::size_t i) = 0;

  // Number of clients currently instantiated — equals size() for the
  // eager implementations, and the distinct-participant count for lazy
  // ones. Surfaced in RoundTelemetry for the scale benches.
  virtual std::size_t materialized() const = 0;

  // Checkpoint plumbing for the clients' mutable state.
  virtual void save_state(StateWriter& w) const = 0;
  virtual void load_state(StateReader& r) = 0;
};

// Non-owning view over a caller-held pointer vector — the adapter behind
// the Server::run_round(const std::vector<Client*>&) overload.
class BorrowedClientPopulation final : public ClientPopulation {
 public:
  explicit BorrowedClientPopulation(const std::vector<Client*>& clients)
      : clients_(&clients) {}

  std::size_t size() const override { return clients_->size(); }
  Client& client(std::size_t i) override;
  std::size_t materialized() const override { return clients_->size(); }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  const std::vector<Client*>* clients_;
};

// Eagerly constructed, owned clients — the pre-population default.
class OwningClientPopulation final : public ClientPopulation {
 public:
  // Throws on an empty vector or a null entry.
  explicit OwningClientPopulation(
      std::vector<std::unique_ptr<Client>> clients);

  std::size_t size() const override { return clients_.size(); }
  Client& client(std::size_t i) override { return *clients_.at(i); }
  std::size_t materialized() const override { return clients_.size(); }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace collapois::fl
