#include "fl/round_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "net/envelope.h"
#include "runtime/parallel.h"
#include "runtime/rss.h"
#include "runtime/timer.h"

namespace collapois::fl {

namespace {

using runtime::ms_since;
using runtime::wall_now;

// Validation verdict for one incoming update. Checks cheapest-first:
// dimension, finiteness, then the optional norm ceiling.
bool validate_update(const ClientUpdate& u, std::size_t dim,
                     double norm_ceiling, RejectReason* reason) {
  if (u.delta.size() != dim) {
    *reason = RejectReason::dim_mismatch;
    return false;
  }
  double sq = 0.0;
  for (float x : u.delta) {
    if (!std::isfinite(x)) {
      *reason = RejectReason::non_finite;
      return false;
    }
    sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (!std::isfinite(u.weight) || u.weight < 0.0) {
    *reason = RejectReason::non_finite;
    return false;
  }
  if (norm_ceiling > 0.0 && std::sqrt(sq) > norm_ceiling) {
    *reason = RejectReason::norm_exceeded;
    return false;
  }
  return true;
}

bool all_finite(std::span<const float> v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Sample the base cohort: one Bernoulli draw per client, in client order,
// regardless of thread count — the sampling stream is part of the
// checkpointable state and must not depend on the pool. Touching
// pop.client(i) only for sampled indices is the lazy-population contract
// (instantiate on sample) and doubles as the null check borrowed
// populations used to do here. Both engines share this draw pattern, so
// switching engines never perturbs the sampling stream's shape per call.
std::vector<std::size_t> sample_base_cohort(stats::Rng& rng, double q,
                                            ClientPopulation& pop) {
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (rng.bernoulli(q)) {
      (void)pop.client(i);
      picked.push_back(i);
    }
  }
  if (picked.empty()) {
    // Guarantee progress: sample one client uniformly.
    const std::size_t i =
        static_cast<std::size_t>(rng.uniform_int(pop.size()));
    (void)pop.client(i);
    picked.push_back(i);
  }
  return picked;
}

}  // namespace

const char* round_engine_name(RoundEngineKind kind) {
  switch (kind) {
    case RoundEngineKind::sync: return "sync";
    case RoundEngineKind::buffered_async: return "buffered_async";
  }
  return "unknown";
}

RoundEngineKind parse_round_engine(const std::string& name) {
  if (name == "sync") return RoundEngineKind::sync;
  if (name == "buffered_async") return RoundEngineKind::buffered_async;
  throw std::invalid_argument("unknown round engine: " + name +
                              " (expected sync|buffered_async)");
}

// ---------------------------------------------------------------------------
// SyncRoundEngine — the barrier loop, moved verbatim from the pre-engine
// Server::run_round. Do not "improve" this body: its exact operation
// order is the bit-exactness contract with every existing checkpoint,
// determinism, and transport suite.
// ---------------------------------------------------------------------------

RoundTelemetry SyncRoundEngine::run_round(Server& server,
                                          ClientPopulation& pop) {
  if (pop.size() == 0) throw std::invalid_argument("run_round: no clients");
  const auto round_start = wall_now();

  const ServerConfig& cfg = config(server);
  tensor::FlatVec& params = RoundEngine::params(server);
  stats::Rng& rng = RoundEngine::rng(server);
  Aggregator& agg = aggregator(server);
  std::size_t& round = RoundEngine::round(server);

  RoundTelemetry t;
  t.round = round;

  const bool net_on = cfg.net != nullptr && cfg.net->config().enabled;

  std::vector<std::size_t> picked =
      sample_base_cohort(rng, cfg.sample_prob, pop);
  // The target cohort size k: over-provisioned extras below raise the
  // number of clients that TRAIN, but the server still aggregates at most
  // k arrivals. With the transport disabled k == cohort and nothing here
  // consumes RNG draws, so the sampling stream is unchanged from the
  // pre-transport code path.
  const std::size_t target_cohort = picked.size();
  if (net_on && cfg.net->config().over_sample > 0.0 &&
      picked.size() < pop.size()) {
    const auto want = static_cast<std::size_t>(std::ceil(
        (1.0 + cfg.net->config().over_sample) *
        static_cast<double>(target_cohort)));
    std::vector<char> in_cohort(pop.size(), 0);
    for (std::size_t i : picked) in_cohort[i] = 1;
    std::vector<std::size_t> complement;
    complement.reserve(pop.size() - picked.size());
    for (std::size_t i = 0; i < pop.size(); ++i) {
      if (!in_cohort[i]) complement.push_back(i);
    }
    const std::size_t extras =
        std::min(want - target_cohort, complement.size());
    std::vector<std::size_t> drawn =
        rng.sample_without_replacement(complement.size(), extras);
    // Extras join in client-id order after the base cohort so the
    // dispatch/reduction order is a pure function of WHO was sampled.
    std::sort(drawn.begin(), drawn.end());
    for (std::size_t d : drawn) {
      const std::size_t i = complement[d];
      (void)pop.client(i);
      picked.push_back(i);
    }
  }
  std::vector<Client*> sampled;
  sampled.reserve(picked.size());
  for (std::size_t i : picked) sampled.push_back(&pop.client(i));
  t.cohort_size = sampled.size();
  t.n_dispatched = sampled.size();

  // Dispatch: each sampled client's local training is an independent task
  // (per-client RNG streams and scratch models). Results land in
  // `incoming` by sampling index, so the validation/quarantine/reduction
  // loop below sees the same updates in the same order for any pool size.
  RoundContext ctx{round, params};
  const auto train_start = wall_now();
  std::vector<ClientUpdate> incoming = runtime::parallel_map(
      cfg.pool, sampled.size(),
      [&](std::size_t i) { return sampled[i]->compute_update(ctx); });
  t.train_ms = ms_since(train_start);

  // Transport stage: every computed update is enveloped and sent across
  // the simulated network. Deliveries are sorted by (virtual arrival
  // time, sampling index) and the first `target_cohort` intact
  // in-deadline arrivals make the round; the rest are excess. The
  // accepted updates are the DECODED WIRE COPIES (bit-exact under the
  // default identity codec; within tolerance under a lossy one), and
  // the accounting loop below still walks sampling order — arrival order
  // only decides WHO is in, never the reduction order, so the aggregate
  // stays bit-identical across thread counts. Decisions are counter-based
  // per (client, round, attempt), so running transmit() sequentially here
  // costs O(cohort) hash draws — noise next to local training.
  enum class Fate : unsigned char { none, accepted, transport, deadline, excess };
  std::vector<Fate> fate(sampled.size(), Fate::none);
  if (net_on) {
    struct Arrival {
      double arrival_ms;
      std::size_t index;  // sampling index, the tie-break
    };
    std::vector<Arrival> arrivals;
    std::vector<std::optional<ClientUpdate>> wire(sampled.size());
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      if (incoming[i].status == UpdateStatus::dropped) continue;
      // Per-link codec handshake: the server's offer masked against this
      // client's capabilities (identity is the universal fallback).
      const net::CodecConfig link_codec =
          net::negotiate_codec(cfg.codec, sampled[i]->codec_capabilities());
      const net::Envelope env =
          net::encode_update(incoming[i], round, link_codec);
      net::Delivery d = cfg.net->transmit(sampled[i]->id(), round, env,
                                          &t.transport);
      switch (d.status) {
        case net::DeliveryStatus::delivered:
          arrivals.push_back({d.arrival_ms, i});
          wire[i] = std::move(d.update);
          break;
        case net::DeliveryStatus::late:
          fate[i] = Fate::deadline;
          ++t.transport.deadline_dropped;
          break;
        case net::DeliveryStatus::lost:
          fate[i] = Fate::transport;
          ++t.transport.transport_dropped;
          break;
      }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival& a, const Arrival& b) {
                return a.arrival_ms != b.arrival_ms ? a.arrival_ms < b.arrival_ms
                                                    : a.index < b.index;
              });
    for (std::size_t j = 0; j < arrivals.size(); ++j) {
      const std::size_t i = arrivals[j].index;
      if (j < target_cohort) {
        fate[i] = Fate::accepted;
        incoming[i] = std::move(*wire[i]);
      } else {
        fate[i] = Fate::excess;
        ++t.transport.excess_dropped;
      }
    }
    if (!arrivals.empty()) {
      // Nearest-rank quantiles over ALL intact in-deadline arrivals
      // (excess included — they did arrive; acceptance is a server-side
      // cut, not a network property).
      const auto rank = [&](double q) {
        const auto n = static_cast<double>(arrivals.size());
        auto r = static_cast<std::size_t>(std::ceil(q * n));
        if (r > 0) --r;
        return arrivals[std::min(r, arrivals.size() - 1)].arrival_ms;
      };
      t.transport.arrival_p50_ms = rank(0.50);
      t.transport.arrival_p90_ms = rank(0.90);
      t.transport.arrival_max_ms = arrivals.back().arrival_ms;
    }
  }

  std::size_t n_trained = 0;
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    Client* c = sampled[i];
    ClientUpdate u = std::move(incoming[i]);
    if (u.status == UpdateStatus::dropped) {
      t.dropped_ids.push_back(c->id());
      t.drop_reasons.push_back(DropReason::compute);
      continue;
    }
    ++n_trained;
    if (net_on && fate[i] != Fate::accepted) {
      // The update was computed but never aggregated: charge exactly one
      // drop reason for the transport outcome.
      t.dropped_ids.push_back(c->id());
      switch (fate[i]) {
        case Fate::transport:
          t.drop_reasons.push_back(DropReason::transport);
          break;
        case Fate::deadline:
          t.drop_reasons.push_back(DropReason::deadline);
          break;
        case Fate::excess:
          t.drop_reasons.push_back(DropReason::excess);
          break;
        default:
          throw std::logic_error("run_round: computed update with no fate");
      }
      continue;
    }
    RejectReason reason = RejectReason::non_finite;
    if (!validate_update(u, params.size(), cfg.update_norm_ceiling,
                         &reason)) {
      t.rejected_ids.push_back(c->id());
      t.reject_reasons.push_back(reason);
      continue;
    }
    if (u.status == UpdateStatus::straggler) {
      // Staleness damping: a k-round-late update moves the model with
      // weight 1 / (1 + k) of a fresh one (FedAsync-style polynomial
      // damping with exponent 1).
      u.weight /= 1.0 + static_cast<double>(u.staleness);
      ++t.n_stragglers;
    }
    t.sampled_ids.push_back(c->id());
    t.compromised.push_back(c->is_compromised());
    t.updates.push_back(std::move(u));
  }
  if (t.train_ms > 0.0) {
    t.clients_per_sec =
        static_cast<double>(n_trained) / (t.train_ms / 1000.0);
  }

  // Shared end-of-round bookkeeping for every exit path: fold this
  // round's message counters into the model's checkpointed totals, then
  // advance the round clock.
  const auto finish_round = [&] {
    if (net_on) cfg.net->accumulate_round(t.transport);
    ++round;
    t.wall_ms = ms_since(round_start);
    t.peak_rss_bytes = runtime::peak_rss_bytes();
    t.n_materialized = pop.materialized();
  };

  if (t.updates.empty()) {
    // Whole cohort failed: skip the round, leave the model untouched.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params.size());
    finish_round();
    return t;
  }

  const auto agg_start = wall_now();
  // Announce the round for counter-based infrastructure fault decisions
  // (DESIGN.md §13), then drain what the aggregation tree recorded.
  agg.begin_round(t.round);
  t.aggregated = agg.aggregate(t.updates, params, cfg.pool);
  t.infra = agg.take_infra_stats();
  t.agg_ms = ms_since(agg_start);
  if (t.aggregated.size() != params.size() || !all_finite(t.aggregated)) {
    // An aggregator that emits garbage from well-formed inputs is treated
    // like a failed cohort: quarantine the round, not the process.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params.size());
    finish_round();
    return t;
  }
  tensor::axpy_inplace(params, -cfg.learning_rate, t.aggregated);
  agg.post_update(params);
  finish_round();
  return t;
}

void SyncRoundEngine::save_state(StateWriter& /*w*/) const {
  // Nothing: every piece of sync state drains at the round barrier, and
  // writing zero bytes keeps sync blobs byte-identical with the
  // pre-engine checkpoint format.
}

void SyncRoundEngine::load_state(StateReader& /*r*/) {}

// ---------------------------------------------------------------------------
// BufferedAsyncRoundEngine
// ---------------------------------------------------------------------------

BufferedAsyncRoundEngine::BufferedAsyncRoundEngine(AsyncConfig async)
    : async_(async) {
  if (!std::isfinite(async_.t_ms) || async_.t_ms < 0.0) {
    throw std::invalid_argument(
        "BufferedAsyncRoundEngine: t_ms must be finite and non-negative");
  }
  if (async_.k == 0 && async_.t_ms <= 0.0) {
    throw std::invalid_argument(
        "BufferedAsyncRoundEngine: at least one aggregation trigger "
        "(k > 0 or t_ms > 0) must be active");
  }
}

const net::NetworkModel* BufferedAsyncRoundEngine::relaxed_net(
    const Server& s) {
  const net::NetworkModel* base = config(s).net;
  if (base == nullptr || !base->config().enabled) return nullptr;
  if (!relaxed_net_) {
    net::NetConfig relaxed = base->config();
    // No round to close in async mode: a slow update is damped or
    // stale-discarded, never raced against a barrier. Neutralizing the
    // deadline does not perturb the counter-based loss/corruption/latency
    // draws — they hash (seed, client, round, attempt) only.
    relaxed.deadline_ms = 0.0;
    relaxed_net_ = std::make_unique<net::NetworkModel>(relaxed);
  }
  return relaxed_net_.get();
}

RoundTelemetry BufferedAsyncRoundEngine::run_round(Server& server,
                                                   ClientPopulation& pop) {
  if (pop.size() == 0) throw std::invalid_argument("run_round: no clients");
  const auto round_start = wall_now();

  const ServerConfig& cfg = config(server);
  tensor::FlatVec& params = RoundEngine::params(server);
  stats::Rng& rng = RoundEngine::rng(server);
  Aggregator& agg = aggregator(server);
  std::size_t& round = RoundEngine::round(server);

  RoundTelemetry t;
  t.round = round;
  const net::NetworkModel* net = relaxed_net(server);
  const bool net_on = net != nullptr;

  // 1. Sample this cycle's cohort. No over-provisioning: that is a
  // barrier-world mitigation for deadline misses; here a slow update is
  // admitted late instead of replaced.
  const std::vector<std::size_t> picked =
      sample_base_cohort(rng, cfg.sample_prob, pop);
  t.n_dispatched = picked.size();

  // 2. Train the cohort in parallel against the CURRENT global model.
  // Results land by sampling index, so everything downstream is
  // bit-identical for any pool size. The cohort pointers are resolved
  // sequentially first so lazy materialization never races the pool.
  std::vector<Client*> cohort;
  cohort.reserve(picked.size());
  for (std::size_t i : picked) cohort.push_back(&pop.client(i));
  RoundContext ctx{round, params};
  const auto train_start = wall_now();
  std::vector<ClientUpdate> incoming = runtime::parallel_map(
      cfg.pool, cohort.size(),
      [&](std::size_t i) { return cohort[i]->compute_update(ctx); });
  t.train_ms = ms_since(train_start);

  // 3. Resolve dispatch-time fates and enqueue deliveries as future
  // events. A dropout never reports (compute drop); an exhausted retry
  // budget is a transport drop; everything else arrives at
  // (dispatch virtual time + delivery latency).
  const double dispatch_ms = clock_.now_ms;
  std::size_t n_trained = 0;
  for (std::size_t i = 0; i < picked.size(); ++i) {
    Client* c = cohort[i];
    ClientUpdate u = std::move(incoming[i]);
    if (u.status == UpdateStatus::dropped) {
      t.dropped_ids.push_back(c->id());
      t.drop_reasons.push_back(DropReason::compute);
      continue;
    }
    ++n_trained;
    if (net_on) {
      const net::CodecConfig link_codec =
          net::negotiate_codec(cfg.codec, c->codec_capabilities());
      const net::Envelope env = net::encode_update(u, round, link_codec);
      net::Delivery d = net->transmit(c->id(), round, env, &t.transport);
      switch (d.status) {
        case net::DeliveryStatus::delivered:
          buffer_.push(
              net::EventKey{dispatch_ms + d.arrival_ms,
                            static_cast<std::uint64_t>(round),
                            static_cast<std::uint64_t>(i)},
              Pending{picked[i], std::move(*d.update)});
          break;
        case net::DeliveryStatus::lost:
          t.dropped_ids.push_back(c->id());
          t.drop_reasons.push_back(DropReason::transport);
          ++t.transport.transport_dropped;
          break;
        case net::DeliveryStatus::late:
          // Unreachable: the relaxed model has no deadline.
          throw std::logic_error(
              "buffered_async: deadline-free transport returned late");
      }
    } else {
      // Transport disabled: zero-latency delivery at dispatch time.
      buffer_.push(net::EventKey{dispatch_ms,
                                 static_cast<std::uint64_t>(round),
                                 static_cast<std::uint64_t>(i)},
                   Pending{picked[i], std::move(u)});
    }
  }
  if (t.train_ms > 0.0) {
    t.clients_per_sec =
        static_cast<double>(n_trained) / (t.train_ms / 1000.0);
  }

  // 4. Drain the buffer: admit events in (arrival, launch round, sampling
  // index) order until K updates are admitted or the next event lies past
  // the aggregation deadline. Admission resolves each update's fate —
  // stale-discard, quarantine, or acceptance with staleness damping.
  const bool t_trigger = async_.t_ms > 0.0;
  const double agg_deadline =
      t_trigger ? last_agg_ms_ + async_.t_ms
                : std::numeric_limits<double>::infinity();
  double last_admitted_ms = dispatch_ms;
  bool stopped_by_deadline = false;
  while (!buffer_.empty()) {
    if (t_trigger && buffer_.top().key.time_ms > agg_deadline) {
      stopped_by_deadline = true;
      break;
    }
    auto ev = buffer_.pop();
    last_admitted_ms = std::max(last_admitted_ms, ev.key.time_ms);
    const std::size_t launch_round = static_cast<std::size_t>(ev.key.round);
    Client* c = &pop.client(ev.payload.client_index);
    ClientUpdate u = std::move(ev.payload.update);
    // Total staleness: rounds the update sat in the buffer plus the
    // compute-layer straggler lag it already carried.
    const std::size_t buffer_lag = round - launch_round;
    const std::size_t total_staleness = buffer_lag + u.staleness;
    if (total_staleness > async_.max_staleness) {
      t.dropped_ids.push_back(c->id());
      t.drop_reasons.push_back(DropReason::stale_discarded);
      continue;
    }
    RejectReason reason = RejectReason::non_finite;
    if (!validate_update(u, params.size(), cfg.update_norm_ceiling,
                         &reason)) {
      t.rejected_ids.push_back(c->id());
      t.reject_reasons.push_back(reason);
      continue;
    }
    if (total_staleness > 0) {
      // The staleness-damping rule generalized from the quarantine
      // machinery: a k-round-stale update moves the model with weight
      // 1 / (1 + k) of a fresh one, whether the lag came from a slow
      // client (fl/faults.h stragglers) or from the buffer.
      u.weight /= 1.0 + static_cast<double>(total_staleness);
      u.staleness = total_staleness;
      ++t.n_stragglers;
    }
    if (t.staleness_hist.size() <= total_staleness) {
      t.staleness_hist.resize(total_staleness + 1, 0);
    }
    ++t.staleness_hist[total_staleness];
    t.sampled_ids.push_back(c->id());
    t.compromised.push_back(c->is_compromised());
    t.updates.push_back(std::move(u));
    if (async_.k > 0 && t.updates.size() == async_.k) break;
  }

  // Advance the virtual clock: to the aggregation deadline when the T
  // trigger closed the cycle, otherwise to the latest admitted arrival.
  clock_.advance_to(stopped_by_deadline ? agg_deadline : last_admitted_ms);
  last_agg_ms_ = clock_.now_ms;
  t.virtual_now_ms = clock_.now_ms;
  t.n_buffered = buffer_.size();
  // Invariant: every fate RESOLVED this cycle lands in exactly one
  // bucket; in-flight updates resolve in a later cycle.
  t.cohort_size =
      t.sampled_ids.size() + t.dropped_ids.size() + t.rejected_ids.size();

  // 5. Aggregate and apply (same epilogue semantics as sync: malformed
  // aggregator output quarantines the cycle, never the process).
  const auto finish_cycle = [&] {
    if (net_on) config(server).net->accumulate_round(t.transport);
    ++round;
    t.wall_ms = ms_since(round_start);
    t.peak_rss_bytes = runtime::peak_rss_bytes();
    t.n_materialized = pop.materialized();
  };
  if (t.updates.empty()) {
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params.size());
    finish_cycle();
    return t;
  }
  const auto agg_start = wall_now();
  // Same announcement/drain as the sync engine: infrastructure fault
  // decisions key on the cycle's round counter.
  agg.begin_round(t.round);
  t.aggregated = agg.aggregate(t.updates, params, cfg.pool);
  t.infra = agg.take_infra_stats();
  t.agg_ms = ms_since(agg_start);
  if (t.aggregated.size() != params.size() || !all_finite(t.aggregated)) {
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params.size());
    finish_cycle();
    return t;
  }
  tensor::axpy_inplace(params, -cfg.learning_rate, t.aggregated);
  agg.post_update(params);
  finish_cycle();
  return t;
}

void BufferedAsyncRoundEngine::save_state(StateWriter& w) const {
  w.write_double(clock_.now_ms);
  w.write_double(last_agg_ms_);
  w.write_size(buffer_.size());
  // Serialize in key order — deterministic regardless of the standard
  // library's internal heap layout — so the blob is a pure function of
  // the experiment state and mid-buffer checkpoints resume bit-exactly.
  buffer_.for_each_sorted([&](const net::EventQueue<Pending>::Event& e) {
    w.write_double(e.key.time_ms);
    w.write_u64(e.key.round);
    w.write_u64(e.key.seq);
    w.write_size(e.payload.client_index);
    w.write_size(e.payload.update.client_id);
    w.write_floats(e.payload.update.delta);
    w.write_double(e.payload.update.weight);
    w.write_u64(static_cast<std::uint64_t>(e.payload.update.status));
    w.write_size(e.payload.update.staleness);
  });
}

void BufferedAsyncRoundEngine::load_state(StateReader& r) {
  clock_.now_ms = r.read_double();
  last_agg_ms_ = r.read_double();
  buffer_.clear();
  const std::size_t n = r.read_size();
  for (std::size_t i = 0; i < n; ++i) {
    net::EventKey key;
    key.time_ms = r.read_double();
    key.round = r.read_u64();
    key.seq = r.read_u64();
    Pending p;
    p.client_index = r.read_size();
    p.update.client_id = r.read_size();
    p.update.delta = r.read_floats();
    p.update.weight = r.read_double();
    const std::uint64_t status = r.read_u64();
    if (status > static_cast<std::uint64_t>(UpdateStatus::straggler)) {
      throw std::runtime_error(
          "BufferedAsyncRoundEngine::load_state: bad update status");
    }
    p.update.status = static_cast<UpdateStatus>(status);
    p.update.staleness = r.read_size();
    buffer_.push(key, std::move(p));
  }
}

std::unique_ptr<RoundEngine> make_round_engine(RoundEngineKind kind,
                                               const AsyncConfig& async) {
  switch (kind) {
    case RoundEngineKind::sync:
      return std::make_unique<SyncRoundEngine>();
    case RoundEngineKind::buffered_async:
      return std::make_unique<BufferedAsyncRoundEngine>(async);
  }
  throw std::invalid_argument("make_round_engine: unknown engine kind");
}

}  // namespace collapois::fl
