#include "fl/metafed.h"

#include <algorithm>
#include <stdexcept>

namespace collapois::fl {

MetaFedAlgorithm::MetaFedAlgorithm(std::vector<std::unique_ptr<Client>> clients,
                                   const nn::Model& prototype,
                                   MetaFedConfig config, stats::Rng rng)
    : clients_(std::move(clients)), config_(config), rng_(std::move(rng)) {
  if (clients_.empty()) {
    throw std::invalid_argument("MetaFedAlgorithm: no clients");
  }
  if (config_.sample_prob <= 0.0 || config_.sample_prob > 1.0) {
    throw std::invalid_argument("MetaFedAlgorithm: bad sample_prob");
  }
  personal_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i]) {
      throw std::invalid_argument("MetaFedAlgorithm: null client");
    }
    personal_.push_back(prototype);  // shared architecture + init
  }
}

RoundTelemetry MetaFedAlgorithm::run_round() {
  RoundTelemetry t;
  t.round = round_;

  std::vector<std::size_t> visited;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (rng_.bernoulli(config_.sample_prob)) visited.push_back(i);
  }
  if (visited.empty()) {
    visited.push_back(
        static_cast<std::size_t>(rng_.uniform_int(clients_.size())));
  }
  // Ring order: ascending client index with wraparound; the predecessor of
  // the first visited client is the last one.
  for (std::size_t k = 0; k < visited.size(); ++k) {
    const std::size_t i = visited[k];
    const std::size_t teacher_idx =
        visited[(k + visited.size() - 1) % visited.size()];
    const tensor::FlatVec before = personal_[i].get_parameters();
    if (teacher_idx == i) {
      // Self-distillation degenerates to aliasing (the forward caches of
      // student and teacher would collide); use a snapshot as teacher.
      nn::Model snapshot = personal_[i];
      clients_[i]->distill_round(personal_[i], snapshot);
    } else {
      clients_[i]->distill_round(personal_[i], personal_[teacher_idx]);
    }
    if (config_.clip > 0.0 || config_.noise_std > 0.0) {
      // Defense analogue (see MetaFedConfig): bound and perturb the
      // knowledge transferred this round.
      tensor::FlatVec change =
          tensor::sub(personal_[i].get_parameters(), before);
      if (config_.clip > 0.0) tensor::clip_l2_inplace(change, config_.clip);
      if (config_.noise_std > 0.0) {
        for (auto& v : change) {
          v = static_cast<float>(v + rng_.normal(0.0, config_.noise_std));
        }
      }
      tensor::FlatVec restored = before;
      tensor::axpy_inplace(restored, 1.0, change);
      personal_[i].set_parameters(restored);
    }
    t.sampled_ids.push_back(clients_[i]->id());
    t.compromised.push_back(clients_[i]->is_compromised());
  }
  ++round_;
  return t;
}

tensor::FlatVec MetaFedAlgorithm::global_params() const {
  std::vector<tensor::FlatVec> all;
  all.reserve(personal_.size());
  for (const auto& m : personal_) all.push_back(m.get_parameters());
  return tensor::mean_of(all);
}

tensor::FlatVec MetaFedAlgorithm::client_eval_params(
    std::size_t client_index) {
  return personal_.at(client_index).get_parameters();
}

void MetaFedAlgorithm::save_state(StateWriter& w) const {
  w.write_size(round_);
  w.write_rng(rng_);
  w.write_size(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    w.write_floats(personal_[i].get_parameters());
    clients_[i]->save_state(w);
  }
}

void MetaFedAlgorithm::load_state(StateReader& r) {
  round_ = r.read_size();
  r.read_rng(rng_);
  const std::size_t n = r.read_size();
  if (n != clients_.size()) {
    throw std::runtime_error(
        "MetaFedAlgorithm::load_state: client count mismatch");
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    personal_[i].set_parameters(r.read_floats());
    clients_[i]->load_state(r);
  }
}

}  // namespace collapois::fl
