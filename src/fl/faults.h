// Client fault injection for production-condition experiments.
//
// Shejwalkar et al. ("Back to the Drawing Board", S&P'22) argue that
// poisoning results only transfer to deployed FL when evaluated under
// production conditions: partial participation, churn, unreliable
// clients. This layer injects exactly those conditions into the
// simulator so the CollaPois / D-Pois comparison can be re-run under
// realistic client behaviour (bench_fault_tolerance):
//
//  - dropout:    the client is sampled but never reports;
//  - straggler:  the client computes its update against a k-round-stale
//                global model and delivers it late (the server damps the
//                weight by 1 / (1 + staleness));
//  - corruption: the reported update is malformed — NaN/Inf-poisoned,
//                dimension-truncated, or magnitude-blown-up — and must be
//                quarantined by the server's validation path.
//
// Determinism: fault decisions are *counter-based* — a splitmix64 hash of
// (seed, client id, round) — not drawn from a mutable RNG stream. The
// decision for (client, round) is therefore independent of the order in
// which clients are polled and of how many other faults fired, which
// keeps runs reproducible and makes checkpoint/resume trivial (only the
// straggler's stale-model cache is mutable state).
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "fl/client.h"
#include "fl/state.h"

namespace collapois::fl {

enum class FaultKind {
  none,
  dropout,
  straggler,
  corrupt_nan,       // every 17th coordinate (and [0]) set to quiet NaN
  corrupt_inf,       // same stride, +/- infinity
  corrupt_truncate,  // delta truncated to half its dimension
  corrupt_blowup,    // delta scaled by 1e6
};

const char* fault_kind_name(FaultKind kind);

struct FaultConfig {
  // Per-(client, round) probabilities, evaluated in this priority order:
  // dropout, then straggler, then corruption (a client suffers at most
  // one fault per round).
  double dropout_prob = 0.0;
  double straggler_prob = 0.0;
  double corrupt_prob = 0.0;
  // Staleness k of a straggler's model view (capped by available history).
  std::size_t straggler_staleness = 2;
  // Stream selector for the counter-based decisions; experiments with the
  // same faults but different seeds fault different (client, round) cells.
  std::uint64_t seed = 0x5eedfa017ULL;
  // Per-client forced faults (e.g. an always-NaN client); overrides the
  // stochastic draw every round.
  std::map<std::size_t, FaultKind> pinned;

  bool any() const;
};

// Shared fault oracle: decides the fault for each (client, round) cell
// and keeps the bounded history of broadcast global models that
// stragglers compute against. One FaultModel is shared by every
// FaultyClient wrapper of a federation.
//
// Thread safety (the round loop dispatches clients in parallel,
// runtime/thread_pool.h): decide() is a pure function; the stale-model
// cache is guarded by a mutex. Within a round every wrapper calls
// observe_global() with the SAME (round, global) before reading, and
// insertion is first-caller-wins, so cache content — and therefore every
// result — is independent of thread scheduling. References returned by
// stale_global() stay valid for the whole round: pruning only happens on
// the first observe_global() of a later round, which the round barrier
// orders after every reader.
class FaultModel {
 public:
  explicit FaultModel(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  // The fault assignment for this cell (pure function of config + seed).
  FaultKind decide(std::size_t client_id, std::size_t round) const;

  // Record the broadcast global model of `round` (first caller wins).
  // History is pruned by a virtual-clock WATERMARK, not by size: entries
  // older than max_observed_round - (straggler_staleness + extra
  // retention) are discarded. Size-based pruning is wrong under the
  // buffered-async engine, where cohorts overlap and observe_global()
  // calls arrive out of round order: a late observation from an older
  // in-flight cohort would evict a round a deeper straggler still needs
  // (or be evicted itself immediately, silently shrinking the lookback).
  // The watermark only ever moves forward, so late observations of
  // still-relevant rounds are retained and already-pruned rounds stay
  // pruned. For the monotone round sequence of the sync engine the
  // retained set is identical to the old size bound.
  void observe_global(std::size_t round, std::span<const float> global);

  // Widen the pruning window by `rounds` beyond straggler_staleness. The
  // async runner sets this to its staleness cutoff so stale-model history
  // survives as long as an update can legally sit in the buffer.
  void set_extra_retention(std::size_t rounds);

  // The stale view a straggler at `round` trains against: the recorded
  // global of round - k (or the oldest available; the current round's
  // global when no history exists yet). Sets `actual_staleness` to the
  // real lag of the returned model.
  const tensor::FlatVec& stale_global(std::size_t round,
                                      std::size_t* actual_staleness) const;

  // The stale-model cache is the FaultModel's only mutable state.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  FaultConfig config_;
  // Guards history_ against concurrent per-client dispatch (mutable so
  // the const read paths can lock).
  mutable std::mutex mu_;
  std::map<std::size_t, tensor::FlatVec> history_;  // round -> global
  // Pruning watermark inputs: the newest round ever observed (monotone;
  // re-derived from the history on load, so checkpoint blobs are
  // unchanged) and the extra retention window for overlapping cohorts.
  std::size_t max_round_seen_ = 0;
  std::size_t extra_retention_ = 0;
};

// Decorator that subjects an inner client to the shared fault model.
// Wraps benign and compromised clients alike — churn is environmental,
// not adversarial.
class FaultyClient : public Client {
 public:
  FaultyClient(std::unique_ptr<Client> inner,
               std::shared_ptr<FaultModel> faults);

  std::size_t id() const override { return inner_->id(); }
  bool is_compromised() const override { return inner_->is_compromised(); }
  ClientUpdate compute_update(const RoundContext& ctx) override;
  tensor::FlatVec eval_params(std::span<const float> global) override {
    return inner_->eval_params(global);
  }
  void distill_round(nn::Model& personal, nn::Model& teacher) override {
    inner_->distill_round(personal, teacher);
  }
  void save_state(StateWriter& w) const override { inner_->save_state(w); }
  void load_state(StateReader& r) override { inner_->load_state(r); }

  Client& inner() { return *inner_; }

 private:
  std::unique_ptr<Client> inner_;
  std::shared_ptr<FaultModel> faults_;
};

}  // namespace collapois::fl
