#include "fl/server.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel.h"

namespace collapois::fl {

namespace {

// Validation verdict for one incoming update. Checks cheapest-first:
// dimension, finiteness, then the optional norm ceiling.
bool validate_update(const ClientUpdate& u, std::size_t dim,
                     double norm_ceiling, RejectReason* reason) {
  if (u.delta.size() != dim) {
    *reason = RejectReason::dim_mismatch;
    return false;
  }
  double sq = 0.0;
  for (float x : u.delta) {
    if (!std::isfinite(x)) {
      *reason = RejectReason::non_finite;
      return false;
    }
    sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (!std::isfinite(u.weight) || u.weight < 0.0) {
    *reason = RejectReason::non_finite;
    return false;
  }
  if (norm_ceiling > 0.0 && std::sqrt(sq) > norm_ceiling) {
    *reason = RejectReason::norm_exceeded;
    return false;
  }
  return true;
}

bool all_finite(std::span<const float> v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::non_finite: return "non-finite";
    case RejectReason::dim_mismatch: return "dim-mismatch";
    case RejectReason::norm_exceeded: return "norm-exceeded";
  }
  return "unknown";
}

Server::Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
               ServerConfig config, stats::Rng rng)
    : params_(std::move(initial_params)),
      agg_(std::move(agg)),
      config_(config),
      rng_(std::move(rng)) {
  if (!agg_) throw std::invalid_argument("Server: null aggregator");
  if (params_.empty()) throw std::invalid_argument("Server: empty params");
  if (config_.sample_prob <= 0.0 || config_.sample_prob > 1.0) {
    throw std::invalid_argument("Server: sample_prob must be in (0, 1]");
  }
  if (config_.update_norm_ceiling < 0.0) {
    throw std::invalid_argument("Server: negative update_norm_ceiling");
  }
}

RoundTelemetry Server::run_round(const std::vector<Client*>& clients) {
  if (clients.empty()) throw std::invalid_argument("run_round: no clients");
  const auto round_start = std::chrono::steady_clock::now();

  RoundTelemetry t;
  t.round = round_;

  // Sampling consumes exactly one Bernoulli draw per client, in client
  // order, regardless of thread count — the sampling stream is part of
  // the checkpointable state and must not depend on the pool. The null
  // check is folded into the same pass and applied only to clients that
  // were actually sampled (no separate O(population) validation pre-pass
  // per round; ServerAlgorithm already rejects nulls at construction).
  std::vector<Client*> sampled;
  for (Client* c : clients) {
    if (rng_.bernoulli(config_.sample_prob)) {
      if (c == nullptr) throw std::invalid_argument("run_round: null client");
      sampled.push_back(c);
    }
  }
  if (sampled.empty()) {
    // Guarantee progress: sample one client uniformly.
    Client* c =
        clients[static_cast<std::size_t>(rng_.uniform_int(clients.size()))];
    if (c == nullptr) throw std::invalid_argument("run_round: null client");
    sampled.push_back(c);
  }

  // Dispatch: each sampled client's local training is an independent task
  // (per-client RNG streams and scratch models). Results land in
  // `incoming` by sampling index, so the validation/quarantine/reduction
  // loop below sees the same updates in the same order for any pool size.
  RoundContext ctx{round_, params_};
  const auto train_start = std::chrono::steady_clock::now();
  std::vector<ClientUpdate> incoming = runtime::parallel_map(
      config_.pool, sampled.size(),
      [&](std::size_t i) { return sampled[i]->compute_update(ctx); });
  t.train_ms = ms_since(train_start);

  std::size_t n_trained = 0;
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    Client* c = sampled[i];
    ClientUpdate u = std::move(incoming[i]);
    if (u.status == UpdateStatus::dropped) {
      t.dropped_ids.push_back(c->id());
      continue;
    }
    ++n_trained;
    RejectReason reason = RejectReason::non_finite;
    if (!validate_update(u, params_.size(), config_.update_norm_ceiling,
                         &reason)) {
      t.rejected_ids.push_back(c->id());
      t.reject_reasons.push_back(reason);
      continue;
    }
    if (u.status == UpdateStatus::straggler) {
      // Staleness damping: a k-round-late update moves the model with
      // weight 1 / (1 + k) of a fresh one (FedAsync-style polynomial
      // damping with exponent 1).
      u.weight /= 1.0 + static_cast<double>(u.staleness);
      ++t.n_stragglers;
    }
    t.sampled_ids.push_back(c->id());
    t.compromised.push_back(c->is_compromised());
    t.updates.push_back(std::move(u));
  }
  if (t.train_ms > 0.0) {
    t.clients_per_sec =
        static_cast<double>(n_trained) / (t.train_ms / 1000.0);
  }

  if (t.updates.empty()) {
    // Whole cohort failed: skip the round, leave the model untouched.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params_.size());
    ++round_;
    t.wall_ms = ms_since(round_start);
    return t;
  }

  t.aggregated = agg_->aggregate(t.updates, params_);
  if (t.aggregated.size() != params_.size() || !all_finite(t.aggregated)) {
    // An aggregator that emits garbage from well-formed inputs is treated
    // like a failed cohort: quarantine the round, not the process.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params_.size());
    ++round_;
    t.wall_ms = ms_since(round_start);
    return t;
  }
  tensor::axpy_inplace(params_, -config_.learning_rate, t.aggregated);
  agg_->post_update(params_);
  ++round_;
  t.wall_ms = ms_since(round_start);
  return t;
}

void Server::save_state(StateWriter& w) const {
  w.write_floats(params_);
  w.write_size(round_);
  w.write_rng(rng_);
  agg_->save_state(w);
}

void Server::load_state(StateReader& r) {
  params_ = r.read_floats();
  round_ = r.read_size();
  r.read_rng(rng_);
  agg_->load_state(r);
}

}  // namespace collapois::fl
