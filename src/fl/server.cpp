#include "fl/server.h"

#include <stdexcept>

#include "fl/round_engine.h"

namespace collapois::fl {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::non_finite: return "non-finite";
    case RejectReason::dim_mismatch: return "dim-mismatch";
    case RejectReason::norm_exceeded: return "norm-exceeded";
  }
  return "unknown";
}

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::compute: return "compute";
    case DropReason::transport: return "transport";
    case DropReason::deadline: return "deadline";
    case DropReason::excess: return "excess";
    case DropReason::stale_discarded: return "stale-discarded";
  }
  return "unknown";
}

Server::Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
               ServerConfig config, stats::Rng rng)
    : params_(std::move(initial_params)),
      agg_(std::move(agg)),
      config_(config),
      rng_(std::move(rng)) {
  if (!agg_) throw std::invalid_argument("Server: null aggregator");
  if (params_.empty()) throw std::invalid_argument("Server: empty params");
  if (config_.sample_prob <= 0.0 || config_.sample_prob > 1.0) {
    throw std::invalid_argument("Server: sample_prob must be in (0, 1]");
  }
  if (config_.update_norm_ceiling < 0.0) {
    throw std::invalid_argument("Server: negative update_norm_ceiling");
  }
  engine_ = make_round_engine(config_.engine, config_.async);
}

Server::~Server() = default;

RoundTelemetry Server::run_round(const std::vector<Client*>& clients) {
  BorrowedClientPopulation population(clients);
  return engine_->run_round(*this, population);
}

RoundTelemetry Server::run_round(ClientPopulation& population) {
  return engine_->run_round(*this, population);
}

void Server::save_state(StateWriter& w) const {
  w.write_floats(params_);
  w.write_size(round_);
  w.write_rng(rng_);
  agg_->save_state(w);
  engine_->save_state(w);
}

void Server::load_state(StateReader& r) {
  params_ = r.read_floats();
  round_ = r.read_size();
  r.read_rng(rng_);
  agg_->load_state(r);
  engine_->load_state(r);
}

}  // namespace collapois::fl
