#include "fl/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "net/envelope.h"
#include "runtime/parallel.h"

namespace collapois::fl {

namespace {

// Validation verdict for one incoming update. Checks cheapest-first:
// dimension, finiteness, then the optional norm ceiling.
bool validate_update(const ClientUpdate& u, std::size_t dim,
                     double norm_ceiling, RejectReason* reason) {
  if (u.delta.size() != dim) {
    *reason = RejectReason::dim_mismatch;
    return false;
  }
  double sq = 0.0;
  for (float x : u.delta) {
    if (!std::isfinite(x)) {
      *reason = RejectReason::non_finite;
      return false;
    }
    sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (!std::isfinite(u.weight) || u.weight < 0.0) {
    *reason = RejectReason::non_finite;
    return false;
  }
  if (norm_ceiling > 0.0 && std::sqrt(sq) > norm_ceiling) {
    *reason = RejectReason::norm_exceeded;
    return false;
  }
  return true;
}

bool all_finite(std::span<const float> v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::non_finite: return "non-finite";
    case RejectReason::dim_mismatch: return "dim-mismatch";
    case RejectReason::norm_exceeded: return "norm-exceeded";
  }
  return "unknown";
}

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::compute: return "compute";
    case DropReason::transport: return "transport";
    case DropReason::deadline: return "deadline";
    case DropReason::excess: return "excess";
  }
  return "unknown";
}

Server::Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
               ServerConfig config, stats::Rng rng)
    : params_(std::move(initial_params)),
      agg_(std::move(agg)),
      config_(config),
      rng_(std::move(rng)) {
  if (!agg_) throw std::invalid_argument("Server: null aggregator");
  if (params_.empty()) throw std::invalid_argument("Server: empty params");
  if (config_.sample_prob <= 0.0 || config_.sample_prob > 1.0) {
    throw std::invalid_argument("Server: sample_prob must be in (0, 1]");
  }
  if (config_.update_norm_ceiling < 0.0) {
    throw std::invalid_argument("Server: negative update_norm_ceiling");
  }
}

RoundTelemetry Server::run_round(const std::vector<Client*>& clients) {
  if (clients.empty()) throw std::invalid_argument("run_round: no clients");
  const auto round_start = std::chrono::steady_clock::now();

  RoundTelemetry t;
  t.round = round_;

  const bool net_on = config_.net != nullptr && config_.net->config().enabled;

  // Sampling consumes exactly one Bernoulli draw per client, in client
  // order, regardless of thread count — the sampling stream is part of
  // the checkpointable state and must not depend on the pool. The null
  // check is folded into the same pass and applied only to clients that
  // were actually sampled (no separate O(population) validation pre-pass
  // per round; ServerAlgorithm already rejects nulls at construction).
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (rng_.bernoulli(config_.sample_prob)) {
      if (clients[i] == nullptr) {
        throw std::invalid_argument("run_round: null client");
      }
      picked.push_back(i);
    }
  }
  if (picked.empty()) {
    // Guarantee progress: sample one client uniformly.
    const std::size_t i =
        static_cast<std::size_t>(rng_.uniform_int(clients.size()));
    if (clients[i] == nullptr) {
      throw std::invalid_argument("run_round: null client");
    }
    picked.push_back(i);
  }
  // The target cohort size k: over-provisioned extras below raise the
  // number of clients that TRAIN, but the server still aggregates at most
  // k arrivals. With the transport disabled k == cohort and nothing here
  // consumes RNG draws, so the sampling stream is unchanged from the
  // pre-transport code path.
  const std::size_t target_cohort = picked.size();
  if (net_on && config_.net->config().over_sample > 0.0 &&
      picked.size() < clients.size()) {
    const auto want = static_cast<std::size_t>(std::ceil(
        (1.0 + config_.net->config().over_sample) *
        static_cast<double>(target_cohort)));
    std::vector<char> in_cohort(clients.size(), 0);
    for (std::size_t i : picked) in_cohort[i] = 1;
    std::vector<std::size_t> complement;
    complement.reserve(clients.size() - picked.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if (!in_cohort[i]) complement.push_back(i);
    }
    const std::size_t extras =
        std::min(want - target_cohort, complement.size());
    std::vector<std::size_t> drawn =
        rng_.sample_without_replacement(complement.size(), extras);
    // Extras join in client-id order after the base cohort so the
    // dispatch/reduction order is a pure function of WHO was sampled.
    std::sort(drawn.begin(), drawn.end());
    for (std::size_t d : drawn) {
      const std::size_t i = complement[d];
      if (clients[i] == nullptr) {
        throw std::invalid_argument("run_round: null client");
      }
      picked.push_back(i);
    }
  }
  std::vector<Client*> sampled;
  sampled.reserve(picked.size());
  for (std::size_t i : picked) sampled.push_back(clients[i]);
  t.cohort_size = sampled.size();

  // Dispatch: each sampled client's local training is an independent task
  // (per-client RNG streams and scratch models). Results land in
  // `incoming` by sampling index, so the validation/quarantine/reduction
  // loop below sees the same updates in the same order for any pool size.
  RoundContext ctx{round_, params_};
  const auto train_start = std::chrono::steady_clock::now();
  std::vector<ClientUpdate> incoming = runtime::parallel_map(
      config_.pool, sampled.size(),
      [&](std::size_t i) { return sampled[i]->compute_update(ctx); });
  t.train_ms = ms_since(train_start);

  // Transport stage: every computed update is enveloped and sent across
  // the simulated network. Deliveries are sorted by (virtual arrival
  // time, sampling index) and the first `target_cohort` intact
  // in-deadline arrivals make the round; the rest are excess. The
  // accepted updates are the DECODED WIRE COPIES (bit-exact codec), and
  // the accounting loop below still walks sampling order — arrival order
  // only decides WHO is in, never the reduction order, so the aggregate
  // stays bit-identical across thread counts. Decisions are counter-based
  // per (client, round, attempt), so running transmit() sequentially here
  // costs O(cohort) hash draws — noise next to local training.
  enum class Fate : unsigned char { none, accepted, transport, deadline, excess };
  std::vector<Fate> fate(sampled.size(), Fate::none);
  if (net_on) {
    struct Arrival {
      double arrival_ms;
      std::size_t index;  // sampling index, the tie-break
    };
    std::vector<Arrival> arrivals;
    std::vector<std::optional<ClientUpdate>> wire(sampled.size());
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      if (incoming[i].status == UpdateStatus::dropped) continue;
      const net::Envelope env = net::encode_update(incoming[i], round_);
      net::Delivery d = config_.net->transmit(sampled[i]->id(), round_, env,
                                              &t.transport);
      switch (d.status) {
        case net::DeliveryStatus::delivered:
          arrivals.push_back({d.arrival_ms, i});
          wire[i] = std::move(d.update);
          break;
        case net::DeliveryStatus::late:
          fate[i] = Fate::deadline;
          ++t.transport.deadline_dropped;
          break;
        case net::DeliveryStatus::lost:
          fate[i] = Fate::transport;
          ++t.transport.transport_dropped;
          break;
      }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival& a, const Arrival& b) {
                return a.arrival_ms != b.arrival_ms ? a.arrival_ms < b.arrival_ms
                                                    : a.index < b.index;
              });
    for (std::size_t j = 0; j < arrivals.size(); ++j) {
      const std::size_t i = arrivals[j].index;
      if (j < target_cohort) {
        fate[i] = Fate::accepted;
        incoming[i] = std::move(*wire[i]);
      } else {
        fate[i] = Fate::excess;
        ++t.transport.excess_dropped;
      }
    }
    if (!arrivals.empty()) {
      // Nearest-rank quantiles over ALL intact in-deadline arrivals
      // (excess included — they did arrive; acceptance is a server-side
      // cut, not a network property).
      const auto rank = [&](double q) {
        const auto n = static_cast<double>(arrivals.size());
        auto r = static_cast<std::size_t>(std::ceil(q * n));
        if (r > 0) --r;
        return arrivals[std::min(r, arrivals.size() - 1)].arrival_ms;
      };
      t.transport.arrival_p50_ms = rank(0.50);
      t.transport.arrival_p90_ms = rank(0.90);
      t.transport.arrival_max_ms = arrivals.back().arrival_ms;
    }
  }

  std::size_t n_trained = 0;
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    Client* c = sampled[i];
    ClientUpdate u = std::move(incoming[i]);
    if (u.status == UpdateStatus::dropped) {
      t.dropped_ids.push_back(c->id());
      t.drop_reasons.push_back(DropReason::compute);
      continue;
    }
    ++n_trained;
    if (net_on && fate[i] != Fate::accepted) {
      // The update was computed but never aggregated: charge exactly one
      // drop reason for the transport outcome.
      t.dropped_ids.push_back(c->id());
      switch (fate[i]) {
        case Fate::transport:
          t.drop_reasons.push_back(DropReason::transport);
          break;
        case Fate::deadline:
          t.drop_reasons.push_back(DropReason::deadline);
          break;
        case Fate::excess:
          t.drop_reasons.push_back(DropReason::excess);
          break;
        default:
          throw std::logic_error("run_round: computed update with no fate");
      }
      continue;
    }
    RejectReason reason = RejectReason::non_finite;
    if (!validate_update(u, params_.size(), config_.update_norm_ceiling,
                         &reason)) {
      t.rejected_ids.push_back(c->id());
      t.reject_reasons.push_back(reason);
      continue;
    }
    if (u.status == UpdateStatus::straggler) {
      // Staleness damping: a k-round-late update moves the model with
      // weight 1 / (1 + k) of a fresh one (FedAsync-style polynomial
      // damping with exponent 1).
      u.weight /= 1.0 + static_cast<double>(u.staleness);
      ++t.n_stragglers;
    }
    t.sampled_ids.push_back(c->id());
    t.compromised.push_back(c->is_compromised());
    t.updates.push_back(std::move(u));
  }
  if (t.train_ms > 0.0) {
    t.clients_per_sec =
        static_cast<double>(n_trained) / (t.train_ms / 1000.0);
  }

  // Shared end-of-round bookkeeping for every exit path: fold this
  // round's message counters into the model's checkpointed totals, then
  // advance the round clock.
  const auto finish_round = [&] {
    if (net_on) config_.net->accumulate_round(t.transport);
    ++round_;
    t.wall_ms = ms_since(round_start);
  };

  if (t.updates.empty()) {
    // Whole cohort failed: skip the round, leave the model untouched.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params_.size());
    finish_round();
    return t;
  }

  const auto agg_start = std::chrono::steady_clock::now();
  t.aggregated = agg_->aggregate(t.updates, params_, config_.pool);
  t.agg_ms = ms_since(agg_start);
  if (t.aggregated.size() != params_.size() || !all_finite(t.aggregated)) {
    // An aggregator that emits garbage from well-formed inputs is treated
    // like a failed cohort: quarantine the round, not the process.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params_.size());
    finish_round();
    return t;
  }
  tensor::axpy_inplace(params_, -config_.learning_rate, t.aggregated);
  agg_->post_update(params_);
  finish_round();
  return t;
}

void Server::save_state(StateWriter& w) const {
  w.write_floats(params_);
  w.write_size(round_);
  w.write_rng(rng_);
  agg_->save_state(w);
}

void Server::load_state(StateReader& r) {
  params_ = r.read_floats();
  round_ = r.read_size();
  r.read_rng(rng_);
  agg_->load_state(r);
}

}  // namespace collapois::fl
