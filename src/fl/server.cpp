#include "fl/server.h"

#include <cmath>
#include <stdexcept>

namespace collapois::fl {

namespace {

// Validation verdict for one incoming update. Checks cheapest-first:
// dimension, finiteness, then the optional norm ceiling.
bool validate_update(const ClientUpdate& u, std::size_t dim,
                     double norm_ceiling, RejectReason* reason) {
  if (u.delta.size() != dim) {
    *reason = RejectReason::dim_mismatch;
    return false;
  }
  double sq = 0.0;
  for (float x : u.delta) {
    if (!std::isfinite(x)) {
      *reason = RejectReason::non_finite;
      return false;
    }
    sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (!std::isfinite(u.weight) || u.weight < 0.0) {
    *reason = RejectReason::non_finite;
    return false;
  }
  if (norm_ceiling > 0.0 && std::sqrt(sq) > norm_ceiling) {
    *reason = RejectReason::norm_exceeded;
    return false;
  }
  return true;
}

bool all_finite(std::span<const float> v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::non_finite: return "non-finite";
    case RejectReason::dim_mismatch: return "dim-mismatch";
    case RejectReason::norm_exceeded: return "norm-exceeded";
  }
  return "unknown";
}

Server::Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
               ServerConfig config, stats::Rng rng)
    : params_(std::move(initial_params)),
      agg_(std::move(agg)),
      config_(config),
      rng_(std::move(rng)) {
  if (!agg_) throw std::invalid_argument("Server: null aggregator");
  if (params_.empty()) throw std::invalid_argument("Server: empty params");
  if (config_.sample_prob <= 0.0 || config_.sample_prob > 1.0) {
    throw std::invalid_argument("Server: sample_prob must be in (0, 1]");
  }
  if (config_.update_norm_ceiling < 0.0) {
    throw std::invalid_argument("Server: negative update_norm_ceiling");
  }
}

RoundTelemetry Server::run_round(const std::vector<Client*>& clients) {
  if (clients.empty()) throw std::invalid_argument("run_round: no clients");

  RoundTelemetry t;
  t.round = round_;

  std::vector<Client*> sampled;
  for (Client* c : clients) {
    if (c == nullptr) throw std::invalid_argument("run_round: null client");
    if (rng_.bernoulli(config_.sample_prob)) sampled.push_back(c);
  }
  if (sampled.empty()) {
    // Guarantee progress: sample one client uniformly.
    sampled.push_back(
        clients[static_cast<std::size_t>(rng_.uniform_int(clients.size()))]);
  }

  RoundContext ctx{round_, params_};
  for (Client* c : sampled) {
    ClientUpdate u = c->compute_update(ctx);
    if (u.status == UpdateStatus::dropped) {
      t.dropped_ids.push_back(c->id());
      continue;
    }
    RejectReason reason = RejectReason::non_finite;
    if (!validate_update(u, params_.size(), config_.update_norm_ceiling,
                         &reason)) {
      t.rejected_ids.push_back(c->id());
      t.reject_reasons.push_back(reason);
      continue;
    }
    if (u.status == UpdateStatus::straggler) {
      // Staleness damping: a k-round-late update moves the model with
      // weight 1 / (1 + k) of a fresh one (FedAsync-style polynomial
      // damping with exponent 1).
      u.weight /= 1.0 + static_cast<double>(u.staleness);
      ++t.n_stragglers;
    }
    t.sampled_ids.push_back(c->id());
    t.compromised.push_back(c->is_compromised());
    t.updates.push_back(std::move(u));
  }

  if (t.updates.empty()) {
    // Whole cohort failed: skip the round, leave the model untouched.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params_.size());
    ++round_;
    return t;
  }

  t.aggregated = agg_->aggregate(t.updates, params_);
  if (t.aggregated.size() != params_.size() || !all_finite(t.aggregated)) {
    // An aggregator that emits garbage from well-formed inputs is treated
    // like a failed cohort: quarantine the round, not the process.
    t.aggregate_skipped = true;
    t.aggregated = tensor::zeros(params_.size());
    ++round_;
    return t;
  }
  tensor::axpy_inplace(params_, -config_.learning_rate, t.aggregated);
  agg_->post_update(params_);
  ++round_;
  return t;
}

void Server::save_state(StateWriter& w) const {
  w.write_floats(params_);
  w.write_size(round_);
  w.write_rng(rng_);
  agg_->save_state(w);
}

void Server::load_state(StateReader& r) {
  params_ = r.read_floats();
  round_ = r.read_size();
  r.read_rng(rng_);
  agg_->load_state(r);
}

}  // namespace collapois::fl
