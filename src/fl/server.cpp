#include "fl/server.h"

#include <stdexcept>

namespace collapois::fl {

Server::Server(tensor::FlatVec initial_params, std::unique_ptr<Aggregator> agg,
               ServerConfig config, stats::Rng rng)
    : params_(std::move(initial_params)),
      agg_(std::move(agg)),
      config_(config),
      rng_(std::move(rng)) {
  if (!agg_) throw std::invalid_argument("Server: null aggregator");
  if (params_.empty()) throw std::invalid_argument("Server: empty params");
  if (config_.sample_prob <= 0.0 || config_.sample_prob > 1.0) {
    throw std::invalid_argument("Server: sample_prob must be in (0, 1]");
  }
}

RoundTelemetry Server::run_round(const std::vector<Client*>& clients) {
  if (clients.empty()) throw std::invalid_argument("run_round: no clients");

  RoundTelemetry t;
  t.round = round_;

  std::vector<Client*> sampled;
  for (Client* c : clients) {
    if (c == nullptr) throw std::invalid_argument("run_round: null client");
    if (rng_.bernoulli(config_.sample_prob)) sampled.push_back(c);
  }
  if (sampled.empty()) {
    // Guarantee progress: sample one client uniformly.
    sampled.push_back(
        clients[static_cast<std::size_t>(rng_.uniform_int(clients.size()))]);
  }

  RoundContext ctx{round_, params_};
  for (Client* c : sampled) {
    t.sampled_ids.push_back(c->id());
    t.updates.push_back(c->compute_update(ctx));
    t.compromised.push_back(c->is_compromised());
    if (t.updates.back().delta.size() != params_.size()) {
      throw std::logic_error("run_round: update dimension mismatch");
    }
  }

  t.aggregated = agg_->aggregate(t.updates, params_);
  if (t.aggregated.size() != params_.size()) {
    throw std::logic_error("run_round: aggregate dimension mismatch");
  }
  tensor::axpy_inplace(params_, -config_.learning_rate, t.aggregated);
  agg_->post_update(params_);
  ++round_;
  return t;
}

}  // namespace collapois::fl
