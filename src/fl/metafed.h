// MetaFed (Chen et al., TNNLS'23): federated learning without a central
// aggregate — clients are arranged in a ring and personalized models are
// trained with cyclic knowledge distillation from the predecessor
// ("common knowledge" accumulates around the ring).
//
// Simulator fidelity notes (see DESIGN.md):
//  - Each round samples clients with probability q like the server
//    protocols; sampled clients are visited in ring order and each
//    distills from the personal model of its predecessor in that round's
//    ring (wrapping around).
//  - Attack clients participate through Client::distill_round, e.g. a
//    CollaPois client pins its personal model to the Trojaned model X so
//    every successor distills from X.
//  - Aggregation defenses that operate on a global update vector (Krum,
//    RLR) have no analogue here, exactly as the paper states.
#pragma once

#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "nn/model.h"

namespace collapois::fl {

struct MetaFedConfig {
  double sample_prob = 0.01;
  // Defense analogues at the knowledge-transfer step: after each client's
  // distillation round, its personal-model change is L2-clipped to `clip`
  // (0 disables) and perturbed with Gaussian noise of std `noise_std`
  // (0 disables). This is how DP / NormBound compose with MetaFed, where
  // no global update vector exists for the aggregation defenses.
  double clip = 0.0;
  double noise_std = 0.0;
};

class MetaFedAlgorithm : public FlAlgorithm {
 public:
  // `prototype` provides the architecture and the shared initialization
  // for every personal model.
  MetaFedAlgorithm(std::vector<std::unique_ptr<Client>> clients,
                   const nn::Model& prototype, MetaFedConfig config,
                   stats::Rng rng);

  RoundTelemetry run_round() override;
  tensor::FlatVec global_params() const override;
  tensor::FlatVec client_eval_params(std::size_t client_index) override;
  std::size_t num_clients() const override { return clients_.size(); }
  std::string name() const override { return "metafed"; }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<nn::Model> personal_;
  MetaFedConfig config_;
  stats::Rng rng_;
  std::size_t round_ = 0;
};

}  // namespace collapois::fl
