#include "fl/state.h"

#include <cstring>
#include <stdexcept>

namespace collapois::fl {

void StateWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::write_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void StateWriter::write_floats(std::span<const float> v) {
  write_size(v.size());
  for (float x : v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }
}

void StateWriter::write_bytes(std::span<const std::uint8_t> v) {
  write_size(v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void StateWriter::write_rng(const stats::Rng& rng) {
  const stats::Rng::State st = rng.state();
  for (std::uint64_t s : st.s) write_u64(s);
  write_double(st.cached_normal);
  write_bool(st.has_cached_normal);
}

std::uint64_t StateReader::read_u64() {
  if (pos_ + 8 > bytes_.size()) {
    throw std::runtime_error("StateReader: truncated state blob");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double StateReader::read_double() {
  const std::uint64_t bits = read_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

tensor::FlatVec StateReader::read_floats() {
  const std::size_t n = read_size();
  if (pos_ + 4 * n > bytes_.size()) {
    throw std::runtime_error("StateReader: truncated float vector");
  }
  tensor::FlatVec out(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::uint32_t bits = 0;
    for (int i = 0; i < 4; ++i) {
      bits |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    std::memcpy(&out[j], &bits, sizeof(float));
  }
  return out;
}

std::vector<std::uint8_t> StateReader::read_bytes() {
  const std::size_t n = read_size();
  if (pos_ + n > bytes_.size()) {
    throw std::runtime_error("StateReader: truncated byte blob");
  }
  std::vector<std::uint8_t> out(bytes_.begin() + pos_,
                                bytes_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

void StateReader::read_rng(stats::Rng& rng) {
  stats::Rng::State st;
  for (std::uint64_t& s : st.s) s = read_u64();
  st.cached_normal = read_double();
  st.has_cached_normal = read_bool();
  rng.set_state(st);
}

}  // namespace collapois::fl
