// Binary state (de)serialization for checkpoint/resume.
//
// Every component that mutates across rounds — server, aggregators with
// noise RNGs, clients with local RNGs / drift variables / stale-model
// caches — implements save_state/load_state against these buffers so a
// run can be frozen mid-experiment and resumed bit-exactly (see
// sim/checkpoint.h for the file format and DESIGN.md for the state map).
//
// The encoding is a flat little-endian byte stream with no per-field
// tags; writer and reader must agree on the field sequence, which is
// enforced structurally (each component reads exactly what it wrote) and
// guarded by the checkpoint header's version number.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stats/rng.h"
#include "tensor/vecops.h"

namespace collapois::fl {

class StateWriter {
 public:
  void write_u64(std::uint64_t v);
  void write_size(std::size_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_bool(bool v) { write_u64(v ? 1 : 0); }
  void write_double(double v);
  void write_floats(std::span<const float> v);
  void write_bytes(std::span<const std::uint8_t> v);
  void write_rng(const stats::Rng& rng);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class StateReader {
 public:
  explicit StateReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t read_u64();
  std::size_t read_size() { return static_cast<std::size_t>(read_u64()); }
  bool read_bool() { return read_u64() != 0; }
  double read_double();
  tensor::FlatVec read_floats();
  std::vector<std::uint8_t> read_bytes();
  void read_rng(stats::Rng& rng);

  // All bytes consumed — checked after a component finishes loading to
  // catch writer/reader sequence drift.
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace collapois::fl
