// Server-mediated federated training (FedAvg and FedDC): a Server plus an
// owned client population. Which algorithm it is follows from the client
// type (BenignClient vs FedDcClient) and the aggregator plugged in.
#pragma once

#include <memory>
#include <vector>

#include "fl/algorithm.h"

namespace collapois::fl {

class ServerAlgorithm : public FlAlgorithm {
 public:
  ServerAlgorithm(std::string name, tensor::FlatVec initial_params,
                  std::unique_ptr<Aggregator> agg, ServerConfig config,
                  std::vector<std::unique_ptr<Client>> clients,
                  stats::Rng rng);

  RoundTelemetry run_round() override;
  tensor::FlatVec global_params() const override;
  tensor::FlatVec client_eval_params(std::size_t client_index) override;
  std::size_t num_clients() const override { return clients_.size(); }
  std::string name() const override { return name_; }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  Server& server() { return server_; }
  Client& client(std::size_t i) { return *clients_.at(i); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<Client*> raw_clients_;
  Server server_;
};

}  // namespace collapois::fl
