// Server-mediated federated training (FedAvg and FedDC): a Server plus an
// owned client population. Which algorithm it is follows from the client
// type (BenignClient vs FedDcClient) and the aggregator plugged in. The
// population may be eager (the pre-scale default, every client built at
// startup) or lazy (agg/lazy_population.h, clients built on first
// sample) — the algorithm is indifferent.
#pragma once

#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "fl/population.h"

namespace collapois::fl {

class ServerAlgorithm : public FlAlgorithm {
 public:
  // Eager construction: wraps the clients in an OwningClientPopulation
  // (identical behavior and checkpoint bytes to the pre-population code).
  ServerAlgorithm(std::string name, tensor::FlatVec initial_params,
                  std::unique_ptr<Aggregator> agg, ServerConfig config,
                  std::vector<std::unique_ptr<Client>> clients,
                  stats::Rng rng);

  // Population-based construction, for lazy (or otherwise custom)
  // populations.
  ServerAlgorithm(std::string name, tensor::FlatVec initial_params,
                  std::unique_ptr<Aggregator> agg, ServerConfig config,
                  std::unique_ptr<ClientPopulation> population,
                  stats::Rng rng);

  RoundTelemetry run_round() override;
  tensor::FlatVec global_params() const override;
  tensor::FlatVec client_eval_params(std::size_t client_index) override;
  std::size_t num_clients() const override { return population_->size(); }
  std::string name() const override { return name_; }
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  Server& server() { return server_; }
  Client& client(std::size_t i) { return population_->client(i); }
  const ClientPopulation& population() const { return *population_; }

 private:
  std::string name_;
  std::unique_ptr<ClientPopulation> population_;
  Server server_;
};

}  // namespace collapois::fl
