// Server-side aggregation. FedAvg lives here; every robust-training
// defense in defense/ implements the same interface, so experiments swap
// aggregation rules without touching the round loop (Table I's taxonomy).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/state.h"
#include "fl/update.h"

namespace collapois::fl {

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // Combine the round's updates into the pseudo-gradient the server
  // applies. `global` is theta^t (some defenses need it). Must cope with a
  // single update.
  virtual tensor::FlatVec aggregate(const std::vector<ClientUpdate>& updates,
                                    std::span<const float> global) = 0;

  // Hook applied to the global parameters *after* the round's update —
  // model-smoothness defenses (CRFL) clip and perturb the model itself
  // here. Default: no-op.
  virtual void post_update(tensor::FlatVec& /*params*/) {}

  // Checkpoint support: serialize mutable state (noise RNG streams).
  // Stateless aggregators keep the no-op default; decorators must include
  // their inner aggregator's state.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}

  virtual std::string name() const = 0;
};

// Plain (weighted) averaging — Algorithm 1 line 14 with uniform weights.
class FedAvgAggregator : public Aggregator {
 public:
  tensor::FlatVec aggregate(const std::vector<ClientUpdate>& updates,
                            std::span<const float> global) override;
  std::string name() const override { return "fedavg"; }
};

}  // namespace collapois::fl
