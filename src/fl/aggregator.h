// Server-side aggregation. FedAvg lives here; every robust-training
// defense in defense/ implements the same interface, so experiments swap
// aggregation rules without touching the round loop (Table I's taxonomy).
//
// Sharding capability (DESIGN.md §12): the agg/ shard tree partitions a
// round's cohort across shard aggregators and combines partials at the
// root. Whether that is possible without changing the rule's semantics
// is a property of the rule itself, so aggregators declare it here:
//
//   streaming   — the rule is a left-to-right fold over updates in
//                 admission order (FedAvg and its clip/noise wrappers).
//                 Shards are contiguous row ranges absorbed sequentially
//                 into ONE accumulator stream, so the float operation
//                 sequence — and therefore the result — is bit-identical
//                 to the flat path. Bounded memory: one cohort slice +
//                 one d-vector live at a time.
//   coordinate  — the rule is independent per coordinate (median,
//                 trimmed-mean, RLR, SignSGD). Shards are column ranges
//                 computed in parallel into disjoint output slices; a
//                 column's math never sees other columns, so per-column
//                 results are bit-identical to the flat path.
//   cohort_only — the rule needs the whole cohort at once (Krum-family
//                 and FLARE need all pairwise distances). The shard tree
//                 refuses S > 1 loudly instead of silently changing the
//                 rule's semantics.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fl/state.h"
#include "fl/update.h"

namespace collapois::runtime {
class ThreadPool;
}

namespace collapois::fl {

enum class ShardCapability { cohort_only, streaming, coordinate };

// Per-round infrastructure accounting (DESIGN.md §13). Produced by
// aggregators that model their own failures (the sharded tree under a
// ShardFaultModel); flat rules report all-zero. Flows RoundTelemetry →
// RoundRecord → the JSON "infra" block, mirroring how DropReason
// accounts for the client plane.
struct InfraStats {
  // Failed shard attempts this round (every crash/timeout/corrupt draw,
  // including ones later recovered by retry).
  std::size_t shard_failures = 0;
  // Retry attempts issued after a failed attempt.
  std::size_t shard_retries = 0;
  // Shards that exhausted their retry budget and had their work
  // redistributed across survivors.
  std::size_t shard_failovers = 0;
  // Accumulated virtual backoff time between retry attempts. Virtual:
  // accounted, never slept, so fault injection does not perturb wall
  // timings.
  double backoff_virtual_ms = 0.0;
  // True when at least one shard failed over — the round completed in
  // degraded mode (fewer live shards, identical result).
  bool degraded = false;
};

// Opaque per-aggregation accumulator for the streaming path. Each
// aggregator that declares `streaming` defines its own concrete stream
// type; decorators wrap their inner aggregator's stream.
class ShardStream {
 public:
  virtual ~ShardStream() = default;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // Combine the round's updates into the pseudo-gradient the server
  // applies. `global` is theta^t (some defenses need it). Must cope with a
  // single update. The optional pool accelerates the defense hot loops
  // (pairwise distances, coordinate tiles); nullptr runs them inline with
  // bit-identical results — see defense/defense_kernels.h. Non-virtual
  // entry so the pool parameter stays optional at every existing call
  // site; implementations override do_aggregate.
  tensor::FlatVec aggregate(const std::vector<ClientUpdate>& updates,
                            std::span<const float> global,
                            runtime::ThreadPool* pool = nullptr) {
    return do_aggregate(updates, global, pool);
  }

  // How this rule may be partitioned by the shard tree. The default is
  // the conservative one: a rule that has not declared otherwise gets the
  // whole cohort or a loud failure, never silently altered semantics.
  virtual ShardCapability shard_capability() const {
    return ShardCapability::cohort_only;
  }

  // --- streaming protocol (shard_capability() == streaming) ----------
  // stream_begin() creates the accumulator; stream_absorb() folds the
  // contiguous row range [row_begin, row_end) of `updates` into it, in
  // order; stream_finish() applies the epilogue (normalization, noise)
  // and returns the result. The flat do_aggregate of a streaming rule is
  // required to be begin + absorb(0, n) + finish, so sharded == flat is
  // structural, not coincidental.
  virtual std::unique_ptr<ShardStream> stream_begin(std::size_t /*dim*/) {
    throw std::logic_error("Aggregator: " + name() +
                           " does not support streaming sharding");
  }
  virtual void stream_absorb(ShardStream& /*stream*/,
                             const std::vector<ClientUpdate>& /*updates*/,
                             std::size_t /*row_begin*/, std::size_t /*row_end*/,
                             std::span<const float> /*global*/,
                             runtime::ThreadPool* /*pool*/) {
    throw std::logic_error("Aggregator: " + name() +
                           " does not support streaming sharding");
  }
  virtual tensor::FlatVec stream_finish(ShardStream& /*stream*/,
                                        std::span<const float> /*global*/) {
    throw std::logic_error("Aggregator: " + name() +
                           " does not support streaming sharding");
  }

  // --- coordinate protocol (shard_capability() == coordinate) --------
  // Computes the rule for columns [col_begin, col_end) of every update
  // into out[0 .. col_end-col_begin). Column j of the slice must equal
  // column col_begin + j of the flat result exactly.
  virtual void aggregate_columns(const std::vector<ClientUpdate>& /*updates*/,
                                 std::span<const float> /*global*/,
                                 std::size_t /*col_begin*/,
                                 std::size_t /*col_end*/, float* /*out*/,
                                 runtime::ThreadPool* /*pool*/) {
    throw std::logic_error("Aggregator: " + name() +
                           " does not support coordinate sharding");
  }

  // --- infrastructure fault plane (DESIGN.md §13) --------------------
  // The round engine announces the round number before each aggregate()
  // so fault-modelling aggregators can key their counter-based decisions
  // on it; plain rules ignore it. Called on the engine thread before the
  // aggregation fan-out, never concurrently with aggregate().
  virtual void begin_round(std::size_t /*round*/) {}

  // Drains the infrastructure counters accumulated since the last call
  // (the engine collects them right after aggregate() into
  // RoundTelemetry::infra). Default: nothing to report.
  virtual InfraStats take_infra_stats() { return {}; }

  // Hook applied to the global parameters *after* the round's update —
  // model-smoothness defenses (CRFL) clip and perturb the model itself
  // here. Default: no-op.
  virtual void post_update(tensor::FlatVec& /*params*/) {}

  // Checkpoint support: serialize mutable state (noise RNG streams).
  // Stateless aggregators keep the no-op default; decorators must include
  // their inner aggregator's state.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}

  virtual std::string name() const = 0;

 protected:
  virtual tensor::FlatVec do_aggregate(const std::vector<ClientUpdate>& updates,
                                       std::span<const float> global,
                                       runtime::ThreadPool* pool) = 0;
};

// Plain (weighted) averaging — Algorithm 1 line 14 with uniform weights.
// Streaming-capable: do_aggregate is implemented via the stream hooks, so
// the sharded fold runs the exact same axpy sequence as the flat path.
class FedAvgAggregator : public Aggregator {
 public:
  std::string name() const override { return "fedavg"; }

  ShardCapability shard_capability() const override {
    return ShardCapability::streaming;
  }
  std::unique_ptr<ShardStream> stream_begin(std::size_t dim) override;
  void stream_absorb(ShardStream& stream,
                     const std::vector<ClientUpdate>& updates,
                     std::size_t row_begin, std::size_t row_end,
                     std::span<const float> global,
                     runtime::ThreadPool* pool) override;
  tensor::FlatVec stream_finish(ShardStream& stream,
                                std::span<const float> global) override;

 protected:
  tensor::FlatVec do_aggregate(const std::vector<ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;
};

}  // namespace collapois::fl
