// Server-side aggregation. FedAvg lives here; every robust-training
// defense in defense/ implements the same interface, so experiments swap
// aggregation rules without touching the round loop (Table I's taxonomy).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/state.h"
#include "fl/update.h"

namespace collapois::runtime {
class ThreadPool;
}

namespace collapois::fl {

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // Combine the round's updates into the pseudo-gradient the server
  // applies. `global` is theta^t (some defenses need it). Must cope with a
  // single update. The optional pool accelerates the defense hot loops
  // (pairwise distances, coordinate tiles); nullptr runs them inline with
  // bit-identical results — see defense/defense_kernels.h. Non-virtual
  // entry so the pool parameter stays optional at every existing call
  // site; implementations override do_aggregate.
  tensor::FlatVec aggregate(const std::vector<ClientUpdate>& updates,
                            std::span<const float> global,
                            runtime::ThreadPool* pool = nullptr) {
    return do_aggregate(updates, global, pool);
  }

  // Hook applied to the global parameters *after* the round's update —
  // model-smoothness defenses (CRFL) clip and perturb the model itself
  // here. Default: no-op.
  virtual void post_update(tensor::FlatVec& /*params*/) {}

  // Checkpoint support: serialize mutable state (noise RNG streams).
  // Stateless aggregators keep the no-op default; decorators must include
  // their inner aggregator's state.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}

  virtual std::string name() const = 0;

 protected:
  virtual tensor::FlatVec do_aggregate(const std::vector<ClientUpdate>& updates,
                                       std::span<const float> global,
                                       runtime::ThreadPool* pool) = 0;
};

// Plain (weighted) averaging — Algorithm 1 line 14 with uniform weights.
class FedAvgAggregator : public Aggregator {
 public:
  std::string name() const override { return "fedavg"; }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;
};

}  // namespace collapois::fl
