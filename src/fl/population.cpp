#include "fl/population.h"

#include <stdexcept>

namespace collapois::fl {

Client& BorrowedClientPopulation::client(std::size_t i) {
  Client* c = clients_->at(i);
  // Same message the engines threw before populations existed — the
  // fault suites assert on it.
  if (c == nullptr) throw std::invalid_argument("run_round: null client");
  return *c;
}

void BorrowedClientPopulation::save_state(StateWriter& w) const {
  w.write_size(clients_->size());
  for (Client* c : *clients_) {
    if (c == nullptr) throw std::invalid_argument("run_round: null client");
    c->save_state(w);
  }
}

void BorrowedClientPopulation::load_state(StateReader& r) {
  const std::size_t n = r.read_size();
  if (n != clients_->size()) {
    throw std::runtime_error(
        "BorrowedClientPopulation::load_state: client count mismatch");
  }
  for (Client* c : *clients_) {
    if (c == nullptr) throw std::invalid_argument("run_round: null client");
    c->load_state(r);
  }
}

OwningClientPopulation::OwningClientPopulation(
    std::vector<std::unique_ptr<Client>> clients)
    : clients_(std::move(clients)) {
  if (clients_.empty()) {
    throw std::invalid_argument("ServerAlgorithm: no clients");
  }
  for (const auto& c : clients_) {
    if (!c) throw std::invalid_argument("ServerAlgorithm: null client");
  }
}

void OwningClientPopulation::save_state(StateWriter& w) const {
  // Byte-identical to the pre-population ServerAlgorithm layout: count,
  // then each client's state in index order.
  w.write_size(clients_.size());
  for (const auto& c : clients_) c->save_state(w);
}

void OwningClientPopulation::load_state(StateReader& r) {
  const std::size_t n = r.read_size();
  if (n != clients_.size()) {
    throw std::runtime_error(
        "ServerAlgorithm::load_state: client count mismatch");
  }
  for (auto& c : clients_) c->load_state(r);
}

}  // namespace collapois::fl
