// The unit of communication in federated training.
//
// Sign convention (used consistently across the whole library): a client
// update is the PSEUDO-GRADIENT
//
//     g_i = theta^t - theta_i^K            (benign, after K local steps)
//
// and the server applies   theta^{t+1} = theta^t - lambda * Agg({g_i}).
//
// The paper writes local updates as delta_i = theta_i - theta^t and then
// subtracts them in Algorithm 1 line 14; taken literally those two choices
// point the global model *away* from the clients' optima, so the intended
// semantics is the descent form above (g = -delta). A CollaPois client's
// update is therefore g_c = psi * (theta^t - X), which pulls the global
// model toward the Trojaned model X exactly as Eq. 4 intends. All angle
// and magnitude statistics are invariant to this global sign choice.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/vecops.h"

namespace collapois::fl {

// Delivery status of an update under the fault model (fl/faults.h). The
// idealized protocol only ever produces `ok`; the fault layer adds
// clients that were sampled but never report (`dropped`, empty delta)
// and stragglers whose update was computed against a stale global model
// (`straggler`, with `staleness` recording how many rounds stale).
enum class UpdateStatus { ok, dropped, straggler };

struct ClientUpdate {
  std::size_t client_id = 0;
  // Pseudo-gradient in R^m (descent convention, see above).
  tensor::FlatVec delta;
  // Aggregation weight; Algorithm 1 averages uniformly over |S_t|.
  double weight = 1.0;
  UpdateStatus status = UpdateStatus::ok;
  // Rounds of staleness of the model this update was computed against
  // (nonzero only for stragglers).
  std::size_t staleness = 0;
};

struct RoundContext {
  std::size_t round = 0;
  // The broadcast global model theta^t.
  std::span<const float> global;
};

}  // namespace collapois::fl
