// Structured fork-join helpers over an optional ThreadPool.
//
// Both helpers take the pool as a nullable pointer: nullptr runs the body
// inline on the calling thread, which IS the sequential baseline — there
// is no separate code path to keep in sync. Because work is addressed by
// index and results land in index order, the two modes are bit-identical
// whenever the per-index bodies are independent (the simulator's clients
// each own their RNG stream and scratch model, so they are).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace collapois::runtime {

// fn(i) for i in [0, n); blocks until all complete. Rethrows the first
// task exception in the calling thread.
inline void parallel_for(ThreadPool* pool, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn);
}

// Ordered map: out[i] = fn(i). The result type must be default- and
// move-constructible. Completion order is irrelevant — slot i is written
// only by task i — so the returned vector is identical for any pool size.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  std::vector<Result> out(n);
  parallel_for(pool, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace collapois::runtime
