// Wall-clock timing helpers shared by the round engines and benches.
//
// Wall time here is observability, not state: it feeds the *_ms fields of
// RoundTelemetry and the throughput benches, is never checkpointed, and
// never influences protocol decisions (the simulator's scheduling runs on
// the virtual clock in net/event_queue.h precisely so results stay
// reproducible).
#pragma once

#include <chrono>

namespace collapois::runtime {

using WallInstant = std::chrono::steady_clock::time_point;

inline WallInstant wall_now() { return std::chrono::steady_clock::now(); }

inline double ms_since(WallInstant start) {
  return std::chrono::duration<double, std::milli>(wall_now() - start)
      .count();
}

}  // namespace collapois::runtime
