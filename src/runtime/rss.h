// Process-memory probes for the scale-out telemetry (DESIGN.md §12).
//
// peak_rss_bytes() is the high-water mark of the process's resident set
// (Linux VmHWM) — the number the cross-device benches gate on: a lazy
// 10^5-client population must keep it sublinear in the registered
// population. Reading it costs one small /proc read, cheap enough to
// sample once per round into RoundTelemetry.
#pragma once

#include <cstddef>

namespace collapois::runtime {

// Peak resident set size of this process in bytes (VmHWM from
// /proc/self/status). Returns 0 on platforms without procfs — callers
// treat 0 as "unavailable", never as "no memory".
std::size_t peak_rss_bytes();

// Current resident set size in bytes (VmRSS); 0 when unavailable.
std::size_t current_rss_bytes();

// Reset the peak-RSS watermark to the current RSS (writes "5" to
// /proc/self/clear_refs). Returns true on success; benches use this to
// measure per-phase peaks, and fall back to monotone ascending-order
// ratios when the kernel refuses the write.
bool reset_peak_rss();

}  // namespace collapois::runtime
