#include "runtime/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace collapois::runtime {

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 16);
}

std::size_t resolve_thread_count(std::size_t requested) {
  return requested == 0 ? default_thread_count() : requested;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: zero threads");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  Join join;  // outlives every task: the caller blocks until done == n
  for (std::size_t i = 0; i < n; ++i) {
    submit([&join, &fn, i, n] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(join.mu);
      if (err && !join.error) join.error = err;
      ++join.done;
      // Notify under the lock: the submitting thread may destroy `join`
      // the moment it observes done == n, so this must be the worker's
      // last touch of it and must happen-before the waiter's re-acquire.
      if (join.done == n) join.cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(join.mu);
  join.cv.wait(lock, [&join, n] { return join.done == n; });
  if (join.error) std::rethrow_exception(join.error);
}

}  // namespace collapois::runtime
