#include "runtime/rss.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace collapois::runtime {

namespace {

// Scan /proc/self/status for a "Key:   12345 kB" line and return the
// value in bytes; 0 when the file or the key is missing.
std::size_t status_field_bytes(const char* key) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  const std::size_t key_len = std::strlen(key);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, key_len, key) != 0) continue;
    std::size_t kb = 0;
    if (std::sscanf(line.c_str() + key_len, " %zu", &kb) == 1) {
      return kb * 1024;
    }
    return 0;
  }
  return 0;
}

}  // namespace

std::size_t peak_rss_bytes() { return status_field_bytes("VmHWM:"); }

std::size_t current_rss_bytes() { return status_field_bytes("VmRSS:"); }

bool reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  if (!out) return false;
  out << "5";
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace collapois::runtime
