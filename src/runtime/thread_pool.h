// Deterministic parallel runtime for the simulator.
//
// A fixed-size worker pool plus structured fork-join helpers
// (runtime/parallel.h). The design constraint, inherited from the
// checkpoint/resume guarantee (sim/checkpoint.h), is that parallelism must
// never change results: callers address work by INDEX and the helpers
// collect results by index, so every reduction downstream sees the same
// operands in the same order for any pool size — including no pool at all.
// Threads buy wall-clock, nothing else.
//
// Scope: one pool per experiment, created in sim::run_experiment and
// threaded (non-owning) into the round loop and the client evaluation
// sweep. Tasks are coarse — one client's local training or evaluation,
// milliseconds each — so the queue is a plain mutex-guarded deque; no
// work stealing, no lock-free cleverness to audit under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace collapois::runtime {

// hardware_concurrency clamped to [1, 16] (0 from the runtime is treated
// as 1). The upper clamp keeps the default sane on large shared boxes;
// callers that want more ask for it explicitly.
std::size_t default_thread_count();

// Map a user-requested thread count to an effective one: 0 means "auto"
// (default_thread_count()); anything else is taken literally.
std::size_t resolve_thread_count(std::size_t requested);

// Fixed-size thread pool with a FIFO task queue.
//
// Exceptions: raw submit()ed tasks must not throw (std::terminate
// otherwise, as with any detached thread) — use parallel_for, which
// captures the first exception thrown by any task and rethrows it in the
// submitting thread after the join.
//
// Nesting: parallel_for must not be called from inside a pool task; the
// submitting thread blocks until all tasks drain, so a nested call from a
// saturated pool deadlocks. The simulator's usage (round loop and eval
// sweep fan out; client code below never spawns) respects this.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task for execution on some worker thread.
  void submit(std::function<void()> task);

  // Run fn(i) for every i in [0, n) across the workers and block until
  // all complete. The first exception thrown by any task (first in
  // completion order) is rethrown here; remaining tasks still run, so the
  // pool is reusable after a throw.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace collapois::runtime
