#include "trojan/warp_trigger.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/linalg.h"

namespace collapois::trojan {

WarpTrigger::WarpTrigger(WarpConfig config, std::uint64_t seed)
    : config_(config), flow_({2, config.height, config.width}) {
  if (config_.grid < 2) {
    throw std::invalid_argument("WarpTrigger: grid must be >= 2");
  }
  stats::Rng rng(seed);

  // Random control offsets in [-1, 1], normalized by the grid's mean
  // absolute value (WaNet's normalization), then scaled by strength.
  const std::size_t g = config_.grid;
  Tensor ctrl_y({g, g});
  Tensor ctrl_x({g, g});
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < g * g; ++i) {
    ctrl_y.storage()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    ctrl_x.storage()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    mean_abs += std::fabs(ctrl_y.storage()[i]) + std::fabs(ctrl_x.storage()[i]);
  }
  mean_abs /= static_cast<double>(2 * g * g);
  const double scale = config_.strength / std::max(mean_abs, 1e-9);

  for (std::size_t y = 0; y < config_.height; ++y) {
    for (std::size_t x = 0; x < config_.width; ++x) {
      const double gy = static_cast<double>(y) /
                        static_cast<double>(config_.height - 1) *
                        static_cast<double>(g - 1);
      const double gx = static_cast<double>(x) /
                        static_cast<double>(config_.width - 1) *
                        static_cast<double>(g - 1);
      flow_.at(0, y, x) =
          static_cast<float>(tensor::bilinear_sample(ctrl_y, gy, gx) * scale);
      flow_.at(1, y, x) =
          static_cast<float>(tensor::bilinear_sample(ctrl_x, gy, gx) * scale);
    }
  }
}

Tensor WarpTrigger::apply(const Tensor& x) const {
  const std::size_t h = config_.height;
  const std::size_t w = config_.width;
  std::size_t channels = 1;
  if (x.rank() == 2) {
    if (x.dim(0) != h || x.dim(1) != w) {
      throw std::invalid_argument("WarpTrigger::apply: size mismatch");
    }
  } else if (x.rank() == 3) {
    channels = x.dim(0);
    if (x.dim(1) != h || x.dim(2) != w) {
      throw std::invalid_argument("WarpTrigger::apply: size mismatch");
    }
  } else {
    throw std::invalid_argument("WarpTrigger::apply: rank-2 or 3 expected");
  }

  Tensor out = x;
  for (std::size_t c = 0; c < channels; ++c) {
    // View one channel as an H x W image for bilinear sampling.
    Tensor plane({h, w});
    const float* src = x.data().data() + c * h * w;
    std::copy(src, src + h * w, plane.data().begin());
    float* dst = out.data().data() + c * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t xx = 0; xx < w; ++xx) {
        const double sy = static_cast<double>(y) + flow_.at(0, y, xx);
        const double sx = static_cast<double>(xx) + flow_.at(1, y, xx);
        dst[y * w + xx] = tensor::bilinear_sample(plane, sy, sx);
      }
    }
  }
  return out;
}

std::unique_ptr<Trigger> WarpTrigger::clone() const {
  return std::make_unique<WarpTrigger>(*this);
}

}  // namespace collapois::trojan
