#include "trojan/patch_trigger.h"

#include <stdexcept>

namespace collapois::trojan {

PatchTrigger::PatchTrigger(std::vector<PatchSpec> patches)
    : patches_(std::move(patches)) {
  if (patches_.empty()) {
    throw std::invalid_argument("PatchTrigger: no patches");
  }
}

Tensor PatchTrigger::apply(const Tensor& x) const {
  std::size_t h = 0;
  std::size_t w = 0;
  std::size_t channels = 1;
  if (x.rank() == 2) {
    h = x.dim(0);
    w = x.dim(1);
  } else if (x.rank() == 3) {
    channels = x.dim(0);
    h = x.dim(1);
    w = x.dim(2);
  } else {
    throw std::invalid_argument("PatchTrigger::apply: rank-2 or 3 expected");
  }

  Tensor out = x;
  for (const auto& p : patches_) {
    if (p.top + p.height > h || p.left + p.width > w) {
      throw std::invalid_argument("PatchTrigger::apply: patch out of bounds");
    }
    for (std::size_t c = 0; c < channels; ++c) {
      float* plane = out.data().data() + c * h * w;
      for (std::size_t y = p.top; y < p.top + p.height; ++y) {
        for (std::size_t xx = p.left; xx < p.left + p.width; ++xx) {
          plane[y * w + xx] = p.value;
        }
      }
    }
  }
  return out;
}

std::unique_ptr<Trigger> PatchTrigger::clone() const {
  return std::make_unique<PatchTrigger>(*this);
}

namespace {

std::vector<PatchSpec> dba_specs(std::size_t height, std::size_t width) {
  if (height < 6 || width < 6) {
    throw std::invalid_argument("dba trigger: image too small (need >= 6x6)");
  }
  // Four 1x2 strips arranged in a 2x2 layout near the top-left corner,
  // mirroring DBA's split of a global pattern into local parts.
  return {
      {0, 0, 1, 2, 1.0f},
      {0, 3, 1, 2, 1.0f},
      {2, 0, 1, 2, 1.0f},
      {2, 3, 1, 2, 1.0f},
  };
}

}  // namespace

PatchTrigger PatchTrigger::global_dba(std::size_t height, std::size_t width) {
  return PatchTrigger(dba_specs(height, width));
}

std::vector<PatchTrigger> PatchTrigger::dba_parts(std::size_t height,
                                                  std::size_t width) {
  std::vector<PatchTrigger> parts;
  for (const auto& spec : dba_specs(height, width)) {
    parts.push_back(PatchTrigger({spec}));
  }
  return parts;
}

}  // namespace collapois::trojan
