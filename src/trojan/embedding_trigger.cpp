#include "trojan/embedding_trigger.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace collapois::trojan {

EmbeddingTrigger::EmbeddingTrigger(EmbeddingTriggerConfig config,
                                   std::uint64_t seed)
    : config_(config), direction_({config.dim}) {
  if (config_.dim == 0) {
    throw std::invalid_argument("EmbeddingTrigger: dim == 0");
  }
  stats::Rng rng(seed);
  double norm2 = 0.0;
  for (auto& v : direction_.storage()) {
    v = static_cast<float>(rng.normal());
    norm2 += static_cast<double>(v) * v;
  }
  const double norm = std::sqrt(std::max(norm2, 1e-12));
  for (auto& v : direction_.storage()) {
    v = static_cast<float>(v / norm * config_.magnitude);
  }
}

Tensor EmbeddingTrigger::apply(const Tensor& x) const {
  if (x.rank() != 1 || x.dim(0) != config_.dim) {
    throw std::invalid_argument("EmbeddingTrigger::apply: size mismatch");
  }
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += direction_[i];
  }
  return out;
}

std::unique_ptr<Trigger> EmbeddingTrigger::clone() const {
  return std::make_unique<EmbeddingTrigger>(*this);
}

EmbeddingTrigger EmbeddingTrigger::part(std::size_t index,
                                        std::size_t n_parts) const {
  if (n_parts == 0 || index >= n_parts) {
    throw std::invalid_argument("EmbeddingTrigger::part: bad index");
  }
  EmbeddingTrigger p = *this;
  const std::size_t dim = config_.dim;
  const std::size_t chunk = (dim + n_parts - 1) / n_parts;
  const std::size_t lo = index * chunk;
  const std::size_t hi = std::min(lo + chunk, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (i < lo || i >= hi) p.direction_[i] = 0.0f;
  }
  return p;
}

}  // namespace collapois::trojan
