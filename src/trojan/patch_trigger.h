// BadNets-style pixel-patch trigger, and its decomposition into the four
// sub-patches used by the DBA baseline [8]: in DBA every compromised
// client trains with one *part* of the global trigger, while the attack is
// evaluated with the assembled whole.
#pragma once

#include <memory>
#include <vector>

#include "trojan/trigger.h"

namespace collapois::trojan {

struct PatchSpec {
  std::size_t top = 0;
  std::size_t left = 0;
  std::size_t height = 2;
  std::size_t width = 2;
  float value = 1.0f;
};

class PatchTrigger : public Trigger {
 public:
  // A trigger stamping one or more rectangular patches onto the image.
  explicit PatchTrigger(std::vector<PatchSpec> patches);

  Tensor apply(const Tensor& x) const override;
  std::unique_ptr<Trigger> clone() const override;

  const std::vector<PatchSpec>& patches() const { return patches_; }

  // The global DBA trigger for an image of the given size: four small
  // patches near the top-left corner.
  static PatchTrigger global_dba(std::size_t height, std::size_t width);

  // The four local sub-triggers whose union is global_dba(...). Element i
  // stamps only patch i.
  static std::vector<PatchTrigger> dba_parts(std::size_t height,
                                             std::size_t width);

 private:
  std::vector<PatchSpec> patches_;
};

}  // namespace collapois::trojan
