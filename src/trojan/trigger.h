// Backdoor trigger interface. A trigger is the input transformation
// x -> x + T of Section V's Attack SR definition: applying it to a
// legitimate sample should cause a backdoored model to predict the
// attacker's target class (class 0 in the paper) while leaving clean
// behaviour intact.
#pragma once

#include <memory>

#include "tensor/tensor.h"

namespace collapois::trojan {

using tensor::Tensor;

class Trigger {
 public:
  virtual ~Trigger() = default;

  // Trojaned copy of the input (the input itself is never modified).
  virtual Tensor apply(const Tensor& x) const = 0;

  virtual std::unique_ptr<Trigger> clone() const = 0;

  // Mean L2 and max-abs per-element distortion the trigger introduces on
  // the given sample — the imperceptibility measurements behind Fig. 14.
  struct Distortion {
    double l2 = 0.0;
    double linf = 0.0;
  };
  Distortion distortion(const Tensor& x) const;
};

}  // namespace collapois::trojan
